module discoverxfd

go 1.22
