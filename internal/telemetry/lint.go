package telemetry

// lint.go is the scrape-side mirror of the exposition writer: a small
// promlint-style checker that validates Prometheus text format
// (0.0.4) structurally. The CI server-smoke job scrapes xfdd's
// /metrics and fails on the first violation, so a formatting
// regression in the writer cannot ship — writer and checker are
// deliberately separate code paths over the same grammar.

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// LintSummary reports what a validated exposition contained.
type LintSummary struct {
	Families int
	Samples  int
}

// Lint validates a Prometheus text exposition: comment structure
// (HELP before TYPE before samples, at most one of each per family),
// known TYPE values, metric and label name grammar, parsable sample
// values, histogram shape (_bucket/_sum/_count present, le bounds
// ascending and cumulative, +Inf bucket matching _count), counter
// naming (_total or a known-cumulative suffix), and no duplicate
// sample lines. The first violation is returned with its line number.
func Lint(r io.Reader) (*LintSummary, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<20)
	sum := &LintSummary{}
	seen := make(map[string]bool)        // full sample keys (name+labels)
	typed := make(map[string]string)     // family → TYPE
	helped := make(map[string]bool)      // family → HELP seen
	hists := make(map[string]*histCheck) // histogram family → state
	sampled := make(map[string]bool)     // family → sample lines seen
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimRight(sc.Text(), " ")
		if text == "" {
			continue
		}
		if strings.HasPrefix(text, "#") {
			if err := lintComment(text, typed, helped, sampled); err != nil {
				return nil, fmt.Errorf("metrics: line %d: %w", line, err)
			}
			continue
		}
		name, labels, value, err := parseSample(text)
		if err != nil {
			return nil, fmt.Errorf("metrics: line %d: %w", line, err)
		}
		fam := familyOf(name, typed)
		if typed[fam] == "" {
			return nil, fmt.Errorf("metrics: line %d: sample %s before its # TYPE line", line, name)
		}
		key := name + "{" + canonicalLabels(labels) + "}"
		if seen[key] {
			return nil, fmt.Errorf("metrics: line %d: duplicate sample %s", line, key)
		}
		seen[key] = true
		sampled[fam] = true
		if typed[fam] == "counter" && !strings.HasSuffix(fam, "_total") &&
			!strings.HasSuffix(fam, "_seconds") && !strings.HasSuffix(fam, "_bytes") {
			return nil, fmt.Errorf("metrics: line %d: counter %s should end in _total", line, fam)
		}
		if typed[fam] == "histogram" {
			h := hists[fam]
			if h == nil {
				h = &histCheck{}
				hists[fam] = h
			}
			if err := h.observe(name, fam, labels, value); err != nil {
				return nil, fmt.Errorf("metrics: line %d: %w", line, err)
			}
		}
		sum.Samples++
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("metrics: %w", err)
	}
	for fam, h := range hists {
		if err := h.complete(fam); err != nil {
			return nil, fmt.Errorf("metrics: %w", err)
		}
	}
	sum.Families = len(typed)
	return sum, nil
}

// lintComment validates one # line and records family metadata.
func lintComment(text string, typed map[string]string, helped, sampled map[string]bool) error {
	fields := strings.SplitN(text, " ", 4)
	if len(fields) < 3 {
		return fmt.Errorf("malformed comment %q", text)
	}
	switch fields[1] {
	case "HELP":
		name := fields[2]
		if !validMetricName(name) {
			return fmt.Errorf("HELP for invalid metric name %q", name)
		}
		if helped[name] {
			return fmt.Errorf("second HELP for %s", name)
		}
		helped[name] = true
	case "TYPE":
		if len(fields) != 4 {
			return fmt.Errorf("malformed TYPE line %q", text)
		}
		name, kind := fields[2], fields[3]
		if !validMetricName(name) {
			return fmt.Errorf("TYPE for invalid metric name %q", name)
		}
		switch kind {
		case "counter", "gauge", "histogram", "summary", "untyped":
		default:
			return fmt.Errorf("unknown TYPE %q for %s", kind, name)
		}
		if typed[name] != "" {
			return fmt.Errorf("second TYPE for %s", name)
		}
		if sampled[name] {
			return fmt.Errorf("TYPE for %s after its samples", name)
		}
		typed[name] = kind
	default:
		// Free-form comments are legal.
	}
	return nil
}

// histCheck accumulates one histogram family's shape obligations.
type histCheck struct {
	bounds    []float64 // per series-run, reset is not needed: le must ascend within equal label sets
	prevCum   float64
	prevLabel string // labels sans le of the previous bucket line
	infSeen   bool
	infCum    float64
	count     float64
	hasSum    bool
	hasCount  bool
}

// observe folds one histogram sample line into the check.
func (h *histCheck) observe(name, fam string, labels map[string]string, value float64) error {
	switch {
	case name == fam+"_sum":
		h.hasSum = true
	case name == fam+"_count":
		h.hasCount = true
		h.count += value
	case name == fam+"_bucket":
		le, ok := labels["le"]
		if !ok {
			return fmt.Errorf("histogram bucket %s without le label", fam)
		}
		rest := canonicalLabelsExcept(labels, "le")
		if rest != h.prevLabel {
			h.prevLabel = rest
			h.bounds = h.bounds[:0]
			h.prevCum = 0
		}
		if le == "+Inf" {
			h.infSeen = true
			h.infCum += value
			return nil
		}
		b, err := strconv.ParseFloat(le, 64)
		if err != nil {
			return fmt.Errorf("histogram %s has unparsable le %q", fam, le)
		}
		if n := len(h.bounds); n > 0 && b <= h.bounds[n-1] {
			return fmt.Errorf("histogram %s buckets not ascending (le %q)", fam, le)
		}
		if value < h.prevCum {
			return fmt.Errorf("histogram %s bucket counts not cumulative at le %q", fam, le)
		}
		h.bounds = append(h.bounds, b)
		h.prevCum = value
	case name == fam:
		return fmt.Errorf("bare sample %s for histogram family", fam)
	}
	return nil
}

// complete checks family-wide obligations once all lines are read.
func (h *histCheck) complete(fam string) error {
	if !h.infSeen {
		return fmt.Errorf("histogram %s has no +Inf bucket", fam)
	}
	if !h.hasSum || !h.hasCount {
		return fmt.Errorf("histogram %s missing _sum or _count", fam)
	}
	if h.infCum != h.count {
		return fmt.Errorf("histogram %s +Inf buckets (%v) disagree with _count (%v)",
			fam, h.infCum, h.count)
	}
	return nil
}

// familyOf strips histogram sample suffixes when the base name has a
// histogram TYPE, so xfd_foo_bucket resolves to family xfd_foo.
func familyOf(name string, typed map[string]string) string {
	for _, suf := range []string{"_bucket", "_sum", "_count"} {
		base := strings.TrimSuffix(name, suf)
		if base != name && typed[base] == "histogram" {
			return base
		}
	}
	return name
}

// parseSample splits one sample line into name, labels, and value.
func parseSample(text string) (string, map[string]string, float64, error) {
	rest := text
	i := strings.IndexAny(rest, "{ ")
	if i < 0 {
		return "", nil, 0, fmt.Errorf("malformed sample %q", text)
	}
	name := rest[:i]
	if !validMetricName(name) {
		return "", nil, 0, fmt.Errorf("invalid metric name %q", name)
	}
	labels := map[string]string{}
	if rest[i] == '{' {
		end := labelSetEnd(rest, i+1)
		if end < 0 {
			return "", nil, 0, fmt.Errorf("unterminated label set in %q", text)
		}
		var err error
		if labels, err = parseLabels(rest[i+1 : end]); err != nil {
			return "", nil, 0, err
		}
		rest = rest[end+1:]
	} else {
		rest = rest[i:]
	}
	fields := strings.Fields(rest)
	if len(fields) < 1 || len(fields) > 2 { // optional trailing timestamp
		return "", nil, 0, fmt.Errorf("malformed sample %q", text)
	}
	v, err := parseValue(fields[0])
	if err != nil {
		return "", nil, 0, fmt.Errorf("unparsable value %q: %w", fields[0], err)
	}
	return name, labels, v, nil
}

// parseValue accepts the exposition value grammar (Go floats plus
// +Inf/-Inf/NaN spellings).
func parseValue(s string) (float64, error) {
	switch s {
	case "+Inf":
		return strconv.ParseFloat("+inf", 64)
	case "-Inf":
		return strconv.ParseFloat("-inf", 64)
	case "NaN":
		return strconv.ParseFloat("nan", 64)
	}
	return strconv.ParseFloat(s, 64)
}

// labelSetEnd returns the index of the '}' closing the label set that
// starts at from (just past the '{'), honoring quoted values — a
// literal '}' inside a label value (route="/v1/jobs/{id}") does not
// close the set. -1 when unterminated.
func labelSetEnd(s string, from int) int {
	inQuote := false
	for i := from; i < len(s); i++ {
		switch s[i] {
		case '\\':
			if inQuote {
				i++ // skip the escaped byte
			}
		case '"':
			inQuote = !inQuote
		case '}':
			if !inQuote {
				return i
			}
		}
	}
	return -1
}

// parseLabels parses k="v",... with exposition escaping.
func parseLabels(s string) (map[string]string, error) {
	out := map[string]string{}
	for len(s) > 0 {
		eq := strings.Index(s, "=")
		if eq < 0 {
			return nil, fmt.Errorf("malformed label pair in %q", s)
		}
		name := strings.TrimSpace(s[:eq])
		if name != "le" && !validLabelName(name) {
			return nil, fmt.Errorf("invalid label name %q", name)
		}
		s = s[eq+1:]
		if len(s) == 0 || s[0] != '"' {
			return nil, fmt.Errorf("unquoted label value for %q", name)
		}
		s = s[1:]
		var val strings.Builder
		closed := false
		for i := 0; i < len(s); i++ {
			c := s[i]
			if c == '\\' && i+1 < len(s) {
				i++
				switch s[i] {
				case 'n':
					val.WriteByte('\n')
				case '\\', '"':
					val.WriteByte(s[i])
				default:
					return nil, fmt.Errorf("bad escape in label %q", name)
				}
				continue
			}
			if c == '"' {
				s = s[i+1:]
				closed = true
				break
			}
			val.WriteByte(c)
		}
		if !closed {
			return nil, fmt.Errorf("unterminated label value for %q", name)
		}
		if _, dup := out[name]; dup {
			return nil, fmt.Errorf("duplicate label %q", name)
		}
		out[name] = val.String()
		s = strings.TrimPrefix(strings.TrimSpace(s), ",")
		s = strings.TrimSpace(s)
	}
	return out, nil
}

// canonicalLabels renders a label map sorted, for duplicate detection.
func canonicalLabels(labels map[string]string) string {
	return canonicalLabelsExcept(labels, "")
}

func canonicalLabelsExcept(labels map[string]string, skip string) string {
	keys := make([]string, 0, len(labels))
	for k := range labels {
		if k != skip {
			keys = append(keys, k)
		}
	}
	sort.Strings(keys)
	var b strings.Builder
	for i, k := range keys {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(k + "=" + labels[k])
	}
	return b.String()
}
