package telemetry

import (
	"strings"
	"testing"
)

func lintErr(t *testing.T, exposition, wantSubstr string) {
	t.Helper()
	_, err := Lint(strings.NewReader(exposition))
	if err == nil {
		t.Fatalf("Lint accepted:\n%s", exposition)
	}
	if !strings.Contains(err.Error(), wantSubstr) {
		t.Fatalf("Lint error %q, want substring %q", err, wantSubstr)
	}
}

func TestLintAcceptsWriterOutput(t *testing.T) {
	r := NewRegistry()
	req := r.NewCounter("xfd_http_requests_total", "requests", "route", "tenant", "code")
	req.With("POST /v1/discover", "acme", "2xx").Add(10)
	req.With("POST /v1/discover", "acme", "4xx").Add(2)
	r.NewGauge("xfd_admission_queue_depth", "queued").With().Set(3)
	h := r.NewHistogram("xfd_http_request_duration_seconds", "latency", nil, "route")
	h.With("POST /v1/discover").Observe(0.004)
	h.With("POST /v1/jobs").Observe(2)
	r.NewGaugeFunc("go_goroutines", "goroutines", func() float64 { return 12 })

	sum, err := Lint(strings.NewReader(r.Render()))
	if err != nil {
		t.Fatalf("Lint rejected writer output: %v\n%s", err, r.Render())
	}
	if sum.Families != 4 {
		t.Errorf("families = %d, want 4", sum.Families)
	}
	if sum.Samples == 0 {
		t.Error("no samples counted")
	}
}

func TestLintViolations(t *testing.T) {
	for name, tc := range map[string]struct{ in, want string }{
		"sample before TYPE": {
			"a_total 1\n", "before its # TYPE"},
		"unknown type": {
			"# TYPE a_total widget\na_total 1\n", "unknown TYPE"},
		"second TYPE": {
			"# TYPE a_total counter\n# TYPE a_total counter\na_total 1\n", "second TYPE"},
		"second HELP": {
			"# HELP a x\n# HELP a x\n", "second HELP"},
		"TYPE after samples": {
			"# TYPE a gauge\na 1\n# TYPE a counter\n", "second TYPE"},
		"bad metric name": {
			"# TYPE 9bad counter\n", "invalid metric name"},
		"counter naming": {
			"# TYPE a counter\na 1\n", "should end in _total"},
		"duplicate sample": {
			"# TYPE a gauge\na 1\na 2\n", "duplicate sample"},
		"duplicate label": {
			"# TYPE a gauge\na{x=\"1\",x=\"2\"} 1\n", "duplicate label"},
		"bad value": {
			"# TYPE a gauge\na pants\n", "unparsable value"},
		"unterminated labels": {
			"# TYPE a gauge\na{x=\"1\" 2\n", "unterminated"},
		"histogram without Inf": {
			"# TYPE h histogram\nh_bucket{le=\"1\"} 1\nh_sum 1\nh_count 1\n", "no +Inf"},
		"histogram non-cumulative": {
			"# TYPE h histogram\nh_bucket{le=\"1\"} 5\nh_bucket{le=\"2\"} 3\n", "not cumulative"},
		"histogram descending bounds": {
			"# TYPE h histogram\nh_bucket{le=\"2\"} 1\nh_bucket{le=\"1\"} 1\n", "not ascending"},
		"histogram Inf/count mismatch": {
			"# TYPE h histogram\nh_bucket{le=\"+Inf\"} 2\nh_sum 1\nh_count 3\n", "disagree with _count"},
		"histogram missing sum": {
			"# TYPE h histogram\nh_bucket{le=\"+Inf\"} 1\nh_count 1\n", "missing _sum"},
	} {
		t.Run(name, func(t *testing.T) { lintErr(t, tc.in, tc.want) })
	}
}

func TestLintAcceptsEdgeForms(t *testing.T) {
	ok := `# random comment
# HELP a_total things
# TYPE a_total counter
a_total{v="esc\"aped\\np"} 4
a_total{v="/v1/jobs/{id}"} 2
# TYPE inf_gauge gauge
inf_gauge +Inf
# TYPE t_gauge gauge
t_gauge 1 1712345678
`
	if _, err := Lint(strings.NewReader(ok)); err != nil {
		t.Fatalf("Lint rejected legal exposition: %v", err)
	}
}

// TestLintPerSeriesBucketRuns checks that a histogram with several
// label sets restarts its bound/cumulative tracking per series.
func TestLintPerSeriesBucketRuns(t *testing.T) {
	in := `# TYPE h histogram
h_bucket{r="a",le="1"} 5
h_bucket{r="a",le="+Inf"} 5
h_bucket{r="b",le="1"} 2
h_bucket{r="b",le="+Inf"} 2
h_sum{r="a"} 1
h_count{r="a"} 5
h_sum{r="b"} 1
h_count{r="b"} 2
`
	if _, err := Lint(strings.NewReader(in)); err != nil {
		t.Fatalf("per-series runs rejected: %v", err)
	}
}
