package telemetry

import (
	"expvar"
	"fmt"
	"math"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
)

func TestCounterRender(t *testing.T) {
	r := NewRegistry()
	c := r.NewCounter("xfd_requests_total", "requests served", "route", "code")
	c.With("/v1/discover", "2xx").Add(3)
	c.With("/v1/discover", "5xx").Inc()
	c.With("/v1/jobs", "2xx").Add(2)
	got := r.Render()
	want := `# HELP xfd_requests_total requests served
# TYPE xfd_requests_total counter
xfd_requests_total{route="/v1/discover",code="2xx"} 3
xfd_requests_total{route="/v1/discover",code="5xx"} 1
xfd_requests_total{route="/v1/jobs",code="2xx"} 2
`
	if got != want {
		t.Errorf("render:\n%s\nwant:\n%s", got, want)
	}
}

func TestGaugeAndGaugeFunc(t *testing.T) {
	r := NewRegistry()
	g := r.NewGauge("xfd_queue_depth", "queued requests")
	g.With().Set(4)
	g.With().Add(-1)
	r.NewGaugeFunc("go_goroutines", "live goroutines", func() float64 { return 7 })
	got := r.Render()
	for _, want := range []string{"xfd_queue_depth 3\n", "go_goroutines 7\n"} {
		if !strings.Contains(got, want) {
			t.Errorf("render missing %q:\n%s", want, got)
		}
	}
}

func TestHistogramCumulativeBuckets(t *testing.T) {
	r := NewRegistry()
	h := r.NewHistogram("xfd_latency_seconds", "latency", []float64{0.1, 1, 10})
	series := h.With()
	for _, v := range []float64{0.05, 0.05, 0.5, 5, 50} {
		series.Observe(v)
	}
	got := r.Render()
	for _, want := range []string{
		`xfd_latency_seconds_bucket{le="0.1"} 2`,
		`xfd_latency_seconds_bucket{le="1"} 3`,
		`xfd_latency_seconds_bucket{le="10"} 4`,
		`xfd_latency_seconds_bucket{le="+Inf"} 5`,
		`xfd_latency_seconds_sum 55.6`,
		`xfd_latency_seconds_count 5`,
	} {
		if !strings.Contains(got, want+"\n") {
			t.Errorf("render missing %q:\n%s", want, got)
		}
	}
}

// TestHistogramBoundaryInclusive pins the le contract: a sample equal
// to a bound lands in that bound's bucket.
func TestHistogramBoundaryInclusive(t *testing.T) {
	r := NewRegistry()
	h := r.NewHistogram("b_seconds", "x", []float64{1, 2})
	h.With().Observe(1)
	got := r.Render()
	if !strings.Contains(got, `b_seconds_bucket{le="1"} 1`) {
		t.Errorf("sample at bound not counted le-inclusively:\n%s", got)
	}
}

func TestLabelEscaping(t *testing.T) {
	r := NewRegistry()
	c := r.NewCounter("esc_total", "x", "tenant")
	c.With(`a"b\c` + "\n").Inc()
	got := r.Render()
	want := `esc_total{tenant="a\"b\\c\n"} 1`
	if !strings.Contains(got, want+"\n") {
		t.Errorf("render missing %q:\n%s", want, got)
	}
	// The writer's output must satisfy the package's own checker.
	if _, err := Lint(strings.NewReader(got)); err != nil {
		t.Errorf("self-lint: %v", err)
	}
}

func TestRegistryPanicsOnDuplicateAndInvalid(t *testing.T) {
	r := NewRegistry()
	r.NewCounter("dup_total", "x")
	for name, fn := range map[string]func(){
		"duplicate":   func() { r.NewCounter("dup_total", "x") },
		"bad metric":  func() { r.NewCounter("0bad", "x") },
		"bad label":   func() { r.NewCounter("ok_total", "x", "le") },
		"descending":  func() { r.NewHistogram("h_seconds", "x", []float64{2, 1}) },
		"label arity": func() { r.NewGauge("g2", "x", "a").With("1", "2") },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: no panic", name)
				}
			}()
			fn()
		}()
	}
}

func TestConcurrentObserve(t *testing.T) {
	r := NewRegistry()
	c := r.NewCounter("race_total", "x", "w")
	h := r.NewHistogram("race_seconds", "x", nil)
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				c.With(fmt.Sprint(i % 2)).Inc()
				h.With().Observe(float64(j) / 100)
			}
		}(i)
	}
	wg.Wait()
	if got := c.With("0").Value() + c.With("1").Value(); got != 8000 {
		t.Errorf("counter sum = %v, want 8000", got)
	}
	if got := h.With().count.Load(); got != 8000 {
		t.Errorf("histogram count = %d, want 8000", got)
	}
}

func TestHandlerServesExposition(t *testing.T) {
	r := NewRegistry()
	r.NewCounter("served_total", "x").With().Inc()
	rec := httptest.NewRecorder()
	r.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if ct := rec.Header().Get("Content-Type"); !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		t.Errorf("Content-Type = %q", ct)
	}
	if !strings.Contains(rec.Body.String(), "served_total 1\n") {
		t.Errorf("body missing sample:\n%s", rec.Body.String())
	}
}

func TestDurationBucketsAscending(t *testing.T) {
	for i := 1; i < len(DurationBuckets); i++ {
		if DurationBuckets[i] <= DurationBuckets[i-1] {
			t.Fatalf("DurationBuckets not ascending at %d", i)
		}
	}
}

func TestFormatValue(t *testing.T) {
	for v, want := range map[float64]string{
		0:       "0",
		3:       "3",
		1234567: "1234567",
		0.25:    "0.25",
	} {
		if got := formatValue(v); got != want {
			t.Errorf("formatValue(%v) = %q, want %q", v, got, want)
		}
	}
	if got := formatValue(math.Inf(1)); got != "+Inf" && got != "+inf" {
		t.Logf("formatValue(+Inf) = %q", got) // informational: gauges never emit Inf
	}
}

// TestPublishExpvarIdempotent is the duplicate-name regression: two
// publishers under one name must not panic, and the latest must win.
func TestPublishExpvarIdempotent(t *testing.T) {
	PublishExpvar("telemetry_test_var", func() any { return 1 })
	PublishExpvar("telemetry_test_var", func() any { return 2 })
	v := expvar.Get("telemetry_test_var")
	if v == nil {
		t.Fatal("var not published")
	}
	if got := v.String(); got != "2" {
		t.Errorf("expvar reads %s, want 2 (latest publisher wins)", got)
	}
}
