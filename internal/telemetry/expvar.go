package telemetry

// expvar.go makes expvar publication idempotent. expvar.Publish
// panics on a duplicate name and offers no unpublish, which turns
// innocent patterns — two Engines published under one default name,
// a server restarted inside one test process — into crashes. The
// indirection here publishes each name to expvar exactly once, with
// the expvar.Func reading through a registry slot that later
// PublishExpvar calls for the same name overwrite (latest wins: the
// newest publisher is the live object the operator cares about).

import (
	"expvar"
	"sync"
)

var expvarMu sync.Mutex

// expvarSlots maps each published name to its current snapshot
// function; guarded by expvarMu.
var expvarSlots = make(map[string]func() any)

// PublishExpvar publishes f's result under name in the process-wide
// expvar registry (rendered at /debug/vars). Unlike expvar.Publish it
// is idempotent: republishing a name replaces its snapshot function
// instead of panicking, so two engines (or a restarted server) may
// publish under one name within a process — the latest call wins.
func PublishExpvar(name string, f func() any) {
	expvarMu.Lock()
	defer expvarMu.Unlock()
	_, republish := expvarSlots[name]
	expvarSlots[name] = f
	if republish {
		return
	}
	expvar.Publish(name, expvar.Func(func() any { return readSlot(name) }))
}

// readSlot reads through the registry slot at scrape time — after
// PublishExpvar has returned, never under its lock.
func readSlot(name string) any {
	expvarMu.Lock()
	g := expvarSlots[name]
	expvarMu.Unlock()
	return g()
}
