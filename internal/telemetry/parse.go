package telemetry

// parse.go is the read side of the exposition format for consumers —
// xfdtop scrapes /metrics and needs samples back as values, not text.
// It shares the sample grammar with the linter (parseSample), so what
// the linter accepts this parser returns.

import (
	"bufio"
	"fmt"
	"io"
	"strings"
)

// Sample is one parsed exposition line: a metric name, its label set
// (possibly empty, never nil), and the value.
type Sample struct {
	Name   string
	Labels map[string]string
	Value  float64
}

// Label returns the sample's value for the named label ("" when
// absent).
func (s Sample) Label(name string) string { return s.Labels[name] }

// ParseExposition reads a Prometheus text exposition and returns its
// samples in order, skipping comments and blank lines. It parses the
// sample grammar strictly but does not enforce the structural rules
// Lint checks (comment ordering, histogram shape); scrape a server you
// trust, or Lint first.
func ParseExposition(r io.Reader) ([]Sample, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<20)
	var out []Sample
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		name, labels, v, err := parseSample(text)
		if err != nil {
			return nil, fmt.Errorf("line %d: %w", line, err)
		}
		if labels == nil {
			labels = map[string]string{}
		}
		out = append(out, Sample{Name: name, Labels: labels, Value: v})
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return out, nil
}
