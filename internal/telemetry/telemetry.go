// Package telemetry is the service-level metrics layer: a hand-rolled,
// stdlib-only implementation of the Prometheus text exposition format
// (version 0.0.4) — counters, gauges, and cumulative histograms,
// optionally labelled, collected in a Registry and rendered by one
// scrape of GET /metrics.
//
// It exists because xfdd needs fleet-grade telemetry (per-tenant RED
// metrics, admission gauges, engine counters) without taking a
// dependency: the exposition format is a small, stable, line-oriented
// text protocol, and the subset here — no summaries, no exemplars, no
// protobuf — is everything a Prometheus or OpenMetrics scraper needs.
//
// Concurrency: every metric type is safe for concurrent use. The hot
// write path (Counter.Add, Histogram.Observe) is lock-free atomics;
// label-vector lookup takes a short per-family mutex, and callers on
// hot paths hold on to the resolved series (With once, Add many).
//
// The library discovery path does not touch this package at all —
// telemetry is a serving-layer concern, and the engine's own
// counters (Engine.Metrics) are bridged into a Registry by the server
// rather than instrumented directly — so the nil-tracer fast path the
// E13 bench gate pins is unaffected.
package telemetry

import (
	"fmt"
	"math"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// DurationBuckets is the shared latency bucket scheme, in seconds:
// roughly logarithmic from 1 ms to 60 s, chosen so the same
// boundaries serve HTTP request histograms (sub-second for cached
// runs, tens of seconds for cold wide documents) and the bench
// report's per-case latency distributions
// (internal/bench.LatencySummary reuses these, converted to
// milliseconds). Keeping one scheme makes service histograms and bench
// histograms directly comparable.
var DurationBuckets = []float64{
	0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5,
	1, 2.5, 5, 10, 30, 60,
}

// metricKind is the TYPE line vocabulary.
type metricKind string

const (
	kindCounter   metricKind = "counter"
	kindGauge     metricKind = "gauge"
	kindHistogram metricKind = "histogram"
)

// family is one named metric family: its metadata plus every labelled
// series created under it. Series are rendered sorted by label value
// so scrapes are deterministic.
type family struct {
	name    string
	help    string
	kind    metricKind
	labels  []string
	buckets []float64 // histograms only

	mu     sync.Mutex
	series map[string]renderable // label-values key → series; guarded by mu
	gauge  func() float64        // kind gauge with nil series: a GaugeFunc
}

// renderable is one series' contribution to the exposition.
type renderable interface {
	render(w *strings.Builder, fam *family, labelPairs string)
}

// Registry collects metric families and renders them as Prometheus
// text exposition. The zero value is not usable; call NewRegistry.
type Registry struct {
	mu       sync.Mutex
	families []*family // registration order preserved; guarded by mu
	byName   map[string]*family
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{byName: make(map[string]*family)}
}

// register adds a family, panicking on a duplicate or invalid name —
// metric registration is program structure, not input, so a clash is
// a bug worth failing loudly on (mirroring expvar.Publish).
func (r *Registry) register(f *family) {
	if !validMetricName(f.name) {
		panic("telemetry: invalid metric name " + f.name)
	}
	for _, l := range f.labels {
		if !validLabelName(l) {
			panic("telemetry: invalid label name " + l + " on " + f.name)
		}
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.byName[f.name] != nil {
		panic("telemetry: duplicate metric " + f.name)
	}
	r.byName[f.name] = f
	r.families = append(r.families, f)
}

// NewCounter registers a counter family. With no label names the
// family is a single series; otherwise obtain series with
// CounterVec.With.
func (r *Registry) NewCounter(name, help string, labelNames ...string) *CounterVec {
	f := &family{name: name, help: help, kind: kindCounter,
		labels: labelNames, series: make(map[string]renderable)}
	r.register(f)
	return &CounterVec{fam: f}
}

// NewGauge registers a gauge family.
func (r *Registry) NewGauge(name, help string, labelNames ...string) *GaugeVec {
	f := &family{name: name, help: help, kind: kindGauge,
		labels: labelNames, series: make(map[string]renderable)}
	r.register(f)
	return &GaugeVec{fam: f}
}

// NewGaugeFunc registers a gauge whose value is read at scrape time —
// the bridge for state owned elsewhere (queue depths, runtime stats).
func (r *Registry) NewGaugeFunc(name, help string, f func() float64) {
	fam := &family{name: name, help: help, kind: kindGauge, gauge: f}
	r.register(fam)
}

// NewCounterFunc registers a counter whose value is read at scrape
// time — the bridge for monotonic state owned elsewhere (the server
// folds Engine.Metrics counters this way). The function must be
// monotonically non-decreasing; the registry does not enforce it.
func (r *Registry) NewCounterFunc(name, help string, f func() float64) {
	fam := &family{name: name, help: help, kind: kindCounter, gauge: f}
	r.register(fam)
}

// NewHistogram registers a cumulative-histogram family over the given
// bucket upper bounds (ascending; +Inf is implicit). Nil buckets use
// DurationBuckets.
func (r *Registry) NewHistogram(name, help string, buckets []float64, labelNames ...string) *HistogramVec {
	if buckets == nil {
		buckets = DurationBuckets
	}
	for i := 1; i < len(buckets); i++ {
		if buckets[i] <= buckets[i-1] {
			panic("telemetry: histogram buckets for " + name + " not ascending")
		}
	}
	f := &family{name: name, help: help, kind: kindHistogram,
		labels: labelNames, buckets: buckets, series: make(map[string]renderable)}
	r.register(f)
	return &HistogramVec{fam: f}
}

// Counter is one monotonically increasing series.
type Counter struct {
	bits atomic.Uint64 // float64 bits
}

// Add increments the counter; negative deltas are ignored (counters
// are monotonic by contract).
func (c *Counter) Add(v float64) {
	if v < 0 {
		return
	}
	for {
		old := c.bits.Load()
		nw := math.Float64bits(math.Float64frombits(old) + v)
		if c.bits.CompareAndSwap(old, nw) {
			return
		}
	}
}

// Inc adds one.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current count.
func (c *Counter) Value() float64 { return math.Float64frombits(c.bits.Load()) }

func (c *Counter) render(w *strings.Builder, fam *family, labelPairs string) {
	sample(w, fam.name, labelPairs, c.Value())
}

// CounterVec is a counter family; resolve series with With.
type CounterVec struct{ fam *family }

// With returns the series for the label values (order matches the
// registered label names). Resolving is a map lookup under the family
// mutex; hot paths should resolve once and reuse the *Counter.
func (v *CounterVec) With(labelValues ...string) *Counter {
	s := v.fam.lookup(labelValues, func() renderable { return &Counter{} })
	return s.(*Counter)
}

// Gauge is one series that can go up and down.
type Gauge struct {
	bits atomic.Uint64
}

// Set replaces the gauge value.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Add shifts the gauge by v (negative allowed).
func (g *Gauge) Add(v float64) {
	for {
		old := g.bits.Load()
		nw := math.Float64bits(math.Float64frombits(old) + v)
		if g.bits.CompareAndSwap(old, nw) {
			return
		}
	}
}

// Value returns the current value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

func (g *Gauge) render(w *strings.Builder, fam *family, labelPairs string) {
	sample(w, fam.name, labelPairs, g.Value())
}

// GaugeVec is a gauge family.
type GaugeVec struct{ fam *family }

// With returns the series for the label values.
func (v *GaugeVec) With(labelValues ...string) *Gauge {
	s := v.fam.lookup(labelValues, func() renderable { return &Gauge{} })
	return s.(*Gauge)
}

// Histogram is one cumulative-histogram series: per-bucket counts
// (cumulative at render time), a sum, and a total count.
type Histogram struct {
	buckets []float64
	counts  []atomic.Uint64 // per bucket, non-cumulative; +Inf at the end
	sumBits atomic.Uint64
	count   atomic.Uint64
}

// Observe records one sample.
func (h *Histogram) Observe(v float64) {
	i := sort.SearchFloat64s(h.buckets, v) // first bucket with bound >= v
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sumBits.Load()
		nw := math.Float64bits(math.Float64frombits(old) + v)
		if h.sumBits.CompareAndSwap(old, nw) {
			return
		}
	}
}

func (h *Histogram) render(w *strings.Builder, fam *family, labelPairs string) {
	var cum uint64
	for i, le := range h.buckets {
		cum += h.counts[i].Load()
		bucketSample(w, fam.name, labelPairs, formatBound(le), cum)
	}
	cum += h.counts[len(h.buckets)].Load()
	bucketSample(w, fam.name, labelPairs, "+Inf", cum)
	sample(w, fam.name+"_sum", labelPairs, math.Float64frombits(h.sumBits.Load()))
	sample(w, fam.name+"_count", labelPairs, float64(h.count.Load()))
}

// HistogramVec is a histogram family.
type HistogramVec struct{ fam *family }

// With returns the series for the label values.
func (v *HistogramVec) With(labelValues ...string) *Histogram {
	s := v.fam.lookup(labelValues, func() renderable {
		return &Histogram{
			buckets: v.fam.buckets,
			counts:  make([]atomic.Uint64, len(v.fam.buckets)+1),
		}
	})
	return s.(*Histogram)
}

// lookup resolves (creating on first use) the series for the label
// values.
func (f *family) lookup(labelValues []string, mk func() renderable) renderable {
	if len(labelValues) != len(f.labels) {
		panic(fmt.Sprintf("telemetry: %s wants %d label values, got %d",
			f.name, len(f.labels), len(labelValues)))
	}
	key := strings.Join(labelValues, "\xff")
	f.mu.Lock()
	defer f.mu.Unlock()
	s := f.series[key]
	if s == nil {
		s = mk()
		f.series[key] = s
	}
	return s
}

// WriteTo renders the full exposition: every family's HELP and TYPE
// lines followed by its series, sorted by label key within the family
// so repeated scrapes diff cleanly.
func (r *Registry) WriteTo(w *strings.Builder) {
	r.mu.Lock()
	fams := make([]*family, len(r.families))
	copy(fams, r.families)
	r.mu.Unlock()
	for _, f := range fams {
		fmt.Fprintf(w, "# HELP %s %s\n", f.name, escapeHelp(f.help))
		fmt.Fprintf(w, "# TYPE %s %s\n", f.name, f.kind)
		if f.gauge != nil {
			sample(w, f.name, "", f.gauge())
			continue
		}
		f.mu.Lock()
		keys := make([]string, 0, len(f.series))
		for k := range f.series {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		rows := make([]struct {
			pairs string
			s     renderable
		}, len(keys))
		for i, k := range keys {
			rows[i].pairs = labelPairs(f.labels, strings.Split(k, "\xff"))
			rows[i].s = f.series[k]
		}
		f.mu.Unlock()
		for _, row := range rows {
			row.s.render(w, f, row.pairs)
		}
	}
}

// Render returns the exposition as a string.
func (r *Registry) Render() string {
	var b strings.Builder
	r.WriteTo(&b)
	return b.String()
}

// Handler serves the registry as GET /metrics.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_, _ = w.Write([]byte(r.Render()))
	})
}

// labelPairs renders {k="v",...} (or "" with no labels), escaping
// label values per the exposition grammar.
func labelPairs(names, values []string) string {
	if len(names) == 0 {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, n := range names {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(n)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(values[i]))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

// bucketSample renders one _bucket line, merging the le label into
// any existing pairs.
func bucketSample(w *strings.Builder, name, pairs, le string, cum uint64) {
	w.WriteString(name)
	w.WriteString("_bucket")
	if pairs == "" {
		w.WriteString(`{le="` + le + `"}`)
	} else {
		w.WriteString(pairs[:len(pairs)-1] + `,le="` + le + `"}`)
	}
	w.WriteByte(' ')
	w.WriteString(strconv.FormatUint(cum, 10))
	w.WriteByte('\n')
}

// sample renders one sample line.
func sample(w *strings.Builder, name, pairs string, v float64) {
	w.WriteString(name)
	w.WriteString(pairs)
	w.WriteByte(' ')
	w.WriteString(formatValue(v))
	w.WriteByte('\n')
}

// formatValue renders a sample value: integral values without an
// exponent so counters read naturally, others in shortest float form.
func formatValue(v float64) string {
	if v == math.Trunc(v) && math.Abs(v) < 1e15 {
		return strconv.FormatFloat(v, 'f', -1, 64)
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// formatBound renders a bucket bound (le label value).
func formatBound(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// escapeLabel escapes a label value per the exposition format.
func escapeLabel(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	s = strings.ReplaceAll(s, "\n", `\n`)
	return strings.ReplaceAll(s, `"`, `\"`)
}

// escapeHelp escapes a HELP string.
func escapeHelp(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

// validMetricName reports whether name matches
// [a-zA-Z_:][a-zA-Z0-9_:]*.
func validMetricName(name string) bool {
	if name == "" {
		return false
	}
	for i, c := range name {
		ok := c == '_' || c == ':' ||
			(c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
			(i > 0 && c >= '0' && c <= '9')
		if !ok {
			return false
		}
	}
	return true
}

// validLabelName reports whether name matches [a-zA-Z_][a-zA-Z0-9_]*
// and is not reserved (__ prefix, or the histogram's le).
func validLabelName(name string) bool {
	if name == "" || strings.HasPrefix(name, "__") || name == "le" {
		return false
	}
	for i, c := range name {
		ok := c == '_' ||
			(c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
			(i > 0 && c >= '0' && c <= '9')
		if !ok {
			return false
		}
	}
	return true
}
