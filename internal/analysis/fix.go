package analysis

// fix.go applies the mechanical rewrites attached to findings
// (`xfdlint -fix`): byte-range edits grouped per file, applied
// back-to-front so earlier offsets stay valid, missing imports
// inserted, and the result gofmt'ed. Application is all-or-nothing
// per file — a fixed file that no longer parses is a bug in the
// analyzer, and the original is left untouched.

import (
	"fmt"
	"go/format"
	"go/parser"
	"go/token"
	"os"
	"sort"
	"strconv"
	"strings"
)

// A FileFix is the planned rewrite of one file.
type FileFix struct {
	Filename string
	// Fixed is the formatted post-fix content.
	Fixed []byte
	// Count is the number of findings whose fixes landed in the file.
	Count int
}

// PlanFixes collects the fixes of the given findings into per-file
// rewrites without touching disk. Findings without fixes are ignored.
// Overlapping edits within a file abort that file's plan with an
// error (two analyzers rewriting the same bytes need a human).
func PlanFixes(findings []Finding) ([]FileFix, error) {
	type fileEdits struct {
		edits   []Edit
		imports map[string]bool
		count   int
	}
	byFile := map[string]*fileEdits{}
	for _, f := range findings {
		if f.Fix == nil {
			continue
		}
		counted := map[string]bool{}
		for _, e := range f.Fix.Edits {
			fe := byFile[e.Filename]
			if fe == nil {
				fe = &fileEdits{imports: map[string]bool{}}
				byFile[e.Filename] = fe
			}
			fe.edits = append(fe.edits, e)
			if f.Fix.AddImport != "" {
				fe.imports[f.Fix.AddImport] = true
			}
			if !counted[e.Filename] {
				counted[e.Filename] = true
				fe.count++
			}
		}
	}

	names := make([]string, 0, len(byFile))
	for name := range byFile {
		names = append(names, name)
	}
	sort.Strings(names)

	var out []FileFix
	for _, name := range names {
		fe := byFile[name]
		src, err := os.ReadFile(name)
		if err != nil {
			return nil, fmt.Errorf("analysis: reading %s for fixing: %w", name, err)
		}
		fixed, err := applyEdits(src, fe.edits)
		if err != nil {
			return nil, fmt.Errorf("analysis: fixing %s: %w", name, err)
		}
		for imp := range fe.imports {
			fixed, err = ensureImport(fixed, imp)
			if err != nil {
				return nil, fmt.Errorf("analysis: fixing %s: %w", name, err)
			}
		}
		formatted, err := format.Source(fixed)
		if err != nil {
			return nil, fmt.Errorf("analysis: fixed %s does not parse: %w", name, err)
		}
		out = append(out, FileFix{Filename: name, Fixed: formatted, Count: fe.count})
	}
	return out, nil
}

// ApplyFixes writes the planned rewrites to disk and returns the
// number of files changed.
func ApplyFixes(plans []FileFix) (int, error) {
	changed := 0
	for _, p := range plans {
		cur, err := os.ReadFile(p.Filename)
		if err != nil {
			return changed, err
		}
		if string(cur) == string(p.Fixed) {
			continue
		}
		info, err := os.Stat(p.Filename)
		if err != nil {
			return changed, err
		}
		if err := os.WriteFile(p.Filename, p.Fixed, info.Mode().Perm()); err != nil {
			return changed, err
		}
		changed++
	}
	return changed, nil
}

// applyEdits splices the edits into src, back to front.
func applyEdits(src []byte, edits []Edit) ([]byte, error) {
	sorted := append([]Edit(nil), edits...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Offset > sorted[j].Offset })
	for i := 1; i < len(sorted); i++ {
		if sorted[i].End > sorted[i-1].Offset {
			return nil, fmt.Errorf("overlapping fixes at offsets %d and %d", sorted[i].Offset, sorted[i-1].Offset)
		}
	}
	for _, e := range sorted {
		if e.Offset < 0 || e.End > len(src) || e.Offset > e.End {
			return nil, fmt.Errorf("edit range [%d,%d) outside file of %d bytes", e.Offset, e.End, len(src))
		}
		src = append(src[:e.Offset], append([]byte(e.NewText), src[e.End:]...)...)
	}
	return src, nil
}

// ensureImport adds the import path to the file when missing,
// preferring an existing grouped import block.
func ensureImport(src []byte, path string) ([]byte, error) {
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "fixed.go", src, parser.ImportsOnly)
	if err != nil {
		return nil, err
	}
	for _, imp := range f.Imports {
		if p, err := strconv.Unquote(imp.Path.Value); err == nil && p == path {
			return src, nil // already imported
		}
	}
	line := "\t" + strconv.Quote(path) + "\n"
	// Grouped import block: insert as its first line and let gofmt
	// re-sort.
	if i := strings.Index(string(src), "import (\n"); i >= 0 {
		at := i + len("import (\n")
		return append(src[:at], append([]byte(line), src[at:]...)...), nil
	}
	// No block: add a standalone import after the package clause line.
	pkgEnd := fset.Position(f.Name.End()).Offset
	for pkgEnd < len(src) && src[pkgEnd] != '\n' {
		pkgEnd++
	}
	decl := "\nimport " + strconv.Quote(path) + "\n"
	return append(src[:pkgEnd], append([]byte(decl), src[pkgEnd:]...)...), nil
}
