package analysis

import (
	"go/ast"
	"go/types"
)

// GovDiscipline enforces the parallelism contract from PR 1: every
// goroutine the engine starts must be joined and panic-safe, which in
// this tree means it flows through the workerGroup spawn point in
// internal/core/governor.go. A bare `go` statement anywhere else can
// leak a worker past the run that started it (defeating cancellation)
// or let a worker panic kill the whole process. Raw sync.WaitGroup
// declarations are flagged for the same reason: they are the
// fan-out's root, and hand-rolled Add/Done pairings are exactly what
// workerGroup exists to replace.
//
// Suppress a sanctioned spawn with `//lint:governed <reason>` — the
// governor's own spawn point carries the annotation (and the reason)
// rather than a path allowlist, so the exception is visible in the
// code it excuses.
var GovDiscipline = &Analyzer{
	Name:      "govdiscipline",
	Directive: "governed",
	Doc:       "flag goroutine spawns and sync.WaitGroup fan-out outside the governor's panic-safe workerGroup",
	Run:       runGovDiscipline,
}

func runGovDiscipline(pass *Pass) {
	for _, f := range pass.Files {
		if pass.IsTestFile(f) {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.GoStmt:
				pass.Reportf(n.Pos(), "bare go statement: spawn workers through the governor's workerGroup so they are joined and panic-safe")
			case *ast.Ident:
				if obj, ok := pass.Info.Defs[n]; ok && obj != nil && isWaitGroupVar(obj) {
					pass.Reportf(n.Pos(), "sync.WaitGroup declared outside the governor's workerGroup: use (*workerGroup).Go/Wait for joined, panic-safe fan-out")
				}
			}
			return true
		})
	}
}

// isWaitGroupVar reports whether the defined object is a variable or
// struct field of type sync.WaitGroup (possibly behind a pointer).
func isWaitGroupVar(obj types.Object) bool {
	v, ok := obj.(*types.Var)
	if !ok {
		return false
	}
	return isNamed(v.Type(), "sync", "WaitGroup")
}
