package analysis

// lockguard is the flow-aware lock-discipline analyzer. It enforces
// three rules over the per-function CFG (cfg.go) with a must-hold
// lock lattice:
//
//  1. A struct field annotated `// guarded by <mu>` (where <mu> is a
//     sibling sync.Mutex/sync.RWMutex field) may only be read while
//     the mutex is statically held, and only written while it is held
//     exclusively (RLock does not license writes).
//  2. mu.Lock() while mu is already held on every path is a
//     self-deadlock and is flagged at the second acquisition.
//  3. mu.Lock() with neither a deferred release nor a release on
//     every path to return leaks the lock; the finding carries a
//     mechanical fix inserting `defer mu.Unlock()`.
//
// Lock identity is the printed base expression plus the mutex field
// ("e.mu", "run.eng.mu"), so receiver-qualified locks line up between
// the Lock call and the guarded access. Two conventions extend the
// lattice across call boundaries:
//
//   - a function whose doc comment says "Caller must hold x.mu" (or
//     "caller holds x.mu") starts with that lock held;
//   - function literals inherit the lock state at their definition
//     point, except literals launched by a go statement, which start
//     empty (a fresh goroutine holds nothing).

import (
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
	"strings"
)

var LockGuard = &Analyzer{
	Name:      "lockguard",
	Directive: "lockguard",
	Doc: "fields annotated `// guarded by <mu>` must be accessed under their mutex; " +
		"locks must not be re-acquired while held or leaked past return",
	Run: runLockGuard,
}

var (
	guardedByRe   = regexp.MustCompile(`guarded by ([A-Za-z_][A-Za-z0-9_]*)`)
	callerHoldsRe = regexp.MustCompile(`[Cc]aller (?:must hold|holds) ([A-Za-z_][A-Za-z0-9_]*(?:\.[A-Za-z_][A-Za-z0-9_]*)*)`)
)

// lockMode distinguishes a read-locked RWMutex from an exclusively
// held one.
type lockMode int

const (
	modeShared    lockMode = 1
	modeExclusive lockMode = 2
)

// lockState is one held lock: how it is held, where it was acquired,
// and the statement containing the acquisition (anchor for the
// defer-insertion fix).
type lockState struct {
	mode lockMode
	pos  token.Pos
	stmt ast.Stmt
}

type lockSet map[string]lockState

func (s lockSet) clone() lockSet {
	out := make(lockSet, len(s))
	for k, v := range s {
		out[k] = v
	}
	return out
}

func runLockGuard(p *Pass) {
	guarded := collectGuardedFields(p)
	lg := &lockguardPass{p: p, guarded: guarded, leaked: map[token.Pos]bool{}}
	for _, f := range p.Files {
		if p.IsTestFile(f) {
			continue
		}
		eachFuncBody(f, func(fd *ast.FuncDecl) {
			if isLockerWrapper(fd) {
				// A Lock/RLock/Unlock/RUnlock method forwarding to an
				// embedded or wrapped mutex exists to transfer lock
				// ownership to its caller; holding-at-return is its
				// contract, not a leak.
				return
			}
			entry := lockSet{}
			for _, key := range callerHeldLocks(fd.Doc) {
				entry[key] = lockState{mode: modeExclusive, pos: fd.Pos()}
			}
			lg.analyze(fd.Body, entry)
		})
	}
}

// isLockerWrapper reports whether fd is a sync.Locker-style
// forwarding method (named Lock/RLock/Unlock/RUnlock with a receiver).
func isLockerWrapper(fd *ast.FuncDecl) bool {
	if fd.Recv == nil {
		return false
	}
	switch fd.Name.Name {
	case "Lock", "RLock", "Unlock", "RUnlock":
		return true
	}
	return false
}

// callerHeldLocks parses the "Caller must hold x.mu" doc convention.
func callerHeldLocks(doc *ast.CommentGroup) []string {
	if doc == nil {
		return nil
	}
	var keys []string
	for _, m := range callerHoldsRe.FindAllStringSubmatch(doc.Text(), -1) {
		keys = append(keys, m[1])
	}
	return keys
}

// collectGuardedFields indexes every struct field in the package that
// carries a `// guarded by <mu>` doc or line comment, by its types
// object. Annotated fields are unexported in practice, so all their
// accesses are inside this package and the index is complete.
func collectGuardedFields(p *Pass) map[*types.Var]string {
	out := map[*types.Var]string{}
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			st, ok := n.(*ast.StructType)
			if !ok {
				return true
			}
			for _, field := range st.Fields.List {
				guard := guardAnnotation(field)
				if guard == "" {
					continue
				}
				for _, name := range field.Names {
					if v, ok := p.Info.Defs[name].(*types.Var); ok {
						out[v] = guard
					}
				}
			}
			return true
		})
	}
	return out
}

func guardAnnotation(field *ast.Field) string {
	for _, cg := range []*ast.CommentGroup{field.Doc, field.Comment} {
		if cg == nil {
			continue
		}
		if m := guardedByRe.FindStringSubmatch(cg.Text()); m != nil {
			return m[1]
		}
	}
	return ""
}

type lockguardPass struct {
	p       *Pass
	guarded map[*types.Var]string
	// leaked dedupes leak reports by acquisition position: a Lock
	// reachable from several exits is one finding.
	leaked map[token.Pos]bool
}

// analyze runs the full lockguard check over one function body with
// the given entry lock set, recursing into contained function
// literals with the state at their definition point.
func (lg *lockguardPass) analyze(body *ast.BlockStmt, entry lockSet) {
	g := buildCFG(body, lg.p.Info)
	if g.unanalyzable {
		return
	}
	deferred := deferredReleases(lg.p.Info, g)

	// Must-analysis (intersection meet): licenses guarded accesses
	// and detects re-acquisition.
	mustIn := lg.fixpoint(g, entry, false)
	for _, b := range g.blocks {
		in, ok := mustIn[b]
		if !ok {
			continue // unreachable
		}
		set := in.clone()
		for _, s := range b.stmts {
			lg.checkStmt(s, set)
		}
	}

	// May-analysis (union meet): a lock still possibly held at a
	// normal exit, with no deferred release, leaks.
	mayIn := lg.fixpoint(g, lockSet{}, true)
	for _, b := range g.blocks {
		in, ok := mayIn[b]
		if !ok || b.panics {
			continue
		}
		if !b.returns && len(b.succs) > 0 {
			continue
		}
		out := in.clone()
		for _, s := range b.stmts {
			applyLockOps(lg.p.Info, s, out, true, nil)
		}
		for key, st := range out {
			if deferred[key] || lg.leaked[st.pos] {
				continue
			}
			lg.leaked[st.pos] = true
			release := "Unlock"
			if st.mode == modeShared {
				release = "RUnlock"
			}
			var fix *Fix
			if st.stmt != nil {
				indent := strings.Repeat("\t", lg.p.Fset.Position(st.stmt.Pos()).Column-1)
				fix = &Fix{
					Message: "insert defer " + key + "." + release + "()",
					Edits: []Edit{lg.p.EditAt(st.stmt.End(), st.stmt.End(),
						"\n"+indent+"defer "+key+"."+release+"()")},
				}
			}
			lg.p.ReportFixf(st.pos, fix, "%s is locked but not released on every path (add defer %s.%s() or release before return)", key, key, release)
		}
	}
}

// deferredReleases collects the lock keys released by deferred
// statements — `defer mu.Unlock()` directly, or any release inside a
// deferred closure. A deferred release satisfies every exit.
func deferredReleases(info *types.Info, g *cfg) map[string]bool {
	out := map[string]bool{}
	for _, d := range g.defers {
		ast.Inspect(d, func(n ast.Node) bool {
			if call, ok := n.(*ast.CallExpr); ok {
				if key, op, _, ok := mutexOp(info, call); ok && op == "release" {
					out[key] = true
				}
			}
			return true
		})
	}
	return out
}

// fixpoint runs the forward lock dataflow over the CFG. may selects
// the meet: false = intersection (must-hold), true = union
// (may-hold). The returned map has an entry for every reachable
// block; absence means unreachable.
func (lg *lockguardPass) fixpoint(g *cfg, entry lockSet, may bool) map[*cfgBlock]lockSet {
	in := map[*cfgBlock]lockSet{g.entry: entry}
	work := []*cfgBlock{g.entry}
	for len(work) > 0 {
		b := work[0]
		work = work[1:]
		out := in[b].clone()
		for _, s := range b.stmts {
			applyLockOps(lg.p.Info, s, out, true, nil)
		}
		for _, succ := range b.succs {
			var merged lockSet
			cur, seen := in[succ]
			if !seen {
				merged = out.clone()
			} else if may {
				merged = cur.clone()
				for k, v := range out {
					if _, ok := merged[k]; !ok {
						merged[k] = v
					}
				}
			} else {
				merged = lockSet{}
				for k, v := range cur {
					if o, ok := out[k]; ok {
						if o.mode < v.mode {
							v = o
						}
						merged[k] = v
					}
				}
			}
			if !seen || !sameLockSet(merged, in[succ]) {
				in[succ] = merged
				work = append(work, succ)
			}
		}
	}
	return in
}

func sameLockSet(a, b lockSet) bool {
	if len(a) != len(b) {
		return false
	}
	for k, v := range a {
		o, ok := b[k]
		if !ok || o.mode != v.mode {
			return false
		}
	}
	return true
}

// applyLockOps walks one statement in evaluation order applying mutex
// acquire/release calls to set. Function literal bodies are skipped —
// they execute elsewhere (onLit, when non-nil, receives each literal
// with a snapshot of the state at its definition and whether it is
// launched by a go statement). Deferred calls do not change the
// in-line state; deferredReleases accounts for them at exits.
func applyLockOps(info *types.Info, stmt ast.Stmt, set lockSet, skipDeferred bool, onLit func(lit *ast.FuncLit, at lockSet, inGo bool)) {
	var deferredCall *ast.CallExpr
	if d, ok := stmt.(*ast.DeferStmt); ok && skipDeferred {
		deferredCall = d.Call
	}
	goLit := map[*ast.FuncLit]bool{}
	ast.Inspect(stmt, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.GoStmt:
			if lit, ok := n.Call.Fun.(*ast.FuncLit); ok {
				goLit[lit] = true
			}
		case *ast.FuncLit:
			if onLit != nil {
				onLit(n, set.clone(), goLit[n])
			}
			return false
		case *ast.CallExpr:
			if n == deferredCall {
				// The deferred call itself runs at exit; its arguments
				// are still evaluated here, so keep descending.
				return true
			}
			if key, op, mode, ok := mutexOp(info, n); ok {
				switch op {
				case "acquire":
					set[key] = lockState{mode: mode, pos: n.Pos(), stmt: stmt}
				case "release":
					delete(set, key)
				}
			}
		}
		return true
	})
}

// mutexOp recognizes a Lock/Unlock/RLock/RUnlock call on a
// sync.Mutex or sync.RWMutex and returns the lock key, the operation
// class, and the mode.
func mutexOp(info *types.Info, call *ast.CallExpr) (key, op string, mode lockMode, ok bool) {
	sel, isSel := call.Fun.(*ast.SelectorExpr)
	if !isSel {
		return "", "", 0, false
	}
	switch sel.Sel.Name {
	case "Lock":
		op, mode = "acquire", modeExclusive
	case "RLock":
		op, mode = "acquire", modeShared
	case "Unlock":
		op, mode = "release", modeExclusive
	case "RUnlock":
		op, mode = "release", modeShared
	default:
		return "", "", 0, false
	}
	tv, found := info.Types[sel.X]
	if !found || tv.Type == nil {
		return "", "", 0, false
	}
	if !isNamed(tv.Type, "sync", "Mutex") && !isNamed(tv.Type, "sync", "RWMutex") {
		return "", "", 0, false
	}
	return types.ExprString(sel.X), op, mode, true
}

// checkStmt threads the evolving must-hold set through one statement,
// reporting double-locks and unguarded accesses, and recursing into
// function literals with the state at their definition point.
func (lg *lockguardPass) checkStmt(stmt ast.Stmt, set lockSet) {
	writes := writeTargets(stmt)
	var deferredCall *ast.CallExpr
	if d, ok := stmt.(*ast.DeferStmt); ok {
		deferredCall = d.Call
	}
	goLit := map[*ast.FuncLit]bool{}
	ast.Inspect(stmt, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.GoStmt:
			if lit, ok := n.Call.Fun.(*ast.FuncLit); ok {
				goLit[lit] = true
			}
		case *ast.FuncLit:
			entry := set.clone()
			if goLit[n] {
				entry = lockSet{}
			}
			lg.analyze(n.Body, entry)
			return false
		case *ast.CallExpr:
			if n == deferredCall {
				return true
			}
			if key, op, mode, ok := mutexOp(lg.p.Info, n); ok {
				switch op {
				case "acquire":
					if held, already := set[key]; already {
						if mode == modeExclusive || held.mode == modeExclusive {
							lg.p.Reportf(n.Pos(), "%s is already held here; locking it again self-deadlocks", key)
						}
					}
					set[key] = lockState{mode: mode, pos: n.Pos(), stmt: stmt}
				case "release":
					delete(set, key)
				}
			}
		case *ast.SelectorExpr:
			lg.checkAccess(n, set, writes[n])
		}
		return true
	})
}

// checkAccess verifies one guarded-field access against the must-hold
// set.
func (lg *lockguardPass) checkAccess(sel *ast.SelectorExpr, set lockSet, isWrite bool) {
	s, ok := lg.p.Info.Selections[sel]
	if !ok || s.Kind() != types.FieldVal {
		return
	}
	field, ok := s.Obj().(*types.Var)
	if !ok {
		return
	}
	guard, ok := lg.guarded[field]
	if !ok {
		return
	}
	key := types.ExprString(sel.X) + "." + guard
	held, holds := set[key]
	verb := "read"
	if isWrite {
		verb = "written"
	}
	if !holds {
		lg.p.Reportf(sel.Sel.Pos(), "field %s is guarded by %s but %s without holding it", field.Name(), key, verb)
		return
	}
	if isWrite && held.mode != modeExclusive {
		lg.p.Reportf(sel.Sel.Pos(), "field %s is guarded by %s but written under RLock (writes need the exclusive lock)", field.Name(), key)
	}
}

// writeTargets collects the selector expressions a statement mutates:
// assignment left-hand sides (unwrapped through indexing and
// dereference — writing s.m[k] mutates the map held in s.m), IncDec
// operands, and address-taken fields (conservatively treated as
// writes).
func writeTargets(stmt ast.Stmt) map[*ast.SelectorExpr]bool {
	out := map[*ast.SelectorExpr]bool{}
	mark := func(e ast.Expr) {
		for {
			switch t := e.(type) {
			case *ast.IndexExpr:
				e = t.X
			case *ast.StarExpr:
				e = t.X
			case *ast.ParenExpr:
				e = t.X
			case *ast.SelectorExpr:
				out[t] = true
				return
			default:
				return
			}
		}
	}
	ast.Inspect(stmt, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.AssignStmt:
			for _, lhs := range n.Lhs {
				mark(lhs)
			}
		case *ast.IncDecStmt:
			mark(n.X)
		case *ast.UnaryExpr:
			if n.Op == token.AND {
				mark(n.X)
			}
		}
		return true
	})
	return out
}
