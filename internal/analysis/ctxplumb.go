package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// CtxPlumb enforces the PR-1 cancellation contract: every ...Context
// API plumbs its context all the way down, and library code never
// manufactures a fresh root context mid-chain. Two rules, applied to
// library packages only (package main — the CLIs and examples — owns
// its root context legitimately), skipping test files:
//
//   - No context.Background()/context.TODO() in library code. The
//     sanctioned shapes are the compatibility shims: a function with
//     no ctx parameter handing Background straight to its ...Context
//     sibling (e.g. Discover → DiscoverContext(context.Background(),
//     ...)) or to a method on an Engine value (e.g. CheckConstraints →
//     NewEngine(nil).CheckConstraints(context.Background(), ...)) —
//     engine methods take ctx as their first parameter by convention,
//     so they are the ...Context variants of the engine API. A
//     function that already receives a ctx and still calls Background
//     has silently detached from the cancellation chain. A function
//     that receives an *http.Request is held to the same rule: the
//     request carries the client's context (r.Context()), so HTTP
//     handlers never need a fresh root either.
//
//   - No dropped ctx parameters: a function that declares a
//     context.Context parameter must use it (and must not name it
//     "_"). An ignored ctx is how a ...Context variant quietly stops
//     being cancellable.
//
// Suppress a justified exception with `//lint:ctxplumb <reason>`.
var CtxPlumb = &Analyzer{
	Name:      "ctxplumb",
	Directive: "ctxplumb",
	Doc:       "flag fresh root contexts and ignored ctx parameters in library packages",
	Run:       runCtxPlumb,
}

func runCtxPlumb(pass *Pass) {
	if pass.Pkg.Name() == "main" {
		return
	}
	for _, f := range pass.Files {
		if pass.IsTestFile(f) {
			continue
		}
		inspectStack(f, func(stack []ast.Node, n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CallExpr:
				pass.checkRootContext(stack, n)
			case *ast.FuncDecl:
				if n.Body != nil {
					pass.checkDroppedCtx(n.Type, n.Body)
				}
			case *ast.FuncLit:
				pass.checkDroppedCtx(n.Type, n.Body)
			}
			return true
		})
	}
}

// checkRootContext flags context.Background()/context.TODO() calls
// except in the sanctioned compatibility-shim shape.
func (p *Pass) checkRootContext(stack []ast.Node, call *ast.CallExpr) {
	name, ok := p.contextRootCall(call)
	if !ok {
		return
	}
	fn := enclosingFunc(stack)
	if fn != nil && p.funcHasCtxParam(fn) {
		p.Reportf(call.Pos(), "context.%s() in a function that already receives a context: pass the caller's ctx down instead of detaching from the cancellation chain", name)
		return
	}
	if fn != nil && p.funcHasRequestParam(fn) {
		p.Reportf(call.Pos(), "context.%s() in a function that receives an *http.Request: the request already carries the client's context — pass its Context() down so a disconnect cancels the work", name)
		return
	}
	// Shim shape: the fresh root is handed straight to a ...Context
	// sibling — or to an Engine method, the cancellable engine API —
	// by a context-less wrapper.
	if len(stack) > 0 {
		if outer, ok := stack[len(stack)-1].(*ast.CallExpr); ok && (calleeEndsWithContext(outer) || p.calleeIsEngineMethod(outer)) {
			for _, arg := range outer.Args {
				if arg == ast.Expr(call) {
					return
				}
			}
		}
	}
	p.Reportf(call.Pos(), "context.%s() in library code outside a ...Context compatibility shim: accept a ctx or call the ...Context variant", name)
}

// contextRootCall reports whether call is context.Background() or
// context.TODO(), returning which.
func (p *Pass) contextRootCall(call *ast.CallExpr) (string, bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || (sel.Sel.Name != "Background" && sel.Sel.Name != "TODO") {
		return "", false
	}
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return "", false
	}
	pkg, ok := p.Info.Uses[id].(*types.PkgName)
	if !ok || pkg.Imported().Path() != "context" {
		return "", false
	}
	return sel.Sel.Name, true
}

// calleeEndsWithContext reports whether the called function's name
// ends in "Context" — the naming convention for cancellable variants.
func calleeEndsWithContext(call *ast.CallExpr) bool {
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		return strings.HasSuffix(fun.Name, "Context")
	case *ast.SelectorExpr:
		return strings.HasSuffix(fun.Sel.Name, "Context")
	}
	return false
}

// calleeIsEngineMethod reports whether the called function is a method
// on a type named Engine. Engine methods take ctx as their first
// parameter (they are the engine API's ...Context variants), so a
// context-less wrapper handing Background straight to one is the same
// sanctioned shim shape as a ...Context sibling call.
func (p *Pass) calleeIsEngineMethod(call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	selection, ok := p.Info.Selections[sel]
	if !ok || selection.Kind() != types.MethodVal {
		return false
	}
	recv := selection.Recv()
	if ptr, ok := recv.(*types.Pointer); ok {
		recv = ptr.Elem()
	}
	named, ok := recv.(*types.Named)
	return ok && named.Obj().Name() == "Engine"
}

// funcHasCtxParam reports whether the function declares a
// context.Context parameter.
func (p *Pass) funcHasCtxParam(fn ast.Node) bool {
	var ftype *ast.FuncType
	switch fn := fn.(type) {
	case *ast.FuncDecl:
		ftype = fn.Type
	case *ast.FuncLit:
		ftype = fn.Type
	default:
		return false
	}
	if ftype.Params == nil {
		return false
	}
	for _, field := range ftype.Params.List {
		if t := p.Info.TypeOf(field.Type); t != nil && isContextType(t) {
			return true
		}
	}
	return false
}

// funcHasRequestParam reports whether the function declares a
// *net/http.Request parameter. HTTP handlers already hold a context —
// the request's, which dies with the client connection — so a fresh
// root inside one detaches the work from its client exactly like an
// ignored ctx parameter would.
func (p *Pass) funcHasRequestParam(fn ast.Node) bool {
	var ftype *ast.FuncType
	switch fn := fn.(type) {
	case *ast.FuncDecl:
		ftype = fn.Type
	case *ast.FuncLit:
		ftype = fn.Type
	default:
		return false
	}
	if ftype.Params == nil {
		return false
	}
	for _, field := range ftype.Params.List {
		t := p.Info.TypeOf(field.Type)
		ptr, ok := t.(*types.Pointer)
		if ok && isNamed(ptr.Elem(), "net/http", "Request") {
			return true
		}
	}
	return false
}

// checkDroppedCtx flags context.Context parameters that the function
// body never uses (or that are declared blank).
func (p *Pass) checkDroppedCtx(ftype *ast.FuncType, body *ast.BlockStmt) {
	if ftype.Params == nil || body == nil || len(body.List) == 0 {
		return
	}
	for _, field := range ftype.Params.List {
		t := p.Info.TypeOf(field.Type)
		if t == nil || !isContextType(t) {
			continue
		}
		for _, name := range field.Names {
			if name.Name == "_" {
				p.Reportf(name.Pos(), "context parameter dropped (named _): name it and plumb it down so the ...Context chain stays cancellable")
				continue
			}
			obj := p.Info.Defs[name]
			if obj == nil {
				continue
			}
			if !usesObject(p, body, obj) {
				p.Reportf(name.Pos(), "context parameter %s is never used: the function silently detaches from the cancellation chain", name.Name)
			}
		}
	}
}

func isContextType(t types.Type) bool {
	return isNamed(t, "context", "Context")
}

// usesObject reports whether any identifier in body resolves to obj.
func usesObject(p *Pass, body *ast.BlockStmt, obj types.Object) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		if id, ok := n.(*ast.Ident); ok && p.Info.Uses[id] == obj {
			found = true
		}
		return !found
	})
	return found
}
