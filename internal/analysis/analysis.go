// Package analysis is xfdlint: a self-contained static-analysis
// suite that machine-checks the engine's cross-cutting invariants —
// governor discipline (no ungoverned goroutines), partition
// immutability (the soundness condition for run-wide partition
// sharing), context plumbing (no silently detached cancellation), and
// deterministic ordering on output paths (the static counterpart of
// the byte-identical-output guarantee).
//
// The framework is modeled on golang.org/x/tools/go/analysis but is
// dependency-free: it builds with the standard library alone, so the
// suite works offline and pins nothing beyond the toolchain. Each
// invariant is an *Analyzer with a Run function over a type-checked
// package (a *Pass). Diagnostics can be suppressed at a violation
// site with a justified directive comment:
//
//	//lint:<directive> <reason>
//
// on the flagged line or the line directly above it. The reason is
// mandatory: a bare directive does not suppress, so every exception
// in the tree carries its own written justification.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// ModulePrefix gates which packages the suite analyzes: the module's
// own import paths. Dependencies fed to the vet tool by `go vet` are
// left alone.
const ModulePrefix = "discoverxfd"

// An Analyzer checks one invariant over a package.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and documentation.
	Name string
	// Doc is a one-paragraph description of the invariant.
	Doc string
	// Directive is the //lint:<directive> word that suppresses this
	// analyzer's diagnostics at a site (with a mandatory reason).
	Directive string
	// Run reports this analyzer's diagnostics for one package.
	Run func(*Pass)
}

// A Pass is one analyzer's view of one type-checked package.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	Files    []*ast.File
	Pkg      *types.Package
	Info     *types.Info

	// Path is the package's import path (the types.Package path, kept
	// separate so tests can override it).
	Path string

	findings *[]Finding
	suppress map[string]map[int]*suppression
}

// A Finding is one reported diagnostic, positioned and attributed.
// Fix, when non-nil, is a mechanical rewrite that resolves the
// finding (applied by `xfdlint -fix`).
type Finding struct {
	Analyzer string
	Pos      token.Position
	Message  string
	Fix      *Fix
}

func (f Finding) String() string {
	return fmt.Sprintf("%s: %s [%s]", f.Pos, f.Message, f.Analyzer)
}

// A Fix is a suggested mechanical rewrite: byte-range edits against
// the original source, plus at most one import the rewritten code
// newly requires.
type Fix struct {
	Message string
	Edits   []Edit
	// AddImport names an import path the rewrite introduces a
	// dependency on ("" if none); the fix applier inserts it when the
	// file does not already import it.
	AddImport string
}

// An Edit replaces the byte range [Offset, End) of Filename with
// NewText. Offsets are relative to the file content the analyzers
// saw.
type Edit struct {
	Filename string
	Offset   int
	End      int
	NewText  string
}

// EditAt converts a token position range into an Edit.
func (p *Pass) EditAt(pos, end token.Pos, newText string) Edit {
	start := p.Fset.Position(pos)
	return Edit{
		Filename: start.Filename,
		Offset:   start.Offset,
		End:      p.Fset.Position(end).Offset,
		NewText:  newText,
	}
}

// suppression is one parsed //lint: directive. used flips when a
// diagnostic is actually silenced by it, which is what the
// stale-suppression audit keys on.
type suppression struct {
	directive string
	reason    string
	used      bool
}

// Reportf records a diagnostic at pos unless a justified
// //lint:<directive> comment covers the position. A directive without
// a reason never suppresses: the original diagnostic is reported with
// a note demanding the justification.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.report(pos, nil, format, args...)
}

// ReportFixf is Reportf with an attached mechanical fix.
func (p *Pass) ReportFixf(pos token.Pos, fix *Fix, format string, args ...any) {
	p.report(pos, fix, format, args...)
}

func (p *Pass) report(pos token.Pos, fix *Fix, format string, args ...any) {
	position := p.Fset.Position(pos)
	if s, ok := p.suppressionAt(position); ok {
		if strings.TrimSpace(s.reason) != "" {
			return
		}
		*p.findings = append(*p.findings, Finding{
			Analyzer: p.Analyzer.Name,
			Pos:      position,
			Message:  fmt.Sprintf(format, args...) + fmt.Sprintf(" (//lint:%s requires a written reason)", p.Analyzer.Directive),
		})
		return
	}
	*p.findings = append(*p.findings, Finding{
		Analyzer: p.Analyzer.Name,
		Pos:      position,
		Message:  fmt.Sprintf(format, args...),
		Fix:      fix,
	})
}

// suppressionAt looks for this analyzer's directive on the diagnostic
// line or the line directly above it, marking a hit as used for the
// stale-suppression audit.
func (p *Pass) suppressionAt(pos token.Position) (*suppression, bool) {
	lines := p.suppress[pos.Filename]
	for _, l := range []int{pos.Line, pos.Line - 1} {
		if s, ok := lines[l]; ok && s.directive == p.Analyzer.Directive {
			s.used = true
			return s, true
		}
	}
	return nil, false
}

// IsTestFile reports whether the file the node belongs to is a Go
// test file. The invariants are production-code contracts; tests are
// free to spawn raw goroutines or poke at partitions.
func (p *Pass) IsTestFile(n ast.Node) bool {
	return strings.HasSuffix(p.Fset.Position(n.Pos()).Filename, "_test.go")
}

// Filename returns the base name of the file containing the node.
func (p *Pass) Filename(n ast.Node) string {
	name := p.Fset.Position(n.Pos()).Filename
	if i := strings.LastIndexByte(name, '/'); i >= 0 {
		name = name[i+1:]
	}
	return name
}

// collectSuppressions indexes every //lint: directive by file and
// line. Directives ride ordinary comments, so both a trailing comment
// on the offending line and a full-line comment above it work.
func collectSuppressions(fset *token.FileSet, files []*ast.File) map[string]map[int]*suppression {
	out := make(map[string]map[int]*suppression)
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text, ok := strings.CutPrefix(c.Text, "//lint:")
				if !ok {
					continue
				}
				word, reason, _ := strings.Cut(text, " ")
				pos := fset.Position(c.Pos())
				lines := out[pos.Filename]
				if lines == nil {
					lines = make(map[int]*suppression)
					out[pos.Filename] = lines
				}
				lines[pos.Line] = &suppression{directive: word, reason: reason}
			}
		}
	}
	return out
}

// DefaultAnalyzers is the xfdlint analyzer suite: the four syntactic
// invariant checkers from the original linter plus the four
// flow-aware analyzers built on the per-function CFG (cfg.go).
var DefaultAnalyzers = []*Analyzer{
	GovDiscipline, PartImmut, CtxPlumb, DetOrder,
	LockGuard, SpanBalance, ErrWrap, GovLeak,
}

// All returns the xfdlint analyzer suite.
func All() []*Analyzer {
	return DefaultAnalyzers
}

// A SuppressionRecord is one //lint: directive as the
// stale-suppression audit saw it: where it lives, what it says, and
// whether any diagnostic was actually silenced by it during the run.
type SuppressionRecord struct {
	File      string
	Line      int
	Directive string
	Reason    string
	Used      bool
}

// KnownDirective reports whether any analyzer in the set owns the
// directive word.
func KnownDirective(analyzers []*Analyzer, directive string) bool {
	for _, a := range analyzers {
		if a.Directive == directive {
			return true
		}
	}
	return false
}

// Run applies the analyzers to one type-checked package and returns
// the surviving findings in source order. Packages outside the module
// are skipped wholesale.
func Run(analyzers []*Analyzer, fset *token.FileSet, files []*ast.File, pkg *types.Package, info *types.Info) []Finding {
	findings, _ := RunAudit(analyzers, fset, files, pkg, info)
	return findings
}

// RunAudit is Run plus the suppression ledger: every //lint:
// directive in the package, with Used reporting whether it silenced a
// diagnostic. A directive that silenced nothing is stale — the
// violation it once excused has been fixed or moved — and the
// `xfdlint -suppressions` audit fails on it so dead exceptions never
// accumulate.
func RunAudit(analyzers []*Analyzer, fset *token.FileSet, files []*ast.File, pkg *types.Package, info *types.Info) ([]Finding, []SuppressionRecord) {
	path := pkg.Path()
	if path != ModulePrefix && !strings.HasPrefix(path, ModulePrefix+"/") {
		return nil, nil
	}
	var findings []Finding
	suppress := collectSuppressions(fset, files)
	for _, a := range analyzers {
		pass := &Pass{
			Analyzer: a,
			Fset:     fset,
			Files:    files,
			Pkg:      pkg,
			Info:     info,
			Path:     path,
			findings: &findings,
			suppress: suppress,
		}
		a.Run(pass)
	}
	var records []SuppressionRecord
	for file, lines := range suppress {
		for line, s := range lines {
			records = append(records, SuppressionRecord{
				File:      file,
				Line:      line,
				Directive: s.directive,
				Reason:    strings.TrimSpace(s.reason),
				Used:      s.used,
			})
		}
	}
	sort.Slice(records, func(i, j int) bool {
		if records[i].File != records[j].File {
			return records[i].File < records[j].File
		}
		return records[i].Line < records[j].Line
	})
	sort.Slice(findings, func(i, j int) bool {
		a, b := findings[i], findings[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return findings, records
}

// inspectStack walks the file like ast.Inspect but hands the visitor
// the stack of ancestor nodes (outermost first, excluding n itself).
func inspectStack(f *ast.File, visit func(stack []ast.Node, n ast.Node) bool) {
	var stack []ast.Node
	ast.Inspect(f, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		keep := visit(stack, n)
		if keep {
			// ast.Inspect emits the matching nil callback only after
			// descending, i.e. only when the visitor returned true.
			stack = append(stack, n)
		}
		return keep
	})
}

// enclosingFunc returns the innermost function declaration or literal
// on the stack, or nil.
func enclosingFunc(stack []ast.Node) ast.Node {
	for i := len(stack) - 1; i >= 0; i-- {
		switch stack[i].(type) {
		case *ast.FuncDecl, *ast.FuncLit:
			return stack[i]
		}
	}
	return nil
}

// namedType unwraps pointers and aliases down to a named type, or nil.
func namedType(t types.Type) *types.Named {
	for {
		switch u := t.(type) {
		case *types.Pointer:
			t = u.Elem()
		case *types.Alias:
			t = types.Unalias(u)
		case *types.Named:
			return u
		default:
			return nil
		}
	}
}

// isNamed reports whether t (possibly behind pointers) is the named
// type pkgSuffix.name, matching the package by import-path suffix so
// fixture packages under testdata satisfy the same predicate as the
// real tree.
func isNamed(t types.Type, pkgSuffix, name string) bool {
	n := namedType(t)
	if n == nil || n.Obj().Pkg() == nil || n.Obj().Name() != name {
		return false
	}
	path := n.Obj().Pkg().Path()
	return path == pkgSuffix || strings.HasSuffix(path, "/"+pkgSuffix)
}
