// Package analysis is xfdlint: a self-contained static-analysis
// suite that machine-checks the engine's cross-cutting invariants —
// governor discipline (no ungoverned goroutines), partition
// immutability (the soundness condition for run-wide partition
// sharing), context plumbing (no silently detached cancellation), and
// deterministic ordering on output paths (the static counterpart of
// the byte-identical-output guarantee).
//
// The framework is modeled on golang.org/x/tools/go/analysis but is
// dependency-free: it builds with the standard library alone, so the
// suite works offline and pins nothing beyond the toolchain. Each
// invariant is an *Analyzer with a Run function over a type-checked
// package (a *Pass). Diagnostics can be suppressed at a violation
// site with a justified directive comment:
//
//	//lint:<directive> <reason>
//
// on the flagged line or the line directly above it. The reason is
// mandatory: a bare directive does not suppress, so every exception
// in the tree carries its own written justification.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// ModulePrefix gates which packages the suite analyzes: the module's
// own import paths. Dependencies fed to the vet tool by `go vet` are
// left alone.
const ModulePrefix = "discoverxfd"

// An Analyzer checks one invariant over a package.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and documentation.
	Name string
	// Doc is a one-paragraph description of the invariant.
	Doc string
	// Directive is the //lint:<directive> word that suppresses this
	// analyzer's diagnostics at a site (with a mandatory reason).
	Directive string
	// Run reports this analyzer's diagnostics for one package.
	Run func(*Pass)
}

// A Pass is one analyzer's view of one type-checked package.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	Files    []*ast.File
	Pkg      *types.Package
	Info     *types.Info

	// Path is the package's import path (the types.Package path, kept
	// separate so tests can override it).
	Path string

	findings *[]Finding
	suppress map[string]map[int]suppression
}

// A Finding is one reported diagnostic, positioned and attributed.
type Finding struct {
	Analyzer string
	Pos      token.Position
	Message  string
}

func (f Finding) String() string {
	return fmt.Sprintf("%s: %s [%s]", f.Pos, f.Message, f.Analyzer)
}

// suppression is one parsed //lint: directive.
type suppression struct {
	directive string
	reason    string
}

// Reportf records a diagnostic at pos unless a justified
// //lint:<directive> comment covers the position. A directive without
// a reason never suppresses: the original diagnostic is reported with
// a note demanding the justification.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	position := p.Fset.Position(pos)
	if s, ok := p.suppressionAt(position); ok {
		if strings.TrimSpace(s.reason) != "" {
			return
		}
		*p.findings = append(*p.findings, Finding{
			Analyzer: p.Analyzer.Name,
			Pos:      position,
			Message:  fmt.Sprintf(format, args...) + fmt.Sprintf(" (//lint:%s requires a written reason)", p.Analyzer.Directive),
		})
		return
	}
	*p.findings = append(*p.findings, Finding{
		Analyzer: p.Analyzer.Name,
		Pos:      position,
		Message:  fmt.Sprintf(format, args...),
	})
}

// suppressionAt looks for this analyzer's directive on the diagnostic
// line or the line directly above it.
func (p *Pass) suppressionAt(pos token.Position) (suppression, bool) {
	lines := p.suppress[pos.Filename]
	for _, l := range []int{pos.Line, pos.Line - 1} {
		if s, ok := lines[l]; ok && s.directive == p.Analyzer.Directive {
			return s, true
		}
	}
	return suppression{}, false
}

// IsTestFile reports whether the file the node belongs to is a Go
// test file. The invariants are production-code contracts; tests are
// free to spawn raw goroutines or poke at partitions.
func (p *Pass) IsTestFile(n ast.Node) bool {
	return strings.HasSuffix(p.Fset.Position(n.Pos()).Filename, "_test.go")
}

// Filename returns the base name of the file containing the node.
func (p *Pass) Filename(n ast.Node) string {
	name := p.Fset.Position(n.Pos()).Filename
	if i := strings.LastIndexByte(name, '/'); i >= 0 {
		name = name[i+1:]
	}
	return name
}

// collectSuppressions indexes every //lint: directive by file and
// line. Directives ride ordinary comments, so both a trailing comment
// on the offending line and a full-line comment above it work.
func collectSuppressions(fset *token.FileSet, files []*ast.File) map[string]map[int]suppression {
	out := make(map[string]map[int]suppression)
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text, ok := strings.CutPrefix(c.Text, "//lint:")
				if !ok {
					continue
				}
				word, reason, _ := strings.Cut(text, " ")
				pos := fset.Position(c.Pos())
				lines := out[pos.Filename]
				if lines == nil {
					lines = make(map[int]suppression)
					out[pos.Filename] = lines
				}
				lines[pos.Line] = suppression{directive: word, reason: reason}
			}
		}
	}
	return out
}

// All returns the xfdlint analyzer suite.
func All() []*Analyzer {
	return []*Analyzer{GovDiscipline, PartImmut, CtxPlumb, DetOrder}
}

// Run applies the analyzers to one type-checked package and returns
// the surviving findings in source order. Packages outside the module
// are skipped wholesale.
func Run(analyzers []*Analyzer, fset *token.FileSet, files []*ast.File, pkg *types.Package, info *types.Info) []Finding {
	path := pkg.Path()
	if path != ModulePrefix && !strings.HasPrefix(path, ModulePrefix+"/") {
		return nil
	}
	var findings []Finding
	suppress := collectSuppressions(fset, files)
	for _, a := range analyzers {
		pass := &Pass{
			Analyzer: a,
			Fset:     fset,
			Files:    files,
			Pkg:      pkg,
			Info:     info,
			Path:     path,
			findings: &findings,
			suppress: suppress,
		}
		a.Run(pass)
	}
	sort.Slice(findings, func(i, j int) bool {
		a, b := findings[i], findings[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return findings
}

// inspectStack walks the file like ast.Inspect but hands the visitor
// the stack of ancestor nodes (outermost first, excluding n itself).
func inspectStack(f *ast.File, visit func(stack []ast.Node, n ast.Node) bool) {
	var stack []ast.Node
	ast.Inspect(f, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		keep := visit(stack, n)
		if keep {
			// ast.Inspect emits the matching nil callback only after
			// descending, i.e. only when the visitor returned true.
			stack = append(stack, n)
		}
		return keep
	})
}

// enclosingFunc returns the innermost function declaration or literal
// on the stack, or nil.
func enclosingFunc(stack []ast.Node) ast.Node {
	for i := len(stack) - 1; i >= 0; i-- {
		switch stack[i].(type) {
		case *ast.FuncDecl, *ast.FuncLit:
			return stack[i]
		}
	}
	return nil
}

// namedType unwraps pointers and aliases down to a named type, or nil.
func namedType(t types.Type) *types.Named {
	for {
		switch u := t.(type) {
		case *types.Pointer:
			t = u.Elem()
		case *types.Alias:
			t = types.Unalias(u)
		case *types.Named:
			return u
		default:
			return nil
		}
	}
}

// isNamed reports whether t (possibly behind pointers) is the named
// type pkgSuffix.name, matching the package by import-path suffix so
// fixture packages under testdata satisfy the same predicate as the
// real tree.
func isNamed(t types.Type, pkgSuffix, name string) bool {
	n := namedType(t)
	if n == nil || n.Obj().Pkg() == nil || n.Obj().Name() != name {
		return false
	}
	path := n.Obj().Pkg().Path()
	return path == pkgSuffix || strings.HasSuffix(path, "/"+pkgSuffix)
}
