package analysis

// govleak closes the gap govdiscipline leaves around resource
// lifetimes: a channel made with make(chan T) or a trace.Feed created
// with trace.NewFeed that stays local to one function must be closed
// on every path to return (close(ch) / feed.Close(), deferred
// counts). A receiver blocked on a never-closed local channel — or an
// SSE poller waiting on a Feed that nobody will ever Close — is a
// goroutine leak the race detector cannot see.
//
// A value that escapes the function — returned, stored into a field,
// slice, map or composite literal, sent over a channel, captured by
// address, or handed to another function — has its lifetime managed
// elsewhere (typically registered with the governor or a server
// registry), and is exempt.

import (
	"go/ast"
	"go/token"
	"go/types"
)

var GovLeak = &Analyzer{
	Name:      "govleak",
	Directive: "govleak",
	Doc: "a channel or trace.Feed that stays local to a function must be closed on " +
		"every path (deferred close counts); escaping values are exempt",
	Run: runGovLeak,
}

func runGovLeak(p *Pass) {
	for _, f := range p.Files {
		if p.IsTestFile(f) {
			continue
		}
		eachFuncBody(f, func(fd *ast.FuncDecl) {
			checkLeaks(p, fd.Body)
		})
	}
}

func checkLeaks(p *Pass, body *ast.BlockStmt) {
	g := buildCFG(body, p.Info)

	// Pass 1: candidate creations — `v := make(chan T)` or
	// `v := trace.NewFeed(...)` with v a plain new identifier.
	type candidate struct {
		obj   types.Object
		ident *ast.Ident
		block *cfgBlock
		idx   int
		what  string
	}
	var cands []candidate
	if !g.unanalyzable {
		for _, b := range g.blocks {
			for i, s := range b.stmts {
				as, ok := s.(*ast.AssignStmt)
				if !ok || len(as.Lhs) != len(as.Rhs) {
					continue
				}
				for j, rhs := range as.Rhs {
					what, _ := creationKind(p, rhs)
					if what == "" {
						continue
					}
					id, ok := as.Lhs[j].(*ast.Ident)
					if !ok || id.Name == "_" {
						continue
					}
					obj := p.Info.Defs[id]
					if obj == nil {
						obj = p.Info.Uses[id]
					}
					if obj == nil {
						continue
					}
					cands = append(cands, candidate{obj: obj, ident: id, block: b, idx: i, what: what})
				}
			}
		}
	}
	if len(cands) > 0 {
		// Pass 2: escape analysis over the whole body.
		escaped := map[types.Object]bool{}
		markEscapes(p, body, escaped)

		// Deferred closes anywhere in the function (directly or inside
		// a deferred closure) satisfy every exit.
		deferClosed := map[types.Object]bool{}
		for _, d := range g.defers {
			ast.Inspect(d, func(n ast.Node) bool {
				if call, ok := n.(*ast.CallExpr); ok {
					if obj := closedObject(p, call); obj != nil {
						deferClosed[obj] = true
					}
				}
				return true
			})
		}

		for _, c := range cands {
			if escaped[c.obj] || deferClosed[c.obj] {
				continue
			}
			obj := c.obj
			if g.pathAvoiding(c.block, c.idx+1, func(later ast.Stmt) bool {
				found := false
				ast.Inspect(later, func(n ast.Node) bool {
					if found {
						return false
					}
					if _, isLit := n.(*ast.FuncLit); isLit {
						return false
					}
					if call, ok := n.(*ast.CallExpr); ok && closedObject(p, call) == obj {
						found = true
						return false
					}
					return true
				})
				return found
			}) {
				p.Reportf(c.ident.Pos(), "%s %s stays local but is not closed on every path (close it, defer the close, or hand it to an owner)",
					c.what, c.ident.Name)
			}
		}
	}

	// Function literals are their own scope.
	ast.Inspect(body, func(n ast.Node) bool {
		if lit, ok := n.(*ast.FuncLit); ok {
			checkLeaks(p, lit.Body)
			return false
		}
		return true
	})
}

// creationKind classifies an expression as a tracked resource
// creation: a channel make or a trace.NewFeed call.
func creationKind(p *Pass, e ast.Expr) (what string, isFeed bool) {
	call, ok := e.(*ast.CallExpr)
	if !ok {
		return "", false
	}
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		if fun.Name == "make" && len(call.Args) > 0 {
			if tv, ok := p.Info.Types[call.Args[0]]; ok {
				if _, isChan := tv.Type.Underlying().(*types.Chan); isChan {
					return "channel", false
				}
			}
		}
	case *ast.SelectorExpr:
		if fun.Sel.Name == "NewFeed" {
			if tv, ok := p.Info.Types[e]; ok && isNamed(tv.Type, "internal/trace", "Feed") {
				return "trace.Feed", true
			}
		}
	}
	return "", false
}

// closedObject returns the object a close(ch) or v.Close() call
// releases, or nil.
func closedObject(p *Pass, call *ast.CallExpr) types.Object {
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		if fun.Name == "close" && len(call.Args) == 1 {
			if id, ok := call.Args[0].(*ast.Ident); ok {
				return p.Info.Uses[id]
			}
		}
	case *ast.SelectorExpr:
		if fun.Sel.Name == "Close" {
			if id, ok := fun.X.(*ast.Ident); ok {
				return p.Info.Uses[id]
			}
		}
	}
	return nil
}

// markEscapes records every candidate-shaped identifier whose value
// leaves the function's hands: returned, assigned into anything that
// is not a plain local identifier, placed in a composite literal,
// sent on a channel, address-taken, or passed to any call other than
// close/len/cap.
func markEscapes(p *Pass, body *ast.BlockStmt, escaped map[types.Object]bool) {
	use := func(e ast.Expr) {
		if id, ok := e.(*ast.Ident); ok {
			if obj := p.Info.Uses[id]; obj != nil {
				escaped[obj] = true
			}
		}
	}
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.ReturnStmt:
			for _, r := range n.Results {
				use(r)
			}
		case *ast.AssignStmt:
			for i, lhs := range n.Lhs {
				if i >= len(n.Rhs) {
					break
				}
				// v2 := v aliases; s.f = v stores. Either way the
				// original identifier no longer solely owns the value.
				if _, plain := lhs.(*ast.Ident); !plain {
					use(n.Rhs[i])
				} else if what, _ := creationKind(p, n.Rhs[i]); what == "" {
					use(n.Rhs[i])
				}
			}
		case *ast.CompositeLit:
			for _, elt := range n.Elts {
				if kv, ok := elt.(*ast.KeyValueExpr); ok {
					use(kv.Value)
				} else {
					use(elt)
				}
			}
		case *ast.SendStmt:
			use(n.Value)
		case *ast.UnaryExpr:
			if n.Op == token.AND {
				use(n.X)
			}
		case *ast.CallExpr:
			name := ""
			if id, ok := n.Fun.(*ast.Ident); ok {
				name = id.Name
			}
			if name != "close" && name != "len" && name != "cap" {
				for _, a := range n.Args {
					use(a)
				}
			}
			// A method call on the value itself (v.Emit(...)) is fine;
			// v.Close() is the release. Neither escapes v.
		}
		return true
	})
}
