package analysis

// spanbalance is the compile-time mirror of trace.ValidateJSONL's
// span-nesting rule: every span-opening event the engine emits
// (run_start, stage_start, relation_start) must be closed by the same
// function — either by a deferred emit of the matching end kind, or
// by an end emit on every path from the start to a normal return.
// Trace guards (`if run.tr != nil { ... }`) are collapsed by the CFG
// builder, so the correlated nil checks around start and end emits do
// not read as unbalanced branches.
//
// An emit is recognized by the trace.Event composite literal with a
// literal Kind field — the engine's emission idiom constructs the
// event at the emit site (`trace.Emit(run.tr, &trace.Event{Kind:
// trace.KindStageStart, ...})` or via a local variable emitted a line
// later). Events with a computed Kind are invisible to the analyzer,
// which errs toward silence.

import (
	"go/ast"
	"go/token"
	"strings"
)

var SpanBalance = &Analyzer{
	Name:      "spanbalance",
	Directive: "spanbalance",
	Doc: "every span-start trace emit (run_start/stage_start/relation_start) must be " +
		"closed by a deferred or all-paths-reachable emit of the matching end kind",
	Run: runSpanBalance,
}

// spanEnds maps each start kind constant name to its end kind.
var spanEnds = map[string]string{
	"KindRunStart":      "KindRunEnd",
	"KindStageStart":    "KindStageEnd",
	"KindRelationStart": "KindRelationEnd",
	"KindRequestStart":  "KindRequestEnd",
}

func runSpanBalance(p *Pass) {
	for _, f := range p.Files {
		if p.IsTestFile(f) {
			continue
		}
		eachFuncBody(f, func(fd *ast.FuncDecl) {
			checkSpans(p, fd.Body)
		})
	}
}

// checkSpans verifies span pairing within one function body,
// recursing into function literals (each closure is its own span
// scope: a deferred closure that emits the end closes the span for
// its parent via the defer registration, and any start the closure
// itself emits must be closed within it).
func checkSpans(p *Pass, body *ast.BlockStmt) {
	g := buildCFG(body, p.Info)

	// Ends emitted by deferred statements (directly or inside a
	// deferred closure) close their kind for the whole function.
	deferredEnds := map[string]bool{}
	for _, d := range g.defers {
		for _, kind := range emitKinds(p, d) {
			deferredEnds[kind] = true
		}
	}

	if !g.unanalyzable {
		for _, b := range g.blocks {
			for i, s := range b.stmts {
				for _, kind := range emitKindsShallow(p, s) {
					endKind, isStart := spanEnds[kind]
					if !isStart || deferredEnds[endKind] {
						continue
					}
					if g.pathAvoiding(b, i+1, func(later ast.Stmt) bool {
						return hasEmitKindShallow(p, later, endKind)
					}) {
						p.Reportf(emitPos(p, s, kind), "%s span opened here can reach return without a %s emit (emit it on every path or defer it)",
							strings.TrimPrefix(kind, "Kind"), endKind)
					}
				}
			}
		}
	}

	// Function literals get their own scope.
	ast.Inspect(body, func(n ast.Node) bool {
		if lit, ok := n.(*ast.FuncLit); ok {
			checkSpans(p, lit.Body)
			return false
		}
		return true
	})
}

// emitKinds returns the Kind constant names of every trace.Event
// composite literal anywhere under the node, including inside
// function literals (used for deferred statements, where a deferred
// closure's emits run at exit).
func emitKinds(p *Pass, n ast.Node) []string {
	var kinds []string
	ast.Inspect(n, func(n ast.Node) bool {
		if lit, ok := n.(*ast.CompositeLit); ok {
			if k := eventLitKind(p, lit); k != "" {
				kinds = append(kinds, k)
			}
		}
		return true
	})
	return kinds
}

// emitKindsShallow is emitKinds without descending into function
// literals: a closure defined inline does not emit at its definition
// point. Deferred statements are excluded too — the function-wide
// deferred set accounts for them at exit.
func emitKindsShallow(p *Pass, s ast.Stmt) []string {
	if _, isDefer := s.(*ast.DeferStmt); isDefer {
		return nil
	}
	var kinds []string
	ast.Inspect(s, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.CompositeLit:
			if k := eventLitKind(p, n); k != "" {
				kinds = append(kinds, k)
			}
		}
		return true
	})
	return kinds
}

func hasEmitKindShallow(p *Pass, s ast.Stmt, kind string) bool {
	for _, k := range emitKindsShallow(p, s) {
		if k == kind {
			return true
		}
	}
	return false
}

// eventLitKind digs the Kind field's constant name out of a
// trace.Event composite literal; "" when the literal is not a trace
// event or its Kind is not a named constant.
func eventLitKind(p *Pass, lit *ast.CompositeLit) string {
	tv, ok := p.Info.Types[lit]
	if !ok || tv.Type == nil || !isNamed(tv.Type, "internal/trace", "Event") {
		return ""
	}
	for _, elt := range lit.Elts {
		kv, ok := elt.(*ast.KeyValueExpr)
		if !ok {
			continue
		}
		key, ok := kv.Key.(*ast.Ident)
		if !ok || key.Name != "Kind" {
			continue
		}
		switch v := kv.Value.(type) {
		case *ast.Ident:
			return v.Name
		case *ast.SelectorExpr:
			return v.Sel.Name
		}
	}
	return ""
}

// emitPos finds the position of the start emit with the given kind
// inside the statement, for precise diagnostics.
func emitPos(p *Pass, s ast.Stmt, kind string) (pos token.Pos) {
	pos = s.Pos()
	ast.Inspect(s, func(n ast.Node) bool {
		if lit, ok := n.(*ast.CompositeLit); ok && eventLitKind(p, lit) == kind {
			pos = lit.Pos()
			return false
		}
		return true
	})
	return pos
}
