package analysis

import (
	"fmt"
	"regexp"
	"strings"
)

// TB is the subset of testing.TB the fixture harness needs, so this
// file can live outside _test.go (cmd/xfdlint's self-test mode reuses
// it) without importing the testing package.
type TB interface {
	Errorf(format string, args ...any)
}

// wantRe extracts `// want "regexp"` expectations, in the
// golang.org/x/tools analysistest style. Multiple quoted patterns on
// one comment declare multiple expected diagnostics on that line.
var wantRe = regexp.MustCompile(`// want ((?:"(?:[^"\\]|\\.)*"\s*)+)`)

var wantPatRe = regexp.MustCompile(`"((?:[^"\\]|\\.)*)"`)

// expectation is one `// want` pattern awaiting a matching finding.
type expectation struct {
	file    string
	line    int
	re      *regexp.Regexp
	matched bool
}

// RunFixture loads the fixture package from the GOPATH-style tree at
// gopath, runs the analyzers, and checks the findings against the
// fixture's `// want "regexp"` comments: every expectation must be
// matched by a finding on its line, and every finding must match an
// expectation.
func RunFixture(t TB, gopath, importPath string, analyzers []*Analyzer) {
	pkg, err := LoadFixturePackage(gopath, importPath)
	if err != nil {
		t.Errorf("loading fixture %s: %v", importPath, err)
		return
	}
	expects, err := collectExpectations(pkg)
	if err != nil {
		t.Errorf("fixture %s: %v", importPath, err)
		return
	}
	findings := pkg.Analyze(analyzers)
	for i := range findings {
		f := &findings[i]
		exp := matchExpectation(expects, f)
		if exp == nil {
			t.Errorf("%s: unexpected finding: %s [%s]", f.Pos, f.Message, f.Analyzer)
		}
	}
	for _, e := range expects {
		if !e.matched {
			t.Errorf("%s:%d: no finding matched `want %q`", e.file, e.line, e.re)
		}
	}
}

// collectExpectations parses the `// want` comments of every fixture
// file.
func collectExpectations(pkg *Package) ([]*expectation, error) {
	var out []*expectation
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := wantRe.FindStringSubmatch(c.Text)
				if m == nil {
					if strings.Contains(c.Text, "// want") {
						return nil, fmt.Errorf("%s: malformed want comment: %s",
							pkg.Fset.Position(c.Pos()), c.Text)
					}
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				for _, pm := range wantPatRe.FindAllStringSubmatch(m[1], -1) {
					pat, err := unquotePattern(pm[1])
					if err != nil {
						return nil, fmt.Errorf("%s: %w", pos, err)
					}
					re, err := regexp.Compile(pat)
					if err != nil {
						return nil, fmt.Errorf("%s: bad want pattern: %w", pos, err)
					}
					out = append(out, &expectation{file: pos.Filename, line: pos.Line, re: re})
				}
			}
		}
	}
	return out, nil
}

// unquotePattern undoes the \" and \\ escapes allowed inside a quoted
// want pattern.
func unquotePattern(s string) (string, error) {
	var b strings.Builder
	for i := 0; i < len(s); i++ {
		if s[i] != '\\' {
			b.WriteByte(s[i])
			continue
		}
		i++
		if i >= len(s) {
			return "", fmt.Errorf("trailing backslash in want pattern %q", s)
		}
		switch s[i] {
		case '"', '\\':
			b.WriteByte(s[i])
		default:
			// Preserve other escapes (\d, \(, ...) for the regexp engine.
			b.WriteByte('\\')
			b.WriteByte(s[i])
		}
	}
	return b.String(), nil
}

// matchExpectation finds the first unmatched expectation on the
// finding's line whose pattern matches, marks it matched, and returns
// it (nil if none).
func matchExpectation(expects []*expectation, f *Finding) *expectation {
	for _, e := range expects {
		if e.matched || e.file != f.Pos.Filename || e.line != f.Pos.Line {
			continue
		}
		if e.re.MatchString(f.Message) {
			e.matched = true
			return e
		}
	}
	return nil
}
