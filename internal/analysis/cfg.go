package analysis

// cfg.go is the flow-aware half of the framework: a lightweight
// per-function control-flow graph over the parsed AST, shared by the
// lockguard, spanbalance, and govleak analyzers. The graph is
// statement-level — each block holds a straight-line run of simple
// statements, and control statements (if/for/range/switch/select)
// fan out into successor blocks — which is exactly enough resolution
// for must-hold lock lattices and all-paths reachability checks
// without pulling in golang.org/x/tools/go/cfg.
//
// One deliberate deviation from a textbook CFG: an if statement whose
// condition only tests a trace.Tracer for non-nil ("trace guard") is
// collapsed into straight-line code. The engine brackets every event
// construction in `if run.tr != nil { ... }`, and the guards are
// perfectly correlated — either the run has a tracer or it does not —
// so treating them as branches would make every span look
// conditionally closed. Collapsing them models the two real
// executions (all guards taken, or none) for the analyzers that care
// about emit pairing.

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// A cfgBlock is a straight-line run of statements with its control
// successors. Exit blocks are distinguished by kind, so analyses can
// treat a fall-off-the-end return differently from a panic.
type cfgBlock struct {
	stmts []ast.Stmt
	succs []*cfgBlock
	// returns marks a block terminated by an explicit return (the
	// ReturnStmt is the last entry of stmts).
	returns bool
	// panics marks a block terminated by panic()/os.Exit-style calls:
	// control leaves the function abnormally, so lock-leak and
	// span-balance exit checks skip it.
	panics bool
}

// A cfg is one function body's control-flow graph.
type cfg struct {
	entry  *cfgBlock
	blocks []*cfgBlock
	// defers collects every DeferStmt in the function in source
	// order, regardless of path: deferred cleanups run at exit, and
	// the analyses treat a deferred unlock/emit/close as satisfying
	// all exits (a defer reached on only some paths under-approximates
	// release, which errs toward silence, not noise).
	defers []*ast.DeferStmt
	// unanalyzable is set when the body uses goto: rather than model
	// arbitrary jumps, the flow analyses stand down for the function.
	unanalyzable bool
}

// cfgBuilder threads the current block and break/continue targets
// through the recursive statement walk.
type cfgBuilder struct {
	g    *cfg
	cur  *cfgBlock
	info *types.Info
	// break/continue targets, innermost last; label may be "".
	breaks    []labeledTarget
	continues []labeledTarget
}

type labeledTarget struct {
	label string
	block *cfgBlock
}

// buildCFG constructs the graph for one function body. info may be
// nil in tests; trace-guard collapse then falls back to a syntactic
// check.
func buildCFG(body *ast.BlockStmt, info *types.Info) *cfg {
	g := &cfg{}
	b := &cfgBuilder{g: g, info: info}
	b.cur = b.newBlock()
	g.entry = b.cur
	b.stmtList(body.List)
	return g
}

func (b *cfgBuilder) newBlock() *cfgBlock {
	blk := &cfgBlock{}
	b.g.blocks = append(b.g.blocks, blk)
	return blk
}

func link(from, to *cfgBlock) {
	if from == nil || to == nil {
		return
	}
	from.succs = append(from.succs, to)
}

func (b *cfgBuilder) stmtList(list []ast.Stmt) {
	for _, s := range list {
		b.stmt(s, "")
	}
}

// stmt extends the graph with one statement. label is the pending
// label when the statement is the body of a LabeledStmt.
func (b *cfgBuilder) stmt(s ast.Stmt, label string) {
	if b.g.unanalyzable {
		return
	}
	switch s := s.(type) {
	case *ast.LabeledStmt:
		b.stmt(s.Stmt, s.Label.Name)

	case *ast.BlockStmt:
		b.stmtList(s.List)

	case *ast.ReturnStmt:
		b.append(s)
		b.cur.returns = true
		b.cur = b.newBlock() // unreachable continuation

	case *ast.BranchStmt:
		switch s.Tok {
		case token.GOTO:
			b.g.unanalyzable = true
		case token.BREAK:
			if t := findTarget(b.breaks, s.Label); t != nil {
				link(b.cur, t)
			}
			b.cur = b.newBlock()
		case token.CONTINUE:
			if t := findTarget(b.continues, s.Label); t != nil {
				link(b.cur, t)
			}
			b.cur = b.newBlock()
		case token.FALLTHROUGH:
			// Handled by the switch builder via clause ordering; the
			// statement itself carries no other effect.
		}

	case *ast.IfStmt:
		b.ifStmt(s)

	case *ast.ForStmt:
		b.forStmt(s, label)

	case *ast.RangeStmt:
		b.rangeStmt(s, label)

	case *ast.SwitchStmt:
		if s.Init != nil {
			b.append(s.Init)
		}
		if s.Tag != nil {
			b.appendExprStmt(s.Tag)
		}
		b.switchClauses(s.Body, label, false)

	case *ast.TypeSwitchStmt:
		if s.Init != nil {
			b.append(s.Init)
		}
		b.append(s.Assign)
		b.switchClauses(s.Body, label, true)

	case *ast.SelectStmt:
		b.selectStmt(s, label)

	case *ast.DeferStmt:
		b.g.defers = append(b.g.defers, s)
		b.append(s)

	case *ast.GoStmt:
		b.append(s)

	case *ast.EmptyStmt:
		// nothing

	default:
		// Assign, Decl, Expr, IncDec, Send: straight-line.
		b.append(s)
	}
}

// append adds a simple statement to the current block, terminating
// the block on a no-return call (panic, os.Exit, log.Fatal*,
// t.Fatal*).
func (b *cfgBuilder) append(s ast.Stmt) {
	b.cur.stmts = append(b.cur.stmts, s)
	if isNoReturnStmt(s) {
		b.cur.panics = true
		b.cur = b.newBlock()
	}
}

// appendExprStmt wraps a bare expression (an if/switch condition) as
// a statement node so the transfer functions see its calls.
func (b *cfgBuilder) appendExprStmt(e ast.Expr) {
	b.append(&ast.ExprStmt{X: e})
}

func (b *cfgBuilder) ifStmt(s *ast.IfStmt) {
	if s.Init != nil {
		b.append(s.Init)
	}
	if b.isTraceGuard(s) {
		// Collapse: condition then body, straight-line, no else (a
		// trace guard never has one).
		b.appendExprStmt(s.Cond)
		b.stmtList(s.Body.List)
		return
	}
	b.appendExprStmt(s.Cond)
	head := b.cur
	join := b.newBlock()

	b.cur = b.newBlock()
	link(head, b.cur)
	b.stmt(s.Body, "")
	link(b.cur, join)

	if s.Else != nil {
		b.cur = b.newBlock()
		link(head, b.cur)
		b.stmt(s.Else, "")
		link(b.cur, join)
	} else {
		link(head, join)
	}
	b.cur = join
}

func (b *cfgBuilder) forStmt(s *ast.ForStmt, label string) {
	if s.Init != nil {
		b.append(s.Init)
	}
	head := b.newBlock()
	link(b.cur, head)
	b.cur = head
	if s.Cond != nil {
		b.appendExprStmt(s.Cond)
	}
	after := b.newBlock()
	post := b.newBlock()
	if s.Cond != nil {
		link(b.cur, after) // condition false
	}
	body := b.newBlock()
	link(b.cur, body)

	b.pushTargets(label, after, post)
	b.cur = body
	b.stmt(s.Body, "")
	link(b.cur, post)
	b.popTargets()

	b.cur = post
	if s.Post != nil {
		b.append(s.Post)
	}
	link(b.cur, head)
	b.cur = after
}

func (b *cfgBuilder) rangeStmt(s *ast.RangeStmt, label string) {
	head := b.newBlock()
	link(b.cur, head)
	b.cur = head
	b.appendExprStmt(s.X)
	after := b.newBlock()
	link(b.cur, after) // range exhausted (possibly immediately)
	body := b.newBlock()
	link(b.cur, body)

	b.pushTargets(label, after, head)
	b.cur = body
	b.stmt(s.Body, "")
	link(b.cur, head)
	b.popTargets()

	b.cur = after
}

// switchClauses wires the case bodies of a switch or type switch:
// every clause branches from the head; fallthrough chains to the next
// clause's body block.
func (b *cfgBuilder) switchClauses(body *ast.BlockStmt, label string, typeSwitch bool) {
	head := b.cur
	join := b.newBlock()
	b.pushTargets(label, join, nil)

	var clauses []*ast.CaseClause
	for _, c := range body.List {
		if cc, ok := c.(*ast.CaseClause); ok {
			clauses = append(clauses, cc)
		}
	}
	clauseBlocks := make([]*cfgBlock, len(clauses))
	for i := range clauses {
		clauseBlocks[i] = b.newBlock()
		link(head, clauseBlocks[i])
	}
	hasDefault := false
	for i, cc := range clauses {
		if cc.List == nil {
			hasDefault = true
		}
		b.cur = clauseBlocks[i]
		fallsThrough := false
		for _, st := range cc.Body {
			if br, ok := st.(*ast.BranchStmt); ok && br.Tok == token.FALLTHROUGH {
				fallsThrough = true
				continue
			}
			b.stmt(st, "")
		}
		if fallsThrough && i+1 < len(clauseBlocks) {
			link(b.cur, clauseBlocks[i+1])
		} else {
			link(b.cur, join)
		}
	}
	if !hasDefault {
		link(head, join) // no case matched
	}
	b.popTargets()
	b.cur = join
}

func (b *cfgBuilder) selectStmt(s *ast.SelectStmt, label string) {
	head := b.cur
	join := b.newBlock()
	b.pushTargets(label, join, nil)
	for _, c := range s.Body.List {
		cc, ok := c.(*ast.CommClause)
		if !ok {
			continue
		}
		blk := b.newBlock()
		link(head, blk)
		b.cur = blk
		if cc.Comm != nil {
			b.stmt(cc.Comm, "")
		}
		b.stmtList(cc.Body)
		link(b.cur, join)
	}
	if len(s.Body.List) == 0 {
		link(head, join)
	}
	b.popTargets()
	b.cur = join
}

func (b *cfgBuilder) pushTargets(label string, brk, cont *cfgBlock) {
	b.breaks = append(b.breaks, labeledTarget{label: label, block: brk})
	if cont != nil {
		b.continues = append(b.continues, labeledTarget{label: label, block: cont})
	} else {
		// switch/select: continue still refers to the enclosing loop,
		// so push nothing for continues.
		b.continues = append(b.continues, labeledTarget{label: "\x00none", block: nil})
	}
}

func (b *cfgBuilder) popTargets() {
	b.breaks = b.breaks[:len(b.breaks)-1]
	b.continues = b.continues[:len(b.continues)-1]
}

func findTarget(targets []labeledTarget, label *ast.Ident) *cfgBlock {
	for i := len(targets) - 1; i >= 0; i-- {
		t := targets[i]
		if t.block == nil {
			continue // switch placeholder in the continue stack
		}
		if label == nil || t.label == label.Name {
			return t.block
		}
	}
	return nil
}

// isTraceGuard reports whether the if statement is a tracer nil
// guard: `if x != nil { ... }` with no else, where x is a
// trace.Tracer (or, syntactically, an identifier/selector named tr or
// tracer when type information is unavailable).
func (b *cfgBuilder) isTraceGuard(s *ast.IfStmt) bool {
	if s.Else != nil {
		return false
	}
	bin, ok := s.Cond.(*ast.BinaryExpr)
	if !ok || bin.Op != token.NEQ {
		return false
	}
	var operand ast.Expr
	switch {
	case isNilIdent(bin.Y):
		operand = bin.X
	case isNilIdent(bin.X):
		operand = bin.Y
	default:
		return false
	}
	if b.info != nil {
		if tv, ok := b.info.Types[operand]; ok && tv.Type != nil {
			return isNamed(tv.Type, "internal/trace", "Tracer")
		}
	}
	name := ""
	switch e := operand.(type) {
	case *ast.Ident:
		name = e.Name
	case *ast.SelectorExpr:
		name = e.Sel.Name
	}
	return name == "tr" || name == "tracer"
}

func isNilIdent(e ast.Expr) bool {
	id, ok := e.(*ast.Ident)
	return ok && id.Name == "nil"
}

// isNoReturnStmt reports whether the statement is a call that never
// returns: panic, os.Exit, log.Fatal*, runtime.Goexit, or a
// testing.TB Fatal/Fatalf/FailNow/Skip variant.
func isNoReturnStmt(s ast.Stmt) bool {
	es, ok := s.(*ast.ExprStmt)
	if !ok {
		return false
	}
	call, ok := es.X.(*ast.CallExpr)
	if !ok {
		return false
	}
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		return fun.Name == "panic"
	case *ast.SelectorExpr:
		name := fun.Sel.Name
		if pkg, ok := fun.X.(*ast.Ident); ok {
			switch {
			case pkg.Name == "os" && name == "Exit":
				return true
			case pkg.Name == "log" && strings.HasPrefix(name, "Fatal"):
				return true
			case pkg.Name == "runtime" && name == "Goexit":
				return true
			}
		}
		switch name {
		case "Fatal", "Fatalf", "FailNow", "SkipNow":
			return true
		}
	}
	return false
}

// eachFuncBody calls fn for every function declaration in the file
// that has a body (methods and functions alike), passing the
// declaration for doc-comment conventions.
func eachFuncBody(f *ast.File, fn func(decl *ast.FuncDecl)) {
	for _, d := range f.Decls {
		if fd, ok := d.(*ast.FuncDecl); ok && fd.Body != nil {
			fn(fd)
		}
	}
}

// pathAvoiding reports whether some path from `from` (starting after
// statement index startIdx within it) reaches a normal function exit
// (explicit return or falling off the graph) without passing a
// statement for which hit returns true. Blocks terminated by panic do
// not count as exits. This is the shared "all paths must hit X"
// primitive: a true result means X is missable.
func (g *cfg) pathAvoiding(from *cfgBlock, startIdx int, hit func(ast.Stmt) bool) bool {
	// Scan the remainder of the starting block first.
	for i := startIdx; i < len(from.stmts); i++ {
		if hit(from.stmts[i]) {
			return false
		}
	}
	if from.panics {
		return false
	}
	if from.returns || len(from.succs) == 0 {
		return true // reached an exit without hitting
	}
	seen := map[*cfgBlock]bool{}
	var visit func(b *cfgBlock) bool
	visit = func(b *cfgBlock) bool {
		if seen[b] {
			return false
		}
		seen[b] = true
		for _, s := range b.stmts {
			if hit(s) {
				return false
			}
		}
		if b.panics {
			return false
		}
		if b.returns || len(b.succs) == 0 {
			return true
		}
		for _, s := range b.succs {
			if visit(s) {
				return true
			}
		}
		return false
	}
	for _, s := range from.succs {
		if visit(s) {
			return true
		}
	}
	return false
}
