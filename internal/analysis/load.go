package analysis

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/build"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
	"sort"
	"strings"
)

// A Package is one loaded, type-checked package ready for analysis.
type Package struct {
	ImportPath string
	Fset       *token.FileSet
	Files      []*ast.File
	Types      *types.Package
	Info       *types.Info
}

// Analyze runs the analyzers over the package.
func (p *Package) Analyze(analyzers []*Analyzer) []Finding {
	return Run(analyzers, p.Fset, p.Files, p.Types, p.Info)
}

// Audit is Analyze plus the package's suppression ledger (see
// RunAudit).
func (p *Package) Audit(analyzers []*Analyzer) ([]Finding, []SuppressionRecord) {
	return RunAudit(analyzers, p.Fset, p.Files, p.Types, p.Info)
}

// NewInfo allocates the types.Info maps the analyzers rely on.
func NewInfo() *types.Info {
	return &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
	}
}

// listedPackage is the subset of `go list -json` output the loader
// needs.
type listedPackage struct {
	ImportPath string
	Dir        string
	Name       string
	Standard   bool
	GoFiles    []string
	Error      *struct{ Err string }
}

// LoadModulePackages loads and type-checks every package of the
// module rooted at dir, plus the standard-library closure needed to
// resolve their imports, using `go list -deps -json ./...` (which is
// fully offline for a dependency-free module). It returns the
// module's own packages in import-path order.
func LoadModulePackages(dir string) ([]*Package, error) {
	cmd := exec.Command("go", "list", "-deps", "-json", "./...")
	cmd.Dir = dir
	cmd.Env = append(os.Environ(), "CGO_ENABLED=0")
	var out, errb bytes.Buffer
	cmd.Stdout = &out
	cmd.Stderr = &errb
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("analysis: go list in %s: %w\n%s", dir, err, errb.String())
	}

	var listed []listedPackage
	dec := json.NewDecoder(&out)
	for {
		var lp listedPackage
		if err := dec.Decode(&lp); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("analysis: decoding go list output: %w", err)
		}
		listed = append(listed, lp)
	}

	fset := token.NewFileSet()
	typed := make(map[string]*types.Package)
	imp := mapImporter(typed)
	conf := types.Config{Importer: imp, Sizes: types.SizesFor("gc", runtime.GOARCH)}
	var pkgs []*Package
	// -deps emits dependencies before dependents, so a single ordered
	// sweep type-checks each package after everything it imports.
	for _, lp := range listed {
		if lp.ImportPath == "unsafe" {
			typed["unsafe"] = types.Unsafe
			continue
		}
		if lp.Error != nil {
			return nil, fmt.Errorf("analysis: go list: package %s: %s", lp.ImportPath, lp.Error.Err)
		}
		files, err := ParseFiles(fset, lp.Dir, lp.GoFiles)
		if err != nil {
			return nil, err
		}
		info := NewInfo()
		tpkg, err := conf.Check(lp.ImportPath, fset, files, info)
		if err != nil {
			return nil, fmt.Errorf("analysis: type-checking %s: %w", lp.ImportPath, err)
		}
		typed[lp.ImportPath] = tpkg
		if !lp.Standard {
			pkgs = append(pkgs, &Package{
				ImportPath: lp.ImportPath,
				Fset:       fset,
				Files:      files,
				Types:      tpkg,
				Info:       info,
			})
		}
	}
	sort.Slice(pkgs, func(i, j int) bool { return pkgs[i].ImportPath < pkgs[j].ImportPath })
	return pkgs, nil
}

// mapImporter resolves imports from an already-type-checked map.
// Standard-library packages vendored under GOROOT (net/http's
// golang.org/x/... dependencies) are listed by `go list` under a
// vendor/ prefix but imported by their unprefixed path, so lookups
// fall back to the prefixed form.
type mapImporter map[string]*types.Package

func (m mapImporter) Import(path string) (*types.Package, error) {
	if p, ok := m[path]; ok {
		return p, nil
	}
	if p, ok := m["vendor/"+path]; ok {
		return p, nil
	}
	return nil, fmt.Errorf("analysis: import %q not loaded", path)
}

// ParseFiles parses the named files (joined to dir when relative),
// with comments, into fset.
func ParseFiles(fset *token.FileSet, dir string, names []string) ([]*ast.File, error) {
	var files []*ast.File
	for _, name := range names {
		f, err := parser.ParseFile(fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("analysis: %w", err)
		}
		files = append(files, f)
	}
	return files, nil
}

// fixtureLoader type-checks GOPATH-style fixture trees (the
// analysistest layout: <gopath>/src/<importpath>/*.go), resolving
// standard-library imports from GOROOT source with the usual build
// constraints applied.
type fixtureLoader struct {
	ctxt  build.Context
	fset  *token.FileSet
	typed map[string]*types.Package
	infos map[string]*types.Info
	files map[string][]*ast.File
	conf  types.Config
}

func newFixtureLoader(gopath string) *fixtureLoader {
	ctxt := build.Default
	ctxt.GOPATH = gopath
	ctxt.CgoEnabled = false
	l := &fixtureLoader{
		ctxt:  ctxt,
		fset:  token.NewFileSet(),
		typed: make(map[string]*types.Package),
		infos: make(map[string]*types.Info),
		files: make(map[string][]*ast.File),
	}
	l.conf = types.Config{Importer: l, Sizes: types.SizesFor("gc", runtime.GOARCH)}
	return l
}

// Import implements types.Importer recursively over source.
func (l *fixtureLoader) Import(path string) (*types.Package, error) {
	return l.load(path, false)
}

// load type-checks one package; includeTests additionally parses the
// package's in-package _test.go files (used for the root fixture
// only, so the analyzers' test-file exemptions are exercisable).
func (l *fixtureLoader) load(path string, includeTests bool) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if p, ok := l.typed[path]; ok {
		return p, nil
	}
	dir, names, err := l.locate(path, includeTests)
	if err != nil {
		return nil, err
	}
	files, err := ParseFiles(l.fset, dir, names)
	if err != nil {
		return nil, err
	}
	info := NewInfo()
	// Break import cycles defensively: mark in-progress before
	// recursing (well-formed fixtures have none, but a clear error
	// beats a stack overflow).
	l.typed[path] = nil
	tpkg, err := l.conf.Check(path, l.fset, files, info)
	if err != nil {
		delete(l.typed, path)
		return nil, fmt.Errorf("analysis: type-checking %s: %w", path, err)
	}
	l.typed[path] = tpkg
	l.infos[path] = info
	l.files[path] = files
	return tpkg, nil
}

// locate resolves an import path to a directory — fixture GOPATH
// first, then GOROOT — and lists its buildable Go files, applying the
// usual build constraints via Context.MatchFile. The directories are
// probed directly rather than through build.Context.Import, which in
// module mode delegates to the go command and ignores the fixture
// GOPATH entirely.
func (l *fixtureLoader) locate(path string, includeTests bool) (string, []string, error) {
	dir := filepath.Join(l.ctxt.GOPATH, "src", filepath.FromSlash(path))
	if fi, err := os.Stat(dir); err != nil || !fi.IsDir() {
		dir = filepath.Join(l.ctxt.GOROOT, "src", filepath.FromSlash(path))
		if fi, err := os.Stat(dir); err != nil || !fi.IsDir() {
			return "", nil, fmt.Errorf("analysis: package %s not found under %s or GOROOT", path, l.ctxt.GOPATH)
		}
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		return "", nil, fmt.Errorf("analysis: %w", err)
	}
	var names []string
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") {
			continue
		}
		if strings.HasSuffix(name, "_test.go") && !includeTests {
			continue
		}
		if ok, err := l.ctxt.MatchFile(dir, name); err != nil {
			return "", nil, fmt.Errorf("analysis: %w", err)
		} else if ok {
			names = append(names, name)
		}
	}
	if len(names) == 0 {
		return "", nil, fmt.Errorf("analysis: no buildable Go files for %s in %s", path, dir)
	}
	sort.Strings(names)
	return dir, names, nil
}

// LoadFixturePackage loads one package from a GOPATH-style fixture
// tree rooted at gopath (i.e. sources under gopath/src/importPath).
func LoadFixturePackage(gopath, importPath string) (*Package, error) {
	abs, err := filepath.Abs(gopath)
	if err != nil {
		return nil, fmt.Errorf("analysis: %w", err)
	}
	l := newFixtureLoader(abs)
	tpkg, err := l.load(importPath, true)
	if err != nil {
		return nil, err
	}
	return &Package{
		ImportPath: importPath,
		Fset:       l.fset,
		Files:      l.files[importPath],
		Types:      tpkg,
		Info:       l.infos[importPath],
	}, nil
}

// ModuleRoot walks up from dir to the enclosing go.mod, so tests can
// locate the repository root regardless of the package they run in.
func ModuleRoot(dir string) (string, error) {
	dir, err := filepath.Abs(dir)
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("analysis: no go.mod above %s", dir)
		}
		dir = parent
	}
}
