package analysis

// sarif.go renders findings as SARIF 2.1.0, the static-analysis
// interchange format GitHub code scanning ingests. The encoding is
// deliberately minimal — one run, one driver, one rule per analyzer,
// one result per finding with a physical location — which is the
// subset every SARIF consumer understands.

import (
	"encoding/json"
	"io"
	"path/filepath"
	"sort"
	"strings"
)

type sarifLog struct {
	Schema  string     `json:"$schema"`
	Version string     `json:"version"`
	Runs    []sarifRun `json:"runs"`
}

type sarifRun struct {
	Tool    sarifTool     `json:"tool"`
	Results []sarifResult `json:"results"`
}

type sarifTool struct {
	Driver sarifDriver `json:"driver"`
}

type sarifDriver struct {
	Name           string      `json:"name"`
	InformationURI string      `json:"informationUri,omitempty"`
	Rules          []sarifRule `json:"rules"`
}

type sarifRule struct {
	ID               string       `json:"id"`
	ShortDescription sarifMessage `json:"shortDescription"`
}

type sarifResult struct {
	RuleID    string          `json:"ruleId"`
	Level     string          `json:"level"`
	Message   sarifMessage    `json:"message"`
	Locations []sarifLocation `json:"locations"`
}

type sarifMessage struct {
	Text string `json:"text"`
}

type sarifLocation struct {
	PhysicalLocation sarifPhysical `json:"physicalLocation"`
}

type sarifPhysical struct {
	ArtifactLocation sarifArtifact `json:"artifactLocation"`
	Region           sarifRegion   `json:"region"`
}

type sarifArtifact struct {
	URI string `json:"uri"`
}

type sarifRegion struct {
	StartLine   int `json:"startLine"`
	StartColumn int `json:"startColumn,omitempty"`
}

// WriteSARIF renders the findings of a run as one SARIF log. root,
// when non-empty, is stripped from filenames so locations are
// repo-relative (what GitHub's annotation mapping needs). Rules cover
// the full analyzer set, fired or not, so consumers can show the
// suite's surface.
func WriteSARIF(w io.Writer, analyzers []*Analyzer, findings []Finding, root string) error {
	rules := make([]sarifRule, 0, len(analyzers))
	for _, a := range analyzers {
		rules = append(rules, sarifRule{
			ID:               a.Name,
			ShortDescription: sarifMessage{Text: a.Doc},
		})
	}
	sort.Slice(rules, func(i, j int) bool { return rules[i].ID < rules[j].ID })

	results := make([]sarifResult, 0, len(findings))
	for _, f := range findings {
		results = append(results, sarifResult{
			RuleID:  f.Analyzer,
			Level:   "error",
			Message: sarifMessage{Text: f.Message},
			Locations: []sarifLocation{{
				PhysicalLocation: sarifPhysical{
					ArtifactLocation: sarifArtifact{URI: relativeURI(f.Pos.Filename, root)},
					Region:           sarifRegion{StartLine: f.Pos.Line, StartColumn: f.Pos.Column},
				},
			}},
		})
	}

	log := sarifLog{
		Schema:  "https://json.schemastore.org/sarif-2.1.0.json",
		Version: "2.1.0",
		Runs: []sarifRun{{
			Tool:    sarifTool{Driver: sarifDriver{Name: "xfdlint", Rules: rules}},
			Results: results,
		}},
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(log)
}

// relativeURI makes a filename repo-relative with forward slashes.
func relativeURI(name, root string) string {
	if root != "" {
		if rel, err := filepath.Rel(root, name); err == nil && !strings.HasPrefix(rel, "..") {
			name = rel
		}
	}
	return filepath.ToSlash(name)
}
