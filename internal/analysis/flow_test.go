package analysis

// flow_test.go covers the flow-aware analyzers (lockguard,
// spanbalance, errwrap, govleak) and the machinery they ride on: the
// CFG builder, the fix planner/applier, the SARIF writer, and the
// suppression audit.

import (
	"bytes"
	"encoding/json"
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// Each fixture runs under the full suite: the other analyzers must
// stay silent on each discipline's fixture.

func TestLockGuardFixture(t *testing.T) {
	fixture(t, "discoverxfd/lockfix", All()...)
}

func TestSpanBalanceFixture(t *testing.T) {
	fixture(t, "discoverxfd/spanfix", All()...)
}

func TestErrWrapFixture(t *testing.T) {
	fixture(t, "discoverxfd/errfix", All()...)
}

func TestGovLeakFixture(t *testing.T) {
	fixture(t, "discoverxfd/leakfix", All()...)
}

// parseBody builds a CFG for the body of the first function in src.
func parseBody(t *testing.T, src string) (*cfg, *token.FileSet) {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "cfg.go", src, 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range f.Decls {
		if fd, ok := d.(*ast.FuncDecl); ok && fd.Body != nil {
			return buildCFG(fd.Body, nil), fset
		}
	}
	t.Fatal("no function in source")
	return nil, nil
}

func TestCFGGotoBailsOut(t *testing.T) {
	g, _ := parseBody(t, `package p
func f() {
top:
	if cond() {
		goto top
	}
}
func cond() bool { return false }
`)
	if !g.unanalyzable {
		t.Fatal("goto should mark the CFG unanalyzable")
	}
}

func TestCFGDefersCollected(t *testing.T) {
	g, _ := parseBody(t, `package p
func f() {
	defer done()
	if cond() {
		defer done()
	}
}
func done() {}
func cond() bool { return false }
`)
	if g.unanalyzable || len(g.defers) != 2 {
		t.Fatalf("defers = %d (unanalyzable=%v), want 2", len(g.defers), g.unanalyzable)
	}
}

func TestPathAvoiding(t *testing.T) {
	src := `package p
func f(cond bool) {
	mark()
	if cond {
		hit()
		return
	}
	hit()
}
func mark() {}
func hit()  {}
`
	g, _ := parseBody(t, src)
	if g.unanalyzable {
		t.Fatal("unexpectedly unanalyzable")
	}
	isCall := func(name string) func(ast.Stmt) bool {
		return func(s ast.Stmt) bool {
			es, ok := s.(*ast.ExprStmt)
			if !ok {
				return false
			}
			call, ok := es.X.(*ast.CallExpr)
			if !ok {
				return false
			}
			id, ok := call.Fun.(*ast.Ident)
			return ok && id.Name == name
		}
	}
	// Every path from the entry passes through hit() before any exit.
	if g.pathAvoiding(g.entry, 0, isCall("hit")) {
		t.Fatal("no exit should be reachable while avoiding hit()")
	}
	// But a path avoiding mark() does not exist from index 0 either.
	if g.pathAvoiding(g.entry, 0, isCall("mark")) {
		t.Fatal("mark() is the first statement; it cannot be avoided")
	}
	// Starting past mark(), exits are reachable without re-seeing it.
	if !g.pathAvoiding(g.entry, 1, isCall("mark")) {
		t.Fatal("after mark() there should be a mark()-free path to return")
	}
}

// copyFixtureDir copies one fixture package directory (plus the
// dependency packages it needs) into a fresh GOPATH so fixes can be
// applied without touching the checked-in fixtures.
func copyFixtureDir(t *testing.T, pkgs ...string) string {
	t.Helper()
	gopath := t.TempDir()
	for _, pkg := range pkgs {
		srcDir := filepath.Join("testdata", "src", pkg)
		dstDir := filepath.Join(gopath, "src", pkg)
		if err := os.MkdirAll(dstDir, 0o755); err != nil {
			t.Fatal(err)
		}
		ents, err := os.ReadDir(srcDir)
		if err != nil {
			t.Fatal(err)
		}
		for _, e := range ents {
			if e.IsDir() {
				continue
			}
			data, err := os.ReadFile(filepath.Join(srcDir, e.Name()))
			if err != nil {
				t.Fatal(err)
			}
			if err := os.WriteFile(filepath.Join(dstDir, e.Name()), data, 0o644); err != nil {
				t.Fatal(err)
			}
		}
	}
	return gopath
}

// TestErrWrapFixesApply plans and applies errwrap's autofixes to a
// copy of the errfix fixture, then reloads it: every errwrap finding
// must be gone and the file must still compile.
func TestErrWrapFixesApply(t *testing.T) {
	gopath := copyFixtureDir(t, "discoverxfd/errfix", "discoverxfd/internal/relation")
	pkg, err := LoadFixturePackage(gopath, "discoverxfd/errfix")
	if err != nil {
		t.Fatal(err)
	}
	findings := pkg.Analyze([]*Analyzer{ErrWrap})
	if len(findings) != 4 {
		t.Fatalf("errwrap findings = %d, want 4:\n%v", len(findings), findings)
	}
	for _, f := range findings {
		if f.Fix == nil {
			t.Fatalf("finding has no fix: %s", f)
		}
	}
	plans, err := PlanFixes(findings)
	if err != nil {
		t.Fatal(err)
	}
	changed, err := ApplyFixes(plans)
	if err != nil {
		t.Fatal(err)
	}
	if changed != 1 {
		t.Fatalf("changed files = %d, want 1", changed)
	}
	fixedPkg, err := LoadFixturePackage(gopath, "discoverxfd/errfix")
	if err != nil {
		t.Fatalf("fixed fixture no longer loads: %v", err)
	}
	if left := fixedPkg.Analyze([]*Analyzer{ErrWrap}); len(left) != 0 {
		t.Fatalf("findings remain after fix: %v", left)
	}
	fixed, err := os.ReadFile(filepath.Join(gopath, "src", "discoverxfd/errfix", "errfix.go"))
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"errors.Is(err, relation.ErrEmptyTree)",
		"!errors.Is(err, relation.ErrEmptyTree)",
		"load failed: %w",
		"stage %d: %w",
	} {
		if !strings.Contains(string(fixed), want) {
			t.Errorf("fixed source missing %q", want)
		}
	}
}

func TestApplyEditsRejectsOverlap(t *testing.T) {
	_, err := applyEdits([]byte("abcdef"), []Edit{
		{Offset: 1, End: 4, NewText: "X"},
		{Offset: 3, End: 5, NewText: "Y"},
	})
	if err == nil {
		t.Fatal("expected overlap error")
	}
}

func TestEnsureImportVariants(t *testing.T) {
	grouped := []byte("package p\n\nimport (\n\t\"fmt\"\n)\n\nvar _ = fmt.Sprint\n")
	out, err := ensureImport(grouped, "errors")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Contains(out, []byte("\t\"errors\"\n")) {
		t.Fatalf("grouped import not inserted:\n%s", out)
	}

	bare := []byte("package p\n\nvar X = 1\n")
	out, err = ensureImport(bare, "errors")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Contains(out, []byte("import \"errors\"")) {
		t.Fatalf("standalone import not inserted:\n%s", out)
	}

	already := []byte("package p\n\nimport \"errors\"\n\nvar X = errors.New(\"x\")\n")
	out, err = ensureImport(already, "errors")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(out, already) {
		t.Fatalf("existing import duplicated:\n%s", out)
	}
}

func TestFormatVerbs(t *testing.T) {
	lit := `"a %d b %+v c %*.2f d %% e %s"`
	verbs := formatVerbs(lit)
	var got []string
	for _, v := range verbs {
		got = append(got, string(v.verb))
	}
	if strings.Join(got, "") != "dvfs" {
		t.Fatalf("verbs = %v, want d v f s", got)
	}
	// The %*.2f consumes an extra operand for the width.
	if verbs[2].operand != 3 {
		t.Fatalf("star-width operand index = %d, want 3", verbs[2].operand)
	}
	if formatVerbs(`"explicit %[1]v index"`) != nil {
		t.Fatal("explicit argument indexes should abort the scan")
	}
}

func TestWriteSARIF(t *testing.T) {
	findings := []Finding{{
		Analyzer: "lockguard",
		Pos:      token.Position{Filename: "/repo/internal/core/engine.go", Line: 42, Column: 7},
		Message:  "field warm is guarded by e.mu but read without holding it",
	}}
	var buf bytes.Buffer
	if err := WriteSARIF(&buf, All(), findings, "/repo"); err != nil {
		t.Fatal(err)
	}
	var log struct {
		Version string `json:"version"`
		Runs    []struct {
			Tool struct {
				Driver struct {
					Name  string `json:"name"`
					Rules []struct {
						ID string `json:"id"`
					} `json:"rules"`
				} `json:"driver"`
			} `json:"tool"`
			Results []struct {
				RuleID    string `json:"ruleId"`
				Level     string `json:"level"`
				Locations []struct {
					PhysicalLocation struct {
						ArtifactLocation struct {
							URI string `json:"uri"`
						} `json:"artifactLocation"`
						Region struct {
							StartLine int `json:"startLine"`
						} `json:"region"`
					} `json:"physicalLocation"`
				} `json:"locations"`
			} `json:"results"`
		} `json:"runs"`
	}
	if err := json.Unmarshal(buf.Bytes(), &log); err != nil {
		t.Fatalf("SARIF output is not valid JSON: %v", err)
	}
	if log.Version != "2.1.0" || len(log.Runs) != 1 {
		t.Fatalf("version/runs = %q/%d", log.Version, len(log.Runs))
	}
	run := log.Runs[0]
	if run.Tool.Driver.Name != "xfdlint" {
		t.Fatalf("driver = %q", run.Tool.Driver.Name)
	}
	if len(run.Tool.Driver.Rules) != len(All()) {
		t.Fatalf("rules = %d, want %d", len(run.Tool.Driver.Rules), len(All()))
	}
	if len(run.Results) != 1 {
		t.Fatalf("results = %d, want 1", len(run.Results))
	}
	res := run.Results[0]
	loc := res.Locations[0].PhysicalLocation
	if res.RuleID != "lockguard" || res.Level != "error" ||
		loc.ArtifactLocation.URI != "internal/core/engine.go" ||
		loc.Region.StartLine != 42 {
		t.Fatalf("unexpected result: %+v", res)
	}
}

// TestSuppressionAudit checks used-vs-stale accounting: a suppression
// that actually silences a finding is Used, one that silences nothing
// is stale.
func TestSuppressionAudit(t *testing.T) {
	const src = `package p

func spawn() {
	//lint:governed test fixture spawn
	go spawn()
}

func quiet() {
	//lint:governed nothing here to silence
	_ = 1
}
`
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "s.go", src, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	info := NewInfo()
	conf := types.Config{}
	pkg, err := conf.Check(ModulePrefix+"/p", fset, []*ast.File{f}, info)
	if err != nil {
		t.Fatal(err)
	}
	findings, records := RunAudit(All(), fset, []*ast.File{f}, pkg, info)
	if len(findings) != 0 {
		t.Fatalf("suppressed run still reported: %v", findings)
	}
	if len(records) != 2 {
		t.Fatalf("records = %d, want 2", len(records))
	}
	byLine := map[int]SuppressionRecord{}
	for _, r := range records {
		byLine[r.Line] = r
	}
	if r := byLine[4]; !r.Used || r.Directive != "governed" || r.Reason == "" {
		t.Fatalf("line 4 record = %+v, want used governed with reason", r)
	}
	if r := byLine[9]; r.Used {
		t.Fatalf("line 9 record = %+v, want stale", r)
	}
}

func TestKnownDirective(t *testing.T) {
	if !KnownDirective(All(), "lockguard") || !KnownDirective(All(), "governed") {
		t.Fatal("expected shipped directives to be known")
	}
	if KnownDirective(All(), "nosuchcheck") {
		t.Fatal("unexpected directive recognized")
	}
}
