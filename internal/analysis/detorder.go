package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// DetOrder is the static counterpart of the engine's byte-identical
// output guarantee (locked in by TestDiscoveryDeterministic and
// friends): on output-producing paths, iteration order must never be
// a Go map's. It flags `range` statements over map types in the
// packages that feed reports, JSON, and benchmark tables, unless one
// of three things makes the order provably irrelevant:
//
//   - the loop body is commutative — it only accumulates into
//     order-insensitive sinks (integer +=/-=/++/--, map-index
//     assignment, delete), so any visit order yields the same state;
//
//   - the collected values are sorted afterwards in the same function
//     (a sort.*/slices.Sort* call after the range begins) — the
//     canonical collect-then-sort idiom;
//
//   - a `//lint:detorder <reason>` suppression explains why the order
//     cannot reach the output.
var DetOrder = &Analyzer{
	Name:      "detorder",
	Directive: "detorder",
	Doc:       "flag map iteration on output paths without a subsequent sort",
	Run:       runDetOrder,
}

// detOrderScope reports whether the file participates in an output
// path: the root package's report/JSON renderers, the core engine,
// the benchmark harness, and the trace backends (serial-run traces
// are pinned byte-stable by TestTraceJSONLDeterministic, so an emit
// path leaking map order would flake that guarantee).
func detOrderScope(path, filename string) bool {
	if strings.HasSuffix(path, "internal/core") || strings.HasSuffix(path, "internal/bench") ||
		strings.HasSuffix(path, "internal/trace") {
		return true
	}
	return filename == "report.go" || filename == "json.go"
}

func runDetOrder(pass *Pass) {
	for _, f := range pass.Files {
		if pass.IsTestFile(f) || !detOrderScope(pass.Path, pass.Filename(f)) {
			continue
		}
		inspectStack(f, func(stack []ast.Node, n ast.Node) bool {
			rng, ok := n.(*ast.RangeStmt)
			if !ok {
				return true
			}
			t := pass.Info.TypeOf(rng.X)
			if t == nil {
				return true
			}
			if _, isMap := t.Underlying().(*types.Map); !isMap {
				return true
			}
			if pass.commutativeBody(rng.Body) {
				return true
			}
			if fn := enclosingFunc(stack); fn != nil && sortedAfter(pass, fn, rng.Pos()) {
				return true
			}
			pass.Reportf(rng.Pos(), "map iteration on an output path without a subsequent sort: iterate sorted keys (or sort what you collect) so results stay byte-identical across runs")
			return true
		})
	}
}

// commutativeBody reports whether every statement in the loop body is
// order-insensitive: integer accumulation (string += concatenation is
// order-sensitive and does not qualify), map-index assignment, delete,
// such statements nested under if/blocks, or loop control. Plain
// `x = v` latches are NOT accepted — a latch that really is
// order-insensitive takes a //lint:detorder suppression saying why.
func (p *Pass) commutativeBody(body *ast.BlockStmt) bool {
	for _, s := range body.List {
		if !p.commutativeStmt(s) {
			return false
		}
	}
	return true
}

func (p *Pass) commutativeStmt(s ast.Stmt) bool {
	switch s := s.(type) {
	case *ast.IncDecStmt:
		return p.isIntegerExpr(s.X)
	case *ast.AssignStmt:
		if s.Tok == token.ADD_ASSIGN || s.Tok == token.SUB_ASSIGN {
			return len(s.Lhs) == 1 && p.isIntegerExpr(s.Lhs[0])
		}
		if s.Tok == token.ASSIGN || s.Tok == token.DEFINE {
			// m[k] = v is order-insensitive when keys are distinct per
			// iteration (the common tally/index-building shape).
			for _, lhs := range s.Lhs {
				if _, ok := lhs.(*ast.IndexExpr); !ok {
					return false
				}
			}
			return true
		}
		return false
	case *ast.ExprStmt:
		call, ok := s.X.(*ast.CallExpr)
		if !ok {
			return false
		}
		id, ok := call.Fun.(*ast.Ident)
		return ok && id.Name == "delete"
	case *ast.IfStmt:
		if s.Else != nil && !p.commutativeStmt(s.Else) {
			return false
		}
		return p.commutativeBody(s.Body)
	case *ast.BlockStmt:
		return p.commutativeBody(s)
	case *ast.BranchStmt:
		return s.Tok == token.CONTINUE
	default:
		return false
	}
}

// isIntegerExpr reports whether the expression has an integer type
// (the only type whose += / -- accumulation is order-insensitive).
func (p *Pass) isIntegerExpr(e ast.Expr) bool {
	t := p.Info.TypeOf(e)
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsInteger != 0
}

// sortedAfter reports whether the enclosing function calls a sorting
// routine at or after pos — the collect-then-sort idiom that restores
// a canonical order before the data can escape.
func sortedAfter(pass *Pass, fn ast.Node, pos token.Pos) bool {
	var body *ast.BlockStmt
	switch fn := fn.(type) {
	case *ast.FuncDecl:
		body = fn.Body
	case *ast.FuncLit:
		body = fn.Body
	}
	if body == nil {
		return false
	}
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() < pos {
			return true
		}
		if isSortCall(pass, call) {
			found = true
		}
		return !found
	})
	return found
}

// isSortCall reports whether the call is into package sort or a
// slices.Sort* function.
func isSortCall(pass *Pass, call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return false
	}
	pkg, ok := pass.Info.Uses[id].(*types.PkgName)
	if !ok {
		return false
	}
	switch pkg.Imported().Path() {
	case "sort":
		return true
	case "slices":
		return strings.HasPrefix(sel.Sel.Name, "Sort")
	}
	return false
}
