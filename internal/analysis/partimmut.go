package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// PartImmut enforces the immutability that makes run-wide partition
// sharing sound: a *partition.Partition interned into the partition
// cache is handed out to the lattice traversal, the approximate pass,
// and the post-traversal verification without copying, so a write to
// its fields after construction corrupts every other reader (Yu &
// Jagadish's partition reuse assumes frozen partitions). Two rules:
//
//   - Partition immutability: assignments to Partition fields (or
//     through them, e.g. p.Groups[i][j] = x, or *p = ...) are allowed
//     only inside the internal/partition package's constructors —
//     functions whose results include a Partition.
//
//   - Cache locality: fields of the cache types (partitionCache,
//     relPartitions) may be written only in the file that declares
//     them (pcache.go), which is where the concurrency and accounting
//     contracts live.
var PartImmut = &Analyzer{
	Name:      "partimmut",
	Directive: "partimmut",
	Doc:       "flag writes to Partition fields outside internal/partition constructors and cache-state writes outside the cache's declaring file",
	Run:       runPartImmut,
}

// cacheTypes are the partition-cache types whose state must only be
// mutated in their declaring file.
var cacheTypes = []string{"partitionCache", "relPartitions"}

// patchConstructors names the in-place patch constructors of
// internal/partition: methods that assemble a not-yet-published
// Partition on behalf of a returning constructor (Patch builds its
// result through spliceFrom/mergeRebuilt) and therefore write fields
// without having a Partition in their own results. The allowlist is
// by name so a new in-place writer is an explicit, reviewed addition
// here rather than a blanket //lint:partimmut suppression at the
// write site.
var patchConstructors = map[string]bool{
	"spliceFrom":   true,
	"mergeRebuilt": true,
}

func runPartImmut(pass *Pass) {
	for _, f := range pass.Files {
		if pass.IsTestFile(f) {
			continue
		}
		inspectStack(f, func(stack []ast.Node, n ast.Node) bool {
			switch n := n.(type) {
			case *ast.AssignStmt:
				for _, lhs := range n.Lhs {
					pass.checkWrite(stack, lhs)
				}
			case *ast.IncDecStmt:
				pass.checkWrite(stack, n.X)
			}
			return true
		})
	}
}

// checkWrite walks an assignment target down to its base and reports
// forbidden Partition-field and cache-field writes.
func (p *Pass) checkWrite(stack []ast.Node, lhs ast.Expr) {
	for {
		switch e := lhs.(type) {
		case *ast.ParenExpr:
			lhs = e.X
		case *ast.IndexExpr:
			lhs = e.X
		case *ast.StarExpr:
			// *p = Partition{...} overwrites the shared struct wholesale.
			if t := p.Info.TypeOf(e.X); t != nil && isNamed(t, "internal/partition", "Partition") {
				p.reportPartitionWrite(stack, e.Pos(), "whole-struct overwrite of a shared Partition")
			}
			lhs = e.X
		case *ast.SelectorExpr:
			sel, ok := p.Info.Selections[e]
			if !ok || sel.Kind() != types.FieldVal {
				lhs = e.X
				continue
			}
			recv := sel.Recv()
			switch {
			case isNamed(recv, "internal/partition", "Partition"):
				p.reportPartitionWrite(stack, e.Pos(), "write to Partition."+e.Sel.Name)
			case p.isCacheType(recv):
				p.reportCacheWrite(recv, e)
			}
			lhs = e.X
		default:
			return
		}
	}
}

// reportPartitionWrite flags a Partition-field write unless it occurs
// inside one of the partition package's constructors.
func (p *Pass) reportPartitionWrite(stack []ast.Node, pos token.Pos, what string) {
	if p.inPartitionConstructor(stack) {
		return
	}
	p.Reportf(pos, "%s outside internal/partition constructors: cached partitions are shared run-wide and must stay immutable", what)
}

// inPartitionConstructor reports whether the innermost enclosing
// function declaration is in the internal/partition package and
// returns a Partition — the shape of every sanctioned builder
// (FromCodes, FromDense, Single, Product, ...).
func (p *Pass) inPartitionConstructor(stack []ast.Node) bool {
	if p.Path != "internal/partition" && !strings.HasSuffix(p.Path, "/internal/partition") {
		return false
	}
	fn := enclosingFunc(stack)
	var ftype *ast.FuncType
	switch fn := fn.(type) {
	case *ast.FuncDecl:
		if fn.Recv != nil && patchConstructors[fn.Name.Name] {
			return true
		}
		ftype = fn.Type
	case *ast.FuncLit:
		ftype = fn.Type
	default:
		return false
	}
	if ftype.Results == nil {
		return false
	}
	for _, r := range ftype.Results.List {
		if t := p.Info.TypeOf(r.Type); t != nil && isNamed(t, "internal/partition", "Partition") {
			return true
		}
	}
	return false
}

func (p *Pass) isCacheType(t types.Type) bool {
	for _, name := range cacheTypes {
		if isNamed(t, "internal/core", name) {
			return true
		}
	}
	return false
}

// reportCacheWrite flags a cache-field write outside the file that
// declares the cache type.
func (p *Pass) reportCacheWrite(recv types.Type, e *ast.SelectorExpr) {
	n := namedType(recv)
	declFile := p.Fset.Position(n.Obj().Pos()).Filename
	if p.Fset.Position(e.Pos()).Filename == declFile {
		return
	}
	p.Reportf(e.Pos(), "write to %s.%s outside its declaring file: cache state carries concurrency and accounting contracts that live in pcache.go", n.Obj().Name(), e.Sel.Name)
}
