package analysis

// errwrap enforces the module's error-discipline contract around its
// sentinel errors (relation.ErrEmptyTree, relation.ErrBuilderFinished
// and friends):
//
//  1. A sentinel declared in another module package must be compared
//     with errors.Is/errors.As, never ==/!= — wrapped errors cross
//     package boundaries here (the CLIs classify engine errors for
//     exit codes), and an identity comparison silently stops matching
//     the moment a %w wrap is added upstream. The finding carries a
//     rewrite to errors.Is.
//  2. fmt.Errorf must wrap error operands with %w, not flatten them
//     through %v/%s: flattening severs the Unwrap chain the rest of
//     the module relies on. The finding carries a verb rewrite.
//
// Identity comparisons against stdlib sentinels (io.EOF) are left
// alone — several loaders use the documented `err == io.EOF`
// convention for APIs that are specified to return it unwrapped.

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

var ErrWrap = &Analyzer{
	Name:      "errwrap",
	Directive: "errwrap",
	Doc: "module sentinel errors must be compared via errors.Is/As across package " +
		"boundaries and wrapped with %w, never flattened through %v/%s",
	Run: runErrWrap,
}

func runErrWrap(p *Pass) {
	for _, f := range p.Files {
		if p.IsTestFile(f) {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.BinaryExpr:
				checkSentinelCompare(p, n)
			case *ast.CallExpr:
				checkErrorfWrap(p, n)
			}
			return true
		})
	}
}

// checkSentinelCompare flags ==/!= against a sentinel error declared
// in a different module package.
func checkSentinelCompare(p *Pass, bin *ast.BinaryExpr) {
	if bin.Op != token.EQL && bin.Op != token.NEQ {
		return
	}
	var sentinel, other ast.Expr
	switch {
	case isForeignSentinel(p, bin.Y):
		sentinel, other = bin.Y, bin.X
	case isForeignSentinel(p, bin.X):
		sentinel, other = bin.X, bin.Y
	default:
		return
	}
	rewrite := "errors.Is(" + types.ExprString(other) + ", " + types.ExprString(sentinel) + ")"
	if bin.Op == token.NEQ {
		rewrite = "!" + rewrite
	}
	fix := &Fix{
		Message:   "compare with errors.Is",
		Edits:     []Edit{p.EditAt(bin.Pos(), bin.End(), rewrite)},
		AddImport: "errors",
	}
	p.ReportFixf(bin.Pos(), fix, "sentinel %s compared with %s; use errors.Is so wrapped errors still match",
		types.ExprString(sentinel), bin.Op)
}

// isForeignSentinel reports whether the expression denotes an
// exported package-level `Err*` variable of type error declared in a
// module package other than the one being analyzed.
func isForeignSentinel(p *Pass, e ast.Expr) bool {
	var obj types.Object
	switch e := e.(type) {
	case *ast.SelectorExpr:
		obj = p.Info.Uses[e.Sel]
	case *ast.Ident:
		obj = p.Info.Uses[e]
	default:
		return false
	}
	v, ok := obj.(*types.Var)
	if !ok || v.Pkg() == nil || !v.Exported() || !strings.HasPrefix(v.Name(), "Err") {
		return false
	}
	if !types.Identical(v.Type(), types.Universe.Lookup("error").Type()) {
		return false
	}
	path := v.Pkg().Path()
	if path == p.Path {
		return false // same package: identity comparison is the author's call
	}
	return path == ModulePrefix || strings.HasPrefix(path, ModulePrefix+"/")
}

// checkErrorfWrap flags %v/%s verbs in fmt.Errorf whose operand is an
// error, offering a %w rewrite.
func checkErrorfWrap(p *Pass, call *ast.CallExpr) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Errorf" {
		return
	}
	pkg, ok := sel.X.(*ast.Ident)
	if !ok || pkg.Name != "fmt" {
		return
	}
	if obj, ok := p.Info.Uses[pkg].(*types.PkgName); !ok || obj.Imported().Path() != "fmt" {
		return
	}
	if len(call.Args) < 2 || call.Ellipsis.IsValid() {
		return
	}
	lit, ok := call.Args[0].(*ast.BasicLit)
	if !ok || lit.Kind != token.STRING {
		return
	}
	verbs := formatVerbs(lit.Value)
	for _, v := range verbs {
		if v.verb != 'v' && v.verb != 's' {
			continue
		}
		argIdx := 1 + v.operand
		if argIdx >= len(call.Args) {
			continue
		}
		if !isErrorExpr(p, call.Args[argIdx]) {
			continue
		}
		// The verb's byte range inside the literal source text: the
		// scanner ran over lit.Value, whose indices map one-to-one
		// onto the file bytes of the literal.
		verbPos := lit.Pos() + token.Pos(v.off)
		fix := &Fix{
			Message: "wrap with %w",
			Edits:   []Edit{p.EditAt(verbPos, verbPos+token.Pos(v.len), "%w")},
		}
		p.ReportFixf(verbPos, fix, "error %s formatted with %%%c; use %%w so the cause stays unwrappable",
			types.ExprString(call.Args[argIdx]), v.verb)
	}
}

func isErrorExpr(p *Pass, e ast.Expr) bool {
	tv, ok := p.Info.Types[e]
	if !ok || tv.Type == nil {
		return false
	}
	errType, ok := types.Universe.Lookup("error").Type().Underlying().(*types.Interface)
	if !ok {
		return false
	}
	return types.Implements(tv.Type, errType)
}

// formatVerb is one conversion in a format string: the final verb
// rune, the operand index it consumes, and the byte range
// [off, off+len) of the whole conversion within the literal's source
// text (including quotes).
type formatVerb struct {
	verb    rune
	operand int
	off     int
	len     int
}

// formatVerbs scans a format string literal (source text, quotes
// included) in the fmt grammar, far enough to map verbs to operand
// indices: flags, width/precision (including * operands), and %%.
// Explicit argument indexes (%[n]d) abort the scan — the engine never
// uses them, and mismapping operands would misreport.
func formatVerbs(src string) []formatVerb {
	var out []formatVerb
	operand := 0
	for i := 0; i < len(src); i++ {
		if src[i] != '%' {
			continue
		}
		start := i
		i++
		// flags
		for i < len(src) && strings.ContainsRune("+-# 0", rune(src[i])) {
			i++
		}
		// width
		for i < len(src) && src[i] >= '0' && src[i] <= '9' {
			i++
		}
		if i < len(src) && src[i] == '*' {
			operand++
			i++
		}
		// precision
		if i < len(src) && src[i] == '.' {
			i++
			for i < len(src) && src[i] >= '0' && src[i] <= '9' {
				i++
			}
			if i < len(src) && src[i] == '*' {
				operand++
				i++
			}
		}
		if i >= len(src) {
			break
		}
		switch src[i] {
		case '%':
			continue
		case '[':
			return nil // explicit argument index: stand down
		}
		out = append(out, formatVerb{
			verb:    rune(src[i]),
			operand: operand,
			off:     start,
			len:     i - start + 1,
		})
		operand++
	}
	return out
}
