package analysis

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// fixture runs one fixture package against the given analyzers with
// the `// want` harness.
func fixture(t *testing.T, importPath string, analyzers ...*Analyzer) {
	t.Helper()
	RunFixture(t, "testdata", importPath, analyzers)
}

func TestGovDisciplineFixture(t *testing.T) {
	// The full suite runs here: the other analyzers must stay silent
	// on a fixture that only violates governor discipline.
	fixture(t, "discoverxfd/govfix", All()...)
}

func TestCtxPlumbFixture(t *testing.T) {
	fixture(t, "discoverxfd/ctxfix", All()...)
}

func TestCtxPlumbHTTPFixture(t *testing.T) {
	// Handler-shaped functions (receiving an *http.Request) are held to
	// the root-context rule; the whole suite runs so the other
	// analyzers must stay silent.
	fixture(t, "discoverxfd/httpfix", All()...)
}

func TestCtxPlumbSkipsPackageMain(t *testing.T) {
	fixture(t, "discoverxfd/ctxmain", CtxPlumb)
}

func TestPartImmutPartitionFixture(t *testing.T) {
	fixture(t, "discoverxfd/internal/partition", PartImmut)
}

func TestCoreFixture(t *testing.T) {
	fixture(t, "discoverxfd/internal/core", PartImmut, DetOrder)
}

func TestDetOrderBenchFixture(t *testing.T) {
	fixture(t, "discoverxfd/internal/bench", DetOrder)
}

// TestTraceFixture runs the full suite over a trace-backend-shaped
// fixture: detorder covers the emit paths (internal/trace is in its
// scope) and govdiscipline flags a backend that spawns its own
// flusher goroutine — the real JSONL and progress backends emit
// inline on the caller's goroutine.
func TestTraceFixture(t *testing.T) {
	fixture(t, "discoverxfd/internal/trace", All()...)
}

func TestDetOrderFilenameScope(t *testing.T) {
	fixture(t, "discoverxfd", DetOrder)
}

// TestRepoInvariants is the suite's own dogfood run: every analyzer
// over every package of this module must come back clean (violations
// are either fixed or carry a justified //lint: suppression).
func TestRepoInvariants(t *testing.T) {
	root, err := ModuleRoot(".")
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := LoadModulePackages(root)
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) < 5 {
		t.Fatalf("expected the full module, loaded only %d packages", len(pkgs))
	}
	for _, pkg := range pkgs {
		for _, f := range pkg.Analyze(All()) {
			t.Errorf("%s", f)
		}
	}
}

// checkSource type-checks a single in-memory file under the given
// import path and runs the full suite over it.
func checkSource(t *testing.T, path, src string) []Finding {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "src.go", src, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	info := NewInfo()
	conf := types.Config{}
	pkg, err := conf.Check(path, fset, []*ast.File{f}, info)
	if err != nil {
		t.Fatal(err)
	}
	return Run(All(), fset, []*ast.File{f}, pkg, info)
}

// TestRunSkipsForeignPackages checks the module gate: packages
// outside ModulePrefix are not analyzed at all.
func TestRunSkipsForeignPackages(t *testing.T) {
	const src = "package p\n\nfunc f() { go f() }\n"
	if got := checkSource(t, "othermod/p", src); len(got) != 0 {
		t.Fatalf("foreign package produced findings: %v", got)
	}
	// Positive control: the same source inside the module is flagged.
	if got := checkSource(t, ModulePrefix+"/p", src); len(got) != 1 {
		t.Fatalf("module package findings = %v, want exactly one", got)
	}
}

func TestFindingString(t *testing.T) {
	f := Finding{
		Analyzer: "govdiscipline",
		Pos:      token.Position{Filename: "x.go", Line: 3, Column: 2},
		Message:  "bare go statement",
	}
	want := "x.go:3:2: bare go statement [govdiscipline]"
	if f.String() != want {
		t.Fatalf("String() = %q, want %q", f.String(), want)
	}
}

func TestMapImporterUnknown(t *testing.T) {
	m := mapImporter{}
	if _, err := m.Import("nosuch/pkg"); err == nil {
		t.Fatal("expected error for unknown import")
	}
}

func TestModuleRootNotFound(t *testing.T) {
	if _, err := ModuleRoot("/"); err == nil {
		t.Fatal("expected error above filesystem root")
	}
}

func TestLoadFixtureMissingPackage(t *testing.T) {
	if _, err := LoadFixturePackage("testdata", "discoverxfd/nosuch"); err == nil {
		t.Fatal("expected error for missing fixture package")
	}
}

func TestUnquotePattern(t *testing.T) {
	cases := []struct{ in, want string }{
		{`plain`, `plain`},
		{`a \" quote`, `a " quote`},
		{`a \\ backslash`, `a \ backslash`},
		{`keep \d class`, `keep \d class`},
	}
	for _, c := range cases {
		got, err := unquotePattern(c.in)
		if err != nil || got != c.want {
			t.Errorf("unquotePattern(%q) = %q, %v; want %q", c.in, got, err, c.want)
		}
	}
	if _, err := unquotePattern(`trailing \`); err == nil {
		t.Error("expected error for trailing backslash")
	}
}

// failRecorder captures harness errors so the harness itself can be
// tested for both unmatched-expectation and unexpected-finding paths.
type failRecorder struct{ msgs []string }

func (r *failRecorder) Errorf(format string, args ...any) {
	r.msgs = append(r.msgs, strings.TrimSpace(fmt.Sprintf(format, args...)))
}

func TestHarnessReportsMismatches(t *testing.T) {
	var r failRecorder
	// Running the govfix fixture with zero analyzers leaves every
	// `want` expectation unmatched.
	RunFixture(&r, "testdata", "discoverxfd/govfix", nil)
	if len(r.msgs) == 0 {
		t.Fatal("expected unmatched-expectation errors")
	}
	for _, m := range r.msgs {
		if !strings.Contains(m, "no finding matched") {
			t.Fatalf("unexpected harness error: %s", m)
		}
	}

	// And a fixture with no want comments run against an analyzer that
	// fires reports the finding as unexpected.
	r = failRecorder{}
	RunFixture(&r, "testdata", "discoverxfd/ctxmain", []*Analyzer{GovDiscipline}) // ctxmain has no spawns: clean
	if len(r.msgs) != 0 {
		t.Fatalf("clean fixture produced: %v", r.msgs)
	}

	r = failRecorder{}
	RunFixture(&r, "testdata", "discoverxfd/mismatch", []*Analyzer{GovDiscipline})
	if len(r.msgs) != 1 || !strings.Contains(r.msgs[0], "unexpected finding") {
		t.Fatalf("mismatch fixture errors = %v, want one unexpected-finding error", r.msgs)
	}

	// A missing fixture package surfaces as a loading error.
	r = failRecorder{}
	RunFixture(&r, "testdata", "discoverxfd/nosuch", nil)
	if len(r.msgs) != 1 || !strings.Contains(r.msgs[0], "loading fixture") {
		t.Fatalf("missing fixture errors = %v, want one loading error", r.msgs)
	}
}

func TestCollectExpectationsErrors(t *testing.T) {
	parse := func(src string) *Package {
		fset := token.NewFileSet()
		f, err := parser.ParseFile(fset, "m.go", src, parser.ParseComments)
		if err != nil {
			t.Fatal(err)
		}
		return &Package{Fset: fset, Files: []*ast.File{f}}
	}
	if _, err := collectExpectations(parse("package m\n\n// want banana\n")); err == nil {
		t.Error("expected malformed-want error")
	}
	if _, err := collectExpectations(parse("package m\n\n// want \"(\"\n")); err == nil {
		t.Error("expected bad-pattern error")
	}
}

func TestLoadModulePackagesOutsideModule(t *testing.T) {
	if _, err := LoadModulePackages(t.TempDir()); err == nil {
		t.Fatal("expected error outside a module")
	}
}

// writeFixture lays down a one-file GOPATH fixture and returns its
// gopath root.
func writeFixture(t *testing.T, importPath, src string) string {
	t.Helper()
	gopath := t.TempDir()
	dir := filepath.Join(gopath, "src", importPath)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "f.go"), []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	return gopath
}

func TestLoadFixtureSyntaxError(t *testing.T) {
	gopath := writeFixture(t, "bad", "package bad\nfunc {\n")
	if _, err := LoadFixturePackage(gopath, "bad"); err == nil {
		t.Fatal("expected parse error")
	}
}

func TestLoadFixtureTypeError(t *testing.T) {
	gopath := writeFixture(t, "q", "package q\n\nvar x int = \"s\"\n")
	if _, err := LoadFixturePackage(gopath, "q"); err == nil {
		t.Fatal("expected type-check error")
	}
}
