// Package http is a minimal stand-in for net/http, just enough for
// the ctxplumb fixtures to type-check handler signatures. The fixture
// loader probes the fixture GOPATH before GOROOT, so this stub shadows
// the real package and keeps fixture type-checking fast and
// closure-free. The analyzer keys on the import path ("net/http") and
// type name ("Request"), which this stub shares with the real thing.
package http

import "context"

// Request carries a per-request context, like the real thing.
type Request struct {
	ctx context.Context
}

// Context returns the request's context.
func (r *Request) Context() context.Context { return r.ctx }

// ResponseWriter is the response side of a handler.
type ResponseWriter interface {
	Write([]byte) (int, error)
	WriteHeader(statusCode int)
}

// Handler responds to an HTTP request.
type Handler interface {
	ServeHTTP(ResponseWriter, *Request)
}

// HandlerFunc adapts a function to a Handler.
type HandlerFunc func(ResponseWriter, *Request)

// ServeHTTP calls f(w, r).
func (f HandlerFunc) ServeHTTP(w ResponseWriter, r *Request) { f(w, r) }
