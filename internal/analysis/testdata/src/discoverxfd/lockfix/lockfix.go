// Package lockfix exercises the lockguard analyzer: fields annotated
// `guarded by <mu>` must only be touched while the mutex is statically
// held, locks must be released on every path, and re-locking a held
// mutex is a self-deadlock.
package lockfix

import "sync"

type counter struct {
	mu sync.Mutex
	n  int // guarded by mu
}

func (c *counter) deferGood() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.n
}

func (c *counter) pairedGood() {
	c.mu.Lock()
	c.n++
	c.mu.Unlock()
}

func (c *counter) badRead() int {
	return c.n // want "field n is guarded by c.mu but read without holding it"
}

func (c *counter) badWrite(v int) {
	c.n = v // want "field n is guarded by c.mu but written without holding it"
}

func (c *counter) badAfterUnlock() int {
	c.mu.Lock()
	c.mu.Unlock()
	return c.n // want "field n is guarded by c.mu but read without holding it"
}

func (c *counter) doubleLock() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.mu.Lock() // want "c.mu is already held here; locking it again self-deadlocks"
	c.n++
}

func (c *counter) leakOnFallthrough(cond bool) {
	c.mu.Lock() // want "c.mu is locked but not released on every path"
	if cond {
		c.mu.Unlock()
		return
	}
	c.n++
}

func (c *counter) branchesGood(cond bool) {
	c.mu.Lock()
	if cond {
		c.n++
	} else {
		c.n--
	}
	c.mu.Unlock()
}

func (c *counter) closureInheritsGood() {
	c.mu.Lock()
	defer c.mu.Unlock()
	bump := func() { c.n++ }
	bump()
}

type gauge struct {
	rw   sync.RWMutex
	vals map[string]int // guarded by rw
}

func (g *gauge) readGood(k string) int {
	g.rw.RLock()
	defer g.rw.RUnlock()
	return g.vals[k]
}

func (g *gauge) badWriteUnderRLock(k string) {
	g.rw.RLock()
	defer g.rw.RUnlock()
	g.vals[k] = 1 // want "field vals is guarded by g.rw but written under RLock"
}

func (g *gauge) writeGood(k string, v int) {
	g.rw.Lock()
	defer g.rw.Unlock()
	g.vals[k] = v
}

// resetLocked clears the map. Caller must hold g.rw.
func (g *gauge) resetLocked() {
	g.vals = map[string]int{}
}
