// Package spanfix exercises the spanbalance analyzer: every start-kind
// trace.Event emitted in a function must be closed by the matching end
// kind on every path to return, or by a deferred emit.
package spanfix

import (
	"errors"

	"discoverxfd/internal/trace"
)

var errFail = errors.New("spanfix: stage failed")

func deferGood(tr trace.Tracer) {
	if tr != nil {
		trace.Emit(tr, &trace.Event{Kind: trace.KindStageStart})
		defer trace.Emit(tr, &trace.Event{Kind: trace.KindStageEnd})
	}
	work()
}

func deferClosureGood(tr trace.Tracer) {
	trace.Emit(tr, &trace.Event{Kind: trace.KindRunStart})
	defer func() {
		ev := &trace.Event{Kind: trace.KindRunEnd}
		trace.Emit(tr, ev)
	}()
	work()
}

func allPathsGood(tr trace.Tracer, fail bool) error {
	trace.Emit(tr, &trace.Event{Kind: trace.KindRelationStart})
	if fail {
		trace.Emit(tr, &trace.Event{Kind: trace.KindRelationEnd})
		return errFail
	}
	trace.Emit(tr, &trace.Event{Kind: trace.KindRelationEnd})
	return nil
}

func missingOnError(tr trace.Tracer, fail bool) error {
	trace.Emit(tr, &trace.Event{Kind: trace.KindStageStart}) // want "StageStart span opened here can reach return without a KindStageEnd emit"
	if fail {
		return errFail
	}
	trace.Emit(tr, &trace.Event{Kind: trace.KindStageEnd})
	return nil
}

func neverClosed(tr trace.Tracer) {
	trace.Emit(tr, &trace.Event{Kind: trace.KindRelationStart}) // want "RelationStart span opened here can reach return without a KindRelationEnd emit"
	work()
}

// guardedEnds ends the span on both paths, each behind the usual
// `if tr != nil` tracer guard; the CFG collapses those guards so the
// pairing is still visible.
func guardedEnds(tr trace.Tracer, fail bool) error {
	if tr != nil {
		trace.Emit(tr, &trace.Event{Kind: trace.KindRelationStart})
	}
	if fail {
		if tr != nil {
			trace.Emit(tr, &trace.Event{Kind: trace.KindRelationEnd})
		}
		return errFail
	}
	if tr != nil {
		trace.Emit(tr, &trace.Event{Kind: trace.KindRelationEnd})
	}
	return nil
}

// requestMiddleware mirrors the server's instrumentation middleware:
// the request span opens before the handler and closes unconditionally
// after it, so the pairing holds on the straight-line path.
func requestMiddleware(tr trace.Tracer, handler func()) {
	trace.Emit(tr, &trace.Event{Kind: trace.KindRequestStart})
	handler()
	trace.Emit(tr, &trace.Event{Kind: trace.KindRequestEnd})
}

// requestEarlyShed forgets to close the request span on the shed path.
func requestEarlyShed(tr trace.Tracer, shed bool) {
	trace.Emit(tr, &trace.Event{Kind: trace.KindRequestStart}) // want "RequestStart span opened here can reach return without a KindRequestEnd emit"
	if shed {
		return
	}
	work()
	trace.Emit(tr, &trace.Event{Kind: trace.KindRequestEnd})
}

// panicExit never returns normally, so the open span is not a leak.
func panicExit(tr trace.Tracer) {
	trace.Emit(tr, &trace.Event{Kind: trace.KindStageStart})
	panic("spanfix: unreachable stage")
}

func work() {}
