// Package leakfix exercises the govleak analyzer: channels and
// trace.Feeds that stay local to a function must be closed on every
// path; values handed to an owner are exempt.
package leakfix

import "discoverxfd/internal/trace"

type registry struct {
	feed *trace.Feed
	sink chan int
}

func leakChan(n int) int {
	ch := make(chan int, n) // want "channel ch stays local but is not closed on every path"
	total := 0
	for v := range ch {
		total += v
	}
	return total
}

func conditionalCloseBad(cond bool) {
	ch := make(chan int) // want "channel ch stays local but is not closed on every path"
	if cond {
		close(ch)
	}
}

func deferCloseGood() int {
	ch := make(chan int, 1)
	defer close(ch)
	ch <- 1
	return <-ch
}

func escapesBySendGood(sink chan chan int) {
	ch := make(chan int)
	sink <- ch
}

func allPathsCloseGood(cond bool) {
	ch := make(chan int)
	if cond {
		close(ch)
		return
	}
	close(ch)
}

func escapesByReturnGood() chan int {
	ch := make(chan int, 4)
	return ch
}

func escapesByFieldGood(r *registry) {
	ch := make(chan int)
	r.sink = ch
}

func escapesByArgGood() {
	ch := make(chan int)
	consume(ch)
}

func feedLeak() {
	f := trace.NewFeed(8) // want "trace.Feed f stays local but is not closed on every path"
	f.Emit(&trace.Event{Kind: "probe"})
}

func feedAllPathsGood(cond bool) {
	f := trace.NewFeed(8)
	if cond {
		f.Close()
		return
	}
	f.Emit(&trace.Event{Kind: "probe"})
	f.Close()
}

func feedStoredGood(r *registry) {
	f := trace.NewFeed(8)
	r.feed = f
}

func consume(ch chan int) { close(ch) }
