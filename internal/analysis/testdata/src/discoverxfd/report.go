// Package xfd's report.go and json.go are output renderers: detorder
// is in scope here by filename even though the package is not under
// internal/core or internal/bench.
package xfd

import "fmt"

func renderCounts(m map[string]int) {
	for k, v := range m { // want "map iteration on an output path"
		fmt.Println(k, v)
	}
}
