// Package ctxfix exercises the ctxplumb analyzer: fresh root
// contexts are only allowed in the ...Context compatibility-shim
// shape, and declared ctx parameters must actually be plumbed down.
package ctxfix

import "context"

// Discover is the sanctioned shim shape: no ctx parameter, and the
// fresh root goes straight into the ...Context sibling.
func Discover() error {
	return DiscoverContext(context.Background())
}

func DiscoverContext(ctx context.Context) error {
	return run(ctx)
}

func run(ctx context.Context) error {
	select {
	case <-ctx.Done():
		return ctx.Err()
	default:
		return nil
	}
}

// detached already receives a ctx; minting a fresh root here severs
// the cancellation chain.
func detached(ctx context.Context) error {
	_ = run(ctx)
	return run(context.Background()) // want "already receives a context"
}

func freshRoot() error {
	return run(context.Background()) // want "outside a ...Context compatibility shim"
}

func todoRoot() error {
	return run(context.TODO()) // want "outside a ...Context compatibility shim"
}

func dropped(ctx context.Context) int { // want "context parameter ctx is never used"
	return 1
}

func blank(_ context.Context) int { // want "context parameter dropped"
	return 2
}

// empty bodies (stubs satisfying an interface) are exempt.
func stub(ctx context.Context) {}

var handler = func(ctx context.Context) int { // want "context parameter ctx is never used"
	return 3
}

func suppressed() error {
	//lint:ctxplumb fixture models a documented background janitor with its own root
	return run(context.Background())
}

type client struct{}

func (client) RunContext(ctx context.Context) error { return run(ctx) }

// method-call shims count too: the callee name still ends in Context.
func methodShim(c client) error {
	return c.RunContext(context.Background())
}

// function literals are held to the same rules as declarations.
var litDetached = func(ctx context.Context) error {
	_ = run(ctx)
	return run(context.Background()) // want "already receives a context"
}

var litShim = func() error {
	return DiscoverContext(context.Background())
}

// Background on a non-context type is not a root context.
type fakeCtx struct{}

func (fakeCtx) Background() int { return 0 }

func notContext(f fakeCtx) int {
	return f.Background()
}

// Engine models the reusable engine API: methods take ctx first, so a
// context-less wrapper handing Background straight to one is the
// sanctioned shim shape even though the method name has no Context
// suffix.
type Engine struct{}

func NewEngine() *Engine { return &Engine{} }

func (e *Engine) Discover(ctx context.Context) error { return run(ctx) }

func engineShim() error {
	return NewEngine().Discover(context.Background())
}

var litEngineShim = func(e *Engine) error {
	return e.Discover(context.Background())
}

// A function that already receives a ctx must pass it to the engine,
// not detach.
func engineDetached(ctx context.Context, e *Engine) error {
	_ = run(ctx)
	return e.Discover(context.Background()) // want "already receives a context"
}

// Engine-method leniency keys on the receiver type name: a method on
// any other type is not a shim.
type worker struct{}

func (worker) Discover(ctx context.Context) error { return run(ctx) }

func notEngineShim(w worker) error {
	return w.Discover(context.Background()) // want "outside a ...Context compatibility shim"
}
