// Package mismatch exists only for the harness's own negative test:
// it contains a violation with no want comment, so running it through
// the harness must produce an unexpected-finding error.
package mismatch

func spawn() {
	go spawn()
}
