// Package errfix exercises the errwrap analyzer: module sentinels from
// other packages must be matched with errors.Is (wrapping breaks ==),
// and fmt.Errorf must wrap error operands with %w, not flatten them
// with %v or %s.
package errfix

import (
	"errors"
	"fmt"
	"io"

	"discoverxfd/internal/relation"
)

// ErrLocal is this package's own sentinel; comparing it directly is
// the package's own business.
var ErrLocal = errors.New("errfix: local")

func classify(err error) int {
	if err == relation.ErrEmptyTree { // want "sentinel relation.ErrEmptyTree compared with =="
		return 2
	}
	if errors.Is(err, relation.ErrBuilderFinished) {
		return 3
	}
	return 1
}

func notEqualBad(err error) bool {
	return err != relation.ErrEmptyTree // want "sentinel relation.ErrEmptyTree compared with !="
}

func localCompareGood(err error) bool {
	return err == ErrLocal
}

func stdlibCompareGood(err error) bool {
	return err == io.EOF
}

func flattenBadV(err error) error {
	return fmt.Errorf("load failed: %v", err) // want "error err formatted with %v"
}

func flattenBadS(err error) error {
	return fmt.Errorf("stage %d: %s", 4, err) // want "error err formatted with %s"
}

func wrapGood(err error) error {
	return fmt.Errorf("load failed: %w", err)
}

func nonErrorOperandsGood(n int) error {
	return fmt.Errorf("bad count: %d rows (%s)", n, "detail")
}
