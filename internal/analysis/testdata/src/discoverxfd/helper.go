package xfd

// helper.go is outside detorder's scope (not report.go/json.go and
// not an internal/core or internal/bench package): map iteration on a
// non-output path is left alone.
func pickAny(m map[string]int) (string, int) {
	for k, v := range m {
		return k, v
	}
	return "", 0
}
