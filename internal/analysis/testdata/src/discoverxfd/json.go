package xfd

func jsonKeys(m map[string]int) []string {
	var keys []string
	for k := range m { // want "map iteration on an output path"
		keys = append(keys, k)
	}
	return keys
}
