// Package httpfix exercises ctxplumb's HTTP-handler rule: a function
// that receives an *http.Request already holds the client's context
// (r.Context()), so minting a fresh root inside one detaches the work
// from the client exactly like ignoring a ctx parameter would.
package httpfix

import (
	"context"
	"net/http"
)

func run(ctx context.Context) error {
	select {
	case <-ctx.Done():
		return ctx.Err()
	default:
		return nil
	}
}

// plumbed is the sanctioned handler shape: the request's context flows
// down, so a client disconnect cancels the work.
func plumbed(w http.ResponseWriter, r *http.Request) {
	_ = run(r.Context())
}

// detachedHandler mints a fresh root despite holding a request.
func detachedHandler(w http.ResponseWriter, r *http.Request) {
	_ = run(context.Background()) // want "receives an \*http\.Request"
}

// Handler literals are held to the same rule.
var litHandler = http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
	_ = run(context.TODO()) // want "receives an \*http\.Request"
})

// A function with both a ctx and a request gets the ctx message: the
// explicit parameter is the more direct fix.
func bothParams(ctx context.Context, r *http.Request) {
	_ = run(ctx)
	_ = run(context.Background()) // want "already receives a context"
}

// The request rule fires even when the fresh root is handed straight
// to a ...Context callee — inside a handler that is never a shim.
func shimShapedHandler(w http.ResponseWriter, r *http.Request) {
	_ = runContext(context.Background()) // want "receives an \*http\.Request"
}

func runContext(ctx context.Context) error { return run(ctx) }

// A documented exception is suppressible as usual.
func auditHandler(w http.ResponseWriter, r *http.Request) {
	//lint:ctxplumb fixture models an audit write that must outlive the request
	_ = run(context.Background())
}

// The rule keys on the type's package, not its name: a local Request
// carries no context, so this is the ordinary library-code diagnostic.
type Request struct{}

func localRequest(r *Request) error {
	return run(context.Background()) // want "outside a ...Context compatibility shim"
}
