// Package govfix exercises the govdiscipline analyzer: bare go
// statements and raw sync.WaitGroup fan-out are flagged; the
// suppression directive works only with a written reason.
package govfix

import "sync"

func spawn() {
	go work() // want "bare go statement"
}

func fanout() {
	var wg sync.WaitGroup // want "sync.WaitGroup declared outside the governor's workerGroup"
	wg.Add(1)
	go func() { // want "bare go statement"
		defer wg.Done()
		work()
	}()
	wg.Wait()
}

type pool struct {
	wg sync.WaitGroup // want "sync.WaitGroup declared outside the governor's workerGroup"
}

func (p *pool) run() {
	p.wg.Add(1)
	go work() // want "bare go statement"
}

func sanctioned() {
	//lint:governed this fixture models the governor's own spawn point
	go work()
}

func sanctionedInline() {
	go work() //lint:governed trailing-comment form of the same sanctioned spawn
}

func bareDirective() {
	//lint:governed
	go work() // want "requires a written reason"
}

// mutexen and other sync types are fine: only WaitGroup roots a
// fan-out.
func locked() {
	var mu sync.Mutex
	mu.Lock()
	defer mu.Unlock()
	work()
}

func work() {}
