package govfix

// Test files are exempt: tests may spawn raw goroutines and use
// WaitGroups freely.

import "sync"

func testHelper() {
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		work()
	}()
	wg.Wait()
}
