// Package main is exempt from ctxplumb: a binary's entry point owns
// the root context legitimately.
package main

import "context"

func main() {
	ctx := context.Background()
	_ = ctx
}
