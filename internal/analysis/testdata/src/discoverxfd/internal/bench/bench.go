// Package bench exercises the detorder heuristics on an output-path
// package (import path suffix internal/bench).
package bench

import (
	"fmt"
	"slices"
)

// emit leaks map order straight into output.
func emit(m map[string]int) {
	for k, v := range m { // want "map iteration on an output path"
		fmt.Println(k, v)
	}
}

// tally is commutative: integer accumulation only.
func tally(m map[string]int) (int, int) {
	total, n := 0, 0
	for _, v := range m {
		total += v
		n++
	}
	return total, n
}

// concat is NOT commutative: string += is order-sensitive.
func concat(m map[string]int) string {
	s := ""
	for k := range m { // want "map iteration on an output path"
		s += k
	}
	return s
}

// invert is commutative: map-index assignment with distinct keys.
func invert(m map[string]int) map[int]string {
	out := make(map[int]string)
	for k, v := range m {
		out[v] = k
	}
	return out
}

// prune is commutative: delete and continue under an if.
func prune(m map[string]int) {
	for k, v := range m {
		if v == 0 {
			delete(m, k)
			continue
		}
		m[k] = v - 1
	}
}

// sortedKeys is the collect-then-sort idiom, via slices.Sort.
func sortedKeys(m map[string]int) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	slices.Sort(keys)
	return keys
}

// latch is order-insensitive in fact but not provably so to the
// analyzer: the suppression carries the argument.
func latch(m map[string]int) bool {
	found := false
	//lint:detorder latching a constant boolean is order-insensitive
	for _, v := range m {
		if v < 0 {
			found = true
		}
	}
	return found
}

// bareLatch shows a suppression without a reason failing to suppress.
func bareLatch(m map[string]int) bool {
	found := false
	//lint:detorder
	for _, v := range m { // want "requires a written reason"
		if v < 0 {
			found = true
		}
	}
	return found
}

// branchy is commutative on both if/else arms, nested blocks
// included.
func branchy(m map[string]int) (int, int) {
	pos, neg := 0, 0
	for _, v := range m {
		if v >= 0 {
			pos += v
		} else {
			{
				neg -= v
			}
		}
	}
	return pos, neg
}

// a slices call that isn't Sort* does not launder the order.
func nonSortAfter(m map[string]int) []string {
	var keys []string
	for k := range m { // want "map iteration on an output path"
		keys = append(keys, k)
	}
	_ = slices.Index(keys, "x")
	return keys
}

type sorter struct{}

func (sorter) Sort() {}

// nor does a method that merely happens to be named Sort.
func methodSortAfter(m map[string]int) []string {
	var s sorter
	var keys []string
	for k := range m { // want "map iteration on an output path"
		keys = append(keys, k)
	}
	s.Sort()
	return keys
}

// slices are ordered; ranging over them is always fine.
func emitSlice(ks []string) {
	for _, k := range ks {
		fmt.Println(k)
	}
}
