// Package trace exercises the suite on a trace-backend shape (import
// path suffix internal/trace): detorder must keep emit paths free of
// map-ordered output, and govdiscipline must keep backends
// goroutine-free — a backend that spawns its own writer escapes the
// governor's join/panic discipline and outlives the run it observes.
package trace

import (
	"fmt"
	"sort"
	"sync"
)

// Event is a cut-down trace event with free-form attributes.
type Event struct {
	Kind  string
	Attrs map[string]string
}

// emitUnsorted leaks map order into the serialized event stream.
func emitUnsorted(ev *Event) {
	for k, v := range ev.Attrs { // want "map iteration on an output path"
		fmt.Println(k, v)
	}
}

// emitSorted is the canonical collect-then-sort emit path.
func emitSorted(ev *Event) {
	keys := make([]string, 0, len(ev.Attrs))
	for k := range ev.Attrs {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		fmt.Println(k, ev.Attrs[k])
	}
}

// asyncBackend buffers events and flushes them from its own
// goroutine — the shape the tracing backends must never take.
type asyncBackend struct {
	ch chan *Event
	wg sync.WaitGroup // want "sync.WaitGroup declared outside the governor"
}

func (b *asyncBackend) Start() {
	go func() { // want "bare go statement"
		for ev := range b.ch {
			emitSorted(ev)
		}
	}()
}

// syncBackend emits inline on the caller's goroutine, like the real
// JSONL and progress backends.
type syncBackend struct{}

func (syncBackend) Emit(ev *Event) { emitSorted(ev) }

var _ = emitUnsorted
var _ = (&asyncBackend{}).Start
var _ = syncBackend{}.Emit
