package trace

// span.go extends the fixture trace package with the span vocabulary
// the flow-aware analyzers key on: the Kind constants, the Tracer
// interface and Emit helper (spanbalance), and a Feed with a Close
// lifecycle (govleak). Shapes mirror the real internal/trace package.

const (
	KindRunStart      = "run_start"
	KindRunEnd        = "run_end"
	KindStageStart    = "stage_start"
	KindStageEnd      = "stage_end"
	KindRelationStart = "relation_start"
	KindRelationEnd   = "relation_end"
	KindRequestStart  = "request_start"
	KindRequestEnd    = "request_end"
)

// Tracer mirrors the real event sink interface.
type Tracer interface {
	Emit(ev *Event)
}

// Emit forwards ev to t, tolerating a nil tracer.
func Emit(t Tracer, ev *Event) {
	if t != nil {
		t.Emit(ev)
	}
}

// Feed is a cut-down mirror of the real SSE ring feed: created by
// NewFeed, released by Close.
type Feed struct {
	events []*Event
	done   bool
}

// NewFeed returns a feed with the given ring capacity.
func NewFeed(n int) *Feed {
	return &Feed{events: make([]*Event, 0, n)}
}

// Emit appends to the ring.
func (f *Feed) Emit(ev *Event) {
	if !f.done {
		f.events = append(f.events, ev)
	}
}

// Close marks the feed finished.
func (f *Feed) Close() {
	f.done = true
}
