// Package relation is a cut-down fixture mirror of the real
// internal/relation: it only declares the sentinel errors, so the
// errfix fixture can exercise errwrap's cross-package comparison
// rule.
package relation

import "errors"

// ErrEmptyTree mirrors the real sentinel of the same name.
var ErrEmptyTree = errors.New("relation: document has no tuples")

// ErrBuilderFinished mirrors the real sentinel of the same name.
var ErrBuilderFinished = errors.New("relation: builder already finished")
