package core

import (
	"sort"

	"discoverxfd/internal/partition"
)

// record writes cache state outside pcache.go.
func record(c *partitionCache) {
	c.hits++ // want "write to partitionCache.hits outside its declaring file"
}

func stash(rp *relPartitions, a string, p *partition.Partition) {
	rp.parts[a] = p // want "write to relPartitions.parts outside its declaring file"
}

// mutate writes a Partition field outside the partition package — no
// constructor shape can excuse it here.
func mutate(p *partition.Partition) {
	p.NRows = 1 // want "write to Partition.NRows"
}

func suppressedStash(rp *relPartitions, a string, p *partition.Partition) {
	//lint:partimmut fixture models a migration shim documented in pcache.go
	rp.parts[a] = p
}

// reads of cache state are fine anywhere.
func hitRate(c *partitionCache) int {
	return c.hits
}

// emitSorted is the canonical collect-then-sort shape detorder
// accepts inside internal/core.
func emitSorted(m map[string]int) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// emitUnsorted leaks map order into its result.
func emitUnsorted(m map[string]int) []string {
	var keys []string
	for k := range m { // want "map iteration on an output path"
		keys = append(keys, k)
	}
	return keys
}
