// Package core exercises the partimmut cache-locality rule (cache
// state may only be written in its declaring file) and, because its
// import path ends in internal/core, the detorder output-path rule.
package core

import "discoverxfd/internal/partition"

// partitionCache mirrors the real run-wide cache accounting.
type partitionCache struct {
	hits  int
	bytes int64
}

// relPartitions mirrors the per-relation cached-partition table.
type relPartitions struct {
	parts map[string]*partition.Partition
	cache *partitionCache
}

// add is sanctioned: it writes cache state in the declaring file.
func (c *partitionCache) add(n int64) {
	c.hits++
	c.bytes += n
}

// install is the sanctioned publication point for a partition.
func (rp *relPartitions) install(a string, p *partition.Partition) {
	rp.parts[a] = p
	rp.cache.add(1)
}
