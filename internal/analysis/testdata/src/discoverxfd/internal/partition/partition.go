// Package partition exercises the partimmut analyzer inside the
// partition package itself: constructors (functions whose results
// include a Partition) may write fields freely; anything else is a
// post-publication mutation of a shared, cached value.
package partition

// Partition mirrors the real stripped-partition representation.
type Partition struct {
	Groups [][]int32
	NRows  int
}

// FromGroups is a sanctioned constructor: it returns the Partition it
// builds, so its field writes happen before publication.
func FromGroups(groups [][]int32, n int) *Partition {
	p := &Partition{}
	p.Groups = groups
	p.NRows = n
	return p
}

// shrink also has constructor shape (a Partition in its results).
func (p *Partition) shrink() *Partition {
	p.Groups = p.Groups[:1]
	return p
}

// reset mutates after construction: no Partition in the results.
func (p *Partition) reset() {
	p.NRows = 0 // want "write to Partition.NRows"
}

func poke(p *Partition) {
	p.Groups[0][0] = 7 // want "write to Partition.Groups"
	p.NRows++          // want "write to Partition.NRows"
}

func clobber(dst *Partition, src Partition) {
	*dst = src // want "whole-struct overwrite of a shared Partition"
}

func scrub(p *Partition) {
	//lint:partimmut fixture models a documented pre-publication fixup on an unshared copy
	p.NRows = 0
}

// spliceFrom and mergeRebuilt are the allowlisted in-place patch
// constructors: they build the unpublished partition Patch returns,
// so their field writes are pre-publication despite the constructor
// shape (no Partition in the results).
func (p *Partition) spliceFrom(prev *Partition, affected []bool, n int) {
	p.Groups = append(p.Groups, prev.Groups...)
}

func (p *Partition) mergeRebuilt(rebuilt [][]int32) {
	p.Groups = append(p.Groups, rebuilt...)
}

// a same-shaped helper that is not on the allowlist is still flagged.
func (p *Partition) spliceOther(prev *Partition) {
	p.Groups = prev.Groups // want "write to Partition.Groups"
}

// the allowlist covers methods only; a plain function with the name
// does not get a pass.
func mergeRebuilt(p *Partition) {
	p.NRows = 0 // want "write to Partition.NRows"
}

// function literals follow the same constructor rule.
var fill = func(p *Partition) {
	p.NRows = 3 // want "write to Partition.NRows"
}

var build = func(groups [][]int32) *Partition {
	p := &Partition{}
	p.Groups = groups
	return p
}

// reads are always fine.
func size(p *Partition) int {
	return p.NRows + len(p.Groups)
}
