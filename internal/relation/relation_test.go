package relation

import (
	"testing"

	"discoverxfd/internal/datatree"
	"discoverxfd/internal/schema"
)

const warehouseXML = `
<warehouse>
  <state>
    <name>WA</name>
    <store>
      <contact><name>Borders</name><address>Seattle</address></contact>
      <book><ISBN>1</ISBN><author>Post</author><title>F</title><price>30</price></book>
      <book><ISBN>2</ISBN><author>R</author><author>G</author><title>D</title><price>40</price></book>
    </store>
  </state>
  <state>
    <name>KY</name>
    <store>
      <contact><name>Borders</name><address>Lexington</address></contact>
      <book><ISBN>2</ISBN><author>G</author><author>R</author><title>D</title><price>40</price></book>
    </store>
    <store>
      <contact><name>WHSmith</name><address>Lexington</address></contact>
      <book><ISBN>2</ISBN><author>R</author><author>G</author><title>D</title></book>
    </store>
  </state>
</warehouse>`

var warehouseSchema = schema.MustParse(`
warehouse: Rcd
  state: SetOf Rcd
    name: str
    store: SetOf Rcd
      contact: Rcd
        name: str
        address: str
      book: SetOf Rcd
        ISBN: str
        author: SetOf str
        title: str
        price: str
`)

func buildWH(t *testing.T, opts Options) *Hierarchy {
	t.Helper()
	tr, err := datatree.ParseXMLString(warehouseXML)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	h, err := Build(tr, warehouseSchema, opts)
	if err != nil {
		t.Fatalf("build: %v", err)
	}
	return h
}

// TestHierarchyShape checks the relation tree of the paper's Figure 6:
// essential relations R_state, R_store, R_book, R_author under a
// synthetic root.
func TestHierarchyShape(t *testing.T) {
	h := buildWH(t, Options{})
	if got := len(h.EssentialRelations()); got != 4 {
		t.Fatalf("essential relations = %d, want 4", got)
	}
	if h.Root.Essential || h.Root.NRows() != 1 {
		t.Fatalf("root relation must be non-essential with one tuple")
	}
	rels := map[schema.Path]int{
		"/warehouse/state":                   2,
		"/warehouse/state/store":             3,
		"/warehouse/state/store/book":        4,
		"/warehouse/state/store/book/author": 7,
	}
	for pivot, rows := range rels {
		r := h.ByPivot(pivot)
		if r == nil {
			t.Fatalf("missing relation %s", pivot)
		}
		if r.NRows() != rows {
			t.Errorf("%s: %d rows, want %d", pivot, r.NRows(), rows)
		}
		if !r.Essential {
			t.Errorf("%s must be essential", pivot)
		}
	}
	if h.TotalTuples() != 2+3+4+7 {
		t.Fatalf("TotalTuples = %d", h.TotalTuples())
	}
}

// TestStoreAttributes checks the column layout of R_store against
// Figure 6: contact (complex), contact/name, contact/address, plus
// the ./book set pseudo-attribute.
func TestStoreAttributes(t *testing.T) {
	h := buildWH(t, Options{})
	store := h.ByPivot("/warehouse/state/store")
	want := map[schema.RelPath]AttrKind{
		"./contact":         Complex,
		"./contact/name":    Leaf,
		"./contact/address": Leaf,
		"./book":            SetValue,
	}
	if len(store.Attrs) != len(want) {
		t.Fatalf("R_store attrs: %v", store.Attrs)
	}
	for rel, kind := range want {
		i := store.AttrIndex(rel)
		if i < 0 {
			t.Fatalf("missing attribute %s", rel)
		}
		if store.Attrs[i].Kind != kind {
			t.Errorf("%s kind = %v, want %v", rel, store.Attrs[i].Kind, kind)
		}
	}
}

// TestAuthorSelfValue checks that a simple set element (author:
// SetOf str) yields a relation whose single attribute is its own
// value (the "." path).
func TestAuthorSelfValue(t *testing.T) {
	h := buildWH(t, Options{})
	author := h.ByPivot("/warehouse/state/store/book/author")
	if len(author.Attrs) != 1 || author.Attrs[0].Rel != "." || author.Attrs[0].Kind != Leaf {
		t.Fatalf("R_author attrs: %+v", author.Attrs)
	}
	// Values: Post, R, G, G, R, R, G -> Post once, R x3, G x3... the
	// dictionary encodes equal strings equally.
	p := author.ColumnPartition(0)
	if p.Size() != 2 {
		t.Fatalf("author value partition: %v", p.Groups)
	}
}

// TestParentLinks verifies parent indices compose to the right
// ancestors.
func TestParentLinks(t *testing.T) {
	h := buildWH(t, Options{})
	book := h.ByPivot("/warehouse/state/store/book")
	store := h.ByPivot("/warehouse/state/store")
	state := h.ByPivot("/warehouse/state")
	// Book rows 0,1 under store 0 (WA); row 2 under store 1; row 3
	// under store 2.
	wantStore := []int32{0, 0, 1, 2}
	for i, w := range wantStore {
		if book.ParentIdx[i] != w {
			t.Fatalf("book %d parent = %d, want %d", i, book.ParentIdx[i], w)
		}
	}
	wantState := []int32{0, 1, 1}
	for i, w := range wantState {
		if store.ParentIdx[i] != w {
			t.Fatalf("store %d parent = %d, want %d", i, store.ParentIdx[i], w)
		}
	}
	if state.ParentIdx[0] != 0 || state.ParentIdx[1] != 0 {
		t.Fatalf("states must point at the root tuple")
	}
	if state.Parent != h.Root {
		t.Fatalf("state's parent relation must be the root relation")
	}
}

// TestSetPseudoAttributeSemantics: the ./author column of R_book must
// group books 1 and 2 of ISBN 2 together even though their author
// order differs, and keep the singleton-author book apart.
func TestSetPseudoAttributeSemantics(t *testing.T) {
	h := buildWH(t, Options{})
	book := h.ByPivot("/warehouse/state/store/book")
	ai := book.AttrIndex("./author")
	if ai < 0 {
		t.Fatal("missing ./author set attribute")
	}
	col := book.Cols[ai]
	if col[1] != col[2] || col[1] != col[3] {
		t.Fatalf("books with equal author sets must share a code: %v", col)
	}
	if col[0] == col[1] {
		t.Fatalf("different author sets must differ: %v", col)
	}

	// Ordered mode distinguishes (R,G) from (G,R).
	ho := buildWH(t, Options{OrderedSets: true})
	booko := ho.ByPivot("/warehouse/state/store/book")
	colo := booko.Cols[booko.AttrIndex("./author")]
	if colo[1] == colo[2] {
		t.Fatalf("ordered mode must distinguish reordered author lists: %v", colo)
	}
	if colo[1] != colo[3] {
		t.Fatalf("ordered mode must match same-ordered lists: %v", colo)
	}
}

// TestMissingValuesGetUniqueNulls: the missing price of the last book
// must be a unique negative code.
func TestMissingValuesGetUniqueNulls(t *testing.T) {
	h := buildWH(t, Options{})
	book := h.ByPivot("/warehouse/state/store/book")
	pi := book.AttrIndex("./price")
	col := book.Cols[pi]
	if !IsNull(col[3]) {
		t.Fatalf("missing price should be null: %v", col)
	}
	for i := 0; i < 3; i++ {
		if IsNull(col[i]) {
			t.Fatalf("present price %d encoded as null", i)
		}
	}
	if col[1] != col[2] {
		t.Fatalf("equal prices must share codes: %v", col)
	}
}

// TestComplexAttributeIsSubtreeValue: two contacts with different
// subtrees get different codes; a contact compared against itself via
// value equality would collide only on identical subtrees.
func TestComplexAttributeIsSubtreeValue(t *testing.T) {
	h := buildWH(t, Options{})
	store := h.ByPivot("/warehouse/state/store")
	col := store.Cols[store.AttrIndex("./contact")]
	if col[0] == col[1] || col[1] == col[2] || col[0] == col[2] {
		t.Fatalf("distinct contact subtrees must have distinct codes: %v", col)
	}
}

func TestDisableSetAttrs(t *testing.T) {
	h := buildWH(t, Options{DisableSetAttrs: true})
	book := h.ByPivot("/warehouse/state/store/book")
	if book.AttrIndex("./author") >= 0 {
		t.Fatal("set pseudo-attributes must be absent when disabled")
	}
	store := h.ByPivot("/warehouse/state/store")
	if store.AttrIndex("./book") >= 0 {
		t.Fatal("set pseudo-attributes must be absent when disabled")
	}
}

// TestDeepSetUnderComplex exercises a set element nested below a
// non-set complex element (contact/phone), whose relation must hang
// off R_store with a multi-step descent.
func TestDeepSetUnderComplex(t *testing.T) {
	s := schema.MustParse(`
shop: Rcd
  store: SetOf Rcd
    contact: Rcd
      city: str
      phone: SetOf str
`)
	tr, err := datatree.ParseXMLString(`
<shop>
  <store><contact><city>A</city><phone>1</phone><phone>2</phone></contact></store>
  <store><contact><city>B</city></contact></store>
</shop>`)
	if err != nil {
		t.Fatal(err)
	}
	h, err := Build(tr, s, Options{})
	if err != nil {
		t.Fatal(err)
	}
	phone := h.ByPivot("/shop/store/contact/phone")
	if phone == nil {
		t.Fatal("missing R_phone")
	}
	if phone.NRows() != 2 {
		t.Fatalf("R_phone rows = %d", phone.NRows())
	}
	store := h.ByPivot("/shop/store")
	si := store.AttrIndex("./contact/phone")
	if si < 0 || store.Attrs[si].Kind != SetValue {
		t.Fatalf("missing set pseudo-attribute ./contact/phone: %+v", store.Attrs)
	}
	// Store B has no phones: null code.
	if !IsNull(store.Cols[si][1]) {
		t.Fatalf("empty phone set should be null, got %v", store.Cols[si])
	}
	if phone.Parent != store {
		t.Fatal("R_phone's parent relation must be R_store")
	}
}

func TestBuildErrors(t *testing.T) {
	tr, _ := datatree.ParseXMLString(`<other/>`)
	if _, err := Build(tr, warehouseSchema, Options{}); err == nil {
		t.Fatal("mismatched root must fail")
	}
	if _, err := Build(nil, warehouseSchema, Options{}); err == nil {
		t.Fatal("nil tree must fail")
	}
}

func TestRelationStringSmoke(t *testing.T) {
	h := buildWH(t, Options{})
	s := h.ByPivot("/warehouse/state").String()
	if len(s) == 0 {
		t.Fatal("String() should render something")
	}
}
