package relation

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"discoverxfd/internal/datatree"
	"discoverxfd/internal/partition"
	"discoverxfd/internal/schema"
)

// requireEquivalent asserts that two hierarchies over the same tree
// represent the same data: same relations, same tuple keys, and per
// attribute the same code-equality structure (codes themselves may
// differ — incremental interning assigns them in a different order
// than a cold build — but which rows share a code, and which rows are
// null, must agree). That is exactly the property discovery results
// depend on.
func requireEquivalent(t *testing.T, got, want *Hierarchy) {
	t.Helper()
	if len(got.Relations) != len(want.Relations) {
		t.Fatalf("relation count: got %d, want %d", len(got.Relations), len(want.Relations))
	}
	for _, gr := range got.Relations {
		wr := want.ByPivot(gr.Pivot)
		if wr == nil {
			t.Fatalf("relation %s missing from cold rebuild", gr.Pivot)
		}
		if gr.NRows() != wr.NRows() {
			t.Fatalf("%s: got %d rows, want %d", gr.Pivot, gr.NRows(), wr.NRows())
		}
		// Align rows by pivot key.
		wRow := make(map[int]int, wr.NRows())
		for ti, k := range wr.Keys {
			wRow[k] = ti
		}
		align := make([]int, gr.NRows())
		for ti, k := range gr.Keys {
			wi, ok := wRow[k]
			if !ok {
				t.Fatalf("%s: key %d not in cold rebuild", gr.Pivot, k)
			}
			align[ti] = wi
		}
		if gr.NAttrs() != wr.NAttrs() {
			t.Fatalf("%s: got %d attrs, want %d", gr.Pivot, gr.NAttrs(), wr.NAttrs())
		}
		for ai := range gr.Attrs {
			fwd := make(map[int64]int64) // got code -> want code
			rev := make(map[int64]int64)
			for ti := range gr.Keys {
				g, w := gr.Cols[ai][ti], wr.Cols[ai][align[ti]]
				if IsNull(g) != IsNull(w) {
					t.Fatalf("%s.%s key %d: nullity mismatch (got %d, want %d)",
						gr.Pivot, gr.Attrs[ai].Name(), gr.Keys[ti], g, w)
				}
				if IsNull(g) {
					continue
				}
				if prev, ok := fwd[g]; ok && prev != w {
					t.Fatalf("%s.%s: got code %d maps to both want %d and %d",
						gr.Pivot, gr.Attrs[ai].Name(), g, prev, w)
				}
				if prev, ok := rev[w]; ok && prev != g {
					t.Fatalf("%s.%s: want code %d maps to both got %d and %d",
						gr.Pivot, gr.Attrs[ai].Name(), w, prev, g)
				}
				fwd[g], rev[w] = w, g
			}
		}
	}
}

// snapshotCols deep-copies every relation's columns, for checking the
// partition-patch contract against the pre-update state.
func snapshotCols(h *Hierarchy) [][][]int64 {
	out := make([][][]int64, len(h.Relations))
	for i, r := range h.Relations {
		cols := make([][]int64, len(r.Cols))
		for ai, c := range r.Cols {
			cols[ai] = append([]int64(nil), c...)
		}
		out[i] = cols
	}
	return out
}

// requirePatchContract asserts the warm-layer contract of a
// Changeset: for every relation, patching the pre-update single-column
// partitions with the new codes and the change's touched rows yields
// exactly the partition of the new codes — i.e. RelChange.Rows is a
// correct touched superset, and untouched relations truly did not
// change.
func requirePatchContract(t *testing.T, h *Hierarchy, before [][][]int64, cs *Changeset) {
	t.Helper()
	for i, r := range h.Relations {
		rc := cs.Rels[i]
		for ai := range r.Cols {
			old := partition.FromCodes(before[i][ai])
			var rows []int32
			if rc != nil {
				if !rc.DirtyAttr(ai) && !rc.Resized {
					// Clean column of a touched, unresized relation:
					// codes must be bit-identical.
					for ti, c := range r.Cols[ai] {
						if before[i][ai][ti] != c {
							t.Fatalf("%s.%s: clean column changed at row %d", r.Pivot, r.Attrs[ai].Name(), ti)
						}
					}
					continue
				}
				rows = rc.Rows
			} else if len(before[i][ai]) != len(r.Cols[ai]) {
				t.Fatalf("%s: resized without a RelChange", r.Pivot)
			}
			got := old.Patch(r.Cols[ai], rows)
			want := partition.FromCodes(r.Cols[ai])
			if !got.Equal(want) {
				t.Fatalf("%s.%s: patched partition != cold partition\npatched: %v\ncold: %v\nrows: %v",
					r.Pivot, r.Attrs[ai].Name(), got.Groups, want.Groups, rows)
			}
		}
	}
}

// applyAndCheck applies the batch, then verifies the patch contract
// and equivalence with a cold rebuild of the mutated tree.
func applyAndCheck(t *testing.T, h *Hierarchy, tr *datatree.Tree, opts Options, ops []Update) *Changeset {
	t.Helper()
	before := snapshotCols(h)
	cs, err := h.Apply(ops)
	if err != nil {
		t.Fatalf("apply: %v", err)
	}
	requirePatchContract(t, h, before, cs)
	cold, err := Build(tr, h.Schema, opts)
	if err != nil {
		t.Fatalf("cold rebuild: %v", err)
	}
	requireEquivalent(t, h, cold)
	return cs
}

func buildWHTree(t *testing.T, opts Options) (*Hierarchy, *datatree.Tree) {
	t.Helper()
	tr, err := datatree.ParseXMLString(warehouseXML)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	h, err := Build(tr, warehouseSchema, opts)
	if err != nil {
		t.Fatalf("build: %v", err)
	}
	return h, tr
}

const (
	bookClass  = schema.Path("/warehouse/state/store/book")
	storeClass = schema.Path("/warehouse/state/store")
	stateClass = schema.Path("/warehouse/state")
)

func TestApplySet(t *testing.T) {
	h, tr := buildWHTree(t, Options{})
	books := h.ByPivot(bookClass)

	t.Run("value change", func(t *testing.T) {
		cs := applyAndCheck(t, h, tr, Options{}, []Update{
			{Op: OpSet, Class: bookClass, Key: books.Keys[0], Attr: "./price", Value: "35"},
		})
		rc := cs.Rels[books.Index]
		if rc == nil || !rc.DirtyAttr(books.AttrIndex("./price")) {
			t.Fatalf("price column not marked dirty: %+v", rc)
		}
		if rc.DirtyAttr(books.AttrIndex("./title")) {
			t.Fatalf("title column spuriously dirty")
		}
	})
	t.Run("no-op change is clean", func(t *testing.T) {
		cs, err := h.Apply([]Update{
			{Op: OpSet, Class: bookClass, Key: books.Keys[0], Attr: "./price", Value: "35"},
		})
		if err != nil {
			t.Fatalf("apply: %v", err)
		}
		if rc := cs.Rels[books.Index]; rc != nil && len(rc.Rows) != 0 {
			t.Fatalf("no-op set dirtied rows %v", rc.Rows)
		}
	})
	t.Run("fill a missing value", func(t *testing.T) {
		// The last WHSmith book has no price; setting it grafts the
		// leaf and turns a null into a real code.
		last := books.Keys[books.NRows()-1]
		applyAndCheck(t, h, tr, Options{}, []Update{
			{Op: OpSet, Class: bookClass, Key: last, Attr: "./price", Value: "40"},
		})
	})
	t.Run("nested leaf dirties enclosing complex column", func(t *testing.T) {
		stores := h.ByPivot(storeClass)
		cs := applyAndCheck(t, h, tr, Options{}, []Update{
			{Op: OpSet, Class: storeClass, Key: stores.Keys[0], Attr: "./contact/address", Value: "Tacoma"},
		})
		rc := cs.Rels[stores.Index]
		if rc == nil || !rc.DirtyAttr(stores.AttrIndex("./contact")) {
			t.Fatalf("contact subtree column not marked dirty")
		}
	})
}

func TestApplyInsert(t *testing.T) {
	h, tr := buildWHTree(t, Options{})
	stores := h.ByPivot(storeClass)

	cs := applyAndCheck(t, h, tr, Options{}, []Update{
		{Op: OpInsert, Class: bookClass, Parent: stores.Keys[0], Values: map[schema.RelPath]string{
			"./ISBN": "3", "./title": "New", "./price": "10",
		}},
	})
	key := cs.Keys[0]
	if key <= 0 {
		t.Fatalf("insert returned key %d", key)
	}
	books := h.ByPivot(bookClass)
	rc := cs.Rels[books.Index]
	if rc == nil || !rc.Resized {
		t.Fatalf("book relation not marked resized")
	}
	// The parent store's book set-value column must be dirty.
	if src := cs.Rels[stores.Index]; src == nil || !src.DirtyAttr(stores.AttrIndex("./book")) {
		t.Fatalf("store book set column not marked dirty")
	}

	// The new key addresses the tuple in later batches.
	applyAndCheck(t, h, tr, Options{}, []Update{
		{Op: OpSet, Class: bookClass, Key: key, Attr: "./price", Value: "12"},
	})

	// Insert a simple set member (author: SetOf str) whose value is
	// the tuple's own ".".
	authorClass := schema.Path("/warehouse/state/store/book/author")
	applyAndCheck(t, h, tr, Options{}, []Update{
		{Op: OpInsert, Class: authorClass, Parent: key, Values: map[schema.RelPath]string{".": "Z"}},
	})

	// A top-level insert can omit Parent (the root has one tuple).
	applyAndCheck(t, h, tr, Options{}, []Update{
		{Op: OpInsert, Class: stateClass, Values: map[schema.RelPath]string{"./name": "OR"}},
	})
}

func TestApplyDelete(t *testing.T) {
	h, tr := buildWHTree(t, Options{})
	stores := h.ByPivot(storeClass)
	books := h.ByPivot(bookClass)
	nBooks := books.NRows()

	// Deleting a store cascades to its books and authors.
	target := stores.Keys[0]
	cs := applyAndCheck(t, h, tr, Options{}, []Update{
		{Op: OpDelete, Class: storeClass, Key: target},
	})
	if books.NRows() >= nBooks {
		t.Fatalf("cascade did not delete books: %d -> %d", nBooks, books.NRows())
	}
	if rc := cs.Rels[books.Index]; rc == nil || !rc.Resized {
		t.Fatalf("cascaded book relation not marked resized")
	}
	if _, err := h.Apply([]Update{{Op: OpDelete, Class: storeClass, Key: target}}); err == nil {
		t.Fatalf("double delete succeeded")
	}

	// Delete the remaining tuples one by one down to empty classes.
	for stores.NRows() > 0 {
		applyAndCheck(t, h, tr, Options{}, []Update{
			{Op: OpDelete, Class: storeClass, Key: stores.Keys[0]},
		})
	}
	if books.NRows() != 0 {
		t.Fatalf("books remain after all stores deleted: %d", books.NRows())
	}
}

func TestApplyErrors(t *testing.T) {
	h, tr := buildWHTree(t, Options{})
	books := h.ByPivot(bookClass)
	cases := []struct {
		name string
		op   Update
	}{
		{"unknown class", Update{Op: OpSet, Class: "/warehouse/nope", Key: 1, Attr: "./x", Value: "v"}},
		{"unknown key", Update{Op: OpSet, Class: bookClass, Key: 99999, Attr: "./price", Value: "1"}},
		{"unknown attr", Update{Op: OpSet, Class: bookClass, Key: books.Keys[0], Attr: "./nope", Value: "1"}},
		{"set non-leaf", Update{Op: OpSet, Class: storeClass, Key: h.ByPivot(storeClass).Keys[0], Attr: "./contact", Value: "1"}},
		{"insert into root", Update{Op: OpInsert, Class: "/warehouse"}},
		{"insert unknown parent", Update{Op: OpInsert, Class: bookClass, Parent: 99999}},
		{"insert ambiguous parent", Update{Op: OpInsert, Class: bookClass}},
		{"insert bad attr", Update{Op: OpInsert, Class: stateClass, Values: map[schema.RelPath]string{"./nope": "v"}}},
		{"delete root", Update{Op: OpDelete, Class: "/warehouse", Key: 1}},
		{"delete unknown key", Update{Op: OpDelete, Class: bookClass, Key: 99999}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := h.Apply([]Update{tc.op}); err == nil {
				t.Fatalf("no error for %+v", tc.op)
			}
		})
	}
	// Failed batches must not have corrupted the hierarchy.
	cold, err := Build(tr, warehouseSchema, Options{})
	if err != nil {
		t.Fatalf("cold rebuild: %v", err)
	}
	requireEquivalent(t, h, cold)
}

// TestApplySchemaValidation pins the conformance checks the update
// path shares with cold builds (datatree.Conform): typed leaves
// reject unparsable values, and grafts may not put a second
// alternative under a Choice element. Rejected batches must leave the
// hierarchy equivalent to a cold rebuild of the (partially) mutated
// tree.
func TestApplySchemaValidation(t *testing.T) {
	typedSchema := schema.MustParse(`
lib: Rcd
  item: SetOf Rcd
    id: int
    weight: float
    title: str
    kind: Choice
      paper: Rcd
        pages: int
      disc: Rcd
        tracks: int
`)
	const typedXML = `<lib>
  <item><id>1</id><weight>2.5</weight><title>a</title><kind><paper><pages>10</pages></paper></kind></item>
  <item><id>2</id><weight>1.5</weight><title>b</title><kind><disc><tracks>9</tracks></disc></kind></item>
</lib>`
	build := func(t *testing.T) (*Hierarchy, *datatree.Tree) {
		t.Helper()
		tr, err := datatree.ParseXMLString(typedXML)
		if err != nil {
			t.Fatalf("parse: %v", err)
		}
		if err := datatree.Conform(tr, typedSchema); err != nil {
			t.Fatalf("fixture does not conform: %v", err)
		}
		h, err := Build(tr, typedSchema, Options{})
		if err != nil {
			t.Fatalf("build: %v", err)
		}
		return h, tr
	}
	const itemClass = schema.Path("/lib/item")

	h, tr := build(t)
	items := h.ByPivot(itemClass)
	bad := []struct {
		name string
		op   Update
	}{
		{"set string into int", Update{Op: OpSet, Class: itemClass, Key: items.Keys[0], Attr: "./id", Value: "upd-2"}},
		{"set string into float", Update{Op: OpSet, Class: itemClass, Key: items.Keys[0], Attr: "./weight", Value: "heavy"}},
		{"set second choice alternative", Update{Op: OpSet, Class: itemClass, Key: items.Keys[0], Attr: "./kind/disc/tracks", Value: "4"}},
		{"insert bad typed value", Update{Op: OpInsert, Class: itemClass, Values: map[schema.RelPath]string{"./id": "x"}}},
		{"insert two choice alternatives", Update{Op: OpInsert, Class: itemClass, Values: map[schema.RelPath]string{
			"./kind/paper/pages": "3", "./kind/disc/tracks": "4"}}},
	}
	for _, tc := range bad {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := h.Apply([]Update{tc.op}); err == nil {
				t.Fatalf("no error for %+v", tc.op)
			}
			// Whatever the rejected update grafted on its way to the
			// rejection, the document must still conform and the
			// hierarchy must match a cold rebuild of it.
			if err := datatree.Conform(tr, typedSchema); err != nil {
				t.Fatalf("rejected update left a non-conforming document: %v", err)
			}
			cold, err := Build(tr, typedSchema, Options{})
			if err != nil {
				t.Fatalf("cold rebuild after rejection: %v", err)
			}
			requireEquivalent(t, h, cold)
		})
	}

	// Conforming updates across the same elements still go through:
	// typed values that parse, and a Choice flip via delete-free set on
	// the present alternative.
	good := []Update{
		{Op: OpSet, Class: itemClass, Key: items.Keys[0], Attr: "./id", Value: " 42 "},
		{Op: OpSet, Class: itemClass, Key: items.Keys[0], Attr: "./weight", Value: "3.75"},
		{Op: OpSet, Class: itemClass, Key: items.Keys[0], Attr: "./kind/paper/pages", Value: "11"},
		{Op: OpInsert, Class: itemClass, Values: map[schema.RelPath]string{"./id": "7", "./kind/disc/tracks": "12"}},
	}
	if _, err := h.Apply(good); err != nil {
		t.Fatalf("conforming batch rejected: %v", err)
	}
	if err := datatree.Conform(tr, typedSchema); err != nil {
		t.Fatalf("document no longer conforms: %v", err)
	}
	cold, err := Build(tr, typedSchema, Options{})
	if err != nil {
		t.Fatalf("cold rebuild: %v", err)
	}
	requireEquivalent(t, h, cold)
}

func TestApplyNotUpdatable(t *testing.T) {
	h := &Hierarchy{} // hand-assembled: no retained patch state
	if _, err := h.Apply(nil); err != ErrNotUpdatable {
		t.Fatalf("err = %v, want ErrNotUpdatable", err)
	}
	if h.Updatable() {
		t.Fatalf("hand-assembled hierarchy claims updatable")
	}
	if got, _ := buildWHTree(t, Options{}); !got.Updatable() {
		t.Fatalf("built hierarchy not updatable")
	}
}

// TestApplyRandomized drives random batches of updates against the
// warehouse document (ordered and unordered set codes) and checks,
// after every batch, both the partition-patch contract and
// equivalence with a cold rebuild of the mutated tree.
func TestApplyRandomized(t *testing.T) {
	for _, ordered := range []bool{false, true} {
		t.Run(fmt.Sprintf("ordered=%v", ordered), func(t *testing.T) {
			opts := Options{OrderedSets: ordered}
			rng := rand.New(rand.NewSource(7))
			for trial := 0; trial < 20; trial++ {
				h, tr := buildWHTree(t, opts)
				for batch := 0; batch < 6; batch++ {
					ops := randomOps(rng, h, 1+rng.Intn(3))
					if len(ops) == 0 {
						continue
					}
					t.Logf("trial %d batch %d: %s", trial, batch, describeOps(ops))
					applyAndCheck(t, h, tr, opts, ops)
				}
			}
		})
	}
}

// randomOps generates up to n valid random updates against the
// current state of h. Every op must address a tuple that still exists
// when it runs, so a delete — whose cascade could remove tuples later
// ops target — always terminates the batch.
func randomOps(rng *rand.Rand, h *Hierarchy, n int) []Update {
	var essential []*Relation
	for _, r := range h.Relations {
		if r.Essential {
			essential = append(essential, r)
		}
	}
	var ops []Update
	used := make(map[int]bool) // keys already targeted this batch
	for len(ops) < n {
		r := essential[rng.Intn(len(essential))]
		switch rng.Intn(3) {
		case 0: // set
			if r.NRows() == 0 {
				continue
			}
			var leaves []int
			for ai, a := range r.Attrs {
				if a.Kind == Leaf {
					leaves = append(leaves, ai)
				}
			}
			if len(leaves) == 0 {
				continue
			}
			key := r.Keys[rng.Intn(r.NRows())]
			if used[key] {
				continue
			}
			used[key] = true
			a := r.Attrs[leaves[rng.Intn(len(leaves))]]
			ops = append(ops, Update{Op: OpSet, Class: r.Pivot, Key: key,
				Attr: a.Rel, Value: fmt.Sprintf("v%d", rng.Intn(5))})
		case 1: // insert
			parent := 0
			if r.Parent.Essential {
				if r.Parent.NRows() == 0 {
					continue
				}
				parent = r.Parent.Keys[rng.Intn(r.Parent.NRows())]
				if used[parent] {
					continue
				}
			}
			vals := make(map[schema.RelPath]string)
			for _, a := range r.Attrs {
				if a.Kind == Leaf && rng.Intn(2) == 0 {
					vals[a.Rel] = fmt.Sprintf("v%d", rng.Intn(5))
				}
			}
			ops = append(ops, Update{Op: OpInsert, Class: r.Pivot, Parent: parent, Values: vals})
		default: // delete
			if r.NRows() == 0 {
				continue
			}
			key := r.Keys[rng.Intn(r.NRows())]
			if used[key] {
				continue
			}
			used[key] = true
			ops = append(ops, Update{Op: OpDelete, Class: r.Pivot, Key: key})
			return ops
		}
	}
	return ops
}

func describeOps(ops []Update) string {
	var b strings.Builder
	for i, op := range ops {
		if i > 0 {
			b.WriteString("; ")
		}
		fmt.Fprintf(&b, "%s %s key=%d parent=%d", op.Op, op.Class, op.Key, op.Parent)
	}
	return b.String()
}
