package relation

import (
	"errors"
	"strings"
	"testing"

	"discoverxfd/internal/datatree"
	"discoverxfd/internal/schema"
)

const errSchemaText = `warehouse: Rcd
  name: str
`

// TestSentinelErrors pins the errors.Is/errors.As contract the CLIs
// rely on for exit-code classification.
func TestSentinelErrors(t *testing.T) {
	s, err := schema.Parse(errSchemaText)
	if err != nil {
		t.Fatal(err)
	}

	if _, err := Build(nil, s, Options{}); !errors.Is(err, ErrEmptyTree) {
		t.Fatalf("Build(nil) = %v, want ErrEmptyTree", err)
	}

	doc, err := datatree.ParseXMLString("<store><name>x</name></store>")
	if err != nil {
		t.Fatal(err)
	}
	_, err = Build(doc, s, Options{})
	var rm *RootMismatchError
	if !errors.As(err, &rm) {
		t.Fatalf("Build with wrong root = %v, want RootMismatchError", err)
	}
	if rm.What != "tree" || rm.Root != "store" || rm.SchemaRoot != "warehouse" {
		t.Fatalf("RootMismatchError fields = %+v", rm)
	}
	if !strings.Contains(rm.Error(), `tree root "store"`) {
		t.Fatalf("unexpected message: %s", rm.Error())
	}

	_, err = BuildStream(strings.NewReader("<store><name>x</name></store>"), s, Options{})
	rm = nil
	if !errors.As(err, &rm) || rm.What != "document" {
		t.Fatalf("BuildStream with wrong root = %v, want document RootMismatchError", err)
	}

	b, err := NewBuilder(s, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := b.Finish(); err != nil {
		t.Fatal(err)
	}
	if _, err := b.Finish(); !errors.Is(err, ErrBuilderFinished) {
		t.Fatalf("second Finish = %v, want ErrBuilderFinished", err)
	}
	n := &datatree.Node{Label: "name"}
	if err := b.AddRootChild(n); !errors.Is(err, ErrBuilderFinished) {
		t.Fatalf("AddRootChild after Finish = %v, want ErrBuilderFinished", err)
	}
}
