package relation

// interner assigns dense per-column integer codes to leaf attribute
// values, hashing each distinct string once per relation: a single
// value→id map is shared by every leaf column of the relation, and
// per-column remap tables turn the relation-wide ids into per-column
// dense codes in [1, bound). Dense codes are what lets the partition
// engine build column partitions with counting buffers
// (partition.FromDense) instead of hash maps.
type interner struct {
	ids  map[string]int32 // value -> relation-wide id
	cols [][]int64        // per column: relation-wide id -> dense code (0 = unassigned)
	next []int64          // per column: next unassigned dense code
}

func newInterner(nCols int) *interner {
	in := &interner{
		ids:  make(map[string]int32),
		cols: make([][]int64, nCols),
		next: make([]int64, nCols),
	}
	for i := range in.next {
		in.next[i] = 1
	}
	return in
}

// code interns value and returns its dense code in column ai.
func (in *interner) code(ai int, v string) int64 {
	id, ok := in.ids[v]
	if !ok {
		id = int32(len(in.ids))
		in.ids[v] = id
	}
	col := in.cols[ai]
	if int(id) >= len(col) {
		grown := make([]int64, len(in.ids)+16)
		copy(grown, col)
		col = grown
		in.cols[ai] = col
	}
	if col[id] == 0 {
		col[id] = in.next[ai]
		in.next[ai]++
	}
	return col[id]
}

// bound returns the exclusive upper bound of column ai's dense codes.
func (in *interner) bound(ai int) int64 { return in.next[ai] }

// densify remaps the non-null codes of col in place to dense codes in
// [1, bound) in order of first occurrence, and returns the bound.
// Equality structure — which rows share a code — is preserved
// exactly, so the column's partition is unchanged; only the code
// values differ. Used for columns whose codes come from the subtree
// encoder (complex elements, set pseudo-attributes), which are dense
// across the document but sparse within one column.
func densify(col []int64) int64 {
	return densifyInto(col, make(map[int64]int64))
}

// densifyInto is densify with a caller-supplied (empty) remap table,
// which the incremental update path retains: the original-code→dense
// mapping stays valid forever because encoder codes are append-only
// interned, so a re-encoded, unchanged subtree maps back to its old
// dense code.
func densifyInto(col []int64, remap map[int64]int64) int64 {
	next := int64(1)
	for i, c := range col {
		if c < 0 {
			continue // nulls keep their unique negative codes
		}
		d, ok := remap[c]
		if !ok {
			d = next
			next++
			remap[c] = d
		}
		col[i] = d
	}
	return next
}
