package relation

import (
	"context"
	"errors"
	"fmt"

	"discoverxfd/internal/datatree"
	"discoverxfd/internal/schema"
	"discoverxfd/internal/source"
)

// Ingest is the single entry seam between document producers and the
// hierarchical representation: it builds the hierarchy from one
// source.Input, whichever shape the producer delivered. A
// materialized tree takes the in-memory path (pre-order node keys,
// retained pivot nodes and encoding state, so the hierarchy is
// updatable); a root-child stream takes the builder path (sequence
// keys, no retained nodes, memory proportional to the representation
// plus one subtree). Both paths share the layout, the budget
// (MaxTuples/Deadline truncation vs cancellation errors), and the
// root-label check; BuildContext and BuildStreamContext are thin
// wrappers over this seam.
func Ingest(ctx context.Context, in source.Input, s *schema.Schema, opts Options) (*Hierarchy, error) {
	switch {
	case in.Tree != nil:
		return buildFromTree(ctx, in.Tree, s, opts)
	case in.Stream != nil:
		return buildFromStream(ctx, in, s, opts)
	default:
		return nil, fmt.Errorf("relation: source input carries neither a tree nor a stream")
	}
}

// buildFromTree is the in-memory ingestion path (see BuildContext for
// the public contract).
func buildFromTree(ctx context.Context, t *datatree.Tree, s *schema.Schema, opts Options) (*Hierarchy, error) {
	if t == nil || t.Root == nil {
		return nil, ErrEmptyTree
	}
	if t.Root.Label != s.Root {
		return nil, &RootMismatchError{What: "tree", Root: t.Root.Label, SchemaRoot: s.Root}
	}

	h, err := layoutHierarchy(s, opts)
	if err != nil {
		return nil, err
	}

	// Pass 2: populate tuples top-down. The encoding state (encoder,
	// interners, densifier remaps) is retained on the hierarchy so
	// later Apply calls can re-encode mutated tuples consistently with
	// the original build — that retention is what makes an in-memory
	// hierarchy updatable.
	ps := newPatchState(t, len(h.Relations))
	bb := &buildBudget{ctx: ctx, opts: &opts, h: h}
	h.Root.nodes = []*datatree.Node{t.Root}
	h.Root.Keys = []int{t.Root.Key}
	h.Root.ParentIdx = []int32{-1}
	for _, r := range h.Relations {
		if r != h.Root {
			if err := populateTuples(r, bb); err != nil {
				return nil, err
			}
		}
		if err := populateColumns(bb, r, ps); err != nil {
			return nil, err
		}
	}

	// Pass 3: set pseudo-attributes need the child tuples, so fill
	// them after all relations are populated. A deadline truncation
	// does not skip this pass: the truncated snapshot must still be
	// structurally consistent (every relation's columns filled), so
	// only explicit cancellation aborts here.
	if !opts.DisableSetAttrs {
		for _, r := range h.Relations {
			if err := bb.cancelled(); err != nil {
				return nil, err
			}
			fillSetColumns(h, r, ps, opts.OrderedSets)
		}
	}
	h.upd = ps
	return h, nil
}

// buildFromStream is the streaming ingestion path (see
// BuildStreamContext for the public contract). The producer owns its
// reader and parse limits; this side owns layout, budgets, and the
// root-label check.
func buildFromStream(ctx context.Context, in source.Input, s *schema.Schema, opts Options) (*Hierarchy, error) {
	b, err := NewBuilderContext(ctx, s, opts)
	if err != nil {
		return nil, err
	}
	rootLabel, err := in.Stream(ctx, b.AddRootChild)
	if err != nil && !errors.Is(err, errBudgetExhausted) {
		return nil, err
	}
	if rootLabel != s.Root {
		return nil, &RootMismatchError{What: "document", Root: rootLabel, SchemaRoot: s.Root}
	}
	return b.Finish()
}
