package relation

import (
	"strings"
	"testing"
)

func TestAttrKindString(t *testing.T) {
	if Leaf.String() != "leaf" || Complex.String() != "complex" || SetValue.String() != "set" {
		t.Fatal("AttrKind strings wrong")
	}
	if !strings.HasPrefix(AttrKind(9).String(), "AttrKind(") {
		t.Fatal("unknown kind string wrong")
	}
}

func TestAttrName(t *testing.T) {
	if (Attr{Rel: "./contact/name"}).Name() != "contact/name" {
		t.Fatal("Name strip wrong")
	}
	if (Attr{Rel: "."}).Name() != "." {
		t.Fatal("self name wrong")
	}
}

func TestNodeAccessor(t *testing.T) {
	h := buildWH(t, Options{})
	book := h.ByPivot("/warehouse/state/store/book")
	if book.Node(0) == nil || book.Node(0).Label != "book" {
		t.Fatalf("Node accessor wrong: %+v", book.Node(0))
	}
}

func TestHierarchyRenderSmoke(t *testing.T) {
	h := buildWH(t, Options{})
	out := h.ByPivot("/warehouse/state/store").String()
	for _, want := range []string{"R(/warehouse/state/store)", "@key parent", "contact/name"} {
		if !strings.Contains(out, want) {
			t.Fatalf("rendering missing %q:\n%s", want, out)
		}
	}
}

func TestStreamedRelationNodeIsNil(t *testing.T) {
	h, err := BuildStream(strings.NewReader(warehouseXML), warehouseSchema, Options{})
	if err != nil {
		t.Fatal(err)
	}
	book := h.ByPivot("/warehouse/state/store/book")
	if book.Node(0) != nil {
		t.Fatal("streamed hierarchies must not retain nodes")
	}
}
