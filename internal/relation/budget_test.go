package relation

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"testing"
	"time"

	"discoverxfd/internal/datatree"
)

// bigWarehouseXML renders a warehouse document with n states of one
// store and two books each, so tuple budgets have room to bite.
func bigWarehouseXML(n int) string {
	var b strings.Builder
	b.WriteString("<warehouse>")
	for i := 0; i < n; i++ {
		fmt.Fprintf(&b, `<state><name>s%d</name><store>`, i)
		fmt.Fprintf(&b, `<contact><name>c%d</name><address>a%d</address></contact>`, i%7, i%7)
		fmt.Fprintf(&b, `<book><ISBN>i%d</ISBN><author>A</author><title>t%d</title><price>9</price></book>`, i, i%5)
		fmt.Fprintf(&b, `<book><ISBN>j%d</ISBN><author>B</author><title>u%d</title><price>7</price></book>`, i, i%5)
		b.WriteString(`</store></state>`)
	}
	b.WriteString("</warehouse>")
	return b.String()
}

// TestBuildMaxTuplesTruncates checks the in-memory builder's tuple
// budget: ingestion stops early, the hierarchy is marked truncated,
// and what was ingested is structurally consistent (children only
// reference ingested parents).
func TestBuildMaxTuplesTruncates(t *testing.T) {
	tr, err := datatree.ParseXMLString(bigWarehouseXML(50))
	if err != nil {
		t.Fatal(err)
	}
	full, err := Build(tr, warehouseSchema, Options{})
	if err != nil {
		t.Fatal(err)
	}
	capped, err := Build(tr, warehouseSchema, Options{MaxTuples: 40})
	if err != nil {
		t.Fatalf("tuple budget must degrade gracefully, got error: %v", err)
	}
	if !capped.Truncated {
		t.Fatal("tuple budget did not mark the hierarchy truncated")
	}
	if !strings.Contains(capped.TruncatedReason, "tuple budget") {
		t.Errorf("TruncatedReason = %q", capped.TruncatedReason)
	}
	cappedTuples := nonRootTuples(capped)
	fullTuples := nonRootTuples(full)
	if cappedTuples > 40 {
		t.Errorf("capped hierarchy holds %d tuples, budget was 40", cappedTuples)
	}
	if cappedTuples >= fullTuples {
		t.Errorf("capped %d tuples, full %d; budget had no effect", cappedTuples, fullTuples)
	}
	checkParentLinks(t, capped)
}

// TestBuildStreamMaxTuplesTruncates checks the streaming builder's
// budget: the parse itself is abandoned early (errBudgetExhausted is
// internal, so we can only observe the truncated hierarchy), and the
// result stays consistent.
func TestBuildStreamMaxTuplesTruncates(t *testing.T) {
	h, err := BuildStream(strings.NewReader(bigWarehouseXML(50)), warehouseSchema, Options{MaxTuples: 40})
	if err != nil {
		t.Fatalf("tuple budget must degrade gracefully, got error: %v", err)
	}
	if !h.Truncated {
		t.Fatal("tuple budget did not mark the streamed hierarchy truncated")
	}
	if tuples := nonRootTuples(h); tuples > 40 {
		t.Errorf("streamed hierarchy holds %d tuples, budget was 40", tuples)
	}
	checkParentLinks(t, h)
}

// nonRootTuples counts ingested tuples outside the synthetic root
// relation; the root's single tuple exists before any ingestion and
// is not charged against MaxTuples.
func nonRootTuples(h *Hierarchy) int {
	n := 0
	for _, r := range h.Relations {
		if r != h.Root {
			n += r.NRows()
		}
	}
	return n
}

// checkParentLinks asserts every non-root tuple references an ingested
// parent row — the structural-consistency promise of truncation.
func checkParentLinks(t *testing.T, h *Hierarchy) {
	t.Helper()
	for _, r := range h.Relations {
		if r.Parent == nil {
			continue
		}
		for i, pi := range r.ParentIdx {
			if pi < 0 || int(pi) >= r.Parent.NRows() {
				t.Fatalf("%s row %d references parent row %d of %d: truncation broke consistency",
					r.Pivot, i, pi, r.Parent.NRows())
			}
		}
	}
}

// TestBuildDeadlineTruncates checks that an already-expired deadline
// truncates the build instead of erroring.
func TestBuildDeadlineTruncates(t *testing.T) {
	tr, err := datatree.ParseXMLString(bigWarehouseXML(50))
	if err != nil {
		t.Fatal(err)
	}
	h, err := Build(tr, warehouseSchema, Options{Deadline: time.Now().Add(-time.Second)})
	if err != nil {
		t.Fatalf("expired deadline must not error: %v", err)
	}
	if !h.Truncated {
		t.Fatal("expired deadline did not truncate the build")
	}
	if !strings.Contains(h.TruncatedReason, "deadline") {
		t.Errorf("TruncatedReason = %q", h.TruncatedReason)
	}
}

// TestBuildContextCancelled checks the other channel: cancellation is
// an error, not a truncation.
func TestBuildContextCancelled(t *testing.T) {
	tr, err := datatree.ParseXMLString(bigWarehouseXML(50))
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := BuildContext(ctx, tr, warehouseSchema, Options{}); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if _, err := BuildStreamContext(ctx, strings.NewReader(bigWarehouseXML(50)), warehouseSchema, Options{}); !errors.Is(err, context.Canceled) {
		t.Fatalf("stream err = %v, want context.Canceled", err)
	}
}

// TestUntouchedBudgetMatchesPlainBuild checks determinism: building
// under generous limits is structurally identical to a plain build.
func TestUntouchedBudgetMatchesPlainBuild(t *testing.T) {
	xml := bigWarehouseXML(10)
	tr, err := datatree.ParseXMLString(xml)
	if err != nil {
		t.Fatal(err)
	}
	plain, err := Build(tr, warehouseSchema, Options{})
	if err != nil {
		t.Fatal(err)
	}
	governed, err := BuildContext(context.Background(), tr, warehouseSchema, Options{
		MaxTuples: 1 << 20,
		Deadline:  time.Now().Add(time.Hour),
	})
	if err != nil {
		t.Fatal(err)
	}
	if governed.Truncated {
		t.Fatal("generous limits marked the hierarchy truncated")
	}
	if len(governed.Relations) != len(plain.Relations) {
		t.Fatalf("relation counts differ: %d vs %d", len(governed.Relations), len(plain.Relations))
	}
	for i, pr := range plain.Relations {
		if got, want := governed.Relations[i].String(), pr.String(); got != want {
			t.Errorf("relation %s differs under governed build\nplain:\n%s\ngoverned:\n%s", pr.Pivot, want, got)
		}
	}
}
