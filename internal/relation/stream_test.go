package relation

import (
	"strings"
	"testing"

	"discoverxfd/internal/datatree"
	"discoverxfd/internal/schema"
)

// TestBuildStreamMatchesBuild checks structural equivalence between
// the streaming builder and the in-memory builder on the warehouse
// document: same relations, row counts, parent links, and — column by
// column — the same grouping structure (codes may differ, groupings
// may not).
func TestBuildStreamMatchesBuild(t *testing.T) {
	tr, err := datatree.ParseXMLString(warehouseXML)
	if err != nil {
		t.Fatal(err)
	}
	mem, err := Build(tr, warehouseSchema, Options{})
	if err != nil {
		t.Fatal(err)
	}
	str, err := BuildStream(strings.NewReader(warehouseXML), warehouseSchema, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(str.Relations) != len(mem.Relations) {
		t.Fatalf("relation counts differ: %d vs %d", len(str.Relations), len(mem.Relations))
	}
	for _, mrel := range mem.Relations {
		srel := str.ByPivot(mrel.Pivot)
		if srel == nil {
			t.Fatalf("missing streamed relation %s", mrel.Pivot)
		}
		if srel.NRows() != mrel.NRows() || srel.NAttrs() != mrel.NAttrs() {
			t.Fatalf("%s: shape %dx%d vs %dx%d", mrel.Pivot, srel.NRows(), srel.NAttrs(), mrel.NRows(), mrel.NAttrs())
		}
		for i := range mrel.ParentIdx {
			if srel.ParentIdx[i] != mrel.ParentIdx[i] {
				t.Fatalf("%s: parent of row %d differs: %d vs %d", mrel.Pivot, i, srel.ParentIdx[i], mrel.ParentIdx[i])
			}
		}
		for ai := range mrel.Attrs {
			if srel.Attrs[ai].Rel != mrel.Attrs[ai].Rel {
				t.Fatalf("%s: attr %d differs: %s vs %s", mrel.Pivot, ai, srel.Attrs[ai].Rel, mrel.Attrs[ai].Rel)
			}
			sp := srel.ColumnPartition(ai)
			mp := mrel.ColumnPartition(ai)
			if !sp.Equal(mp) {
				t.Fatalf("%s.%s: partitions differ:\n%v\nvs\n%v", mrel.Pivot, mrel.Attrs[ai].Rel, sp.Groups, mp.Groups)
			}
		}
	}
}

// TestBuildStreamNonSetRootChildren covers root leaf attributes,
// complex containers, and set elements nested below non-set
// containers.
func TestBuildStreamNonSetRootChildren(t *testing.T) {
	s := mustSchema(t, `
doc: Rcd
  version: str
  meta: Rcd
    owner: str
    tag: SetOf str
  item: SetOf Rcd
    id: str
`)
	xml := `
<doc>
  <version>3</version>
  <meta><owner>me</owner><tag>a</tag><tag>b</tag></meta>
  <item><id>1</id></item>
  <item><id>2</id></item>
</doc>`
	h, err := BuildStream(strings.NewReader(xml), s, Options{})
	if err != nil {
		t.Fatal(err)
	}
	root := h.Root
	if root.NRows() != 1 {
		t.Fatalf("root rows = %d", root.NRows())
	}
	for _, rel := range []struct {
		attr string
		null bool
	}{{"./version", false}, {"./meta", false}, {"./meta/owner", false}, {"./meta/tag", false}, {"./item", false}} {
		ai := root.AttrIndex(schemaRel(rel.attr))
		if ai < 0 {
			t.Fatalf("missing root attr %s: %v", rel.attr, root.Attrs)
		}
		if IsNull(root.Cols[ai][0]) != rel.null {
			t.Fatalf("root attr %s null=%v", rel.attr, IsNull(root.Cols[ai][0]))
		}
	}
	tags := h.ByPivot("/doc/meta/tag")
	if tags == nil || tags.NRows() != 2 {
		t.Fatalf("R_tag missing or wrong: %+v", tags)
	}
	items := h.ByPivot("/doc/item")
	if items.NRows() != 2 {
		t.Fatalf("R_item rows = %d", items.NRows())
	}
}

// TestBuildStreamErrors covers root mismatch, undeclared children and
// reuse after Finish.
func TestBuildStreamErrors(t *testing.T) {
	s := mustSchema(t, "doc: Rcd\n  item: SetOf Rcd\n    id: str")
	if _, err := BuildStream(strings.NewReader("<other/>"), s, Options{}); err == nil {
		t.Fatal("root mismatch should fail")
	}
	if _, err := BuildStream(strings.NewReader("<doc><bogus/></doc>"), s, Options{}); err == nil {
		t.Fatal("undeclared child should fail")
	}
	b, err := NewBuilder(s, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := b.Finish(); err != nil {
		t.Fatal(err)
	}
	if _, err := b.Finish(); err == nil {
		t.Fatal("double Finish should fail")
	}
	if err := b.AddRootChild(&datatree.Node{Label: "item"}); err == nil {
		t.Fatal("AddRootChild after Finish should fail")
	}
}

func mustSchema(t *testing.T, text string) *schema.Schema {
	t.Helper()
	s, err := schema.Parse(text)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func schemaRel(s string) schema.RelPath { return schema.RelPath(s) }
