package relation

import (
	"errors"
	"fmt"
)

// ErrBuilderFinished is returned by Builder methods invoked after
// Finish: a finished builder has handed its hierarchy off and cannot
// accept more subtrees.
var ErrBuilderFinished = errors.New("relation: builder already finished")

// ErrEmptyTree is returned by Build/BuildContext when the tree is nil
// or has no root.
var ErrEmptyTree = errors.New("relation: empty tree")

// RootMismatchError reports input whose root label does not match the
// schema root, carrying both labels so callers can classify the
// failure with errors.As instead of parsing the message.
type RootMismatchError struct {
	// What names the input kind: "tree" for the in-memory build,
	// "document" for the streaming build.
	What string
	// Root is the input's actual root label.
	Root string
	// SchemaRoot is the root label the schema requires.
	SchemaRoot string
}

func (e *RootMismatchError) Error() string {
	return fmt.Sprintf("relation: %s root %q does not match schema root %q", e.What, e.Root, e.SchemaRoot)
}
