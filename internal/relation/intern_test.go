package relation

import (
	"strings"
	"testing"

	"discoverxfd/internal/datatree"
	"discoverxfd/internal/partition"
)

const internDoc = `<warehouse>
  <state><name>MI</name>
    <store><name>A</name><phone>1</phone>
      <book><ISBN>x</ISBN><price>10</price><author>a1</author><author>a2</author></book>
      <book><ISBN>y</ISBN><price>10</price><author>a1</author></book>
    </store>
    <store><name>B</name>
      <book><ISBN>x</ISBN><price>10</price><author>a2</author></book>
    </store>
  </state>
  <state><name>OH</name>
    <store><name>A</name><phone>1</phone></store>
  </state>
</warehouse>`

func buildInternHierarchy(t *testing.T, opts Options) *Hierarchy {
	t.Helper()
	tree, err := datatree.ParseXMLString(internDoc)
	if err != nil {
		t.Fatal(err)
	}
	s, err := datatree.InferSchema(tree)
	if err != nil {
		t.Fatal(err)
	}
	h, err := Build(tree, s, opts)
	if err != nil {
		t.Fatal(err)
	}
	return h
}

// checkBounds asserts the interning invariant: every non-null code of
// a bounded column is dense in [1, bound).
func checkBounds(t *testing.T, h *Hierarchy) {
	t.Helper()
	for _, r := range h.Relations {
		if len(r.ColBound) != len(r.Attrs) {
			t.Fatalf("relation %s: ColBound len %d != %d attrs", r.Pivot, len(r.ColBound), len(r.Attrs))
		}
		for ai := range r.Attrs {
			bound := r.ColBound[ai]
			if bound <= 0 {
				t.Fatalf("relation %s attr %s: no dense bound recorded", r.Pivot, r.Attrs[ai].Name())
			}
			seen := make(map[int64]bool)
			for ti, c := range r.Cols[ai] {
				if IsNull(c) {
					continue
				}
				if c < 1 || c >= bound {
					t.Fatalf("relation %s attr %s tuple %d: code %d outside [1,%d)",
						r.Pivot, r.Attrs[ai].Name(), ti, c, bound)
				}
				seen[c] = true
			}
			// Dense means every code below the bound is used at least
			// once whenever any is.
			if len(seen) > 0 && int64(len(seen)) != bound-1 {
				t.Fatalf("relation %s attr %s: %d distinct codes but bound %d (not dense)",
					r.Pivot, r.Attrs[ai].Name(), len(seen), bound)
			}
		}
	}
}

func TestBuildInternsDenseBounds(t *testing.T) {
	checkBounds(t, buildInternHierarchy(t, Options{}))
	checkBounds(t, buildInternHierarchy(t, Options{OrderedSets: true}))
}

func TestStreamInternsDenseBounds(t *testing.T) {
	tree, err := datatree.ParseXMLString(internDoc)
	if err != nil {
		t.Fatal(err)
	}
	s, err := datatree.InferSchema(tree)
	if err != nil {
		t.Fatal(err)
	}
	h, err := BuildStream(strings.NewReader(internDoc), s, Options{})
	if err != nil {
		t.Fatal(err)
	}
	checkBounds(t, h)
}

// TestColumnPartitionDenseMatchesGeneric cross-checks the two
// partition build paths on every column of a built hierarchy.
func TestColumnPartitionDenseMatchesGeneric(t *testing.T) {
	h := buildInternHierarchy(t, Options{})
	for _, r := range h.Relations {
		for ai := range r.Attrs {
			fast := r.ColumnPartition(ai)
			naive := partition.FromCodes(r.Cols[ai])
			if !fast.Equal(naive) {
				t.Fatalf("relation %s attr %s: dense partition differs from generic",
					r.Pivot, r.Attrs[ai].Name())
			}
		}
	}
}

func TestDensify(t *testing.T) {
	col := []int64{42, -1, 7, 42, 9000, -2, 7}
	want := partition.FromCodes(append([]int64(nil), col...))
	bound := densify(col)
	if bound != 4 {
		t.Fatalf("bound = %d, want 4", bound)
	}
	for i, c := range col {
		if c >= bound || (c < 1 && !IsNull(c)) {
			t.Fatalf("col[%d] = %d not dense under bound %d", i, c, bound)
		}
	}
	if got := partition.FromDense(col, bound); !got.Equal(want) {
		t.Fatalf("densified partition differs: %v vs %v", got.Groups, want.Groups)
	}
}
