package relation

import (
	"context"
	"errors"
	"fmt"
	"io"
	"strings"

	"discoverxfd/internal/datatree"
	"discoverxfd/internal/schema"
	"discoverxfd/internal/source"
)

// errBudgetExhausted aborts the streaming parse once the tuple or
// wall-clock budget runs out; BuildStream converts it into a
// truncated (but valid) hierarchy rather than an error.
var errBudgetExhausted = errors.New("relation: ingestion budget exhausted")

// Builder constructs the hierarchical representation incrementally,
// one root-child subtree at a time, so a large document never needs
// to be fully materialized: memory stays proportional to the
// representation (columns of codes) plus the largest single subtree.
//
// Differences from Build: tuples carry sequence numbers instead of
// whole-document pre-order node keys, and pivot nodes are not
// retained (Relation.Node returns nil), so witness *counting* and
// discovery work identically but node-level reporting (refine.Apply,
// anomaly occurrences) needs the in-memory Build.
type Builder struct {
	h      *Hierarchy
	opts   Options
	enc    *datatree.Encoder
	budget *buildBudget

	dicts map[*Relation][]map[string]int64
	// rootSetCodes accumulates member subtree codes for the root
	// relation's set pseudo-attributes whose members arrive one
	// AddRootChild at a time.
	rootSetCodes map[int][]int
	// rootNode accumulates the root's non-set children (leaf
	// attributes and complex containers, including any set elements
	// nested below them), processed at Finish.
	rootNode *datatree.Node
	seq      int
	finished bool
}

// NewBuilder lays out the relation tree for the schema and returns an
// empty builder.
func NewBuilder(s *schema.Schema, opts Options) (*Builder, error) {
	return NewBuilderContext(context.Background(), s, opts)
}

// NewBuilderContext is NewBuilder with cancellation and resource
// budgets: AddRootChild checks the context, and tuples beyond
// Options.MaxTuples (or past Options.Deadline) truncate the hierarchy
// instead of being ingested.
func NewBuilderContext(ctx context.Context, s *schema.Schema, opts Options) (*Builder, error) {
	h, err := layoutHierarchy(s, opts)
	if err != nil {
		return nil, err
	}
	b := &Builder{
		h:            h,
		opts:         opts,
		enc:          &datatree.Encoder{},
		dicts:        make(map[*Relation][]map[string]int64),
		rootSetCodes: make(map[int][]int),
		rootNode:     &datatree.Node{Label: s.Root},
	}
	b.budget = &buildBudget{ctx: ctx, opts: &b.opts, h: h}
	for _, r := range h.Relations {
		ds := make([]map[string]int64, len(r.Attrs))
		for i := range ds {
			ds[i] = make(map[string]int64)
		}
		b.dicts[r] = ds
		r.Cols = make([][]int64, len(r.Attrs))
	}
	// The synthetic root tuple.
	b.h.Root.Keys = []int{0}
	b.h.Root.ParentIdx = []int32{-1}
	b.h.Root.nodes = []*datatree.Node{nil}
	return b, nil
}

// AddRootChild ingests one direct child of the document root (element
// subtree or "@attr" leaf). Children of set elements are converted to
// tuples immediately and the subtree becomes garbage; non-set
// children are retained until Finish. Once the ingestion budget is
// exhausted it returns errBudgetExhausted, which BuildStream maps to
// a truncated hierarchy.
func (b *Builder) AddRootChild(n *datatree.Node) error {
	if b.finished {
		return ErrBuilderFinished
	}
	if err := b.budget.cancelled(); err != nil {
		return err
	}
	if b.h.Truncated {
		return errBudgetExhausted
	}
	// Which top-level relation (if any) does this child pivot?
	childPath := schema.PathOf(b.h.Schema.Root).Child(n.Label)
	if rel := b.h.byPivot[childPath]; rel != nil && rel.Parent == b.h.Root {
		if ai := b.h.Root.AttrIndex(schema.MustRelativize(b.h.Root.Pivot, childPath)); ai >= 0 {
			b.rootSetCodes[ai] = append(b.rootSetCodes[ai], b.enc.Encode(n))
		}
		if err := b.addTuple(rel, n, 0); err != nil {
			return err
		}
		b.enc.Forget(n)
		return nil
	}
	// Validate the label exists in the schema at all.
	if _, err := b.h.Schema.Resolve(childPath); err != nil {
		return fmt.Errorf("relation: %w", err)
	}
	n.Parent = b.rootNode
	b.rootNode.Children = append(b.rootNode.Children, n)
	return nil
}

// Finish completes the root relation (its retained non-set children,
// including set elements nested below non-set containers) and returns
// the hierarchy.
func (b *Builder) Finish() (*Hierarchy, error) {
	if b.finished {
		return nil, ErrBuilderFinished
	}
	b.finished = true
	root := b.h.Root

	// Columns of the root relation from the retained children; set
	// pseudo-attributes for top-level set elements come from the
	// accumulated codes.
	root.Cols = make([][]int64, len(root.Attrs))
	for ai, a := range root.Attrs {
		root.Cols[ai] = make([]int64, 1)
		switch a.Kind {
		case SetValue:
			if codes, ok := b.rootSetCodes[ai]; ok && len(codes) > 0 {
				root.Cols[ai][0] = int64(b.enc.MultisetOfCodes(codes))
				continue
			}
			// Set elements below non-set containers live in rootNode.
			members := collectMembers(b.rootNode, a.Rel)
			if len(members) == 0 {
				root.Cols[ai][0] = nullCode(0)
			} else if b.opts.OrderedSets {
				root.Cols[ai][0] = int64(b.enc.ListCode(members))
			} else {
				root.Cols[ai][0] = int64(b.enc.MultisetCode(members))
			}
		case Complex:
			if node := descend(b.rootNode, a.Rel); node != nil {
				root.Cols[ai][0] = int64(b.enc.Encode(node))
			} else {
				root.Cols[ai][0] = nullCode(0)
			}
		default:
			node := descend(b.rootNode, a.Rel)
			if node == nil || !node.HasValue {
				root.Cols[ai][0] = nullCode(0)
				continue
			}
			root.Cols[ai][0] = b.dictCode(root, ai, node.Value)
		}
	}

	// Tuples of child relations whose pivot sits below a non-set
	// container of the root (e.g. /root/meta/tag): their members were
	// retained in rootNode.
	for _, child := range root.Children {
		rel := schema.MustRelativize(root.Pivot, child.Pivot)
		steps := strings.Split(strings.TrimPrefix(string(rel), "./"), "/")
		if len(steps) <= 1 {
			continue // direct children were streamed
		}
		for _, m := range collectMembers(b.rootNode, rel) {
			if err := b.addTuple(child, m, 0); err != nil {
				return nil, err
			}
		}
	}

	// Finalize dense code bounds so partition builds take the
	// counting path: leaf columns are dense by construction (dictCode
	// assigns 1..len(dict)), encoder-coded columns are remapped.
	for _, r := range b.h.Relations {
		r.ColBound = make([]int64, len(r.Attrs))
		for ai, a := range r.Attrs {
			if ai >= len(r.Cols) || r.Cols[ai] == nil {
				continue
			}
			if a.Kind == Leaf {
				r.ColBound[ai] = int64(len(b.dicts[r][ai]) + 1)
			} else {
				r.ColBound[ai] = densify(r.Cols[ai])
			}
		}
	}
	return b.h, nil
}

// addTuple converts the subtree rooted at pivot into one tuple of rel
// (plus, recursively, tuples of rel's descendants). A tuple beyond
// the ingestion budget is skipped (the hierarchy is then marked
// truncated); only cancellation is an error.
func (b *Builder) addTuple(rel *Relation, pivot *datatree.Node, parentRow int32) error {
	ok, err := b.budget.admit()
	if err != nil {
		return err
	}
	if !ok {
		return nil
	}
	b.seq++
	row := rel.NRows()
	rel.Keys = append(rel.Keys, b.seq)
	rel.ParentIdx = append(rel.ParentIdx, parentRow)
	rel.nodes = append(rel.nodes, nil)
	if rel.Cols == nil {
		rel.Cols = make([][]int64, len(rel.Attrs))
	}
	for ai, a := range rel.Attrs {
		var code int64
		switch a.Kind {
		case SetValue:
			members := collectMembers(pivot, a.Rel)
			if len(members) == 0 {
				code = nullCode(row)
			} else if b.opts.OrderedSets {
				code = int64(b.enc.ListCode(members))
			} else {
				code = int64(b.enc.MultisetCode(members))
			}
		case Complex:
			if node := descend(pivot, a.Rel); node != nil {
				code = int64(b.enc.Encode(node))
			} else {
				code = nullCode(row)
			}
		default:
			node := descend(pivot, a.Rel)
			if node == nil || !node.HasValue {
				code = nullCode(row)
			} else {
				code = b.dictCode(rel, ai, node.Value)
			}
		}
		rel.Cols[ai] = append(rel.Cols[ai], code)
	}
	for _, child := range rel.Children {
		crel := schema.MustRelativize(rel.Pivot, child.Pivot)
		for _, m := range collectMembers(pivot, crel) {
			if err := b.addTuple(child, m, int32(row)); err != nil {
				return err
			}
		}
	}
	return nil
}

func (b *Builder) dictCode(rel *Relation, ai int, value string) int64 {
	d := b.dicts[rel][ai]
	code, ok := d[value]
	if !ok {
		code = int64(len(d) + 1)
		d[value] = code
	}
	return code
}

// collectMembers returns the set-element member nodes under pivot for
// a relative path whose final step is the set label.
func collectMembers(pivot *datatree.Node, rel schema.RelPath) []*datatree.Node {
	steps := strings.Split(strings.TrimPrefix(string(rel), "./"), "/")
	parent := pivot
	for _, s := range steps[:len(steps)-1] {
		parent = parent.Child(s)
		if parent == nil {
			return nil
		}
	}
	return parent.ChildrenLabeled(steps[len(steps)-1])
}

// BuildStream constructs the hierarchical representation directly
// from an XML stream under the given schema, without materializing
// the document. The root element's label must match the schema.
func BuildStream(r io.Reader, s *schema.Schema, opts Options) (*Hierarchy, error) {
	return BuildStreamContext(context.Background(), r, s, opts)
}

// BuildStreamContext is BuildStream with cancellation and resource
// budgets. Parse-limit violations (Options.Parse) and cancellation
// are errors; exhausting Options.MaxTuples or Options.Deadline aborts
// the parse early and returns the hierarchy built so far with
// Truncated set.
func BuildStreamContext(ctx context.Context, r io.Reader, s *schema.Schema, opts Options) (*Hierarchy, error) {
	return Ingest(ctx, source.Input{
		Format: "xml",
		Stream: func(ctx context.Context, fn func(*datatree.Node) error) (string, error) {
			return datatree.StreamRootChildrenContext(ctx, r, opts.parseLimits(), fn)
		},
	}, s, opts)
}
