package relation

import (
	"errors"
	"fmt"
	"sort"
	"strconv"
	"strings"

	"discoverxfd/internal/datatree"
	"discoverxfd/internal/schema"
)

// This file implements in-place document updates on a built
// hierarchy: tuple value changes, inserts, and deletes addressed by
// tuple class and pivot node key. An update mutates the retained data
// tree and the relation columns consistently, and reports exactly
// which columns and rows changed (the Changeset), which is what lets
// the engine's warm layer patch its striped partitions instead of
// rebuilding them (see internal/partition.Patch and the engine's
// ApplyUpdate).
//
// The invariants the update path maintains:
//
//   - Dense interning stays append-only: new leaf values and new
//     subtree codes extend the retained interner/remap tables, so
//     ColBound only grows and untouched codes keep their meaning.
//   - Null codes stay row-unique: a tuple moved by a swap-delete has
//     its null codes renumbered to its new row, preserving the
//     nullCode(row) convention the partitions' strong-satisfaction
//     semantics depend on.
//   - Deletes swap the last tuple into the vacated slot and truncate
//     (no tombstones), so the relation after an update is, up to a
//     row permutation, exactly what a cold rebuild of the mutated
//     tree produces — and discovery output is row-permutation
//     invariant, which is what the differential tests pin.

// ErrNotUpdatable is returned by Apply on hierarchies that did not
// retain encoding state: streamed builds (BuildStream discards the
// tree) and hand-assembled test hierarchies.
var ErrNotUpdatable = errors.New("relation: hierarchy is not updatable (streamed or hand-assembled)")

// UpdateOp selects what an Update does.
type UpdateOp int

const (
	// OpSet sets (or creates) the value of a leaf attribute of an
	// existing tuple.
	OpSet UpdateOp = iota
	// OpInsert inserts a new tuple of an essential class under a
	// parent-class tuple, with leaf values.
	OpInsert
	// OpDelete deletes a tuple and, transitively, every tuple of a
	// descendant class beneath it.
	OpDelete
)

func (op UpdateOp) String() string {
	switch op {
	case OpSet:
		return "set"
	case OpInsert:
		return "insert"
	case OpDelete:
		return "delete"
	default:
		return fmt.Sprintf("UpdateOp(%d)", int(op))
	}
}

// Update is one document mutation, addressed by tuple class (a pivot
// path) and pivot node key.
type Update struct {
	Op UpdateOp
	// Class is the pivot path of the tuple class the update targets.
	Class schema.Path
	// Key is the pivot node key of the target tuple (OpSet, OpDelete).
	Key int
	// Attr is the leaf attribute to set, relative to the pivot
	// (OpSet), e.g. "./name" or "." for a simple set element's own
	// value.
	Attr schema.RelPath
	// Value is the new leaf value (OpSet).
	Value string
	// Parent is the pivot node key of the parent-class tuple an
	// insert goes under (OpInsert). Zero means "the unique parent
	// tuple" and is valid only when the parent class has exactly one
	// tuple (always true for top-level classes, whose parent is the
	// document root).
	Parent int
	// Values holds the new tuple's leaf values by attribute relative
	// path (OpInsert). Attributes not listed are missing (null).
	Values map[schema.RelPath]string
}

// RelChange records what an Apply batch changed in one relation.
type RelChange struct {
	Rel *Relation
	// Resized reports that tuples were inserted or deleted: row
	// identity changed, so every multi-column partition of the
	// relation is stale (single columns remain patchable via Rows).
	Resized bool
	// Rows lists, in ascending order, the row indices of the final
	// relation whose codes may differ from the pre-update relation —
	// exactly the touched set partition.Patch needs. Rows at or above
	// the final row count never appear.
	Rows []int32

	dirty uint64 // bitmask over attr indices with changed codes
	wide  bool   // >64 attrs: bitmask insufficient, treat all dirty
	rows  map[int32]struct{}
}

// DirtyAttr reports whether column ai's codes may have changed.
func (rc *RelChange) DirtyAttr(ai int) bool {
	if rc == nil {
		return false
	}
	return rc.Resized || rc.wide || ai >= 64 || rc.dirty&(1<<uint(ai)) != 0
}

// DirtyMask returns the changed-column bitmask (meaningful for
// relations of at most 64 attributes and no resize; use DirtyAttr).
func (rc *RelChange) DirtyMask() uint64 { return rc.dirty }

// Changeset reports what one Apply batch changed.
type Changeset struct {
	// Keys holds, per update in the batch, the pivot node key of the
	// affected tuple — for inserts, the newly assigned key, which
	// later batches use to address the new tuple.
	Keys []int
	// Rels holds one entry per touched relation, indexed by
	// Relation.Index; untouched relations are nil.
	Rels []*RelChange
}

// Ops returns the number of applied updates.
func (cs *Changeset) Ops() int { return len(cs.Keys) }

// Updatable reports whether the hierarchy retained the encoding state
// in-place updates need (true for Build/BuildContext hierarchies,
// false for streamed or hand-assembled ones).
func (h *Hierarchy) Updatable() bool { return h.upd != nil && !h.Truncated }

// patchState is the encoding state a built hierarchy retains to stay
// updatable: the data tree, the shared subtree encoder, and the
// per-relation interners and densifier remap tables of the original
// build. All tables grow append-only under updates.
type patchState struct {
	tree     *datatree.Tree
	enc      *datatree.Encoder
	in       []*interner         // by Relation.Index
	remap    [][]map[int64]int64 // by Relation.Index, then attr index (Complex/SetValue)
	rowByKey []map[int]int32     // by Relation.Index: pivot key → row; built lazily
}

func newPatchState(t *datatree.Tree, nRels int) *patchState {
	return &patchState{
		tree:  t,
		enc:   &datatree.Encoder{},
		in:    make([]*interner, nRels),
		remap: make([][]map[int64]int64, nRels),
	}
}

// ensureRowIndex builds the pivot-key→row lookups on first use.
func (ps *patchState) ensureRowIndex(h *Hierarchy) {
	if ps.rowByKey != nil {
		return
	}
	ps.rowByKey = make([]map[int]int32, len(h.Relations))
	for _, r := range h.Relations {
		m := make(map[int]int32, r.NRows())
		for t, k := range r.Keys {
			m[k] = int32(t)
		}
		ps.rowByKey[r.Index] = m
	}
}

// dense maps an encoder code to column ai's dense code, extending the
// retained remap (and the column bound) for codes never seen in this
// column.
func (ps *patchState) dense(r *Relation, ai int, code int64) int64 {
	m := ps.remap[r.Index][ai]
	if d, ok := m[code]; ok {
		return d
	}
	d := r.ColBound[ai]
	m[code] = d
	r.ColBound[ai]++
	return d
}

// Apply applies a batch of updates to the hierarchy, mutating the
// retained data tree and the relation columns in place, and returns
// the Changeset describing exactly which columns and rows changed.
// Updates are applied in order; a validation error on any update
// aborts the batch. Earlier updates remain applied (and a rejected
// update may leave empty containers it grafted on its path), but the
// hierarchy is always left consistent with the mutated document —
// callers wanting all-or-nothing semantics should validate scripts
// first or rebuild on error.
//
// Updates are validated against the hierarchy's schema the same way
// cold builds validate documents (datatree.Conform): values written
// to Int/Float-typed leaves must parse, and grafts may not put a
// second alternative under a Choice element. Without this the update
// path could produce documents a rebuild rejects.
//
// Apply does not lock: callers serialize updates against running
// discoveries via Lock/RLock (the engine's ApplyUpdate does).
func (h *Hierarchy) Apply(ops []Update) (*Changeset, error) {
	if h.upd == nil {
		return nil, ErrNotUpdatable
	}
	if h.Truncated {
		return nil, fmt.Errorf("relation: truncated hierarchy (%s) is not updatable", h.TruncatedReason)
	}
	h.upd.ensureRowIndex(h)
	app := &applier{
		h:        h,
		ps:       h.upd,
		cs:       &Changeset{Rels: make([]*RelChange, len(h.Relations))},
		affected: make([]map[int]struct{}, len(h.Relations)),
	}
	var applyErr error
	for i := range ops {
		key, err := app.apply(&ops[i])
		if err != nil {
			applyErr = fmt.Errorf("relation: update %d (%s %s): %w", i, ops[i].Op, ops[i].Class, err)
			break
		}
		app.cs.Keys = append(app.cs.Keys, key)
	}
	// Recompute even after a rejected update: earlier updates in the
	// batch remain applied (and a rejected update may have grafted
	// empty containers on its path), and the hierarchy must stay
	// consistent with the mutated document — a cold rebuild of the
	// tree and the patched columns must describe the same instance.
	app.recompute()
	for _, rc := range app.cs.Rels {
		if rc == nil {
			continue
		}
		n := int32(rc.Rel.NRows())
		rc.Rows = rc.Rows[:0]
		for t := range rc.rows {
			if t < n {
				rc.Rows = append(rc.Rows, t)
			}
		}
		sort.Slice(rc.Rows, func(i, j int) bool { return rc.Rows[i] < rc.Rows[j] })
	}
	if applyErr != nil {
		return nil, applyErr
	}
	return app.cs, nil
}

// applier is the working state of one Apply batch.
type applier struct {
	h  *Hierarchy
	ps *patchState
	cs *Changeset
	// affected collects, per relation, the pivot keys of tuples whose
	// Complex and SetValue columns must be re-encoded after all
	// structural changes have landed (keys, not rows: swap-deletes
	// move rows mid-batch, keys are stable).
	affected []map[int]struct{}
}

// change returns (creating on first touch) the relation's RelChange.
func (app *applier) change(r *Relation) *RelChange {
	rc := app.cs.Rels[r.Index]
	if rc == nil {
		rc = &RelChange{Rel: r, wide: r.NAttrs() > 64, rows: make(map[int32]struct{})}
		app.cs.Rels[r.Index] = rc
	}
	return rc
}

// markDirty records a changed code in column ai at row t.
func (app *applier) markDirty(r *Relation, ai int, t int32) {
	rc := app.change(r)
	if ai < 64 {
		rc.dirty |= 1 << uint(ai)
	}
	rc.rows[t] = struct{}{}
}

// markAffected schedules the tuple's Complex/SetValue columns for
// re-encoding in the batch's final pass.
func (app *applier) markAffected(r *Relation, key int) {
	m := app.affected[r.Index]
	if m == nil {
		m = make(map[int]struct{})
		app.affected[r.Index] = m
	}
	m[key] = struct{}{}
}

// markAncestors walks the parent chain of (r, row) and schedules each
// ancestor tuple for re-encoding: a change below is a change of every
// ancestor's subtree, so their Complex and SetValue codes may shift.
func (app *applier) markAncestors(r *Relation, row int32) {
	for r.Parent != nil {
		pi := r.ParentIdx[row]
		if pi < 0 {
			return
		}
		r, row = r.Parent, pi
		app.markAffected(r, r.Keys[row])
	}
}

// rowOf resolves a pivot key to its current row.
func (app *applier) rowOf(r *Relation, key int) (int32, error) {
	t, ok := app.ps.rowByKey[r.Index][key]
	if !ok {
		return 0, fmt.Errorf("no tuple with key %d", key)
	}
	return t, nil
}

func (app *applier) apply(op *Update) (int, error) {
	rel := app.h.byPivot[op.Class]
	if rel == nil {
		return 0, fmt.Errorf("unknown tuple class")
	}
	switch op.Op {
	case OpSet:
		return app.applySet(rel, op)
	case OpInsert:
		return app.applyInsert(rel, op)
	case OpDelete:
		return app.applyDelete(rel, op)
	default:
		return 0, fmt.Errorf("unknown op %v", op.Op)
	}
}

// relSteps splits a relative path into its label steps.
func relSteps(rel schema.RelPath) []string {
	return strings.Split(strings.TrimPrefix(string(rel), "./"), "/")
}

// leafKind resolves the declared simple kind of an attribute's
// element. Hierarchies without a schema (or with unresolvable paths)
// validate as strings, i.e. not at all.
func (app *applier) leafKind(a *Attr) schema.Kind {
	if app.h.Schema == nil {
		return schema.String
	}
	el, err := app.h.Schema.Resolve(a.Path)
	if err != nil || el.Payload == nil {
		return schema.String
	}
	return el.Payload.Kind
}

// validateLeafValue mirrors datatree.Conform's simple-type checks:
// values written into Int/Float-typed leaves must parse.
func validateLeafValue(kind schema.Kind, attr schema.RelPath, v string) error {
	switch kind {
	case schema.Int:
		if _, err := strconv.ParseInt(strings.TrimSpace(v), 10, 64); err != nil {
			return fmt.Errorf("attribute %s: value %q is not an int", attr, v)
		}
	case schema.Float:
		if _, err := strconv.ParseFloat(strings.TrimSpace(v), 64); err != nil {
			return fmt.Errorf("attribute %s: value %q is not a float", attr, v)
		}
	}
	return nil
}

// graft adds a child with the given label under cur (whose absolute
// path is curPath), rejecting grafts that would put a second
// alternative under a Choice element — cold builds of such a document
// fail schema conformance, and the update path must never produce a
// document a rebuild rejects. Grafts self-invalidate the encoder
// cache of the enclosing subtree chain.
func (app *applier) graft(cur *datatree.Node, curPath schema.Path, label string) (*datatree.Node, error) {
	if s := app.h.Schema; s != nil {
		if el, err := s.Resolve(curPath); err == nil && el.Payload != nil && el.Payload.Kind == schema.Choice {
			for _, c := range cur.Children {
				if c.Label != label {
					return nil, fmt.Errorf("choice element %s has alternative %q present; cannot add %q",
						curPath, c.Label, label)
				}
			}
		}
	}
	n := app.ps.tree.Graft(cur, label)
	app.ps.enc.Invalidate(n)
	return n, nil
}

// ensurePath walks the non-final steps of a relative path from the
// pivot (whose absolute path is pivotPath), grafting missing
// intermediate nodes, and returns the node the final step hangs off,
// that node's absolute path, and the final label.
func (app *applier) ensurePath(pivot *datatree.Node, pivotPath schema.Path, rel schema.RelPath) (*datatree.Node, schema.Path, string, error) {
	steps := relSteps(rel)
	cur, curPath := pivot, pivotPath
	for _, step := range steps[:len(steps)-1] {
		next := cur.Child(step)
		if next == nil {
			var err error
			if next, err = app.graft(cur, curPath, step); err != nil {
				return nil, "", "", err
			}
		}
		cur, curPath = next, curPath.Child(step)
	}
	return cur, curPath, steps[len(steps)-1], nil
}

// graftAttr grafts the full relative path from the pivot and returns
// the final node (created valueless; callers set the value).
func (app *applier) graftAttr(pivot *datatree.Node, pivotPath schema.Path, rel schema.RelPath) (*datatree.Node, error) {
	parent, parentPath, last, err := app.ensurePath(pivot, pivotPath, rel)
	if err != nil {
		return nil, err
	}
	return app.graft(parent, parentPath, last)
}

func (app *applier) applySet(rel *Relation, op *Update) (int, error) {
	t, err := app.rowOf(rel, op.Key)
	if err != nil {
		return 0, err
	}
	ai := rel.AttrIndex(op.Attr)
	if ai < 0 {
		return 0, fmt.Errorf("no attribute %s", op.Attr)
	}
	if rel.Attrs[ai].Kind != Leaf {
		return 0, fmt.Errorf("attribute %s is %s, not a leaf (set leaf values; restructure via insert/delete)", op.Attr, rel.Attrs[ai].Kind)
	}
	if err := validateLeafValue(app.leafKind(&rel.Attrs[ai]), op.Attr, op.Value); err != nil {
		return 0, err
	}
	pivot := rel.nodes[t]
	node := descend(pivot, op.Attr)
	if node == nil {
		var err error
		if node, err = app.graftAttr(pivot, rel.Pivot, op.Attr); err != nil {
			// Intermediates may have been grafted before the Choice
			// rejection; schedule re-encoding so the columns stay
			// consistent with the mutated document.
			app.markAffected(rel, op.Key)
			app.markAncestors(rel, t)
			return 0, err
		}
	}
	node.Value = op.Value
	node.HasValue = true
	app.ps.enc.Invalidate(node)
	newCode := app.ps.in[rel.Index].code(ai, op.Value)
	rel.ColBound[ai] = app.ps.in[rel.Index].bound(ai)
	if rel.Cols[ai][t] != newCode {
		rel.Cols[ai][t] = newCode
		app.markDirty(rel, ai, t)
	}
	app.markAffected(rel, op.Key)
	app.markAncestors(rel, t)
	return op.Key, nil
}

func (app *applier) applyInsert(rel *Relation, op *Update) (int, error) {
	if !rel.Essential {
		return 0, fmt.Errorf("cannot insert into the root class")
	}
	parent := rel.Parent
	var pi int32
	if op.Parent == 0 {
		if parent.NRows() != 1 {
			return 0, fmt.Errorf("parent class %s has %d tuples; a parent key is required", parent.Pivot, parent.NRows())
		}
		pi = 0
	} else {
		var err error
		if pi, err = app.rowOf(parent, op.Parent); err != nil {
			return 0, fmt.Errorf("parent class %s: %w", parent.Pivot, err)
		}
	}
	// Validate the leaf values before touching anything.
	attrs := make([]schema.RelPath, 0, len(op.Values))
	for rp := range op.Values {
		ai := rel.AttrIndex(rp)
		if ai < 0 {
			return 0, fmt.Errorf("no attribute %s", rp)
		}
		if rel.Attrs[ai].Kind != Leaf {
			return 0, fmt.Errorf("attribute %s is %s, not a leaf", rp, rel.Attrs[ai].Kind)
		}
		if err := validateLeafValue(app.leafKind(&rel.Attrs[ai]), rp, op.Values[rp]); err != nil {
			return 0, err
		}
		attrs = append(attrs, rp)
	}
	sort.Slice(attrs, func(i, j int) bool { return attrs[i] < attrs[j] })

	// Graft the pivot node (creating intermediate containers on the
	// parent-to-pivot path as needed) and its leaf descendants. A
	// Choice rejection on the container path may leave grafted
	// intermediates behind; mark the parent tuple so re-encoding keeps
	// the columns consistent with the mutated document.
	var pivot *datatree.Node
	container, containerPath, label, err := app.ensurePath(parent.nodes[pi], parent.Pivot, schema.MustRelativize(parent.Pivot, rel.Pivot))
	if err == nil {
		if pivot, err = app.graft(container, containerPath, label); err == nil {
			for _, rp := range attrs {
				v := op.Values[rp]
				if rp == "." {
					pivot.Value = v
					pivot.HasValue = true
					continue
				}
				var leaf *datatree.Node
				if leaf, err = app.graftAttr(pivot, rel.Pivot, rp); err != nil {
					// Two Values under different alternatives of a
					// Choice: undo the half-built pivot so the tree
					// holds no tuple the relation never appended.
					app.ps.enc.Invalidate(pivot)
					app.ps.tree.Prune(pivot)
					break
				}
				leaf.Value = v
				leaf.HasValue = true
			}
		}
	}
	if err != nil {
		app.markAffected(parent, parent.Keys[pi])
		app.markAncestors(parent, pi)
		return 0, err
	}

	// Append the tuple row. Leaf columns are coded here; Complex and
	// SetValue columns get placeholder nulls and are coded by the
	// batch-final recompute pass (which marks real values dirty).
	t := rel.NRows()
	in := app.ps.in[rel.Index]
	for ai, a := range rel.Attrs {
		var code int64
		if a.Kind == Leaf {
			if node := descend(pivot, a.Rel); node != nil && node.HasValue {
				code = in.code(ai, node.Value)
				rel.ColBound[ai] = in.bound(ai)
			} else {
				code = nullCode(t)
			}
		} else {
			code = nullCode(t)
		}
		rel.Cols[ai] = append(rel.Cols[ai], code)
	}
	rel.nodes = append(rel.nodes, pivot)
	rel.Keys = append(rel.Keys, pivot.Key)
	rel.ParentIdx = append(rel.ParentIdx, pi)
	app.ps.rowByKey[rel.Index][pivot.Key] = int32(t)

	rc := app.change(rel)
	rc.Resized = true
	rc.rows[int32(t)] = struct{}{}
	app.markAffected(rel, pivot.Key)
	app.markAncestors(rel, int32(t))
	return pivot.Key, nil
}

func (app *applier) applyDelete(rel *Relation, op *Update) (int, error) {
	if !rel.Essential {
		return 0, fmt.Errorf("cannot delete the root class")
	}
	t, err := app.rowOf(rel, op.Key)
	if err != nil {
		return 0, err
	}
	// Ancestors first: the parent chain is unreadable once rows move.
	app.markAncestors(rel, t)

	// Detach the subtree from the document.
	node := rel.nodes[t]
	app.ps.enc.Invalidate(node)
	app.ps.tree.Prune(node)

	// Cascade: collect doomed rows per descendant class, top-down,
	// then delete bottom-up so parent-index fixups always see live
	// child rows.
	type doomed struct {
		r    *Relation
		rows []int32
	}
	frontier := []doomed{{r: rel, rows: []int32{t}}}
	for i := 0; i < len(frontier); i++ {
		d := frontier[i]
		in := make(map[int32]struct{}, len(d.rows))
		for _, row := range d.rows {
			in[row] = struct{}{}
		}
		for _, c := range d.r.Children {
			var rows []int32
			for ct, pi := range c.ParentIdx {
				if _, ok := in[pi]; ok {
					rows = append(rows, int32(ct))
				}
			}
			if len(rows) > 0 {
				frontier = append(frontier, doomed{r: c, rows: rows})
			}
		}
	}
	for i := len(frontier) - 1; i >= 0; i-- {
		app.deleteRows(frontier[i].r, frontier[i].rows)
	}
	return op.Key, nil
}

// deleteRows removes the given rows from the relation by swapping the
// last row into each vacated slot and truncating — no tombstones, so
// the result is a row permutation of a cold rebuild. Moved rows have
// their null codes renumbered to keep nullCode(row) row-unique, and
// child relations' parent indices are redirected to the moved slot.
func (app *applier) deleteRows(r *Relation, rows []int32) {
	rc := app.change(r)
	rc.Resized = true
	byKey := app.ps.rowByKey[r.Index]
	sort.Slice(rows, func(i, j int) bool { return rows[i] > rows[j] })
	for _, d := range rows {
		last := int32(r.NRows() - 1)
		delete(byKey, r.Keys[d])
		if d != last {
			for ai := range r.Cols {
				v := r.Cols[ai][last]
				if v < 0 {
					v = nullCode(int(d))
				}
				r.Cols[ai][d] = v
			}
			r.Keys[d] = r.Keys[last]
			r.nodes[d] = r.nodes[last]
			r.ParentIdx[d] = r.ParentIdx[last]
			byKey[r.Keys[d]] = d
			for _, c := range r.Children {
				for i, pi := range c.ParentIdx {
					if pi == last {
						c.ParentIdx[i] = d
					}
				}
			}
			rc.rows[d] = struct{}{}
		}
		for ai := range r.Cols {
			r.Cols[ai] = r.Cols[ai][:last]
		}
		r.Keys = r.Keys[:last]
		r.nodes = r.nodes[:last]
		r.ParentIdx = r.ParentIdx[:last]
	}
}

// recompute is the batch-final pass: for every tuple marked affected,
// re-encode its Complex columns (subtree codes) and SetValue columns
// (multiset/list codes of the child collections, in document order),
// recording dirt only for codes that actually changed — an update
// deep in a subtree usually leaves most enclosing codes intact, and
// clean columns keep their warm partitions.
func (app *applier) recompute() {
	h, ps := app.h, app.ps
	for _, r := range h.Relations {
		m := app.affected[r.Index]
		if len(m) == 0 {
			continue
		}
		keys := make([]int, 0, len(m))
		for k := range m {
			keys = append(keys, k)
		}
		sort.Ints(keys)
		rows := make([]int32, 0, len(keys))
		for _, k := range keys {
			if t, ok := ps.rowByKey[r.Index][k]; ok {
				rows = append(rows, t) // deleted tuples drop out here
			}
		}
		for ai, a := range r.Attrs {
			switch a.Kind {
			case Complex:
				for _, t := range rows {
					var code int64
					if node := descend(r.nodes[t], a.Rel); node == nil {
						code = nullCode(int(t))
					} else {
						code = ps.dense(r, ai, int64(ps.enc.Encode(node)))
					}
					if r.Cols[ai][t] != code {
						r.Cols[ai][t] = code
						app.markDirty(r, ai, t)
					}
				}
			case SetValue:
				for _, t := range rows {
					members := app.setMembers(r.nodes[t], a.Rel)
					var code int64
					if len(members) == 0 {
						code = nullCode(int(t))
					} else if h.OrderedSets {
						code = ps.dense(r, ai, int64(ps.enc.ListCode(members)))
					} else {
						code = ps.dense(r, ai, int64(ps.enc.MultisetCode(members)))
					}
					if r.Cols[ai][t] != code {
						r.Cols[ai][t] = code
						app.markDirty(r, ai, t)
					}
				}
			}
		}
	}
}

// setMembers returns the member nodes of a set element beneath the
// pivot, in document order (which is what cold builds see, so ordered
// list codes stay comparable).
func (app *applier) setMembers(pivot *datatree.Node, rel schema.RelPath) []*datatree.Node {
	steps := relSteps(rel)
	cur := pivot
	for _, step := range steps[:len(steps)-1] {
		if cur = cur.Child(step); cur == nil {
			return nil
		}
	}
	return cur.ChildrenLabeled(steps[len(steps)-1])
}
