// Package relation implements the hierarchical representation of an
// XML document (the paper's Section 4.1, Figure 6): one relation per
// essential tuple class (Section 3.2.2), i.e. per set element of the
// schema. Each relation carries
//
//   - a @key column (the pivot node's pre-order key),
//   - a parent column linking each tuple to its tuple in the
//     lowest-repeatable-ancestor tuple class,
//   - one value column per non-repeatable schema element whose longest
//     repeatable prefix is the pivot path (leaf elements are
//     dictionary-encoded by value, complex elements by the canonical
//     code of their subtree under node-value equality), and
//   - one *set pseudo-attribute* per child set element (Section 4.4):
//     the canonical code of the unordered collection of that child's
//     subtrees beneath the tuple, which lets the ordinary partition
//     machinery discover FDs whose LHS or RHS is a set element (the
//     paper's FD 3 and FD 4).
//
// Missing elements receive a unique negative code per tuple, which
// realizes strong satisfaction (nulls differ from everything,
// including each other) directly in the partitions.
package relation

import (
	"context"
	"errors"
	"fmt"
	"strconv"
	"strings"
	"sync"
	"time"

	"discoverxfd/internal/datatree"
	"discoverxfd/internal/partition"
	"discoverxfd/internal/schema"
	"discoverxfd/internal/source"
)

// AttrKind classifies relation attributes.
type AttrKind int

const (
	// Leaf is a simple-typed, non-repeatable element; its code is a
	// dictionary code of the (type-normalized) value.
	Leaf AttrKind = iota
	// Complex is a record/choice-typed, non-repeatable element; its
	// code is the canonical code of its subtree (node-value equality).
	Complex
	// SetValue is a set pseudo-attribute for a child set element; its
	// code identifies the unordered collection of child subtrees
	// (or the ordered list, if the representation was built with
	// OrderedSets).
	SetValue
)

func (k AttrKind) String() string {
	switch k {
	case Leaf:
		return "leaf"
	case Complex:
		return "complex"
	case SetValue:
		return "set"
	default:
		return fmt.Sprintf("AttrKind(%d)", int(k))
	}
}

// Attr is one attribute (column) of a relation.
type Attr struct {
	// Rel is the attribute's path relative to the pivot, e.g.
	// "./contact/name", or "." for the self value of a simple set
	// element such as author.
	Rel schema.RelPath
	// Path is the absolute schema path of the attribute's element.
	Path schema.Path
	// Kind classifies how the column was encoded.
	Kind AttrKind
}

// Name returns the attribute's display name: the relative path
// without the leading "./".
func (a Attr) Name() string {
	s := string(a.Rel)
	if s == "." {
		return "."
	}
	return strings.TrimPrefix(s, "./")
}

// Relation is one relation of the hierarchical representation,
// corresponding to the tuple class C_p for pivot path p.
type Relation struct {
	// Pivot is the pivot path of the tuple class.
	Pivot schema.Path
	// Index is the relation's position in Hierarchy.Relations (root
	// first, top-down), assigned once at layout time. Per-run engine
	// state (depth tables, null-row indexes) is kept in plain slices
	// indexed by it, avoiding pointer-keyed maps whose iteration order
	// the determinism analyzers would otherwise have to reason about.
	// Relations built outside a Hierarchy (single-relation baselines,
	// hand-assembled tests) leave it 0.
	Index int
	// Essential reports whether the tuple class is essential (pivot
	// is a repeatable path). The synthetic root relation is the only
	// non-essential one; it anchors top-level set elements.
	Essential bool
	// Parent is the relation of the lowest-repeatable-ancestor tuple
	// class (nil for the root relation).
	Parent *Relation
	// Children are the relations whose lowest-repeatable-ancestor
	// class is this one, in schema declaration order.
	Children []*Relation

	// Attrs describes the value columns.
	Attrs []Attr
	// Cols holds one code slice per attribute, indexed like Attrs;
	// Cols[a][t] is the code of attribute a in tuple t. Codes < 0 are
	// nulls (unique per tuple).
	Cols [][]int64
	// ColBound holds, per attribute, the exclusive upper bound of the
	// column's interned codes: non-null codes are dense in
	// [1, ColBound[a]). A bound of 0 (or a nil slice, for hand-built
	// relations) means the column is not dense-coded and partition
	// builds fall back to the generic hashing path.
	ColBound []int64
	// Keys holds the pivot node's pre-order key per tuple (the @key
	// column).
	Keys []int
	// ParentIdx holds, per tuple, the row index of its parent tuple
	// in Parent (-1 only in the root relation).
	ParentIdx []int32

	nodes []*datatree.Node // pivot nodes, parallel to tuples
}

// NRows returns the number of tuples.
func (r *Relation) NRows() int { return len(r.Keys) }

// NAttrs returns the number of value columns.
func (r *Relation) NAttrs() int { return len(r.Attrs) }

// AttrIndex returns the index of the attribute with the given
// relative path, or -1.
func (r *Relation) AttrIndex(rel schema.RelPath) int {
	for i, a := range r.Attrs {
		if a.Rel == rel {
			return i
		}
	}
	return -1
}

// Node returns the pivot data node of tuple t (for witness
// reporting).
func (r *Relation) Node(t int) *datatree.Node { return r.nodes[t] }

// ColumnPartition builds the striped partition of a single column,
// using the dense counting path when the column's codes were interned
// (ColBound known) and the generic hashing path otherwise.
func (r *Relation) ColumnPartition(attr int) *partition.Partition {
	if attr < len(r.ColBound) {
		return partition.FromDense(r.Cols[attr], r.ColBound[attr])
	}
	return partition.FromCodes(r.Cols[attr])
}

// Hierarchy is the full hierarchical representation of a document:
// the relation tree plus lookup tables.
type Hierarchy struct {
	// Root is the synthetic root relation (non-essential, one tuple).
	Root *Relation
	// Relations lists all relations in top-down (BFS) order, root
	// first.
	Relations []*Relation
	// Schema is the schema the representation was built against.
	Schema *schema.Schema
	// OrderedSets records whether set pseudo-attributes used ordered
	// list semantics instead of the default unordered multiset
	// semantics (Section 4.5 ablation).
	OrderedSets bool
	// Truncated reports that tuple ingestion stopped early because a
	// resource budget (Options.MaxTuples or Options.Deadline) ran out;
	// the representation is structurally consistent but covers only a
	// prefix of the document's tuples. TruncatedReason says which
	// budget was exhausted.
	Truncated       bool
	TruncatedReason string

	byPivot map[schema.Path]*Relation

	// mu serializes document updates against discovery runs: Apply
	// holds the write side, runs and evaluations the read side (see
	// Lock/RLock). The zero value works for hand-assembled hierarchies.
	mu sync.RWMutex
	// upd is the retained encoding state (tree, subtree encoder,
	// interners, densifier remaps) that makes in-place updates
	// possible; nil for streamed or hand-assembled hierarchies.
	upd *patchState
}

// RLock takes the hierarchy's read lock. Discovery runs and direct
// evaluations hold it for their whole duration, so updates (which
// take Lock) never observe — or publish partitions into — a run in
// flight.
func (h *Hierarchy) RLock() { h.mu.RLock() }

// RUnlock releases the read lock.
func (h *Hierarchy) RUnlock() { h.mu.RUnlock() }

// Lock takes the hierarchy's write lock for a document update.
func (h *Hierarchy) Lock() { h.mu.Lock() }

// Unlock releases the write lock.
func (h *Hierarchy) Unlock() { h.mu.Unlock() }

// truncate records the first budget exhaustion; later ones keep the
// original reason.
func (h *Hierarchy) truncate(reason string) {
	if !h.Truncated {
		h.Truncated = true
		h.TruncatedReason = reason
	}
}

// ByPivot returns the relation with the given pivot path, or nil.
func (h *Hierarchy) ByPivot(p schema.Path) *Relation { return h.byPivot[p] }

// EssentialRelations returns the relations of essential tuple
// classes in top-down order.
func (h *Hierarchy) EssentialRelations() []*Relation {
	out := make([]*Relation, 0, len(h.Relations))
	for _, r := range h.Relations {
		if r.Essential {
			out = append(out, r)
		}
	}
	return out
}

// TotalTuples returns the total number of tuples across all
// essential relations (the paper's measure of hierarchical
// representation size, contrasted with the multiplicative flat tuple
// count).
func (h *Hierarchy) TotalTuples() int {
	n := 0
	for _, r := range h.Relations {
		if r.Essential {
			n += r.NRows()
		}
	}
	return n
}

// Options configures Build.
type Options struct {
	// OrderedSets switches set pseudo-attributes from unordered
	// multiset semantics (the paper's choice) to ordered list
	// semantics, for the Section 4.5 order ablation.
	OrderedSets bool
	// DisableSetAttrs omits set pseudo-attributes entirely, which
	// restricts discovery to the FD notions of Arenas & Libkin and
	// Vincent et al. (no set-element FDs).
	DisableSetAttrs bool
	// MaxTuples caps the total number of tuples ingested across all
	// essential relations. When the cap is reached, Build/BuildStream
	// stop adding tuples and mark the hierarchy Truncated instead of
	// failing — graceful degradation for oversized inputs. 0 means
	// unlimited.
	MaxTuples int
	// Deadline, when nonzero, is the wall-clock instant past which
	// tuple ingestion stops, marking the hierarchy Truncated. The
	// caller owns the overall budget and passes the absolute deadline
	// down; cancellation (an error, not truncation) comes from the
	// context instead.
	Deadline time.Time
	// Parse bounds the streaming XML parse of BuildStream. The zero
	// value applies datatree.DefaultLimits; set MaxDepth negative to
	// lift the default depth bound. Parse-limit violations are hard
	// errors (malformed or hostile input), not truncation.
	Parse datatree.ParseLimits
}

// parseLimits resolves the zero value to the datatree defaults.
func (o Options) parseLimits() datatree.ParseLimits {
	if o.Parse == (datatree.ParseLimits{}) {
		return datatree.DefaultLimits()
	}
	return o.Parse
}

// budgetCheckInterval is how many tuples are ingested between
// deadline/cancellation checks during hierarchy construction.
const budgetCheckInterval = 1024

// buildBudget enforces Options.MaxTuples, Options.Deadline, and
// context cancellation during hierarchy construction. Cancellation is
// an error; budget exhaustion truncates the hierarchy.
type buildBudget struct {
	ctx    context.Context
	opts   *Options
	h      *Hierarchy
	tuples int
}

// admit reports whether one more tuple may be ingested. It returns
// false once a budget is exhausted (marking the hierarchy truncated)
// and an error if the context was cancelled.
func (b *buildBudget) admit() (bool, error) {
	if b.h.Truncated {
		return false, nil
	}
	if b.tuples%budgetCheckInterval == 0 {
		if !b.opts.Deadline.IsZero() && time.Now().After(b.opts.Deadline) {
			b.h.truncate(buildDeadlineReason)
			return false, nil
		}
		if err := b.cancelled(); err != nil {
			return false, err
		}
		if b.h.Truncated { // cancelled() converted a fired ctx deadline
			return false, nil
		}
	}
	if b.opts.MaxTuples > 0 && b.tuples >= b.opts.MaxTuples {
		b.h.truncate(fmt.Sprintf("tuple budget of %d exhausted", b.opts.MaxTuples))
		return false, nil
	}
	b.tuples++
	return true, nil
}

const buildDeadlineReason = "deadline exceeded during hierarchy build"

// cancelled reports explicit cancellation as an error. Like the
// engine's governor, one carve-out keeps deadline composition
// deterministic: a context that died of its own *deadline* while the
// build's composed wall-clock budget is also spent is budget
// exhaustion, not cancellation — the hierarchy is marked truncated
// and construction finishes its structurally consistent snapshot
// instead of erroring. (The caller composes Options.Deadline as
// min(Limits.Deadline, ctx deadline), so a fired ctx deadline always
// implies a spent budget.)
func (b *buildBudget) cancelled() error {
	err := b.ctx.Err()
	if err == nil {
		return nil
	}
	if errors.Is(err, context.DeadlineExceeded) &&
		!b.opts.Deadline.IsZero() && !time.Now().Before(b.opts.Deadline) {
		b.h.truncate(buildDeadlineReason)
		return nil
	}
	return fmt.Errorf("relation: build cancelled: %w", err)
}

// Build constructs the hierarchical representation of the tree under
// the schema. The tree must conform to the schema (see
// datatree.Conform); Build reports an error on the first
// non-conforming structure it hits.
func Build(t *datatree.Tree, s *schema.Schema, opts Options) (*Hierarchy, error) {
	return BuildContext(context.Background(), t, s, opts)
}

// BuildContext is Build with cancellation. Context cancellation is
// checked periodically and returns an error; exhausting
// Options.MaxTuples or Options.Deadline instead stops ingestion early
// and returns a structurally consistent hierarchy with Truncated set.
func BuildContext(ctx context.Context, t *datatree.Tree, s *schema.Schema, opts Options) (*Hierarchy, error) {
	if t == nil {
		return nil, ErrEmptyTree
	}
	return Ingest(ctx, source.Input{Tree: t}, s, opts)
}

// layoutHierarchy lays out the relation tree and each relation's
// value attributes from the schema alone (no data).
func layoutHierarchy(s *schema.Schema, opts Options) (*Hierarchy, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	h := &Hierarchy{Schema: s, OrderedSets: opts.OrderedSets, byPivot: make(map[schema.Path]*Relation)}
	rootPath := schema.PathOf(s.Root)
	h.Root = &Relation{Pivot: rootPath, Essential: false}
	h.byPivot[rootPath] = h.Root
	h.Relations = append(h.Relations, h.Root)

	var layout func(r *Relation, el schema.Element)
	layout = func(r *Relation, el schema.Element) {
		// Walk the payload of the pivot element, collecting
		// non-repeatable descendants as attributes and set elements
		// as child relations.
		if el.Payload.Kind.IsSimple() {
			if el.Repeatable {
				// e.g. author: SetOf str — the tuple's own value.
				r.Attrs = append(r.Attrs, Attr{Rel: ".", Path: el.Path, Kind: Leaf})
			}
			return
		}
		var walk func(p schema.Path, tp *schema.Type)
		walk = func(p schema.Path, tp *schema.Type) {
			for _, f := range tp.Fields {
				cp := p.Child(f.Label)
				rel := schema.MustRelativize(r.Pivot, cp)
				if f.Type.Kind == schema.Set {
					child := &Relation{Pivot: cp, Essential: true, Parent: r}
					r.Children = append(r.Children, child)
					h.byPivot[cp] = child
					h.Relations = append(h.Relations, child)
					if !opts.DisableSetAttrs {
						r.Attrs = append(r.Attrs, Attr{Rel: rel, Path: cp, Kind: SetValue})
					}
					payload := f.Type.Elem
					childEl := schema.Element{Path: cp, Label: f.Label, Type: f.Type, Repeatable: true, Payload: payload}
					layout(child, childEl)
					continue
				}
				if f.Type.Kind.IsSimple() {
					r.Attrs = append(r.Attrs, Attr{Rel: rel, Path: cp, Kind: Leaf})
					continue
				}
				// Non-repeatable complex element: both an attribute
				// (compared by subtree value, consistent with
				// path-value equality) and a container to descend
				// into, per Figures 5–7 where both contact and
				// contact/name are columns of R_store.
				r.Attrs = append(r.Attrs, Attr{Rel: rel, Path: cp, Kind: Complex})
				walk(cp, f.Type)
			}
		}
		walk(el.Path, el.Payload)
	}
	rootEl, err := s.Resolve(rootPath)
	if err != nil {
		return nil, err
	}
	layout(h.Root, rootEl)
	for i, r := range h.Relations {
		r.Index = i
	}
	return h, nil
}

// populateTuples finds the pivot nodes of relation r underneath each
// parent tuple. The descent from the parent pivot to r's pivot
// crosses only non-set elements except for the final step. Ingestion
// stops early (without error) once the build budget is exhausted.
func populateTuples(r *Relation, bb *buildBudget) error {
	rel := schema.MustRelativize(r.Parent.Pivot, r.Pivot)
	steps := strings.Split(strings.TrimPrefix(string(rel), "./"), "/")
	for pi, pnode := range r.Parent.nodes {
		frontier := []*datatree.Node{pnode}
		for _, step := range steps[:len(steps)-1] {
			var next []*datatree.Node
			for _, n := range frontier {
				if c := n.Child(step); c != nil {
					next = append(next, c)
				}
			}
			frontier = next
		}
		last := steps[len(steps)-1]
		for _, n := range frontier {
			for _, c := range n.ChildrenLabeled(last) {
				ok, err := bb.admit()
				if err != nil {
					return err
				}
				if !ok {
					return nil
				}
				r.nodes = append(r.nodes, c)
				r.Keys = append(r.Keys, c.Key)
				r.ParentIdx = append(r.ParentIdx, int32(pi))
			}
		}
	}
	return nil
}

// populateColumns encodes the Leaf and Complex attribute columns of
// the relation, interning values into dense per-column codes (one
// shared string table per relation). SetValue columns are filled
// later by fillSetColumns.
func populateColumns(bb *buildBudget, r *Relation, ps *patchState) error {
	enc := ps.enc
	n := r.NRows()
	r.Cols = make([][]int64, len(r.Attrs))
	r.ColBound = make([]int64, len(r.Attrs))
	in := newInterner(len(r.Attrs))
	ps.in[r.Index] = in
	ps.remap[r.Index] = make([]map[int64]int64, len(r.Attrs))
	for ai, a := range r.Attrs {
		// A deadline truncation must not abort mid-relation: every
		// attribute's column slice has to exist for the truncated
		// snapshot to stay structurally consistent, so cancelled()
		// converts a fired composed deadline into truncation and lets
		// the (already-bounded) population finish.
		if err := bb.cancelled(); err != nil {
			return err
		}
		col := make([]int64, n)
		r.Cols[ai] = col
		if a.Kind == SetValue {
			continue
		}
		for ti, pivot := range r.nodes {
			node := descend(pivot, a.Rel)
			switch {
			case node == nil:
				col[ti] = nullCode(ti)
			case a.Kind == Complex:
				col[ti] = int64(enc.Encode(node))
			default: // Leaf
				if !node.HasValue {
					col[ti] = nullCode(ti)
					continue
				}
				col[ti] = in.code(ai, node.Value)
			}
		}
		if a.Kind == Complex {
			// Encoder codes are dense across the document but sparse
			// within one column; remap per column so partition builds
			// stay on the counting path. The remap is retained for
			// incremental re-encoding.
			remap := make(map[int64]int64)
			ps.remap[r.Index][ai] = remap
			r.ColBound[ai] = densifyInto(col, remap)
		} else {
			r.ColBound[ai] = in.bound(ai)
		}
	}
	return nil
}

// fillSetColumns encodes the SetValue columns of r by grouping each
// child relation's tuples under their parent tuple and taking the
// multiset (or list) code of the child subtrees. An empty collection
// is a missing element — the path matches no node — and therefore a
// null.
func fillSetColumns(h *Hierarchy, r *Relation, ps *patchState, ordered bool) {
	enc := ps.enc
	for ai, a := range r.Attrs {
		if a.Kind != SetValue {
			continue
		}
		child := h.byPivot[a.Path]
		members := make([][]*datatree.Node, r.NRows())
		for ct, pi := range child.ParentIdx {
			members[pi] = append(members[pi], child.nodes[ct])
		}
		col := r.Cols[ai]
		for ti := range col {
			if len(members[ti]) == 0 {
				col[ti] = nullCode(ti)
				continue
			}
			if ordered {
				col[ti] = int64(enc.ListCode(members[ti]))
			} else {
				col[ti] = int64(enc.MultisetCode(members[ti]))
			}
		}
		if ai < len(r.ColBound) {
			remap := make(map[int64]int64)
			ps.remap[r.Index][ai] = remap
			r.ColBound[ai] = densifyInto(col, remap)
		}
	}
}

// descend follows a relative path of non-set steps from the pivot
// node; "." returns the pivot itself. Returns nil if any step is
// missing.
func descend(pivot *datatree.Node, rel schema.RelPath) *datatree.Node {
	if rel == "." {
		return pivot
	}
	n := pivot
	for _, step := range strings.Split(strings.TrimPrefix(string(rel), "./"), "/") {
		n = n.Child(step)
		if n == nil {
			return nil
		}
	}
	return n
}

// nullCode returns the unique negative code for a missing value in
// row ti.
func nullCode(ti int) int64 { return -int64(ti) - 1 }

// IsNull reports whether a column code represents a missing value.
func IsNull(code int64) bool { return code < 0 }

// String renders the relation in a compact tabular debug form.
func (r *Relation) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "R(%s)%s  @key parent", r.Pivot, map[bool]string{true: "", false: " [root]"}[r.Essential])
	for _, a := range r.Attrs {
		b.WriteByte(' ')
		b.WriteString(a.Name())
	}
	b.WriteByte('\n')
	for t := 0; t < r.NRows(); t++ {
		fmt.Fprintf(&b, "  t%d: %d %d", t, r.Keys[t], r.ParentIdx[t])
		for ai := range r.Attrs {
			b.WriteByte(' ')
			b.WriteString(strconv.FormatInt(r.Cols[ai][t], 10))
		}
		b.WriteByte('\n')
	}
	return b.String()
}
