package flat

import (
	"fmt"
	"strings"
	"testing"

	"discoverxfd/internal/core"
	"discoverxfd/internal/datatree"
	"discoverxfd/internal/schema"
)

var s = schema.MustParse(`
store: Rcd
  name: str
  book: SetOf Rcd
    isbn: str
    author: SetOf str
  review: SetOf str
`)

func parse(t *testing.T, xml string) *datatree.Tree {
	t.Helper()
	tr, err := datatree.ParseXMLString(xml)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	return tr
}

const doc = `
<store>
  <name>S</name>
  <book><isbn>1</isbn><author>A</author><author>B</author></book>
  <book><isbn>2</isbn><author>C</author></book>
  <review>good</review>
  <review>bad</review>
  <review>ugly</review>
</store>`

// TestCountRowsMultiplicative checks the Section 4.1 blow-up: tree
// tuples multiply across unrelated set elements — (2+1) author
// choices times 3 review choices.
func TestCountRowsMultiplicative(t *testing.T) {
	tr := parse(t, doc)
	n, err := CountRows(tr, s)
	if err != nil {
		t.Fatal(err)
	}
	// books contribute (2 authors) + (1 author) = 3 book-tuples;
	// reviews contribute 3; total 3 * 3 = 9.
	if n != 9 {
		t.Fatalf("CountRows = %d, want 9", n)
	}
}

func TestBuildMatchesCount(t *testing.T) {
	tr := parse(t, doc)
	tbl, err := Build(tr, s, 0)
	if err != nil {
		t.Fatal(err)
	}
	n, _ := CountRows(tr, s)
	if int64(tbl.NRows) != n {
		t.Fatalf("Build rows %d != CountRows %d", tbl.NRows, n)
	}
	// Columns: store, name, book, isbn, author, review = 6.
	if len(tbl.Columns) != 6 {
		t.Fatalf("columns: %v", tbl.Columns)
	}
}

func TestBuildRespectsCap(t *testing.T) {
	tr := parse(t, doc)
	if _, err := Build(tr, s, 5); err == nil || !strings.Contains(err.Error(), "above the cap") {
		t.Fatalf("expected cap error, got %v", err)
	}
}

// TestFlatTupleSemantics checks the Figure 5 structure: each flat
// tuple picks one node per schema element; complex columns carry node
// keys; missing picks are unique nulls.
func TestFlatTupleSemantics(t *testing.T) {
	tr := parse(t, `
<store>
  <name>S</name>
  <book><isbn>1</isbn><author>A</author></book>
  <book><isbn>2</isbn></book>
</store>`)
	tbl, err := Build(tr, s, 0)
	if err != nil {
		t.Fatal(err)
	}
	if tbl.NRows != 2 {
		t.Fatalf("rows = %d, want 2 (review missing contributes one null fragment)", tbl.NRows)
	}
	col := func(p schema.Path) []int64 {
		for i, c := range tbl.Columns {
			if c == p {
				return tbl.Cols[i]
			}
		}
		t.Fatalf("no column %s", p)
		return nil
	}
	// name column is the same (shared) value in both tuples.
	name := col("/store/name")
	if name[0] != name[1] {
		t.Fatalf("shared name must have equal codes: %v", name)
	}
	// The second book has no author: unique null.
	author := col("/store/book/author")
	if author[0] < 0 || author[1] >= 0 {
		t.Fatalf("author column: %v", author)
	}
	// review is missing entirely: both tuples have (distinct) nulls.
	review := col("/store/review")
	if review[0] >= 0 || review[1] >= 0 || review[0] == review[1] {
		t.Fatalf("missing reviews must be unique nulls: %v", review)
	}
	// book column carries node keys (positive, distinct).
	book := col("/store/book")
	if book[0] <= 0 || book[1] <= 0 || book[0] == book[1] {
		t.Fatalf("book column must carry distinct node keys: %v", book)
	}
}

// TestFlatDiscoverFindsIntraFDs runs the TANE baseline over a small
// relation-like document and checks it finds the obvious FD while
// being structurally unable to express set-element FDs.
func TestFlatDiscoverFindsIntraFDs(t *testing.T) {
	s2 := schema.MustParse(`
db: Rcd
  row: SetOf Rcd
    a: str
    b: str
`)
	tr := parse(t, `
<db>
  <row><a>1</a><b>x</b></row>
  <row><a>1</a><b>x</b></row>
  <row><a>2</a><b>y</b></row>
</db>`)
	tbl, err := Build(tr, s2, 0)
	if err != nil {
		t.Fatal(err)
	}
	fds, keys, stats, err := tbl.Discover(core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Tuples != 3 {
		t.Fatalf("tuples = %d", stats.Tuples)
	}
	found := false
	for _, fd := range fds {
		if string(fd.RHS) == "./row/b" && len(fd.LHS) == 1 && string(fd.LHS[0]) == "./row/a" {
			found = true
		}
	}
	if !found {
		t.Fatalf("TANE baseline should find a -> b; got %v", fds)
	}
	// No discovered FD may mention a set *collection*: the flat
	// representation has no such column.
	for _, fd := range append([]core.FD(nil), fds...) {
		for _, p := range append(fd.LHS, fd.RHS) {
			if strings.HasSuffix(string(p), "/row") {
				t.Fatalf("flat discovery produced a set-collection path: %v", fd)
			}
		}
	}
	_ = keys
}

// TestFlatCannotSeeSetFDs demonstrates the semantic gap of Section
// 2.3: two books with equal author sets in different orders violate
// flat-column agreement, so isbn -> author is NOT found flat, while
// the set-aware hierarchical machinery finds it.
func TestFlatCannotSeeSetFDs(t *testing.T) {
	tr := parse(t, `
<store>
  <name>S</name>
  <book><isbn>1</isbn><author>A</author><author>B</author></book>
  <book><isbn>1</isbn><author>B</author><author>A</author></book>
</store>`)
	tbl, err := Build(tr, s, 0)
	if err != nil {
		t.Fatal(err)
	}
	fds, _, _, err := tbl.Discover(core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, fd := range fds {
		if string(fd.RHS) == "./book/author" && len(fd.LHS) == 1 && string(fd.LHS[0]) == "./book/isbn" {
			t.Fatalf("flat representation must not capture the set FD isbn -> author (it compares single author nodes)")
		}
	}
}

// TestFlatDiscoverWidthGuard checks the 64-attribute bitset limit is
// enforced rather than silently wrapping.
func TestFlatDiscoverWidthGuard(t *testing.T) {
	text := "t: Rcd\n  r: SetOf Rcd\n"
	xml := "<t><r>"
	for i := 0; i < 70; i++ {
		text += fmt.Sprintf("    a%d: str\n", i)
		xml += fmt.Sprintf("<a%d>v</a%d>", i, i)
	}
	xml += "</r><r><a0>w</a0></r></t>"
	s70 := schema.MustParse(text)
	tr := parse(t, xml)
	tbl, err := Build(tr, s70, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, _, err := tbl.Discover(core.Options{}); err == nil || !strings.Contains(err.Error(), "at most 64") {
		t.Fatalf("expected width error, got %v", err)
	}
}
