// Package flat implements the flat representation of an XML document
// (the paper's Section 4.1, Figure 5): the single relation of fully
// unnested tree tuples in the sense of Arenas & Libkin, with one
// column per schema element. Leaf columns hold dictionary-encoded
// values; complex columns hold the node key of the chosen node,
// exactly as Figure 5 shows; missing elements get unique null codes
// (strong satisfaction).
//
// The flat representation is the substrate for the baseline the paper
// contrasts DiscoverXFD against: running a relational FD discovery
// algorithm (TANE-style DiscoverFD) over the unnested relation. Its
// two deficiencies motivate the paper's design — the tuple count
// grows multiplicatively with unrelated set elements, and FDs over
// set elements are not expressible — and the experiment harness (E3)
// measures both.
package flat

import (
	"fmt"

	"discoverxfd/internal/core"
	"discoverxfd/internal/datatree"
	"discoverxfd/internal/relation"
	"discoverxfd/internal/schema"
)

// Table is the flat relation.
type Table struct {
	// Columns lists the schema element paths, one per column, in
	// schema walk order (the root element is column 0).
	Columns []schema.Path
	// Cols holds the code matrix, Cols[c][row]; codes < 0 are nulls.
	Cols [][]int64
	// NRows is the number of flat tuples.
	NRows int
	// Schema is the schema the table was built against.
	Schema *schema.Schema
}

// nullSentinel marks a missing value during construction; a post-pass
// rewrites each occurrence to a unique negative code.
const nullSentinel = int64(-1)

// CountRows computes the number of flat tuples of the document
// without materializing them — the product, over every branching set
// element, of its member counts. Used by experiment E3 to report the
// multiplicative blow-up even at sizes that are impractical to build.
func CountRows(t *datatree.Tree, s *schema.Schema) (int64, error) {
	rootEl, err := s.Resolve(schema.PathOf(s.Root))
	if err != nil {
		return 0, err
	}
	var count func(n *datatree.Node, el schema.Element) int64
	count = func(n *datatree.Node, el schema.Element) int64 {
		if el.Payload.Kind.IsSimple() {
			return 1
		}
		total := int64(1)
		for _, f := range el.Payload.Fields {
			childEl := fieldElement(el, f)
			if f.Type.Kind == schema.Set {
				var members []*datatree.Node
				if n != nil {
					members = n.ChildrenLabeled(f.Label)
				}
				if len(members) == 0 {
					continue // one all-null fragment
				}
				sum := int64(0)
				for _, m := range members {
					sum += count(m, childEl)
				}
				total *= sum
			} else {
				var child *datatree.Node
				if n != nil {
					child = n.Child(f.Label)
				}
				total *= count(child, childEl)
			}
			if total < 0 {
				return 1 << 62 // overflow guard
			}
		}
		return total
	}
	return count(t.Root, rootEl), nil
}

// Build materializes the flat relation. maxRows guards against the
// multiplicative blow-up: if the tuple count would exceed it, Build
// fails (0 means 1<<20).
func Build(t *datatree.Tree, s *schema.Schema, maxRows int64) (*Table, error) {
	if maxRows <= 0 {
		maxRows = 1 << 20
	}
	n, err := CountRows(t, s)
	if err != nil {
		return nil, err
	}
	if n > maxRows {
		return nil, fmt.Errorf("flat: document unnests to %d tuples, above the cap of %d", n, maxRows)
	}

	// Column layout: pre-order walk; each element owns a contiguous
	// span [start(e), end(e)) of columns covering itself and its
	// descendants.
	var columns []schema.Path
	start := make(map[schema.Path]int)
	end := make(map[schema.Path]int)
	var layout func(el schema.Element)
	layout = func(el schema.Element) {
		start[el.Path] = len(columns)
		columns = append(columns, el.Path)
		if el.Payload.Kind == schema.Record || el.Payload.Kind == schema.Choice {
			for _, f := range el.Payload.Fields {
				layout(fieldElement(el, f))
			}
		}
		end[el.Path] = len(columns)
	}
	rootEl, err := s.Resolve(schema.PathOf(s.Root))
	if err != nil {
		return nil, err
	}
	layout(rootEl)

	dicts := make([]map[string]int64, len(columns))
	for i := range dicts {
		dicts[i] = make(map[string]int64)
	}

	// expand returns the row fragments for the span of el, given the
	// single chosen node for el (nil = missing).
	var expand func(n *datatree.Node, el schema.Element) [][]int64
	expand = func(n *datatree.Node, el schema.Element) [][]int64 {
		width := end[el.Path] - start[el.Path]
		if n == nil {
			frag := make([]int64, width)
			for i := range frag {
				frag[i] = nullSentinel
			}
			return [][]int64{frag}
		}
		var self int64
		if el.Payload.Kind.IsSimple() {
			if n.HasValue {
				d := dicts[start[el.Path]]
				code, ok := d[n.Value]
				if !ok {
					code = int64(len(d) + 1)
					d[n.Value] = code
				}
				self = code
			} else {
				self = nullSentinel
			}
			return [][]int64{{self}}
		}
		self = int64(n.Key) // complex columns hold node keys (Figure 5)
		frags := [][]int64{{self}}
		for _, f := range el.Payload.Fields {
			childEl := fieldElement(el, f)
			var alternatives [][]int64
			if f.Type.Kind == schema.Set {
				for _, m := range n.ChildrenLabeled(f.Label) {
					alternatives = append(alternatives, expand(m, childEl)...)
				}
				if len(alternatives) == 0 {
					alternatives = expand(nil, childEl)
				}
			} else {
				alternatives = expand(n.Child(f.Label), childEl)
			}
			next := make([][]int64, 0, len(frags)*len(alternatives))
			for _, base := range frags {
				for _, alt := range alternatives {
					row := make([]int64, 0, len(base)+len(alt))
					row = append(row, base...)
					row = append(row, alt...)
					next = append(next, row)
				}
			}
			frags = next
		}
		return frags
	}

	rows := expand(t.Root, rootEl)
	tbl := &Table{Columns: columns, NRows: len(rows), Schema: s}
	tbl.Cols = make([][]int64, len(columns))
	for c := range columns {
		col := make([]int64, len(rows))
		for r, row := range rows {
			v := row[c]
			if v == nullSentinel {
				// Unique null per cell: strong satisfaction.
				v = -int64(r)*int64(len(columns)) - int64(c) - 1
			}
			col[r] = v
		}
		tbl.Cols[c] = col
	}
	return tbl, nil
}

func fieldElement(parent schema.Element, f schema.Field) schema.Element {
	el := schema.Element{
		Path:    parent.Path.Child(f.Label),
		Label:   f.Label,
		Type:    f.Type,
		Payload: f.Type,
	}
	if f.Type.Kind == schema.Set {
		el.Repeatable = true
		el.Payload = f.Type.Elem
	}
	return el
}

// AsRelation wraps the table as a single relation so the DiscoverFD
// lattice can run on it. Attribute relative paths are the absolute
// element paths re-rooted at the document root.
func (tb *Table) AsRelation() *relation.Relation {
	rootPath := schema.PathOf(tb.Schema.Root)
	attrs := make([]relation.Attr, 0, len(tb.Columns)-1)
	cols := make([][]int64, 0, len(tb.Columns)-1)
	for i, p := range tb.Columns {
		if i == 0 {
			continue // the root column is constant; it is the pivot
		}
		attrs = append(attrs, relation.Attr{
			Rel:  schema.MustRelativize(rootPath, p),
			Path: p,
			Kind: relation.Leaf,
		})
		cols = append(cols, tb.Cols[i])
	}
	keys := make([]int, tb.NRows)
	parents := make([]int32, tb.NRows)
	for i := range keys {
		keys[i] = i + 1
		parents[i] = -1
	}
	return &relation.Relation{
		Pivot:     rootPath,
		Essential: true,
		Attrs:     attrs,
		Cols:      cols,
		Keys:      keys,
		ParentIdx: parents,
	}
}

// Discover runs the TANE-style DiscoverFD baseline over the flat
// relation. It fails when the schema has more than 64 element paths
// (the lattice's bitset limit) — itself a symptom of the
// schema-width problem the paper's Section 4.1 describes.
func (tb *Table) Discover(opts core.Options) ([]core.FD, []core.Key, core.Stats, error) {
	return core.DiscoverRelation(tb.AsRelation(), opts)
}
