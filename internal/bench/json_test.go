package bench

import (
	"bytes"
	"strings"
	"testing"
)

func sampleReport(speedup float64) *Report {
	return &Report{
		Version: ReportVersion,
		Quick:   true,
		Results: []ExperimentResult{{
			ID:      "E13",
			Title:   "demo",
			Seconds: 0.5,
			Columns: []string{"a"},
			Rows:    [][]string{{"1"}},
			Metrics: map[string]float64{
				"speedup_e1_discovery": speedup,
				"cache_hits_e1":        100,
			},
		}},
	}
}

func TestReportRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	if err := sampleReport(2.5).WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadReport(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Results[0].Metrics["speedup_e1_discovery"] != 2.5 {
		t.Fatalf("round trip lost metrics: %+v", got.Results[0])
	}
}

func TestReadReportRejectsVersionMismatch(t *testing.T) {
	if _, err := ReadReport(strings.NewReader(`{"version": 999}`)); err == nil {
		t.Fatal("want version mismatch error")
	}
	if _, err := ReadReport(strings.NewReader(`not json`)); err == nil {
		t.Fatal("want parse error")
	}
}

func TestCompareGatesSpeedupMetrics(t *testing.T) {
	base := sampleReport(2.0)

	// Within threshold: 2.0 -> 1.6 is exactly a 20% drop, allowed at 25%.
	regs, err := Compare(base, sampleReport(1.6), 0.25)
	if err != nil || len(regs) != 0 {
		t.Fatalf("20%% drop should pass a 25%% gate: regs=%v err=%v", regs, err)
	}

	// Beyond threshold: 2.0 -> 1.4 is a 30% drop.
	regs, err = Compare(base, sampleReport(1.4), 0.25)
	if err != nil || len(regs) != 1 {
		t.Fatalf("30%% drop should fail a 25%% gate: regs=%v err=%v", regs, err)
	}
	if !strings.Contains(regs[0].String(), "speedup_e1_discovery") {
		t.Fatalf("regression should name the metric: %s", regs[0])
	}

	// Informational (non-speedup) metrics are never gated.
	cur := sampleReport(2.0)
	cur.Results[0].Metrics["cache_hits_e1"] = 1
	if regs, err = Compare(base, cur, 0.25); err != nil || len(regs) != 0 {
		t.Fatalf("cache_hits must not be gated: regs=%v err=%v", regs, err)
	}

	// No shared gated metrics is an error, not a silent pass.
	empty := sampleReport(2.0)
	empty.Results[0].ID = "E99"
	if _, err = Compare(base, empty, 0.25); err == nil {
		t.Fatal("disjoint experiments should error (gate would be vacuous)")
	}
}

func TestCheckFloors(t *testing.T) {
	rep := sampleReport(6.5)

	// Met floor: no violations.
	if vios := CheckFloors(rep, map[string]float64{"speedup_e1_discovery": 5}); len(vios) != 0 {
		t.Fatalf("6.5 meets a floor of 5: %v", vios)
	}

	// Violated floor names the experiment and both values.
	vios := CheckFloors(rep, map[string]float64{"speedup_e1_discovery": 7})
	if len(vios) != 1 {
		t.Fatalf("6.5 under a floor of 7 should violate: %v", vios)
	}
	if s := vios[0].String(); !strings.Contains(s, "E13") || !strings.Contains(s, "speedup_e1_discovery") {
		t.Fatalf("violation should name experiment and metric: %s", s)
	}

	// A floored metric absent from the report is itself a violation —
	// a gate that silently stopped running must not pass.
	vios = CheckFloors(rep, map[string]float64{"speedup_gone": 5})
	if len(vios) != 1 || !strings.Contains(vios[0].String(), "not present") {
		t.Fatalf("missing metric should violate: %v", vios)
	}

	// Floors are not restricted to speedup-prefixed names.
	if vios := CheckFloors(rep, map[string]float64{"cache_hits_e1": 50}); len(vios) != 0 {
		t.Fatalf("non-speedup floors are allowed: %v", vios)
	}
}

// TestE13SpeedupFloor pins the headline acceptance criterion: the
// quick-mode E1-style discovery on the repeated-value dataset must be
// ≥1.5× faster on the fast engine than the naive (pre-fast-path)
// engine. The measured ratio is within-run and best-of-three, so it
// is stable even on loaded single-core CI runners (observed ~3×).
func TestE13SpeedupFloor(t *testing.T) {
	if testing.Short() {
		t.Skip("timing-sensitive; skipped in -short mode")
	}
	if raceEnabled {
		t.Skip("race instrumentation skews within-run timing ratios")
	}
	tbl := E13Partition(true)
	got := tbl.Metrics["speedup_e1_discovery"]
	if got < 1.5 {
		t.Fatalf("repeated-value quick discovery speedup %.2fx < 1.5x\n%s", got, tbl)
	}
	if tbl.Metrics["cache_hits_e1_discovery"] == 0 {
		t.Fatal("fast engine reported no cache hits")
	}
}
