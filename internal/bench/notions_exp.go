package bench

import (
	"discoverxfd/internal/core"
	"discoverxfd/internal/notions"
	"discoverxfd/internal/relation"
	"discoverxfd/internal/schema"
	"discoverxfd/internal/xmlgen"
)

// E10Notions reproduces the paper's Section 2.3 comparison as a
// table: the four example constraints of Section 2.2 evaluated under
// the path-based notion (Vincent et al.), the tree-tuple notion
// (Arenas & Libkin), and the paper's generalized-tree-tuple notion,
// on generated warehouse data where all four constraints hold by
// construction.
func E10Notions(quick bool) *Table {
	p := xmlgen.DefaultWarehouse()
	if !quick {
		p.States *= 2
	}
	ds := xmlgen.Warehouse(p)

	// Inject the canonical divergence case for C4: two books share the
	// author "Aux One" and the title, but their author SETS differ, so
	// the set-level constraint permits different ISBNs while the
	// member-wise readings of the earlier notions see a violation.
	store := ds.Tree.NodesAt("/warehouse/state/store")[0]
	b1 := store.AddChild("book")
	b1.AddLeaf("ISBN", "aux-0001")
	b1.AddLeaf("author", "Aux One")
	b1.AddLeaf("author", "Aux Two")
	b1.AddLeaf("title", "Aux Title")
	b1.AddLeaf("price", "10.00")
	b2 := store.AddChild("book")
	b2.AddLeaf("ISBN", "aux-0002")
	b2.AddLeaf("author", "Aux One")
	b2.AddLeaf("title", "Aux Title")
	b2.AddLeaf("price", "12.00")
	ds.Tree.Renumber()

	h, err := relation.Build(ds.Tree, ds.Schema, relation.Options{})
	if err != nil {
		panic(err)
	}

	book := schema.Path("/warehouse/state/store/book")
	cname := schema.Path("/warehouse/state/store/contact/name")
	cases := []struct {
		label string
		abs   notions.PathFD   // for the earlier notions
		lhs   []schema.RelPath // for the GTT notion
		rhs   schema.RelPath
	}{
		{
			"C1: ISBN -> title",
			notions.PathFD{LHS: []schema.Path{book.Child("ISBN")}, RHS: book.Child("title")},
			[]schema.RelPath{"./ISBN"}, "./title",
		},
		{
			"C2: store name, ISBN -> price",
			notions.PathFD{LHS: []schema.Path{cname, book.Child("ISBN")}, RHS: book.Child("price")},
			[]schema.RelPath{"../contact/name", "./ISBN"}, "./price",
		},
		{
			"C3: ISBN -> author set",
			notions.PathFD{LHS: []schema.Path{book.Child("ISBN")}, RHS: book.Child("author")},
			[]schema.RelPath{"./ISBN"}, "./author",
		},
		{
			"C4: author set, title -> ISBN",
			notions.PathFD{LHS: []schema.Path{book.Child("author"), book.Child("title")}, RHS: book.Child("ISBN")},
			[]schema.RelPath{"./author", "./title"}, "./ISBN",
		},
	}

	t := &Table{
		ID:      "E10",
		Title:   "FD notions compared on the warehouse constraints (Section 2.3, + §3.1 MVD remark)",
		Columns: []string{"constraint", "path-based [24]", "tree-tuple [3]", "as MVD (remark 3)", "GTT (this paper)"},
	}
	render := func(ok bool) string {
		if ok {
			return "satisfied"
		}
		return "VIOLATED"
	}
	for _, c := range cases {
		pb, err := notions.PathBasedHolds(ds.Tree, c.abs)
		if err != nil {
			panic(err)
		}
		tt, err := notions.TreeTupleHolds(ds.Tree, ds.Schema, c.abs, 1<<21)
		if err != nil {
			panic(err)
		}
		mv, err := notions.MVDHolds(ds.Tree, ds.Schema, notions.MVD{LHS: c.abs.LHS, RHS: []schema.Path{c.abs.RHS}}, 1<<21)
		if err != nil {
			panic(err)
		}
		ev, err := core.Evaluate(h, book, c.lhs, c.rhs)
		if err != nil {
			panic(err)
		}
		t.Rows = append(t.Rows, []string{c.label, render(pb), render(tt), render(mv), render(ev.Holds)})
	}
	t.Notes = append(t.Notes,
		"all four constraints hold on the data by construction; a VIOLATED cell means the notion cannot express the constraint's set semantics (Section 2.3's argument)",
		"the MVD column demonstrates §3.1 remark 3: the set-RHS Constraint 3 is expressible as an MVD, the set-LHS Constraint 4 is not")
	return t
}
