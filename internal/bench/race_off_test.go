//go:build !race

package bench

// raceEnabled reports whether the race detector instruments this
// build. Timing-floor tests skip under it: instrumentation slows the
// two engines unevenly, so within-run ratios stop being meaningful.
const raceEnabled = false
