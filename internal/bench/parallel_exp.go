package bench

import (
	"fmt"
	"runtime"
	"time"

	"discoverxfd/internal/core"
	"discoverxfd/internal/relation"
	"discoverxfd/internal/xmlgen"
)

// E12Parallel measures the parallel-discovery feature: independent
// relation subtrees (auction's region/person/auction branches, psd's
// sibling set elements) run concurrently; output is identical to the
// serial run (enforced by TestParallelMatchesSerial).
func E12Parallel(quick bool) *Table {
	scales := []int{4, 8}
	if !quick {
		scales = []int{4, 8, 16}
	}
	t := &Table{
		ID:      "E12",
		Title:   "Parallel discovery over independent subtrees",
		Columns: []string{"dataset", "scale", "serial", "parallel", "speedup"},
		Notes: []string{
			fmt.Sprintf("GOMAXPROCS=%d; speedup is bounded by the largest single relation's lattice", runtime.GOMAXPROCS(0)),
			"on a single-core host the speedup is ~1.0x by construction; correctness (identical output) is what the tests pin",
		},
	}
	run := func(name string, ds xmlgen.Dataset) {
		h, err := relation.Build(ds.Tree, ds.Schema, relation.Options{})
		if err != nil {
			panic(err)
		}
		best := func(parallel bool) time.Duration {
			bestD := time.Duration(1<<62 - 1)
			for i := 0; i < 3; i++ {
				start := time.Now()
				if _, err := core.Discover(h, core.Options{PropagatePartial: true, Parallel: parallel}); err != nil {
					panic(err)
				}
				if d := time.Since(start); d < bestD {
					bestD = d
				}
			}
			return bestD
		}
		serial := best(false)
		par := best(true)
		t.Rows = append(t.Rows, []string{
			name, ds.Name,
			fmtDur(serial), fmtDur(par),
			fmt.Sprintf("%.2fx", float64(serial)/float64(par)),
		})
	}
	for _, sc := range scales {
		au := xmlgen.DefaultAuction()
		au.Factor = sc
		run(fmt.Sprintf("auction x%d", sc), xmlgen.Auction(au))
	}
	for _, sc := range scales {
		ps := xmlgen.DefaultPSD()
		ps.Entries *= sc
		ps.ProteinPool *= sc
		run(fmt.Sprintf("psd x%d", sc), xmlgen.PSD(ps))
	}
	return t
}
