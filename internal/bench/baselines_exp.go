package bench

import (
	"fmt"
	"time"

	"discoverxfd/internal/core"
	"discoverxfd/internal/depminer"
	"discoverxfd/internal/fun"
	"discoverxfd/internal/relation"
	"discoverxfd/internal/xmlgen"
)

// E11Baselines compares the three relational discoverers the paper
// cites — TANE (the partition lattice this system builds on),
// Dep-Miner (agree sets / transversals) and FUN (cardinalities over
// free sets) — on identical relations, across row and width sweeps.
// All three produce the same minimal cover (the test suite enforces
// it); the comparison is about cost shape: Dep-Miner pays O(n²) pair
// enumeration, FUN recomputes cardinalities without partition reuse,
// and TANE's striped partitions amortize — the design argument for
// building DiscoverXFD on partitions.
func E11Baselines(quick bool) *Table {
	rowSweep := []int{100, 200, 400}
	widths := []int{5, 7}
	if !quick {
		rowSweep = []int{100, 200, 400, 800, 1600}
		widths = []int{5, 7, 9}
	}
	t := &Table{
		ID:      "E11",
		Title:   "Relational baselines on one relation: TANE vs Dep-Miner vs FUN",
		Columns: []string{"rows", "attrs", "FDs", "TANE (lattice)", "Dep-Miner", "FUN"},
	}
	for _, w := range widths {
		for _, rows := range rowSweep {
			p := xmlgen.DefaultWide(w)
			p.Rows = rows
			ds := xmlgen.Wide(p)
			h, err := relation.Build(ds.Tree, ds.Schema, relation.Options{})
			if err != nil {
				panic(err)
			}
			rels := h.EssentialRelations()
			rel := rels[len(rels)-1]

			start := time.Now()
			fds, _, _, err := core.DiscoverRelation(rel, core.Options{KeepConstantFDs: true})
			if err != nil {
				panic(err)
			}
			tane := time.Since(start)

			start = time.Now()
			if _, err := depminer.Discover(rel); err != nil {
				panic(err)
			}
			dm := time.Since(start)

			start = time.Now()
			if _, err := fun.Discover(rel); err != nil {
				panic(err)
			}
			fn := time.Since(start)

			t.Rows = append(t.Rows, []string{
				fmt.Sprintf("%d", rows),
				fmt.Sprintf("%d", w),
				fmt.Sprintf("%d", len(fds)),
				fmtDur(tane),
				fmtDur(dm),
				fmtDur(fn),
			})
		}
	}
	t.Notes = append(t.Notes,
		"all three compute the same minimal cover (enforced by the cross-check tests); only cost differs",
		"Dep-Miner grows quadratically in rows; FUN pays repeated full-column scans; the partition lattice amortizes — the basis DiscoverXFD builds on")
	return t
}
