package bench

import (
	"context"
	"fmt"
	"math/rand"
	"runtime"
	"sort"
	"strings"
	"time"

	"discoverxfd/internal/core"
	"discoverxfd/internal/relation"
	"discoverxfd/internal/schema"
	"discoverxfd/internal/xmlgen"
)

// E15UpdateIncremental is the E-update experiment: discovery after a
// batch of random document mutations, incremental (Engine.ApplyUpdate
// patches the warm partition layer, then Engine.Discover revalidates)
// against a cold run that rebuilds the hierarchy from the mutated
// tree and discovers one-shot. Mutation batches cover 1%, 5% and 20%
// of the tuples; the 1% case is the serving-layer steady state and is
// the gated metric (the CI gate additionally enforces an absolute
// ≥5x floor on it via benchgate -floor). Every incremental result is
// differentially checked against its cold run before timings are
// reported — a divergence panics the benchmark.
func E15UpdateIncremental(quick bool) *Table {
	rows := 2000
	if !quick {
		rows = 8000
	}
	t := &Table{
		ID:    "E15",
		Title: "E-update: incremental discovery under document mutations",
		Columns: []string{"mutated", "ops", "tuples", "cold", "incremental", "speedup",
			"reused", "patched", "kept", "dropped"},
		Metrics: map[string]float64{},
		Stats:   map[string]core.Stats{},
		Notes: []string{
			"cold = relation.Build over the mutated tree + one-shot core.Discover",
			"incremental = Engine.ApplyUpdate (warm partitions patched in place) + Engine.Discover",
			"mutation batches are seeded random column-localized value updates over one table of the wide-forest corpus",
			"each incremental result is differentially checked against its cold run",
			fmt.Sprintf("GOMAXPROCS=%d; the 1%% case is gated and floor-checked by benchgate", runtime.GOMAXPROCS(0)),
		},
	}

	fractions := []struct {
		key   string
		frac  float64
		gated bool
	}{
		{"1pct", 0.01, true},
		{"5pct", 0.05, false},
		{"20pct", 0.20, false},
	}
	for _, f := range fractions {
		// Fresh corpus per fraction: the update path mutates the
		// retained tree, and the generator is deterministic. The forest
		// shape (eight unrelated wide tables) is the document profile the
		// incremental path serves: mutations land in one table, the
		// engine re-traverses its dirty lattice and replays the clean
		// sibling subtrees from the memo.
		ds := xmlgen.WideForest(xmlgen.WideForestParams{
			Tables: 8,
			Table:  xmlgen.WideParams{Rows: rows / 8, Attrs: 10, Domain: 6, FDEvery: 3, Seed: 5},
		})
		h, err := relation.Build(ds.Tree, ds.Schema, relation.Options{})
		if err != nil {
			panic(fmt.Sprintf("bench: %s: %v", ds.Name, err))
		}
		opts := core.Options{PropagatePartial: true, ApproxError: 0.05}
		eng := core.NewEngine(opts)
		if _, err := eng.Discover(context.Background(), h); err != nil {
			panic(fmt.Sprintf("bench: warm-up: %v", err))
		}

		rng := rand.New(rand.NewSource(11))
		nOps := int(float64(h.TotalTuples()) * f.frac)
		if nOps < 1 {
			nOps = 1
		}

		// Three mutate-and-discover cycles on the warm engine; the
		// batch is regenerated against the current state each cycle,
		// and the best cycle is the reported incremental time.
		bestIncr := time.Duration(1<<62 - 1)
		var incrRes *core.Result
		totalOps := 0
		for i := 0; i < 3; i++ {
			ops := randomValueUpdates(rng, h, nOps, 2)
			if len(ops) == 0 {
				panic("bench: mutation generator produced no ops")
			}
			start := time.Now()
			cs, err := eng.ApplyUpdate(h, ops)
			if err != nil {
				panic(fmt.Sprintf("bench: apply: %v", err))
			}
			res, err := eng.Discover(context.Background(), h)
			if err != nil {
				panic(fmt.Sprintf("bench: incremental discover: %v", err))
			}
			if d := time.Since(start); d < bestIncr {
				bestIncr = d
			}
			incrRes = res
			totalOps += cs.Ops()
		}

		// Cold baseline over the final mutated tree. Build is part of
		// the measured cost: a system without the update path has to
		// re-ingest the document to see the mutation.
		bestCold := time.Duration(1<<62 - 1)
		var coldRes *core.Result
		for i := 0; i < 3; i++ {
			start := time.Now()
			h2, err := relation.Build(ds.Tree, ds.Schema, relation.Options{})
			if err != nil {
				panic(fmt.Sprintf("bench: cold rebuild: %v", err))
			}
			res, err := core.Discover(h2, opts)
			if err != nil {
				panic(fmt.Sprintf("bench: cold discover: %v", err))
			}
			if d := time.Since(start); d < bestCold {
				bestCold, coldRes = d, res
			}
		}

		// The last incremental cycle and the cold run saw the same
		// document state: their semantic results must agree.
		if g, w := resultSignature(incrRes), resultSignature(coldRes); g != w {
			panic(fmt.Sprintf("bench: E15 %s: incremental result diverges from cold run\nincremental: %s\ncold: %s", f.key, g, w))
		}

		m := eng.Metrics()
		speedup := float64(bestCold) / float64(bestIncr)
		t.Rows = append(t.Rows, []string{
			strings.TrimSuffix(f.key, "pct") + "%",
			fmt.Sprintf("%d", totalOps),
			fmt.Sprintf("%d", h.TotalTuples()),
			fmtDur(bestCold), fmtDur(bestIncr),
			fmt.Sprintf("%.2fx", speedup),
			fmt.Sprintf("%d/%d", incrRes.Stats.RelationsReused, incrRes.Stats.Relations),
			fmt.Sprintf("%d", m.PartitionsPatched),
			fmt.Sprintf("%d", m.PartitionsKept),
			fmt.Sprintf("%d", m.PartitionsDropped),
		})
		if f.gated {
			t.Metrics["speedup_update_"+f.key] = speedup
		} else {
			t.Metrics["update_ratio_"+f.key] = speedup
		}
		t.Metrics["update_ops_"+f.key] = float64(totalOps)
		t.Metrics["update_patched_"+f.key] = float64(m.PartitionsPatched)
		t.Stats[f.key] = incrRes.Stats
	}
	return t
}

// randomValueUpdates generates a seeded batch of n value changes
// against the hierarchy's largest essential relation, with the set
// ops confined to ncols leaf columns. Column-localized value updates
// are the serving-layer steady state the warm patch path is built
// for: only the touched columns go dirty, so the engine keeps every
// cached multi-column partition that avoids them. Inserts and deletes
// resize the relation and drop the multi-column cache wholesale —
// that regime is covered by the differential tests, not timed here.
func randomValueUpdates(rng *rand.Rand, h *relation.Hierarchy, n, ncols int) []relation.Update {
	var r *relation.Relation
	for _, er := range h.EssentialRelations() {
		if r == nil || er.NRows() > r.NRows() {
			r = er
		}
	}
	if r == nil || r.NRows() == 0 {
		return nil
	}
	var leaves []relation.Attr
	for _, a := range r.Attrs {
		if a.Kind == relation.Leaf {
			leaves = append(leaves, a)
		}
	}
	if len(leaves) == 0 {
		return nil
	}
	if ncols > len(leaves) {
		ncols = len(leaves)
	}
	perm := rng.Perm(len(leaves))[:ncols]
	var ops []relation.Update
	used := make(map[int]bool)
	for tries := 0; len(ops) < n && tries < 16*n; tries++ {
		key := r.Keys[rng.Intn(r.NRows())]
		if used[key] {
			continue
		}
		used[key] = true
		a := leaves[perm[rng.Intn(len(perm))]]
		ops = append(ops, relation.Update{Op: relation.OpSet, Class: r.Pivot, Key: key,
			Attr: a.Rel, Value: benchValue(rng, h, a)})
	}
	return ops
}

// benchValue emits a value conforming to the attribute's declared
// kind, so typed schemas never reject the generated batch.
func benchValue(rng *rand.Rand, h *relation.Hierarchy, a relation.Attr) string {
	if h.Schema != nil {
		if el, err := h.Schema.Resolve(a.Path); err == nil && el.Payload != nil {
			switch el.Payload.Kind {
			case schema.Int:
				return fmt.Sprintf("%d", rng.Intn(500))
			case schema.Float:
				return fmt.Sprintf("%d.%d", rng.Intn(50), rng.Intn(10))
			}
		}
	}
	return fmt.Sprintf("v%d", rng.Intn(12))
}

// resultSignature renders the semantic content of a Result — FDs,
// keys, approximate FDs and redundancy witnesses — as one sorted
// string, for the bench-internal differential check.
func resultSignature(res *core.Result) string {
	var parts []string
	for _, fd := range res.FDs {
		parts = append(parts, fd.String())
	}
	for _, k := range res.Keys {
		parts = append(parts, k.String())
	}
	for _, fd := range res.ApproxFDs {
		parts = append(parts, fd.String())
	}
	for _, r := range res.Redundancies {
		parts = append(parts, r.String())
	}
	sort.Strings(parts)
	return strings.Join(parts, "; ")
}
