package bench

import (
	"fmt"
	"time"

	"discoverxfd/internal/core"
	"discoverxfd/internal/flat"
	"discoverxfd/internal/relation"
	"discoverxfd/internal/xmlgen"
)

// discoverDataset builds the hierarchy and runs full DiscoverXFD,
// returning the result and wall time.
func discoverDataset(ds xmlgen.Dataset, ropts relation.Options, copts core.Options) (*core.Result, time.Duration, *relation.Hierarchy) {
	h, err := relation.Build(ds.Tree, ds.Schema, ropts)
	if err != nil {
		panic(fmt.Sprintf("bench: %s: %v", ds.Name, err))
	}
	start := time.Now()
	res, err := core.Discover(h, copts)
	if err != nil {
		panic(fmt.Sprintf("bench: %s: %v", ds.Name, err))
	}
	return res, time.Since(start), h
}

func defaultOpts() core.Options {
	return core.Options{PropagatePartial: true}
}

func fmtDur(d time.Duration) string {
	switch {
	case d >= time.Second:
		return fmt.Sprintf("%.2fs", d.Seconds())
	case d >= time.Millisecond:
		return fmt.Sprintf("%.2fms", float64(d.Microseconds())/1000)
	default:
		return fmt.Sprintf("%dµs", d.Microseconds())
	}
}

func countInter(fds []core.FD) int {
	n := 0
	for _, f := range fds {
		if f.Inter {
			n++
		}
	}
	return n
}

func totalRedundant(res *core.Result) int {
	n := 0
	for _, r := range res.Redundancies {
		n += r.RedundantValues
	}
	return n
}

// E1Datasets reproduces the dataset-summary table: per dataset, the
// document size, hierarchical representation size, and the discovered
// constraints.
func E1Datasets(quick bool) *Table {
	scale := 1
	if !quick {
		scale = 4
	}
	wh := xmlgen.DefaultWarehouse()
	wh.States *= scale
	db := xmlgen.DefaultDBLP()
	db.Venues *= scale
	ps := xmlgen.DefaultPSD()
	ps.Entries *= scale
	au := xmlgen.DefaultAuction()
	au.Factor = scale
	mo := xmlgen.DefaultMondial()
	mo.Countries *= scale
	ca := xmlgen.DefaultCatalog()
	ca.Products *= scale

	sets := []xmlgen.Dataset{
		xmlgen.Warehouse(wh), xmlgen.DBLP(db), xmlgen.PSD(ps),
		xmlgen.Auction(au), xmlgen.Mondial(mo), xmlgen.Catalog(ca),
	}
	t := &Table{
		ID:    "E1",
		Title: "Dataset summary and discovered constraints",
		Columns: []string{"dataset", "nodes", "relations", "tuples", "FDs", "inter-FDs",
			"keys", "redundant values", "time"},
	}
	for _, ds := range sets {
		res, dur, h := discoverDataset(ds, relation.Options{}, defaultOpts())
		t.Rows = append(t.Rows, []string{
			ds.Name,
			fmt.Sprintf("%d", ds.Tree.Size()),
			fmt.Sprintf("%d", len(h.EssentialRelations())),
			fmt.Sprintf("%d", h.TotalTuples()),
			fmt.Sprintf("%d", len(res.FDs)),
			fmt.Sprintf("%d", countInter(res.FDs)),
			fmt.Sprintf("%d", len(res.Keys)),
			fmt.Sprintf("%d", totalRedundant(res)),
			fmtDur(dur),
		})
	}
	t.Notes = append(t.Notes,
		"every reported FD indicates a redundancy (Definition 11); keys do not")
	return t
}

// E2Scalability reproduces the time-vs-size series on the benchmark
// (auction) and real-life-style (psd) generators. The paper's claim
// is near-linear scaling in data size for a fixed schema.
func E2Scalability(quick bool) *Table {
	scales := []int{1, 2, 4, 8}
	if !quick {
		scales = []int{1, 2, 4, 8, 16}
	}
	t := &Table{
		ID:      "E2",
		Title:   "Scalability with data size (fixed schema)",
		Columns: []string{"dataset", "scale", "nodes", "tuples", "time", "µs/tuple"},
	}
	for _, sc := range scales {
		au := xmlgen.DefaultAuction()
		au.Factor = sc
		ds := xmlgen.Auction(au)
		res, dur, h := discoverDataset(ds, relation.Options{}, defaultOpts())
		_ = res
		t.Rows = append(t.Rows, []string{
			"auction", fmt.Sprintf("x%d", sc),
			fmt.Sprintf("%d", ds.Tree.Size()),
			fmt.Sprintf("%d", h.TotalTuples()),
			fmtDur(dur),
			fmt.Sprintf("%.1f", float64(dur.Microseconds())/float64(h.TotalTuples())),
		})
	}
	for _, sc := range scales {
		ps := xmlgen.DefaultPSD()
		ps.Entries *= sc
		ps.ProteinPool *= sc
		ds := xmlgen.PSD(ps)
		res, dur, h := discoverDataset(ds, relation.Options{}, defaultOpts())
		_ = res
		t.Rows = append(t.Rows, []string{
			"psd", fmt.Sprintf("x%d", sc),
			fmt.Sprintf("%d", ds.Tree.Size()),
			fmt.Sprintf("%d", h.TotalTuples()),
			fmtDur(dur),
			fmt.Sprintf("%.1f", float64(dur.Microseconds())/float64(h.TotalTuples())),
		})
	}
	t.Notes = append(t.Notes,
		"near-constant µs/tuple down each series = near-linear scaling, the paper's headline claim")
	return t
}

// E3FlatVsHier reproduces the hierarchical-vs-flat comparison: as the
// number of unrelated sibling set elements grows, the flat
// representation's tuple count grows multiplicatively (Section 4.1)
// and TANE-over-flat slows accordingly, while the hierarchical
// representation grows additively.
func E3FlatVsHier(quick bool) *Table {
	entries := 40
	if !quick {
		entries = 80
	}
	t := &Table{
		ID:    "E3",
		Title: "Hierarchical vs flat representation (unrelated set elements)",
		Columns: []string{"unrelated sets", "nodes", "hier tuples", "flat tuples",
			"DiscoverXFD", "TANE(flat)", "XFD FDs", "flat FDs"},
	}
	const flatCap = 1 << 19
	for k := 1; k <= 4; k++ {
		ps := xmlgen.PSDParams{Entries: entries, ProteinPool: entries / 2, UnrelatedSets: k, MembersPerSet: 3, Seed: 3}
		ds := xmlgen.PSD(ps)
		res, dur, h := discoverDataset(ds, relation.Options{}, defaultOpts())

		flatRows, err := flat.CountRows(ds.Tree, ds.Schema)
		if err != nil {
			panic(err)
		}
		flatTime := "-"
		flatFDs := "-"
		if flatRows <= flatCap {
			tbl, err := flat.Build(ds.Tree, ds.Schema, flatCap)
			if err == nil {
				start := time.Now()
				fds, _, _, derr := tbl.Discover(core.Options{MaxLHS: 3})
				if derr != nil {
					panic(derr)
				}
				flatTime = fmtDur(time.Since(start))
				flatFDs = fmt.Sprintf("%d", len(fds))
			}
		}
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%d", k),
			fmt.Sprintf("%d", ds.Tree.Size()),
			fmt.Sprintf("%d", h.TotalTuples()),
			fmt.Sprintf("%d", flatRows),
			fmtDur(dur),
			flatTime,
			fmt.Sprintf("%d", len(res.FDs)),
			flatFDs,
		})
	}
	t.Notes = append(t.Notes,
		"flat tuples grow multiplicatively with unrelated set elements; hierarchical tuples additively",
		"'-' marks flat configurations beyond the materialization cap",
		"TANE(flat) is capped at LHS size 3; it cannot express set-element FDs at any size")
	return t
}

// E4SchemaWidth reproduces the schema-width series: discovery cost
// versus the number of attributes of a single relation, showing the
// exponential lattice growth that motivates the hierarchical
// decomposition.
func E4SchemaWidth(quick bool) *Table {
	widths := []int{4, 6, 8, 10}
	if !quick {
		widths = []int{4, 6, 8, 10, 12, 14}
	}
	t := &Table{
		ID:      "E4",
		Title:   "Schema-width sensitivity (single relation)",
		Columns: []string{"attributes", "rows", "lattice nodes", "partitions", "FDs", "keys", "time"},
	}
	for _, w := range widths {
		ds := xmlgen.Wide(xmlgen.DefaultWide(w))
		h, err := relation.Build(ds.Tree, ds.Schema, relation.Options{})
		if err != nil {
			panic(err)
		}
		var rel *relation.Relation
		for _, r := range h.EssentialRelations() {
			rel = r
		}
		start := time.Now()
		fds, keys, stats, err := core.DiscoverRelation(rel, core.Options{})
		if err != nil {
			panic(err)
		}
		dur := time.Since(start)
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%d", w),
			fmt.Sprintf("%d", rel.NRows()),
			fmt.Sprintf("%d", stats.NodesVisited),
			fmt.Sprintf("%d", stats.PartitionsComputed),
			fmt.Sprintf("%d", len(fds)),
			fmt.Sprintf("%d", len(keys)),
			fmtDur(dur),
		})
	}
	t.Notes = append(t.Notes,
		"lattice nodes grow exponentially in width; pruning keeps visited nodes well below 2^w")
	return t
}

// E5IntraInter reproduces the cost-split table: time spent in
// per-relation lattice work versus partition-target work, plus target
// volumes.
func E5IntraInter(quick bool) *Table {
	scale := 1
	if !quick {
		scale = 4
	}
	wh := xmlgen.DefaultWarehouse()
	wh.States *= scale
	db := xmlgen.DefaultDBLP()
	db.Venues *= scale
	au := xmlgen.DefaultAuction()
	au.Factor = scale
	sets := []xmlgen.Dataset{xmlgen.Warehouse(wh), xmlgen.DBLP(db), xmlgen.Auction(au)}

	t := &Table{
		ID:    "E5",
		Title: "Intra- vs inter-relation discovery cost",
		Columns: []string{"dataset", "intra time", "inter time", "targets created",
			"propagated", "checks", "inter FDs", "inter keys"},
	}
	for _, ds := range sets {
		res, _, _ := discoverDataset(ds, relation.Options{}, defaultOpts())
		interKeys := 0
		for _, k := range res.Keys {
			if k.Inter {
				interKeys++
			}
		}
		st := res.Stats
		t.Rows = append(t.Rows, []string{
			ds.Name,
			fmtDur(st.IntraTime),
			fmtDur(st.InterTime),
			fmt.Sprintf("%d", st.TargetsCreated),
			fmt.Sprintf("%d", st.TargetsPropagated),
			fmt.Sprintf("%d", st.TargetChecks),
			fmt.Sprintf("%d", countInter(res.FDs)),
			fmt.Sprintf("%d", interKeys),
		})
	}
	return t
}

// E6Pruning reproduces the pruning ablation: DiscoverXFD with the key
// pruning rule and the candidate-LHS (FD) pruning rules individually
// disabled.
func E6Pruning(quick bool) *Table {
	scale := 1
	if !quick {
		scale = 3
	}
	wh := xmlgen.DefaultWarehouse()
	wh.States *= scale
	ps := xmlgen.DefaultPSD()
	ps.Entries *= scale
	sets := []xmlgen.Dataset{xmlgen.Warehouse(wh), xmlgen.PSD(ps)}

	variants := []struct {
		name string
		mod  func(*core.Options)
	}{
		{"all pruning", func(o *core.Options) {}},
		{"no key pruning", func(o *core.Options) { o.DisableKeyPruning = true }},
		{"no FD pruning", func(o *core.Options) { o.DisableFDPruning = true }},
		{"no pruning", func(o *core.Options) { o.DisableKeyPruning = true; o.DisableFDPruning = true }},
	}
	t := &Table{
		ID:      "E6",
		Title:   "Pruning-rule ablation",
		Columns: []string{"dataset", "variant", "lattice nodes", "partitions", "FDs", "time"},
	}
	for _, ds := range sets {
		for _, v := range variants {
			opts := defaultOpts()
			opts.MaxLHS = 4 // keep the unpruned lattice finite
			v.mod(&opts)
			res, dur, _ := discoverDataset(ds, relation.Options{}, opts)
			t.Rows = append(t.Rows, []string{
				ds.Name, v.name,
				fmt.Sprintf("%d", res.Stats.NodesVisited),
				fmt.Sprintf("%d", res.Stats.PartitionsComputed),
				fmt.Sprintf("%d", len(res.FDs)),
				fmtDur(dur),
			})
		}
	}
	t.Notes = append(t.Notes,
		"LHS size capped at 4 so the unpruned lattice stays finite",
		"disabling pruning must not change which minimal FDs exist, only cost and non-minimal extras")
	return t
}

// E7SetVsList reproduces the Section 4.5 order remark: comparing set
// elements as unordered collections (the paper's choice) versus
// ordered lists. Author order is shuffled per entry by the
// generators, so list semantics loses the set-element FDs and the
// redundancies they witness.
func E7SetVsList(quick bool) *Table {
	scale := 1
	if !quick {
		scale = 4
	}
	db := xmlgen.DefaultDBLP()
	db.Venues *= scale
	wh := xmlgen.DefaultWarehouse()
	wh.States *= scale
	sets := []xmlgen.Dataset{xmlgen.Warehouse(wh), xmlgen.DBLP(db)}

	t := &Table{
		ID:      "E7",
		Title:   "Unordered-set vs ordered-list semantics for set elements",
		Columns: []string{"dataset", "semantics", "FDs", "set-RHS FDs", "redundant values", "time"},
	}
	for _, ds := range sets {
		for _, ordered := range []bool{false, true} {
			name := "set (paper)"
			if ordered {
				name = "list"
			}
			res, dur, h := discoverDataset(ds, relation.Options{OrderedSets: ordered}, defaultOpts())
			setRHS := 0
			for _, f := range res.FDs {
				if rel := h.ByPivot(f.Class); rel != nil {
					if ai := rel.AttrIndex(f.RHS); ai >= 0 && rel.Attrs[ai].Kind == relation.SetValue {
						setRHS++
					}
				}
			}
			t.Rows = append(t.Rows, []string{
				ds.Name, name,
				fmt.Sprintf("%d", len(res.FDs)),
				fmt.Sprintf("%d", setRHS),
				fmt.Sprintf("%d", totalRedundant(res)),
				fmtDur(dur),
			})
		}
	}
	t.Notes = append(t.Notes,
		"generators shuffle member order per instance, so list semantics misses reordered duplicates — the paper's argument for unordered sets")
	return t
}
