package bench

import (
	"encoding/json"
	"fmt"
	"io"
	"runtime"
	"sort"
	"strings"
	"time"

	"discoverxfd/internal/core"
)

// ReportVersion is bumped when the JSON report shape changes
// incompatibly, so the CI gate can reject stale baselines loudly
// instead of comparing mismatched fields.
const ReportVersion = 1

// Report is the machine-readable output of an xfdbench -json run: the
// same tables the text mode prints, plus per-experiment wall time and
// the experiments' metric scalars. Committed as BENCH_partition.json
// it doubles as the CI regression baseline (see Compare).
type Report struct {
	Version   int                `json:"version"`
	Quick     bool               `json:"quick"`
	GoVersion string             `json:"go_version"`
	NumCPU    int                `json:"num_cpu"`
	Results   []ExperimentResult `json:"results"`
}

// ExperimentResult is one experiment's table in JSON form. Stats is
// additive (omitted when an experiment records none), so version-1
// baselines without it still load and compare.
type ExperimentResult struct {
	ID      string                `json:"id"`
	Title   string                `json:"title"`
	Seconds float64               `json:"seconds"`
	Columns []string              `json:"columns"`
	Rows    [][]string            `json:"rows"`
	Notes   []string              `json:"notes,omitempty"`
	Metrics map[string]float64    `json:"metrics,omitempty"`
	Stats   map[string]core.Stats `json:"stats,omitempty"`
	// Latencies is additive like Stats: per-case nearest-rank
	// percentile summaries of the experiment's repeated runs.
	Latencies map[string]LatencySummary `json:"latencies,omitempty"`
}

// Run executes the experiments and collects a Report.
func Run(exps []Experiment, quick bool) *Report {
	rep := &Report{
		Version:   ReportVersion,
		Quick:     quick,
		GoVersion: runtime.Version(),
		NumCPU:    runtime.NumCPU(),
	}
	for _, e := range exps {
		start := time.Now()
		tbl := e.Run(quick)
		rep.Results = append(rep.Results, ExperimentResult{
			ID:        tbl.ID,
			Title:     tbl.Title,
			Seconds:   time.Since(start).Seconds(),
			Columns:   tbl.Columns,
			Rows:      tbl.Rows,
			Notes:     tbl.Notes,
			Metrics:   tbl.Metrics,
			Stats:     tbl.Stats,
			Latencies: tbl.Latencies,
		})
	}
	return rep
}

// WriteJSON marshals the report, indented for diff-friendly commits.
func (r *Report) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// ReadReport parses a JSON report and validates its version.
func ReadReport(rd io.Reader) (*Report, error) {
	var r Report
	if err := json.NewDecoder(rd).Decode(&r); err != nil {
		return nil, fmt.Errorf("bench: parsing report: %w", err)
	}
	if r.Version != ReportVersion {
		return nil, fmt.Errorf("bench: report version %d, tool expects %d (regenerate the baseline)", r.Version, ReportVersion)
	}
	return &r, nil
}

// Regression is one gate violation found by Compare.
type Regression struct {
	Experiment string
	Metric     string
	Baseline   float64
	Current    float64
}

func (r Regression) String() string {
	return fmt.Sprintf("%s: %s regressed: baseline %.3f, current %.3f", r.Experiment, r.Metric, r.Baseline, r.Current)
}

// FloorViolation is one absolute-floor violation found by CheckFloors.
type FloorViolation struct {
	Experiment string // empty when the metric is missing from the report
	Metric     string
	Floor      float64
	Current    float64
}

func (v FloorViolation) String() string {
	if v.Experiment == "" {
		return fmt.Sprintf("%s: metric not present in the current report (floor %.3f)", v.Metric, v.Floor)
	}
	return fmt.Sprintf("%s: %s = %.3f is below the absolute floor %.3f", v.Experiment, v.Metric, v.Current, v.Floor)
}

// CheckFloors enforces absolute minimums on the current report:
// every floors entry names a metric that must be present in some
// experiment and must meet or exceed its floor value everywhere it
// appears. Unlike Compare, which tracks a committed baseline
// relatively, a floor is a hard requirement the metric can never
// dip under — the E-update gate uses it to demand the incremental
// path stay at least 5x faster than a cold run regardless of what
// the baseline drifts to. A named metric missing from the report is
// itself a violation (silently passing a gate that no longer runs
// would be worse than failing it).
func CheckFloors(current *Report, floors map[string]float64) []FloorViolation {
	var vios []FloorViolation
	keys := make([]string, 0, len(floors))
	for k := range floors {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		min := floors[k]
		found := false
		for _, e := range current.Results {
			cv, ok := e.Metrics[k]
			if !ok {
				continue
			}
			found = true
			if cv < min {
				vios = append(vios, FloorViolation{Experiment: e.ID, Metric: k, Floor: min, Current: cv})
			}
		}
		if !found {
			vios = append(vios, FloorViolation{Metric: k, Floor: min})
		}
	}
	return vios
}

// Compare gates the current report against a committed baseline:
// every "speedup*" metric present in both must not fall more than
// threshold (a fraction, e.g. 0.25 for 25%) below its baseline value.
// Only within-run ratios are compared — absolute wall times are
// machine-dependent and deliberately ignored — so the gate is stable
// across CI hardware. Experiments or metrics missing from either side
// are skipped (adding an experiment must not fail the gate; removing
// the gated metric entirely is caught by requiring at least one
// comparison).
func Compare(baseline, current *Report, threshold float64) ([]Regression, error) {
	cur := make(map[string]map[string]float64)
	for _, e := range current.Results {
		cur[e.ID] = e.Metrics
	}
	var regs []Regression
	compared := 0
	for _, b := range baseline.Results {
		cm := cur[b.ID]
		if cm == nil {
			continue
		}
		keys := make([]string, 0, len(b.Metrics))
		for k := range b.Metrics {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			if !strings.HasPrefix(k, "speedup") {
				continue
			}
			cv, ok := cm[k]
			if !ok {
				continue
			}
			compared++
			if bv := b.Metrics[k]; cv < bv*(1-threshold) {
				regs = append(regs, Regression{Experiment: b.ID, Metric: k, Baseline: bv, Current: cv})
			}
		}
	}
	if compared == 0 {
		return nil, fmt.Errorf("bench: no gated (speedup*) metrics shared between baseline and current report")
	}
	return regs, nil
}
