package bench

import (
	"bytes"
	"context"
	"fmt"
	"time"

	"discoverxfd/internal/core"
	"discoverxfd/internal/datatree"
	"discoverxfd/internal/relation"
	"discoverxfd/internal/source"
	"discoverxfd/internal/source/jsondoc"
	"discoverxfd/internal/xmlgen"
)

// SourceFormats names the document formats E16 ingests; xfdbench's
// -format flag narrows it to one. Defaults to every registered
// source.
var SourceFormats = []string{"xml", "json"}

// E16SourceParity measures the source layer: the warehouse corpus is
// serialized in each registered format (the XML original and its JSON
// twin), parsed through the format's source backend, and discovered
// through the identical engine path. The parity metric pins the
// refactor's core claim — discovery is format-agnostic, so both
// spellings yield the same constraints — while the parse columns and
// latency summaries report what each front-end costs. Parity is 1
// exactly; parse times are machine-dependent and never gated.
func E16SourceParity(quick bool) *Table {
	p := xmlgen.DefaultWarehouse()
	if !quick {
		p.States, p.BooksPerStore, p.CatalogSize = p.States*4, p.BooksPerStore*4, p.CatalogSize*4
	}
	ds := xmlgen.Warehouse(p)
	t := &Table{
		ID:        "E16",
		Title:     "Source parity: one corpus ingested per document format",
		Columns:   []string{"format", "bytes", "parse", "nodes", "tuples", "discover", "fds", "keys"},
		Metrics:   map[string]float64{},
		Stats:     map[string]core.Stats{},
		Latencies: map[string]LatencySummary{},
		Notes: []string{
			"one warehouse corpus, serialized per format, parsed through internal/source, discovered through the identical engine",
			"parity_warehouse = 1 means every format produced the same FDs, keys, and redundancies",
		},
	}

	// Serialize the corpus once per format.
	bodies := map[string][]byte{}
	var xmlBuf bytes.Buffer
	if err := ds.Tree.WriteXML(&xmlBuf); err != nil {
		panic(fmt.Sprintf("bench: %v", err))
	}
	bodies["xml"] = xmlBuf.Bytes()
	var jsonBuf bytes.Buffer
	if err := jsondoc.Write(&jsonBuf, ds.Tree, ds.Schema); err != nil {
		panic(fmt.Sprintf("bench: %v", err))
	}
	bodies["json"] = jsonBuf.Bytes()

	fingerprints := map[string]string{}
	for _, format := range SourceFormats {
		body, ok := bodies[format]
		if !ok {
			panic(fmt.Sprintf("bench: unknown source format %q", format))
		}
		src, err := source.ByFormat(format)
		if err != nil {
			panic(fmt.Sprintf("bench: %v", err))
		}

		// Best-of-3 parse through the source backend.
		bestParse := time.Duration(1<<62 - 1)
		parseSamples := make([]time.Duration, 0, 3)
		var tree *datatree.Tree
		for i := 0; i < 3; i++ {
			start := time.Now()
			tree, err = loadSourceContext(context.Background(), src, body)
			if err != nil {
				panic(fmt.Sprintf("bench: %s parse: %v", format, err))
			}
			d := time.Since(start)
			parseSamples = append(parseSamples, d)
			if d < bestParse {
				bestParse = d
			}
		}
		t.Latencies["parse_"+format] = summarizeLatency(parseSamples)

		h, err := relation.Build(tree, ds.Schema, relation.Options{})
		if err != nil {
			panic(fmt.Sprintf("bench: %s build: %v", format, err))
		}
		opts := core.Options{PropagatePartial: true}
		dur, _, res, samples := bestDiscover(h, opts)
		t.Latencies["discover_"+format] = summarizeLatency(samples)
		fingerprints[format] = resultFingerprint(res)

		t.Rows = append(t.Rows, []string{
			format,
			fmt.Sprintf("%d", len(body)),
			fmtDur(bestParse),
			fmt.Sprintf("%d", tree.Size()),
			fmt.Sprintf("%d", h.TotalTuples()),
			fmtDur(dur),
			fmt.Sprintf("%d", len(res.FDs)),
			fmt.Sprintf("%d", len(res.Keys)),
		})
		t.Metrics["parse_ms_"+format] = float64(bestParse) / float64(time.Millisecond)
		t.Stats[format] = res.Stats
	}

	parity := 1.0
	for _, format := range SourceFormats {
		if fingerprints[format] != fingerprints[SourceFormats[0]] {
			parity = 0
		}
	}
	t.Metrics["parity_warehouse"] = parity
	if parity != 1 {
		t.Notes = append(t.Notes, "PARITY FAILURE: formats disagree on the discovered constraints")
	}
	return t
}

// loadSourceContext parses one serialized corpus through a source
// backend under default limits; the harness is the ...Context shim
// for its timing loops.
func loadSourceContext(ctx context.Context, src source.Source, body []byte) (*datatree.Tree, error) {
	return src.Load(ctx, bytes.NewReader(body), datatree.DefaultLimits())
}

// resultFingerprint renders the discovery outcome (everything except
// the volatile Stats) for cross-format comparison.
func resultFingerprint(res *core.Result) string {
	var b bytes.Buffer
	for _, fd := range res.FDs {
		fmt.Fprintln(&b, fd)
	}
	for _, k := range res.Keys {
		fmt.Fprintln(&b, k)
	}
	for _, r := range res.Redundancies {
		fmt.Fprintln(&b, r)
	}
	return b.String()
}
