package bench

import (
	"strings"
	"testing"
	"time"
)

// TestAllExperimentsQuick runs every registered experiment in quick
// mode and sanity-checks the output shape.
func TestAllExperimentsQuick(t *testing.T) {
	for _, e := range All() {
		e := e
		t.Run(e.ID, func(t *testing.T) {
			tbl := e.Run(true)
			if tbl.ID == "" || tbl.Title == "" {
				t.Fatalf("experiment %s produced an unlabeled table", e.ID)
			}
			if len(tbl.Rows) == 0 {
				t.Fatalf("experiment %s produced no rows", e.ID)
			}
			for _, row := range tbl.Rows {
				if len(row) != len(tbl.Columns) {
					t.Fatalf("experiment %s: row width %d != %d columns", e.ID, len(row), len(tbl.Columns))
				}
			}
			out := tbl.String()
			if !strings.Contains(out, tbl.Columns[0]) {
				t.Fatalf("experiment %s: printed table missing header", e.ID)
			}
		})
	}
}

func TestByID(t *testing.T) {
	if ByID("e3") == nil || ByID("E3") == nil {
		t.Fatal("ByID should find e3 case-insensitively")
	}
	if ByID("nope") != nil {
		t.Fatal("ByID should return nil for unknown ids")
	}
}

func TestTablePrinter(t *testing.T) {
	tbl := &Table{
		ID:      "T",
		Title:   "demo",
		Columns: []string{"a", "wide-column"},
		Rows:    [][]string{{"1", "x"}, {"a-very-long-cell", "y"}},
		Notes:   []string{"a note"},
	}
	out := tbl.String()
	for _, want := range []string{"== T: demo ==", "wide-column", "a-very-long-cell", "note: a note"} {
		if !strings.Contains(out, want) {
			t.Fatalf("printer missing %q:\n%s", want, out)
		}
	}
	// Header and separator align with the widest cell.
	lines := strings.Split(out, "\n")
	if len(lines) < 4 || len(lines[1]) != len(lines[2]) {
		t.Fatalf("separator misaligned:\n%s", out)
	}
}

func TestFmtDur(t *testing.T) {
	cases := map[time.Duration]string{
		1500 * time.Millisecond: "1.50s",
		2500 * time.Microsecond: "2.50ms",
		900 * time.Microsecond:  "900µs",
	}
	for d, want := range cases {
		if got := fmtDur(d); got != want {
			t.Errorf("fmtDur(%v) = %q, want %q", d, got, want)
		}
	}
}
