package bench

import (
	"testing"
	"time"
)

func TestSummarizeLatency(t *testing.T) {
	if got := summarizeLatency(nil); got != (LatencySummary{}) {
		t.Fatalf("empty samples = %+v, want zero", got)
	}

	// 100 samples of 1ms..100ms: nearest-rank percentiles are exact.
	samples := make([]time.Duration, 100)
	for i := range samples {
		// Reverse order, to check sorting.
		samples[i] = time.Duration(100-i) * time.Millisecond
	}
	s := summarizeLatency(samples)
	if s.N != 100 || s.P50Ms != 50 || s.P95Ms != 95 || s.P99Ms != 99 || s.MaxMs != 100 {
		t.Fatalf("percentiles = %+v, want n=100 p50=50 p95=95 p99=99 max=100", s)
	}

	// Every percentile of a single sample is that sample.
	s = summarizeLatency([]time.Duration{7 * time.Millisecond})
	if s.N != 1 || s.P50Ms != 7 || s.P95Ms != 7 || s.P99Ms != 7 || s.MaxMs != 7 {
		t.Fatalf("single sample = %+v, want all 7ms", s)
	}

	// Three samples (the best-of-3 experiments): p50 is the middle,
	// p95/p99 the max.
	s = summarizeLatency([]time.Duration{3 * time.Millisecond, time.Millisecond, 2 * time.Millisecond})
	if s.P50Ms != 2 || s.P95Ms != 3 || s.P99Ms != 3 || s.MaxMs != 3 {
		t.Fatalf("three samples = %+v, want p50=2 p95=p99=max=3", s)
	}
}
