package bench

import (
	"reflect"
	"testing"
	"time"

	"discoverxfd/internal/telemetry"
)

func TestSummarizeLatency(t *testing.T) {
	if got := summarizeLatency(nil); !reflect.DeepEqual(got, LatencySummary{}) {
		t.Fatalf("empty samples = %+v, want zero", got)
	}

	// 100 samples of 1ms..100ms: nearest-rank percentiles are exact.
	samples := make([]time.Duration, 100)
	for i := range samples {
		// Reverse order, to check sorting.
		samples[i] = time.Duration(100-i) * time.Millisecond
	}
	s := summarizeLatency(samples)
	if s.N != 100 || s.P50Ms != 50 || s.P95Ms != 95 || s.P99Ms != 99 || s.MaxMs != 100 {
		t.Fatalf("percentiles = %+v, want n=100 p50=50 p95=95 p99=99 max=100", s)
	}

	// Every percentile of a single sample is that sample.
	s = summarizeLatency([]time.Duration{7 * time.Millisecond})
	if s.N != 1 || s.P50Ms != 7 || s.P95Ms != 7 || s.P99Ms != 7 || s.MaxMs != 7 {
		t.Fatalf("single sample = %+v, want all 7ms", s)
	}

	// Three samples (the best-of-3 experiments): p50 is the middle,
	// p95/p99 the max.
	s = summarizeLatency([]time.Duration{3 * time.Millisecond, time.Millisecond, 2 * time.Millisecond})
	if s.P50Ms != 2 || s.P95Ms != 3 || s.P99Ms != 3 || s.MaxMs != 3 {
		t.Fatalf("three samples = %+v, want p50=2 p95=p99=max=3", s)
	}
}

func TestLatencyBuckets(t *testing.T) {
	bounds := BucketBoundsMs()
	if len(bounds) != len(telemetry.DurationBuckets) {
		t.Fatalf("bounds = %d entries, want %d", len(bounds), len(telemetry.DurationBuckets))
	}
	if bounds[0] != 1 || bounds[len(bounds)-1] != 60000 {
		t.Fatalf("bounds = %v, want 1ms..60000ms (telemetry.DurationBuckets × 1000)", bounds)
	}

	// Samples straddling the bucket boundaries: cumulative counts are
	// le-inclusive, exactly like a Prometheus _bucket series.
	s := summarizeLatency([]time.Duration{
		time.Millisecond,      // lands in the 1ms bucket (inclusive)
		2 * time.Millisecond,  // 2.5ms bucket
		30 * time.Millisecond, // 50ms bucket
		2 * time.Second,       // 2.5s bucket
		120 * time.Second,     // beyond the last bound: only in N
	})
	if len(s.Buckets) != len(bounds) {
		t.Fatalf("buckets = %d entries, want %d", len(s.Buckets), len(bounds))
	}
	want := map[float64]int{1: 1, 2.5: 2, 5: 2, 25: 2, 50: 3, 1000: 3, 2500: 4, 60000: 4}
	for i, bound := range bounds {
		if exp, ok := want[bound]; ok && s.Buckets[i] != exp {
			t.Errorf("bucket le=%vms = %d, want %d", bound, s.Buckets[i], exp)
		}
	}
	if last := s.Buckets[len(s.Buckets)-1]; s.N-last != 1 {
		t.Errorf("n=%d minus last bucket %d: want exactly the +Inf straggler", s.N, last)
	}

	// Monotone non-decreasing, as any cumulative histogram must be.
	for i := 1; i < len(s.Buckets); i++ {
		if s.Buckets[i] < s.Buckets[i-1] {
			t.Fatalf("buckets not cumulative at %d: %v", i, s.Buckets)
		}
	}
}
