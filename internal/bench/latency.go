package bench

import (
	"sort"
	"time"

	"discoverxfd/internal/telemetry"
)

// LatencySummary is a per-case latency distribution over an
// experiment's repeated runs, reported in the JSON report alongside
// the headline (best-of) cells. Percentiles use the nearest-rank
// method, so every reported value is an actually observed sample.
// Absolute milliseconds are machine-dependent and informational: the
// CI gate compares only within-run speedup ratios, never latencies.
//
// Buckets is the cumulative histogram of the samples over
// telemetry.DurationBuckets converted to milliseconds — the same
// boundaries xfdd's xfd_http_request_duration_seconds histogram uses,
// so a bench distribution lines up bucket-for-bucket with a service
// scrape. Buckets[i] counts samples ≤ BucketBoundsMs()[i]; samples
// beyond the last bound appear only in N (the implicit +Inf bucket).
type LatencySummary struct {
	N       int     `json:"n"`
	P50Ms   float64 `json:"p50_ms"`
	P95Ms   float64 `json:"p95_ms"`
	P99Ms   float64 `json:"p99_ms"`
	MaxMs   float64 `json:"max_ms"`
	Buckets []int   `json:"buckets,omitempty"`
}

// BucketBoundsMs returns the shared latency bucket upper bounds in
// milliseconds (telemetry.DurationBuckets is declared in seconds).
func BucketBoundsMs() []float64 {
	out := make([]float64, len(telemetry.DurationBuckets))
	for i, b := range telemetry.DurationBuckets {
		out[i] = b * 1000
	}
	return out
}

// summarizeLatency condenses run samples into a LatencySummary; an
// empty sample set yields the zero summary.
func summarizeLatency(samples []time.Duration) LatencySummary {
	if len(samples) == 0 {
		return LatencySummary{}
	}
	sorted := make([]time.Duration, len(samples))
	copy(sorted, samples)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	ms := func(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }
	bounds := BucketBoundsMs()
	buckets := make([]int, len(bounds))
	for i, bound := range bounds {
		// Cumulative (le-inclusive), like a Prometheus _bucket series.
		buckets[i] = sort.Search(len(sorted), func(j int) bool {
			return ms(sorted[j]) > bound
		})
	}
	return LatencySummary{
		N:       len(sorted),
		P50Ms:   ms(nearestRank(sorted, 50)),
		P95Ms:   ms(nearestRank(sorted, 95)),
		P99Ms:   ms(nearestRank(sorted, 99)),
		MaxMs:   ms(sorted[len(sorted)-1]),
		Buckets: buckets,
	}
}

// nearestRank returns the p-th percentile of the sorted samples by
// the nearest-rank definition: the smallest sample such that at least
// p% of the set is at or below it.
func nearestRank(sorted []time.Duration, p int) time.Duration {
	rank := (p*len(sorted) + 99) / 100 // ceil(p/100 * n)
	if rank < 1 {
		rank = 1
	}
	if rank > len(sorted) {
		rank = len(sorted)
	}
	return sorted[rank-1]
}
