package bench

import (
	"sort"
	"time"
)

// LatencySummary is a per-case latency distribution over an
// experiment's repeated runs, reported in the JSON report alongside
// the headline (best-of) cells. Percentiles use the nearest-rank
// method, so every reported value is an actually observed sample.
// Absolute milliseconds are machine-dependent and informational: the
// CI gate compares only within-run speedup ratios, never latencies.
type LatencySummary struct {
	N     int     `json:"n"`
	P50Ms float64 `json:"p50_ms"`
	P95Ms float64 `json:"p95_ms"`
	P99Ms float64 `json:"p99_ms"`
	MaxMs float64 `json:"max_ms"`
}

// summarizeLatency condenses run samples into a LatencySummary; an
// empty sample set yields the zero summary.
func summarizeLatency(samples []time.Duration) LatencySummary {
	if len(samples) == 0 {
		return LatencySummary{}
	}
	sorted := make([]time.Duration, len(samples))
	copy(sorted, samples)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	ms := func(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }
	return LatencySummary{
		N:     len(sorted),
		P50Ms: ms(nearestRank(sorted, 50)),
		P95Ms: ms(nearestRank(sorted, 95)),
		P99Ms: ms(nearestRank(sorted, 99)),
		MaxMs: ms(sorted[len(sorted)-1]),
	}
}

// nearestRank returns the p-th percentile of the sorted samples by
// the nearest-rank definition: the smallest sample such that at least
// p% of the set is at or below it.
func nearestRank(sorted []time.Duration, p int) time.Duration {
	rank := (p*len(sorted) + 99) / 100 // ceil(p/100 * n)
	if rank < 1 {
		rank = 1
	}
	if rank > len(sorted) {
		rank = len(sorted)
	}
	return sorted[rank-1]
}
