//go:build race

package bench

// raceEnabled: see race_off_test.go.
const raceEnabled = true
