// Package bench is the experiment harness reconstructing the paper's
// evaluation (Section 5; see DESIGN.md for the reconstruction
// caveat). Each experiment E1–E7 regenerates one table or figure:
// the harness runs the system on generated datasets and prints the
// same rows/series the paper reports. Absolute timings differ from
// the authors' 2006 testbed; the shapes (who wins, by what factor,
// where growth turns super-linear) are the reproduction target.
package bench

import (
	"fmt"
	"io"
	"strings"

	"discoverxfd/internal/core"
)

// Table is one experiment's printable output.
type Table struct {
	ID      string
	Title   string
	Columns []string
	Rows    [][]string
	Notes   []string
	// Metrics carries machine-readable scalars for the JSON report and
	// the CI bench gate. By convention, keys starting with "speedup"
	// are ratios measured within one run (fast vs naive on the same
	// machine) and are what the regression gate compares; other keys
	// (cache hits, allocation counts) are informational.
	Metrics map[string]float64
	// Stats carries full run Stats per case key — the same snapshot a
	// traced run's run_end summarizes — so the JSON report preserves
	// the counters behind the table's derived cells. Informational
	// only: the CI gate never compares Stats.
	Stats map[string]core.Stats
	// Latencies carries per-case latency distributions over the
	// experiment's repeated runs (nearest-rank p50/p95/p99/max).
	// Informational only, like Stats: absolute latencies are
	// machine-dependent and never gated.
	Latencies map[string]LatencySummary
}

// Fprint renders the table with aligned columns.
func (t *Table) Fprint(w io.Writer) {
	fmt.Fprintf(w, "== %s: %s ==\n", t.ID, t.Title)
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				fmt.Fprint(w, "  ")
			}
			fmt.Fprintf(w, "%-*s", widths[i], c)
		}
		fmt.Fprintln(w)
	}
	line(t.Columns)
	seps := make([]string, len(t.Columns))
	for i := range seps {
		seps[i] = strings.Repeat("-", widths[i])
	}
	line(seps)
	for _, row := range t.Rows {
		line(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(w, "note: %s\n", n)
	}
	fmt.Fprintln(w)
}

// String renders the table into a string.
func (t *Table) String() string {
	var b strings.Builder
	t.Fprint(&b)
	return b.String()
}

// Experiment is one registered experiment.
type Experiment struct {
	ID    string
	Title string
	// Run executes the experiment. quick scales parameters down for
	// CI-speed runs; the full configuration reproduces EXPERIMENTS.md.
	Run func(quick bool) *Table
}

// All returns the experiment registry in order.
func All() []Experiment {
	return []Experiment{
		{ID: "e1", Title: "Dataset summary and discovered constraints (Table 1)", Run: E1Datasets},
		{ID: "e2", Title: "Scalability with data size (Figure: time vs size)", Run: E2Scalability},
		{ID: "e3", Title: "Hierarchical vs flat representation (Figure: unrelated set elements)", Run: E3FlatVsHier},
		{ID: "e4", Title: "Schema-width sensitivity (Figure: time vs attributes)", Run: E4SchemaWidth},
		{ID: "e5", Title: "Intra- vs inter-relation discovery cost split", Run: E5IntraInter},
		{ID: "e6", Title: "Pruning-rule ablation", Run: E6Pruning},
		{ID: "e7", Title: "Unordered-set vs ordered-list semantics (Section 4.5 remark)", Run: E7SetVsList},
		{ID: "e8", Title: "Approximate FD recovery under noise (g3 extension)", Run: E8Approximate},
		{ID: "e9", Title: "Refinement convergence (XNF repairs extension)", Run: E9Refinement},
		{ID: "e10", Title: "FD notions compared (Section 2.3)", Run: E10Notions},
		{ID: "e11", Title: "Relational baselines: TANE vs Dep-Miner vs FUN", Run: E11Baselines},
		{ID: "e12", Title: "Parallel discovery over independent subtrees", Run: E12Parallel},
		{ID: "e13", Title: "Partition-engine fast path vs naive engine", Run: E13Partition},
		{ID: "e14", Title: "Engine reuse: warm repeated discovery vs cold one-shot", Run: E14EngineReuse},
		{ID: "e15", Title: "E-update: incremental discovery under document mutations", Run: E15UpdateIncremental},
		{ID: "e16", Title: "Source parity: one corpus ingested per document format", Run: E16SourceParity},
	}
}

// ByID returns the experiment with the given id (case-insensitive),
// or nil.
func ByID(id string) *Experiment {
	id = strings.ToLower(id)
	for _, e := range All() {
		if e.ID == id {
			out := e
			return &out
		}
	}
	return nil
}
