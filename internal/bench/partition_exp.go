package bench

import (
	"fmt"
	"runtime"
	"time"

	"discoverxfd/internal/core"
	"discoverxfd/internal/relation"
	"discoverxfd/internal/trace"
	"discoverxfd/internal/xmlgen"
)

// E13Partition measures the partition-engine fast path (value
// interning, the run-wide partition cache, parallel level products)
// against the naive engine (generic hashed builds, serial products,
// evaluator-only verification — the pre-fast-path configuration, kept
// selectable via Options.NaivePartitions). Both engines run on the
// same datasets in the same process, so the reported speedups are
// within-run ratios, stable across machines; they are what the CI
// bench gate compares against the committed BENCH_partition.json.
//
// The headline row is an E1-style full discovery on a repeated-value
// dataset (small value domains → large partition groups), the shape
// the counting builds and the cache are optimized for.
func E13Partition(quick bool) *Table {
	rows, domRows := 2000, 4000
	if !quick {
		rows, domRows = 8000, 16000
	}
	t := &Table{
		ID:    "E13",
		Title: "Partition-engine fast path vs naive engine",
		Columns: []string{"dataset", "tuples", "naive", "fast", "speedup",
			"cache hits", "cache misses", "par products", "naive allocs", "fast allocs"},
		Metrics:   map[string]float64{},
		Stats:     map[string]core.Stats{},
		Latencies: map[string]LatencySummary{},
		Notes: []string{
			"naive = Options.NaivePartitions: hashed partition builds, serial products, evaluator-only verification",
			"fast = interned dense builds + run-wide partition cache + parallel level products",
			fmt.Sprintf("GOMAXPROCS=%d; speedups are within-run ratios, the quantity the CI gate pins", runtime.GOMAXPROCS(0)),
			"traced_overhead_e1_discovery = fast path with a discard tracer vs untraced, informational (not gated)",
		},
	}

	cases := []struct {
		key  string // metric suffix
		name string
		ds   xmlgen.Dataset
	}{
		{"e1_discovery", "wide repeated-value", xmlgen.Wide(xmlgen.WideParams{
			Rows: rows, Attrs: 10, Domain: 6, FDEvery: 3, Seed: 5})},
		{"low_domain", "wide low-domain", xmlgen.Wide(xmlgen.WideParams{
			Rows: domRows, Attrs: 8, Domain: 3, FDEvery: 2, Seed: 6})},
		{"psd", "psd hierarchy", func() xmlgen.Dataset {
			ps := xmlgen.DefaultPSD()
			ps.Entries *= 4
			ps.ProteinPool *= 4
			return xmlgen.PSD(ps)
		}()},
	}
	for _, c := range cases {
		h, err := relation.Build(c.ds.Tree, c.ds.Schema, relation.Options{})
		if err != nil {
			panic(fmt.Sprintf("bench: %s: %v", c.ds.Name, err))
		}
		naiveOpts := core.Options{PropagatePartial: true, ApproxError: 0.05, NaivePartitions: true}
		fastOpts := core.Options{PropagatePartial: true, ApproxError: 0.05, Parallel: true}

		naiveDur, naiveAllocs, _, naiveSamples := bestDiscover(h, naiveOpts)
		fastDur, fastAllocs, fastRes, fastSamples := bestDiscover(h, fastOpts)
		t.Latencies["naive_"+c.key] = summarizeLatency(naiveSamples)
		t.Latencies["fast_"+c.key] = summarizeLatency(fastSamples)

		speedup := float64(naiveDur) / float64(fastDur)
		st := fastRes.Stats
		t.Rows = append(t.Rows, []string{
			c.name,
			fmt.Sprintf("%d", h.TotalTuples()),
			fmtDur(naiveDur), fmtDur(fastDur),
			fmt.Sprintf("%.2fx", speedup),
			fmt.Sprintf("%d", st.PartitionCacheHits),
			fmt.Sprintf("%d", st.PartitionCacheMisses),
			fmt.Sprintf("%d", st.ParallelProducts),
			fmt.Sprintf("%d", naiveAllocs),
			fmt.Sprintf("%d", fastAllocs),
		})
		t.Metrics["speedup_"+c.key] = speedup
		t.Metrics["cache_hits_"+c.key] = float64(st.PartitionCacheHits)
		t.Metrics["cache_misses_"+c.key] = float64(st.PartitionCacheMisses)
		t.Metrics["parallel_products_"+c.key] = float64(st.ParallelProducts)
		t.Metrics["allocs_naive_"+c.key] = float64(naiveAllocs)
		t.Metrics["allocs_fast_"+c.key] = float64(fastAllocs)
		t.Stats[c.key] = st

		// Tracing overhead on the headline case: the same fast run
		// with every event built and discarded. Informational only —
		// the gated nil-tracer speedups above already pin the
		// tracing-off cost at zero (the hot paths skip event
		// construction entirely when Options.Tracer is nil).
		if c.key == "e1_discovery" {
			tracedOpts := fastOpts
			tracedOpts.Tracer = trace.Discard
			tracedDur, _, _, _ := bestDiscover(h, tracedOpts)
			t.Metrics["traced_overhead_"+c.key] = float64(tracedDur) / float64(fastDur)
		}
	}
	return t
}

// bestDiscover runs Discover three times and returns the best wall
// time, that run's heap allocation count, its result, and every run's
// wall time (for latency summaries).
func bestDiscover(h *relation.Hierarchy, opts core.Options) (time.Duration, uint64, *core.Result, []time.Duration) {
	bestD := time.Duration(1<<62 - 1)
	var bestAllocs uint64
	var bestRes *core.Result
	samples := make([]time.Duration, 0, 3)
	for i := 0; i < 3; i++ {
		var before, after runtime.MemStats
		runtime.ReadMemStats(&before)
		start := time.Now()
		res, err := core.Discover(h, opts)
		if err != nil {
			panic(fmt.Sprintf("bench: %v", err))
		}
		d := time.Since(start)
		runtime.ReadMemStats(&after)
		samples = append(samples, d)
		if d < bestD {
			bestD, bestAllocs, bestRes = d, after.Mallocs-before.Mallocs, res
		}
	}
	return bestD, bestAllocs, bestRes, samples
}
