package bench

import (
	"fmt"
	"time"

	"discoverxfd/internal/core"
	"discoverxfd/internal/datatree"
	"discoverxfd/internal/refine"
	"discoverxfd/internal/relation"
	"discoverxfd/internal/xmlgen"
)

// E8Approximate exercises the approximate-FD extension (TANE's g3
// measure, DESIGN.md "Corrections and extensions"): injected
// dependencies are corrupted at increasing noise rates and must
// reappear as approximate FDs once the error budget covers the noise.
func E8Approximate(quick bool) *Table {
	rows := 400
	if !quick {
		rows = 1200
	}
	t := &Table{
		ID:    "E8",
		Title: "Approximate FD recovery under noise (g3 extension)",
		Columns: []string{"noise ‰", "budget g3", "exact FDs", "approx FDs",
			"injected recovered", "time"},
	}
	budgets := []float64{0.005, 0.02, 0.05}
	for _, noise := range []int{0, 5, 20} {
		for _, budget := range budgets {
			p := xmlgen.DefaultWide(8)
			p.Rows = rows
			p.NoisePermille = noise
			ds := xmlgen.Wide(p)
			h, err := relation.Build(ds.Tree, ds.Schema, relation.Options{})
			if err != nil {
				panic(err)
			}
			start := time.Now()
			res, err := core.Discover(h, core.Options{PropagatePartial: true, ApproxError: budget})
			if err != nil {
				panic(err)
			}
			dur := time.Since(start)

			recovered := 0
			for _, gt := range ds.GroundTruth {
				ok := false
				for _, fd := range res.FDs {
					if fd.Class == gt.Class && fd.RHS == gt.RHS && len(fd.LHS) == 1 && fd.LHS[0] == gt.LHS[0] {
						ok = true
					}
				}
				for _, fd := range res.ApproxFDs {
					if fd.Class == gt.Class && fd.RHS == gt.RHS && len(fd.LHS) == 1 && fd.LHS[0] == gt.LHS[0] {
						ok = true
					}
				}
				if ok {
					recovered++
				}
			}
			t.Rows = append(t.Rows, []string{
				fmt.Sprintf("%d", noise),
				fmt.Sprintf("%.3f", budget),
				fmt.Sprintf("%d", len(res.FDs)),
				fmt.Sprintf("%d", len(res.ApproxFDs)),
				fmt.Sprintf("%d/%d", recovered, len(ds.GroundTruth)),
				fmtDur(dur),
			})
		}
	}
	t.Notes = append(t.Notes,
		"injected single-attribute dependencies; 'recovered' counts those found exactly or approximately",
		"recovery is complete once the g3 budget meets the noise rate, and never spurious at noise 0")
	return t
}

// E9Refinement exercises the schema-refinement extension: repeatedly
// apply the best applicable repair and track how the witnessed
// redundant values fall, until the document is redundancy-free over
// leaf data.
func E9Refinement(quick bool) *Table {
	scale := 1
	if !quick {
		scale = 2
	}
	t := &Table{
		ID:      "E9",
		Title:   "Refinement convergence (XNF repairs)",
		Columns: []string{"dataset", "round", "leaf FDs", "redundant values", "repair applied"},
	}
	wh := xmlgen.DefaultWarehouse()
	wh.States *= scale
	ps := xmlgen.DefaultPSD()
	ps.Entries *= scale
	for _, ds := range []xmlgen.Dataset{xmlgen.Warehouse(wh), xmlgen.PSD(ps)} {
		doc := reparse(ds.Tree)
		for round := 0; round < 12; round++ {
			s, err := datatree.InferSchema(doc)
			if err != nil {
				panic(err)
			}
			h, err := relation.Build(doc, s, relation.Options{})
			if err != nil {
				panic(err)
			}
			res, err := core.Discover(h, core.Options{PropagatePartial: true})
			if err != nil {
				panic(err)
			}
			sugs := refine.Suggest(h, res)
			var next *refine.Suggestion
			for i := range sugs {
				if sugs[i].Applicable {
					next = &sugs[i]
					break
				}
			}
			applied := "-"
			if next != nil {
				if _, err := refine.Apply(doc, h, next.FD); err != nil {
					panic(err)
				}
				applied = next.FD.String()
			}
			t.Rows = append(t.Rows, []string{
				ds.Name,
				fmt.Sprintf("%d", round),
				fmt.Sprintf("%d", len(res.FDs)),
				fmt.Sprintf("%d", totalRedundant(res)),
				applied,
			})
			if next == nil {
				break
			}
		}
	}
	t.Notes = append(t.Notes,
		"each round applies the highest-saving applicable repair; '-' means no applicable repair remains",
		"redundant values fall monotonically toward the set-element and inter-relation residue Apply does not automate")
	return t
}

// reparse deep-copies a tree through its XML serialization so
// experiments can mutate it without touching the generator's output.
func reparse(t *datatree.Tree) *datatree.Tree {
	cp, err := datatree.ParseXMLString(t.XMLString())
	if err != nil {
		panic(err)
	}
	return cp
}
