package bench

import (
	"context"
	"fmt"
	"runtime"
	"time"

	"discoverxfd/internal/core"
	"discoverxfd/internal/relation"
	"discoverxfd/internal/xmlgen"
)

// E14EngineReuse measures the reusable-engine warm path: repeated
// core.Engine.Discover calls over the same hierarchy reuse the
// engine's retained immutable partitions, against cold one-shot runs
// that rebuild every partition from the data. The speedup is a
// within-run ratio (warm and cold runs interleave on the same
// machine), the quantity the CI bench gate pins against the committed
// BENCH_partition.json — the gate protects the warm layer from
// silently degenerating into a cold run.
func E14EngineReuse(quick bool) *Table {
	rows, domRows := 2000, 4000
	if !quick {
		rows, domRows = 8000, 16000
	}
	t := &Table{
		ID:    "E14",
		Title: "Engine reuse: warm repeated discovery vs cold one-shot",
		Columns: []string{"dataset", "tuples", "cold", "warm", "speedup",
			"warm cache hits", "warm cache misses"},
		Metrics: map[string]float64{},
		Stats:   map[string]core.Stats{},
		Notes: []string{
			"cold = one-shot core.Discover per call: every partition rebuilt from the data",
			"warm = repeated Engine.Discover on one engine: immutable partitions carried across runs",
			fmt.Sprintf("GOMAXPROCS=%d; speedups are within-run ratios, the quantity the CI gate pins", runtime.GOMAXPROCS(0)),
		},
	}

	cases := []struct {
		key  string // metric suffix
		name string
		ds   xmlgen.Dataset
	}{
		{"wide", "wide repeated-value", xmlgen.Wide(xmlgen.WideParams{
			Rows: rows, Attrs: 10, Domain: 6, FDEvery: 3, Seed: 5})},
		{"low_domain", "wide low-domain", xmlgen.Wide(xmlgen.WideParams{
			Rows: domRows, Attrs: 8, Domain: 3, FDEvery: 2, Seed: 6})},
		{"psd", "psd hierarchy", func() xmlgen.Dataset {
			ps := xmlgen.DefaultPSD()
			ps.Entries *= 2
			ps.ProteinPool *= 2
			return xmlgen.PSD(ps)
		}()},
	}
	// The wide cases are partition-bound, so their warm-vs-cold ratio
	// is a stable signal and is gated (speedup_ prefix). PSD's runtime
	// is dominated by target checks and FD verification, leaving its
	// ratio near 1.0 — reported for the table, but under a non-gated
	// key so the CI gate doesn't pin measurement noise.
	gated := map[string]bool{"wide": true, "low_domain": true}
	for _, c := range cases {
		h, err := relation.Build(c.ds.Tree, c.ds.Schema, relation.Options{})
		if err != nil {
			panic(fmt.Sprintf("bench: %s: %v", c.ds.Name, err))
		}
		opts := core.Options{PropagatePartial: true, ApproxError: 0.05}

		coldDur, _, _, _ := bestDiscover(h, opts)

		eng := core.NewEngine(opts)
		if _, err := eng.Discover(context.Background(), h); err != nil {
			panic(fmt.Sprintf("bench: %v", err))
		}
		warmDur, warmRes := bestEngineDiscover(eng, h)

		speedup := float64(coldDur) / float64(warmDur)
		st := warmRes.Stats
		t.Rows = append(t.Rows, []string{
			c.name,
			fmt.Sprintf("%d", h.TotalTuples()),
			fmtDur(coldDur), fmtDur(warmDur),
			fmt.Sprintf("%.2fx", speedup),
			fmt.Sprintf("%d", st.PartitionCacheHits),
			fmt.Sprintf("%d", st.PartitionCacheMisses),
		})
		if gated[c.key] {
			t.Metrics["speedup_engine_reuse_"+c.key] = speedup
		} else {
			t.Metrics["warm_ratio_"+c.key] = speedup
		}
		t.Metrics["warm_cache_hits_"+c.key] = float64(st.PartitionCacheHits)
		t.Metrics["warm_cache_misses_"+c.key] = float64(st.PartitionCacheMisses)
		t.Stats[c.key] = st
	}
	return t
}

// bestEngineDiscover runs Engine.Discover three times on an
// already-warmed engine and returns the best wall time and that run's
// result.
func bestEngineDiscover(eng *core.Engine, h *relation.Hierarchy) (time.Duration, *core.Result) {
	bestD := time.Duration(1<<62 - 1)
	var bestRes *core.Result
	for i := 0; i < 3; i++ {
		start := time.Now()
		res, err := eng.Discover(context.Background(), h)
		if err != nil {
			panic(fmt.Sprintf("bench: %v", err))
		}
		if d := time.Since(start); d < bestD {
			bestD, bestRes = d, res
		}
	}
	return bestD, bestRes
}
