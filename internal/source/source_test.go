package source

import (
	"errors"
	"io"
	"strings"
	"testing"

	"discoverxfd/internal/datatree"
)

func TestRegistry(t *testing.T) {
	if got := len(All()); got != 2 {
		t.Fatalf("registry has %d sources, want 2", got)
	}
	for _, format := range []string{"xml", "json", " XML ", "Json"} {
		src, err := ByFormat(format)
		if err != nil {
			t.Errorf("ByFormat(%q): %v", format, err)
			continue
		}
		if want := strings.ToLower(strings.TrimSpace(format)); src.Format() != want {
			t.Errorf("ByFormat(%q).Format() = %q", format, src.Format())
		}
	}
	if _, err := ByFormat("yaml"); err == nil {
		t.Error("ByFormat(yaml) succeeded")
	}
	if src, ok := ByExtension("a/b/doc.JSON"); !ok || src.Format() != "json" {
		t.Errorf("ByExtension(.JSON) = %v, %v", src, ok)
	}
	if _, ok := ByExtension("doc.txt"); ok {
		t.Error("ByExtension(.txt) succeeded")
	}
}

func TestDetect(t *testing.T) {
	cases := []struct {
		name, body, want string
	}{
		{"doc.xml", `{"not": "consulted"}`, "xml"}, // extension wins
		{"doc.json", `<a/>`, "json"},
		{"stdin", `  <warehouse></warehouse>`, "xml"},
		{"stdin", "\n\t{\"warehouse\": {}}", "json"},
		{"stdin", `[1, 2]`, "json"},
	}
	for _, c := range cases {
		src, r, err := Detect(c.name, strings.NewReader(c.body))
		if err != nil {
			t.Errorf("Detect(%q, %q): %v", c.name, c.body, err)
			continue
		}
		if src.Format() != c.want {
			t.Errorf("Detect(%q, %q) = %q, want %q", c.name, c.body, src.Format(), c.want)
		}
		// The returned reader must replay the sniffed prefix.
		got, _ := io.ReadAll(r)
		if string(got) != c.body {
			t.Errorf("Detect consumed input: got %q, want %q", got, c.body)
		}
	}
	if _, _, err := Detect("stdin", strings.NewReader("plain text")); !errors.Is(err, ErrUnknownFormat) {
		t.Errorf("Detect(plain text) = %v, want ErrUnknownFormat", err)
	}
	if _, _, err := Detect("stdin", strings.NewReader("")); !errors.Is(err, ErrUnknownFormat) {
		t.Errorf("Detect(empty) = %v, want ErrUnknownFormat", err)
	}
}

// TestSourceLoadParity pins that loading the same logical document
// through either registered source yields conformant trees under each
// other's obvious schema expectations (labels and values line up).
func TestSourceLoadParity(t *testing.T) {
	xmlSrc, _ := ByFormat("xml")
	jsonSrc, _ := ByFormat("json")
	lim := datatree.DefaultLimits()
	xt, err := xmlSrc.Load(t.Context(), strings.NewReader(`<r><a>1</a><a>2</a><b>x</b></r>`), lim)
	if err != nil {
		t.Fatal(err)
	}
	jt, err := jsonSrc.Load(t.Context(), strings.NewReader(`{"r": {"a": [1, 2], "b": "x"}}`), lim)
	if err != nil {
		t.Fatal(err)
	}
	if xt.String() != jt.String() {
		t.Fatalf("XML and JSON spellings of the same document diverge:\nxml:\n%s\njson:\n%s", xt, jt)
	}
}
