// Package xmldoc is the XML document source: the original front-end
// of the system, repackaged behind the source seam. The parser itself
// lives in internal/datatree (it is the data model's native
// serialization, shared by WriteXML and the golden corpora); this
// package adapts it to the source.Source and source.Streamer
// contracts so the engine reaches XML the same way it reaches every
// other format.
package xmldoc

import (
	"context"
	"io"

	"discoverxfd/internal/datatree"
)

// Doc is the XML source backend.
type Doc struct{}

// New returns the XML source backend.
func New() Doc { return Doc{} }

// Format returns "xml".
func (Doc) Format() string { return "xml" }

// Extensions returns the file extensions the XML format claims.
func (Doc) Extensions() []string { return []string{".xml"} }

// Sniff reports whether the content prefix looks like an XML
// document: the first non-whitespace byte is '<'.
func (Doc) Sniff(prefix []byte) bool {
	for _, b := range prefix {
		switch b {
		case ' ', '\t', '\r', '\n':
			continue
		case '<':
			return true
		default:
			return false
		}
	}
	return false
}

// Load parses an XML document into a data tree (see
// datatree.ParseXMLContext for the attribute and mixed-content
// conventions).
func (Doc) Load(ctx context.Context, r io.Reader, lim datatree.ParseLimits) (*datatree.Tree, error) {
	return datatree.ParseXMLContext(ctx, r, lim)
}

// Stream delivers the root element's direct children one subtree at a
// time (see datatree.StreamRootChildrenContext).
func (Doc) Stream(ctx context.Context, r io.Reader, lim datatree.ParseLimits, fn func(*datatree.Node) error) (string, error) {
	return datatree.StreamRootChildrenContext(ctx, r, lim, fn)
}
