// Package source defines the pluggable document-producer layer: the
// seam between concrete document formats (XML, JSON) and the
// format-agnostic engine. A Source turns a byte stream into the data
// tree of Yu & Jagadish's model (internal/datatree); a Streamer
// additionally emits root-child subtrees one at a time, which
// relation.Ingest converts into tuples without materializing the
// document. Everything above this seam — schema inference,
// hierarchical representation, partition discovery — is unchanged
// across formats; that is the point of the layer.
package source

import (
	"bufio"
	"context"
	"errors"
	"fmt"
	"io"

	"discoverxfd/internal/datatree"
)

// ErrUnknownFormat is returned when neither the file extension nor
// the content prefix identifies a registered document format.
// Classify with errors.Is through any wrapping the call path adds.
var ErrUnknownFormat = errors.New("source: unknown document format")

// Source is one document-format backend: it names the format,
// declares how to recognize it, and loads a document into the shared
// data-tree model.
type Source interface {
	// Format is the backend's canonical name ("xml", "json"), the
	// value -format flags and Input.Format carry.
	Format() string
	// Extensions lists the file extensions (with leading dot, lower
	// case) the format claims for extension-based detection.
	Extensions() []string
	// Sniff reports whether the given content prefix looks like this
	// format (first non-whitespace byte heuristics).
	Sniff(prefix []byte) bool
	// Load parses one document from r into a data tree under the
	// parse limits, checking ctx periodically.
	Load(ctx context.Context, r io.Reader, lim datatree.ParseLimits) (*datatree.Tree, error)
}

// Streamer is implemented by sources that can deliver the document
// root's direct children one subtree at a time, for ingestion without
// materializing the whole tree (see relation.Ingest).
type Streamer interface {
	Source
	// Stream parses the document, invoking fn once per root-child
	// subtree, and returns the root element's label.
	Stream(ctx context.Context, r io.Reader, lim datatree.ParseLimits, fn func(*datatree.Node) error) (string, error)
}

// Input is one document handed to relation.Ingest: either a
// materialized tree or a stream of root-child subtrees. Exactly one
// of Tree and Stream must be set.
type Input struct {
	// Format names the producing backend (informational; the engine
	// is format-agnostic once a tree or stream exists).
	Format string
	// Tree is the materialized document.
	Tree *datatree.Tree
	// Stream delivers the document root's direct children to fn one
	// subtree at a time and returns the root element's label. The
	// producer owns its reader and parse limits; fn's error aborts
	// the stream and is returned unchanged.
	Stream func(ctx context.Context, fn func(*datatree.Node) error) (string, error)
}

// sniffLen is how many leading bytes Detect peeks at to classify
// content whose extension is unknown.
const sniffLen = 512

// Detect resolves the source for a named input: the file extension
// decides when a registered format claims it, otherwise the first
// bytes of r are peeked. It returns the chosen source and a reader
// that replays the peeked bytes (use it in place of r). An input no
// format claims fails with ErrUnknownFormat.
func Detect(name string, r io.Reader) (Source, io.Reader, error) {
	if s, ok := ByExtension(name); ok {
		return s, r, nil
	}
	br := bufio.NewReaderSize(r, sniffLen)
	prefix, err := br.Peek(sniffLen)
	if err != nil && err != io.EOF {
		return nil, br, err
	}
	for _, s := range All() {
		if s.Sniff(prefix) {
			return s, br, nil
		}
	}
	return nil, br, fmt.Errorf("%w: %q has no recognized extension and its content matches no registered format", ErrUnknownFormat, name)
}
