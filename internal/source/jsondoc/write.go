package jsondoc

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"strings"

	"discoverxfd/internal/datatree"
	"discoverxfd/internal/schema"
)

// Write serializes a data tree as an indented JSON document under the
// schema's declarations, inverting the Parse mapping: the root
// element becomes the single member of the top-level object, declared
// set elements become arrays (even with one member), singleton
// records become objects, and simple leaves become scalars —
// int/float values as number literals when their spelling is a valid
// JSON number (as strings otherwise), str values as strings, and
// valueless leaves as null. Same-label children are grouped at their
// label's first occurrence, so documents whose set members are
// interleaved with other labels reorder; document order within one
// label is preserved.
//
// The root element must be record-typed: a scalar root could not
// carry its label through the single-member-object convention that
// Parse uses to recover it.
func Write(w io.Writer, t *datatree.Tree, s *schema.Schema) error {
	if t == nil || t.Root == nil {
		return fmt.Errorf("jsondoc: empty tree")
	}
	if s == nil {
		return fmt.Errorf("jsondoc: Write requires a schema (sets and leaf types are declarations)")
	}
	if t.Root.Label != s.Root {
		return fmt.Errorf("jsondoc: root label %q does not match schema root %q", t.Root.Label, s.Root)
	}
	rootEl, err := s.Resolve(schema.PathOf(s.Root))
	if err != nil {
		return err
	}
	if rootEl.Payload.Kind != schema.Record && rootEl.Payload.Kind != schema.Choice {
		return fmt.Errorf("jsondoc: root element %q is %s-typed; only a record root round-trips its label", s.Root, rootEl.Payload.Kind)
	}
	var buf bytes.Buffer
	buf.WriteByte('{')
	writeString(&buf, t.Root.Label)
	buf.WriteByte(':')
	if err := writeValue(&buf, t.Root, rootEl.Path, rootEl.Payload, s); err != nil {
		return err
	}
	buf.WriteByte('}')

	var out bytes.Buffer
	if err := json.Indent(&out, buf.Bytes(), "", "  "); err != nil {
		return fmt.Errorf("jsondoc: internal serialization error: %w", err)
	}
	out.WriteByte('\n')
	_, err = w.Write(out.Bytes())
	return err
}

// writeValue renders one node's payload: a scalar for simple-typed
// elements, an object for records.
func writeValue(buf *bytes.Buffer, n *datatree.Node, path schema.Path, payload *schema.Type, s *schema.Schema) error {
	if payload.Kind.IsSimple() {
		if len(n.Children) > 0 {
			return fmt.Errorf("jsondoc: node %s declared %s but has children", n.Path(), payload.Kind)
		}
		if !n.HasValue {
			buf.WriteString("null")
			return nil
		}
		v := n.Value
		if payload.Kind != schema.String && isJSONNumber(v) {
			buf.WriteString(strings.TrimSpace(v))
		} else {
			writeString(buf, v)
		}
		return nil
	}
	if n.HasValue {
		return fmt.Errorf("jsondoc: complex node %s carries a direct value (fold it under %s first)", n.Path(), datatree.TextLabel)
	}
	declared := make(map[string]schema.Field, len(payload.Fields))
	for _, f := range payload.Fields {
		declared[f.Label] = f
	}
	// Group children by label at first occurrence, preserving document
	// order within each label.
	var order []string
	groups := make(map[string][]*datatree.Node)
	for _, c := range n.Children {
		if len(groups[c.Label]) == 0 {
			order = append(order, c.Label)
		}
		groups[c.Label] = append(groups[c.Label], c)
	}
	buf.WriteByte('{')
	for i, label := range order {
		f, ok := declared[label]
		if !ok {
			return fmt.Errorf("jsondoc: node %s: undeclared child %q", n.Path(), label)
		}
		if err := validLabel(label); err != nil {
			return err
		}
		if i > 0 {
			buf.WriteByte(',')
		}
		writeString(buf, label)
		buf.WriteByte(':')
		members := groups[label]
		childPath := path.Child(label)
		if f.Type.Kind == schema.Set {
			buf.WriteByte('[')
			for j, m := range members {
				if j > 0 {
					buf.WriteByte(',')
				}
				if err := writeValue(buf, m, childPath, f.Type.Elem, s); err != nil {
					return err
				}
			}
			buf.WriteByte(']')
			continue
		}
		if len(members) > 1 {
			return fmt.Errorf("jsondoc: node %s: non-set child %q occurs %d times", n.Path(), label, len(members))
		}
		if err := writeValue(buf, members[0], childPath, f.Type, s); err != nil {
			return err
		}
	}
	buf.WriteByte('}')
	return nil
}

// writeString appends a JSON string literal.
func writeString(buf *bytes.Buffer, s string) {
	b, err := json.Marshal(s)
	if err != nil { // strings cannot fail to marshal
		panic(err)
	}
	buf.Write(b)
}

// isJSONNumber reports whether the value's exact spelling is a valid
// JSON number literal, so it can be emitted raw and reload with its
// spelling (and inferred type) intact.
func isJSONNumber(v string) bool {
	v = strings.TrimSpace(v)
	if v == "" {
		return false
	}
	var n json.Number
	dec := json.NewDecoder(strings.NewReader(v))
	dec.UseNumber()
	if err := dec.Decode(&n); err != nil {
		return false
	}
	return string(n) == v
}
