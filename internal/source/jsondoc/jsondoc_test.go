package jsondoc

import (
	"context"
	"strings"
	"testing"

	"discoverxfd/internal/datatree"
	"discoverxfd/internal/schema"
)

// mustParse parses a JSON document or fails the test.
func mustParse(t *testing.T, src string) *datatree.Tree {
	t.Helper()
	tree, err := ParseString(src)
	if err != nil {
		t.Fatalf("ParseString(%q): %v", src, err)
	}
	return tree
}

// inferConform asserts the documented invariant that an inferred
// schema accepts its own tree, and returns the schema.
func inferConform(t *testing.T, tree *datatree.Tree) *schema.Schema {
	t.Helper()
	s, err := datatree.InferSchema(tree)
	if err != nil {
		t.Fatalf("InferSchema: %v", err)
	}
	if err := datatree.Conform(tree, s); err != nil {
		t.Fatalf("inferred schema rejects its own tree: %v\nschema:\n%s\ntree:\n%s", err, s, tree)
	}
	return s
}

func TestParseRootSelection(t *testing.T) {
	// A single object-valued member names the root element.
	tree := mustParse(t, `{"warehouse": {"a": "x"}}`)
	if tree.Root.Label != "warehouse" {
		t.Fatalf("root = %q, want warehouse", tree.Root.Label)
	}
	if c := tree.Root.Child("a"); c == nil || c.Value != "x" {
		t.Fatalf("child a missing or wrong: %v", c)
	}

	// Several members land under the synthetic root.
	tree = mustParse(t, `{"a": 1, "b": 2}`)
	if tree.Root.Label != SyntheticRoot {
		t.Fatalf("root = %q, want %q", tree.Root.Label, SyntheticRoot)
	}

	// A single scalar- or array-valued member also stays synthetic.
	tree = mustParse(t, `{"a": [1, 2]}`)
	if tree.Root.Label != SyntheticRoot || len(tree.Root.ChildrenLabeled("a")) != 2 {
		t.Fatalf("array-valued single member mis-rooted: %s", tree)
	}

	// A top-level array becomes item children of the synthetic root.
	tree = mustParse(t, `[{"x": 1}, {"x": 2}]`)
	if tree.Root.Label != SyntheticRoot || len(tree.Root.ChildrenLabeled(ItemLabel)) != 2 {
		t.Fatalf("top-level array mis-rooted: %s", tree)
	}
}

// TestParseRootDemotion pins the tricky decoder-lookahead case: the
// first member parses as the root candidate, then a second member
// forces it under the synthetic root — and the hints its subtree
// recorded must move with it.
func TestParseRootDemotion(t *testing.T) {
	tree := mustParse(t, `{"a": {"xs": [5]}, "b": 1}`)
	if tree.Root.Label != SyntheticRoot {
		t.Fatalf("root = %q, want %q", tree.Root.Label, SyntheticRoot)
	}
	hinted := schema.PathOf(SyntheticRoot, "a", "xs")
	if !tree.SetHinted(hinted) {
		t.Fatalf("hint not re-anchored; hints = %v", tree.SetHints())
	}
	s := inferConform(t, tree)
	el, err := s.Resolve(hinted)
	if err != nil || !el.Repeatable {
		t.Fatalf("demoted singleton array not inferred as set: %v (err %v)", s, err)
	}
}

func TestParseSingletonArrayHint(t *testing.T) {
	tree := mustParse(t, `{"r": {"xs": [5]}}`)
	s := inferConform(t, tree)
	el, err := s.Resolve(schema.PathOf("r", "xs"))
	if err != nil {
		t.Fatal(err)
	}
	if !el.Repeatable {
		t.Fatalf("singleton JSON array must infer as a set element:\n%s", s)
	}
	if el.Payload.Kind != schema.Int {
		t.Fatalf("xs payload = %v, want int", el.Payload.Kind)
	}
}

func TestParseEmptyShapes(t *testing.T) {
	// Empty array: the member is missing entirely.
	tree := mustParse(t, `{"r": {"xs": [], "y": 1}}`)
	if tree.Root.Child("xs") != nil {
		t.Fatalf("empty array produced a node: %s", tree)
	}
	s := inferConform(t, tree)
	if _, err := s.Resolve(schema.PathOf("r", "xs")); err == nil {
		t.Fatalf("empty array leaked into the schema:\n%s", s)
	}

	// Empty object: a present, childless, valueless node.
	tree = mustParse(t, `{"r": {"o": {}, "y": 1}}`)
	o := tree.Root.Child("o")
	if o == nil || o.HasValue || len(o.Children) != 0 {
		t.Fatalf("empty object node wrong: %v", o)
	}
	inferConform(t, tree)

	// Empty top-level object.
	tree = mustParse(t, `{}`)
	if tree.Root.Label != SyntheticRoot || tree.Size() != 1 {
		t.Fatalf("empty document mis-parsed: %s", tree)
	}
	inferConform(t, tree)
}

func TestParseNullVersusMissing(t *testing.T) {
	tree := mustParse(t, `{"r": {"rows": [{"a": 1, "b": null}, {"a": 2}]}}`)
	rows := tree.Root.ChildrenLabeled("rows")
	if len(rows) != 2 {
		t.Fatalf("want 2 rows, got %d", len(rows))
	}
	b := rows[0].Child("b")
	if b == nil {
		t.Fatal("explicit null must produce a present node")
	}
	if b.HasValue {
		t.Fatalf("null node carries a value %q", b.Value)
	}
	if rows[1].Child("b") != nil {
		t.Fatal("missing member must not produce a node")
	}
	// The null'd key still shapes the schema; its type comes from
	// nowhere, so it defaults to str.
	s := inferConform(t, tree)
	el, err := s.Resolve(schema.PathOf("r", "rows", "b"))
	if err != nil {
		t.Fatalf("present-but-null member missing from schema: %v\n%s", err, s)
	}
	if el.Payload.Kind != schema.String {
		t.Fatalf("b payload = %v, want str", el.Payload.Kind)
	}
}

func TestParseHeterogeneousArray(t *testing.T) {
	// Scalars mixed with records at one path: the scalars normalize to
	// records carrying their value under @text, the XML mixed-content
	// convention, so the inferred schema accepts the tree.
	tree := mustParse(t, `{"r": {"xs": [1, {"a": 2}, "s"]}}`)
	xs := tree.Root.ChildrenLabeled("xs")
	if len(xs) != 3 {
		t.Fatalf("want 3 members, got %d", len(xs))
	}
	for i, want := range []string{"1", "", "s"} {
		n := xs[i]
		if n.HasValue {
			t.Fatalf("member %d kept a direct value %q after normalization", i, n.Value)
		}
		if want == "" {
			continue
		}
		txt := n.Child(datatree.TextLabel)
		if txt == nil || txt.Value != want {
			t.Fatalf("member %d @text = %v, want %q", i, txt, want)
		}
	}
	inferConform(t, tree)

	// Scalar-only heterogeneous arrays just widen the leaf type.
	tree = mustParse(t, `{"r": {"xs": [1, "x", 2.5]}}`)
	s := inferConform(t, tree)
	el, _ := s.Resolve(schema.PathOf("r", "xs"))
	if el.Payload.Kind != schema.String {
		t.Fatalf("mixed scalars should widen to str, got %v", el.Payload.Kind)
	}
}

// TestParseCascadingNormalization pins the fixpoint: converting a
// scalar into an @text leaf can itself collide with record-valued
// "@text" members from the data, one level down.
func TestParseCascadingNormalization(t *testing.T) {
	tree := mustParse(t, `{"r": {"xs": [{"@text": {"x": 1}}, "scalar"]}}`)
	inferConform(t, tree)
}

func TestParseDeeplyNestedMixedShapes(t *testing.T) {
	src := `{"r": {
		"m": [[1, 2], [3]],
		"g": [{"rows": [{"cells": [{"v": 1}, {"v": null}]}, {"cells": []}]}],
		"solo": {"deep": {"deeper": [true, false]}}
	}}`
	tree := mustParse(t, src)
	s := inferConform(t, tree)

	// Nested arrays wrap their members in "item" records.
	m, err := s.Resolve(schema.PathOf("r", "m"))
	if err != nil || !m.Repeatable || m.Payload.Kind != schema.Record {
		t.Fatalf("m = %+v (err %v), want repeatable record", m, err)
	}
	item, err := s.Resolve(schema.PathOf("r", "m", ItemLabel))
	if err != nil || !item.Repeatable || item.Payload.Kind != schema.Int {
		t.Fatalf("m/item = %+v (err %v), want repeatable int", item, err)
	}
	cells, err := s.Resolve(schema.PathOf("r", "g", "rows", "cells"))
	if err != nil || !cells.Repeatable {
		t.Fatalf("g/rows/cells = %+v (err %v), want repeatable", cells, err)
	}
	deeper, err := s.Resolve(schema.PathOf("r", "solo", "deep", "deeper"))
	if err != nil || !deeper.Repeatable || deeper.Payload.Kind != schema.String {
		t.Fatalf("solo/deep/deeper = %+v (err %v), want repeatable str (booleans)", deeper, err)
	}
}

func TestParseScalarLiterals(t *testing.T) {
	tree := mustParse(t, `{"r": {"f": 1.50, "i": 42, "e": 1e3, "b": true, "s": "x y"}}`)
	want := map[string]string{"f": "1.50", "i": "42", "e": "1e3", "b": "true", "s": "x y"}
	for label, v := range want {
		n := tree.Root.Child(label)
		if n == nil || n.Value != v {
			t.Fatalf("%s = %v, want value %q (literals must be kept verbatim)", label, n, v)
		}
	}
	s := inferConform(t, tree)
	kinds := map[string]schema.Kind{"f": schema.Float, "i": schema.Int, "e": schema.Float, "b": schema.String, "s": schema.String}
	for label, k := range kinds {
		el, err := s.Resolve(schema.PathOf("r", label))
		if err != nil || el.Payload.Kind != k {
			t.Fatalf("%s kind = %v (err %v), want %v", label, el.Payload.Kind, err, k)
		}
	}
}

func TestParseDuplicateKeysBecomeSets(t *testing.T) {
	tree := mustParse(t, `{"r": {"a": 1, "a": 2}}`)
	if n := len(tree.Root.ChildrenLabeled("a")); n != 2 {
		t.Fatalf("want 2 children for duplicate key, got %d", n)
	}
	s := inferConform(t, tree)
	el, err := s.Resolve(schema.PathOf("r", "a"))
	if err != nil || !el.Repeatable {
		t.Fatalf("duplicate keys must infer as a set: %+v (err %v)", el, err)
	}
}

func TestParseRejectsBadInput(t *testing.T) {
	bad := []string{
		`42`,                          // top-level scalar
		`"x"`,                         // top-level string
		``,                            // empty input
		`{"a": 1} {"b": 2}`,           // trailing data
		`{"a": 1,}`,                   // malformed JSON
		`{"": 1}`,                     // empty label
		`{"r": {".": 1}}`,             // path syntax
		`{"r": {"a/b": 1}}`,           // path separator
		`{"r": {"a:b": 1}}`,           // schema notation separator
		`{"r": {"a b": 1}}`,           // whitespace
		`{"r": {"#c": 1}}`,            // schema comment
		`{"r": {"a,b": 1}}`,           // constraint-notation separator
		`{"r": {"a{b": 1}}`,           // constraint-notation brace
		"{\"r\": {\"a\\u0000b\": 1}}", // control character
	}
	for _, src := range bad {
		if _, err := ParseString(src); err == nil {
			t.Errorf("ParseString(%q) succeeded, want error", src)
		}
	}
}

func TestParseLimits(t *testing.T) {
	deep := `{"r": {"a": {"b": {"c": {"d": 1}}}}}`
	if _, err := ParseContext(context.Background(), strings.NewReader(deep), datatree.ParseLimits{MaxDepth: 3}); err == nil {
		t.Error("MaxDepth not enforced")
	}
	if _, err := ParseContext(context.Background(), strings.NewReader(deep), datatree.ParseLimits{MaxDepth: 10}); err != nil {
		t.Errorf("MaxDepth 10 should admit depth-5 document: %v", err)
	}
	wide := `{"r": {"xs": [1, 2, 3, 4, 5, 6, 7, 8]}}`
	if _, err := ParseContext(context.Background(), strings.NewReader(wide), datatree.ParseLimits{MaxNodes: 4}); err == nil {
		t.Error("MaxNodes not enforced")
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	var b strings.Builder
	b.WriteString(`{"r": {"xs": [`)
	for i := 0; i < 5000; i++ {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString("1")
	}
	b.WriteString(`]}}`)
	if _, err := ParseContext(ctx, strings.NewReader(b.String()), datatree.DefaultLimits()); err == nil {
		t.Error("cancellation not observed")
	}
}

func TestSniff(t *testing.T) {
	d := New()
	for _, src := range []string{`{"a":1}`, "  \n\t[1]"} {
		if !d.Sniff([]byte(src)) {
			t.Errorf("Sniff(%q) = false", src)
		}
	}
	for _, src := range []string{`<a/>`, "hello", ""} {
		if d.Sniff([]byte(src)) {
			t.Errorf("Sniff(%q) = true", src)
		}
	}
}
