// Package jsondoc is the JSON document source: it parses JSON
// documents into the same data-tree model the XML front-end produces,
// so schema inference, the hierarchical representation, and discovery
// run unchanged (the nested-dependency mapping of Mior 2021 lands
// exactly on the paper's set-element model). The mapping:
//
//	object member k: {...}   →  one child node labeled k (a singleton
//	                            record element)
//	object member k: [...]   →  one child labeled k per array member,
//	                            and the path is hinted repeatable
//	                            (arrays → set elements, even with one
//	                            member)
//	object member k: scalar  →  a leaf child labeled k carrying the
//	                            value (numbers keep their literal
//	                            spelling, booleans become "true"/
//	                            "false")
//	object member k: null    →  a valueless leaf child — present but
//	                            null, distinct from a missing member
//	                            (the key still shapes the inferred
//	                            schema; an absent key does not)
//	array inside an array    →  a wrapper record whose members are
//	                            children labeled "item" (hinted
//	                            repeatable)
//	empty array              →  no node at all (the member is missing;
//	                            sibling occurrences still shape the
//	                            schema)
//
// The document root follows the common export convention: a top-level
// object with exactly one member whose value is an object names the
// root element; any other top-level object or array becomes the
// payload of a synthetic root labeled "document".
//
// Mixed arrays such as [1, {"a": 2}] hold scalars and records at one
// path; the scalar members are normalized into records carrying their
// value under "@text" — the same convention the XML front-end uses
// for mixed content — so the inferred schema always accepts the tree.
//
// Member names become element labels and must survive the path and
// schema-text notations, so names that are empty, ".", "..", start
// with '#', or contain '/', ':', ',', '{', '}', whitespace, or
// control characters are rejected as unrepresentable.
package jsondoc

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"
	"unicode"

	"discoverxfd/internal/datatree"
	"discoverxfd/internal/schema"
)

// SyntheticRoot is the root label given to documents whose top level
// does not name one (a bare array, or an object with several
// members).
const SyntheticRoot = "document"

// ItemLabel is the element label given to the members of an array
// nested directly inside another array, which JSON leaves unnamed.
const ItemLabel = "item"

// Doc is the JSON source backend.
type Doc struct{}

// New returns the JSON source backend.
func New() Doc { return Doc{} }

// Format returns "json".
func (Doc) Format() string { return "json" }

// Extensions returns the file extensions the JSON format claims.
func (Doc) Extensions() []string { return []string{".json"} }

// Sniff reports whether the content prefix looks like a JSON
// document: the first non-whitespace byte opens an object or array.
func (Doc) Sniff(prefix []byte) bool {
	for _, b := range prefix {
		switch b {
		case ' ', '\t', '\r', '\n':
			continue
		case '{', '[':
			return true
		default:
			return false
		}
	}
	return false
}

// Load parses a JSON document into a data tree (ParseContext).
func (Doc) Load(ctx context.Context, r io.Reader, lim datatree.ParseLimits) (*datatree.Tree, error) {
	return ParseContext(ctx, r, lim)
}

// Parse reads a JSON document from r under the parser's default
// limits; use ParseContext for explicit limits or cancellation.
func Parse(r io.Reader) (*datatree.Tree, error) {
	return ParseContext(context.Background(), r, datatree.DefaultLimits())
}

// ParseString is Parse over a string.
func ParseString(s string) (*datatree.Tree, error) {
	return Parse(strings.NewReader(s))
}

// ctxCheckInterval is how many decoder tokens are processed between
// context-cancellation checks.
const ctxCheckInterval = 1024

// parser carries the decoding state: the token stream, the resource
// guard, and the set-element hints collected from arrays.
type parser struct {
	ctx    context.Context
	dec    *json.Decoder
	lim    datatree.ParseLimits
	nodes  int
	tokens int
	hints  map[schema.Path]bool
}

// ParseContext is Parse with explicit resource limits and a context.
// Cancellation is checked periodically between decoder tokens;
// exceeding a limit, malformed JSON, or an unrepresentable member
// name aborts the parse with a "jsondoc:" error.
func ParseContext(ctx context.Context, r io.Reader, lim datatree.ParseLimits) (*datatree.Tree, error) {
	dec := json.NewDecoder(r)
	dec.UseNumber() // keep number literals verbatim (and member order deterministic)
	p := &parser{ctx: ctx, dec: dec, lim: lim, hints: make(map[schema.Path]bool)}

	tok, err := p.next()
	if err != nil {
		if err == io.EOF {
			return nil, fmt.Errorf("jsondoc: document is empty")
		}
		return nil, err
	}
	var root *datatree.Node
	switch d, ok := tok.(json.Delim); {
	case ok && d == '{':
		if root, err = p.rootObject(); err != nil {
			return nil, err
		}
	case ok && d == '[':
		root = &datatree.Node{Label: SyntheticRoot}
		p.nodes++
		if err := p.array(root, ItemLabel, schema.PathOf(SyntheticRoot).Child(ItemLabel), 2); err != nil {
			return nil, err
		}
	default:
		return nil, fmt.Errorf("jsondoc: top-level value must be an object or array, got %v", tok)
	}
	if _, err := p.dec.Token(); err != io.EOF {
		return nil, fmt.Errorf("jsondoc: trailing data after the document (offset %d)", p.dec.InputOffset())
	}
	if err := p.normalizeMixed(root); err != nil {
		return nil, err
	}
	t := datatree.NewTree(root)
	paths := make([]schema.Path, 0, len(p.hints))
	for h := range p.hints {
		paths = append(paths, h)
	}
	sort.Slice(paths, func(i, j int) bool { return paths[i] < paths[j] })
	for _, h := range paths {
		t.HintSet(h)
	}
	return t, nil
}

// rootObject parses the top-level object (its '{' already consumed):
// a single member holding an object names the root element, anything
// else lands under the synthetic root. The decoder has no lookahead,
// so the first member is parsed as the root candidate and demoted
// under the synthetic root if a second member follows.
func (p *parser) rootObject() (*datatree.Node, error) {
	rootPath := schema.PathOf(SyntheticRoot)
	if !p.dec.More() { // {}
		if err := p.addNodes(1); err != nil {
			return nil, err
		}
		return &datatree.Node{Label: SyntheticRoot}, p.closeObject()
	}
	key, err := p.memberKey()
	if err != nil {
		return nil, err
	}
	tok, err := p.next()
	if err != nil {
		return nil, err
	}
	if d, ok := tok.(json.Delim); ok && d == '{' {
		// Candidate {"label": {...}}: parse the object as if it were
		// the root element, then check for a second member.
		if err := p.addNodes(1); err != nil {
			return nil, err
		}
		cand := &datatree.Node{Label: key}
		if err := p.members(cand, schema.PathOf(key), 2); err != nil {
			return nil, err
		}
		if !p.dec.More() {
			return cand, p.closeObject()
		}
		// A second member follows: demote the candidate under the
		// synthetic root, re-anchoring the hints its subtree recorded.
		if err := p.addNodes(1); err != nil {
			return nil, err
		}
		root := &datatree.Node{Label: SyntheticRoot}
		cand.Parent = root
		root.Children = append(root.Children, cand)
		p.reprefixHints(rootPath)
		return root, p.members(root, rootPath, 2)
	}
	if err := p.addNodes(1); err != nil {
		return nil, err
	}
	root := &datatree.Node{Label: SyntheticRoot}
	if err := p.member(root, key, tok, rootPath, 2); err != nil {
		return nil, err
	}
	return root, p.members(root, rootPath, 2)
}

// reprefixHints re-anchors every recorded hint path under prefix —
// needed when the root-candidate subtree turns out to live below the
// synthetic root.
func (p *parser) reprefixHints(prefix schema.Path) {
	moved := make(map[schema.Path]bool, len(p.hints))
	for h := range p.hints {
		moved[schema.Path(string(prefix)+string(h))] = true
	}
	p.hints = moved
}

// members parses the remaining members of an object whose '{' has
// been consumed, attaching children to parent, and consumes the
// closing '}'.
func (p *parser) members(parent *datatree.Node, path schema.Path, depth int) error {
	for p.dec.More() {
		key, err := p.memberKey()
		if err != nil {
			return err
		}
		tok, err := p.next()
		if err != nil {
			return err
		}
		if err := p.member(parent, key, tok, path, depth); err != nil {
			return err
		}
	}
	return p.closeObject()
}

// member attaches one object member (its key and first value token
// already read) to parent. Array values attach one child per array
// member directly — no wrapper node — and hint the path repeatable.
func (p *parser) member(parent *datatree.Node, key string, tok json.Token, path schema.Path, depth int) error {
	if d, ok := tok.(json.Delim); ok && d == '[' {
		return p.array(parent, key, path.Child(key), depth)
	}
	return p.value(tok, parent, key, path.Child(key), depth)
}

// array parses the members of an array (its '[' consumed), attaching
// each as a child of parent labeled label, and hints the element path
// repeatable. An empty array attaches nothing: the element is
// missing.
func (p *parser) array(parent *datatree.Node, label string, path schema.Path, depth int) error {
	if err := validLabel(label); err != nil {
		return err
	}
	p.hints[path] = true
	for p.dec.More() {
		tok, err := p.next()
		if err != nil {
			return err
		}
		if err := p.value(tok, parent, label, path, depth); err != nil {
			return err
		}
	}
	tok, err := p.next()
	if err != nil {
		return err
	}
	if d, ok := tok.(json.Delim); !ok || d != ']' {
		return fmt.Errorf("jsondoc: offset %d: expected ']', got %v", p.dec.InputOffset(), tok)
	}
	return nil
}

// value attaches one JSON value (its first token already read) as a
// child of parent labeled label.
func (p *parser) value(tok json.Token, parent *datatree.Node, label string, path schema.Path, depth int) error {
	if err := validLabel(label); err != nil {
		return err
	}
	if err := p.checkDepth(depth); err != nil {
		return err
	}
	if err := p.addNodes(1); err != nil {
		return err
	}
	switch v := tok.(type) {
	case json.Delim:
		switch v {
		case '{':
			child := parent.AddChild(label)
			return p.members(child, path, depth+1)
		case '[':
			// An array directly inside an array: JSON gives its
			// members no name, so wrap them in a record of "item"s.
			child := parent.AddChild(label)
			return p.array(child, ItemLabel, path.Child(ItemLabel), depth+1)
		default:
			return fmt.Errorf("jsondoc: offset %d: unexpected %q", p.dec.InputOffset(), v.String())
		}
	case string:
		parent.AddLeaf(label, v)
	case json.Number:
		parent.AddLeaf(label, v.String())
	case bool:
		if v {
			parent.AddLeaf(label, "true")
		} else {
			parent.AddLeaf(label, "false")
		}
	case nil:
		parent.AddChild(label) // present but null: a valueless leaf
	default:
		return fmt.Errorf("jsondoc: offset %d: unexpected token %v", p.dec.InputOffset(), tok)
	}
	return nil
}

// memberKey reads an object member key and validates it as an element
// label.
func (p *parser) memberKey() (string, error) {
	tok, err := p.next()
	if err != nil {
		return "", err
	}
	key, ok := tok.(string)
	if !ok {
		return "", fmt.Errorf("jsondoc: offset %d: expected object key, got %v", p.dec.InputOffset(), tok)
	}
	return key, validLabel(key)
}

// closeObject consumes a '}' token.
func (p *parser) closeObject() error {
	tok, err := p.next()
	if err != nil {
		return err
	}
	if d, ok := tok.(json.Delim); !ok || d != '}' {
		return fmt.Errorf("jsondoc: offset %d: expected '}', got %v", p.dec.InputOffset(), tok)
	}
	return nil
}

// next reads one decoder token, ticking the cancellation check.
func (p *parser) next() (json.Token, error) {
	p.tokens++
	if p.tokens%ctxCheckInterval == 0 && p.ctx != nil {
		if err := p.ctx.Err(); err != nil {
			return nil, fmt.Errorf("jsondoc: parse cancelled: %w", err)
		}
	}
	tok, err := p.dec.Token()
	if err != nil {
		if err == io.EOF {
			return nil, io.EOF
		}
		return nil, fmt.Errorf("jsondoc: JSON parse error: %w", err)
	}
	return tok, nil
}

// checkDepth enforces ParseLimits.MaxDepth (the root node is depth 1,
// like the XML parser's element nesting).
func (p *parser) checkDepth(depth int) error {
	if p.lim.MaxDepth > 0 && depth > p.lim.MaxDepth {
		return fmt.Errorf("jsondoc: maximum nesting depth %d exceeded", p.lim.MaxDepth)
	}
	return nil
}

// addNodes counts freshly built nodes against ParseLimits.MaxNodes.
func (p *parser) addNodes(n int) error {
	p.nodes += n
	if p.lim.MaxNodes > 0 && p.nodes > p.lim.MaxNodes {
		return fmt.Errorf("jsondoc: maximum node count %d exceeded", p.lim.MaxNodes)
	}
	return nil
}

// validLabel rejects member names that cannot travel through the path
// notation (/a/b, ./a, ../a) or the schema-text notation (label:
// type, '#' comments) unambiguously.
func validLabel(label string) error {
	switch label {
	case "":
		return fmt.Errorf("jsondoc: empty member name cannot be an element label")
	case ".", "..":
		return fmt.Errorf("jsondoc: member name %q collides with the relative-path notation", label)
	}
	if label[0] == '#' {
		return fmt.Errorf("jsondoc: member name %q would read as a comment in the schema notation", label)
	}
	for _, r := range label {
		if unicode.IsSpace(r) || unicode.IsControl(r) || strings.ContainsRune("/:,{}", r) {
			return fmt.Errorf("jsondoc: member name %q contains %q, which the path and schema notations cannot represent", label, r)
		}
	}
	return nil
}

// normalizeMixed rewrites heterogeneous paths — paths holding both
// valued leaves and record nodes, as a mixed array like [1, {"a": 2}]
// produces — by moving each leaf's value into an "@text" child, the
// XML front-end's mixed-content convention. Without this the inferred
// schema (which must pick one payload kind per path) could not accept
// the tree. Conversions can cascade one level (the new "@text" leaf
// may itself share a path with records from the data), so the pass
// repeats until it converges; each round strictly moves values deeper
// along paths that already existed, so the depth of the original
// document bounds the rounds.
func (p *parser) normalizeMixed(root *datatree.Node) error {
	const valued, complex_ = 1, 2
	for {
		flags := make(map[schema.Path]int)
		var scan func(n *datatree.Node, path schema.Path)
		scan = func(n *datatree.Node, path schema.Path) {
			if n.HasValue {
				flags[path] |= valued
			}
			if len(n.Children) > 0 {
				flags[path] |= complex_
			}
			for _, c := range n.Children {
				scan(c, path.Child(c.Label))
			}
		}
		rootPath := schema.PathOf(root.Label)
		scan(root, rootPath)

		converted := false
		var rewrite func(n *datatree.Node, path schema.Path) error
		rewrite = func(n *datatree.Node, path schema.Path) error {
			if n.HasValue && flags[path] == valued|complex_ {
				if err := p.addNodes(1); err != nil {
					return err
				}
				n.AddLeaf(datatree.TextLabel, n.Value)
				n.Value, n.HasValue = "", false
				converted = true
			}
			for _, c := range n.Children {
				if err := rewrite(c, path.Child(c.Label)); err != nil {
					return err
				}
			}
			return nil
		}
		if err := rewrite(root, rootPath); err != nil {
			return err
		}
		if !converted {
			return nil
		}
	}
}
