package jsondoc

import (
	"bytes"
	"strings"
	"testing"

	"discoverxfd/internal/datatree"
	"discoverxfd/internal/schema"
)

// TestWriteRoundTrip pins the Parse∘Write identity: serializing a
// parsed tree under its inferred schema and reparsing must reproduce
// the tree (values, structure, and inferred schema).
func TestWriteRoundTrip(t *testing.T) {
	docs := []string{
		`{"warehouse": {"state": [{"name": "CA", "store": [{"contact": {"name": "n", "address": "a"}}]}]}}`,
		`{"r": {"f": 1.50, "i": 42, "b": true, "s": "x \"q\" y", "nul": null}}`,
		`{"r": {"xs": [5], "m": [[1, 2], [3]], "o": {}}}`,
		`{"a": 1, "b": 2}`,
		`{"r": {"rows": [{"a": 1, "b": null}, {"a": 2, "b": "z"}]}}`,
	}
	for _, src := range docs {
		tree := mustParse(t, src)
		s, err := datatree.InferSchema(tree)
		if err != nil {
			t.Fatalf("InferSchema(%q): %v", src, err)
		}
		var buf bytes.Buffer
		if err := Write(&buf, tree, s); err != nil {
			t.Fatalf("Write(%q): %v", src, err)
		}
		tree2, err := Parse(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("reparse of %q failed: %v\nserialized:\n%s", src, err, buf.String())
		}
		if got, want := tree2.String(), tree.String(); got != want {
			t.Fatalf("round trip of %q changed the tree\nserialized:\n%s\ngot:\n%s\nwant:\n%s", src, buf.String(), got, want)
		}
		s2, err := datatree.InferSchema(tree2)
		if err != nil {
			t.Fatalf("re-infer: %v", err)
		}
		if s2.String() != s.String() {
			t.Fatalf("round trip of %q changed the schema\ngot:\n%s\nwant:\n%s", src, s2, s)
		}
	}
}

// TestWriteStable pins that Write is deterministic byte-for-byte.
func TestWriteStable(t *testing.T) {
	tree := mustParse(t, `{"r": {"xs": [1, 2], "y": "a", "xs": [3]}}`)
	s, err := datatree.InferSchema(tree)
	if err != nil {
		t.Fatal(err)
	}
	var first string
	for i := 0; i < 5; i++ {
		var buf bytes.Buffer
		if err := Write(&buf, tree, s); err != nil {
			t.Fatal(err)
		}
		if i == 0 {
			first = buf.String()
		} else if buf.String() != first {
			t.Fatalf("Write not deterministic:\n%s\nvs\n%s", first, buf.String())
		}
	}
	if !strings.HasSuffix(first, "\n") {
		t.Error("Write output must end in a newline")
	}
}

func TestWriteErrors(t *testing.T) {
	tree := mustParse(t, `{"r": {"a": 1}}`)
	s, err := datatree.InferSchema(tree)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := Write(&buf, nil, s); err == nil {
		t.Error("nil tree accepted")
	}
	if err := Write(&buf, tree, nil); err == nil {
		t.Error("nil schema accepted")
	}
	other := schema.MustParse("q: Rcd\n  a: int")
	if err := Write(&buf, tree, other); err == nil {
		t.Error("root mismatch accepted")
	}
	// A scalar root cannot carry its label through the top-level
	// object convention.
	scalarRoot := &datatree.Tree{Root: &datatree.Node{Label: "r", Value: "5", HasValue: true}}
	ss := schema.MustParse("r: int")
	if err := Write(&buf, scalarRoot, ss); err == nil {
		t.Error("scalar root accepted")
	}
}
