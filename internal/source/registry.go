package source

import (
	"fmt"
	"path/filepath"
	"strings"

	"discoverxfd/internal/source/jsondoc"
	"discoverxfd/internal/source/xmldoc"
)

// All returns the registered document sources in priority order (the
// order Detect sniffs unrecognized content in). The registry is a
// fixed function rather than mutable global state: formats are
// compiled in, so there is nothing to race on.
func All() []Source {
	return []Source{xmldoc.New(), jsondoc.New()}
}

// ByFormat returns the source with the given canonical format name
// (case-insensitive), or ErrUnknownFormat.
func ByFormat(format string) (Source, error) {
	f := strings.ToLower(strings.TrimSpace(format))
	for _, s := range All() {
		if s.Format() == f {
			return s, nil
		}
	}
	return nil, fmt.Errorf("%w: %q (registered: %s)", ErrUnknownFormat, format, formatNames())
}

// ByExtension returns the source claiming the file name's extension,
// if any.
func ByExtension(name string) (Source, bool) {
	ext := strings.ToLower(filepath.Ext(name))
	if ext == "" {
		return nil, false
	}
	for _, s := range All() {
		for _, e := range s.Extensions() {
			if e == ext {
				return s, true
			}
		}
	}
	return nil, false
}

// formatNames renders the registered format names for error messages.
func formatNames() string {
	names := make([]string, 0, 2)
	for _, s := range All() {
		names = append(names, s.Format())
	}
	return strings.Join(names, ", ")
}
