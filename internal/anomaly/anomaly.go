// Package anomaly detects update anomalies — the paper's second
// motivation for eliminating redundancies ("such data redundancies
// can lead to potential update anomalies, rendering the database
// inconsistent"). Given the constraints a document is supposed to
// satisfy (typically the FDs discovered on a trusted earlier
// version), Detect locates where an updated document violates them
// and names the exact disagreeing nodes — the classic symptom of
// updating one copy of a redundantly stored value and missing its
// duplicates. Advise goes the other way: before an update, it lists
// the companion nodes that must change together with the target.
package anomaly

import (
	"fmt"
	"sort"
	"strings"

	"discoverxfd/internal/core"
	"discoverxfd/internal/datatree"
	"discoverxfd/internal/relation"
	"discoverxfd/internal/schema"
)

// Occurrence is one RHS occurrence inside a conflict: the pivot node
// of the tuple and the rendered RHS value ("(missing)" when absent).
type Occurrence struct {
	// PivotKey is the pre-order node key of the tuple's pivot node.
	PivotKey int
	// PivotPath locates the pivot, e.g. /warehouse/state/store/book.
	PivotPath schema.Path
	// Value renders the RHS under that pivot: the leaf value, or the
	// collection/subtree in the debug notation for complex and set
	// RHS paths.
	Value string
}

// Conflict is one group of tuples agreeing on an FD's LHS but
// disagreeing on the RHS.
type Conflict struct {
	Occurrences []Occurrence
}

// Violation pairs a broken constraint with its conflicts.
type Violation struct {
	FD        core.FD
	Conflicts []Conflict
}

func (v Violation) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s is violated:\n", v.FD)
	for _, c := range v.Conflicts {
		b.WriteString("  conflicting copies:\n")
		for _, o := range c.Occurrences {
			fmt.Fprintf(&b, "    node %d (%s): %s = %s\n", o.PivotKey, o.PivotPath, v.FD.RHS, o.Value)
		}
	}
	return strings.TrimRight(b.String(), "\n")
}

// Detect checks each FD against the hierarchy and reports the
// violations with their conflicting occurrences. Keys in the
// constraint list are checked for uniqueness; a duplicated key is
// reported as a violation whose conflicts list the colliding tuples.
func Detect(h *relation.Hierarchy, constraints []core.Constraint) ([]Violation, error) {
	var out []Violation
	for _, c := range constraints {
		fd := c.FD
		rhs := fd.RHS
		if c.IsKey {
			// A key is the FD LHS -> pivot identity; conflicts are
			// LHS groups with more than one tuple. Reuse the
			// machinery by asking for conflicts on any attribute and
			// then re-filtering by group size via Companions below.
			rel := h.ByPivot(fd.Class)
			if rel == nil || rel.NAttrs() == 0 {
				return nil, fmt.Errorf("anomaly: unknown or empty tuple class %s", fd.Class)
			}
			groups, err := keyCollisions(h, fd.Class, fd.LHS)
			if err != nil {
				return nil, err
			}
			if len(groups) > 0 {
				v := Violation{FD: fd}
				for _, g := range groups {
					v.Conflicts = append(v.Conflicts, renderConflict(h, fd.Class, fd.LHS[0], g))
				}
				out = append(out, v)
			}
			continue
		}
		groups, err := core.EvaluateConflicts(h, fd.Class, fd.LHS, rhs)
		if err != nil {
			return nil, err
		}
		if len(groups) == 0 {
			continue
		}
		v := Violation{FD: fd}
		for _, g := range groups {
			v.Conflicts = append(v.Conflicts, renderConflict(h, fd.Class, rhs, g.Tuples))
		}
		out = append(out, v)
	}
	return out, nil
}

// keyCollisions returns groups of tuples sharing the (non-null) key
// LHS.
func keyCollisions(h *relation.Hierarchy, class schema.Path, lhs []schema.RelPath) ([][]int, error) {
	rel := h.ByPivot(class)
	var out [][]int
	for t := 0; t < rel.NRows(); t++ {
		comp, err := core.Companions(h, class, lhs, rel.Attrs[0].Rel, t)
		if err != nil {
			return nil, err
		}
		if len(comp) > 0 && minOf(comp) > t {
			out = append(out, append([]int{t}, comp...))
		}
	}
	return out, nil
}

func minOf(xs []int) int {
	m := xs[0]
	for _, x := range xs[1:] {
		if x < m {
			m = x
		}
	}
	return m
}

// Advise lists, for an intended update of the RHS under the given
// pivot node, the companion pivot nodes whose copies must change in
// the same transaction for the FD to keep holding.
func Advise(h *relation.Hierarchy, fd core.FD, pivotKey int) ([]Occurrence, error) {
	rel := h.ByPivot(fd.Class)
	if rel == nil {
		return nil, fmt.Errorf("anomaly: unknown tuple class %s", fd.Class)
	}
	tuple := -1
	for t := 0; t < rel.NRows(); t++ {
		if rel.Keys[t] == pivotKey {
			tuple = t
			break
		}
	}
	if tuple < 0 {
		return nil, fmt.Errorf("anomaly: no tuple of %s has pivot key %d", fd.Class, pivotKey)
	}
	comp, err := core.Companions(h, fd.Class, fd.LHS, fd.RHS, tuple)
	if err != nil {
		return nil, err
	}
	occ := make([]Occurrence, 0, len(comp))
	for _, t := range comp {
		occ = append(occ, occurrence(h, fd.Class, fd.RHS, t))
	}
	sort.Slice(occ, func(i, j int) bool { return occ[i].PivotKey < occ[j].PivotKey })
	return occ, nil
}

func renderConflict(h *relation.Hierarchy, class schema.Path, rhs schema.RelPath, tuples []int) Conflict {
	c := Conflict{Occurrences: make([]Occurrence, 0, len(tuples))}
	for _, t := range tuples {
		c.Occurrences = append(c.Occurrences, occurrence(h, class, rhs, t))
	}
	sort.Slice(c.Occurrences, func(i, j int) bool { return c.Occurrences[i].PivotKey < c.Occurrences[j].PivotKey })
	return c
}

// occurrence renders the RHS under tuple t of the class.
func occurrence(h *relation.Hierarchy, class schema.Path, rhs schema.RelPath, t int) Occurrence {
	rel := h.ByPivot(class)
	o := Occurrence{PivotKey: rel.Keys[t], PivotPath: class}
	pivot := rel.Node(t)
	steps := strings.Split(strings.TrimPrefix(string(rhs), "./"), "/")
	if string(rhs) == "." {
		o.Value = renderNode(pivot)
		return o
	}
	// Walk to the RHS parent, then collect all children with the
	// final label (one for non-set elements, all members for sets).
	parent := pivot
	for _, s := range steps[:len(steps)-1] {
		parent = parent.Child(s)
		if parent == nil {
			o.Value = "(missing)"
			return o
		}
	}
	nodes := parent.ChildrenLabeled(steps[len(steps)-1])
	if len(nodes) == 0 {
		o.Value = "(missing)"
		return o
	}
	parts := make([]string, len(nodes))
	for i, n := range nodes {
		parts[i] = renderNode(n)
	}
	sort.Strings(parts)
	o.Value = strings.Join(parts, " + ")
	return o
}

// renderNode renders a leaf's value or a compact form of a subtree.
func renderNode(n *datatree.Node) string {
	if n.HasValue {
		return n.Value
	}
	if len(n.Children) == 0 {
		return "(empty)"
	}
	parts := make([]string, 0, len(n.Children))
	for _, c := range n.Children {
		parts = append(parts, c.Label+"="+renderNode(c))
	}
	sort.Strings(parts)
	return "{" + strings.Join(parts, ", ") + "}"
}
