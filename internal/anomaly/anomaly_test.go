package anomaly

import (
	"strings"
	"testing"

	"discoverxfd/internal/core"
	"discoverxfd/internal/datatree"
	"discoverxfd/internal/relation"
	"discoverxfd/internal/schema"
)

// cleanXML satisfies {./sku} -> ./name; dirtyXML is the same document
// after a careless update of ONE copy of the Pen name.
const cleanXML = `
<shop>
  <item><sku>1</sku><name>Pen</name></item>
  <item><sku>1</sku><name>Pen</name></item>
  <item><sku>2</sku><name>Pad</name></item>
</shop>`

const dirtyXML = `
<shop>
  <item><sku>1</sku><name>Gel Pen</name></item>
  <item><sku>1</sku><name>Pen</name></item>
  <item><sku>2</sku><name>Pad</name></item>
</shop>`

func build(t *testing.T, xml string) *relation.Hierarchy {
	t.Helper()
	tree, err := datatree.ParseXMLString(xml)
	if err != nil {
		t.Fatal(err)
	}
	s, err := datatree.InferSchema(tree)
	if err != nil {
		t.Fatal(err)
	}
	h, err := relation.Build(tree, s, relation.Options{})
	if err != nil {
		t.Fatal(err)
	}
	return h
}

func constraints(t *testing.T, lines string) []core.Constraint {
	t.Helper()
	cs, err := core.ParseConstraints(lines)
	if err != nil {
		t.Fatal(err)
	}
	return cs
}

func TestDetectCleanDocument(t *testing.T) {
	h := build(t, cleanXML)
	vs, err := Detect(h, constraints(t, `{./sku} -> ./name w.r.t. C(/shop/item)`))
	if err != nil {
		t.Fatal(err)
	}
	if len(vs) != 0 {
		t.Fatalf("clean document reported violations: %v", vs)
	}
}

func TestDetectUpdateAnomaly(t *testing.T) {
	h := build(t, dirtyXML)
	vs, err := Detect(h, constraints(t, `{./sku} -> ./name w.r.t. C(/shop/item)`))
	if err != nil {
		t.Fatal(err)
	}
	if len(vs) != 1 || len(vs[0].Conflicts) != 1 {
		t.Fatalf("expected exactly one violation with one conflict: %v", vs)
	}
	occ := vs[0].Conflicts[0].Occurrences
	if len(occ) != 2 {
		t.Fatalf("conflict should name both copies: %v", occ)
	}
	values := []string{occ[0].Value, occ[1].Value}
	if !(contains(values, "Pen") && contains(values, "Gel Pen")) {
		t.Fatalf("conflicting values wrong: %v", values)
	}
	// The report names the pivot nodes.
	s := vs[0].String()
	if !strings.Contains(s, "Gel Pen") || !strings.Contains(s, "node ") {
		t.Fatalf("report: %s", s)
	}
}

func TestDetectKeyViolation(t *testing.T) {
	h := build(t, cleanXML)
	vs, err := Detect(h, constraints(t, `{./sku} KEY of C(/shop/item)`))
	if err != nil {
		t.Fatal(err)
	}
	if len(vs) != 1 {
		t.Fatalf("duplicated sku must violate the key: %v", vs)
	}
	if got := len(vs[0].Conflicts[0].Occurrences); got != 2 {
		t.Fatalf("key conflict should list both duplicates, got %d", got)
	}
}

func TestAdviseCompanions(t *testing.T) {
	h := build(t, cleanXML)
	rel := h.ByPivot("/shop/item")
	fd := core.FD{Class: "/shop/item", LHS: []schema.RelPath{"./sku"}, RHS: "./name"}
	// Tuple 0 is the first sku-1 item; its companion is tuple 1.
	occ, err := Advise(h, fd, rel.Keys[0])
	if err != nil {
		t.Fatal(err)
	}
	if len(occ) != 1 || occ[0].PivotKey != rel.Keys[1] || occ[0].Value != "Pen" {
		t.Fatalf("Advise: %v", occ)
	}
	// The sku-2 item has no companions.
	occ, err = Advise(h, fd, rel.Keys[2])
	if err != nil {
		t.Fatal(err)
	}
	if len(occ) != 0 {
		t.Fatalf("unique sku should have no companions: %v", occ)
	}
	// Unknown pivot key errors.
	if _, err := Advise(h, fd, 9999); err == nil {
		t.Fatal("unknown pivot key should error")
	}
}

func TestDetectSetRHSConflict(t *testing.T) {
	// Author sets differ for one ISBN after a bad edit.
	h := build(t, `
<lib>
  <b><isbn>1</isbn><a>X</a><a>Y</a></b>
  <b><isbn>1</isbn><a>Y</a></b>
</lib>`)
	vs, err := Detect(h, constraints(t, `{./isbn} -> ./a w.r.t. C(/lib/b)`))
	if err != nil {
		t.Fatal(err)
	}
	if len(vs) != 1 {
		t.Fatalf("set-RHS conflict not detected: %v", vs)
	}
	occ := vs[0].Conflicts[0].Occurrences
	if len(occ) != 2 || !(strings.Contains(occ[0].Value, "+") || strings.Contains(occ[1].Value, "+")) {
		t.Fatalf("set values should render all members: %v", occ)
	}
}

func contains(xs []string, want string) bool {
	for _, x := range xs {
		if x == want {
			return true
		}
	}
	return false
}
