package anomaly

import (
	"strings"
	"testing"

	"discoverxfd/internal/datatree"
)

func TestRenderNode(t *testing.T) {
	tr, err := datatree.ParseXMLString(`<c><name>B</name><address>S</address></c>`)
	if err != nil {
		t.Fatal(err)
	}
	got := renderNode(tr.Root)
	if got != "{address=S, name=B}" {
		t.Fatalf("complex rendering: %q", got)
	}
	leaf := tr.Root.Child("name")
	if renderNode(leaf) != "B" {
		t.Fatalf("leaf rendering: %q", renderNode(leaf))
	}
	empty := &datatree.Node{Label: "e"}
	if renderNode(empty) != "(empty)" {
		t.Fatalf("empty rendering: %q", renderNode(empty))
	}
}

func TestOccurrenceComplexAndMissing(t *testing.T) {
	h := build(t, `
<shop>
  <item><sku>1</sku><name>Pen</name><meta><w>5</w></meta></item>
  <item><sku>2</sku></item>
</shop>`)
	// Complex RHS renders the subtree; missing renders "(missing)".
	o := occurrence(h, "/shop/item", "./meta", 0)
	if !strings.Contains(o.Value, "w=5") {
		t.Fatalf("complex occurrence: %q", o.Value)
	}
	o = occurrence(h, "/shop/item", "./meta", 1)
	if o.Value != "(missing)" {
		t.Fatalf("missing occurrence: %q", o.Value)
	}
	o = occurrence(h, "/shop/item", "./meta/w", 1)
	if o.Value != "(missing)" {
		t.Fatalf("missing nested occurrence: %q", o.Value)
	}
}

func TestMinOf(t *testing.T) {
	if minOf([]int{5, 2, 9}) != 2 || minOf([]int{7}) != 7 {
		t.Fatal("minOf wrong")
	}
}
