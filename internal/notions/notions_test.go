package notions

import (
	"testing"

	"discoverxfd/internal/core"
	"discoverxfd/internal/datatree"
	"discoverxfd/internal/relation"
	"discoverxfd/internal/schema"
)

// The paper's Figure 1 situation, reduced: two books share ISBN and
// the same author SET in different orders, plus a single-author book.
const warehouseXML = `
<warehouse>
  <state><name>WA</name>
    <store>
      <contact><name>Borders</name><address>Seattle</address></contact>
      <book><ISBN>1</ISBN><author>Post</author><title>F</title><price>30</price></book>
      <book><ISBN>2</ISBN><author>Rama</author><author>Gehrke</author><title>D</title><price>40</price></book>
    </store>
  </state>
  <state><name>KY</name>
    <store>
      <contact><name>Borders</name><address>Lexington</address></contact>
      <book><ISBN>2</ISBN><author>Gehrke</author><author>Rama</author><title>D</title><price>40</price></book>
    </store>
  </state>
</warehouse>`

var warehouseSchema = schema.MustParse(`
warehouse: Rcd
  state: SetOf Rcd
    name: str
    store: SetOf Rcd
      contact: Rcd
        name: str
        address: str
      book: SetOf Rcd
        ISBN: str
        author: SetOf str
        title: str
        price: str
`)

func tree(t *testing.T) *datatree.Tree {
	t.Helper()
	tr, err := datatree.ParseXMLString(warehouseXML)
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

const book = "/warehouse/state/store/book"

// TestConstraint1AllNotionsAgree: {ISBN} -> title is satisfied under
// every notion (the paper's baseline example).
func TestConstraint1AllNotionsAgree(t *testing.T) {
	tr := tree(t)
	fd := PathFD{LHS: []schema.Path{book + "/ISBN"}, RHS: book + "/title"}
	pb, err := PathBasedHolds(tr, fd)
	if err != nil {
		t.Fatal(err)
	}
	tt, err := TreeTupleHolds(tr, warehouseSchema, fd, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !pb || !tt {
		t.Fatalf("Constraint 1 should hold under all notions: path=%v tuple=%v", pb, tt)
	}
	h, err := relation.Build(tr, warehouseSchema, relation.Options{})
	if err != nil {
		t.Fatal(err)
	}
	ev, err := core.Evaluate(h, book, []schema.RelPath{"./ISBN"}, "./title")
	if err != nil {
		t.Fatal(err)
	}
	if !ev.Holds {
		t.Fatal("Constraint 1 should hold under the GTT notion")
	}
}

// TestConstraint3OnlyGTTCapturesIt reproduces the paper's Section 2.3
// discussion verbatim: {ISBN} -> author is violated under the
// path-based notion (two authors of one book associate with the same
// ISBN) and under the tree-tuple notion (author 32 and author 33 land
// in different tree tuples with equal ISBN), yet the underlying
// constraint — equal ISBN implies equal author SET — holds, and only
// the generalized-tree-tuple notion captures it.
func TestConstraint3OnlyGTTCapturesIt(t *testing.T) {
	tr := tree(t)
	fd := PathFD{LHS: []schema.Path{book + "/ISBN"}, RHS: book + "/author"}
	pb, err := PathBasedHolds(tr, fd)
	if err != nil {
		t.Fatal(err)
	}
	if pb {
		t.Fatal("path-based notion must reject ISBN -> author (compares individual author nodes)")
	}
	tt, err := TreeTupleHolds(tr, warehouseSchema, fd, 0)
	if err != nil {
		t.Fatal(err)
	}
	if tt {
		t.Fatal("tree-tuple notion must reject ISBN -> author (authors split across tuples)")
	}
	h, err := relation.Build(tr, warehouseSchema, relation.Options{})
	if err != nil {
		t.Fatal(err)
	}
	ev, err := core.Evaluate(h, book, []schema.RelPath{"./ISBN"}, "./author")
	if err != nil {
		t.Fatal(err)
	}
	if !ev.Holds {
		t.Fatal("the GTT notion must capture ISBN -> author-set")
	}
}

// TestConstraint2MultiHierarchy: both earlier notions capture the
// multi-hierarchy Constraint 2, as the paper concedes.
func TestConstraint2MultiHierarchy(t *testing.T) {
	tr := tree(t)
	fd := PathFD{
		LHS: []schema.Path{"/warehouse/state/store/contact/name", book + "/ISBN"},
		RHS: book + "/price",
	}
	pb, err := PathBasedHolds(tr, fd)
	if err != nil {
		t.Fatal(err)
	}
	if !pb {
		t.Fatal("path-based notion should capture Constraint 2")
	}
	tt, err := TreeTupleHolds(tr, warehouseSchema, fd, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !tt {
		t.Fatal("tree-tuple notion should capture Constraint 2")
	}
}

// TestPathBasedViolationDetected: a genuine title disagreement is
// caught by the path-based evaluator too.
func TestPathBasedViolationDetected(t *testing.T) {
	tr, err := datatree.ParseXMLString(`
<warehouse><state><name>WA</name><store>
  <contact><name>B</name><address>S</address></contact>
  <book><ISBN>1</ISBN><author>A</author><title>X</title><price>1</price></book>
  <book><ISBN>1</ISBN><author>A</author><title>Y</title><price>1</price></book>
</store></state></warehouse>`)
	if err != nil {
		t.Fatal(err)
	}
	fd := PathFD{LHS: []schema.Path{book + "/ISBN"}, RHS: book + "/title"}
	pb, err := PathBasedHolds(tr, fd)
	if err != nil {
		t.Fatal(err)
	}
	if pb {
		t.Fatal("violated FD reported as satisfied")
	}
}

func TestPathFDString(t *testing.T) {
	fd := PathFD{LHS: []schema.Path{"/a/b", "/a/c"}, RHS: "/a/d"}
	if fd.String() != "{/a/b, /a/c} -> /a/d" {
		t.Fatalf("String: %q", fd.String())
	}
}

func TestErrorsOnForeignPaths(t *testing.T) {
	tr := tree(t)
	if _, err := PathBasedHolds(tr, PathFD{LHS: []schema.Path{"/other/x"}, RHS: book + "/title"}); err == nil {
		t.Fatal("foreign LHS root should error")
	}
	if _, err := TreeTupleHolds(tr, warehouseSchema, PathFD{LHS: []schema.Path{book + "/nope"}, RHS: book + "/title"}, 0); err == nil {
		t.Fatal("unknown column should error")
	}
}
