package notions

import (
	"fmt"
	"strings"

	"discoverxfd/internal/datatree"
	"discoverxfd/internal/flat"
	"discoverxfd/internal/schema"
)

// MVD is a multivalued dependency X →→ Y over the flat (tree-tuple)
// representation, with absolute schema paths. The paper's Section 3.1
// remark 3 observes that FDs whose *set element* appears only on the
// RHS can be mimicked by an MVD under the earlier tuple-based notion
// — Constraint 3 becomes ISBN →→ author — while set elements on the
// LHS (Constraint 4) cannot, because the member values must be
// considered together. MVDHolds makes the first half of the remark
// executable; the warehouse tests demonstrate both halves.
type MVD struct {
	LHS []schema.Path
	RHS []schema.Path
}

func (m MVD) String() string {
	j := func(ps []schema.Path) string {
		out := make([]string, len(ps))
		for i, p := range ps {
			out[i] = string(p)
		}
		return strings.Join(out, ", ")
	}
	return fmt.Sprintf("{%s} ->> {%s}", j(m.LHS), j(m.RHS))
}

// MVDHolds evaluates X →→ Y on the flat representation of the tree:
// for every X-group, the set of (Y, Z) combinations must equal the
// cartesian product of the group's Y-combinations and Z-combinations
// (Z = all remaining columns). Missing values carry unique codes and
// therefore never match, the same strong semantics used elsewhere.
// maxRows bounds the unnesting (0 = 1<<20).
func MVDHolds(t *datatree.Tree, s *schema.Schema, m MVD, maxRows int64) (bool, error) {
	tbl, err := flat.Build(t, s, maxRows)
	if err != nil {
		return false, err
	}
	colIdx := make(map[schema.Path]int, len(tbl.Columns))
	for i, c := range tbl.Columns {
		colIdx[c] = i
	}
	pick := func(ps []schema.Path) ([]int, error) {
		out := make([]int, 0, len(ps))
		for _, p := range ps {
			i, ok := colIdx[p]
			if !ok {
				return nil, fmt.Errorf("notions: no column for path %s", p)
			}
			out = append(out, i)
		}
		return out, nil
	}
	x, err := pick(m.LHS)
	if err != nil {
		return false, err
	}
	y, err := pick(m.RHS)
	if err != nil {
		return false, err
	}
	inXY := make(map[int]bool)
	for _, i := range append(append([]int{}, x...), y...) {
		inXY[i] = true
	}
	var z []int
	for i := 1; i < len(tbl.Columns); i++ { // column 0 is the root
		if !inXY[i] {
			z = append(z, i)
		}
	}

	sig := func(cols []int, row int) string {
		var b strings.Builder
		for _, c := range cols {
			fmt.Fprintf(&b, "%d|", tbl.Cols[c][row])
		}
		return b.String()
	}

	groups := make(map[string][]int, tbl.NRows)
	for r := 0; r < tbl.NRows; r++ {
		groups[sig(x, r)] = append(groups[sig(x, r)], r)
	}
	for _, g := range groups {
		ys := make(map[string]bool)
		zs := make(map[string]bool)
		combos := make(map[string]bool)
		for _, r := range g {
			sy, sz := sig(y, r), sig(z, r)
			ys[sy] = true
			zs[sz] = true
			combos[sy+"#"+sz] = true
		}
		if len(combos) != len(ys)*len(zs) {
			return false, nil
		}
	}
	return true, nil
}
