package notions

import (
	"testing"

	"discoverxfd/internal/core"
	"discoverxfd/internal/datatree"
	"discoverxfd/internal/relation"
	"discoverxfd/internal/schema"
)

// TestMVDCapturesSetRHS reproduces the first half of Section 3.1
// remark 3: Constraint 3 (same ISBN => same author SET), which the
// plain tree-tuple FD cannot express, *can* be mimicked by the MVD
// ISBN ->> author over the flat representation — it holds exactly
// because equal-ISBN books carry equal author sets.
func TestMVDCapturesSetRHS(t *testing.T) {
	tr := tree(t)
	mvd := MVD{LHS: []schema.Path{book + "/ISBN"}, RHS: []schema.Path{book + "/author"}}
	ok, err := MVDHolds(tr, warehouseSchema, mvd, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatal("ISBN ->> author should hold when author sets agree per ISBN")
	}
	// Break the set equality: drop one author from the second copy.
	bad, err := datatree.ParseXMLString(`
<warehouse><state><name>WA</name><store>
  <contact><name>B</name><address>S</address></contact>
  <book><ISBN>2</ISBN><author>R</author><author>G</author><title>D</title><price>4</price></book>
  <book><ISBN>2</ISBN><author>R</author><title>D</title><price>4</price></book>
</store></state></warehouse>`)
	if err != nil {
		t.Fatal(err)
	}
	ok, err = MVDHolds(bad, warehouseSchema, mvd, 0)
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Fatal("ISBN ->> author must fail when author sets differ for one ISBN")
	}
}

// TestMVDCannotCaptureSetLHS reproduces the second half of the
// remark: Constraint 4 (same author SET + title => same ISBN) holds
// under the GTT notion, but its closest MVD rendering over the flat
// representation fails — individual author members associate across
// different author sets.
func TestMVDCannotCaptureSetLHS(t *testing.T) {
	xml := `
<warehouse><state><name>WA</name><store>
  <contact><name>B</name><address>S</address></contact>
  <book><ISBN>1</ISBN><author>A</author><author>B</author><title>T</title><price>5</price></book>
  <book><ISBN>2</ISBN><author>A</author><title>T</title><price>6</price></book>
</store></state></warehouse>`
	tr, err := datatree.ParseXMLString(xml)
	if err != nil {
		t.Fatal(err)
	}
	// The set-level constraint holds: {A,B} != {A}, so the two books
	// need not share an ISBN.
	h, err := relation.Build(tr, warehouseSchema, relation.Options{})
	if err != nil {
		t.Fatal(err)
	}
	ev, err := core.Evaluate(h, book, []schema.RelPath{"./author", "./title"}, "./ISBN")
	if err != nil {
		t.Fatal(err)
	}
	if !ev.Holds {
		t.Fatal("the GTT form of Constraint 4 should hold")
	}
	// The member-wise MVD rendering fails: author A + title T
	// associates with both ISBNs.
	mvd := MVD{
		LHS: []schema.Path{book + "/author", book + "/title"},
		RHS: []schema.Path{book + "/ISBN"},
	}
	ok, err := MVDHolds(tr, warehouseSchema, mvd, 0)
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Fatal("the member-wise MVD must fail to capture the set-LHS constraint")
	}
}

// TestMVDStructural: within one book, author ->> (nothing else
// varies) trivially; and an engineered product structure satisfies a
// genuine MVD.
func TestMVDStructuralProduct(t *testing.T) {
	s := schema.MustParse(`
db: Rcd
  row: SetOf Rcd
    class: str
    student: SetOf str
    text: SetOf str
`)
	// Per class, students × texts unnest to a full product: the
	// classic MVD example (class ->> student | text).
	tr, err := datatree.ParseXMLString(`
<db>
  <row><class>c1</class><student>s1</student><student>s2</student><text>t1</text><text>t2</text></row>
  <row><class>c2</class><student>s3</student><text>t1</text></row>
</db>`)
	if err != nil {
		t.Fatal(err)
	}
	ok, err := MVDHolds(tr, s, MVD{LHS: []schema.Path{"/db/row/class"}, RHS: []schema.Path{"/db/row/student"}}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatal("class ->> student should hold on the product structure")
	}
	// A cross-row violation: the same class listed twice with
	// different student/text combinations that do not multiply out.
	bad, err := datatree.ParseXMLString(`
<db>
  <row><class>c1</class><student>s1</student><text>t1</text></row>
  <row><class>c1</class><student>s2</student><text>t2</text></row>
</db>`)
	if err != nil {
		t.Fatal(err)
	}
	ok, err = MVDHolds(bad, s, MVD{LHS: []schema.Path{"/db/row/class"}, RHS: []schema.Path{"/db/row/student"}}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Fatal("non-product combinations must violate the MVD")
	}
}

func TestMVDErrorsAndString(t *testing.T) {
	tr := tree(t)
	if _, err := MVDHolds(tr, warehouseSchema, MVD{LHS: []schema.Path{"/nope"}, RHS: []schema.Path{book + "/author"}}, 0); err == nil {
		t.Fatal("unknown LHS column should error")
	}
	m := MVD{LHS: []schema.Path{"/a/x"}, RHS: []schema.Path{"/a/y", "/a/z"}}
	if m.String() != "{/a/x} ->> {/a/y, /a/z}" {
		t.Fatalf("String: %q", m.String())
	}
}
