// Package notions implements the two earlier XML FD notions the paper
// compares against in Section 2.3, as independent evaluators:
//
//   - the path-based notion of Vincent et al. ("Px1,…,Pxn -> Py" with
//     absolute paths, target elements implicit in Py, and association
//     via the longest-common-prefix ancestor), and
//   - the tree-tuple notion of Arenas & Libkin (FDs over the fully
//     unnested flat relation of Figure 5).
//
// They make the paper's semantic argument executable: the running
// example's Constraint 3 ("two books with the same ISBN have the same
// set of authors") is satisfied under the generalized-tree-tuple
// notion but violated under both earlier notions, because each
// compares individual author nodes instead of the collection
// (experiment E10 prints the full comparison table).
package notions

import (
	"fmt"

	"discoverxfd/internal/datatree"
	"discoverxfd/internal/flat"
	"discoverxfd/internal/schema"
)

// PathFD is an FD in the path-based notation: absolute LHS paths and
// one absolute RHS path.
type PathFD struct {
	LHS []schema.Path
	RHS schema.Path
}

func (f PathFD) String() string {
	s := "{"
	for i, p := range f.LHS {
		if i > 0 {
			s += ", "
		}
		s += string(p)
	}
	return s + "} -> " + string(f.RHS)
}

// PathBasedHolds evaluates a path-based FD on a tree, following the
// paper's rendition of the semantics: for any two distinct nodes y1,
// y2 matching the RHS path, if for every LHS path Pxi some xi node
// associated with y1 and some associated with y2 are node-value
// equal, then y1 and y2 are node-value equal. An xi node is
// associated with a y node iff both descend from the same instance of
// the longest common prefix of Pxi and the RHS path.
func PathBasedHolds(t *datatree.Tree, fd PathFD) (bool, error) {
	ys := t.NodesAt(fd.RHS)
	var enc datatree.Encoder
	// Precompute, per y node and per LHS path, the set of associated
	// xi value codes.
	assocs := make([]map[int]map[int]bool, len(fd.LHS)) // lhs -> ynode idx -> codes
	for li, lp := range fd.LHS {
		common, err := commonPrefix(lp, fd.RHS)
		if err != nil {
			return false, err
		}
		assocs[li] = make(map[int]map[int]bool, len(ys))
		for yi, y := range ys {
			anc, ok := ancestorAt(y, common.Depth())
			if !ok {
				return false, fmt.Errorf("notions: %s is not an ancestor depth of %s", common, fd.RHS)
			}
			codes := make(map[int]bool)
			for _, x := range nodesUnder(anc, lp) {
				codes[enc.Encode(x)] = true
			}
			assocs[li][yi] = codes
		}
	}
	for i := 0; i < len(ys); i++ {
		for j := i + 1; j < len(ys); j++ {
			matched := true
			for li := range fd.LHS {
				if !intersects(assocs[li][i], assocs[li][j]) {
					matched = false
					break
				}
			}
			if matched && enc.Encode(ys[i]) != enc.Encode(ys[j]) {
				return false, nil
			}
		}
	}
	return true, nil
}

func intersects(a, b map[int]bool) bool {
	if len(a) > len(b) {
		a, b = b, a
	}
	for c := range a {
		if b[c] {
			return true
		}
	}
	return false
}

// commonPrefix returns the longest common step prefix of two paths.
func commonPrefix(a, b schema.Path) (schema.Path, error) {
	as, bs := a.Steps(), b.Steps()
	if len(as) == 0 || len(bs) == 0 || as[0] != bs[0] {
		return "", fmt.Errorf("notions: paths %s and %s share no root", a, b)
	}
	n := 0
	for n < len(as) && n < len(bs) && as[n] == bs[n] {
		n++
	}
	return schema.PathOf(as[:n]...), nil
}

// ancestorAt returns the ancestor of n at the given depth (the root
// has depth 1).
func ancestorAt(n *datatree.Node, depth int) (*datatree.Node, bool) {
	var chain []*datatree.Node
	for m := n; m != nil; m = m.Parent {
		chain = append(chain, m)
	}
	// chain[len-1] is the root at depth 1.
	idx := len(chain) - depth
	if idx < 0 || idx >= len(chain) {
		return nil, false
	}
	return chain[idx], true
}

// nodesUnder returns the nodes matching the absolute path p within
// the subtree rooted at anc (whose own path must be a prefix of p).
func nodesUnder(anc *datatree.Node, p schema.Path) []*datatree.Node {
	steps := p.Steps()
	depth := anc.Path().Depth()
	cur := []*datatree.Node{anc}
	for _, step := range steps[depth:] {
		var next []*datatree.Node
		for _, n := range cur {
			next = append(next, n.ChildrenLabeled(step)...)
		}
		cur = next
	}
	return cur
}

// TreeTupleHolds evaluates an FD under the Arenas & Libkin tree-tuple
// notion: over the fully unnested flat relation, any two tree tuples
// that agree, non-null, on every LHS column must agree, non-null, on
// the RHS column (strong satisfaction, matching the rest of the
// system). maxRows guards the multiplicative unnesting (0 = 1<<20).
func TreeTupleHolds(t *datatree.Tree, s *schema.Schema, fd PathFD, maxRows int64) (bool, error) {
	tbl, err := flat.Build(t, s, maxRows)
	if err != nil {
		return false, err
	}
	col := func(p schema.Path) ([]int64, error) {
		for i, c := range tbl.Columns {
			if c == p {
				return tbl.Cols[i], nil
			}
		}
		return nil, fmt.Errorf("notions: no column for path %s", p)
	}
	lhsCols := make([][]int64, len(fd.LHS))
	for i, p := range fd.LHS {
		c, err := col(p)
		if err != nil {
			return false, err
		}
		lhsCols[i] = c
	}
	rhsCol, err := col(fd.RHS)
	if err != nil {
		return false, err
	}
	groups := make(map[string]int64, tbl.NRows) // signature -> first rhs code
	for r := 0; r < tbl.NRows; r++ {
		sig := ""
		null := false
		for _, c := range lhsCols {
			if c[r] < 0 {
				null = true
				break
			}
			sig += fmt.Sprintf("%d|", c[r])
		}
		if null {
			continue
		}
		rv := rhsCol[r]
		if prev, ok := groups[sig]; ok {
			if rv < 0 || prev < 0 || rv != prev {
				return false, nil
			}
			continue
		}
		groups[sig] = rv
	}
	return true, nil
}
