// Package depminer implements a Dep-Miner-style relational FD
// discoverer (Lopes, Petit & Lakhal), the second of the three
// partition/agree-set systems the paper cites alongside TANE and FUN.
// Where TANE walks the attribute-set lattice top-down with
// partitions, Dep-Miner works from *agree sets*: for every tuple
// pair, the set of attributes on which the pair agrees; a minimal FD
// X → A is exactly a minimal transversal of the complements of the
// maximal agree sets that exclude A.
//
// The package exists as an independent oracle: two structurally
// different algorithms must produce identical minimal covers on any
// relation (see TestDepMinerMatchesLattice), which guards the lattice
// implementation far better than example-based tests. Pair
// enumeration is the straightforward O(n²) variant — adequate for an
// oracle; the production path remains the lattice.
package depminer

import (
	"fmt"
	"math/bits"
	"sort"

	"discoverxfd/internal/core"
	"discoverxfd/internal/relation"
)

// attrSet mirrors core.AttrSet locally (≤64 attributes).
type attrSet uint64

func (s attrSet) has(i int) bool          { return s&(1<<uint(i)) != 0 }
func (s attrSet) contains(t attrSet) bool { return s&t == t }
func (s attrSet) size() int               { return bits.OnesCount64(uint64(s)) }

// Result is the minimal cover Dep-Miner computes for one relation.
type Result struct {
	// FDs are the minimal satisfied FDs, including constant columns
	// (empty LHS) and FDs whose LHS is a key; callers filter by
	// policy.
	FDs []core.FD
	// Keys are the minimal keys.
	Keys []core.Key
	// MaxAgreeSets counts the maximal agree sets (instrumentation).
	MaxAgreeSets int
}

// Discover runs the agree-set algorithm on a single relation.
// Relations wider than 64 attributes are rejected like the lattice.
func Discover(rel *relation.Relation) (*Result, error) {
	m := rel.NAttrs()
	if m > 64 {
		return nil, fmt.Errorf("depminer: relation %s has %d attributes; at most 64 are supported", rel.Pivot, m)
	}
	n := rel.NRows()
	res := &Result{}

	// 1. Agree sets over all tuple pairs. Nulls (negative codes)
	// agree with nothing, matching strong satisfaction.
	seen := make(map[attrSet]bool)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			var ag attrSet
			for a := 0; a < m; a++ {
				ci, cj := rel.Cols[a][i], rel.Cols[a][j]
				if ci >= 0 && ci == cj {
					ag |= 1 << uint(a)
				}
			}
			seen[ag] = true
		}
	}
	if n < 2 {
		// No pairs: every attribute set is vacuously a key and every
		// FD holds; report the empty-LHS cover and single-attribute
		// keys... by convention the lattice reports nothing here, so
		// neither do we.
		return res, nil
	}

	agree := make([]attrSet, 0, len(seen))
	for s := range seen {
		agree = append(agree, s)
	}

	// 2. Keys: minimal transversals of the complements of the
	// globally maximal agree sets (a key must distinguish every pair;
	// a dominated agree set imposes a weaker requirement, so global
	// maximality is sound here).
	globalMax := maximal(agree)
	res.MaxAgreeSets = len(globalMax)

	all := attrSet(0)
	for a := 0; a < m; a++ {
		all |= 1 << uint(a)
	}
	var keyEdges []attrSet
	for _, s := range globalMax {
		keyEdges = append(keyEdges, all&^s)
	}
	for _, k := range transversals(keyEdges, all) {
		res.Keys = append(res.Keys, mkKey(rel, k))
	}

	// 3. FDs: per RHS attribute A, the violator sets are the agree
	// sets that EXCLUDE A, and maximality must be taken among those —
	// a set dominated by a superset that contains A still violates A
	// (this per-RHS filtering is Dep-Miner's max(dep) step). The
	// minimal LHSs are the minimal transversals of the violators'
	// complements within attrs \ {A}.
	for a := 0; a < m; a++ {
		universe := all &^ (1 << uint(a))
		var violators []attrSet
		for _, s := range agree {
			if !s.has(a) {
				violators = append(violators, s)
			}
		}
		violators = maximal(violators)
		var edges []attrSet
		impossible := false
		for _, s := range violators {
			e := universe &^ s
			if e == 0 {
				// A pair agrees on everything except A: nothing can
				// determine A.
				impossible = true
				break
			}
			edges = append(edges, e)
		}
		if impossible {
			continue
		}
		for _, lhs := range transversals(edges, universe) {
			res.FDs = append(res.FDs, mkFD(rel, lhs, a))
		}
	}
	return res, nil
}

// maximal keeps only the subset-maximal sets.
func maximal(sets []attrSet) []attrSet {
	sorted := make([]attrSet, len(sets))
	copy(sorted, sets)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].size() > sorted[j].size() })
	var out []attrSet
	for _, s := range sorted {
		dominated := false
		for _, t := range out {
			if t.contains(s) {
				dominated = true
				break
			}
		}
		if !dominated {
			out = append(out, s)
		}
	}
	return out
}

// transversals computes the minimal hitting sets of the edges within
// the universe, by incremental extension with minimality pruning. The
// empty edge list yields the single empty transversal.
func transversals(edges []attrSet, universe attrSet) []attrSet {
	cur := []attrSet{0}
	for _, e := range edges {
		e &= universe
		var next []attrSet
		for _, t := range cur {
			if t&e != 0 {
				next = append(next, t)
				continue
			}
			for a := 0; a < 64; a++ {
				if !e.has(a) {
					continue
				}
				next = append(next, t|1<<uint(a))
			}
		}
		cur = minimalOnly(next)
	}
	return minimalOnly(cur)
}

// minimalOnly removes duplicates and supersets.
func minimalOnly(sets []attrSet) []attrSet {
	sort.Slice(sets, func(i, j int) bool {
		if sets[i].size() != sets[j].size() {
			return sets[i].size() < sets[j].size()
		}
		return sets[i] < sets[j]
	})
	var out []attrSet
	for _, s := range sets {
		keep := true
		for _, t := range out {
			if s == t || s.contains(t) {
				keep = false
				break
			}
		}
		if keep {
			out = append(out, s)
		}
	}
	return out
}

func mkFD(rel *relation.Relation, lhs attrSet, rhs int) core.FD {
	fd := core.FD{Class: rel.Pivot, RHS: rel.Attrs[rhs].Rel}
	for a := 0; a < rel.NAttrs(); a++ {
		if lhs.has(a) {
			fd.LHS = append(fd.LHS, rel.Attrs[a].Rel)
		}
	}
	sort.Slice(fd.LHS, func(i, j int) bool { return fd.LHS[i] < fd.LHS[j] })
	return fd
}

func mkKey(rel *relation.Relation, lhs attrSet) core.Key {
	k := core.Key{Class: rel.Pivot}
	for a := 0; a < rel.NAttrs(); a++ {
		if lhs.has(a) {
			k.LHS = append(k.LHS, rel.Attrs[a].Rel)
		}
	}
	sort.Slice(k.LHS, func(i, j int) bool { return k.LHS[i] < k.LHS[j] })
	return k
}
