package depminer

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"testing"

	"discoverxfd/internal/core"
	"discoverxfd/internal/datatree"
	"discoverxfd/internal/relation"
	"discoverxfd/internal/schema"
)

// buildRelation constructs a single-relation hierarchy from a small
// random column matrix with nulls.
func buildRelation(t *testing.T, seed int64, rows, attrs, domain int) *relation.Relation {
	t.Helper()
	r := rand.New(rand.NewSource(seed))
	text := "db: Rcd\n  row: SetOf Rcd\n"
	for a := 0; a < attrs; a++ {
		text += fmt.Sprintf("    a%d: str\n", a)
	}
	s := schema.MustParse(text)
	root := &datatree.Node{Label: "db"}
	for i := 0; i < rows; i++ {
		row := root.AddChild("row")
		for a := 0; a < attrs; a++ {
			if r.Intn(10) == 0 {
				continue // missing value
			}
			row.AddLeaf(fmt.Sprintf("a%d", a), fmt.Sprintf("v%d", r.Intn(domain)))
		}
	}
	tree := datatree.NewTree(root)
	h, err := relation.Build(tree, s, relation.Options{})
	if err != nil {
		t.Fatal(err)
	}
	return h.ByPivot("/db/row")
}

func fdSet(fds []core.FD) map[string]bool {
	out := make(map[string]bool, len(fds))
	for _, f := range fds {
		out[f.String()] = true
	}
	return out
}

func keySet(keys []core.Key) map[string]bool {
	out := make(map[string]bool, len(keys))
	for _, k := range keys {
		out[k.String()] = true
	}
	return out
}

// dropSuperkey removes FDs whose LHS contains one of the keys, the
// policy the lattice applies via key pruning.
func dropSuperkey(fds []core.FD, keys []core.Key) []core.FD {
	var out []core.FD
	for _, f := range fds {
		super := false
		for _, k := range keys {
			if subset(k.LHS, f.LHS) {
				super = true
				break
			}
		}
		if !super {
			out = append(out, f)
		}
	}
	return out
}

func subset(a, b []schema.RelPath) bool {
	set := map[schema.RelPath]bool{}
	for _, p := range b {
		set[p] = true
	}
	for _, p := range a {
		if !set[p] {
			return false
		}
	}
	return true
}

// TestDepMinerMatchesLattice is the dual-algorithm equivalence check:
// the agree-set/transversal cover must coincide with the lattice
// cover on many random relations with nulls.
func TestDepMinerMatchesLattice(t *testing.T) {
	for seed := int64(1); seed <= 30; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			rel := buildRelation(t, seed, 4+int(seed)%20, 3+int(seed)%3, 2+int(seed)%3)
			latFDs, latKeys, _, err := core.DiscoverRelation(rel, core.Options{KeepConstantFDs: true})
			if err != nil {
				t.Fatal(err)
			}
			dm, err := Discover(rel)
			if err != nil {
				t.Fatal(err)
			}
			dmFDs := dropSuperkey(dm.FDs, dm.Keys)

			if got, want := keySet(dm.Keys), keySet(latKeys); !sameSet(got, want) {
				t.Errorf("key covers differ\ndepminer: %v\nlattice:  %v", keysOf(got), keysOf(want))
			}
			if got, want := fdSet(dmFDs), fdSet(latFDs); !sameSet(got, want) {
				t.Errorf("FD covers differ\ndepminer: %v\nlattice:  %v", keysOf(got), keysOf(want))
			}
		})
	}
}

func sameSet(a, b map[string]bool) bool {
	if len(a) != len(b) {
		return false
	}
	for k := range a {
		if !b[k] {
			return false
		}
	}
	return true
}

func keysOf(m map[string]bool) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// TestDepMinerSmallExample pins a hand-checkable case.
func TestDepMinerSmallExample(t *testing.T) {
	// a b c
	// 1 x p
	// 1 x q
	// 2 y p
	root := &datatree.Node{Label: "db"}
	for _, vals := range [][3]string{{"1", "x", "p"}, {"1", "x", "q"}, {"2", "y", "p"}} {
		row := root.AddChild("row")
		row.AddLeaf("a0", vals[0])
		row.AddLeaf("a1", vals[1])
		row.AddLeaf("a2", vals[2])
	}
	tree := datatree.NewTree(root)
	s := schema.MustParse("db: Rcd\n  row: SetOf Rcd\n    a0: str\n    a1: str\n    a2: str")
	h, err := relation.Build(tree, s, relation.Options{})
	if err != nil {
		t.Fatal(err)
	}
	dm, err := Discover(h.ByPivot("/db/row"))
	if err != nil {
		t.Fatal(err)
	}
	fds := fdSet(dm.FDs)
	// a0 <-> a1 determine each other; {a0,a2} and {a1,a2} are keys.
	for _, want := range []string{
		"{./a0} -> ./a1 w.r.t. C(/db/row)",
		"{./a1} -> ./a0 w.r.t. C(/db/row)",
	} {
		if !fds[want] {
			t.Errorf("missing %s in %v", want, keysOf(fds))
		}
	}
	ks := keySet(dm.Keys)
	for _, want := range []string{
		"{./a0, ./a2} KEY of C(/db/row)",
		"{./a1, ./a2} KEY of C(/db/row)",
	} {
		if !ks[want] {
			t.Errorf("missing %s in %v", want, keysOf(ks))
		}
	}
	if len(dm.Keys) != 2 {
		t.Errorf("keys: %v", keysOf(ks))
	}
}

func TestDepMinerWidthGuard(t *testing.T) {
	rel := &relation.Relation{Pivot: "/x"}
	for i := 0; i < 70; i++ {
		rel.Attrs = append(rel.Attrs, relation.Attr{Rel: schema.RelPath(fmt.Sprintf("./a%d", i))})
		rel.Cols = append(rel.Cols, nil)
	}
	if _, err := Discover(rel); err == nil || !strings.Contains(err.Error(), "at most 64") {
		t.Fatalf("width guard missing: %v", err)
	}
}
