package faultinject

import (
	"context"
	"errors"
	"io"
	"strings"
	"testing"
	"time"
)

func TestReaderFailsAfterN(t *testing.T) {
	r := &Reader{R: strings.NewReader("abcdefghij"), FailAfter: 4}
	got, err := io.ReadAll(r)
	if !errors.Is(err, ErrInjected) {
		t.Fatalf("err = %v, want ErrInjected", err)
	}
	if string(got) != "abcd" {
		t.Fatalf("read %q before the fault, want %q", got, "abcd")
	}
}

func TestReaderCustomError(t *testing.T) {
	custom := errors.New("boom")
	r := &Reader{R: strings.NewReader("abc"), FailAfter: 1, Err: custom}
	if _, err := io.ReadAll(r); !errors.Is(err, custom) {
		t.Fatalf("err = %v, want custom error", err)
	}
}

func TestShort(t *testing.T) {
	got, err := io.ReadAll(Short(strings.NewReader("abcdefghij"), 3))
	if err != nil || string(got) != "abc" {
		t.Fatalf("got %q, %v", got, err)
	}
}

func TestStallReaderUnblocksOnCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	r := &StallReader{R: strings.NewReader("abcdef"), StallAfter: 2, Ctx: ctx}
	buf := make([]byte, 10)
	n, err := r.Read(buf)
	if n != 2 || err != nil {
		t.Fatalf("first read: %d, %v", n, err)
	}
	done := make(chan error, 1)
	go func() {
		_, err := r.Read(buf)
		done <- err
	}()
	select {
	case err := <-done:
		t.Fatalf("stalled read returned early: %v", err)
	case <-time.After(20 * time.Millisecond):
	}
	cancel()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("stalled read err = %v", err)
		}
	case <-time.After(time.Second):
		t.Fatal("stalled read did not unblock on cancel")
	}
}

func TestCancelAfterBytes(t *testing.T) {
	r, ctx := CancelAfterBytes(context.Background(), strings.NewReader(strings.Repeat("x", 100)), 10)
	buf := make([]byte, 4)
	for i := 0; i < 2; i++ {
		if _, err := r.Read(buf); err != nil {
			t.Fatal(err)
		}
		if ctx.Err() != nil {
			t.Fatalf("cancelled after only %d bytes", (i+1)*4)
		}
	}
	if _, err := r.Read(buf); err != nil {
		t.Fatal(err)
	}
	if ctx.Err() == nil {
		t.Fatal("context not cancelled after 12 >= 10 bytes")
	}
}

func TestPanicHook(t *testing.T) {
	hook, fired := PanicHook("book")
	hook("/warehouse/state") // no match, no panic
	func() {
		defer func() {
			if recover() == nil {
				t.Error("hook did not panic on matching pivot")
			}
		}()
		hook("/warehouse/state/store/book")
	}()
	if fired.Load() != 1 {
		t.Fatalf("fired = %d, want 1", fired.Load())
	}
}

func TestCheckGoroutinesTolerance(t *testing.T) {
	check := CheckGoroutines(t)
	ch := make(chan struct{})
	go func() { <-ch }()
	close(ch) // goroutine exits; the checker's polling must tolerate the teardown lag
	check()
}
