// Package faultinject is a test harness for the resource-governance
// contract of the discovery pipeline: readers that error, truncate,
// or stall mid-document; contexts that cancel after a prescribed
// amount of input; panic-injecting hooks for the parallel traversal;
// and a goroutine-leak checker. Production code never imports it —
// it exists so every package's tests can inject the same faults the
// service will eventually meet in the wild.
package faultinject

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net/http"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"discoverxfd/internal/schema"
)

// ErrInjected is the error surfaced by a Reader whose fault fires.
// Wrapping layers must preserve it: errors.Is(err, ErrInjected) is
// how tests assert the failure propagated rather than being swallowed
// or replaced.
var ErrInjected = errors.New("faultinject: injected read error")

// Reader delivers the bytes of R until FailAfter bytes have been
// read, then returns Err (ErrInjected if nil) — an I/O fault in the
// middle of a document.
type Reader struct {
	R         io.Reader
	FailAfter int64
	Err       error

	n int64
}

func (r *Reader) Read(p []byte) (int, error) {
	if r.n >= r.FailAfter {
		return 0, r.err()
	}
	if max := r.FailAfter - r.n; int64(len(p)) > max {
		p = p[:max]
	}
	n, err := r.R.Read(p)
	r.n += int64(n)
	if err == io.EOF {
		return n, io.EOF
	}
	if err != nil {
		return n, err
	}
	if r.n >= r.FailAfter {
		return n, r.err()
	}
	return n, nil
}

func (r *Reader) err() error {
	if r.Err != nil {
		return r.Err
	}
	return ErrInjected
}

// Short delivers only the first n bytes of r, then a clean EOF — a
// connection dropped mid-document, indistinguishable from a
// truncated file.
func Short(r io.Reader, n int64) io.Reader {
	return io.LimitReader(r, n)
}

// SlowReader delivers the bytes of R at most Chunk bytes per Read,
// sleeping Delay before each one — a client trickling its upload over
// a slow link. Zero Chunk defaults to 1 byte; zero Delay just chops
// reads. The total stall a document can impose is
// ceil(len/Chunk)·Delay, so tests size the two to stay fast while
// still exercising the server's read path many times per request.
type SlowReader struct {
	R     io.Reader
	Chunk int
	Delay time.Duration
}

func (r *SlowReader) Read(p []byte) (int, error) {
	if r.Delay > 0 {
		time.Sleep(r.Delay)
	}
	chunk := r.Chunk
	if chunk <= 0 {
		chunk = 1
	}
	if len(p) > chunk {
		p = p[:chunk]
	}
	return r.R.Read(p)
}

// StallReader delivers the bytes of R until StallAfter bytes have
// been read, then blocks until the context is cancelled (returning
// the context's error) — a hung upstream. The context bound is what
// keeps tests using it from deadlocking: a stalled Read cannot be
// interrupted any other way.
type StallReader struct {
	R          io.Reader
	StallAfter int64
	Ctx        context.Context

	n int64
}

func (r *StallReader) Read(p []byte) (int, error) {
	if r.n >= r.StallAfter {
		<-r.Ctx.Done()
		return 0, fmt.Errorf("faultinject: stalled read aborted: %w", r.Ctx.Err())
	}
	if max := r.StallAfter - r.n; int64(len(p)) > max {
		p = p[:max]
	}
	n, err := r.R.Read(p)
	r.n += int64(n)
	return n, err
}

// CancelAfterBytes wraps r so that the returned context is cancelled
// once n bytes have passed through — "cancel after N tokens" for a
// token-sized choice of n. The bytes themselves are delivered
// unmodified; the consumer notices the cancellation at its next
// context check, which is exactly the latency the governance layer
// promises to bound.
func CancelAfterBytes(parent context.Context, r io.Reader, n int64) (io.Reader, context.Context) {
	ctx, cancel := context.WithCancel(parent)
	return &cancellingReader{r: r, remaining: n, cancel: cancel}, ctx
}

type cancellingReader struct {
	r         io.Reader
	remaining int64
	cancel    context.CancelFunc
	once      sync.Once
}

func (c *cancellingReader) Read(p []byte) (int, error) {
	n, err := c.r.Read(p)
	c.remaining -= int64(n)
	if c.remaining <= 0 {
		c.once.Do(c.cancel)
	}
	return n, err
}

// PanicHook returns a relation hook (core.Options.RelationHook) that
// panics when it sees a pivot path containing substr — a fault
// injected into the middle of the (possibly parallel) bottom-up
// traversal. The returned counter reports how often the hook fired.
func PanicHook(substr string) (hook func(pivot schema.Path), fired *atomic.Int32) {
	var count atomic.Int32
	return func(pivot schema.Path) {
		if strings.Contains(string(pivot), substr) {
			count.Add(1)
			panic(fmt.Sprintf("faultinject: injected panic at relation %s", pivot))
		}
	}, &count
}

// FaultHeader is the request header the server-layer fault hook
// reads: its value names the fault point at which to panic (see
// HeaderFaultHook and internal/server's fault-point table in
// docs/INTERNALS.md §13).
const FaultHeader = "X-Fault-Panic"

// HeaderFaultHook returns a server fault hook (server.Config.Fault):
// the server invokes it at each named fault point with the incoming
// request's headers, and the hook panics when the request's
// FaultHeader names that point — per-request, client-triggered chaos,
// exercising the server's recovery middleware exactly where real
// bugs would fire. The returned counter reports how often it fired.
func HeaderFaultHook() (hook func(point string, h http.Header), fired *atomic.Int32) {
	var count atomic.Int32
	return func(point string, h http.Header) {
		if h.Get(FaultHeader) == point {
			count.Add(1)
			panic(fmt.Sprintf("faultinject: injected panic at server fault point %q", point))
		}
	}, &count
}

// errorTB is the subset of testing.TB the leak checker needs; taking
// the interface keeps this package importable outside tests.
type errorTB interface {
	Helper()
	Errorf(format string, args ...any)
}

// CheckGoroutines records the current goroutine count and returns a
// function to defer: it polls until the count returns to the baseline
// (scheduler teardown is asynchronous, so a few retries are normal)
// and reports a leak through tb if it never does.
func CheckGoroutines(tb errorTB) func() {
	tb.Helper()
	before := runtime.NumGoroutine()
	return func() {
		tb.Helper()
		deadline := time.Now().Add(2 * time.Second)
		var after int
		for {
			after = runtime.NumGoroutine()
			if after <= before || time.Now().After(deadline) {
				break
			}
			time.Sleep(5 * time.Millisecond)
		}
		if after > before {
			buf := make([]byte, 1<<16)
			buf = buf[:runtime.Stack(buf, true)]
			tb.Errorf("goroutine leak: %d before, %d after\n%s", before, after, buf)
		}
	}
}
