// Package cliutil holds the flag-level observability plumbing the
// CLIs share: materializing -trace/-v/-vv into one tracer backend
// stack, and flushing it reliably on both the normal and the fatal
// exit path.
package cliutil

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"os"

	"discoverxfd/internal/trace"
)

// Tracing owns a CLI run's tracer stack: an optional JSONL event file
// (-trace=<file>) and an optional slog progress logger on stderr
// (-v/-vv). Close must run before the process exits — including the
// fatal path — or buffered trace events are lost.
type Tracing struct {
	tracer trace.Tracer
	jsonl  *trace.JSONL
	buf    *bufio.Writer
	file   *os.File
}

// Open builds the tracer stack for the given flag values. An empty
// tracePath with v and vv false yields a Tracing whose Tracer is nil
// (tracing off); Close is then a no-op, so callers need no special
// casing.
func Open(tracePath string, v, vv bool) (*Tracing, error) {
	t := &Tracing{}
	var backends []trace.Tracer
	if tracePath != "" {
		f, err := os.Create(tracePath)
		if err != nil {
			return nil, err
		}
		t.file = f
		t.buf = bufio.NewWriter(f)
		t.jsonl = trace.NewJSONL(t.buf)
		backends = append(backends, t.jsonl)
	}
	if v || vv {
		backends = append(backends,
			trace.NewProgress(slog.New(slog.NewTextHandler(os.Stderr, nil)), vv))
	}
	t.tracer = trace.Multi(backends...)
	return t, nil
}

// Tracer returns the combined tracer; nil when tracing is off.
func (t *Tracing) Tracer() trace.Tracer {
	if t == nil {
		return nil
	}
	return t.tracer
}

// Close flushes and closes the trace file, surfacing the first write
// error the JSONL backend latched. Safe on a nil or traceless value,
// and idempotent.
func (t *Tracing) Close() error {
	if t == nil || t.file == nil {
		return nil
	}
	err := t.jsonl.Err()
	if ferr := t.buf.Flush(); err == nil {
		err = ferr
	}
	if cerr := t.file.Close(); err == nil {
		err = cerr
	}
	t.file = nil
	if err != nil {
		return fmt.Errorf("writing trace: %w", err)
	}
	return nil
}

// WriteMetrics renders a Metrics-like snapshot as indented JSON — the
// -metrics flag's output format, kept on w (stderr) so it never mixes
// into a report or JSON result on stdout.
func WriteMetrics(w io.Writer, m any) error {
	b, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return err
	}
	_, err = fmt.Fprintf(w, "%s\n", b)
	return err
}
