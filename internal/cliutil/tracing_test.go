package cliutil

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"discoverxfd/internal/trace"
)

func TestOpenOffIsNilTracer(t *testing.T) {
	tr, err := Open("", false, false)
	if err != nil {
		t.Fatal(err)
	}
	if tr.Tracer() != nil {
		t.Error("tracing off should yield a nil Tracer")
	}
	if err := tr.Close(); err != nil {
		t.Errorf("traceless Close: %v", err)
	}
	var nilTracing *Tracing
	if nilTracing.Tracer() != nil || nilTracing.Close() != nil {
		t.Error("nil *Tracing must be inert")
	}
}

func TestOpenWritesFlushedJSONL(t *testing.T) {
	path := filepath.Join(t.TempDir(), "run.trace")
	tr, err := Open(path, false, false)
	if err != nil {
		t.Fatal(err)
	}
	trace.Emit(tr.Tracer(), &trace.Event{Kind: trace.KindCheck, Action: "holds", Detail: "x"})
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}
	if err := tr.Close(); err != nil {
		t.Errorf("second Close: %v", err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	b := string(raw)
	if !strings.Contains(b, `"event":"check"`) {
		t.Fatalf("flushed trace missing event: %q", b)
	}
	if _, err := trace.ValidateJSONL(strings.NewReader(b)); err != nil {
		t.Fatalf("written trace does not validate: %v", err)
	}
}

func TestOpenRejectsUnwritablePath(t *testing.T) {
	if _, err := Open(filepath.Join(t.TempDir(), "no", "such", "dir", "x"), false, false); err == nil {
		t.Fatal("want error for uncreatable trace file")
	}
}

func TestWriteMetrics(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteMetrics(&buf, map[string]int{"runs": 3}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), `"runs": 3`) {
		t.Fatalf("unexpected metrics rendering: %q", buf.String())
	}
	if err := WriteMetrics(&buf, func() {}); err == nil {
		t.Fatal("unmarshalable value should error")
	}
}
