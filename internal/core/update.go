package core

import (
	"sort"
	"time"

	"discoverxfd/internal/partition"
	"discoverxfd/internal/relation"
	"discoverxfd/internal/trace"
)

// ApplyUpdate applies a batch of document updates to h and patches the
// engine's warm partition layer in place of invalidating it: retained
// partitions of untouched relations (and of touched relations' clean
// columns) are kept, dirty single-column partitions are spliced via
// partition.Patch, and only multi-column sets intersecting the dirty
// columns are dropped — those the next run recomputes by products of
// the patched columns. The next Discover over h therefore starts warm
// almost everywhere, which is what the E-update benchmark measures.
//
// ApplyUpdate serializes against running discoveries: it takes h's
// writer lock while discover holds the reader lock across seed,
// execute, and publish, so a run never observes half-applied updates
// and never publishes pre-update partitions over a patched warm entry.
//
// A nil engine is valid (the document is updated, there is no warm
// layer to patch). On error the hierarchy retains the updates applied
// before the failing op; the warm layer is dropped for h so no stale
// partitions can be served.
func (e *Engine) ApplyUpdate(h *relation.Hierarchy, ops []relation.Update) (*relation.Changeset, error) {
	start := time.Now()
	h.Lock()
	cs, err := h.Apply(ops)
	var pr []patchReport
	if err == nil {
		pr = e.patchWarm(h, cs)
	} else {
		e.dropWarm(h)
	}
	h.Unlock()
	e.updateDone(cs, err, pr)
	e.traceUpdate(start, cs, err, pr)
	if err != nil {
		return nil, err
	}
	return cs, nil
}

// patchReport summarizes the warm-layer patch of one relation.
type patchReport struct {
	rel     *relation.Relation
	rows    int // touched rows
	attrs   int // dirty columns
	kept    int // partitions shared untouched
	patched int // single-column partitions spliced
	dropped int // stale multi-column sets discarded
}

// patchWarm rewrites h's warm entry under the Changeset. It builds
// fresh maps for touched relations (warm maps are shared with seeding
// runs and never mutated) and shares the rest. Caller holds h's writer
// lock, so no run is concurrently seeding from or publishing to the
// entry.
func (e *Engine) patchWarm(h *relation.Hierarchy, cs *relation.Changeset) []patchReport {
	if e == nil {
		return nil
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	var w *warmHierarchy
	for _, ww := range e.warm {
		if ww.h == h {
			w = ww
			break
		}
	}
	if w == nil {
		return nil
	}
	// Dirty the subtree memo before rewriting partitions: every touched
	// relation loses its cached lattice outputs, and a resized relation
	// additionally invalidates its children's outgoing targets (see
	// subtreeMemo.markDirty). The memo itself survives — the next run
	// still replays every clean cone.
	if w.memo != nil {
		for idx, rc := range cs.Rels {
			if rc != nil && idx < len(h.Relations) {
				w.memo.markDirty(h.Relations[idx], rc.Resized)
			}
		}
	}
	var reports []patchReport
	parts := make(map[*relation.Relation]map[AttrSet]*partition.Partition, len(w.parts))
	for rel, m := range w.parts {
		var rc *relation.RelChange
		if rel.Index < len(cs.Rels) {
			rc = cs.Rels[rel.Index]
		}
		if rc == nil {
			parts[rel] = m // untouched relation: share wholesale
			continue
		}
		rep := patchReport{rel: rel, rows: len(rc.Rows)}
		for ai := range rel.Attrs {
			if rc.DirtyAttr(ai) {
				rep.attrs++
			}
		}
		nm := make(map[AttrSet]*partition.Partition, len(m))
		for a, p := range m {
			switch {
			case a == 0:
				// Π_∅ depends only on the row count: recompute on
				// resize, keep otherwise.
				if rc.Resized {
					nm[a] = partition.Single(rel.NRows())
					rep.patched++
				} else {
					nm[a] = p
					rep.kept++
				}
			case a.Size() == 1:
				if i := a.MaxBit(); rc.DirtyAttr(i) {
					nm[a] = p.Patch(rel.Cols[i], rc.Rows)
					rep.patched++
				} else {
					nm[a] = p
					rep.kept++
				}
			default:
				dirty := rc.Resized
				for _, i := range a.Attrs() {
					if dirty {
						break
					}
					dirty = rc.DirtyAttr(i)
				}
				if dirty {
					rep.dropped++ // next run rebuilds by product
				} else {
					nm[a] = p
					rep.kept++
				}
			}
		}
		if len(nm) > 0 {
			parts[rel] = nm
		}
		reports = append(reports, rep)
	}
	w.parts = parts
	// Reports feed trace events and counters: order them by relation
	// for deterministic emission.
	sort.Slice(reports, func(i, j int) bool { return reports[i].rel.Index < reports[j].rel.Index })
	return reports
}

// dropWarm removes h's warm entry (failed update batches leave the
// hierarchy partially updated, so retained partitions may be stale).
func (e *Engine) dropWarm(h *relation.Hierarchy) {
	if e == nil {
		return
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	kept := e.warm[:0]
	for _, w := range e.warm {
		if w.h != h {
			kept = append(kept, w)
		}
	}
	for i := len(kept); i < len(e.warm); i++ {
		e.warm[i] = nil
	}
	e.warm = kept
}

// traceUpdate emits the update span: one update_apply event, preceded
// by a partition_patch event per warm relation rewritten.
func (e *Engine) traceUpdate(start time.Time, cs *relation.Changeset, err error, pr []patchReport) {
	if e == nil || e.opts.Tracer == nil {
		return
	}
	for _, rep := range pr {
		trace.Emit(e.opts.Tracer, &trace.Event{
			Kind:     trace.KindPartitionPatch,
			Relation: string(rep.rel.Pivot),
			Tuples:   rep.rows,
			Attrs:    rep.attrs,
			Kept:     rep.kept,
			Patched:  rep.patched,
			Dropped:  rep.dropped,
		})
	}
	ev := &trace.Event{Kind: trace.KindUpdateApply, DurationMS: msSince(start)}
	if err != nil {
		ev.Err = err.Error()
	} else {
		ev.Ops = cs.Ops()
		for _, rc := range cs.Rels {
			if rc != nil {
				ev.Relations++
				ev.Tuples += len(rc.Rows)
			}
		}
	}
	trace.Emit(e.opts.Tracer, ev)
}
