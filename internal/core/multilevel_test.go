package core

import (
	"fmt"
	"testing"

	"discoverxfd/internal/datatree"
	"discoverxfd/internal/relation"
	"discoverxfd/internal/schema"
)

// threeLevelSchema hosts an FD whose LHS must draw one attribute from
// each of three hierarchy levels, exercising partial propagation
// (Figure 9 lines 26–29) end to end.
var threeLevelSchema = schema.MustParse(`
org: Rcd
  region: SetOf Rcd
    rname: str
    site: SetOf Rcd
      sname: str
      machine: SetOf Rcd
        kind: str
        rack: str
`)

// buildThreeLevel constructs data where rack = f(rname, sname, kind)
// and every proper subset of {rname, sname, kind} fails to determine
// rack: the function's outputs collide unless all three inputs are
// known.
func buildThreeLevel(t *testing.T) *relation.Hierarchy {
	t.Helper()
	rack := func(r, s, k int) string {
		return fmt.Sprintf("rack%d", (r*2+s*3+k*5)%7)
	}
	root := &datatree.Node{Label: "org"}
	for r := 0; r < 3; r++ {
		region := root.AddChild("region")
		region.AddLeaf("rname", fmt.Sprintf("R%d", r))
		for s := 0; s < 3; s++ {
			site := region.AddChild("site")
			site.AddLeaf("sname", fmt.Sprintf("S%d", s))
			for k := 0; k < 3; k++ {
				m := site.AddChild("machine")
				m.AddLeaf("kind", fmt.Sprintf("K%d", k))
				m.AddLeaf("rack", rack(r, s, k))
				// A duplicate machine per (r,s,k) makes the full LHS
				// a non-key, so the FD indicates redundancy and is
				// reported.
				d := site.AddChild("machine")
				d.AddLeaf("kind", fmt.Sprintf("K%d", k))
				d.AddLeaf("rack", rack(r, s, k))
			}
		}
	}
	tree := datatree.NewTree(root)
	h, err := relation.Build(tree, threeLevelSchema, relation.Options{})
	if err != nil {
		t.Fatalf("build: %v", err)
	}
	return h
}

// TestThreeLevelLHS verifies that an FD spanning three hierarchy
// levels is discovered via partial target propagation, and vanishes
// when propagation is disabled.
func TestThreeLevelLHS(t *testing.T) {
	h := buildThreeLevel(t)
	machine := schema.Path("/org/region/site/machine")
	lhs := []schema.RelPath{"../../rname", "../sname", "./kind"}

	// Ground truth via the evaluator.
	ev, err := Evaluate(h, machine, lhs, "./rack")
	if err != nil {
		t.Fatal(err)
	}
	if !ev.Holds || ev.LHSIsKey {
		t.Fatalf("construction broken: holds=%v key=%v", ev.Holds, ev.LHSIsKey)
	}
	for drop := 0; drop < 3; drop++ {
		sub := append([]schema.RelPath(nil), lhs...)
		sub = append(sub[:drop], sub[drop+1:]...)
		ev, err := Evaluate(h, machine, sub, "./rack")
		if err != nil {
			t.Fatal(err)
		}
		if ev.Holds {
			t.Fatalf("subset %v should not determine ./rack", sub)
		}
	}

	res, err := Discover(h, Options{PropagatePartial: true})
	if err != nil {
		t.Fatal(err)
	}
	if !impliedFD(res, machine, lhs, "./rack") {
		var got []string
		for _, fd := range res.FDs {
			if fd.Class == machine && fd.RHS == "./rack" {
				got = append(got, fd.String())
			}
		}
		t.Fatalf("three-level FD not discovered; rack FDs found: %v", got)
	}

	// Without partial propagation the three-level LHS is out of
	// reach (pure conversion can only defer the whole LHS to one
	// ancestor level at a time without absorbing intermediate
	// attributes).
	res2, err := Discover(h, Options{PropagatePartial: false})
	if err != nil {
		t.Fatal(err)
	}
	for _, fd := range res2.FDs {
		if fd.Class == machine && fd.RHS == "./rack" && len(fd.LHS) == 3 {
			t.Fatalf("unexpected three-level FD without propagation: %s", fd)
		}
	}
}

// TestMaxLHSBound checks that the per-level LHS bound is honored.
func TestMaxLHSBound(t *testing.T) {
	h := buildThreeLevel(t)
	res, err := Discover(h, Options{PropagatePartial: true, MaxLHS: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, fd := range res.FDs {
		perLevel := map[int]int{}
		for _, p := range fd.LHS {
			ups := 0
			s := string(p)
			for len(s) >= 2 && s[0] == '.' && s[1] == '.' {
				ups++
				if len(s) > 3 {
					s = s[3:]
				} else {
					s = ""
				}
			}
			perLevel[ups]++
		}
		for lvl, n := range perLevel {
			if n > 1 {
				t.Fatalf("FD %s draws %d attrs from level -%d despite MaxLHS=1", fd, n, lvl)
			}
		}
	}
}

// TestPruningAblationPreservesFDs checks the E6 invariant: disabling
// pruning rules never changes which redundancy-indicating FDs are
// found — pruning only avoids work (and the reporting of FDs with
// superkey LHSs, which the superkey filter removes in all variants).
func TestPruningAblationPreservesFDs(t *testing.T) {
	h := buildThreeLevel(t)
	base, err := Discover(h, Options{PropagatePartial: true, MaxLHS: 3})
	if err != nil {
		t.Fatal(err)
	}
	variants := []Options{
		{PropagatePartial: true, MaxLHS: 3, DisableKeyPruning: true},
		{PropagatePartial: true, MaxLHS: 3, DisableFDPruning: true},
		{PropagatePartial: true, MaxLHS: 3, DisableKeyPruning: true, DisableFDPruning: true},
	}
	baseSet := map[string]bool{}
	for _, fd := range base.FDs {
		baseSet[fd.String()] = true
	}
	for i, opts := range variants {
		res, err := Discover(h, opts)
		if err != nil {
			t.Fatal(err)
		}
		// Every baseline FD must still be implied.
		for _, fd := range base.FDs {
			if !impliedFD(res, fd.Class, fd.LHS, fd.RHS) {
				t.Errorf("variant %d lost FD %s", i, fd)
			}
		}
		// Every variant FD must hold (soundness under ablation).
		for _, fd := range res.FDs {
			ev, err := Evaluate(h, fd.Class, fd.LHS, fd.RHS)
			if err != nil {
				t.Fatal(err)
			}
			if !ev.Holds {
				t.Errorf("variant %d unsound FD %s", i, fd)
			}
		}
	}
}

// TestIntraOnlySkipsInterFDs checks DiscoverIntra finds no
// inter-relation results.
func TestIntraOnlySkipsInterFDs(t *testing.T) {
	h := buildThreeLevel(t)
	res, err := DiscoverIntra(h, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, fd := range res.FDs {
		if fd.Inter {
			t.Fatalf("intra-only discovery produced inter FD %s", fd)
		}
	}
	for _, k := range res.Keys {
		if k.Inter {
			t.Fatalf("intra-only discovery produced inter key %s", k)
		}
	}
	if res.Stats.TargetsCreated != 0 {
		t.Fatalf("intra-only discovery created %d targets", res.Stats.TargetsCreated)
	}
}

// TestTooManyAttributes checks the 64-attribute guard.
func TestTooManyAttributes(t *testing.T) {
	root := &datatree.Node{Label: "t"}
	row := root.AddChild("r")
	text := "t: Rcd\n  r: SetOf Rcd\n"
	for i := 0; i < 70; i++ {
		text += fmt.Sprintf("    a%d: str\n", i)
		row.AddLeaf(fmt.Sprintf("a%d", i), "v")
	}
	root.AddChild("r").AddLeaf("a0", "w")
	tree := datatree.NewTree(root)
	s := schema.MustParse(text)
	h, err := relation.Build(tree, s, relation.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Discover(h, Options{}); err == nil {
		t.Fatal("expected an error for >64 attributes")
	}
}
