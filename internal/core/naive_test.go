package core

import (
	"fmt"
	"math/rand"
	"testing"

	"discoverxfd/internal/datatree"
	"discoverxfd/internal/relation"
	"discoverxfd/internal/schema"
)

// naiveSchema is a three-level hierarchy with a nested simple set,
// exercising every structural case: multi-level LHSs, set
// pseudo-attributes, missing values.
var naiveSchema = schema.MustParse(`
root: Rcd
  g: SetOf Rcd
    gx: str
    gy: str
    p: SetOf Rcd
      px: str
      py: str
      c: SetOf Rcd
        cx: str
        cy: str
        m: SetOf str
`)

// randomDoc builds a random document over naiveSchema with tiny value
// domains (to force agreeing tuples) and occasional missing leaves
// (to exercise strong-satisfaction nulls).
func randomDoc(seed int64) *datatree.Tree {
	r := rand.New(rand.NewSource(seed))
	v := func(prefix string, dom int) string {
		return fmt.Sprintf("%s%d", prefix, r.Intn(dom))
	}
	maybeLeaf := func(n *datatree.Node, label, val string) {
		if r.Intn(10) > 0 { // 10% missing
			n.AddLeaf(label, val)
		}
	}
	root := &datatree.Node{Label: "root"}
	for gi, ng := 0, 2+r.Intn(2); gi < ng; gi++ {
		g := root.AddChild("g")
		maybeLeaf(g, "gx", v("x", 2))
		maybeLeaf(g, "gy", v("y", 2))
		for pi, np := 0, 1+r.Intn(3); pi < np; pi++ {
			p := g.AddChild("p")
			maybeLeaf(p, "px", v("x", 2))
			maybeLeaf(p, "py", v("y", 3))
			for ci, nc := 0, r.Intn(4); ci < nc; ci++ {
				c := p.AddChild("c")
				maybeLeaf(c, "cx", v("x", 2))
				maybeLeaf(c, "cy", v("y", 3))
				for mi, nm := 0, r.Intn(3); mi < nm; mi++ {
					c.AddLeaf("m", v("m", 2))
				}
			}
		}
	}
	return datatree.NewTree(root)
}

// availablePaths lists every candidate FD path for a class: the
// origin relation's attributes plus all ancestor attributes, lifted
// into the origin's relative notation.
func availablePaths(h *relation.Hierarchy, origin *relation.Relation) []schema.RelPath {
	depths := relationDepths(h)
	var out []schema.RelPath
	for rel := origin; rel != nil; rel = rel.Parent {
		if !rel.Essential && rel != origin {
			break // stop at the synthetic root
		}
		for i := range rel.Attrs {
			out = append(out, relPathsFor(rel, AttrSet(0).Add(i), origin, depths)...)
		}
	}
	return out
}

// impliedFD reports whether some discovered FD implies the candidate:
// same class and RHS, discovered LHS ⊆ candidate LHS.
func impliedFD(res *Result, class schema.Path, lhs []schema.RelPath, rhs schema.RelPath) bool {
	set := map[schema.RelPath]bool{}
	for _, p := range lhs {
		set[p] = true
	}
	for _, fd := range res.FDs {
		if fd.Class != class || fd.RHS != rhs {
			continue
		}
		ok := true
		for _, p := range fd.LHS {
			if !set[p] {
				ok = false
				break
			}
		}
		if ok {
			return true
		}
	}
	return false
}

// impliedKey reports whether some discovered key's LHS is a subset of
// the candidate LHS for the class.
func impliedKey(res *Result, class schema.Path, lhs []schema.RelPath) bool {
	set := map[schema.RelPath]bool{}
	for _, p := range lhs {
		set[p] = true
	}
	for _, k := range res.Keys {
		if k.Class != class {
			continue
		}
		ok := true
		for _, p := range k.LHS {
			if !set[p] {
				ok = false
				break
			}
		}
		if ok {
			return true
		}
	}
	return false
}

// intraKeyStrictlyInside reports whether a discovered *intra* key of
// the class sits strictly inside the candidate's origin-level
// attribute set plus RHS. Figure 8/9 prune the expansion of key
// supersets, so edges whose node strictly contains a key never seed
// partition targets — a documented incompleteness of the published
// algorithm that the completeness assertion must mirror.
func intraKeyStrictlyInside(res *Result, class schema.Path, originLHS []schema.RelPath, rhs schema.RelPath) bool {
	node := map[schema.RelPath]bool{rhs: true}
	for _, p := range originLHS {
		node[p] = true
	}
	for _, k := range res.Keys {
		if k.Class != class || k.Inter {
			continue
		}
		inside := true
		for _, p := range k.LHS {
			if !node[p] {
				inside = false
				break
			}
		}
		if inside && len(k.LHS) < len(node) {
			return true
		}
	}
	return false
}

func isOriginPath(p schema.RelPath) bool {
	return p == "." || (len(p) >= 2 && p[0] == '.' && p[1] == '/')
}

// TestDiscoverMatchesNaiveEnumeration is the system's central
// correctness check: on many small random documents, every discovered
// FD and Key must verify against the independent evaluator
// (soundness), and every holding candidate constraint with up to two
// LHS paths must be implied by the discovery output (completeness,
// modulo the key-superset pruning the paper builds in).
func TestDiscoverMatchesNaiveEnumeration(t *testing.T) {
	for seed := int64(1); seed <= 60; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			tree := randomDoc(seed)
			h, err := relation.Build(tree, naiveSchema, relation.Options{})
			if err != nil {
				t.Fatalf("build: %v", err)
			}
			res, err := Discover(h, Options{PropagatePartial: true, KeepConstantFDs: true})
			if err != nil {
				t.Fatalf("discover: %v", err)
			}

			// Soundness: every discovered FD holds with a non-key
			// LHS; every discovered Key is a key.
			for _, fd := range res.FDs {
				ev, err := Evaluate(h, fd.Class, fd.LHS, fd.RHS)
				if err != nil {
					t.Fatalf("evaluate %s: %v", fd, err)
				}
				if !ev.Holds {
					t.Errorf("unsound FD: %s (%d violations)", fd, ev.Violations)
				}
				if ev.LHSIsKey {
					t.Errorf("FD with key LHS reported: %s", fd)
				}
			}
			for _, k := range res.Keys {
				rel := h.ByPivot(k.Class)
				ev, err := Evaluate(h, k.Class, k.LHS, rel.Attrs[0].Rel)
				if err != nil {
					t.Fatalf("evaluate key %s: %v", k, err)
				}
				if !ev.LHSIsKey {
					t.Errorf("unsound key: %s", k)
				}
			}

			// Completeness over all candidates with |LHS| ≤ 2.
			for _, origin := range h.EssentialRelations() {
				if origin.NRows() < 2 {
					continue
				}
				paths := availablePaths(h, origin)
				var rhss []schema.RelPath
				for i := range origin.Attrs {
					rhss = append(rhss, origin.Attrs[i].Rel)
				}
				var cands [][]schema.RelPath
				cands = append(cands, nil)
				for i, p := range paths {
					cands = append(cands, []schema.RelPath{p})
					for _, q := range paths[i+1:] {
						cands = append(cands, []schema.RelPath{p, q})
					}
				}
				for _, lhs := range cands {
					// Key candidates.
					if len(lhs) > 0 {
						ev, err := Evaluate(h, origin.Pivot, lhs, rhss[0])
						if err != nil {
							t.Fatalf("evaluate: %v", err)
						}
						if ev.LHSIsKey && !impliedKey(res, origin.Pivot, lhs) {
							t.Errorf("missed key: {%v} of C(%s)", lhs, origin.Pivot)
						}
					}
					// FD candidates.
					for _, rhs := range rhss {
						skip := false
						var originLHS []schema.RelPath
						for _, p := range lhs {
							if p == rhs {
								skip = true // trivial
							}
							if isOriginPath(p) {
								originLHS = append(originLHS, p)
							}
						}
						if skip {
							continue
						}
						ev, err := Evaluate(h, origin.Pivot, lhs, rhs)
						if err != nil {
							t.Fatalf("evaluate: %v", err)
						}
						if !ev.Holds || ev.LHSIsKey {
							continue
						}
						if intraKeyStrictlyInside(res, origin.Pivot, originLHS, rhs) {
							continue // documented pruning limitation
						}
						if !impliedFD(res, origin.Pivot, lhs, rhs) {
							t.Errorf("missed FD: {%v} -> %s w.r.t. C(%s)", lhs, rhs, origin.Pivot)
						}
					}
				}
			}
		})
	}
}

// TestDiscoverSoundUnderVariants runs the soundness half of the
// cross-check under every option variation: whatever the
// configuration, nothing unsound may ever be reported.
func TestDiscoverSoundUnderVariants(t *testing.T) {
	variants := []struct {
		name  string
		ropts relation.Options
		copts Options
	}{
		{"ordered-sets", relation.Options{OrderedSets: true}, Options{PropagatePartial: true}},
		{"no-set-attrs", relation.Options{DisableSetAttrs: true}, Options{PropagatePartial: true}},
		{"maxlhs-1", relation.Options{}, Options{PropagatePartial: true, MaxLHS: 1}},
		{"no-propagation", relation.Options{}, Options{PropagatePartial: false}},
		{"parallel", relation.Options{}, Options{PropagatePartial: true, Parallel: true}},
		{"tiny-caps", relation.Options{}, Options{PropagatePartial: true, MaxTargetPairs: 4, MaxTargetsPerRelation: 3}},
	}
	for _, v := range variants {
		v := v
		t.Run(v.name, func(t *testing.T) {
			for seed := int64(1); seed <= 12; seed++ {
				tree := randomDoc(seed)
				h, err := relation.Build(tree, naiveSchema, v.ropts)
				if err != nil {
					t.Fatal(err)
				}
				res, err := Discover(h, v.copts)
				if err != nil {
					t.Fatal(err)
				}
				for _, fd := range res.FDs {
					ev, err := Evaluate(h, fd.Class, fd.LHS, fd.RHS)
					if err != nil {
						t.Fatalf("seed %d: evaluate %s: %v", seed, fd, err)
					}
					if !ev.Holds || ev.LHSIsKey {
						t.Errorf("seed %d: unsound FD under %s: %s (holds=%v key=%v)",
							seed, v.name, fd, ev.Holds, ev.LHSIsKey)
					}
				}
				for _, k := range res.Keys {
					rel := h.ByPivot(k.Class)
					ev, err := Evaluate(h, k.Class, k.LHS, rel.Attrs[0].Rel)
					if err != nil {
						t.Fatalf("seed %d: evaluate key %s: %v", seed, k, err)
					}
					if !ev.LHSIsKey {
						t.Errorf("seed %d: unsound key under %s: %s", seed, v.name, k)
					}
				}
			}
		})
	}
}
