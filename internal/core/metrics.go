package core

import (
	"sync"

	"discoverxfd/internal/relation"
)

// Metrics is a point-in-time snapshot of an Engine's cumulative
// counters, taken with Engine.Metrics. Counters cover every run the
// engine executed since construction; Totals accumulates the Stats of
// finished runs (failed runs contribute to RunsFailed only — they
// return no Stats). The snapshot is a plain value: encode it, diff
// it, or publish it via expvar freely.
type Metrics struct {
	// RunsStarted counts discovery runs entered; RunsFinished those
	// that returned a Result (truncated counts as finished),
	// RunsTruncated the finished runs whose Result was partial, and
	// RunsFailed those that returned an error (cancellation, panic).
	RunsStarted   int64
	RunsFinished  int64
	RunsTruncated int64
	RunsFailed    int64
	// WarmSeeded counts runs that started from the engine's warm
	// partition layer instead of cold.
	WarmSeeded int64
	// Evaluations counts direct FD evaluations (Engine.Evaluate).
	Evaluations int64
	// UpdatesApplied counts successful ApplyUpdate batches,
	// UpdateOps the individual update operations inside them, and
	// UpdatesFailed the rejected batches.
	UpdatesApplied int64
	UpdateOps      int64
	UpdatesFailed  int64
	// PartitionsPatched / PartitionsKept / PartitionsDropped count the
	// fate of warm-layer partitions across updates: spliced in place,
	// shared untouched, or discarded as stale.
	PartitionsPatched int64
	PartitionsKept    int64
	PartitionsDropped int64
	// CacheHighWaterBytes is the largest partition-cache peak any
	// single run reached.
	CacheHighWaterBytes int64
	// Totals sums the Stats of every finished run; Totals.WallTime is
	// the engine's cumulative discovery wall clock and
	// Totals.PartitionCachePeakBytes mirrors CacheHighWaterBytes (a
	// maximum, not a sum).
	Totals Stats
}

// engineMetrics is the Engine's live counter state. The hot counters
// are atomics so concurrent runs never contend; the Stats accumulator
// is mutex-guarded and touched once per finished run.
type engineMetrics struct {
	mu                  sync.Mutex
	runsStarted         int64 // guarded by mu
	runsFinished        int64 // guarded by mu
	runsTruncated       int64 // guarded by mu
	runsFailed          int64 // guarded by mu
	warmSeeded          int64 // guarded by mu
	evaluations         int64 // guarded by mu
	updatesApplied      int64 // guarded by mu
	updateOps           int64 // guarded by mu
	updatesFailed       int64 // guarded by mu
	partitionsPatched   int64 // guarded by mu
	partitionsKept      int64 // guarded by mu
	partitionsDropped   int64 // guarded by mu
	cacheHighWaterBytes int64 // guarded by mu
	totals              Stats // guarded by mu
}

// runStarted records a discovery run entering the pipeline.
func (e *Engine) runStarted() {
	if e == nil {
		return
	}
	e.met.mu.Lock()
	e.met.runsStarted++
	e.met.mu.Unlock()
}

// warmSeeded records a run seeded from the warm layer.
func (e *Engine) warmSeededRun() {
	if e == nil {
		return
	}
	e.met.mu.Lock()
	e.met.warmSeeded++
	e.met.mu.Unlock()
}

// evaluated records one direct FD evaluation.
func (e *Engine) evaluated() {
	if e == nil {
		return
	}
	e.met.mu.Lock()
	e.met.evaluations++
	e.met.mu.Unlock()
}

// updateDone folds one ApplyUpdate batch into the counters.
func (e *Engine) updateDone(cs *relation.Changeset, err error, pr []patchReport) {
	if e == nil {
		return
	}
	e.met.mu.Lock()
	defer e.met.mu.Unlock()
	if err != nil {
		e.met.updatesFailed++
		return
	}
	e.met.updatesApplied++
	e.met.updateOps += int64(cs.Ops())
	for _, rep := range pr {
		e.met.partitionsPatched += int64(rep.patched)
		e.met.partitionsKept += int64(rep.kept)
		e.met.partitionsDropped += int64(rep.dropped)
	}
}

// runDone folds a finished (or failed) run into the counters.
func (e *Engine) runDone(res *Result, err error) {
	if e == nil {
		return
	}
	e.met.mu.Lock()
	defer e.met.mu.Unlock()
	if err != nil || res == nil {
		e.met.runsFailed++
		return
	}
	e.met.runsFinished++
	st := &res.Stats
	if st.Truncated {
		e.met.runsTruncated++
	}
	if st.PartitionCachePeakBytes > e.met.cacheHighWaterBytes {
		e.met.cacheHighWaterBytes = st.PartitionCachePeakBytes
	}
	t := &e.met.totals
	mergeStats(t, st)
	t.WallTime += st.WallTime
	t.PartitionCacheHits += st.PartitionCacheHits
	t.PartitionCacheMisses += st.PartitionCacheMisses
	t.PartitionCacheEvictions += st.PartitionCacheEvictions
	if st.PartitionCachePeakBytes > t.PartitionCachePeakBytes {
		t.PartitionCachePeakBytes = st.PartitionCachePeakBytes
	}
}

// Metrics returns a snapshot of the engine's cumulative counters. Safe
// for concurrent use with running discoveries; a nil engine reports
// zeroes.
func (e *Engine) Metrics() Metrics {
	var m Metrics
	if e == nil {
		return m
	}
	e.met.mu.Lock()
	defer e.met.mu.Unlock()
	m.RunsStarted = e.met.runsStarted
	m.RunsFinished = e.met.runsFinished
	m.RunsTruncated = e.met.runsTruncated
	m.RunsFailed = e.met.runsFailed
	m.WarmSeeded = e.met.warmSeeded
	m.Evaluations = e.met.evaluations
	m.UpdatesApplied = e.met.updatesApplied
	m.UpdateOps = e.met.updateOps
	m.UpdatesFailed = e.met.updatesFailed
	m.PartitionsPatched = e.met.partitionsPatched
	m.PartitionsKept = e.met.partitionsKept
	m.PartitionsDropped = e.met.partitionsDropped
	m.CacheHighWaterBytes = e.met.cacheHighWaterBytes
	m.Totals = e.met.totals
	return m
}
