package core

import (
	"strings"
	"testing"

	"discoverxfd/internal/relation"
	"discoverxfd/internal/xmlgen"
)

// TestStreamedDiscoveryMatchesInMemory round-trips every generator
// dataset through its XML serialization into the streaming builder
// and requires identical discovery output to the in-memory path.
func TestStreamedDiscoveryMatchesInMemory(t *testing.T) {
	sets := []xmlgen.Dataset{
		xmlgen.Warehouse(xmlgen.DefaultWarehouse()),
		xmlgen.DBLP(xmlgen.DefaultDBLP()),
		xmlgen.PSD(xmlgen.DefaultPSD()),
		xmlgen.Auction(xmlgen.DefaultAuction()),
		xmlgen.Mondial(xmlgen.DefaultMondial()),
		xmlgen.Catalog(xmlgen.DefaultCatalog()),
	}
	for _, ds := range sets {
		mem, err := relation.Build(ds.Tree, ds.Schema, relation.Options{})
		if err != nil {
			t.Fatalf("%s: %v", ds.Name, err)
		}
		str, err := relation.BuildStream(strings.NewReader(ds.Tree.XMLString()), ds.Schema, relation.Options{})
		if err != nil {
			t.Fatalf("%s: stream build: %v", ds.Name, err)
		}
		resMem, err := Discover(mem, Options{PropagatePartial: true})
		if err != nil {
			t.Fatal(err)
		}
		resStr, err := Discover(str, Options{PropagatePartial: true})
		if err != nil {
			t.Fatal(err)
		}
		if got, want := render(resStr), render(resMem); got != want {
			t.Errorf("%s: streamed discovery differs\n--- in-memory ---\n%s\n--- streamed ---\n%s", ds.Name, want, got)
		}
	}
}
