package core

import (
	"testing"

	"discoverxfd/internal/relation"
	"discoverxfd/internal/xmlgen"
)

// TestDiscoveryDeterministic runs discovery repeatedly (serial and
// parallel) and requires byte-identical rendered output: map
// iteration order inside the engine must never leak into results.
func TestDiscoveryDeterministic(t *testing.T) {
	ds := xmlgen.PSD(xmlgen.DefaultPSD())
	h, err := relation.Build(ds.Tree, ds.Schema, relation.Options{})
	if err != nil {
		t.Fatal(err)
	}
	var first string
	for i := 0; i < 4; i++ {
		opts := Options{PropagatePartial: true, ApproxError: 0.05, Parallel: i%2 == 1}
		res, err := Discover(h, opts)
		if err != nil {
			t.Fatal(err)
		}
		out := render(res)
		if i == 0 {
			first = out
			continue
		}
		if out != first {
			t.Fatalf("run %d (parallel=%v) differs:\n--- first ---\n%s\n--- now ---\n%s",
				i, opts.Parallel, first, out)
		}
	}
}

// TestApproxOrderDeterministic locks in the canonical emission order
// of the approximate pass: discoverApprox walks the partition cache
// in sorted attribute-set order, so the rendered output (including
// the ApproxFDs section) must be byte-identical across every knob
// that could plausibly reorder it — worker count, cache eviction
// pressure, and the naive baseline engine.
func TestApproxOrderDeterministic(t *testing.T) {
	ds := xmlgen.PSD(xmlgen.DefaultPSD())
	h, err := relation.Build(ds.Tree, ds.Schema, relation.Options{})
	if err != nil {
		t.Fatal(err)
	}
	cases := []Options{
		{PropagatePartial: true, ApproxError: 0.05},
		{PropagatePartial: true, ApproxError: 0.05, Parallel: true},
		{PropagatePartial: true, ApproxError: 0.05, MaxPartitionBytes: 1 << 12},
		{PropagatePartial: true, ApproxError: 0.05, Parallel: true, MaxPartitionBytes: 1 << 12},
		{PropagatePartial: true, ApproxError: 0.05, NaivePartitions: true},
	}
	var first string
	for i, opts := range cases {
		res, err := Discover(h, opts)
		if err != nil {
			t.Fatal(err)
		}
		if len(res.ApproxFDs) == 0 {
			t.Fatalf("case %d: expected approximate FDs from the PSD dataset", i)
		}
		out := render(res)
		if i == 0 {
			first = out
			continue
		}
		if out != first {
			t.Fatalf("case %d (%+v) differs:\n--- first ---\n%s\n--- now ---\n%s", i, opts, first, out)
		}
	}
}

// TestRebuildDeterministic checks that rebuilding the hierarchy from
// the same document yields the same discovery output (encoder interning
// order must not leak).
func TestRebuildDeterministic(t *testing.T) {
	ds := xmlgen.Warehouse(xmlgen.DefaultWarehouse())
	var first string
	for i := 0; i < 3; i++ {
		h, err := relation.Build(ds.Tree, ds.Schema, relation.Options{})
		if err != nil {
			t.Fatal(err)
		}
		res, err := Discover(h, Options{PropagatePartial: true})
		if err != nil {
			t.Fatal(err)
		}
		out := render(res)
		if i == 0 {
			first = out
		} else if out != first {
			t.Fatalf("rebuild %d differs", i)
		}
	}
}
