package core

import (
	"context"
	"fmt"
	"math/rand"
	"reflect"
	"strconv"
	"sync"
	"testing"

	"discoverxfd/internal/datatree"
	"discoverxfd/internal/relation"
	"discoverxfd/internal/schema"
	"discoverxfd/internal/trace"
)

// buildWarehouseTree is buildWarehouse keeping the tree, which the
// differential tests rebuild cold after mutations.
func buildWarehouseTree(t *testing.T, opts relation.Options) (*relation.Hierarchy, *datatree.Tree) {
	t.Helper()
	tree, err := datatree.ParseXMLString(warehouseXML)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	s, err := datatree.InferSchema(tree)
	if err != nil {
		t.Fatalf("infer: %v", err)
	}
	h, err := relation.Build(tree, s, opts)
	if err != nil {
		t.Fatalf("build: %v", err)
	}
	return h, tree
}

// requireSameResult compares two discovery results up to Stats (cache
// counters legitimately differ warm vs cold).
func requireSameResult(t *testing.T, label string, got, want *Result) {
	t.Helper()
	if !reflect.DeepEqual(fdStrings(got), fdStrings(want)) {
		t.Fatalf("%s: FDs differ:\ngot  %v\nwant %v", label, fdStrings(got), fdStrings(want))
	}
	if !reflect.DeepEqual(keyStrings(got), keyStrings(want)) {
		t.Fatalf("%s: keys differ:\ngot  %v\nwant %v", label, keyStrings(got), keyStrings(want))
	}
	if !reflect.DeepEqual(got.Redundancies, want.Redundancies) {
		t.Fatalf("%s: redundancies differ:\ngot  %v\nwant %v", label, got.Redundancies, want.Redundancies)
	}
}

// TestApplyUpdateIncrementalMatchesCold pins the tentpole contract:
// discovery after ApplyUpdate equals a cold run over a fresh build of
// the mutated document, while reusing warm partitions (the patched
// entry survives, so the incremental run misses less than a cold one).
func TestApplyUpdateIncrementalMatchesCold(t *testing.T) {
	h, tree := buildWarehouseTree(t, relation.Options{})
	eng := NewEngine(Options{PropagatePartial: true})
	if _, err := eng.Discover(context.Background(), h); err != nil {
		t.Fatal(err)
	}

	books := h.ByPivot("/warehouse/state/store/book")
	stores := h.ByPivot("/warehouse/state/store")
	cs, err := eng.ApplyUpdate(h, []relation.Update{
		{Op: relation.OpSet, Class: books.Pivot, Key: books.Keys[0], Attr: "./price", Value: "55"},
		{Op: relation.OpInsert, Class: books.Pivot, Parent: stores.Keys[0],
			Values: map[schema.RelPath]string{"./ISBN": "555", "./title": "New", "./price": "70"}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if cs.Ops() != 2 {
		t.Fatalf("changeset ops = %d, want 2", cs.Ops())
	}

	warm, err := eng.Discover(context.Background(), h)
	if err != nil {
		t.Fatal(err)
	}
	coldH, err := relation.Build(tree, h.Schema, relation.Options{})
	if err != nil {
		t.Fatal(err)
	}
	cold, err := NewEngine(Options{PropagatePartial: true}).Discover(context.Background(), coldH)
	if err != nil {
		t.Fatal(err)
	}
	requireSameResult(t, "after update", warm, cold)
	if warm.Stats.PartitionCacheMisses >= cold.Stats.PartitionCacheMisses {
		t.Errorf("incremental run should start warm: %d misses vs cold %d",
			warm.Stats.PartitionCacheMisses, cold.Stats.PartitionCacheMisses)
	}
	m := eng.Metrics()
	if m.UpdatesApplied != 1 || m.UpdateOps != 2 {
		t.Errorf("metrics: applied=%d ops=%d, want 1/2", m.UpdatesApplied, m.UpdateOps)
	}
	if m.PartitionsPatched == 0 || m.PartitionsKept == 0 {
		t.Errorf("metrics: patched=%d kept=%d, want both > 0", m.PartitionsPatched, m.PartitionsKept)
	}
}

// TestApplyUpdateRandomizedDifferential drives random update batches
// through a shared engine, comparing every post-update discovery to a
// cold engine over a cold rebuild of the mutated tree.
func TestApplyUpdateRandomizedDifferential(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 8; trial++ {
		h, tree := buildWarehouseTree(t, relation.Options{})
		eng := NewEngine(Options{PropagatePartial: true})
		if _, err := eng.Discover(context.Background(), h); err != nil {
			t.Fatal(err)
		}
		for batch := 0; batch < 4; batch++ {
			ops := randomWarehouseOps(rng, h)
			if len(ops) == 0 {
				continue
			}
			if _, err := eng.ApplyUpdate(h, ops); err != nil {
				t.Fatalf("trial %d batch %d: apply: %v", trial, batch, err)
			}
			warm, err := eng.Discover(context.Background(), h)
			if err != nil {
				t.Fatal(err)
			}
			coldH, err := relation.Build(tree, h.Schema, relation.Options{})
			if err != nil {
				t.Fatal(err)
			}
			cold, err := NewEngine(Options{PropagatePartial: true}).Discover(context.Background(), coldH)
			if err != nil {
				t.Fatal(err)
			}
			requireSameResult(t, fmt.Sprintf("trial %d batch %d", trial, batch), warm, cold)
		}
	}
}

// randomLeafValue emits a value conforming to the attribute's
// declared simple type: Apply validates writes the way cold builds
// validate documents, so Int-typed leaves must get ints.
func randomLeafValue(rng *rand.Rand, h *relation.Hierarchy, a relation.Attr) string {
	if h.Schema != nil {
		if el, err := h.Schema.Resolve(a.Path); err == nil && el.Payload != nil {
			switch el.Payload.Kind {
			case schema.Int:
				return strconv.Itoa(rng.Intn(200))
			case schema.Float:
				return fmt.Sprintf("%d.%d", rng.Intn(20), rng.Intn(10))
			}
		}
	}
	return fmt.Sprintf("u%d", rng.Intn(4))
}

// randomWarehouseOps emits a small batch of valid random updates (a
// delete, whose cascade could invalidate later targets, ends the
// batch).
func randomWarehouseOps(rng *rand.Rand, h *relation.Hierarchy) []relation.Update {
	var essential []*relation.Relation
	for _, r := range h.Relations {
		if r.Essential {
			essential = append(essential, r)
		}
	}
	var ops []relation.Update
	used := make(map[int]bool)
	for tries := 0; len(ops) < 1+rng.Intn(3) && tries < 20; tries++ {
		r := essential[rng.Intn(len(essential))]
		switch rng.Intn(4) {
		case 0, 1: // set
			var leaves []relation.Attr
			for _, a := range r.Attrs {
				if a.Kind == relation.Leaf {
					leaves = append(leaves, a)
				}
			}
			if r.NRows() == 0 || len(leaves) == 0 {
				continue
			}
			key := r.Keys[rng.Intn(r.NRows())]
			if used[key] {
				continue
			}
			used[key] = true
			a := leaves[rng.Intn(len(leaves))]
			ops = append(ops, relation.Update{Op: relation.OpSet, Class: r.Pivot, Key: key,
				Attr: a.Rel, Value: randomLeafValue(rng, h, a)})
		case 2: // insert
			parent := 0
			if r.Parent.Essential {
				if r.Parent.NRows() == 0 {
					continue
				}
				parent = r.Parent.Keys[rng.Intn(r.Parent.NRows())]
				if used[parent] {
					continue
				}
			}
			vals := make(map[schema.RelPath]string)
			for _, a := range r.Attrs {
				if a.Kind == relation.Leaf && rng.Intn(2) == 0 {
					vals[a.Rel] = randomLeafValue(rng, h, a)
				}
			}
			ops = append(ops, relation.Update{Op: relation.OpInsert, Class: r.Pivot, Parent: parent, Values: vals})
		default: // delete ends the batch
			if r.NRows() == 0 {
				continue
			}
			key := r.Keys[rng.Intn(r.NRows())]
			if used[key] {
				continue
			}
			ops = append(ops, relation.Update{Op: relation.OpDelete, Class: r.Pivot, Key: key})
			return ops
		}
	}
	return ops
}

// TestApplyUpdateConcurrentWithDiscover exercises the locking
// contract under the race detector: discoveries and updates running
// concurrently must serialize without torn reads, and every discovery
// must match a cold run over the document state it observed. (The
// cold comparison is omitted here — states are racing by design —
// the differential tests above pin correctness; this test pins memory
// safety.)
func TestApplyUpdateConcurrentWithDiscover(t *testing.T) {
	h, _ := buildWarehouseTree(t, relation.Options{})
	eng := NewEngine(Options{PropagatePartial: true})
	books := h.ByPivot("/warehouse/state/store/book")
	if _, err := eng.Discover(context.Background(), h); err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for g := 0; g < 3; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 5; i++ {
				if _, err := eng.Discover(context.Background(), h); err != nil {
					t.Errorf("discover: %v", err)
					return
				}
			}
		}()
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 10; i++ {
			// Addressing under the writer lock: Keys may move between
			// Apply batches, so look the key up inside ApplyUpdate's
			// lock via a fresh read each iteration. Using row 0's key
			// read without the lock would race; take RLock explicitly.
			h.RLock()
			key := books.Keys[0]
			h.RUnlock()
			if _, err := eng.ApplyUpdate(h, []relation.Update{
				{Op: relation.OpSet, Class: books.Pivot, Key: key, Attr: "./price", Value: fmt.Sprintf("%d", 100+i)},
			}); err != nil {
				t.Errorf("apply: %v", err)
				return
			}
		}
	}()
	wg.Wait()
}

// TestApplyUpdateFailedBatchDropsWarm pins the failure contract: a
// rejected batch may leave earlier ops applied, so the engine must
// drop the hierarchy's warm entry rather than serve stale partitions.
func TestApplyUpdateFailedBatchDropsWarm(t *testing.T) {
	h, _ := buildWarehouseTree(t, relation.Options{})
	eng := NewEngine(Options{})
	books := h.ByPivot("/warehouse/state/store/book")
	if _, err := eng.Discover(context.Background(), h); err != nil {
		t.Fatal(err)
	}
	if w, _ := eng.warmFor(h); w == nil {
		t.Fatal("no warm entry after discovery")
	}
	_, err := eng.ApplyUpdate(h, []relation.Update{
		{Op: relation.OpSet, Class: books.Pivot, Key: books.Keys[0], Attr: "./price", Value: "1"},
		{Op: relation.OpSet, Class: books.Pivot, Key: 99999, Attr: "./price", Value: "2"},
	})
	if err == nil {
		t.Fatal("batch with a bad key succeeded")
	}
	if w, _ := eng.warmFor(h); w != nil {
		t.Fatal("warm entry survived a failed batch")
	}
	if m := eng.Metrics(); m.UpdatesFailed != 1 {
		t.Fatalf("UpdatesFailed = %d, want 1", m.UpdatesFailed)
	}
}

// captureTracer retains emitted events (copied, per the Tracer
// contract).
type captureTracer struct {
	mu  sync.Mutex
	evs []trace.Event
}

func (c *captureTracer) Emit(ev *trace.Event) {
	c.mu.Lock()
	c.evs = append(c.evs, *ev)
	c.mu.Unlock()
}

// TestApplyUpdateTraceEvents pins the update span schema: one
// update_apply event per batch, preceded by a partition_patch event
// per warm relation rewritten, with dirty counts populated.
func TestApplyUpdateTraceEvents(t *testing.T) {
	h, _ := buildWarehouseTree(t, relation.Options{})
	tr := &captureTracer{}
	eng := NewEngine(Options{Tracer: tr})
	books := h.ByPivot("/warehouse/state/store/book")
	if _, err := eng.Discover(context.Background(), h); err != nil {
		t.Fatal(err)
	}
	tr.mu.Lock()
	tr.evs = nil
	tr.mu.Unlock()
	if _, err := eng.ApplyUpdate(h, []relation.Update{
		{Op: relation.OpSet, Class: books.Pivot, Key: books.Keys[0], Attr: "./price", Value: "99"},
	}); err != nil {
		t.Fatal(err)
	}
	var applies, patches int
	for _, ev := range tr.evs {
		switch ev.Kind {
		case trace.KindUpdateApply:
			applies++
			if ev.Ops != 1 || ev.Relations == 0 {
				t.Errorf("update_apply event: ops=%d relations=%d", ev.Ops, ev.Relations)
			}
		case trace.KindPartitionPatch:
			patches++
			if ev.Relation == "" || ev.Kept+ev.Patched+ev.Dropped == 0 {
				t.Errorf("partition_patch event missing counts: %+v", ev)
			}
		}
	}
	if applies != 1 {
		t.Fatalf("update_apply events = %d, want 1", applies)
	}
	if patches == 0 {
		t.Fatal("no partition_patch events for a warm hierarchy")
	}
}

// forestXML is a two-table document whose tables share no data: a
// localized update to one table leaves the other's whole subtree
// cone-clean, so the next run replays it from the subtree memo.
const forestXML = `<forest>
  <t1>
    <row><a>x1</a><b>y1</b></row>
    <row><a>x2</a><b>y2</b></row>
    <row><a>x1</a><b>y1</b></row>
    <row><a>x3</a><b>y3</b></row>
  </t1>
  <t2>
    <row><c>p1</c><d>q1</d></row>
    <row><c>p2</c><d>q2</d></row>
    <row><c>p1</c><d>q1</d></row>
    <row><c>p3</c><d>q3</d></row>
  </t2>
</forest>`

// TestSubtreeReuseAfterUpdate pins the dirty-region contract of the
// subtree memo: after a value update confined to one table, discovery
// re-traverses only that table's relation, replays every untouched
// sibling subtree, and still returns exactly the cold-run result.
func TestSubtreeReuseAfterUpdate(t *testing.T) {
	tree, err := datatree.ParseXMLString(forestXML)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	s, err := datatree.InferSchema(tree)
	if err != nil {
		t.Fatalf("infer: %v", err)
	}
	h, err := relation.Build(tree, s, relation.Options{})
	if err != nil {
		t.Fatalf("build: %v", err)
	}
	eng := NewEngine(Options{PropagatePartial: true})
	cold, err := eng.Discover(context.Background(), h)
	if err != nil {
		t.Fatal(err)
	}
	if cold.Stats.RelationsReused != 0 {
		t.Fatalf("cold run reused %d relations", cold.Stats.RelationsReused)
	}

	t1 := h.ByPivot("/forest/t1/row")
	if _, err := eng.ApplyUpdate(h, []relation.Update{
		{Op: relation.OpSet, Class: t1.Pivot, Key: t1.Keys[1], Attr: "./a", Value: "x1"},
	}); err != nil {
		t.Fatal(err)
	}
	incr, err := eng.Discover(context.Background(), h)
	if err != nil {
		t.Fatal(err)
	}
	if incr.Stats.Relations != cold.Stats.Relations {
		t.Fatalf("incremental run covered %d relations, cold %d", incr.Stats.Relations, cold.Stats.Relations)
	}
	if got, want := incr.Stats.RelationsReused, cold.Stats.Relations-1; got != want {
		t.Errorf("RelationsReused = %d, want %d (all but the mutated table)", got, want)
	}
	if incr.Stats.NodesVisited == 0 {
		t.Error("mutated table's lattice was not re-traversed")
	}

	h2, err := relation.Build(tree, s, relation.Options{})
	if err != nil {
		t.Fatalf("cold rebuild: %v", err)
	}
	fresh, err := Discover(h2, Options{PropagatePartial: true})
	if err != nil {
		t.Fatal(err)
	}
	requireSameResult(t, "incremental vs cold", incr, fresh)

	// A repeat with no intervening update replays everything.
	again, err := eng.Discover(context.Background(), h)
	if err != nil {
		t.Fatal(err)
	}
	if again.Stats.RelationsReused != cold.Stats.Relations || again.Stats.NodesVisited != 0 {
		t.Errorf("idle repeat: reused %d relations, visited %d nodes; want %d and 0",
			again.Stats.RelationsReused, again.Stats.NodesVisited, cold.Stats.Relations)
	}
	requireSameResult(t, "idle repeat vs cold", again, fresh)
}
