package core

import (
	"slices"

	"discoverxfd/internal/partition"
)

// Approximate XML FDs (extension; TANE's g3 measure lifted to tuple
// classes). An FD holds approximately with error e when removing an
// e-fraction of the class's tuples makes it hold exactly. Casually
// designed data — the paper's motivating scenario — is frequently
// dirty, and a constraint violated by a handful of typos still
// indicates redundancy worth refining; Options.ApproxError turns on
// their discovery alongside the exact ones.
//
// Approximate discovery is intra-relation: partition targets carry
// hard inequalities, which have no natural weighted analogue, so
// approximate inter-relation FDs are out of scope (as they are in
// TANE itself, which is single-relation).

// g3Error computes the minimum number of tuples that must be removed
// from the relation so that LHS → rhs holds exactly: for each Π_LHS
// group, all but the largest Π_{LHS∪rhs} subgroup must go.
// allIDs are the group ids of Π_{LHS∪rhs}; stripped singletons are
// their own subgroups of size one.
//
// This is the map-based variant the naive engine keeps as the
// pre-fast-path baseline; the fast engine uses g3ErrorDense, which
// exploits the density of group ids. The differential test pins both
// to the same approximate-FD output.
func g3Error(plhs *partition.Partition, allIDs []int32) int {
	removals := 0
	counts := make(map[int32]int)
	for _, g := range plhs.Groups {
		clear(counts)
		max := 1 // a stripped singleton subgroup always exists as a floor
		for _, t := range g {
			id := allIDs[t]
			if id < 0 {
				continue // its own subgroup of size one
			}
			counts[id]++
			if counts[id] > max {
				max = counts[id]
			}
		}
		removals += len(g) - max
	}
	return removals
}

// g3ErrorDense is g3Error on a dense counts buffer instead of a map:
// group ids of Π_{LHS∪rhs} are dense in [0, |Π_{LHS∪rhs}|), so
// subgroup sizes live in a slice indexed by id, reset by a second
// sweep of the same rows. counts must have len ≥ the number of groups
// behind allIDs and be all-zero; it is returned all-zero. O(‖Π_LHS‖)
// per call with no per-group allocation — the approximate pass is the
// hottest consumer of cached partitions, and this removes the map
// hashing that dominated its profile.
//
// limit short-circuits the scan: removals only grow, and the caller
// discards any edge over its error budget, so once the running total
// exceeds limit the exact value no longer matters and a value > limit
// is returned immediately (counts are reset group by group, so an
// early return leaves the buffer zeroed). Most candidate edges are
// far over budget, making this the common exit.
func g3ErrorDense(plhs *partition.Partition, allIDs []int32, counts []int32, limit int) int {
	removals := 0
	for _, g := range plhs.Groups {
		max := int32(1) // a stripped singleton subgroup always exists as a floor
		for _, t := range g {
			if id := allIDs[t]; id >= 0 {
				counts[id]++
				if counts[id] > max {
					max = counts[id]
				}
			}
		}
		for _, t := range g {
			if id := allIDs[t]; id >= 0 {
				counts[id] = 0
			}
		}
		removals += len(g) - int(max)
		if removals > limit {
			return removals
		}
	}
	return removals
}

// discoverApprox scans the failed edges of a finished lattice run and
// collects the approximate FDs within the error budget. It reuses the
// cached partitions; edges pruned by rule 1 against *exact* FDs are
// implied approximately as well (weakening the LHS can only lower the
// error), so the traversal's candidate structure carries over.
func (lr *latticeRun) discoverApprox(maxErr float64) []FD {
	if maxErr <= 0 {
		return nil
	}
	n := lr.rel.NRows()
	if n < 2 {
		return nil
	}
	budget := int(maxErr * float64(n))
	if budget < 1 {
		return nil
	}
	exact := make(map[edge]bool, len(lr.fds))
	for _, e := range lr.fds {
		exact[e] = true
	}
	var out []FD
	var counts []int32 // g3ErrorDense buffer, grown to the largest group count
	seen := make(map[edge]bool)
	// Walk the cached attribute sets in canonical order: the edges are
	// deduplicated by `seen`, so iteration order decides which FDs this
	// relation emits first — map order here would leak into the
	// pre-sort Result assembly and the golden reports.
	cached := make([]AttrSet, 0, len(lr.pc.parts))
	for a := range lr.pc.parts {
		cached = append(cached, a)
	}
	slices.Sort(cached)
	for _, a := range cached {
		if a == 0 {
			continue
		}
		pa := lr.pc.parts[a]
		for _, i := range a.Attrs() {
			al := a.Without(i)
			pal, ok := lr.pc.parts[al]
			if !ok {
				continue
			}
			e := edge{lhs: al, rhs: i}
			if exact[e] || seen[e] {
				continue
			}
			seen[e] = true
			if pal.Error() == pa.Error() {
				continue // exact (found via another traversal path)
			}
			var removals int
			if lr.opts.NaivePartitions {
				removals = g3Error(pal, lr.groupIDs(a))
			} else {
				if len(pa.Groups) > len(counts) {
					counts = make([]int32, len(pa.Groups))
				}
				removals = g3ErrorDense(pal, lr.groupIDs(a), counts, budget)
			}
			if removals <= budget {
				fd := intraFD(lr.rel, e)
				fd.Approximate = true
				fd.Error = float64(removals) / float64(n)
				out = append(out, fd)
			}
		}
	}
	return out
}
