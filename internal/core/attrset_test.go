package core

import (
	"testing"
	"testing/quick"

	"discoverxfd/internal/schema"
)

func TestAttrSetBasics(t *testing.T) {
	var s AttrSet
	if s.Size() != 0 || s.MaxBit() != -1 || len(s.Attrs()) != 0 {
		t.Fatal("empty set wrong")
	}
	s = s.Add(3).Add(0).Add(7)
	if !s.Has(3) || !s.Has(0) || !s.Has(7) || s.Has(1) {
		t.Fatal("Has wrong")
	}
	if s.Size() != 3 || s.MaxBit() != 7 {
		t.Fatalf("Size=%d MaxBit=%d", s.Size(), s.MaxBit())
	}
	got := s.Attrs()
	want := []int{0, 3, 7}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Attrs = %v", got)
		}
	}
	s2 := s.Without(3)
	if s2.Has(3) || !s2.Has(0) {
		t.Fatal("Without wrong")
	}
	if !s.Contains(s2) || s2.Contains(s) {
		t.Fatal("Contains wrong")
	}
	if !s.Contains(s) || !s.Contains(0) {
		t.Fatal("Contains edge cases wrong")
	}
}

func TestAttrSetQuick(t *testing.T) {
	f := func(raw uint64, i uint8) bool {
		s := AttrSet(raw)
		b := int(i % 64)
		added := s.Add(b)
		if !added.Has(b) || added.Without(b).Has(b) {
			return false
		}
		if added.Size() < s.Size() || added.Size() > s.Size()+1 {
			return false
		}
		// Attrs round-trips.
		var back AttrSet
		for _, a := range s.Attrs() {
			back = back.Add(a)
		}
		return back == s
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestFDString(t *testing.T) {
	fd := FD{Class: "/w/s/b", LHS: []schema.RelPath{"./x", "../y"}, RHS: "./z"}
	want := "{./x, ../y} -> ./z w.r.t. C(/w/s/b)"
	if fd.String() != want {
		t.Fatalf("FD.String = %q, want %q", fd.String(), want)
	}
	k := Key{Class: "/w/s", LHS: []schema.RelPath{"./id"}}
	if k.String() != "{./id} KEY of C(/w/s)" {
		t.Fatalf("Key.String = %q", k.String())
	}
}

func TestRelsHelpers(t *testing.T) {
	a := []schema.RelPath{"./x"}
	b := []schema.RelPath{"./x", "./y"}
	if !relsSubset(a, b) || relsSubset(b, a) {
		t.Fatal("relsSubset wrong")
	}
	if relsEqual(a, b) || !relsEqual(b, []schema.RelPath{"./y", "./x"}) {
		t.Fatal("relsEqual wrong")
	}
}

func TestMinimizeFDs(t *testing.T) {
	fds := []FD{
		{Class: "/c", LHS: []schema.RelPath{"./a", "./b"}, RHS: "./z"},
		{Class: "/c", LHS: []schema.RelPath{"./a"}, RHS: "./z"},
		{Class: "/c", LHS: []schema.RelPath{"./a"}, RHS: "./z"}, // duplicate
		{Class: "/c", LHS: []schema.RelPath{"./b"}, RHS: "./y"},
		{Class: "/d", LHS: []schema.RelPath{"./a", "./b"}, RHS: "./z"}, // other class: kept
	}
	out := minimizeFDs(fds)
	if len(out) != 3 {
		t.Fatalf("minimizeFDs kept %d, want 3: %v", len(out), out)
	}
	for _, fd := range out {
		if fd.Class == "/c" && fd.RHS == "./z" && len(fd.LHS) != 1 {
			t.Fatalf("non-minimal FD survived: %v", fd)
		}
	}
}

func TestMinimizeKeys(t *testing.T) {
	keys := []Key{
		{Class: "/c", LHS: []schema.RelPath{"./a", "./b"}},
		{Class: "/c", LHS: []schema.RelPath{"./a"}},
		{Class: "/c", LHS: []schema.RelPath{"./b", "./c"}},
		{Class: "/c", LHS: []schema.RelPath{"./a"}}, // duplicate
	}
	out := minimizeKeys(keys)
	if len(out) != 2 {
		t.Fatalf("minimizeKeys kept %d, want 2: %v", len(out), out)
	}
}

func TestDropSuperkeyLHS(t *testing.T) {
	keys := []Key{{Class: "/c", LHS: []schema.RelPath{"./k"}}}
	fds := []FD{
		{Class: "/c", LHS: []schema.RelPath{"./k", "./x"}, RHS: "./z"}, // superkey LHS
		{Class: "/c", LHS: []schema.RelPath{"./x"}, RHS: "./z"},
		{Class: "/d", LHS: []schema.RelPath{"./k"}, RHS: "./z"}, // other class
	}
	out := dropSuperkeyLHS(fds, keys)
	if len(out) != 2 {
		t.Fatalf("dropSuperkeyLHS kept %d, want 2: %v", len(out), out)
	}
}

func TestLiftRelPath(t *testing.T) {
	cases := []struct {
		in   schema.RelPath
		ups  int
		want schema.RelPath
	}{
		{"./x/y", 0, "./x/y"},
		{"./x", 1, "../x"},
		{"./x", 2, "../../x"},
		{".", 1, ".."},
		{".", 3, "../../.."},
	}
	for _, c := range cases {
		if got := liftRelPath(c.in, c.ups); got != c.want {
			t.Errorf("liftRelPath(%q,%d) = %q, want %q", c.in, c.ups, got, c.want)
		}
	}
}
