package core

import (
	"context"
	"sort"

	"discoverxfd/internal/relation"
	"discoverxfd/internal/schema"
)

// mergeStats accumulates per-subtree instrumentation. WallTime is
// deliberately not merged: it is a run-scoped wall-clock measurement
// stamped once at the end of the pipeline, not a summable per-subtree
// quantity (summing it across parallel subtrees would recreate the
// double-counting the Stats docs rule out).
func mergeStats(dst, src *Stats) {
	dst.Relations += src.Relations
	dst.RelationsReused += src.RelationsReused
	dst.Tuples += src.Tuples
	dst.NodesVisited += src.NodesVisited
	dst.PartitionsComputed += src.PartitionsComputed
	dst.ParallelProducts += src.ParallelProducts
	dst.TargetsCreated += src.TargetsCreated
	dst.TargetsPropagated += src.TargetsPropagated
	dst.TargetsDropped += src.TargetsDropped
	dst.TargetChecks += src.TargetChecks
	dst.IntraTime += src.IntraTime
	dst.InterTime += src.InterTime
}

// Discover runs the DiscoverXFD algorithm (Figure 9) over the
// hierarchical representation of a document: a bottom-up traversal of
// the relation tree that discovers all minimal interesting
// intra-relation and inter-relation XML FDs and Keys, and derives the
// data redundancies they indicate (Definition 11).
//
// Discover and the other package-level wrappers below run one cold
// Run each; callers issuing repeated runs (or concurrent ones) should
// construct an Engine instead and reuse it.
func Discover(h *relation.Hierarchy, opts Options) (*Result, error) {
	return DiscoverContext(context.Background(), h, opts)
}

// DiscoverContext is Discover with cancellation. The context is
// checked periodically in the lattice hot loops; cancellation aborts
// with an error. Budget exhaustion (Options.Deadline,
// Options.MaxLatticeLevel, or a truncated input hierarchy) instead
// degrades gracefully: the partial Result found so far is returned
// with Stats.Truncated set.
func DiscoverContext(ctx context.Context, h *relation.Hierarchy, opts Options) (*Result, error) {
	return NewEngine(opts).Discover(ctx, h)
}

// DiscoverIntra runs DiscoverFD (Figure 8) independently on each
// essential relation: only intra-relation FDs and Keys are found.
// This is the restriction the paper uses to contrast against full
// DiscoverXFD (experiment E5).
func DiscoverIntra(h *relation.Hierarchy, opts Options) (*Result, error) {
	return DiscoverIntraContext(context.Background(), h, opts)
}

// DiscoverIntraContext is DiscoverIntra with cancellation (see
// DiscoverContext).
func DiscoverIntraContext(ctx context.Context, h *relation.Hierarchy, opts Options) (*Result, error) {
	return NewEngine(opts).DiscoverIntra(ctx, h)
}

// verifyFD checks one candidate FD for the final Definition 11 filter.
// Intra-relation FDs reuse the run's partition cache (Π_LHS groups are
// exactly the evaluator's non-null LHS-equal groups of size ≥ 2, since
// nulls carry row-unique codes and stripped partitions drop
// singletons); inter-relation FDs — and every FD when the naive
// engine is selected — go through the independent evaluator.
func verifyFD(cache *partitionCache, h *relation.Hierarchy, fd FD, naive bool) (Evaluation, error) {
	if !naive && !fd.Inter {
		origin := h.ByPivot(fd.Class)
		if origin != nil {
			lhsSet := AttrSet(0)
			ok := true
			for _, rp := range fd.LHS {
				r, err := resolveRef(h, origin, rp)
				if err != nil || r.ups != 0 {
					ok = false
					break
				}
				lhsSet = lhsSet.Add(r.attr)
			}
			if ok {
				if r, err := resolveRef(h, origin, fd.RHS); err == nil && r.ups == 0 {
					return evaluateIntraFast(cache, origin, lhsSet, r.attr), nil
				}
			}
		}
	}
	return Evaluate(h, fd.Class, fd.LHS, fd.RHS)
}

// lhsInterner assigns each distinct LHS path of one class a bit
// position, so a (sorted, duplicate-free) LHS list becomes a uint64
// set and subset/equality tests become single mask operations. ok is
// false when a class accumulates more than 64 distinct paths — the
// caller falls back to the string-slice comparisons for that FD's
// goal.
type lhsInterner struct {
	bits map[schema.Path]map[schema.RelPath]int
}

func (in *lhsInterner) mask(f FD) (uint64, bool) {
	m := in.bits[f.Class]
	if m == nil {
		m = make(map[schema.RelPath]int)
		in.bits[f.Class] = m
	}
	var mask uint64
	for _, p := range f.LHS {
		b, seen := m[p]
		if !seen {
			b = len(m)
			m[p] = b
		}
		if b >= 64 {
			return 0, false
		}
		mask |= 1 << uint(b)
	}
	return mask, true
}

// minimizeApprox removes approximate FDs implied by an exact FD or by
// another approximate FD with a subset LHS for the same class and
// RHS, and deduplicates. Candidates are bucketed by (class, RHS) —
// only same-goal FDs can imply each other — and LHS sets are interned
// to bitmasks, so the pairwise scan is mask arithmetic. Low-domain
// corpora produce thousands of approximate FDs, where the original
// all-pairs string-slice scan dominated whole runs.
func minimizeApprox(approx, exact []FD) []FD {
	keyOf := func(f FD) string { return string(f.Class) + "\x00" + string(f.RHS) }
	in := &lhsInterner{bits: make(map[schema.Path]map[schema.RelPath]int)}
	wide := make(map[string]bool) // goals with an FD past the 64-path intern limit
	exactByGoal := make(map[string][]int)
	exactMask := make([]uint64, len(exact))
	for i, e := range exact {
		goal := keyOf(e)
		exactByGoal[goal] = append(exactByGoal[goal], i)
		m, ok := in.mask(e)
		if !ok {
			wide[goal] = true
		}
		exactMask[i] = m
	}
	approxByGoal := make(map[string][]int)
	approxMask := make([]uint64, len(approx))
	for i, a := range approx {
		goal := keyOf(a)
		approxByGoal[goal] = append(approxByGoal[goal], i)
		m, ok := in.mask(a)
		if !ok {
			wide[goal] = true
		}
		approxMask[i] = m
	}
	// A fresh slice, not approx[:0]: the goal buckets index the input,
	// which must stay intact while it is still being compared against.
	var out []FD
	for i, a := range approx {
		goal := keyOf(a)
		slow := wide[goal]
		implied := false
		for _, ei := range exactByGoal[goal] {
			if slow {
				implied = relsSubset(exact[ei].LHS, a.LHS)
			} else {
				implied = approxMask[i]&exactMask[ei] == exactMask[ei]
			}
			if implied {
				break
			}
		}
		if !implied {
			for _, j := range approxByGoal[goal] {
				if i == j {
					continue
				}
				if !slow {
					if approxMask[j] == approxMask[i] {
						if j < i {
							implied = true
							break
						}
						continue
					}
					if approxMask[i]&approxMask[j] == approxMask[j] {
						implied = true
						break
					}
					continue
				}
				b := approx[j]
				if relsEqual(a.LHS, b.LHS) {
					if j < i {
						implied = true
						break
					}
					continue
				}
				if relsSubset(b.LHS, a.LHS) {
					implied = true
					break
				}
			}
		}
		if !implied {
			out = append(out, a)
		}
	}
	return out
}

// dropSuperkeyLHS removes FDs whose LHS contains a discovered key of
// the same class: a superkey LHS satisfies any FD trivially and
// indicates no redundancy (Definition 11).
func dropSuperkeyLHS(fds []FD, keys []Key) []FD {
	out := fds[:0]
	for _, fd := range fds {
		super := false
		for _, k := range keys {
			if k.Class == fd.Class && relsSubset(k.LHS, fd.LHS) {
				super = true
				break
			}
		}
		if !super {
			out = append(out, fd)
		}
	}
	return out
}

func sortRedundancies(rs []Redundancy) {
	lhs := make([]string, len(rs))
	for i := range rs {
		lhs[i] = joinRels(rs[i].FD.LHS)
	}
	sort.Sort(&redundancySorter{rs: rs, lhs: lhs})
}

// redundancySorter orders redundancies by (class, RHS, joined LHS)
// with the joined-LHS key computed once per element; joining inside
// the comparator allocated O(n log n) strings, which dominated result
// assembly on low-domain corpora with thousands of approximate FDs
// (the same precomputation backs fdSorter).
type redundancySorter struct {
	rs  []Redundancy
	lhs []string
}

func (s *redundancySorter) Len() int { return len(s.rs) }
func (s *redundancySorter) Swap(i, j int) {
	s.rs[i], s.rs[j] = s.rs[j], s.rs[i]
	s.lhs[i], s.lhs[j] = s.lhs[j], s.lhs[i]
}
func (s *redundancySorter) Less(i, j int) bool {
	a, b := s.rs[i].FD, s.rs[j].FD
	if a.Class != b.Class {
		return a.Class < b.Class
	}
	if a.RHS != b.RHS {
		return a.RHS < b.RHS
	}
	return s.lhs[i] < s.lhs[j]
}

func intraFD(r *relation.Relation, e edge) FD {
	lhs := make([]schema.RelPath, 0, e.lhs.Size())
	for _, i := range e.lhs.Attrs() {
		lhs = append(lhs, r.Attrs[i].Rel)
	}
	sortRels(lhs)
	return FD{Class: r.Pivot, LHS: lhs, RHS: r.Attrs[e.rhs].Rel}
}

func intraKey(r *relation.Relation, k AttrSet) Key {
	lhs := make([]schema.RelPath, 0, k.Size())
	for _, i := range k.Attrs() {
		lhs = append(lhs, r.Attrs[i].Rel)
	}
	sortRels(lhs)
	return Key{Class: r.Pivot, LHS: lhs}
}

// minimizeFDs removes duplicates and FDs whose LHS strictly contains
// another FD's LHS for the same class and RHS. Partial-propagation
// targets can produce such non-minimal variants when several
// absorption orders reach the same conclusion.
func minimizeFDs(fds []FD) []FD {
	byGoal := make(map[string][]int)
	keyOf := func(f FD) string { return string(f.Class) + "\x00" + string(f.RHS) }
	for i, f := range fds {
		byGoal[keyOf(f)] = append(byGoal[keyOf(f)], i)
	}
	keep := make([]bool, len(fds))
	//lint:detorder groups write disjoint keep indices and out iterates fds in slice order, so group visit order cannot reach the output
	for _, idxs := range byGoal {
		for _, i := range idxs {
			keep[i] = true
			for _, j := range idxs {
				if i == j || !keep[i] {
					continue
				}
				if relsEqual(fds[j].LHS, fds[i].LHS) {
					// Duplicate: keep the first occurrence only.
					if j < i {
						keep[i] = false
					}
					continue
				}
				if relsSubset(fds[j].LHS, fds[i].LHS) {
					keep[i] = false
				}
			}
		}
	}
	var out []FD
	for i, f := range fds {
		if keep[i] {
			out = append(out, f)
		}
	}
	return out
}

// minimizeKeys removes duplicates and keys whose LHS strictly
// contains another key's LHS for the same class.
func minimizeKeys(keys []Key) []Key {
	byClass := make(map[schema.Path][]int)
	for i, k := range keys {
		byClass[k.Class] = append(byClass[k.Class], i)
	}
	keep := make([]bool, len(keys))
	//lint:detorder groups write disjoint keep indices and out iterates keys in slice order, so group visit order cannot reach the output
	for _, idxs := range byClass {
		for _, i := range idxs {
			keep[i] = true
			for _, j := range idxs {
				if i == j || !keep[i] {
					continue
				}
				if relsEqual(keys[j].LHS, keys[i].LHS) {
					if j < i {
						keep[i] = false
					}
					continue
				}
				if relsSubset(keys[j].LHS, keys[i].LHS) {
					keep[i] = false
				}
			}
		}
	}
	var out []Key
	for i, k := range keys {
		if keep[i] {
			out = append(out, k)
		}
	}
	return out
}

func sortFDs(fds []FD) {
	lhs := make([]string, len(fds))
	for i := range fds {
		lhs[i] = joinRels(fds[i].LHS)
	}
	sort.Sort(&fdSorter{fds: fds, lhs: lhs})
}

// fdSorter: see redundancySorter for why the LHS key is precomputed.
type fdSorter struct {
	fds []FD
	lhs []string
}

func (s *fdSorter) Len() int { return len(s.fds) }
func (s *fdSorter) Swap(i, j int) {
	s.fds[i], s.fds[j] = s.fds[j], s.fds[i]
	s.lhs[i], s.lhs[j] = s.lhs[j], s.lhs[i]
}
func (s *fdSorter) Less(i, j int) bool {
	if s.fds[i].Class != s.fds[j].Class {
		return s.fds[i].Class < s.fds[j].Class
	}
	if s.fds[i].RHS != s.fds[j].RHS {
		return s.fds[i].RHS < s.fds[j].RHS
	}
	return s.lhs[i] < s.lhs[j]
}

func sortKeys(keys []Key) {
	lhs := make([]string, len(keys))
	for i := range keys {
		lhs[i] = joinRels(keys[i].LHS)
	}
	sort.Sort(&keySorter{keys: keys, lhs: lhs})
}

// keySorter: see redundancySorter for why the LHS key is precomputed.
type keySorter struct {
	keys []Key
	lhs  []string
}

func (s *keySorter) Len() int { return len(s.keys) }
func (s *keySorter) Swap(i, j int) {
	s.keys[i], s.keys[j] = s.keys[j], s.keys[i]
	s.lhs[i], s.lhs[j] = s.lhs[j], s.lhs[i]
}
func (s *keySorter) Less(i, j int) bool {
	if s.keys[i].Class != s.keys[j].Class {
		return s.keys[i].Class < s.keys[j].Class
	}
	return s.lhs[i] < s.lhs[j]
}
