package core

import (
	"context"
	"fmt"
	"runtime/debug"
	"sort"

	"discoverxfd/internal/relation"
	"discoverxfd/internal/schema"
)

// mergeStats accumulates per-subtree instrumentation.
func mergeStats(dst, src *Stats) {
	dst.Relations += src.Relations
	dst.Tuples += src.Tuples
	dst.NodesVisited += src.NodesVisited
	dst.PartitionsComputed += src.PartitionsComputed
	dst.ParallelProducts += src.ParallelProducts
	dst.TargetsCreated += src.TargetsCreated
	dst.TargetsPropagated += src.TargetsPropagated
	dst.TargetsDropped += src.TargetsDropped
	dst.TargetChecks += src.TargetChecks
	dst.IntraTime += src.IntraTime
	dst.InterTime += src.InterTime
}

// Discover runs the DiscoverXFD algorithm (Figure 9) over the
// hierarchical representation of a document: a bottom-up traversal of
// the relation tree that discovers all minimal interesting
// intra-relation and inter-relation XML FDs and Keys, and derives the
// data redundancies they indicate (Definition 11).
func Discover(h *relation.Hierarchy, opts Options) (*Result, error) {
	return DiscoverContext(context.Background(), h, opts)
}

// DiscoverContext is Discover with cancellation. The context is
// checked periodically in the lattice hot loops; cancellation aborts
// with an error. Budget exhaustion (Options.Deadline,
// Options.MaxLatticeLevel, or a truncated input hierarchy) instead
// degrades gracefully: the partial Result found so far is returned
// with Stats.Truncated set.
func DiscoverContext(ctx context.Context, h *relation.Hierarchy, opts Options) (*Result, error) {
	return discover(ctx, h, opts, true)
}

// DiscoverIntra runs DiscoverFD (Figure 8) independently on each
// essential relation: only intra-relation FDs and Keys are found.
// This is the restriction the paper uses to contrast against full
// DiscoverXFD (experiment E5).
func DiscoverIntra(h *relation.Hierarchy, opts Options) (*Result, error) {
	return DiscoverIntraContext(context.Background(), h, opts)
}

// DiscoverIntraContext is DiscoverIntra with cancellation (see
// DiscoverContext).
func DiscoverIntraContext(ctx context.Context, h *relation.Hierarchy, opts Options) (*Result, error) {
	opts.NoInterRelation = true
	return discover(ctx, h, opts, false)
}

func discover(ctx context.Context, h *relation.Hierarchy, opts Options, xfd bool) (res *Result, err error) {
	// Last-resort containment: any panic that escapes the traversal —
	// from the serial path or from result assembly — surfaces as an
	// error to the caller instead of killing the process. Parallel
	// workers additionally recover per goroutine (workerGroup's panic
	// barrier), which is what keeps a worker panic from unwinding past
	// the group's join.
	defer func() {
		if p := recover(); p != nil {
			res, err = nil, fmt.Errorf("core: panic during discovery: %v\n%s", p, debug.Stack())
		}
	}()
	for _, r := range h.Relations {
		if err := checkWidth(r); err != nil {
			return nil, err
		}
	}
	gov := newGovernor(ctx, &opts)
	if h.Truncated {
		gov.truncate(h.TruncatedReason)
	}
	// One partition cache spans the whole run: the bottom-up traversal,
	// the approximate pass, and the final FD verification all draw from
	// it (see pcache.go for the concurrency and memory contracts).
	cache := newPartitionCache(opts.MaxPartitionBytes)
	res = &Result{}
	depths := relationDepths(h)
	anyNull := computeAnyNullRows(h)
	nullsAtOrAbove := make(map[*relation.Relation]bool, len(h.Relations))
	for _, r := range h.Relations {
		up := r.Parent != nil && nullsAtOrAbove[r.Parent]
		here := false
		for _, b := range anyNull[r] {
			if b {
				here = true
				break
			}
		}
		nullsAtOrAbove[r] = up || here
	}

	// Post-order traversal: children before parents, so targets flow
	// upward (Figure 9 lines 5–6). Each call gathers its subtree's
	// results locally, which makes the parallel mode a pure fan-out:
	// sibling subtrees share nothing until their parent merges them,
	// in child order, so output is independent of scheduling.
	type gathered struct {
		fds    []FD
		keys   []Key
		approx []FD
		stats  Stats
		out    []*target
		err    error // first error in deterministic child order
	}
	merge := func(g *gathered, o *gathered) {
		g.fds = append(g.fds, o.fds...)
		g.keys = append(g.keys, o.keys...)
		g.approx = append(g.approx, o.approx...)
		g.out = append(g.out, o.out...)
		mergeStats(&g.stats, &o.stats)
		if g.err == nil {
			g.err = o.err
		}
	}
	var visit func(r *relation.Relation) gathered
	visit = func(r *relation.Relation) gathered {
		var g gathered
		if err := gov.cancelled(); err != nil {
			g.err = err
			return g
		}
		if opts.Parallel && len(r.Children) > 1 {
			results := make([]gathered, len(r.Children))
			// A worker panic must not unwind past its goroutine's stack
			// (that would kill the process); workerGroup turns it into
			// this subtree's error, joining the others in child order.
			var grp workerGroup
			for i, c := range r.Children {
				grp.Go(fmt.Sprintf("parallel discovery worker for subtree %s", c.Pivot),
					func(err error) { results[i] = gathered{err: err} },
					func() { results[i] = visit(c) })
			}
			grp.Wait()
			for i := range results {
				merge(&g, &results[i])
			}
		} else {
			for _, c := range r.Children {
				cg := visit(c)
				merge(&g, &cg)
				if g.err != nil {
					break
				}
			}
		}
		if g.err != nil {
			return g
		}
		incoming := g.out
		g.out = nil
		if !r.Essential {
			// The synthetic root relation has a single tuple; no FD
			// over it is meaningful and no target can reach it.
			return g
		}
		if gov.expired() {
			// Out of wall-clock budget: keep what the subtree found,
			// skip this relation's lattice (graceful degradation).
			return g
		}
		if opts.RelationHook != nil {
			opts.RelationHook(r.Pivot)
		}
		g.stats.Relations++
		g.stats.Tuples += r.NRows()
		lr := &latticeRun{rel: r, opts: &opts, stats: &g.stats, depths: depths, incoming: incoming, gov: gov, cache: cache}
		if p := r.Parent; p != nil {
			lr.ni = nullInfo{parentAnyNull: anyNull[p], aboveParent: p.Parent != nil && nullsAtOrAbove[p.Parent]}
		}
		lr.run(xfd)
		if lr.err != nil {
			g.err = lr.err
			return g
		}

		for _, e := range lr.out.intraFDs {
			if e.lhs == 0 && !opts.KeepConstantFDs {
				continue
			}
			g.fds = append(g.fds, intraFD(r, e))
		}
		for _, k := range lr.out.intraKeys {
			g.keys = append(g.keys, intraKey(r, k))
		}
		g.fds = append(g.fds, lr.out.interFDs...)
		g.keys = append(g.keys, lr.out.interKeys...)
		if opts.ApproxError > 0 {
			g.approx = append(g.approx, lr.discoverApprox(opts.ApproxError)...)
		}
		cache.retire(lr.pc)
		lr.close()
		g.out = lr.out.outgoing
		return g
	}
	top := visit(h.Root)
	if top.err != nil {
		return nil, top.err
	}
	res.Stats = top.stats
	rawFDs := top.fds
	rawKeys := top.keys
	rawApprox := top.approx

	fds := minimizeFDs(rawFDs)
	res.Keys = minimizeKeys(rawKeys)
	fds = dropSuperkeyLHS(fds, res.Keys)
	sortKeys(res.Keys)

	// Definition 11: an FD indicates a redundancy iff its LHS is not
	// a key of the class. Lattice key pruning and the superkey filter
	// above remove almost all such FDs; a final check against the
	// independent evaluator (which also provides the witness counts)
	// guarantees the invariant exactly.
	res.FDs = res.FDs[:0]
	res.Redundancies = res.Redundancies[:0]
	for _, fd := range fds {
		if err := gov.cancelled(); err != nil {
			return nil, err
		}
		ev, err := verifyFD(cache, h, fd, opts.NaivePartitions)
		if err != nil {
			return nil, err
		}
		if ev.LHSIsKey {
			continue
		}
		res.FDs = append(res.FDs, fd)
		res.Redundancies = append(res.Redundancies, Redundancy{
			FD:              fd,
			RedundantValues: ev.Witnesses,
			Groups:          ev.WitnessGroups,
		})
	}
	sortFDs(res.FDs)
	sortRedundancies(res.Redundancies)

	if len(rawApprox) > 0 {
		res.ApproxFDs = minimizeApprox(rawApprox, res.FDs)
		sortFDs(res.ApproxFDs)
	}
	res.Stats.Truncated, res.Stats.TruncatedReason = gov.status()
	cache.flushStats(&res.Stats)
	return res, nil
}

// verifyFD checks one candidate FD for the final Definition 11 filter.
// Intra-relation FDs reuse the run's partition cache (Π_LHS groups are
// exactly the evaluator's non-null LHS-equal groups of size ≥ 2, since
// nulls carry row-unique codes and stripped partitions drop
// singletons); inter-relation FDs — and every FD when the naive
// engine is selected — go through the independent evaluator.
func verifyFD(cache *partitionCache, h *relation.Hierarchy, fd FD, naive bool) (Evaluation, error) {
	if !naive && !fd.Inter {
		origin := h.ByPivot(fd.Class)
		if origin != nil {
			lhsSet := AttrSet(0)
			ok := true
			for _, rp := range fd.LHS {
				r, err := resolveRef(h, origin, rp)
				if err != nil || r.ups != 0 {
					ok = false
					break
				}
				lhsSet = lhsSet.Add(r.attr)
			}
			if ok {
				if r, err := resolveRef(h, origin, fd.RHS); err == nil && r.ups == 0 {
					return evaluateIntraFast(cache, origin, lhsSet, r.attr), nil
				}
			}
		}
	}
	return Evaluate(h, fd.Class, fd.LHS, fd.RHS)
}

// minimizeApprox removes approximate FDs implied by an exact FD or by
// another approximate FD with a subset LHS for the same class and
// RHS, and deduplicates.
func minimizeApprox(approx, exact []FD) []FD {
	out := approx[:0]
	for i, a := range approx {
		implied := false
		for _, e := range exact {
			if e.Class == a.Class && e.RHS == a.RHS && relsSubset(e.LHS, a.LHS) {
				implied = true
				break
			}
		}
		if !implied {
			for j, b := range approx {
				if i == j || b.Class != a.Class || b.RHS != a.RHS {
					continue
				}
				if relsEqual(a.LHS, b.LHS) {
					if j < i {
						implied = true
						break
					}
					continue
				}
				if relsSubset(b.LHS, a.LHS) {
					implied = true
					break
				}
			}
		}
		if !implied {
			out = append(out, a)
		}
	}
	return out
}

// dropSuperkeyLHS removes FDs whose LHS contains a discovered key of
// the same class: a superkey LHS satisfies any FD trivially and
// indicates no redundancy (Definition 11).
func dropSuperkeyLHS(fds []FD, keys []Key) []FD {
	out := fds[:0]
	for _, fd := range fds {
		super := false
		for _, k := range keys {
			if k.Class == fd.Class && relsSubset(k.LHS, fd.LHS) {
				super = true
				break
			}
		}
		if !super {
			out = append(out, fd)
		}
	}
	return out
}

func sortRedundancies(rs []Redundancy) {
	sort.Slice(rs, func(i, j int) bool {
		a, b := rs[i].FD, rs[j].FD
		if a.Class != b.Class {
			return a.Class < b.Class
		}
		if a.RHS != b.RHS {
			return a.RHS < b.RHS
		}
		return joinRels(a.LHS) < joinRels(b.LHS)
	})
}

func intraFD(r *relation.Relation, e edge) FD {
	lhs := make([]schema.RelPath, 0, e.lhs.Size())
	for _, i := range e.lhs.Attrs() {
		lhs = append(lhs, r.Attrs[i].Rel)
	}
	sortRels(lhs)
	return FD{Class: r.Pivot, LHS: lhs, RHS: r.Attrs[e.rhs].Rel}
}

func intraKey(r *relation.Relation, k AttrSet) Key {
	lhs := make([]schema.RelPath, 0, k.Size())
	for _, i := range k.Attrs() {
		lhs = append(lhs, r.Attrs[i].Rel)
	}
	sortRels(lhs)
	return Key{Class: r.Pivot, LHS: lhs}
}

// computeAnyNullRows reports, per relation and row, whether any
// column is missing there. Degenerate (same-ancestor) target pairs
// can only be satisfied vacuously by such a missing value, so rows
// without any let the algorithm use the paper's fast
// collapse-to-NULL path.
func computeAnyNullRows(h *relation.Hierarchy) map[*relation.Relation][]bool {
	out := make(map[*relation.Relation][]bool, len(h.Relations))
	for _, r := range h.Relations {
		rows := make([]bool, r.NRows())
		for _, col := range r.Cols {
			for row, code := range col {
				if relation.IsNull(code) {
					rows[row] = true
				}
			}
		}
		out[r] = rows
	}
	return out
}

func relationDepths(h *relation.Hierarchy) map[*relation.Relation]int {
	d := make(map[*relation.Relation]int, len(h.Relations))
	var rec func(r *relation.Relation, depth int)
	rec = func(r *relation.Relation, depth int) {
		d[r] = depth
		for _, c := range r.Children {
			rec(c, depth+1)
		}
	}
	rec(h.Root, 0)
	return d
}

// minimizeFDs removes duplicates and FDs whose LHS strictly contains
// another FD's LHS for the same class and RHS. Partial-propagation
// targets can produce such non-minimal variants when several
// absorption orders reach the same conclusion.
func minimizeFDs(fds []FD) []FD {
	byGoal := make(map[string][]int)
	keyOf := func(f FD) string { return string(f.Class) + "\x00" + string(f.RHS) }
	for i, f := range fds {
		byGoal[keyOf(f)] = append(byGoal[keyOf(f)], i)
	}
	keep := make([]bool, len(fds))
	//lint:detorder groups write disjoint keep indices and out iterates fds in slice order, so group visit order cannot reach the output
	for _, idxs := range byGoal {
		for _, i := range idxs {
			keep[i] = true
			for _, j := range idxs {
				if i == j || !keep[i] {
					continue
				}
				if relsEqual(fds[j].LHS, fds[i].LHS) {
					// Duplicate: keep the first occurrence only.
					if j < i {
						keep[i] = false
					}
					continue
				}
				if relsSubset(fds[j].LHS, fds[i].LHS) {
					keep[i] = false
				}
			}
		}
	}
	var out []FD
	for i, f := range fds {
		if keep[i] {
			out = append(out, f)
		}
	}
	return out
}

// minimizeKeys removes duplicates and keys whose LHS strictly
// contains another key's LHS for the same class.
func minimizeKeys(keys []Key) []Key {
	byClass := make(map[schema.Path][]int)
	for i, k := range keys {
		byClass[k.Class] = append(byClass[k.Class], i)
	}
	keep := make([]bool, len(keys))
	//lint:detorder groups write disjoint keep indices and out iterates keys in slice order, so group visit order cannot reach the output
	for _, idxs := range byClass {
		for _, i := range idxs {
			keep[i] = true
			for _, j := range idxs {
				if i == j || !keep[i] {
					continue
				}
				if relsEqual(keys[j].LHS, keys[i].LHS) {
					if j < i {
						keep[i] = false
					}
					continue
				}
				if relsSubset(keys[j].LHS, keys[i].LHS) {
					keep[i] = false
				}
			}
		}
	}
	var out []Key
	for i, k := range keys {
		if keep[i] {
			out = append(out, k)
		}
	}
	return out
}

func sortFDs(fds []FD) {
	sort.Slice(fds, func(i, j int) bool {
		if fds[i].Class != fds[j].Class {
			return fds[i].Class < fds[j].Class
		}
		if fds[i].RHS != fds[j].RHS {
			return fds[i].RHS < fds[j].RHS
		}
		return joinRels(fds[i].LHS) < joinRels(fds[j].LHS)
	})
}

func sortKeys(keys []Key) {
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].Class != keys[j].Class {
			return keys[i].Class < keys[j].Class
		}
		return joinRels(keys[i].LHS) < joinRels(keys[j].LHS)
	})
}
