package core

import (
	"context"
	"sort"

	"discoverxfd/internal/relation"
	"discoverxfd/internal/schema"
)

// mergeStats accumulates per-subtree instrumentation. WallTime is
// deliberately not merged: it is a run-scoped wall-clock measurement
// stamped once at the end of the pipeline, not a summable per-subtree
// quantity (summing it across parallel subtrees would recreate the
// double-counting the Stats docs rule out).
func mergeStats(dst, src *Stats) {
	dst.Relations += src.Relations
	dst.Tuples += src.Tuples
	dst.NodesVisited += src.NodesVisited
	dst.PartitionsComputed += src.PartitionsComputed
	dst.ParallelProducts += src.ParallelProducts
	dst.TargetsCreated += src.TargetsCreated
	dst.TargetsPropagated += src.TargetsPropagated
	dst.TargetsDropped += src.TargetsDropped
	dst.TargetChecks += src.TargetChecks
	dst.IntraTime += src.IntraTime
	dst.InterTime += src.InterTime
}

// Discover runs the DiscoverXFD algorithm (Figure 9) over the
// hierarchical representation of a document: a bottom-up traversal of
// the relation tree that discovers all minimal interesting
// intra-relation and inter-relation XML FDs and Keys, and derives the
// data redundancies they indicate (Definition 11).
//
// Discover and the other package-level wrappers below run one cold
// Run each; callers issuing repeated runs (or concurrent ones) should
// construct an Engine instead and reuse it.
func Discover(h *relation.Hierarchy, opts Options) (*Result, error) {
	return DiscoverContext(context.Background(), h, opts)
}

// DiscoverContext is Discover with cancellation. The context is
// checked periodically in the lattice hot loops; cancellation aborts
// with an error. Budget exhaustion (Options.Deadline,
// Options.MaxLatticeLevel, or a truncated input hierarchy) instead
// degrades gracefully: the partial Result found so far is returned
// with Stats.Truncated set.
func DiscoverContext(ctx context.Context, h *relation.Hierarchy, opts Options) (*Result, error) {
	return NewEngine(opts).Discover(ctx, h)
}

// DiscoverIntra runs DiscoverFD (Figure 8) independently on each
// essential relation: only intra-relation FDs and Keys are found.
// This is the restriction the paper uses to contrast against full
// DiscoverXFD (experiment E5).
func DiscoverIntra(h *relation.Hierarchy, opts Options) (*Result, error) {
	return DiscoverIntraContext(context.Background(), h, opts)
}

// DiscoverIntraContext is DiscoverIntra with cancellation (see
// DiscoverContext).
func DiscoverIntraContext(ctx context.Context, h *relation.Hierarchy, opts Options) (*Result, error) {
	return NewEngine(opts).DiscoverIntra(ctx, h)
}

// verifyFD checks one candidate FD for the final Definition 11 filter.
// Intra-relation FDs reuse the run's partition cache (Π_LHS groups are
// exactly the evaluator's non-null LHS-equal groups of size ≥ 2, since
// nulls carry row-unique codes and stripped partitions drop
// singletons); inter-relation FDs — and every FD when the naive
// engine is selected — go through the independent evaluator.
func verifyFD(cache *partitionCache, h *relation.Hierarchy, fd FD, naive bool) (Evaluation, error) {
	if !naive && !fd.Inter {
		origin := h.ByPivot(fd.Class)
		if origin != nil {
			lhsSet := AttrSet(0)
			ok := true
			for _, rp := range fd.LHS {
				r, err := resolveRef(h, origin, rp)
				if err != nil || r.ups != 0 {
					ok = false
					break
				}
				lhsSet = lhsSet.Add(r.attr)
			}
			if ok {
				if r, err := resolveRef(h, origin, fd.RHS); err == nil && r.ups == 0 {
					return evaluateIntraFast(cache, origin, lhsSet, r.attr), nil
				}
			}
		}
	}
	return Evaluate(h, fd.Class, fd.LHS, fd.RHS)
}

// minimizeApprox removes approximate FDs implied by an exact FD or by
// another approximate FD with a subset LHS for the same class and
// RHS, and deduplicates.
func minimizeApprox(approx, exact []FD) []FD {
	out := approx[:0]
	for i, a := range approx {
		implied := false
		for _, e := range exact {
			if e.Class == a.Class && e.RHS == a.RHS && relsSubset(e.LHS, a.LHS) {
				implied = true
				break
			}
		}
		if !implied {
			for j, b := range approx {
				if i == j || b.Class != a.Class || b.RHS != a.RHS {
					continue
				}
				if relsEqual(a.LHS, b.LHS) {
					if j < i {
						implied = true
						break
					}
					continue
				}
				if relsSubset(b.LHS, a.LHS) {
					implied = true
					break
				}
			}
		}
		if !implied {
			out = append(out, a)
		}
	}
	return out
}

// dropSuperkeyLHS removes FDs whose LHS contains a discovered key of
// the same class: a superkey LHS satisfies any FD trivially and
// indicates no redundancy (Definition 11).
func dropSuperkeyLHS(fds []FD, keys []Key) []FD {
	out := fds[:0]
	for _, fd := range fds {
		super := false
		for _, k := range keys {
			if k.Class == fd.Class && relsSubset(k.LHS, fd.LHS) {
				super = true
				break
			}
		}
		if !super {
			out = append(out, fd)
		}
	}
	return out
}

func sortRedundancies(rs []Redundancy) {
	sort.Slice(rs, func(i, j int) bool {
		a, b := rs[i].FD, rs[j].FD
		if a.Class != b.Class {
			return a.Class < b.Class
		}
		if a.RHS != b.RHS {
			return a.RHS < b.RHS
		}
		return joinRels(a.LHS) < joinRels(b.LHS)
	})
}

func intraFD(r *relation.Relation, e edge) FD {
	lhs := make([]schema.RelPath, 0, e.lhs.Size())
	for _, i := range e.lhs.Attrs() {
		lhs = append(lhs, r.Attrs[i].Rel)
	}
	sortRels(lhs)
	return FD{Class: r.Pivot, LHS: lhs, RHS: r.Attrs[e.rhs].Rel}
}

func intraKey(r *relation.Relation, k AttrSet) Key {
	lhs := make([]schema.RelPath, 0, k.Size())
	for _, i := range k.Attrs() {
		lhs = append(lhs, r.Attrs[i].Rel)
	}
	sortRels(lhs)
	return Key{Class: r.Pivot, LHS: lhs}
}

// minimizeFDs removes duplicates and FDs whose LHS strictly contains
// another FD's LHS for the same class and RHS. Partial-propagation
// targets can produce such non-minimal variants when several
// absorption orders reach the same conclusion.
func minimizeFDs(fds []FD) []FD {
	byGoal := make(map[string][]int)
	keyOf := func(f FD) string { return string(f.Class) + "\x00" + string(f.RHS) }
	for i, f := range fds {
		byGoal[keyOf(f)] = append(byGoal[keyOf(f)], i)
	}
	keep := make([]bool, len(fds))
	//lint:detorder groups write disjoint keep indices and out iterates fds in slice order, so group visit order cannot reach the output
	for _, idxs := range byGoal {
		for _, i := range idxs {
			keep[i] = true
			for _, j := range idxs {
				if i == j || !keep[i] {
					continue
				}
				if relsEqual(fds[j].LHS, fds[i].LHS) {
					// Duplicate: keep the first occurrence only.
					if j < i {
						keep[i] = false
					}
					continue
				}
				if relsSubset(fds[j].LHS, fds[i].LHS) {
					keep[i] = false
				}
			}
		}
	}
	var out []FD
	for i, f := range fds {
		if keep[i] {
			out = append(out, f)
		}
	}
	return out
}

// minimizeKeys removes duplicates and keys whose LHS strictly
// contains another key's LHS for the same class.
func minimizeKeys(keys []Key) []Key {
	byClass := make(map[schema.Path][]int)
	for i, k := range keys {
		byClass[k.Class] = append(byClass[k.Class], i)
	}
	keep := make([]bool, len(keys))
	//lint:detorder groups write disjoint keep indices and out iterates keys in slice order, so group visit order cannot reach the output
	for _, idxs := range byClass {
		for _, i := range idxs {
			keep[i] = true
			for _, j := range idxs {
				if i == j || !keep[i] {
					continue
				}
				if relsEqual(keys[j].LHS, keys[i].LHS) {
					if j < i {
						keep[i] = false
					}
					continue
				}
				if relsSubset(keys[j].LHS, keys[i].LHS) {
					keep[i] = false
				}
			}
		}
	}
	var out []Key
	for i, k := range keys {
		if keep[i] {
			out = append(out, k)
		}
	}
	return out
}

func sortFDs(fds []FD) {
	sort.Slice(fds, func(i, j int) bool {
		if fds[i].Class != fds[j].Class {
			return fds[i].Class < fds[j].Class
		}
		if fds[i].RHS != fds[j].RHS {
			return fds[i].RHS < fds[j].RHS
		}
		return joinRels(fds[i].LHS) < joinRels(fds[j].LHS)
	})
}

func sortKeys(keys []Key) {
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].Class != keys[j].Class {
			return keys[i].Class < keys[j].Class
		}
		return joinRels(keys[i].LHS) < joinRels(keys[j].LHS)
	})
}
