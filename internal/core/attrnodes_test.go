package core

import (
	"testing"

	"discoverxfd/internal/datatree"
	"discoverxfd/internal/relation"
	"discoverxfd/internal/schema"
)

// TestDiscoveryOverXMLAttributes checks that XML attributes (nodes
// labeled "@name") and mixed-content text ("@text") are first-class
// FD paths end to end: parsed, inferred, discovered, evaluated.
func TestDiscoveryOverXMLAttributes(t *testing.T) {
	tree, err := datatree.ParseXMLString(`
<catalog>
  <product sku="1" line="alpha">standard <b>x</b></product>
  <product sku="2" line="alpha">standard <b>y</b></product>
  <product sku="3" line="beta">premium <b>x</b></product>
  <product sku="4" line="beta">premium <b>z</b></product>
</catalog>`)
	if err != nil {
		t.Fatal(err)
	}
	s, err := datatree.InferSchema(tree)
	if err != nil {
		t.Fatal(err)
	}
	// @sku, @line and @text must all be leaf elements of product.
	for _, p := range []schema.Path{"/catalog/product/@sku", "/catalog/product/@line", "/catalog/product/@text"} {
		if el, err := s.Resolve(p); err != nil || !el.Payload.Kind.IsSimple() {
			t.Fatalf("attribute path %s not inferred as a leaf: %v", p, err)
		}
	}
	h, err := relation.Build(tree, s, relation.Options{})
	if err != nil {
		t.Fatal(err)
	}
	res, err := Discover(h, Options{PropagatePartial: true})
	if err != nil {
		t.Fatal(err)
	}

	product := schema.Path("/catalog/product")
	// @line determines the mixed-content tier text and vice versa.
	if !impliedFD(res, product, []schema.RelPath{"./@line"}, "./@text") {
		t.Errorf("@line -> @text not discovered: %v", res.FDs)
	}
	if !impliedFD(res, product, []schema.RelPath{"./@text"}, "./@line") {
		t.Errorf("@text -> @line not discovered: %v", res.FDs)
	}
	// @sku is a key.
	if !impliedKey(res, product, []schema.RelPath{"./@sku"}) {
		t.Errorf("@sku not discovered as key: %v", res.Keys)
	}

	// The notation round-trips @-paths.
	fd, err := ParseFD("{./@line} -> ./@text w.r.t. C(/catalog/product)")
	if err != nil {
		t.Fatal(err)
	}
	ev, err := Evaluate(h, fd.Class, fd.LHS, fd.RHS)
	if err != nil {
		t.Fatal(err)
	}
	if !ev.Holds || ev.Witnesses != 2 {
		t.Fatalf("evaluation of @-path FD: %+v", ev)
	}
}
