package core

import (
	"math/rand"
	"testing"

	"discoverxfd/internal/partition"
	"discoverxfd/internal/relation"
	"discoverxfd/internal/xmlgen"
)

// diffDatasets returns the differential-test corpus: every generator
// family plus randomized wide relations (varying seed, domain and
// noise) whose value distributions stress the interned counting
// builds, the cache, and the parallel level precompute.
func diffDatasets() []xmlgen.Dataset {
	sets := []xmlgen.Dataset{
		xmlgen.Warehouse(xmlgen.DefaultWarehouse()),
		xmlgen.Auction(xmlgen.DefaultAuction()),
		xmlgen.Mondial(xmlgen.DefaultMondial()),
		xmlgen.PSD(xmlgen.DefaultPSD()),
		xmlgen.DBLP(xmlgen.DefaultDBLP()),
	}
	for seed := int64(1); seed <= 4; seed++ {
		sets = append(sets, xmlgen.Wide(xmlgen.WideParams{
			Rows:          200,
			Attrs:         8,
			Domain:        int(2 + 5*seed),
			FDEvery:       2,
			NoisePermille: int(10 * (seed - 1)),
			Seed:          seed,
		}))
	}
	return sets
}

// TestFastPathMatchesNaive is the end-to-end differential property:
// the interned + cached + parallel partition engine must produce the
// same FD/Key/redundancy/approximate-FD cover as the naive engine
// (generic hashed partition builds, serial products, evaluator-only
// verification) on every dataset, including under aggressive cache
// eviction. Run under -race this also exercises the parallel product
// workers for sharing bugs.
func TestFastPathMatchesNaive(t *testing.T) {
	for _, ds := range diffDatasets() {
		h, err := relation.Build(ds.Tree, ds.Schema, relation.Options{})
		if err != nil {
			t.Fatalf("%s: %v", ds.Name, err)
		}
		base := Options{PropagatePartial: true, ApproxError: 0.05}

		naiveOpts := base
		naiveOpts.NaivePartitions = true
		naive, err := Discover(h, naiveOpts)
		if err != nil {
			t.Fatal(err)
		}
		want := render(naive)

		fastVariants := map[string]func(*Options){
			"fast":          func(o *Options) {},
			"fast+parallel": func(o *Options) { o.Parallel = true },
			"fast+evict":    func(o *Options) { o.Parallel = true; o.MaxPartitionBytes = 1 },
		}
		for name, tweak := range fastVariants {
			opts := base
			tweak(&opts)
			fast, err := Discover(h, opts)
			if err != nil {
				t.Fatalf("%s/%s: %v", ds.Name, name, err)
			}
			if got := render(fast); got != want {
				t.Errorf("%s/%s: result differs from naive engine\nnaive:\n%s\n%s:\n%s",
					ds.Name, name, want, name, got)
			}
			if fast.Stats.PartitionCacheHits == 0 {
				t.Errorf("%s/%s: fast path reported no cache hits", ds.Name, name)
			}
		}
		if naive.Stats.ParallelProducts != 0 {
			t.Errorf("%s: naive engine reported %d parallel products", ds.Name, naive.Stats.ParallelProducts)
		}
	}
}

// TestFastPartitionsMatchNaive is the partition-level property: for
// random attribute sets of every relation, the cache's dense-interned
// build + product chain yields a partition Equal to the generic
// hashed build chain.
func TestFastPartitionsMatchNaive(t *testing.T) {
	ds := xmlgen.Warehouse(xmlgen.DefaultWarehouse())
	h, err := relation.Build(ds.Tree, ds.Schema, relation.Options{})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(7))
	for _, r := range h.Relations {
		fastCache := newPartitionCache(0)
		naiveCache := newPartitionCache(0)
		frp, nrp := fastCache.store(r), naiveCache.store(r)
		sc := partition.NewScratch(r.NRows())
		m := r.NAttrs()
		sets := []AttrSet{0}
		for i := 0; i < m; i++ {
			sets = append(sets, AttrSet(0).Add(i))
		}
		for i := 0; i < 20; i++ {
			a := AttrSet(0)
			for j := 0; j < m; j++ {
				if rng.Intn(2) == 1 {
					a = a.Add(j)
				}
			}
			sets = append(sets, a)
		}
		for _, a := range sets {
			fast := fastCache.partitionOf(frp, a, sc, false, nil)
			naive := naiveCache.partitionOf(nrp, a, sc, true, nil)
			if !fast.Equal(naive) {
				t.Errorf("relation %s set %b: fast partition differs from naive", r.Pivot, a)
			}
			if again := fastCache.partitionOf(frp, a, sc, false, nil); again != fast {
				t.Errorf("relation %s set %b: cache returned a different object on rehit", r.Pivot, a)
			}
		}
	}
}

// TestCacheEvictionRecomputes checks that trimming a retired store
// down to its column partitions loses no information: a later lookup
// rebuilds the same partition.
func TestCacheEvictionRecomputes(t *testing.T) {
	ds := xmlgen.Wide(xmlgen.WideParams{Rows: 100, Attrs: 6, Domain: 4, FDEvery: 2, Seed: 3})
	h, err := relation.Build(ds.Tree, ds.Schema, relation.Options{})
	if err != nil {
		t.Fatal(err)
	}
	r := h.Relations[len(h.Relations)-1]
	cache := newPartitionCache(1) // evict everything trimmable at retire
	rp := cache.store(r)
	sc := partition.NewScratch(r.NRows())
	a := AttrSet(0).Add(0).Add(1).Add(2)
	before := cache.partitionOf(rp, a, sc, false, nil)
	cache.retire(rp)
	if _, ok := rp.parts[a]; ok {
		t.Fatal("retire under a 1-byte budget kept a multi-attribute partition")
	}
	if cache.evictions.Load() == 0 {
		t.Fatal("no evictions counted")
	}
	after := cache.partitionOf(rp, a, sc, false, nil)
	if !after.Equal(before) {
		t.Fatal("rebuilt partition differs from the evicted one")
	}
}
