package core

import (
	"fmt"
	"testing"

	"discoverxfd/internal/datatree"
	"discoverxfd/internal/relation"
	"discoverxfd/internal/schema"
)

// buildDirty constructs a relation where a -> b holds for all but
// `dirty` of n rows.
func buildDirty(t *testing.T, n, dirty int) *relation.Hierarchy {
	t.Helper()
	root := &datatree.Node{Label: "db"}
	for i := 0; i < n; i++ {
		row := root.AddChild("row")
		a := fmt.Sprintf("a%d", i%5)
		b := fmt.Sprintf("b%d", i%5)
		if i < dirty {
			b = fmt.Sprintf("dirty%d", i)
		}
		row.AddLeaf("a", a)
		row.AddLeaf("b", b)
		row.AddLeaf("c", fmt.Sprintf("c%d", i)) // unique: a key
	}
	tree := datatree.NewTree(root)
	s := schema.MustParse("db: Rcd\n  row: SetOf Rcd\n    a: str\n    b: str\n    c: str")
	h, err := relation.Build(tree, s, relation.Options{})
	if err != nil {
		t.Fatal(err)
	}
	return h
}

func TestApproximateFDDiscovery(t *testing.T) {
	h := buildDirty(t, 100, 4) // a -> b violated by 4 of 100 rows

	// Exact discovery must not report a -> b.
	res, err := Discover(h, Options{PropagatePartial: true})
	if err != nil {
		t.Fatal(err)
	}
	row := schema.Path("/db/row")
	if impliedFD(res, row, []schema.RelPath{"./a"}, "./b") {
		t.Fatal("dirty a -> b must not be exact")
	}
	if len(res.ApproxFDs) != 0 {
		t.Fatalf("approximate FDs reported without ApproxError: %v", res.ApproxFDs)
	}

	// With a 5% budget it appears as approximate with g3 = 0.04.
	res, err = Discover(h, Options{PropagatePartial: true, ApproxError: 0.05})
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, fd := range res.ApproxFDs {
		if fd.Class == row && fd.RHS == "./b" && len(fd.LHS) == 1 && fd.LHS[0] == "./a" {
			found = true
			if !fd.Approximate {
				t.Error("approximate flag not set")
			}
			if fd.Error < 0.039 || fd.Error > 0.041 {
				t.Errorf("g3 error = %v, want 0.04", fd.Error)
			}
		}
	}
	if !found {
		t.Fatalf("a -> b not found approximately: %v", res.ApproxFDs)
	}

	// With a 3% budget it must not appear.
	res, err = Discover(h, Options{PropagatePartial: true, ApproxError: 0.03})
	if err != nil {
		t.Fatal(err)
	}
	for _, fd := range res.ApproxFDs {
		if fd.Class == row && fd.RHS == "./b" && len(fd.LHS) == 1 && fd.LHS[0] == "./a" {
			t.Fatalf("a -> b exceeds the 3%% budget but was reported")
		}
	}
}

func TestApproximateMatchesEvaluatorError(t *testing.T) {
	h := buildDirty(t, 80, 6)
	res, err := Discover(h, Options{PropagatePartial: true, ApproxError: 0.2})
	if err != nil {
		t.Fatal(err)
	}
	for _, fd := range res.ApproxFDs {
		ev, err := Evaluate(h, fd.Class, fd.LHS, fd.RHS)
		if err != nil {
			t.Fatal(err)
		}
		if ev.Holds {
			t.Errorf("approximate FD is actually exact: %s", fd)
		}
		if diff := ev.Error - fd.Error; diff > 1e-9 || diff < -1e-9 {
			t.Errorf("%s: discovery g3 %v != evaluator g3 %v", fd, fd.Error, ev.Error)
		}
	}
	if len(res.ApproxFDs) == 0 {
		t.Fatal("expected approximate FDs at a 20% budget")
	}
}

func TestApproximateExcludesExactImplied(t *testing.T) {
	h := buildDirty(t, 60, 0) // clean: a -> b exact
	res, err := Discover(h, Options{PropagatePartial: true, ApproxError: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	row := schema.Path("/db/row")
	if !impliedFD(res, row, []schema.RelPath{"./a"}, "./b") {
		t.Fatal("clean a -> b must be exact")
	}
	for _, fd := range res.ApproxFDs {
		for _, e := range res.FDs {
			if e.Class == fd.Class && e.RHS == fd.RHS && relsSubset(e.LHS, fd.LHS) {
				t.Fatalf("approximate FD %s is implied by exact %s", fd, e)
			}
		}
	}
}

func TestEvaluationErrorOnExactFD(t *testing.T) {
	h := buildDirty(t, 50, 0)
	ev, err := Evaluate(h, "/db/row", []schema.RelPath{"./a"}, "./b")
	if err != nil {
		t.Fatal(err)
	}
	if !ev.Holds || ev.Error != 0 {
		t.Fatalf("exact FD should have g3 = 0: %+v", ev)
	}
}

func TestApproxFDStringFormat(t *testing.T) {
	fd := FD{Class: "/db/row", LHS: []schema.RelPath{"./a"}, RHS: "./b", Approximate: true, Error: 0.04}
	want := "{./a} -> ./b w.r.t. C(/db/row) [approx, g3=0.040]"
	if fd.String() != want {
		t.Fatalf("String = %q, want %q", fd.String(), want)
	}
}
