package core

import (
	"fmt"
	"testing"

	"discoverxfd/internal/relation"
	"discoverxfd/internal/xmlgen"
)

// TestParallelMatchesSerial checks that parallel discovery produces
// exactly the serial result (FDs, Keys, approximate FDs, redundancy
// witnesses) on every generator dataset.
func TestParallelMatchesSerial(t *testing.T) {
	sets := []xmlgen.Dataset{
		xmlgen.Warehouse(xmlgen.DefaultWarehouse()),
		xmlgen.Auction(xmlgen.DefaultAuction()),
		xmlgen.Mondial(xmlgen.DefaultMondial()),
		xmlgen.PSD(xmlgen.DefaultPSD()),
	}
	for _, ds := range sets {
		h, err := relation.Build(ds.Tree, ds.Schema, relation.Options{})
		if err != nil {
			t.Fatalf("%s: %v", ds.Name, err)
		}
		serial, err := Discover(h, Options{PropagatePartial: true, ApproxError: 0.05})
		if err != nil {
			t.Fatal(err)
		}
		parallel, err := Discover(h, Options{PropagatePartial: true, ApproxError: 0.05, Parallel: true})
		if err != nil {
			t.Fatal(err)
		}
		if got, want := render(parallel), render(serial); got != want {
			t.Errorf("%s: parallel result differs from serial\nserial:\n%s\nparallel:\n%s", ds.Name, want, got)
		}
		if parallel.Stats.Relations != serial.Stats.Relations ||
			parallel.Stats.Tuples != serial.Stats.Tuples {
			t.Errorf("%s: stats mismatch: %+v vs %+v", ds.Name, parallel.Stats, serial.Stats)
		}
	}
}

func render(res *Result) string {
	s := ""
	for i, fd := range res.FDs {
		s += fmt.Sprintf("FD %s w=%d\n", fd, res.Redundancies[i].RedundantValues)
	}
	for _, k := range res.Keys {
		s += "KEY " + k.String() + "\n"
	}
	for _, fd := range res.ApproxFDs {
		s += "APPROX " + fd.String() + "\n"
	}
	return s
}

// TestParallelRace runs parallel discovery repeatedly so `go test
// -race` can catch sharing bugs across sibling subtrees.
func TestParallelRace(t *testing.T) {
	ds := xmlgen.Auction(xmlgen.DefaultAuction())
	h, err := relation.Build(ds.Tree, ds.Schema, relation.Options{})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if _, err := Discover(h, Options{PropagatePartial: true, Parallel: true}); err != nil {
			t.Fatal(err)
		}
	}
}
