package core

import (
	"strconv"
	"strings"

	"discoverxfd/internal/relation"
	"discoverxfd/internal/schema"
)

// ConflictGroup is a set of tuples of the class that agree (non-null)
// on an FD's LHS but do not all carry the same non-null RHS value —
// the witness of one update anomaly.
type ConflictGroup struct {
	// Tuples are row indices into the class's relation.
	Tuples []int
}

// EvaluateConflicts returns the conflicting LHS groups of the FD
// ⟨class, lhs, rhs⟩ — empty when the FD holds. It is the detailed
// companion of Evaluate, used by update-anomaly detection to point at
// the exact pivot nodes that disagree.
func EvaluateConflicts(h *relation.Hierarchy, class schema.Path, lhs []schema.RelPath, rhs schema.RelPath) ([]ConflictGroup, error) {
	groups, rcol, err := lhsGroups(h, class, lhs, rhs)
	if err != nil {
		return nil, err
	}
	var out []ConflictGroup
	for _, g := range groups {
		if len(g) < 2 {
			continue
		}
		agree := true
		first := rcol[g[0]]
		if relation.IsNull(first) {
			agree = false
		} else {
			for _, t := range g[1:] {
				if relation.IsNull(rcol[t]) || rcol[t] != first {
					agree = false
					break
				}
			}
		}
		if !agree {
			out = append(out, ConflictGroup{Tuples: g})
		}
	}
	return out, nil
}

// Companions returns, for the given tuple of the class, the other
// tuples that agree with it (non-null) on the FD's LHS — the copies
// that must be co-updated whenever the tuple's RHS changes, lest the
// FD break. The tuple itself is not included.
func Companions(h *relation.Hierarchy, class schema.Path, lhs []schema.RelPath, rhs schema.RelPath, tuple int) ([]int, error) {
	groups, _, err := lhsGroups(h, class, lhs, rhs)
	if err != nil {
		return nil, err
	}
	for _, g := range groups {
		for _, t := range g {
			if t == tuple {
				out := make([]int, 0, len(g)-1)
				for _, o := range g {
					if o != tuple {
						out = append(out, o)
					}
				}
				return out, nil
			}
		}
	}
	return nil, nil // vacuous tuple (a null LHS value): no companions
}

// lhsGroups materializes the non-vacuous LHS-equal groups of the
// class and the RHS column.
func lhsGroups(h *relation.Hierarchy, class schema.Path, lhs []schema.RelPath, rhs schema.RelPath) ([][]int, []int64, error) {
	origin := h.ByPivot(class)
	if origin == nil {
		return nil, nil, errUnknownClass(class)
	}
	refs := make([]ref, 0, len(lhs))
	for _, rp := range lhs {
		r, err := resolveRef(h, origin, rp)
		if err != nil {
			return nil, nil, err
		}
		refs = append(refs, r)
	}
	rref, err := resolveRef(h, origin, rhs)
	if err != nil {
		return nil, nil, err
	}

	n := origin.NRows()
	bySig := make(map[string][]int, n)
	var order []string
	var sig strings.Builder
	for t := 0; t < n; t++ {
		sig.Reset()
		null := false
		for _, r := range refs {
			at, ok := ancestorTuple(origin, t, r.ups)
			if !ok {
				null = true
				break
			}
			code := r.rel.Cols[r.attr][at]
			if relation.IsNull(code) {
				null = true
				break
			}
			sig.WriteString(strconv.FormatInt(code, 10))
			sig.WriteByte('|')
		}
		if null {
			continue
		}
		key := sig.String()
		if _, ok := bySig[key]; !ok {
			order = append(order, key)
		}
		bySig[key] = append(bySig[key], t)
	}
	groups := make([][]int, 0, len(order))
	for _, key := range order {
		groups = append(groups, bySig[key])
	}
	return groups, origin.Cols[rref.attr], nil
}

func errUnknownClass(class schema.Path) error {
	return &unknownClassError{class}
}

type unknownClassError struct{ class schema.Path }

func (e *unknownClassError) Error() string {
	return "core: no tuple class with pivot " + string(e.class)
}
