package core

import (
	"discoverxfd/internal/relation"
)

// DiscoverRelation runs DiscoverFD (Figure 8) on a single relation in
// isolation: the level-wise attribute-set lattice traversal with the
// paper's pruning rules, yielding the minimal satisfied FDs and
// minimal Keys of that relation. This is the routine applied to the
// flat (fully unnested) representation to realize the "apply an
// existing relational FD discovery algorithm" baseline of Section 4.1.
// Relations wider than 64 attributes are rejected (the bitset
// lattice's limit).
func DiscoverRelation(rel *relation.Relation, opts Options) ([]FD, []Key, Stats, error) {
	var stats Stats
	if err := checkWidth(rel); err != nil {
		return nil, nil, stats, err
	}
	stats.Relations = 1
	stats.Tuples = rel.NRows()
	cache := newPartitionCache(opts.MaxPartitionBytes)
	lr := &latticeRun{rel: rel, opts: &opts, stats: &stats, cache: cache}
	lr.run(false)
	cache.retire(lr.pc)
	lr.close()
	cache.flushStats(&stats)

	var fds []FD
	for _, e := range lr.out.intraFDs {
		if e.lhs == 0 && !opts.KeepConstantFDs {
			continue
		}
		fds = append(fds, intraFD(rel, e))
	}
	var keys []Key
	for _, k := range lr.out.intraKeys {
		keys = append(keys, intraKey(rel, k))
	}
	fds = minimizeFDs(fds)
	keys = minimizeKeys(keys)
	sortFDs(fds)
	sortKeys(keys)
	return fds, keys, stats, nil
}
