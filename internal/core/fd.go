// Package core implements the paper's primary contribution: the
// DiscoverFD and DiscoverXFD algorithms (Yu & Jagadish, VLDB 2006,
// Section 4) for discovering interesting XML functional dependencies,
// XML keys, and the data redundancies they indicate (Definitions
// 7–11) over the hierarchical representation of an XML document.
//
// DiscoverFD (Figure 8) is a partition-based, level-wise traversal of
// the attribute-set lattice of a single relation, in the style of
// TANE, with the paper's three pruning rules. DiscoverXFD (Figures 9
// and 10) runs DiscoverFD bottom-up over the relation tree and
// carries candidate partial FDs/Keys upward as *partition targets* —
// sets of tuple-pair inequalities that ancestor attribute sets must
// satisfy for an inter-relation FD (or Key) to hold.
//
// Two transcription glitches in the supplied paper text are corrected
// here (see DESIGN.md): Figure 9 lines 21–24 swap the Key/FD branches
// (an invalid KeyTarget can only ever yield an FD), and Figure 10's
// creatept is implemented as the per-group refinement it describes,
// with inequalities deduplicated on parent-tuple pairs.
package core

import (
	"fmt"
	"math/bits"
	"sort"
	"strings"
	"time"

	"discoverxfd/internal/schema"
	"discoverxfd/internal/trace"
)

// AttrSet is a set of attribute indices of one relation, represented
// as a bitset. Relations are limited to 64 attributes; Discover
// reports an error beyond that.
type AttrSet uint64

// Has reports whether attribute i is in the set.
func (s AttrSet) Has(i int) bool { return s&(1<<uint(i)) != 0 }

// Add returns the set with attribute i added.
func (s AttrSet) Add(i int) AttrSet { return s | 1<<uint(i) }

// Without returns the set with attribute i removed.
func (s AttrSet) Without(i int) AttrSet { return s &^ (1 << uint(i)) }

// Contains reports whether t ⊆ s.
func (s AttrSet) Contains(t AttrSet) bool { return s&t == t }

// Size returns the number of attributes in the set.
func (s AttrSet) Size() int { return bits.OnesCount64(uint64(s)) }

// MaxBit returns the largest attribute index in the set, or -1 for
// the empty set.
func (s AttrSet) MaxBit() int {
	if s == 0 {
		return -1
	}
	return 63 - bits.LeadingZeros64(uint64(s))
}

// Attrs returns the attribute indices in ascending order.
func (s AttrSet) Attrs() []int {
	out := make([]int, 0, s.Size())
	for s != 0 {
		i := bits.TrailingZeros64(uint64(s))
		out = append(out, i)
		s &^= 1 << uint(i)
	}
	return out
}

// FD is a discovered XML functional dependency
// {P_l1,…,P_ln} → P_r w.r.t. C_p (Definition 7), with all paths
// expressed relative to the pivot path of the tuple class.
type FD struct {
	// Class is the pivot path of the tuple class C_p.
	Class schema.Path
	// LHS holds the left-hand-side paths, sorted lexicographically.
	LHS []schema.RelPath
	// RHS is the right-hand-side path; always a descendant (or the
	// self value) of the pivot, per the interestingness conditions of
	// Definition 10.
	RHS schema.RelPath
	// Inter reports whether the FD is inter-relation (some LHS path
	// reaches outside the pivot's subtree).
	Inter bool
	// Approximate marks FDs found by the approximate (g3) extension;
	// Error is then the fraction of the class's tuples that must be
	// removed for the FD to hold exactly (0 for exact FDs).
	Approximate bool
	Error       float64
}

// String renders the FD in the paper's notation, e.g.
// "{../contact/name, ./ISBN} -> ./price w.r.t. C(/warehouse/state/store/book)".
// Approximate FDs carry their g3 error, e.g. "… [approx, g3=0.02]".
func (f FD) String() string {
	if f.Approximate {
		return fmt.Sprintf("{%s} -> %s w.r.t. C(%s) [approx, g3=%.3f]", joinRels(f.LHS), f.RHS, f.Class, f.Error)
	}
	return fmt.Sprintf("{%s} -> %s w.r.t. C(%s)", joinRels(f.LHS), f.RHS, f.Class)
}

// Key is a discovered XML key ⟨C_p, LHS⟩ (Definition 8): the LHS
// paths uniquely identify each generalized tree tuple of the class.
type Key struct {
	Class schema.Path
	LHS   []schema.RelPath
	Inter bool
}

// String renders the key, e.g. "{./ISBN, ../contact/name} KEY of C(/…/book)".
func (k Key) String() string {
	return fmt.Sprintf("{%s} KEY of C(%s)", joinRels(k.LHS), k.Class)
}

// Redundancy pairs a satisfied interesting FD whose LHS is not a key
// with the amount of redundantly stored data it witnesses
// (Definition 11).
type Redundancy struct {
	FD FD
	// RedundantValues counts, over all LHS-equal tuple groups, the
	// occurrences of the RHS value beyond the first — i.e. how many
	// RHS subtrees could be removed without information loss.
	RedundantValues int
	// Groups counts the LHS-equal groups with two or more tuples.
	Groups int
}

func (r Redundancy) String() string {
	return fmt.Sprintf("%s  [%d redundant value(s) in %d group(s)]", r.FD, r.RedundantValues, r.Groups)
}

// Stats aggregates instrumentation over a discovery run; the
// experiment harness (E5, E6) reports these.
type Stats struct {
	// Relations is the number of essential relations processed.
	Relations int
	// RelationsReused counts essential relations whose lattice
	// traversal was skipped entirely because the engine's warm layer
	// proved their subtree untouched since the last run and replayed
	// its cached outputs (see subtreeMemo).
	RelationsReused int
	// Tuples is the total tuple count over essential relations.
	Tuples int
	// NodesVisited counts attribute-set lattice nodes processed.
	NodesVisited int
	// PartitionsComputed counts partition products performed.
	PartitionsComputed int
	// ParallelProducts counts partition products computed by the
	// level-parallel precompute workers (a subset of
	// PartitionsComputed); zero when Options.Parallel is off or levels
	// were too small to parallelize.
	ParallelProducts int
	// PartitionCacheHits / PartitionCacheMisses count lookups in the
	// run-wide partition cache; misses trigger a build or product.
	// PartitionCacheEvictions counts multi-attribute partitions trimmed
	// from retired relations to honor Options.MaxPartitionBytes, and
	// PartitionCachePeakBytes is the cache's estimated high-water mark.
	PartitionCacheHits      int
	PartitionCacheMisses    int
	PartitionCacheEvictions int
	PartitionCachePeakBytes int64
	// TargetsCreated counts partition targets created from failed
	// intra-relation edges (Figure 10 creatept).
	TargetsCreated int
	// TargetsPropagated counts targets carried up a level (pure
	// conversions plus partial-satisfaction propagations).
	TargetsPropagated int
	// TargetsDropped counts targets discarded because an inequality
	// collapsed (NULL results) or a cap overflowed.
	TargetsDropped int
	// TargetChecks counts (attribute set, target) satisfaction tests.
	TargetChecks int
	// IntraTime is time spent in lattice traversal and partition
	// arithmetic; InterTime is time spent creating, converting and
	// checking partition targets. Both are accumulated per relation
	// and then summed across relations, so under Options.Parallel they
	// are summed worker time, not wall-clock: concurrent subtree
	// workers accrue simultaneously and IntraTime+InterTime may exceed
	// WallTime (compare against WallTime to judge parallel
	// efficiency). In a serial run every accrual interval is a
	// disjoint slice of the run, so IntraTime+InterTime ≤ WallTime —
	// TestStatsTimeAccounting pins that bound as the double-counting
	// regression check. Each relation's accounting is exclusive: time
	// spent on target work inside a lattice traversal is subtracted
	// from that relation's intra share, never counted twice.
	IntraTime, InterTime time.Duration
	// WallTime is the wall-clock duration of the whole run, plan
	// through assemble, regardless of parallelism.
	WallTime time.Duration
	// Truncated reports that a resource budget (deadline, tuple
	// budget, or lattice-level cap) stopped the run early: the Result
	// is a valid partial answer — every reported FD/Key holds on the
	// data that was examined — but constraints may be missing and, if
	// the input itself was truncated, reported constraints may not
	// hold on the full document. TruncatedReason names the first
	// budget that ran out.
	Truncated       bool
	TruncatedReason string
}

// Result is the output of a discovery run.
type Result struct {
	// FDs are the minimal satisfied interesting XML FDs whose LHS is
	// not a key of the class.
	FDs []FD
	// Keys are the minimal XML keys per tuple class.
	Keys []Key
	// Redundancies pairs each FD with its witness counts; by
	// Definition 11 every entry of FDs indicates a redundancy, so
	// len(Redundancies) == len(FDs).
	Redundancies []Redundancy
	// ApproxFDs lists the approximate FDs within Options.ApproxError,
	// minimal and not implied by an exact FD. Empty unless the
	// approximate extension was enabled.
	ApproxFDs []FD
	// Stats carries run instrumentation.
	Stats Stats
}

// Options configures discovery.
type Options struct {
	// MaxLHS bounds the number of attributes drawn from any single
	// relation level into one LHS (lattice depth). 0 means unbounded.
	MaxLHS int
	// NoInterRelation disables partition targets entirely; only
	// intra-relation FDs and Keys are found (DiscoverFD per relation).
	NoInterRelation bool
	// PropagatePartial enables Figure 9 lines 26–29: targets not
	// fully satisfied at a level may absorb a level-local attribute
	// set and continue upward, enabling LHSs spanning three or more
	// hierarchy levels. On by default in Discover.
	PropagatePartial bool
	// MaxPartialAttrs bounds the attribute-set size absorbed by a
	// partial propagation (≥1; 0 means 2, the default).
	MaxPartialAttrs int
	// MaxTargetPairs caps the number of inequalities in one target;
	// a target whose pair-count bound exceeds the cap is dropped
	// (counted in Stats.TargetsDropped). 0 means 1<<16.
	MaxTargetPairs int
	// MaxTargetsPerRelation caps the targets a relation may emit
	// upward. 0 means 1<<16.
	MaxTargetsPerRelation int
	// DisableKeyPruning disables pruning rule 3 (supersets of keys),
	// for ablation E6.
	DisableKeyPruning bool
	// DisableFDPruning disables pruning rules 1–2 (candidateLHS),
	// for ablation E6. All edges are then tested.
	DisableFDPruning bool
	// KeepConstantFDs reports FDs with empty LHS (constant columns)
	// instead of suppressing them. They are legitimate
	// redundancy-indicating FDs but usually noise; off by default.
	KeepConstantFDs bool
	// ApproxError, when positive, additionally reports intra-relation
	// FDs that hold after removing at most this fraction of a class's
	// tuples (TANE's g3 measure; extension). Approximate candidates
	// are drawn from the edges the exact traversal visited.
	ApproxError float64
	// Parallel runs independent relation subtrees concurrently (a
	// relation's lattice still runs after all of its children, which
	// its partition targets depend on). Results are identical to the
	// serial run; Stats times become summed per-relation times.
	// Workers are panic-safe: a panic in one subtree surfaces as an
	// error from Discover (joined in deterministic child order), not a
	// process crash.
	Parallel bool
	// NaivePartitions disables the partition-engine fast path: column
	// partitions are built by generic hashing instead of the interned
	// dense-code counting build, no products are precomputed in
	// parallel, and the run-wide cache keeps nothing beyond what the
	// serial traversal needs. This is the pre-fast-path-equivalent
	// engine, kept selectable for differential tests and as the
	// benchmark baseline; results are identical either way.
	NaivePartitions bool
	// MaxPartitionBytes caps the estimated bytes of partitions retained
	// by the run-wide cache across relations. The active relation's
	// working set is never evicted mid-traversal; completed relations
	// are trimmed to column partitions when over budget. Eviction
	// affects speed only, never results. 0 means unlimited.
	MaxPartitionBytes int64
	// MaxLatticeLevel caps the attribute-set size explored in any
	// relation's lattice. Unlike MaxLHS (a language restriction on the
	// FDs sought), hitting this cap marks the result Truncated: levels
	// that could have held results were skipped. 0 means unbounded.
	MaxLatticeLevel int
	// Deadline, when nonzero, is the wall-clock instant past which the
	// traversal stops and Discover returns the partial Result found so
	// far with Stats.Truncated set — graceful degradation, not an
	// error. Cancellation (an error) comes from the context passed to
	// DiscoverContext instead.
	Deadline time.Time
	// RelationHook, if non-nil, is invoked at the start of each
	// essential relation's lattice traversal with the relation's pivot
	// path. It exists for fault injection in tests
	// (internal/faultinject): a hook that panics exercises the
	// recover-to-error path of parallel discovery.
	RelationHook func(pivot schema.Path)
	// Tracer receives the run's trace events: pipeline stage spans,
	// per-relation traversal spans, per-lattice-level progress,
	// partition-target lifecycle, and governor events. nil disables
	// tracing; hot paths guard event construction behind a single nil
	// check, so the disabled path costs one pointer compare. The
	// tracer must be safe for concurrent use under Options.Parallel
	// (both internal/trace backends are). newRun wraps the supplied
	// tracer with the run's id stamp, so one Tracer may serve many
	// runs and still distinguish them.
	Tracer trace.Tracer
}

func (o Options) maxPartialAttrs() int {
	if o.MaxPartialAttrs <= 0 {
		return 2
	}
	return o.MaxPartialAttrs
}

func (o Options) maxTargetPairs() int {
	if o.MaxTargetPairs <= 0 {
		return 1 << 16
	}
	return o.MaxTargetPairs
}

func (o Options) maxTargets() int {
	if o.MaxTargetsPerRelation <= 0 {
		return 1 << 16
	}
	return o.MaxTargetsPerRelation
}

func joinRels(rs []schema.RelPath) string {
	parts := make([]string, len(rs))
	for i, r := range rs {
		parts[i] = string(r)
	}
	return strings.Join(parts, ", ")
}

func sortRels(rs []schema.RelPath) {
	sort.Slice(rs, func(i, j int) bool { return rs[i] < rs[j] })
}

// relsSubset reports whether a ⊆ b as path sets (both sorted or not).
func relsSubset(a, b []schema.RelPath) bool {
	if len(a) > len(b) {
		return false
	}
	set := make(map[schema.RelPath]bool, len(b))
	for _, r := range b {
		set[r] = true
	}
	for _, r := range a {
		if !set[r] {
			return false
		}
	}
	return true
}

func relsEqual(a, b []schema.RelPath) bool {
	return len(a) == len(b) && relsSubset(a, b)
}
