package core

import (
	"context"
	"fmt"
	"runtime/debug"
	"runtime/pprof"
	"strconv"
	"sync/atomic"
	"time"

	"discoverxfd/internal/relation"
	"discoverxfd/internal/trace"
)

// Run owns every piece of cross-cutting per-run state of one
// discovery run: the resource governor (context + wall-clock budget),
// the run-wide partition cache, the Stats record being accumulated,
// and the relation-indexed depth and null-row tables the traversal
// and the partition targets consult. One Run is created per
// Engine.Discover call (or per legacy Discover* wrapper), used on
// however many goroutines the governed traversal spawns, and
// discarded; nothing in it is shared across runs except the immutable
// partitions the owning Engine chooses to carry over.
//
// A run executes as a fixed pipeline of named stages (see execute):
//
//	plan      width checks, depth/null precomputation
//	traverse  post-order subtree visit (serial or governed-parallel)
//	minimize  FD/key minimization and superkey filtering
//	verify    partition-based FD verification (Definition 11 filter)
//	assemble  deterministic Result and redundancy ordering
type Run struct {
	h    *relation.Hierarchy
	opts Options
	xfd  bool

	gov   *governor
	cache *partitionCache

	// Plan products, all indexed by relation.Relation.Index (plain
	// slices, not pointer-keyed maps: cheaper to build, and iteration
	// order is trivially deterministic).
	depths         []int    // hierarchy depth of each relation
	anyNull        [][]bool // per relation, per row: any column missing
	nullsAtOrAbove []bool   // per relation: missing values here or in any ancestor

	// memo is the engine's cached subtree outputs for this hierarchy
	// (nil on cold runs); reusable marks relations whose whole subtree
	// traversal this run replays from the memo instead of running (see
	// planReuse); memoOuts collects the per-relation outputs — replayed
	// or freshly computed — that become the next memo. Parallel subtree
	// workers write disjoint memoOuts slots, so no synchronization is
	// needed.
	memo     *subtreeMemo
	reusable []bool
	memoOuts []*memoOutput

	// id is the process-unique run identifier ("run-N") stamped on
	// every trace event and pprof label; tr is the run-stamped tracer
	// (nil when tracing is off — the fast path). labels carries the
	// pprof label set of the run (plus the current stage once a stage
	// starts), inherited by every governed worker spawned under it.
	id     string
	tr     trace.Tracer
	labels context.Context

	res *Result
}

// runSeq numbers runs within the process; trace consumers use the id
// to demultiplex concurrent runs sharing one tracer.
var runSeq atomic.Int64

// newRun assembles the per-run state. ctx may be nil (legacy
// ungoverned entry points); the governor normalizes it.
func newRun(ctx context.Context, h *relation.Hierarchy, opts Options, xfd bool) *Run {
	id := "run-" + strconv.FormatInt(runSeq.Add(1), 10)
	// Stamp the tracer once so every emit site below — including the
	// governor's and the lattice's — carries the run id for free.
	opts.Tracer = trace.WithRun(opts.Tracer, id)
	return &Run{
		h:     h,
		opts:  opts,
		xfd:   xfd,
		id:    id,
		tr:    opts.Tracer,
		gov:   newGovernor(ctx, &opts),
		cache: newPartitionCache(opts.MaxPartitionBytes),
		res:   &Result{},
	}
}

// execute drives the pipeline under the run's pprof label, so CPU
// profiles attribute samples — including those of governed workers,
// which inherit the goroutine label set at spawn — to the run id.
func (run *Run) execute() (*Result, error) {
	var res *Result
	var err error
	pprof.Do(run.gov.ctx, pprof.Labels("xfd_run", run.id), func(ctx context.Context) {
		run.labels = ctx
		res, err = run.pipeline()
	})
	return res, err
}

// msSince renders a span duration for trace events.
func msSince(start time.Time) float64 {
	return float64(time.Since(start)) / float64(time.Millisecond)
}

// pipeline runs the staged pipeline. Any panic that escapes a stage —
// from the serial traversal or from result assembly — surfaces as an
// error to the caller instead of killing the process. Parallel
// workers additionally recover per goroutine (workerGroup's panic
// barrier), which is what keeps a worker panic from unwinding past
// the group's join. The run span (run_start/run_end) brackets the
// stage spans; run_end reports truncation, wall time, and the error
// if the run failed.
func (run *Run) pipeline() (res *Result, err error) {
	start := time.Now()
	if run.tr != nil {
		trace.Emit(run.tr, &trace.Event{Kind: trace.KindRunStart,
			Relations: len(run.h.Relations), Tuples: run.h.TotalTuples()})
	}
	defer func() {
		if p := recover(); p != nil {
			res, err = nil, fmt.Errorf("core: panic during discovery: %v\n%s", p, debug.Stack())
		}
		if run.tr != nil {
			ev := &trace.Event{Kind: trace.KindRunEnd, DurationMS: msSince(start)}
			if res != nil {
				ev.Truncated = res.Stats.Truncated
				ev.Detail = res.Stats.TruncatedReason
			}
			if err != nil {
				ev.Err = err.Error()
			}
			trace.Emit(run.tr, ev)
		}
	}()
	var top gathered
	if err := run.stage("plan", func(context.Context) error { return run.plan() }); err != nil {
		return nil, err
	}
	err = run.stage("traverse", func(ctx context.Context) error {
		top = run.traverse(ctx, run.h.Root)
		return top.err
	})
	if err != nil {
		return nil, err
	}
	run.res.Stats = top.stats
	var fds []FD
	_ = run.stage("minimize", func(context.Context) error { fds = run.minimize(&top); return nil })
	if err := run.stage("verify", func(context.Context) error { return run.verify(fds) }); err != nil {
		return nil, err
	}
	_ = run.stage("assemble", func(context.Context) error { run.assemble(top.approx); return nil })
	run.res.Stats.WallTime = time.Since(start)
	return run.res, nil
}

// stage brackets one pipeline stage with its trace span and pprof
// label; goroutines the stage spawns inherit the (run, stage) label
// pair. The deferred stage_end keeps trace spans well-nested even
// when the stage panics (pipeline's recover then fails the run).
func (run *Run) stage(name string, fn func(ctx context.Context) error) (err error) {
	if run.tr != nil {
		trace.Emit(run.tr, &trace.Event{Kind: trace.KindStageStart, Stage: name})
		start := time.Now()
		defer func() {
			trace.Emit(run.tr, &trace.Event{Kind: trace.KindStageEnd, Stage: name, DurationMS: msSince(start)})
		}()
	}
	pprof.Do(run.labels, pprof.Labels("xfd_stage", name), func(ctx context.Context) {
		err = fn(ctx)
	})
	return err
}

// plan validates the input and precomputes the relation-indexed
// tables every later stage reads: the 64-attribute width check, the
// Index invariant the slices depend on, per-relation hierarchy
// depths, and the null-row tables that decide whether degenerate
// target pairs can be satisfied vacuously. Input truncation carries
// over into the governor so the Result reports it.
func (run *Run) plan() error {
	h := run.h
	for i, r := range h.Relations {
		if err := checkWidth(r); err != nil {
			return err
		}
		if r.Index != i {
			return fmt.Errorf("core: hierarchy relation %s has index %d at position %d; hierarchies must come from relation.Build", r.Pivot, r.Index, i)
		}
	}
	if h.Truncated {
		run.gov.truncate(h.TruncatedReason)
	}

	run.depths = relationDepths(h)

	run.anyNull = make([][]bool, len(h.Relations))
	run.nullsAtOrAbove = make([]bool, len(h.Relations))
	for _, r := range h.Relations {
		rows := make([]bool, r.NRows())
		here := false
		for _, col := range r.Cols {
			for row, code := range col {
				if relation.IsNull(code) {
					rows[row] = true
					here = true
				}
			}
		}
		run.anyNull[r.Index] = rows
		up := r.Parent != nil && run.nullsAtOrAbove[r.Parent.Index]
		run.nullsAtOrAbove[r.Index] = up || here
	}

	run.memoOuts = make([]*memoOutput, len(h.Relations))
	run.planReuse()
	return nil
}

// planReuse decides, per relation, whether traverse may replay the
// subtree rooted there from the engine's memo. The sound condition has
// two halves. Inside the subtree: every relation is untouched since
// the memo was built (resizes dirty their whole descendant cone, see
// subtreeMemo.markDirty) and has cached outputs if essential. At the
// boundary: the null profiles the subtree's lattices consulted —
// the parent's per-row null mask and every ancestor's nulls-at-or-
// above flag (nullInfo) — are unchanged, since an update elsewhere in
// the document can flip them (e.g. a graft filling a missing optional
// subtree) without any RelChange inside the subtree. Interior
// relations' null inputs come from clean in-subtree relations and so
// match automatically; only the boundary needs checking.
//
// Note what is deliberately NOT required: a clean ancestor. A value
// update to the parent leaves the subtree's outputs valid — its own
// columns are untouched and its target pairs still index the same
// parent rows — which is what makes sibling subtrees of the mutated
// region reusable even though every update re-encodes the ancestor
// chain's complex columns.
func (run *Run) planReuse() {
	m := run.memo
	if m == nil || m.xfd != run.xfd ||
		len(m.outs) != len(run.h.Relations) || len(m.dirty) != len(run.h.Relations) ||
		len(m.anyNull) != len(run.h.Relations) || len(m.nullsAtOrAbove) != len(run.h.Relations) {
		run.memo = nil
		return
	}
	run.reusable = make([]bool, len(run.h.Relations))
	var subClean func(r *relation.Relation) bool
	subClean = func(r *relation.Relation) bool {
		ok := !m.dirty[r.Index] && (!r.Essential || m.outs[r.Index] != nil)
		for _, c := range r.Children {
			// No short-circuit: a clean child subtree under a dirty
			// relation is reusable on its own and needs its flag set.
			if !subClean(c) {
				ok = false
			}
		}
		run.reusable[r.Index] = ok
		return ok
	}
	subClean(run.h.Root)
	for _, r := range run.h.Relations {
		if run.reusable[r.Index] && !run.nullBoundaryOK(m, r) {
			run.reusable[r.Index] = false
		}
	}
}

// nullBoundaryOK reports whether the null profiles crossing into r's
// subtree match those the memo was built under: the parent's per-row
// null mask and the nulls-at-or-above flag of every ancestor.
func (run *Run) nullBoundaryOK(m *subtreeMemo, r *relation.Relation) bool {
	p := r.Parent
	if p == nil {
		return true
	}
	now, then := run.anyNull[p.Index], m.anyNull[p.Index]
	if len(now) != len(then) {
		return false
	}
	for i := range now {
		if now[i] != then[i] {
			return false
		}
	}
	for a := p; a != nil; a = a.Parent {
		if run.nullsAtOrAbove[a.Index] != m.nullsAtOrAbove[a.Index] {
			return false
		}
	}
	return true
}

// relationDepths returns each relation's depth in the hierarchy tree
// (root 0), indexed by Relation.Index.
func relationDepths(h *relation.Hierarchy) []int {
	depths := make([]int, len(h.Relations))
	var walk func(r *relation.Relation, depth int)
	walk = func(r *relation.Relation, depth int) {
		depths[r.Index] = depth
		for _, c := range r.Children {
			walk(c, depth+1)
		}
	}
	walk(h.Root, 0)
	return depths
}

// gathered collects what one subtree's traversal produced.
type gathered struct {
	fds    []FD
	keys   []Key
	approx []FD
	stats  Stats
	out    []*target
	err    error // first error in deterministic child order
}

func (g *gathered) merge(o *gathered) {
	g.fds = append(g.fds, o.fds...)
	g.keys = append(g.keys, o.keys...)
	g.approx = append(g.approx, o.approx...)
	g.out = append(g.out, o.out...)
	mergeStats(&g.stats, &o.stats)
	if g.err == nil {
		g.err = o.err
	}
}

// traverse is the post-order traversal stage: children before
// parents, so targets flow upward (Figure 9 lines 5–6). Each call
// gathers its subtree's results locally, which makes the parallel
// mode a pure fan-out: sibling subtrees share nothing until their
// parent merges them, in child order, so output is independent of
// scheduling. ctx carries the stage's pprof labels; each essential
// relation's lattice section adds its own relation label on top.
func (run *Run) traverse(ctx context.Context, r *relation.Relation) gathered {
	var g gathered
	if err := run.gov.cancelled(); err != nil {
		g.err = err
		return g
	}
	if run.reusable != nil && run.reusable[r.Index] {
		// The whole subtree is cone-clean: replay the memoized outputs
		// and skip the lattice entirely. Only r's own outgoing targets
		// surface — interior relations' targets were consumed inside
		// the memoized traversal, exactly as they would be live.
		run.replayOutputs(r, &g)
		if out := run.memo.outs[r.Index]; out != nil {
			g.out = make([]*target, 0, len(out.out))
			for _, t := range out.out {
				g.out = append(g.out, t.clone())
			}
		}
		return g
	}
	if run.opts.Parallel && len(r.Children) > 1 {
		results := make([]gathered, len(r.Children))
		if run.tr != nil {
			trace.Emit(run.tr, &trace.Event{Kind: trace.KindGovernor, Action: "worker_spawn",
				Workers: len(r.Children), Detail: "subtree workers under " + string(r.Pivot)})
		}
		// A worker panic must not unwind past its goroutine's stack
		// (that would kill the process); workerGroup turns it into
		// this subtree's error, joining the others in child order.
		var grp workerGroup
		for i, c := range r.Children {
			grp.Go(fmt.Sprintf("parallel discovery worker for subtree %s", c.Pivot),
				func(err error) { results[i] = gathered{err: err} },
				func() { results[i] = run.traverse(ctx, c) })
		}
		grp.Wait()
		for i := range results {
			g.merge(&results[i])
		}
	} else {
		for _, c := range r.Children {
			cg := run.traverse(ctx, c)
			g.merge(&cg)
			if g.err != nil {
				break
			}
		}
	}
	if g.err != nil {
		return g
	}
	incoming := g.out
	g.out = nil
	if !r.Essential {
		// The synthetic root relation has a single tuple; no FD
		// over it is meaningful and no target can reach it.
		return g
	}
	if run.gov.expired() {
		// Out of wall-clock budget: keep what the subtree found,
		// skip this relation's lattice (graceful degradation).
		return g
	}
	if run.opts.RelationHook != nil {
		run.opts.RelationHook(r.Pivot)
	}
	g.stats.Relations++
	g.stats.Tuples += r.NRows()
	relStart := time.Now()
	nodesBefore := g.stats.NodesVisited
	if run.tr != nil {
		trace.Emit(run.tr, &trace.Event{Kind: trace.KindRelationStart,
			Relation: string(r.Pivot), Tuples: r.NRows(), Attrs: r.NAttrs()})
	}
	lr := &latticeRun{rel: r, opts: &run.opts, stats: &g.stats, depths: run.depths, incoming: incoming, gov: run.gov, cache: run.cache}
	if p := r.Parent; p != nil {
		lr.ni = nullInfo{parentAnyNull: run.anyNull[p.Index], aboveParent: p.Parent != nil && run.nullsAtOrAbove[p.Parent.Index]}
	}
	// The relation label scopes profile samples of this lattice
	// traversal (and the product workers it spawns) to the pivot.
	pprof.Do(ctx, pprof.Labels("xfd_relation", string(r.Pivot)), func(context.Context) {
		lr.run(run.xfd)
	})
	if lr.err != nil {
		g.err = lr.err
		if run.tr != nil {
			trace.Emit(run.tr, &trace.Event{Kind: trace.KindRelationEnd, Relation: string(r.Pivot),
				Nodes: g.stats.NodesVisited - nodesBefore, DurationMS: msSince(relStart), Err: lr.err.Error()})
		}
		return g
	}

	fdsBefore, keysBefore, approxBefore := len(g.fds), len(g.keys), len(g.approx)
	for _, e := range lr.out.intraFDs {
		if e.lhs == 0 && !run.opts.KeepConstantFDs {
			continue
		}
		g.fds = append(g.fds, intraFD(r, e))
	}
	for _, k := range lr.out.intraKeys {
		g.keys = append(g.keys, intraKey(r, k))
	}
	g.fds = append(g.fds, lr.out.interFDs...)
	g.keys = append(g.keys, lr.out.interKeys...)
	if run.opts.ApproxError > 0 {
		g.approx = append(g.approx, lr.discoverApprox(run.opts.ApproxError)...)
	}
	run.cache.retire(lr.pc)
	lr.close()
	g.out = lr.out.outgoing
	// Capture this relation's own outputs for the next memo. The
	// outgoing targets are stored as-is: this run's parent may append
	// to their satisfied lists, which replay resets via clone.
	run.memoOuts[r.Index] = &memoOutput{
		fds:    append([]FD(nil), g.fds[fdsBefore:]...),
		keys:   append([]Key(nil), g.keys[keysBefore:]...),
		approx: append([]FD(nil), g.approx[approxBefore:]...),
		out:    lr.out.outgoing,
		tuples: r.NRows(),
	}
	if run.tr != nil {
		trace.Emit(run.tr, &trace.Event{Kind: trace.KindRelationEnd, Relation: string(r.Pivot),
			Nodes: g.stats.NodesVisited - nodesBefore, DurationMS: msSince(relStart)})
	}
	return g
}

// replayOutputs walks a reused subtree post-order, appending each
// essential relation's memoized FDs, keys and approximate FDs to g and
// carrying the cached outputs forward into this run's memo slots. The
// trace stream still shows the relation spans, flagged as reused, so
// consumers see the same well-nested shape a live run emits.
func (run *Run) replayOutputs(r *relation.Relation, g *gathered) {
	for _, c := range r.Children {
		run.replayOutputs(c, g)
	}
	out := run.memo.outs[r.Index]
	run.memoOuts[r.Index] = out
	if !r.Essential || out == nil {
		return
	}
	if run.opts.RelationHook != nil {
		run.opts.RelationHook(r.Pivot)
	}
	g.stats.Relations++
	g.stats.RelationsReused++
	g.stats.Tuples += out.tuples
	g.fds = append(g.fds, out.fds...)
	g.keys = append(g.keys, out.keys...)
	g.approx = append(g.approx, out.approx...)
	if run.tr != nil {
		trace.Emit(run.tr, &trace.Event{Kind: trace.KindRelationStart,
			Relation: string(r.Pivot), Tuples: out.tuples, Attrs: r.NAttrs()})
		trace.Emit(run.tr, &trace.Event{Kind: trace.KindRelationEnd,
			Relation: string(r.Pivot), Detail: "subtree reused"})
	}
}

// memoSnapshot packages the run's per-relation outputs as the next
// subtree memo. Truncated runs publish nothing: a skipped relation has
// no outputs to replay, and a partial memo would silently pin the
// truncation into every warm repeat.
func (run *Run) memoSnapshot() *subtreeMemo {
	if run.res == nil || run.res.Stats.Truncated || run.memoOuts == nil {
		return nil
	}
	return &subtreeMemo{
		xfd:            run.xfd,
		outs:           run.memoOuts,
		dirty:          make([]bool, len(run.memoOuts)),
		anyNull:        run.anyNull,
		nullsAtOrAbove: run.nullsAtOrAbove,
	}
}

// minimize reduces the traversal's raw FD and key streams to minimal
// form: duplicate and superset-LHS FDs go, keys are minimized and
// sorted into the Result, and FDs whose LHS contains a discovered key
// are dropped (a superkey LHS indicates no redundancy). The surviving
// candidates are returned for verification.
func (run *Run) minimize(top *gathered) []FD {
	fds := minimizeFDs(top.fds)
	run.res.Keys = minimizeKeys(top.keys)
	fds = dropSuperkeyLHS(fds, run.res.Keys)
	sortKeys(run.res.Keys)
	return fds
}

// verify applies the Definition 11 filter: an FD indicates a
// redundancy iff its LHS is not a key of the class. Lattice key
// pruning and the superkey filter in minimize remove almost all such
// FDs; the final check against the independent evaluator (which also
// provides the witness counts) guarantees the invariant exactly.
// Intra-relation FDs reuse the run's partition cache (see verifyFD).
func (run *Run) verify(fds []FD) error {
	for _, fd := range fds {
		if err := run.gov.cancelled(); err != nil {
			return err
		}
		ev, err := verifyFD(run.cache, run.h, fd, run.opts.NaivePartitions)
		if err != nil {
			return err
		}
		if ev.LHSIsKey {
			continue
		}
		run.res.FDs = append(run.res.FDs, fd)
		run.res.Redundancies = append(run.res.Redundancies, Redundancy{
			FD:              fd,
			RedundantValues: ev.Witnesses,
			Groups:          ev.WitnessGroups,
		})
	}
	return nil
}

// assemble puts the Result into its deterministic output order, folds
// the approximate pass in (minimal, not implied by an exact FD), and
// stamps the truncation status and cache counters.
func (run *Run) assemble(rawApprox []FD) {
	res := run.res
	sortFDs(res.FDs)
	sortRedundancies(res.Redundancies)
	if len(rawApprox) > 0 {
		res.ApproxFDs = minimizeApprox(rawApprox, res.FDs)
		sortFDs(res.ApproxFDs)
	}
	res.Stats.Truncated, res.Stats.TruncatedReason = run.gov.status()
	run.cache.flushStats(&res.Stats)
}
