package core

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"runtime/debug"
	"sync"
	"time"

	"discoverxfd/internal/trace"
)

// governor is the resource-governance state shared by one discovery
// run. It distinguishes two ways a run can end early:
//
//   - cancellation (the context fired): the run aborts with an error;
//   - budget exhaustion (the wall-clock deadline passed, or a search
//     bound such as MaxLatticeLevel cut the traversal): the run keeps
//     whatever it has found and reports a partial Result with
//     Stats.Truncated set — graceful degradation, never an error.
//
// All methods are safe for concurrent use by parallel discovery
// workers and are no-ops on a nil receiver, so ungoverned entry
// points need no special casing.
type governor struct {
	ctx      context.Context
	deadline time.Time // zero = no wall-clock budget

	// tr is the run-stamped tracer (nil = untraced). Governor events
	// are emitted outside mu: a slow tracing backend must never hold
	// up the workers polling expired/cancelled.
	tr trace.Tracer

	mu        sync.Mutex
	truncated bool   // guarded by mu
	reason    string // guarded by mu
}

func newGovernor(ctx context.Context, opts *Options) *governor {
	if ctx == nil {
		//lint:ctxplumb a nil ctx marks a legacy ungoverned entry point; Background is its documented never-cancelled default
		ctx = context.Background()
	}
	return &governor{ctx: ctx, deadline: opts.Deadline, tr: opts.Tracer}
}

// cancelled returns a wrapped context error once the context fires.
//
// One carve-out keeps deadline composition deterministic: when the
// context died of its own *deadline* and the run's wall-clock budget
// is also spent, the exhaustion is treated as budget truncation — the
// run winds down through the expired() checks and returns the partial
// Result found so far, never an error. The public layer composes the
// governor deadline as min(Limits.Deadline, ctx deadline), so a fired
// context deadline always implies an expired budget; without the
// carve-out the two checks would race and the outcome (partial result
// versus error) would depend on which poll site ran first. Explicit
// cancellation (context.Canceled) always aborts with an error.
func (g *governor) cancelled() error {
	if g == nil || g.ctx == nil {
		return nil
	}
	select {
	case <-g.ctx.Done():
		if errors.Is(g.ctx.Err(), context.DeadlineExceeded) && g.expired() {
			return nil
		}
		return fmt.Errorf("core: discovery cancelled: %w", g.ctx.Err())
	default:
		return nil
	}
}

// expired reports whether the wall-clock budget is spent, recording
// the truncation on first observation.
func (g *governor) expired() bool {
	if g == nil || g.deadline.IsZero() {
		return false
	}
	g.mu.Lock()
	if g.truncated {
		g.mu.Unlock()
		return true
	}
	if !time.Now().After(g.deadline) {
		g.mu.Unlock()
		return false
	}
	const reason = "deadline exceeded"
	g.truncated = true
	g.reason = reason
	g.mu.Unlock()
	g.emitTruncate(reason)
	return true
}

// emitTruncate reports a budget truncation to the trace. Called once
// per run (first observation wins), after the mutex is released.
func (g *governor) emitTruncate(reason string) {
	if g.tr != nil {
		trace.Emit(g.tr, &trace.Event{Kind: trace.KindGovernor, Action: "truncate", Detail: reason})
	}
}

// productWorkers returns how many goroutines a parallel partition
// product batch may use: the job count, capped at the machine's
// parallelism. Subtree workers each run their own batches; the Go
// scheduler multiplexes the short-lived product goroutines, and the
// cap keeps any single batch from flooding it. Nil-safe like every
// governor method (ungoverned tests run serial batches of one).
func (g *governor) productWorkers(jobs int) int {
	if g == nil {
		return 1
	}
	if p := runtime.GOMAXPROCS(0); jobs > p {
		return p
	}
	return jobs
}

// workerGroup launches the engine's parallel workers. It is the only
// place in the library allowed to start goroutines: every worker it
// spawns is joined by Wait, and a panic inside a worker is converted
// into an ordinary error carrying the worker's stack, so a bug in one
// worker surfaces as the run's error instead of crashing the process.
// The xfdlint govdiscipline analyzer enforces that bare `go`
// statements and raw sync.WaitGroup fan-out stay out of the rest of
// the engine (see docs/INTERNALS.md §10).
type workerGroup struct {
	//lint:governed workerGroup is the engine-wide spawn point; its WaitGroup is joined by Wait and guarded by the panic barrier in Go.
	wg sync.WaitGroup

	mu  sync.Mutex
	err error // guarded by mu
}

// Go runs fn on a new goroutine. A panic in fn is converted into an
// error naming what (e.g. "parallel product worker for relation R")
// and handed to catch; a nil catch retains the first such error for
// Wait to return. fn must do its own cancellation checks — the group
// guarantees only the join and the panic barrier.
func (g *workerGroup) Go(what string, catch func(error), fn func()) {
	g.wg.Add(1)
	//lint:governed this is the one sanctioned spawn: Wait joins the goroutine and the deferred recover below turns its panics into errors.
	go func() {
		defer g.wg.Done()
		defer func() {
			if p := recover(); p != nil {
				err := fmt.Errorf("core: panic in %s: %v\n%s", what, p, debug.Stack())
				if catch != nil {
					catch(err)
					return
				}
				g.mu.Lock()
				if g.err == nil {
					g.err = err
				}
				g.mu.Unlock()
			}
		}()
		fn()
	}()
}

// Wait joins every spawned worker and returns the first panic error
// recorded by a nil-catch Go, if any.
func (g *workerGroup) Wait() error {
	g.wg.Wait()
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.err
}

// truncate records a budget exhaustion; the first reason wins.
func (g *governor) truncate(reason string) {
	if g == nil {
		return
	}
	g.mu.Lock()
	first := !g.truncated
	if first {
		g.truncated = true
		g.reason = reason
	}
	g.mu.Unlock()
	if first {
		g.emitTruncate(reason)
	}
}

// status returns the truncation flag and reason for Stats.
func (g *governor) status() (bool, string) {
	if g == nil {
		return false, ""
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.truncated, g.reason
}
