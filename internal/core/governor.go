package core

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"time"
)

// governor is the resource-governance state shared by one discovery
// run. It distinguishes two ways a run can end early:
//
//   - cancellation (the context fired): the run aborts with an error;
//   - budget exhaustion (the wall-clock deadline passed, or a search
//     bound such as MaxLatticeLevel cut the traversal): the run keeps
//     whatever it has found and reports a partial Result with
//     Stats.Truncated set — graceful degradation, never an error.
//
// All methods are safe for concurrent use by parallel discovery
// workers and are no-ops on a nil receiver, so ungoverned entry
// points need no special casing.
type governor struct {
	ctx      context.Context
	deadline time.Time // zero = no wall-clock budget

	mu        sync.Mutex
	truncated bool
	reason    string
}

func newGovernor(ctx context.Context, opts *Options) *governor {
	if ctx == nil {
		ctx = context.Background()
	}
	return &governor{ctx: ctx, deadline: opts.Deadline}
}

// cancelled returns a wrapped context error once the context fires.
func (g *governor) cancelled() error {
	if g == nil || g.ctx == nil {
		return nil
	}
	select {
	case <-g.ctx.Done():
		return fmt.Errorf("core: discovery cancelled: %w", g.ctx.Err())
	default:
		return nil
	}
}

// expired reports whether the wall-clock budget is spent, recording
// the truncation on first observation.
func (g *governor) expired() bool {
	if g == nil || g.deadline.IsZero() {
		return false
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	if g.truncated {
		return true
	}
	if time.Now().After(g.deadline) {
		g.truncated = true
		g.reason = "deadline exceeded"
		return true
	}
	return false
}

// productWorkers returns how many goroutines a parallel partition
// product batch may use: the job count, capped at the machine's
// parallelism. Subtree workers each run their own batches; the Go
// scheduler multiplexes the short-lived product goroutines, and the
// cap keeps any single batch from flooding it. Nil-safe like every
// governor method (ungoverned tests run serial batches of one).
func (g *governor) productWorkers(jobs int) int {
	if g == nil {
		return 1
	}
	if p := runtime.GOMAXPROCS(0); jobs > p {
		return p
	}
	return jobs
}

// truncate records a budget exhaustion; the first reason wins.
func (g *governor) truncate(reason string) {
	if g == nil {
		return
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	if !g.truncated {
		g.truncated = true
		g.reason = reason
	}
}

// status returns the truncation flag and reason for Stats.
func (g *governor) status() (bool, string) {
	if g == nil {
		return false, ""
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.truncated, g.reason
}
