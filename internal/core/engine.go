package core

import (
	"context"
	"sync"
	"time"

	"discoverxfd/internal/partition"
	"discoverxfd/internal/relation"
	"discoverxfd/internal/schema"
)

// Engine is a reusable discovery engine: construct it once from an
// Options value and call Discover / DiscoverIntra / Evaluate from as
// many goroutines as you like. Each call builds its own Run (governor,
// partition cache, stats — see run.go), so concurrent calls are fully
// isolated; the only state an Engine shares across runs is a warm
// layer of immutable partitions, keyed by hierarchy, that repeated
// runs over the same document reuse instead of recomputing (the E14
// engine-reuse benchmark measures the effect).
//
// Sharing contract: partitions are immutable after construction (the
// partimmut analyzer enforces this), so handing the same *Partition to
// several runs is safe. The warm layer is invalidated at run scope —
// a finishing run replaces its hierarchy's entry wholesale with the
// partitions its own cache retained (already trimmed to the run's
// MaxPartitionBytes budget), and the oldest hierarchies are evicted
// beyond a small cap. Runs under Options.NaivePartitions never seed
// from nor publish to the warm layer: the naive engine is the
// differential baseline and must stay bit-for-bit cold.
type Engine struct {
	opts Options

	mu   sync.Mutex
	warm []*warmHierarchy // guarded by mu

	// met is the engine's cumulative run instrumentation (see
	// Metrics); all of its methods are nil-engine safe, so the legacy
	// one-shot wrappers (which run with a nil *Engine) need no guards.
	met engineMetrics
}

// warmHierarchy is the retained partition set of one hierarchy. The
// parts maps are built fresh by snapshot and never mutated afterwards,
// so concurrent seeding runs may read them without the Engine lock.
type warmHierarchy struct {
	h     *relation.Hierarchy
	parts map[*relation.Relation]map[AttrSet]*partition.Partition
	memo  *subtreeMemo
}

// subtreeMemo is the second half of the warm layer: the lattice
// outputs of every essential relation of the last successful,
// non-truncated run over a hierarchy. A later run skips the traversal
// of a whole subtree — no lattice nodes, no partition products, no
// target creation — when ApplyUpdate has touched nothing inside the
// subtree AND the subtree's two ancestor dependencies are intact: the
// null profiles its lattice consulted (nullInfo reaches the parent's
// null rows and every ancestor above) and the parent-row indices its
// outgoing target pairs are expressed in. The memo therefore keeps the
// builder run's null tables for comparison, and a resize — the one
// update that renumbers rows — dirties the resized relation's whole
// descendant subtree (see Run.planReuse).
//
// outs and the null tables are immutable after publish. dirty is
// written only by ApplyUpdate under the hierarchy's writer lock and
// read by runs under the reader lock, so the two never race.
type subtreeMemo struct {
	xfd   bool          // Discover (true) vs DiscoverIntra outputs
	outs  []*memoOutput // by Relation.Index; nil for non-essential or skipped
	dirty []bool        // by Relation.Index; set when an update touches the relation

	// Null tables of the run that built the memo (see Run.plan):
	// cached outputs assumed these, so reuse requires today's to match.
	anyNull        [][]bool
	nullsAtOrAbove []bool
}

// markDirty records that an update touched r. A resize additionally
// dirties r's entire descendant subtree: row deletion swap-moves rows
// and rewrites the children's ParentIdx without a RelChange of their
// own, which invalidates their cached outgoing targets (pairs live in
// parent-row space) even though the descendants' columns are
// unchanged.
func (m *subtreeMemo) markDirty(r *relation.Relation, resized bool) {
	if r.Index >= len(m.dirty) {
		return
	}
	m.dirty[r.Index] = true
	if !resized {
		return
	}
	for _, c := range r.Children {
		m.markDirty(c, true)
	}
}

// memoOutput is one essential relation's contribution to a run: its
// intra/inter FDs, keys and approximate FDs (already converted to
// public form) plus the outgoing targets it handed to its parent.
// Outgoing targets are replayed as clones — the consuming parent
// appends to a target's satisfied list, which must not leak across
// runs — while the FD/key slices are append-only shared.
type memoOutput struct {
	fds    []FD
	keys   []Key
	approx []FD
	out    []*target
	tuples int
}

// engineWarmHierarchies caps how many hierarchies' partitions an
// Engine retains; beyond it the least recently run hierarchy is
// dropped.
const engineWarmHierarchies = 4

// NewEngine returns an Engine that runs every call with the given
// options. The zero Options value is valid (it is DiscoverFD-style
// discovery without partial propagation); callers porting from the
// legacy Discover wrappers keep passing the same Options.
func NewEngine(opts Options) *Engine {
	return &Engine{opts: opts}
}

// Options returns a copy of the engine's configuration.
func (e *Engine) Options() Options { return e.opts }

// Discover runs the DiscoverXFD pipeline over the hierarchy (see
// DiscoverContext for the cancellation and truncation contract).
func (e *Engine) Discover(ctx context.Context, h *relation.Hierarchy) (*Result, error) {
	return e.discover(ctx, h, e.opts, !e.opts.NoInterRelation)
}

// DiscoverAt is Discover with a per-call wall-clock deadline,
// overriding the engine's configured Options.Deadline. The public
// layer computes the absolute instant from its relative Limits budget
// at each call boundary.
func (e *Engine) DiscoverAt(ctx context.Context, h *relation.Hierarchy, deadline time.Time) (*Result, error) {
	opts := e.opts
	opts.Deadline = deadline
	return e.discover(ctx, h, opts, !opts.NoInterRelation)
}

// DiscoverIntra runs DiscoverFD (Figure 8) independently on each
// essential relation: only intra-relation FDs and Keys are found,
// whatever the engine's NoInterRelation setting.
func (e *Engine) DiscoverIntra(ctx context.Context, h *relation.Hierarchy) (*Result, error) {
	opts := e.opts
	opts.NoInterRelation = true
	return e.discover(ctx, h, opts, false)
}

// DiscoverIntraAt is DiscoverIntra with a per-call deadline (see
// DiscoverAt).
func (e *Engine) DiscoverIntraAt(ctx context.Context, h *relation.Hierarchy, deadline time.Time) (*Result, error) {
	opts := e.opts
	opts.NoInterRelation = true
	opts.Deadline = deadline
	return e.discover(ctx, h, opts, false)
}

// Evaluate checks a single XML FD directly against a hierarchy,
// independent of discovery (see EvaluateContext). The hierarchy's
// reader lock is held for the duration, serializing against
// ApplyUpdate; the package-level EvaluateContext itself does not lock
// (discovery's FD verification calls it under discover's reader lock,
// and read locks do not nest safely with a writer waiting).
func (e *Engine) Evaluate(ctx context.Context, h *relation.Hierarchy, class schema.Path, lhs []schema.RelPath, rhs schema.RelPath) (Evaluation, error) {
	e.evaluated()
	h.RLock()
	defer h.RUnlock()
	return EvaluateContext(ctx, h, class, lhs, rhs)
}

// discover executes one run through the staged pipeline, wrapped in
// the engine's warm-partition layer. A nil receiver is valid and
// simply runs cold (no sharing), which is what the legacy one-shot
// wrappers use.
func (e *Engine) discover(ctx context.Context, h *relation.Hierarchy, opts Options, xfd bool) (*Result, error) {
	e.runStarted()
	run := newRun(ctx, h, opts, xfd)
	// Hold the hierarchy's reader lock across seed, execute, AND
	// publish: publishing inside the critical section is what keeps a
	// finishing run from installing pre-update partitions over a warm
	// entry ApplyUpdate just patched.
	h.RLock()
	defer h.RUnlock()
	share := e != nil && !opts.NaivePartitions
	if share {
		if warm, memo := e.warmFor(h); warm != nil {
			run.cache.seed(warm)
			run.memo = memo
			e.warmSeededRun()
		}
	}
	res, err := run.execute()
	if share && err == nil {
		e.publish(h, run.cache.snapshot(), run.memoSnapshot())
	}
	e.runDone(res, err)
	return res, err
}

// warmFor returns the retained partition maps and subtree memo for h,
// or nils. The returned maps and memo outputs are immutable (see
// warmHierarchy); only the slice bookkeeping needs the lock.
func (e *Engine) warmFor(h *relation.Hierarchy) (map[*relation.Relation]map[AttrSet]*partition.Partition, *subtreeMemo) {
	e.mu.Lock()
	defer e.mu.Unlock()
	for _, w := range e.warm {
		if w.h == h {
			return w.parts, w.memo
		}
	}
	return nil, nil
}

// publish installs a finished run's partition snapshot and subtree
// memo as the warm entry for h, replacing any previous entry
// (run-scoped invalidation) and evicting the oldest hierarchy beyond
// the cap. memo may be nil (truncated runs publish partitions only).
func (e *Engine) publish(h *relation.Hierarchy, parts map[*relation.Relation]map[AttrSet]*partition.Partition, memo *subtreeMemo) {
	if len(parts) == 0 && memo == nil {
		return
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	kept := e.warm[:0]
	for _, w := range e.warm {
		if w.h != h {
			kept = append(kept, w)
		}
	}
	e.warm = append(kept, &warmHierarchy{h: h, parts: parts, memo: memo})
	if len(e.warm) > engineWarmHierarchies {
		e.warm = append(e.warm[:0], e.warm[len(e.warm)-engineWarmHierarchies:]...)
	}
}
