package core

import (
	"slices"
	"sort"

	"discoverxfd/internal/partition"
	"discoverxfd/internal/relation"
	"discoverxfd/internal/schema"
	"discoverxfd/internal/trace"
)

// The target lifecycle helpers pair each Stats counter bump with its
// trace event, so every TargetsCreated/Propagated/Dropped increment
// in this package is observable in a traced run. The nil check keeps
// the untraced path at one pointer compare per lifecycle step.

// targetCreated records a new target with its deduplicated pair count.
func targetCreated(rel *relation.Relation, opts *Options, st *Stats, pairs int) {
	st.TargetsCreated++
	if opts.Tracer != nil {
		trace.Emit(opts.Tracer, &trace.Event{Kind: trace.KindTarget,
			Relation: string(rel.Pivot), Action: "create", Pairs: pairs})
	}
}

// targetPropagated records a target lifted one relation level up.
func targetPropagated(rel *relation.Relation, opts *Options, st *Stats, pairs int) {
	st.TargetsPropagated++
	if opts.Tracer != nil {
		trace.Emit(opts.Tracer, &trace.Event{Kind: trace.KindTarget,
			Relation: string(rel.Pivot), Action: "propagate", Pairs: pairs})
	}
}

// targetDropped records a target killed or withheld, naming the cause.
func targetDropped(rel *relation.Relation, opts *Options, st *Stats, detail string) {
	st.TargetsDropped++
	if opts.Tracer != nil {
		trace.Emit(opts.Tracer, &trace.Event{Kind: trace.KindTarget,
			Relation: string(rel.Pivot), Action: "drop", Detail: detail})
	}
}

// pair is one inequality t1 ≠ t2 over tuples of the relation the
// target currently lives at, normalized a ≤ b.
//
// A degenerate pair (p, p) arises when two origin tuples share the
// ancestor p: no value can distinguish them, but under strong
// satisfaction (Definition 7) a *missing* value at p or above makes
// the pair vacuous. The paper's updatePT returns NULL in this case,
// which silently assumes ancestor paths are never missing; this
// implementation keeps the degenerate pair — satisfiable only by a
// null-valued attribute — whenever some ancestor relation actually
// contains missing values, and collapses to NULL otherwise (the
// paper's fast path).
type pair struct{ a, b int32 }

func mkPair(a, b int32) pair {
	if a > b {
		a, b = b, a
	}
	return pair{a, b}
}

// lhsPart records attributes absorbed into a target's LHS at one
// relation level.
type lhsPart struct {
	rel   *relation.Relation
	attrs AttrSet
}

// target is a partition target (the paper's Figure 10 struct): a
// candidate partial FD — or, when keyOnly is set, a candidate partial
// Key — originating at relation origin, together with the
// inequalities (pairs) that ancestor attribute sets must satisfy for
// it to hold. Inequalities are expressed in tuple indices of the
// relation the target is currently checked at and are re-expressed on
// parent tuples as the target moves up (convert).
//
// The paper folds FDTarget and KeyTarget into one structure; this
// implementation splits them into two target kinds so that minimality
// bookkeeping (superset suppression per kind) stays correct: an
// attribute set that completes the FD must not suppress a larger set
// that would complete the Key. FDs whose LHS turns out to be a
// superkey are removed by a final filter instead (Definition 11
// excludes them from indicating redundancy).
type target struct {
	origin *relation.Relation // relation of the tuple class C
	lhs0   AttrSet            // LHS attributes at the origin relation
	rhs    int                // RHS attribute index (regular targets)
	parts  []lhsPart          // attributes absorbed at intermediate levels

	// keyOnly marks candidate partial Keys: lhs0 is a key within
	// every parent but not globally; rhs is meaningless.
	keyOnly bool

	pairs []pair

	// satisfied lists minimal attribute sets of the current relation
	// that already completed the target, for superset suppression.
	satisfied []AttrSet
}

// clone returns a copy safe to offer to a fresh run: the satisfied
// list is reset (the consuming relation appends to it per level), and
// the immutable pairs and parts are shared. The warm layer hands out
// clones of cached outgoing targets so that one run's minimality
// bookkeeping never leaks into the next.
func (t *target) clone() *target {
	c := *t
	c.satisfied = nil
	return &c
}

// pairSet deduplicates pairs during construction, keyed on a packed
// uint64. A map beats sort-and-compact here because duplicate pairs
// across partition groups are common: the deduplicated set is often
// far smaller than the raw pair stream, and the cap applies to the
// deduplicated size.
type pairSet struct {
	m        map[uint64]struct{}
	max      int
	overflow bool
}

func newPairSet(max int) *pairSet {
	return &pairSet{m: make(map[uint64]struct{}), max: max}
}

func (ps *pairSet) add(p pair) {
	if ps.overflow {
		return
	}
	if len(ps.m) >= ps.max {
		ps.overflow = true
		return
	}
	ps.m[uint64(uint32(p.a))<<32|uint64(uint32(p.b))] = struct{}{}
}

func (ps *pairSet) slice() []pair {
	out := make([]pair, 0, len(ps.m))
	for v := range ps.m {
		out = append(out, pair{a: int32(v >> 32), b: int32(uint32(v))})
	}
	// Deterministic order for downstream reproducibility.
	sort.Slice(out, func(i, j int) bool {
		if out[i].a != out[j].a {
			return out[i].a < out[j].a
		}
		return out[i].b < out[j].b
	})
	return out
}

// nullInfo tells target construction whether a degenerate pair at a
// given parent tuple can ever be satisfied vacuously: the parent
// relation must have a missing value in that row, or missing values
// must exist strictly above it.
type nullInfo struct {
	parentAnyNull []bool // per parent-relation row: any column null
	aboveParent   bool   // nulls anywhere strictly above the parent
}

// keep reports whether a degenerate pair at parent tuple p is worth
// tracking.
func (ni nullInfo) keep(p int32) bool {
	if ni.aboveParent {
		return true
	}
	return ni.parentAnyNull != nil && ni.parentAnyNull[p]
}

// separated reports whether the attribute set described by gids and
// nulls satisfies the inequality p under strong satisfaction: a
// degenerate pair is vacuously satisfied iff some attribute of the
// set is missing at that tuple; a distinct pair is satisfied iff the
// partition separates the tuples. gids == nil means the attribute set
// is a key of its relation (separates every distinct pair).
func separated(p pair, gids []int32, nulls []bool) bool {
	if p.a == p.b {
		return nulls != nil && nulls[p.a]
	}
	if gids == nil {
		return true
	}
	return partition.Separates(gids, p.a, p.b)
}

// createTarget builds a candidate-partial-FD target from a failed
// intra-relation edge LHS → rhs at relation rel (Figure 10,
// creatept). plhs is Π_LHS; allIDs are the group ids of Π_{LHS∪rhs}.
// It returns nil when a violating pair shares a parent tuple and no
// ancestor relation has missing values that could satisfy it
// vacuously (Lemma 3 part 1, corrected for strong satisfaction).
func createTarget(rel *relation.Relation, lhs AttrSet, rhs int,
	plhs *partition.Partition, nAllGroups int, allIDs []int32,
	ni nullInfo, opts *Options, st *Stats) *target {

	parents := rel.ParentIdx
	fdSet := newPairSet(opts.maxTargetPairs())

	// For each Π_LHS group, split tuples by their Π_{LHS∪rhs} group
	// (stripped singletons are their own subgroup). Cross-subgroup
	// tuple pairs violate the FD at this level and must be separated
	// — or vacuously excused — by their ancestors.
	for _, g := range plhs.Groups {
		buckets := make(map[int32][]int32)
		next := int32(nAllGroups)
		for _, t := range g {
			b := allIDs[t]
			if b < 0 {
				b = next
				next++
			}
			buckets[b] = append(buckets[b], t)
		}
		if len(buckets) == 1 {
			continue // no violation within this group
		}
		// Distinct parents per bucket; a parent spanning two buckets
		// yields a degenerate pair. Buckets are visited in ascending id
		// order: a spanning parent is attributed to the first bucket
		// that reaches it, so map order here would change which
		// cross-bucket pairs are enumerated below.
		bucketIDs := make([]int32, 0, len(buckets))
		for b := range buckets {
			bucketIDs = append(bucketIDs, b)
		}
		slices.Sort(bucketIDs)
		bucketParents := make(map[int32][]int32)
		parentBucket := make(map[int32]int32)
		for _, b := range bucketIDs {
			for _, t := range buckets[b] {
				p := parents[t]
				if pb, ok := parentBucket[p]; ok {
					if pb != b {
						if !ni.keep(p) {
							targetDropped(rel, opts, st, "degenerate pair unsatisfiable")
							return nil
						}
						fdSet.add(pair{p, p})
					}
					continue
				}
				parentBucket[p] = b
				bucketParents[b] = append(bucketParents[b], p)
			}
		}
		// All cross-bucket parent pairs must be separated upstream.
		// Bound the enumeration first: Σ_{i<j} |P_i|·|P_j| =
		// (T² − Σ|P_i|²)/2.
		bps := make([][]int32, 0, len(bucketParents))
		total, sq := 0, 0
		for _, b := range bucketIDs {
			ps, ok := bucketParents[b]
			if !ok {
				continue
			}
			bps = append(bps, ps)
			total += len(ps)
			sq += len(ps) * len(ps)
		}
		if (total*total-sq)/2 > opts.maxTargetPairs() {
			targetDropped(rel, opts, st, "pair bound exceeded")
			return nil
		}
		for i := 0; i < len(bps); i++ {
			for j := i + 1; j < len(bps); j++ {
				for _, p1 := range bps[i] {
					for _, p2 := range bps[j] {
						if p1 == p2 {
							continue // already recorded as degenerate
						}
						fdSet.add(mkPair(p1, p2))
					}
				}
			}
		}
	}
	if fdSet.overflow {
		targetDropped(rel, opts, st, "pair set overflow")
		return nil
	}
	ps := fdSet.slice()
	targetCreated(rel, opts, st, len(ps))
	return &target{
		origin: rel,
		lhs0:   lhs,
		rhs:    rhs,
		pairs:  ps,
	}
}

// createKeyTarget builds a candidate-partial-Key target for attribute
// set a at relation rel: a is not a key of the relation, but ancestor
// attributes could complete it into an inter-relation Key (the
// KeyTarget side of Figure 10). Two tuples agreeing on a under one
// parent yield a degenerate pair (key possible only through a missing
// ancestor value); with no nulls above, the target dies immediately.
func createKeyTarget(rel *relation.Relation, a AttrSet, pa *partition.Partition,
	ni nullInfo, opts *Options, st *Stats) *target {

	max := opts.maxTargetPairs()
	parents := rel.ParentIdx

	// Phase 1: distinct parents per group and an upper bound on the
	// pair count, so hopeless targets are dropped before any
	// quadratic enumeration.
	groupParents := make([][]int32, 0, len(pa.Groups))
	var degenerates []int32
	bound := 0
	for _, g := range pa.Groups {
		seen := make(map[int32]bool, len(g))
		ps := make([]int32, 0, len(g))
		for _, t := range g {
			p := parents[t]
			if seen[p] {
				if !ni.keep(p) {
					targetDropped(rel, opts, st, "degenerate pair unsatisfiable")
					return nil
				}
				degenerates = append(degenerates, p)
				continue
			}
			seen[p] = true
			ps = append(ps, p)
		}
		bound += len(ps) * (len(ps) - 1) / 2
		if bound > max {
			targetDropped(rel, opts, st, "pair bound exceeded")
			return nil
		}
		groupParents = append(groupParents, ps)
	}

	keySet := newPairSet(max)
	for _, p := range degenerates {
		keySet.add(pair{p, p})
	}
	for _, ps := range groupParents {
		for i := 0; i < len(ps); i++ {
			for j := i + 1; j < len(ps); j++ {
				keySet.add(mkPair(ps[i], ps[j]))
			}
		}
	}
	if keySet.overflow {
		targetDropped(rel, opts, st, "pair set overflow")
		return nil
	}
	ps := keySet.slice()
	targetCreated(rel, opts, st, len(ps))
	return &target{
		origin:  rel,
		lhs0:    a,
		keyOnly: true,
		pairs:   ps,
	}
}

// convert lifts the target one level up (Figure 10, updatePT):
// inequalities not already satisfied by (gids, nulls) — both nil for
// a pure conversion — are re-expressed on parent tuples of rel.
// ni tells whether a collapsing pair can still be satisfied by a
// missing value at or above the parent; otherwise it kills the
// target. The satisfied list resets: minimality bookkeeping is per
// level.
func (t *target) convert(rel *relation.Relation, gids []int32, nulls []bool,
	absorbed AttrSet, ni nullInfo, opts *Options, st *Stats) *target {

	parents := rel.ParentIdx
	set := newPairSet(opts.maxTargetPairs())
	for _, p := range t.pairs {
		if (gids != nil || nulls != nil) && separated(p, gids, nulls) {
			continue
		}
		pa, pb := parents[p.a], parents[p.b]
		if pa == pb && !ni.keep(pa) {
			targetDropped(rel, opts, st, "degenerate pair unsatisfiable at parent")
			return nil
		}
		set.add(mkPair(pa, pb))
	}
	if set.overflow {
		targetDropped(rel, opts, st, "pair set overflow")
		return nil
	}
	parts := t.parts
	if absorbed != 0 {
		parts = append(append([]lhsPart(nil), t.parts...), lhsPart{rel: rel, attrs: absorbed})
	}
	ps := set.slice()
	targetPropagated(rel, opts, st, len(ps))
	return &target{
		origin:  t.origin,
		lhs0:    t.lhs0,
		rhs:     t.rhs,
		parts:   parts,
		keyOnly: t.keyOnly,
		pairs:   ps,
	}
}

// satisfiedBy reports whether the attribute set described by (gids,
// nulls) satisfies every inequality. gids == nil means the set is a
// key of the relation (Figure 9 line 18); nulls must still be
// supplied for degenerate pairs.
func (t *target) satisfiedBy(gids []int32, nulls []bool) bool {
	for _, p := range t.pairs {
		if !separated(p, gids, nulls) {
			return false
		}
	}
	return true
}

// remaining counts pairs not separated by (gids, nulls).
func (t *target) remaining(gids []int32, nulls []bool) int {
	n := 0
	for _, p := range t.pairs {
		if !separated(p, gids, nulls) {
			n++
		}
	}
	return n
}

// fdAt materializes the inter-relation FD obtained by absorbing
// attribute set a of relation rel into the target's LHS, with all
// paths relativized to the origin pivot.
func (t *target) fdAt(rel *relation.Relation, a AttrSet, depths []int) FD {
	lhs := t.lhsRels(depths)
	lhs = append(lhs, relPathsFor(rel, a, t.origin, depths)...)
	sortRels(lhs)
	return FD{Class: t.origin.Pivot, LHS: lhs, RHS: t.origin.Attrs[t.rhs].Rel, Inter: true}
}

// keyAt materializes the inter-relation Key analogously.
func (t *target) keyAt(rel *relation.Relation, a AttrSet, depths []int) Key {
	lhs := t.lhsRels(depths)
	lhs = append(lhs, relPathsFor(rel, a, t.origin, depths)...)
	sortRels(lhs)
	return Key{Class: t.origin.Pivot, LHS: lhs, Inter: true}
}

func (t *target) lhsRels(depths []int) []schema.RelPath {
	lhs := relPathsFor(t.origin, t.lhs0, t.origin, depths)
	for _, part := range t.parts {
		lhs = append(lhs, relPathsFor(part.rel, part.attrs, t.origin, depths)...)
	}
	return lhs
}

// relPathsFor expresses attributes of relation rel relative to the
// pivot of the origin relation, e.g. attribute ./contact/name of
// R_store becomes ../contact/name for origin class C_book. depths is
// the run's Relation.Index-indexed depth table (see Run.plan).
func relPathsFor(rel *relation.Relation, a AttrSet, origin *relation.Relation, depths []int) []schema.RelPath {
	ups := depths[origin.Index] - depths[rel.Index]
	out := make([]schema.RelPath, 0, a.Size())
	for _, i := range a.Attrs() {
		out = append(out, liftRelPath(rel.Attrs[i].Rel, ups))
	}
	return out
}

// liftRelPath prefixes a pivot-relative path with ups ".." steps.
func liftRelPath(r schema.RelPath, ups int) schema.RelPath {
	if ups == 0 {
		return r
	}
	prefix := ""
	for i := 0; i < ups; i++ {
		if i > 0 {
			prefix += "/"
		}
		prefix += ".."
	}
	s := string(r)
	switch {
	case s == ".":
		return schema.RelPath(prefix)
	default:
		return schema.RelPath(prefix + "/" + trimDotSlash(s))
	}
}

func trimDotSlash(s string) string {
	if len(s) >= 2 && s[0] == '.' && s[1] == '/' {
		return s[2:]
	}
	return s
}
