package core

import (
	"strings"
	"testing"

	"discoverxfd/internal/relation"
)

func TestParseFDRoundTrip(t *testing.T) {
	inputs := []string{
		"{./ISBN} -> ./title w.r.t. C(/warehouse/state/store/book)",
		"{../contact/name, ./ISBN} -> ./price w.r.t. C(/warehouse/state/store/book)",
		"{./author, ./title} -> ./ISBN w.r.t. C(/warehouse/state/store/book)",
		"{../../rname, ../sname, ./kind} -> ./rack w.r.t. C(/org/region/site/machine)",
		"{.} -> ./x w.r.t. C(/a/b)",
		"{..} -> ./x w.r.t. C(/a/b)",
	}
	for _, in := range inputs {
		fd, err := ParseFD(in)
		if err != nil {
			t.Fatalf("ParseFD(%q): %v", in, err)
		}
		if fd.String() != in {
			t.Errorf("round trip: %q -> %q", in, fd.String())
		}
	}
}

func TestParseKeyRoundTrip(t *testing.T) {
	in := "{./ISBN, ./title} KEY of C(/w/s/b)"
	c, err := ParseConstraint(in)
	if err != nil {
		t.Fatal(err)
	}
	if !c.IsKey || c.String() != in {
		t.Fatalf("key round trip: %q -> %q (isKey=%v)", in, c.String(), c.IsKey)
	}
	if _, err := ParseFD(in); err == nil {
		t.Fatal("ParseFD must reject a Key spec")
	}
}

func TestParseConstraintErrors(t *testing.T) {
	bad := []struct{ in, sub string }{
		{"", "must start with '{'"},
		{"{./a -> ./b w.r.t. C(/x)", "unterminated"},
		{"{./a} => ./b w.r.t. C(/x)", "expected '->'"},
		{"{./a} -> ./b wrt C(/x)", "w.r.t."},
		{"{./a} -> ./b w.r.t. /x", "C(<path>)"},
		{"{./a} -> ./b w.r.t. C(x)", "invalid class path"},
		{"{a/b} -> ./b w.r.t. C(/x)", "must start with"},
		{"{./a/../b} -> ./c w.r.t. C(/x)", "after a label"},
		{"{.//a} -> ./b w.r.t. C(/x)", "empty step"},
		{"{} KEY of C(/x)", "non-empty LHS"},
		{"{./a} -> . w.r.t. C(/x)", ""}, // "." RHS is legal
	}
	for _, c := range bad {
		_, err := ParseConstraint(c.in)
		if c.sub == "" {
			if err != nil {
				t.Errorf("ParseConstraint(%q) unexpected error: %v", c.in, err)
			}
			continue
		}
		if err == nil || !strings.Contains(err.Error(), c.sub) {
			t.Errorf("ParseConstraint(%q) error %v, want substring %q", c.in, err, c.sub)
		}
	}
}

func TestParseConstraintsFile(t *testing.T) {
	text := `
# warehouse constraints
{./ISBN} -> ./title w.r.t. C(/warehouse/state/store/book)

{./contact} KEY of C(/warehouse/state/store)
`
	cs, err := ParseConstraints(text)
	if err != nil {
		t.Fatal(err)
	}
	if len(cs) != 2 || cs[0].IsKey || !cs[1].IsKey {
		t.Fatalf("parsed: %v", cs)
	}
	if _, err := ParseConstraints("{bad"); err == nil || !strings.Contains(err.Error(), "line 1") {
		t.Fatalf("line numbers missing from error: %v", err)
	}
}

// TestParsedConstraintsEvaluate ensures parsed constraints plug
// straight into the evaluator.
func TestParsedConstraintsEvaluate(t *testing.T) {
	h := buildWarehouse(t, relation.Options{})
	cs, err := ParseConstraints(`
{./ISBN} -> ./title w.r.t. C(/warehouse/state/store/book)
{../contact/name, ./ISBN} -> ./price w.r.t. C(/warehouse/state/store/book)
{./contact} KEY of C(/warehouse/state/store)
{./ISBN} -> ./price w.r.t. C(/warehouse/state/store/book)
`)
	if err != nil {
		t.Fatal(err)
	}
	wantHolds := []bool{true, true, true, false}
	for i, c := range cs {
		rhs := c.FD.RHS
		if c.IsKey {
			rel := h.ByPivot(c.FD.Class)
			rhs = rel.Attrs[0].Rel
		}
		ev, err := Evaluate(h, c.FD.Class, c.FD.LHS, rhs)
		if err != nil {
			t.Fatalf("evaluate %s: %v", c, err)
		}
		holds := ev.Holds
		if c.IsKey {
			holds = ev.LHSIsKey
		}
		if holds != wantHolds[i] {
			t.Errorf("%s: holds=%v, want %v", c, holds, wantHolds[i])
		}
	}
}
