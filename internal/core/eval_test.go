package core

import (
	"strings"
	"testing"

	"discoverxfd/internal/datatree"
	"discoverxfd/internal/relation"
	"discoverxfd/internal/schema"
)

func evalHierarchy(t *testing.T, xml, schemaText string) *relation.Hierarchy {
	t.Helper()
	tree, err := datatree.ParseXMLString(xml)
	if err != nil {
		t.Fatal(err)
	}
	s := schema.MustParse(schemaText)
	h, err := relation.Build(tree, s, relation.Options{})
	if err != nil {
		t.Fatal(err)
	}
	return h
}

const evalSchema = `
w: Rcd
  g: SetOf Rcd
    gx: str
    c: SetOf Rcd
      a: str
      b: str
`

func TestEvaluateErrors(t *testing.T) {
	h := evalHierarchy(t, `<w><g><gx>1</gx><c><a>x</a><b>y</b></c></g></w>`, evalSchema)
	cases := []struct {
		class   schema.Path
		lhs     []schema.RelPath
		rhs     schema.RelPath
		wantSub string
	}{
		{"/w/nope", []schema.RelPath{"./a"}, "./b", "no tuple class"},
		{"/w/g/c", []schema.RelPath{"./missing"}, "./b", "not an attribute"},
		{"/w/g/c", []schema.RelPath{"../../../x"}, "./b", "above the root"},
		{"/w/g/c", []schema.RelPath{"./a"}, "../gx", "must stay within"},
	}
	for _, c := range cases {
		_, err := Evaluate(h, c.class, c.lhs, c.rhs)
		if err == nil || !strings.Contains(err.Error(), c.wantSub) {
			t.Errorf("Evaluate(%v -> %v): err %v, want substring %q", c.lhs, c.rhs, err, c.wantSub)
		}
	}
}

func TestEvaluateVacuousNullLHS(t *testing.T) {
	// The gx of the second group is missing, so its c tuples are
	// vacuous for any LHS containing ../gx: the FD holds even though
	// their b values differ for equal a.
	h := evalHierarchy(t, `
<w>
  <g><gx>1</gx>
     <c><a>x</a><b>p</b></c></g>
  <g>
     <c><a>x</a><b>q</b></c>
     <c><a>x</a><b>r</b></c></g>
</w>`, evalSchema)
	ev, err := Evaluate(h, "/w/g/c", []schema.RelPath{"../gx", "./a"}, "./b")
	if err != nil {
		t.Fatal(err)
	}
	if !ev.Holds {
		t.Fatalf("pairs with a missing LHS value are vacuous (Definition 7); got %+v", ev)
	}
	// Without ../gx in the LHS, the two disagreeing tuples collide.
	ev, err = Evaluate(h, "/w/g/c", []schema.RelPath{"./a"}, "./b")
	if err != nil {
		t.Fatal(err)
	}
	if ev.Holds {
		t.Fatal("{./a} -> ./b must be violated")
	}
}

func TestEvaluateNullRHSViolates(t *testing.T) {
	// Two tuples agree on a, one has no b: strong satisfaction
	// requires a non-null RHS, so the FD is violated.
	h := evalHierarchy(t, `
<w><g><gx>1</gx>
  <c><a>x</a><b>p</b></c>
  <c><a>x</a></c>
</g></w>`, evalSchema)
	ev, err := Evaluate(h, "/w/g/c", []schema.RelPath{"./a"}, "./b")
	if err != nil {
		t.Fatal(err)
	}
	if ev.Holds {
		t.Fatal("missing RHS in an agreeing pair must violate the FD")
	}
	if ev.Error <= 0 {
		t.Fatalf("g3 must be positive: %+v", ev)
	}
}

func TestEvaluateSelfValuePath(t *testing.T) {
	// For a simple set element, "." addresses the member's own value.
	h2 := evalHierarchy(t, `
<w><g>
  <m>u</m><m>u</m><m>v</m>
</g></w>`, `
w: Rcd
  g: SetOf Rcd
    m: SetOf str
`)
	// {.} -> . is trivial and rejected at the FD level, but "." works
	// as an attribute: two m members with equal values witness that
	// "." is not a key.
	ev, err := Evaluate(h2, "/w/g/m", []schema.RelPath{"."}, ".")
	if err != nil {
		t.Fatal(err)
	}
	if ev.LHSIsKey {
		t.Fatal("duplicated member values: '.' must not be a key of C_m")
	}
}
