package core

import (
	"testing"

	"discoverxfd/internal/datatree"
	"discoverxfd/internal/relation"
	"discoverxfd/internal/schema"
	"discoverxfd/internal/xmlgen"
)

func datatreeParse(xml string) (*datatree.Tree, error) { return datatree.ParseXMLString(xml) }

func schemaParse(text string) *schema.Schema { return schema.MustParse(text) }

// TestStatsConsistency sanity-checks the instrumentation: counters
// non-negative and internally consistent, times non-negative, tuple
// counts matching the hierarchy.
func TestStatsConsistency(t *testing.T) {
	ds := xmlgen.PSD(xmlgen.DefaultPSD())
	h, err := relation.Build(ds.Tree, ds.Schema, relation.Options{})
	if err != nil {
		t.Fatal(err)
	}
	res, err := Discover(h, Options{PropagatePartial: true})
	if err != nil {
		t.Fatal(err)
	}
	st := res.Stats
	if st.Relations != len(h.EssentialRelations()) {
		t.Errorf("Relations = %d, want %d", st.Relations, len(h.EssentialRelations()))
	}
	if st.Tuples != h.TotalTuples() {
		t.Errorf("Tuples = %d, want %d", st.Tuples, h.TotalTuples())
	}
	if st.NodesVisited <= 0 || st.PartitionsComputed < 0 {
		t.Errorf("lattice counters wrong: %+v", st)
	}
	if st.IntraTime < 0 || st.InterTime < 0 {
		t.Errorf("negative times: intra=%v inter=%v", st.IntraTime, st.InterTime)
	}
	if st.TargetsCreated < 0 || st.TargetsPropagated < 0 || st.TargetsDropped < 0 || st.TargetChecks < 0 {
		t.Errorf("negative target counters: %+v", st)
	}
	// Every reported inter FD requires at least one target check.
	inter := 0
	for _, fd := range res.FDs {
		if fd.Inter {
			inter++
		}
	}
	if inter > 0 && st.TargetChecks == 0 {
		t.Errorf("inter FDs without target checks: %+v", st)
	}
}

// TestStatsTimeAccounting pins the documented IntraTime/InterTime
// semantics (see Stats): the two buckets are exclusive, so in a
// serial run their sum cannot exceed the run's wall clock — the
// regression check for double-counting. Under Parallel they are
// summed worker time and only individual non-negativity holds, which
// TestStatsConsistency already covers.
func TestStatsTimeAccounting(t *testing.T) {
	ds := xmlgen.PSD(xmlgen.DefaultPSD())
	h, err := relation.Build(ds.Tree, ds.Schema, relation.Options{})
	if err != nil {
		t.Fatal(err)
	}
	res, err := Discover(h, Options{PropagatePartial: true})
	if err != nil {
		t.Fatal(err)
	}
	st := res.Stats
	if st.WallTime <= 0 {
		t.Fatalf("WallTime = %v, want > 0", st.WallTime)
	}
	if sum := st.IntraTime + st.InterTime; sum > st.WallTime {
		t.Errorf("serial run double-counts time: intra %v + inter %v > wall %v",
			st.IntraTime, st.InterTime, st.WallTime)
	}

	// Parallel: wall time still stamped, component times non-negative
	// (they are summed worker time and may legitimately exceed wall).
	pres, err := Discover(h, Options{PropagatePartial: true, Parallel: true})
	if err != nil {
		t.Fatal(err)
	}
	if pres.Stats.WallTime <= 0 {
		t.Errorf("parallel WallTime = %v, want > 0", pres.Stats.WallTime)
	}
	if pres.Stats.IntraTime < 0 || pres.Stats.InterTime < 0 {
		t.Errorf("negative component times: %+v", pres.Stats)
	}
}

// TestMergeStats checks the parallel-merge accumulator.
func TestMergeStats(t *testing.T) {
	a := Stats{Relations: 1, Tuples: 10, NodesVisited: 5, IntraTime: 100, InterTime: 7}
	b := Stats{Relations: 2, Tuples: 20, NodesVisited: 7, TargetsCreated: 3, IntraTime: 50}
	mergeStats(&a, &b)
	if a.Relations != 3 || a.Tuples != 30 || a.NodesVisited != 12 ||
		a.TargetsCreated != 3 || a.IntraTime != 150 || a.InterTime != 7 {
		t.Fatalf("mergeStats wrong: %+v", a)
	}
}

// TestLargeScaleSmoke runs full discovery on substantially larger
// documents than the benchmarks use, as an overflow/robustness check
// (skipped in -short).
func TestLargeScaleSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	au := xmlgen.DefaultAuction()
	au.Factor = 32
	ds := xmlgen.Auction(au)
	h, err := relation.Build(ds.Tree, ds.Schema, relation.Options{})
	if err != nil {
		t.Fatal(err)
	}
	res, err := Discover(h, Options{PropagatePartial: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.Tuples != h.TotalTuples() || len(res.FDs) == 0 {
		t.Fatalf("large run inconsistent: %+v, %d FDs", res.Stats, len(res.FDs))
	}
	for _, c := range ds.GroundTruth {
		if c.Key {
			continue
		}
		if !impliedFD(res, c.Class, c.LHS, c.RHS) {
			t.Errorf("ground truth lost at scale: %s", c)
		}
	}
}

// TestKeepConstantFDs checks the constant-column policy: an FD with
// an empty LHS is suppressed by default and reported with the flag.
func TestKeepConstantFDs(t *testing.T) {
	tree, err := datatreeParse(`
<db>
  <row><a>same</a><b>1</b></row>
  <row><a>same</a><b>2</b></row>
  <row><a>same</a><b>3</b></row>
</db>`)
	if err != nil {
		t.Fatal(err)
	}
	s := schemaParse("db: Rcd\n  row: SetOf Rcd\n    a: str\n    b: str")
	h, err := relation.Build(tree, s, relation.Options{})
	if err != nil {
		t.Fatal(err)
	}
	res, err := Discover(h, Options{PropagatePartial: true})
	if err != nil {
		t.Fatal(err)
	}
	for _, fd := range res.FDs {
		if len(fd.LHS) == 0 {
			t.Fatalf("constant FD reported without the flag: %s", fd)
		}
	}
	res, err = Discover(h, Options{PropagatePartial: true, KeepConstantFDs: true})
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, fd := range res.FDs {
		if len(fd.LHS) == 0 && fd.RHS == "./a" {
			found = true
		}
	}
	if !found {
		t.Fatalf("constant column not reported with KeepConstantFDs: %v", res.FDs)
	}
}

// TestRedundancyParallelism pins the invariant the JSON writer relies
// on: Result.Redundancies[i].FD == Result.FDs[i].
func TestRedundancyParallelism(t *testing.T) {
	for _, ds := range []xmlgen.Dataset{
		xmlgen.Warehouse(xmlgen.DefaultWarehouse()),
		xmlgen.Mondial(xmlgen.DefaultMondial()),
	} {
		h, err := relation.Build(ds.Tree, ds.Schema, relation.Options{})
		if err != nil {
			t.Fatal(err)
		}
		res, err := Discover(h, Options{PropagatePartial: true})
		if err != nil {
			t.Fatal(err)
		}
		if len(res.FDs) != len(res.Redundancies) {
			t.Fatalf("%s: %d FDs vs %d redundancies", ds.Name, len(res.FDs), len(res.Redundancies))
		}
		for i := range res.FDs {
			if res.FDs[i].String() != res.Redundancies[i].FD.String() {
				t.Fatalf("%s: index %d mismatch: %s vs %s", ds.Name, i, res.FDs[i], res.Redundancies[i].FD)
			}
		}
	}
}
