package core

import (
	"fmt"
	"strings"

	"discoverxfd/internal/schema"
)

// ParseFD parses an XML FD or Key written in the paper's notation, as
// printed by FD.String and Key.String:
//
//	{./ISBN, ../contact/name} -> ./price w.r.t. C(/warehouse/state/store/book)
//	{./ISBN} KEY of C(/warehouse/state/store/book)
//
// It returns the parsed constraint as an FD; for a Key the RHS is
// empty and IsKey is true in the companion ParseConstraint. Paths are
// validated syntactically (shape only; resolution against a concrete
// hierarchy happens in Evaluate).
func ParseFD(s string) (FD, error) {
	fd, isKey, err := parseConstraint(s)
	if err != nil {
		return FD{}, err
	}
	if isKey {
		return FD{}, fmt.Errorf("core: %q is a Key, not an FD (use ParseConstraint)", s)
	}
	return fd, nil
}

// Constraint is a parsed FD or Key specification.
type Constraint struct {
	FD    FD
	IsKey bool
}

// String renders the constraint back in its input notation.
func (c Constraint) String() string {
	if c.IsKey {
		return Key{Class: c.FD.Class, LHS: c.FD.LHS}.String()
	}
	return c.FD.String()
}

// ParseConstraint parses either an FD or a Key specification.
func ParseConstraint(s string) (Constraint, error) {
	fd, isKey, err := parseConstraint(s)
	if err != nil {
		return Constraint{}, err
	}
	return Constraint{FD: fd, IsKey: isKey}, nil
}

// ParseConstraints parses a multi-line specification: one constraint
// per line, blank lines and '#' comments ignored.
func ParseConstraints(text string) ([]Constraint, error) {
	var out []Constraint
	for i, line := range strings.Split(text, "\n") {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		c, err := ParseConstraint(line)
		if err != nil {
			return nil, fmt.Errorf("line %d: %w", i+1, err)
		}
		out = append(out, c)
	}
	return out, nil
}

func parseConstraint(s string) (FD, bool, error) {
	orig := s
	s = strings.TrimSpace(s)
	if !strings.HasPrefix(s, "{") {
		return FD{}, false, fmt.Errorf("core: constraint must start with '{': %q", orig)
	}
	close := strings.Index(s, "}")
	if close < 0 {
		return FD{}, false, fmt.Errorf("core: unterminated LHS in %q", orig)
	}
	lhsText := s[1:close]
	rest := strings.TrimSpace(s[close+1:])

	var lhs []schema.RelPath
	if strings.TrimSpace(lhsText) != "" {
		for _, p := range strings.Split(lhsText, ",") {
			rp := schema.RelPath(strings.TrimSpace(p))
			if err := checkRelPath(rp); err != nil {
				return FD{}, false, fmt.Errorf("core: %w in %q", err, orig)
			}
			lhs = append(lhs, rp)
		}
	}
	sortRels(lhs)

	// Key form: "KEY of C(<path>)".
	if strings.HasPrefix(rest, "KEY") {
		rest = strings.TrimSpace(strings.TrimPrefix(rest, "KEY"))
		rest = strings.TrimSpace(strings.TrimPrefix(rest, "of"))
		class, err := parseClass(rest, orig)
		if err != nil {
			return FD{}, false, err
		}
		if len(lhs) == 0 {
			return FD{}, false, fmt.Errorf("core: a Key needs a non-empty LHS: %q", orig)
		}
		return FD{Class: class, LHS: lhs}, true, nil
	}

	// FD form: "-> <path> w.r.t. C(<path>)".
	if !strings.HasPrefix(rest, "->") {
		return FD{}, false, fmt.Errorf("core: expected '->' or 'KEY' after LHS in %q", orig)
	}
	rest = strings.TrimSpace(rest[2:])
	fields := strings.Fields(rest)
	if len(fields) < 3 || fields[1] != "w.r.t." {
		return FD{}, false, fmt.Errorf("core: expected '<rhs> w.r.t. C(<path>)' in %q", orig)
	}
	rhs := schema.RelPath(fields[0])
	if err := checkRelPath(rhs); err != nil {
		return FD{}, false, fmt.Errorf("core: %w in %q", err, orig)
	}
	class, err := parseClass(strings.Join(fields[2:], " "), orig)
	if err != nil {
		return FD{}, false, err
	}
	inter := false
	for _, p := range lhs {
		if strings.HasPrefix(string(p), "..") {
			inter = true
		}
	}
	return FD{Class: class, LHS: lhs, RHS: rhs, Inter: inter}, false, nil
}

func parseClass(s, orig string) (schema.Path, error) {
	s = strings.TrimSpace(s)
	if !strings.HasPrefix(s, "C(") || !strings.HasSuffix(s, ")") {
		return "", fmt.Errorf("core: expected 'C(<path>)', got %q in %q", s, orig)
	}
	p := schema.Path(s[2 : len(s)-1])
	if !p.IsValid() {
		return "", fmt.Errorf("core: invalid class path %q in %q", p, orig)
	}
	return p, nil
}

// checkRelPath validates the syntactic shape of a pivot-relative
// path: ".", "./a/b", or one or more leading ".." steps followed by
// labels.
func checkRelPath(r schema.RelPath) error {
	s := string(r)
	if s == "" {
		return fmt.Errorf("empty path")
	}
	if s == "." {
		return nil
	}
	steps := strings.Split(s, "/")
	if steps[0] != "." && steps[0] != ".." {
		return fmt.Errorf("relative path %q must start with '.' or '..'", r)
	}
	seenLabel := false
	for i, st := range steps {
		switch st {
		case "":
			return fmt.Errorf("empty step in %q", r)
		case ".":
			if i != 0 {
				return fmt.Errorf("'.' only valid as the first step in %q", r)
			}
		case "..":
			if seenLabel {
				return fmt.Errorf("'..' after a label in %q", r)
			}
			if i != 0 && steps[i-1] == "." {
				return fmt.Errorf("'..' cannot follow '.' in %q", r)
			}
		default:
			seenLabel = true
		}
	}
	if steps[0] == "." && !seenLabel {
		return fmt.Errorf("path %q names no element", r)
	}
	return nil
}
