package core

import (
	"sync"
	"sync/atomic"

	"discoverxfd/internal/partition"
	"discoverxfd/internal/relation"
)

// partitionCache is the partition store shared by one discovery run.
// It is keyed two ways: by relation, then by canonical attribute set
// (the AttrSet bitset), and it outlives any single lattice traversal,
// so partitions computed level by level are reused by the approximate
// pass and by the post-traversal FD verification, across the whole
// bottom-up relation-tree walk.
//
// Concurrency contract: each relation's lattice runs on a single
// goroutine, and parallel subtree workers touch disjoint relations,
// so a relation's store needs no internal locking — only the
// relation→store map and the byte/hit counters are shared (mutex and
// atomics respectively). The happens-before edge between a subtree
// worker's writes and the parent's reads is the WaitGroup join in
// discover.
//
// Memory contract: maxBytes (Options.MaxPartitionBytes) caps the
// estimated bytes *retained* across relations. The active relation's
// working set is never evicted mid-traversal (the level-wise search
// needs its previous level; MaxLatticeLevel is the lever for bounding
// that). Instead, when a relation's traversal finishes, retire trims
// completed stores down to their column partitions — everything a
// later phase needs again can be recomputed from those, so eviction
// affects speed, never results.
type partitionCache struct {
	maxBytes int64

	mu      sync.Mutex
	rels    map[*relation.Relation]*relPartitions // guarded by mu
	retired []*relPartitions                      // guarded by mu
	bytes   atomic.Int64
	peak    atomic.Int64

	hits, misses, evictions atomic.Int64
}

// relPartitions holds one relation's cached partitions and derived
// lookups. Accessed lock-free by the single goroutine traversing the
// relation (see the concurrency contract above).
type relPartitions struct {
	rel   *relation.Relation
	parts map[AttrSet]*partition.Partition
	gids  map[AttrSet][]int32
	nulls map[AttrSet][]bool
	bytes int64

	// hits/misses mirror the cache-wide atomic counters for this store
	// alone, so per-lattice-level trace events can report a hit rate
	// without reading (and polluting) the shared atomics across
	// concurrent relations. Plain ints are safe under the single-
	// goroutine-per-store contract.
	hits, misses int
}

func newPartitionCache(maxBytes int64) *partitionCache {
	return &partitionCache{maxBytes: maxBytes, rels: make(map[*relation.Relation]*relPartitions)}
}

// store returns (creating on first use) the relation's partition
// store.
func (c *partitionCache) store(rel *relation.Relation) *relPartitions {
	c.mu.Lock()
	defer c.mu.Unlock()
	rp := c.rels[rel]
	if rp == nil {
		m := rel.NAttrs()
		rp = &relPartitions{
			rel:   rel,
			parts: make(map[AttrSet]*partition.Partition, 4*m),
			gids:  make(map[AttrSet][]int32),
			nulls: make(map[AttrSet][]bool),
		}
		c.rels[rel] = rp
	}
	return rp
}

// add accounts for a newly cached partition.
func (c *partitionCache) add(rp *relPartitions, p *partition.Partition) {
	rp.bytes += p.MemBytes()
	c.charge(p.MemBytes())
}

// charge adds n to the cache-wide byte total, tracking the peak.
func (c *partitionCache) charge(n int64) {
	total := c.bytes.Add(n)
	for {
		peak := c.peak.Load()
		if total <= peak || c.peak.CompareAndSwap(peak, total) {
			break
		}
	}
}

// seed pre-populates the cache from an Engine's warm layer: immutable
// partitions a previous run over the same hierarchy retained. Each
// relation's store starts as a fresh copy of its warm map (the warm
// maps are shared across concurrent runs and never written), and the
// seeded bytes are charged to this run's budget so retire still trims
// them under a tight MaxPartitionBytes. Seeded entries bump neither
// hit nor miss counters; subsequent lookups count as plain hits.
func (c *partitionCache) seed(warm map[*relation.Relation]map[AttrSet]*partition.Partition) {
	c.mu.Lock()
	defer c.mu.Unlock()
	//lint:detorder seeding only fills per-relation lookup maps; relation visit order cannot reach any output
	for rel, parts := range warm {
		rp := &relPartitions{
			rel:   rel,
			parts: make(map[AttrSet]*partition.Partition, len(parts)+rel.NAttrs()),
			gids:  make(map[AttrSet][]int32),
			nulls: make(map[AttrSet][]bool),
		}
		for a, p := range parts {
			rp.parts[a] = p
			rp.bytes += p.MemBytes()
		}
		c.charge(rp.bytes)
		c.rels[rel] = rp
	}
}

// snapshot returns a copy of every relation store's partitions for the
// Engine's warm layer. The returned maps are fresh (this run never
// touches them again) and partitions are immutable after construction,
// so the Engine may hand the snapshot to later runs unsynchronized.
func (c *partitionCache) snapshot() map[*relation.Relation]map[AttrSet]*partition.Partition {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make(map[*relation.Relation]map[AttrSet]*partition.Partition, len(c.rels))
	//lint:detorder snapshot only fills per-relation maps keyed by relation; visit order cannot reach any output
	for rel, rp := range c.rels {
		if len(rp.parts) == 0 {
			continue
		}
		parts := make(map[AttrSet]*partition.Partition, len(rp.parts))
		for a, p := range rp.parts {
			parts[a] = p
		}
		out[rel] = parts
	}
	return out
}

// retire marks a relation's traversal (and approximate pass, if any)
// complete. If the cache is over budget, completed stores are trimmed
// to their single-column partitions, oldest retirees first; derived
// lookups (group ids, null maps) are dropped with them. The partition
// needed later worst-case is rebuilt from the retained columns.
func (c *partitionCache) retire(rp *relPartitions) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.retired = append(c.retired, rp)
	if c.maxBytes <= 0 {
		return
	}
	for i := 0; c.bytes.Load() > c.maxBytes && i < len(c.retired); i++ {
		c.trim(c.retired[i])
	}
}

// trim drops a retired store's multi-attribute partitions and derived
// lookups, keeping the column partitions (cheap, always reusable).
// Caller holds c.mu.
func (c *partitionCache) trim(rp *relPartitions) {
	freed := int64(0)
	evicted := int64(0)
	for a, p := range rp.parts {
		if a.Size() <= 1 {
			continue
		}
		freed += p.MemBytes()
		evicted++
		delete(rp.parts, a)
	}
	if evicted > 0 {
		rp.bytes -= freed
		c.bytes.Add(-freed)
		c.evictions.Add(evicted)
	}
	rp.gids = make(map[AttrSet][]int32)
	rp.nulls = make(map[AttrSet][]bool)
}

// install caches a partition computed outside partitionOf — the
// parallel level precompute — preserving partitionOf's counter
// semantics (each installed partition is one cache miss). Like every
// store mutation it runs on the relation's single traversal
// goroutine; the xfdlint partimmut analyzer keeps cache writes
// confined to this file.
func (c *partitionCache) install(rp *relPartitions, a AttrSet, p *partition.Partition) {
	rp.parts[a] = p
	c.add(rp, p)
	c.misses.Add(1)
	rp.misses++
}

// liveBytes is the cache's live byte gauge, exposed for per-level
// trace events and engine metrics. Safe to read concurrently.
func (c *partitionCache) liveBytes() int64 { return c.bytes.Load() }

// gidsOf returns the cached row→group lookup for Π_A, running compute
// on first use.
func (rp *relPartitions) gidsOf(a AttrSet, compute func() []int32) []int32 {
	if g, ok := rp.gids[a]; ok {
		return g
	}
	g := compute()
	rp.gids[a] = g
	return g
}

// nullsOf is gidsOf for the per-row missing-value lookup of an
// attribute set.
func (rp *relPartitions) nullsOf(a AttrSet, compute func() []bool) []bool {
	if nl, ok := rp.nulls[a]; ok {
		return nl
	}
	nl := compute()
	rp.nulls[a] = nl
	return nl
}

// flushStats copies the cache counters into a Stats record.
func (c *partitionCache) flushStats(st *Stats) {
	st.PartitionCacheHits = int(c.hits.Load())
	st.PartitionCacheMisses = int(c.misses.Load())
	st.PartitionCacheEvictions = int(c.evictions.Load())
	st.PartitionCachePeakBytes = c.peak.Load()
}

// partitionOf returns Π_A for the store's relation, computing missing
// entries by stripped products of cached sub-partitions (the same
// recurrence the lattice uses), charging computed partitions to the
// cache. Column partitions (|A| = 1) use the relation's interned
// dense codes unless naive forces the generic hashing build. st (if
// non-nil) has PartitionsComputed bumped per product, preserving the
// counter's pre-cache meaning.
func (c *partitionCache) partitionOf(rp *relPartitions, a AttrSet, sc *partition.Scratch, naive bool, st *Stats) *partition.Partition {
	if p, ok := rp.parts[a]; ok {
		c.hits.Add(1)
		rp.hits++
		return p
	}
	c.misses.Add(1)
	rp.misses++
	var p *partition.Partition
	switch {
	case a == 0:
		p = partition.Single(rp.rel.NRows())
	case a.Size() == 1:
		i := a.MaxBit()
		if naive {
			p = partition.FromCodes(rp.rel.Cols[i])
		} else {
			p = rp.rel.ColumnPartition(i)
		}
	default:
		b := a.MaxBit()
		p = c.partitionOf(rp, a.Without(b), sc, naive, st).
			Product(c.partitionOf(rp, AttrSet(0).Add(b), sc, naive, st), sc)
		if st != nil {
			st.PartitionsComputed++
		}
	}
	rp.parts[a] = p
	c.add(rp, p)
	return p
}
