package core

import (
	"context"
	"fmt"
	"strconv"
	"strings"

	"discoverxfd/internal/partition"
	"discoverxfd/internal/relation"
	"discoverxfd/internal/schema"
)

// Evaluation is the outcome of directly checking an XML FD against a
// hierarchy, independent of the discovery machinery. Discovery
// results are cross-validated against this evaluator in the test
// suite.
type Evaluation struct {
	// Holds reports whether the FD is satisfied under strong
	// satisfaction semantics (Definition 7): pairs with a missing LHS
	// value are vacuous; agreeing pairs must have equal, non-missing
	// RHS values.
	Holds bool
	// Violations counts tuple pairs that agree on the LHS but
	// disagree (or are missing) on the RHS.
	Violations int
	// LHSIsKey reports whether the LHS uniquely identifies each tuple
	// of the class (Definition 8).
	LHSIsKey bool
	// Witnesses counts redundant RHS occurrences: over every
	// LHS-equal group, the occurrences beyond the first.
	Witnesses int
	// WitnessGroups counts LHS-equal groups of two or more tuples.
	WitnessGroups int
	// Error is the g3 measure: the minimum fraction of the class's
	// tuples to remove so the FD holds exactly (0 when Holds).
	Error float64
}

// ref locates one FD path: an attribute of the origin relation or of
// one of its ancestors.
type ref struct {
	rel  *relation.Relation
	ups  int // how many parent hops from the origin relation
	attr int
}

// resolveRef maps a pivot-relative path of the FD notation to the
// relation and attribute that encode it.
func resolveRef(h *relation.Hierarchy, origin *relation.Relation, rp schema.RelPath) (ref, error) {
	s := string(rp)
	ups := 0
	for strings.HasPrefix(s, "../") || s == ".." {
		ups++
		if s == ".." {
			s = "."
			break
		}
		s = s[3:]
	}
	rel := origin
	for i := 0; i < ups; i++ {
		if rel.Parent == nil {
			return ref{}, fmt.Errorf("core: path %s ascends above the root from class %s", rp, origin.Pivot)
		}
		rel = rel.Parent
	}
	local := schema.RelPath(s)
	if s != "." && !strings.HasPrefix(s, "./") {
		local = schema.RelPath("./" + s)
	}
	ai := rel.AttrIndex(local)
	if ai < 0 {
		return ref{}, fmt.Errorf("core: path %s (local %s) is not an attribute of relation %s", rp, local, rel.Pivot)
	}
	return ref{rel: rel, ups: ups, attr: ai}, nil
}

// Evaluate checks the XML FD ⟨C_class, lhs, rhs⟩ directly against the
// hierarchy by materializing each tuple's LHS signature (walking
// parent links for ancestor paths) and comparing RHS codes within
// LHS-equal groups.
func Evaluate(h *relation.Hierarchy, class schema.Path, lhs []schema.RelPath, rhs schema.RelPath) (Evaluation, error) {
	return EvaluateContext(context.Background(), h, class, lhs, rhs)
}

// evalCheckInterval is how many tuples are processed between context
// checks in EvaluateContext.
const evalCheckInterval = 4096

// EvaluateContext is Evaluate with cancellation, checked periodically
// over the class's tuples.
func EvaluateContext(ctx context.Context, h *relation.Hierarchy, class schema.Path, lhs []schema.RelPath, rhs schema.RelPath) (Evaluation, error) {
	origin := h.ByPivot(class)
	if origin == nil {
		return Evaluation{}, fmt.Errorf("core: no tuple class with pivot %s", class)
	}
	refs := make([]ref, 0, len(lhs))
	for _, rp := range lhs {
		r, err := resolveRef(h, origin, rp)
		if err != nil {
			return Evaluation{}, err
		}
		refs = append(refs, r)
	}
	rref, err := resolveRef(h, origin, rhs)
	if err != nil {
		return Evaluation{}, err
	}
	if rref.ups != 0 {
		return Evaluation{}, fmt.Errorf("core: RHS %s of an interesting FD must stay within the pivot's subtree", rhs)
	}

	n := origin.NRows()
	groups := make(map[string][]int, n)
	var sig strings.Builder
	for t := 0; t < n; t++ {
		if t%evalCheckInterval == 0 {
			if err := ctx.Err(); err != nil {
				return Evaluation{}, fmt.Errorf("core: evaluation cancelled: %w", err)
			}
		}
		sig.Reset()
		null := false
		for _, r := range refs {
			at, ok := ancestorTuple(origin, t, r.ups)
			if !ok {
				null = true
				break
			}
			code := r.rel.Cols[r.attr][at]
			if relation.IsNull(code) {
				null = true
				break
			}
			sig.WriteString(strconv.FormatInt(code, 10))
			sig.WriteByte('|')
		}
		if null {
			continue // vacuous under strong satisfaction
		}
		groups[sig.String()] = append(groups[sig.String()], t)
	}

	ev := Evaluation{Holds: true, LHSIsKey: true}
	removals := 0
	rcol := origin.Cols[rref.attr]
	//lint:detorder per-group tallies only += ints and latch booleans, so group order cannot reach the Evaluation output
	for _, g := range groups {
		if len(g) < 2 {
			continue
		}
		ev.LHSIsKey = false
		// Count RHS value multiplicities within the group; nulls are
		// pairwise distinct under strong satisfaction.
		counts := make(map[int64]int, len(g))
		max := 1
		agree := true
		first := rcol[g[0]]
		if relation.IsNull(first) {
			agree = false
		}
		for i, t := range g {
			code := rcol[t]
			if i > 0 && (relation.IsNull(code) || code != first) {
				agree = false
			}
			if relation.IsNull(code) {
				continue
			}
			counts[code]++
			if counts[code] > max {
				max = counts[code]
			}
		}
		removals += len(g) - max
		if agree {
			ev.WitnessGroups++
			ev.Witnesses += len(g) - 1
		} else {
			ev.Holds = false
			ev.Violations += len(g) - 1
		}
	}
	if n > 0 {
		ev.Error = float64(removals) / float64(n)
	}
	return ev, nil
}

// evaluateIntraFast is the partition-backed equivalent of Evaluate for
// intra-relation FDs: Π_LHS from the run's cache supplies the
// LHS-equal groups directly (tuples with a missing LHS value carry
// row-unique null codes, so they fall into stripped-out singletons —
// the same vacuous-pair semantics the evaluator implements by
// skipping them), and the per-group RHS counting below mirrors
// Evaluate's exactly.
func evaluateIntraFast(cache *partitionCache, origin *relation.Relation, lhsSet AttrSet, rhsAttr int) Evaluation {
	rp := cache.store(origin)
	sc := partition.GetScratch(origin.NRows())
	defer partition.PutScratch(sc)
	p := cache.partitionOf(rp, lhsSet, sc, false, nil)

	ev := Evaluation{Holds: true, LHSIsKey: len(p.Groups) == 0}
	removals := 0
	rcol := origin.Cols[rhsAttr]
	for _, g := range p.Groups {
		counts := make(map[int64]int, len(g))
		max := 1
		agree := true
		first := rcol[g[0]]
		if relation.IsNull(first) {
			agree = false
		}
		for i, t := range g {
			code := rcol[t]
			if i > 0 && (relation.IsNull(code) || code != first) {
				agree = false
			}
			if relation.IsNull(code) {
				continue
			}
			counts[code]++
			if counts[code] > max {
				max = counts[code]
			}
		}
		removals += len(g) - max
		if agree {
			ev.WitnessGroups++
			ev.Witnesses += len(g) - 1
		} else {
			ev.Holds = false
			ev.Violations += len(g) - 1
		}
	}
	if n := origin.NRows(); n > 0 {
		ev.Error = float64(removals) / float64(n)
	}
	return ev
}

// ancestorTuple walks ups parent links from tuple t of origin.
func ancestorTuple(origin *relation.Relation, t, ups int) (int, bool) {
	rel := origin
	cur := int32(t)
	for i := 0; i < ups; i++ {
		if rel.Parent == nil {
			return 0, false
		}
		cur = rel.ParentIdx[cur]
		rel = rel.Parent
		if cur < 0 {
			return 0, false
		}
	}
	return int(cur), true
}
