package core

import (
	"strings"
	"testing"

	"discoverxfd/internal/datatree"
	"discoverxfd/internal/relation"
)

// warehouseXML recreates the paper's running example (Figure 1),
// extended with two more books so that FD 4's LHS is minimal:
// {./title} alone and {./author} alone both fail, only the pair
// determines ./ISBN.
const warehouseXML = `
<warehouse>
  <state>
    <name>WA</name>
    <store>
      <contact><name>Borders</name><address>Seattle</address></contact>
      <book>
        <ISBN>111</ISBN><author>Post</author>
        <title>Foundations</title><price>30</price>
      </book>
      <book>
        <ISBN>222</ISBN><author>Ramakrishnan</author><author>Gehrke</author>
        <title>DBMS</title><price>40</price>
      </book>
    </store>
  </state>
  <state>
    <name>KY</name>
    <store>
      <contact><name>Borders</name><address>Lexington</address></contact>
      <book>
        <ISBN>222</ISBN><author>Gehrke</author><author>Ramakrishnan</author>
        <title>DBMS</title><price>40</price>
      </book>
      <book>
        <ISBN>333</ISBN><author>Date</author>
        <title>DBMS</title><price>50</price>
      </book>
    </store>
    <store>
      <contact><name>WHSmith</name><address>Lexington</address></contact>
      <book>
        <ISBN>222</ISBN><author>Ramakrishnan</author><author>Gehrke</author>
        <title>DBMS</title>
      </book>
      <book>
        <ISBN>444</ISBN><author>Date</author>
        <title>XML</title><price>60</price>
      </book>
    </store>
  </state>
</warehouse>`

func buildWarehouse(t *testing.T, opts relation.Options) *relation.Hierarchy {
	t.Helper()
	tree, err := datatree.ParseXMLString(warehouseXML)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	s, err := datatree.InferSchema(tree)
	if err != nil {
		t.Fatalf("infer: %v", err)
	}
	h, err := relation.Build(tree, s, opts)
	if err != nil {
		t.Fatalf("build: %v", err)
	}
	return h
}

func fdStrings(res *Result) []string {
	out := make([]string, 0, len(res.FDs))
	for _, f := range res.FDs {
		out = append(out, f.String())
	}
	return out
}

func keyStrings(res *Result) []string {
	out := make([]string, 0, len(res.Keys))
	for _, k := range res.Keys {
		out = append(out, k.String())
	}
	return out
}

func contains(list []string, want string) bool {
	for _, s := range list {
		if s == want {
			return true
		}
	}
	return false
}

func TestDiscoverWarehousePaperFDs(t *testing.T) {
	h := buildWarehouse(t, relation.Options{})
	res, err := Discover(h, Options{PropagatePartial: true})
	if err != nil {
		t.Fatalf("Discover: %v", err)
	}
	fds := fdStrings(res)
	book := "/warehouse/state/store/book"

	want := []string{
		// FD 1: {./ISBN} -> ./title
		"{./ISBN} -> ./title w.r.t. C(" + book + ")",
		// FD 3: {./ISBN} -> ./author (set element on the RHS)
		"{./ISBN} -> ./author w.r.t. C(" + book + ")",
		// FD 4: {./author, ./title} -> ./ISBN (set element on the LHS)
		"{./author, ./title} -> ./ISBN w.r.t. C(" + book + ")",
		// FD 2: {../contact/name, ./ISBN} -> ./price (inter-relation)
		"{../contact/name, ./ISBN} -> ./price w.r.t. C(" + book + ")",
	}
	for _, w := range want {
		if !contains(fds, w) {
			t.Errorf("missing expected FD %q\ndiscovered:\n  %s", w, strings.Join(fds, "\n  "))
		}
	}

	// FD 2 must not degrade to the intra-relation {./ISBN} -> ./price,
	// which the missing price of the WHSmith copy of ISBN 222 violates.
	bad := "{./ISBN} -> ./price w.r.t. C(" + book + ")"
	if contains(fds, bad) {
		t.Errorf("FD %q should be violated (strong satisfaction of missing price)", bad)
	}
}

func TestDiscoverWarehouseRedundancies(t *testing.T) {
	h := buildWarehouse(t, relation.Options{})
	res, err := Discover(h, Options{PropagatePartial: true})
	if err != nil {
		t.Fatalf("Discover: %v", err)
	}
	if len(res.Redundancies) != len(res.FDs) {
		t.Fatalf("Definition 11: every reported FD indicates a redundancy; got %d redundancies for %d FDs",
			len(res.Redundancies), len(res.FDs))
	}
	// ISBN 222 appears three times, so {./ISBN} -> ./title stores the
	// title "DBMS" redundantly twice for that group; ISBN 333's group
	// is a singleton and contributes nothing.
	for _, r := range res.Redundancies {
		if r.FD.String() == "{./ISBN} -> ./title w.r.t. C(/warehouse/state/store/book)" {
			if r.RedundantValues != 2 || r.Groups != 1 {
				t.Errorf("ISBN->title: got %d redundant values in %d groups, want 2 in 1", r.RedundantValues, r.Groups)
			}
			return
		}
	}
	t.Fatalf("ISBN->title redundancy not reported")
}

func TestDiscoverWarehouseKeys(t *testing.T) {
	h := buildWarehouse(t, relation.Options{})
	res, err := Discover(h, Options{PropagatePartial: true})
	if err != nil {
		t.Fatalf("Discover: %v", err)
	}
	keys := keyStrings(res)
	// Within one state, store contacts are unique; {./contact} is a
	// key of C_store (the paper's Figure 7(B) shows exactly this).
	if !contains(keys, "{./contact} KEY of C(/warehouse/state/store)") {
		t.Errorf("expected {./contact} to be a key of C_store; keys:\n  %s", strings.Join(keys, "\n  "))
	}
	// ISBN is not a key of C_book (222 occurs three times), so it must
	// not be reported.
	if contains(keys, "{./ISBN} KEY of C(/warehouse/state/store/book)") {
		t.Errorf("{./ISBN} must not be a key of C_book")
	}
}

func TestDiscoverResultsAllVerify(t *testing.T) {
	h := buildWarehouse(t, relation.Options{})
	res, err := Discover(h, Options{PropagatePartial: true})
	if err != nil {
		t.Fatalf("Discover: %v", err)
	}
	for _, fd := range res.FDs {
		ev, err := Evaluate(h, fd.Class, fd.LHS, fd.RHS)
		if err != nil {
			t.Fatalf("Evaluate(%s): %v", fd, err)
		}
		if !ev.Holds {
			t.Errorf("discovered FD does not hold on the data: %s (%d violations)", fd, ev.Violations)
		}
		if ev.LHSIsKey {
			t.Errorf("discovered FD has a key LHS (should have been pruned or reported as Key): %s", fd)
		}
	}
	for _, k := range res.Keys {
		// A key is the FD LHS -> ./@key; verify via LHSIsKey on any RHS.
		rel := h.ByPivot(k.Class)
		if rel == nil || rel.NAttrs() == 0 {
			t.Fatalf("bad key class %s", k.Class)
		}
		ev, err := Evaluate(h, k.Class, k.LHS, rel.Attrs[0].Rel)
		if err != nil {
			t.Fatalf("Evaluate key %s: %v", k, err)
		}
		if !ev.LHSIsKey {
			t.Errorf("reported key is not a key: %s", k)
		}
	}
}
