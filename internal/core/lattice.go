package core

import (
	"fmt"
	"sync/atomic"
	"time"

	"discoverxfd/internal/partition"
	"discoverxfd/internal/relation"
	"discoverxfd/internal/trace"
)

// edge is a satisfied intra-relation FD LHS → rhs used for pruning.
type edge struct {
	lhs AttrSet
	rhs int
}

// relOutput collects what one relation's lattice traversal produced.
type relOutput struct {
	intraFDs  []edge    // satisfied minimal intra-relation FDs
	intraKeys []AttrSet // minimal intra-relation keys
	interFDs  []FD      // inter-relation FDs satisfied at this level
	interKeys []Key
	outgoing  []*target // targets for the parent relation
}

// latticeRun performs the level-wise attribute-set traversal of one
// relation (Figure 8 / Figure 9), optionally checking and generating
// partition targets.
type latticeRun struct {
	rel      *relation.Relation
	opts     *Options
	stats    *Stats
	depths   []int // hierarchy depth per relation, indexed by Relation.Index
	incoming []*target

	// gov is the run's resource governor (nil in ungoverned tests):
	// cancellation aborts the traversal with err set; an expired
	// wall-clock budget stops it early keeping the partial output.
	gov *governor
	err error

	// ni governs whether degenerate (same-ancestor) target pairs can
	// still be satisfied vacuously by a missing value at or above the
	// parent relation.
	ni nullInfo

	// cache is the run-shared partition cache; pc is this relation's
	// store within it (acquired at the start of run, retired by the
	// caller once the approximate pass is done with it too).
	cache *partitionCache
	pc    *relPartitions
	sc    *partition.Scratch

	fds  []edge
	keys []AttrSet
	out  relOutput
}

// close releases pooled resources; the latticeRun (and its partition
// store) stay readable.
func (lr *latticeRun) close() {
	partition.PutScratch(lr.sc)
	lr.sc = nil
}

// run executes the traversal. xfd selects DiscoverXFD behaviour
// (candidateLHS2, target handling); with xfd false it is exactly
// DiscoverFD of Figure 8.
func (lr *latticeRun) run(xfd bool) {
	rel := lr.rel
	n := rel.NRows()
	m := rel.NAttrs()
	if lr.cache == nil {
		lr.cache = newPartitionCache(lr.opts.MaxPartitionBytes)
	}
	lr.pc = lr.cache.store(rel)
	lr.sc = partition.GetScratch(n)

	intraStart := time.Now()
	interBefore := lr.stats.InterTime
	for i := 0; i < m; i++ {
		lr.getPartition(AttrSet(0).Add(i))
	}

	// Pure conversions of incoming targets (Figure 9 lines 8–10):
	// every target is offered to the parent unchanged, so ancestors
	// alone may complete it.
	if xfd && rel.Parent != nil {
		ts := time.Now()
		for _, pt := range lr.incoming {
			if len(lr.out.outgoing) >= lr.opts.maxTargets() {
				targetDropped(lr.rel, lr.opts, lr.stats, "outgoing target cap reached")
				continue
			}
			if up := pt.convert(rel, nil, nil, 0, lr.ni, lr.opts, lr.stats); up != nil {
				lr.out.outgoing = append(lr.out.outgoing, up)
			}
		}
		lr.stats.InterTime += time.Since(ts)
	}

	if n < 2 || m == 0 {
		// Nothing can be violated or witnessed with fewer than two
		// tuples; incoming targets were still offered upward above.
		lr.stats.IntraTime += time.Since(intraStart) - (lr.stats.InterTime - interBefore)
		return
	}

	// The empty attribute set can itself be a candidate partial Key:
	// if every parent has at most one tuple here, ancestor attributes
	// alone may identify the tuples of this class.
	if xfd && rel.Parent != nil && !lr.opts.NoInterRelation {
		ts := time.Now()
		if pt := createKeyTarget(rel, 0, lr.getPartition(0), lr.ni, lr.opts, lr.stats); pt != nil {
			lr.out.outgoing = append(lr.out.outgoing, pt)
		}
		lr.stats.InterTime += time.Since(ts)
	}

	maxSize := m
	if lr.opts.MaxLHS > 0 && lr.opts.MaxLHS+1 < maxSize {
		maxSize = lr.opts.MaxLHS + 1
	}
	if lr.opts.MaxLatticeLevel > 0 && maxSize > lr.opts.MaxLatticeLevel {
		// Unlike MaxLHS this is a resource bound, not a language
		// choice: cutting levels that could have held results makes
		// the answer partial, so record the truncation.
		maxSize = lr.opts.MaxLatticeLevel
		lr.gov.truncate(fmt.Sprintf("lattice capped at level %d for relation %s (%d attributes)", maxSize, rel.Pivot, m))
	}

	queue := make([]AttrSet, 0, m)
	for i := 0; i < m; i++ {
		queue = append(queue, AttrSet(0).Add(i))
	}
	level := 1
	tr := lr.opts.Tracer
	var snap levelSnapshot
	if tr != nil {
		snap = lr.snapshotLevel()
	}
	for qi := 0; qi < len(queue); qi++ {
		// One check per lattice node keeps cancellation latency
		// bounded by a single node's partition work.
		if err := lr.gov.cancelled(); err != nil {
			lr.err = err
			break
		}
		if lr.gov.expired() {
			break // keep the partial traversal output
		}
		a := queue[qi]
		if sz := a.Size(); sz > level {
			// The queue is level-ordered: reaching the first set of the
			// next size means the previous level is fully processed, so
			// every product this level needs is determined. Warm them
			// in parallel when worthwhile.
			if tr != nil {
				lr.emitLevel(tr, level, &snap)
			}
			level = sz
			lr.precomputeLevel(queue[qi:], xfd)
			if lr.err != nil {
				break
			}
		}
		lr.stats.NodesVisited++

		ls := lr.candidateLHS(a, xfd)
		if len(ls) == 0 && a.Size() > 1 {
			continue
		}
		pa := lr.getPartition(a)

		if pa.IsKey() && !lr.opts.DisableKeyPruning {
			lr.keys = append(lr.keys, a)
			lr.out.intraKeys = append(lr.out.intraKeys, a)
			if xfd {
				// Figure 9 lines 18–25: a key separates every
				// distinct pair, so every target is satisfied at this
				// node (degenerate pairs still need a null).
				lr.checkTargets(a, nil, lr.nullsFor(a))
				// Failed edges into a key node can still seed minimal
				// inter-relation FDs (the FD {x} -> r where {x, r} is
				// a key fails globally but may hold under each
				// parent), so targets are created before the node's
				// expansion is pruned.
				lr.seedTargets(a, pa, ls)
			}
			continue
		}

		for _, al := range ls {
			r := (a &^ al).MaxBit()
			pal := lr.getPartition(al)
			if pal.Error() == pa.Error() {
				lr.fds = append(lr.fds, edge{lhs: al, rhs: r})
				lr.out.intraFDs = append(lr.out.intraFDs, edge{lhs: al, rhs: r})
			}
		}
		if xfd {
			// Failed edges seed candidate partial FDs; a itself seeds
			// a candidate partial Key (it is not a key here, but
			// ancestor attributes could complete it).
			lr.seedTargets(a, pa, ls)
			if rel.Parent != nil && !lr.opts.NoInterRelation {
				ts := time.Now()
				if len(lr.out.outgoing) < lr.opts.maxTargets() {
					if pt := createKeyTarget(rel, a, pa, lr.ni, lr.opts, lr.stats); pt != nil {
						lr.out.outgoing = append(lr.out.outgoing, pt)
					}
				} else {
					targetDropped(rel, lr.opts, lr.stats, "outgoing target cap reached")
				}
				lr.stats.InterTime += time.Since(ts)
			}
		}

		if xfd && len(lr.incoming) > 0 {
			lr.checkTargets(a, lr.groupIDs(a), lr.nullsFor(a))
		}

		if a.Size() >= maxSize {
			continue
		}
		for i := a.MaxBit() + 1; i < m; i++ {
			next := a.Add(i)
			if lr.supersetOfKey(next) {
				continue
			}
			queue = append(queue, next)
		}
	}
	if tr != nil {
		lr.emitLevel(tr, level, &snap)
	}
	lr.stats.IntraTime += time.Since(intraStart) - (lr.stats.InterTime - interBefore)
}

// levelSnapshot records the counters relevant to one lattice level at
// its start, so emitLevel can report per-level deltas. The partition
// counters come from this relation's store, not the run-wide atomics,
// so concurrent relations cannot pollute each other's rates.
type levelSnapshot struct {
	nodes, products, hits, misses int
}

func (lr *latticeRun) snapshotLevel() levelSnapshot {
	return levelSnapshot{
		nodes:    lr.stats.NodesVisited,
		products: lr.stats.PartitionsComputed,
		hits:     lr.pc.hits,
		misses:   lr.pc.misses,
	}
}

// emitLevel reports one completed lattice level — nodes visited,
// partition products computed, the level's cache hit rate, and the
// run cache's live byte gauge — then advances snap to the next
// level's baseline. Levels where nothing happened (the traversal
// stopped at a boundary) are skipped.
func (lr *latticeRun) emitLevel(tr trace.Tracer, level int, snap *levelSnapshot) {
	cur := lr.snapshotLevel()
	nodes := cur.nodes - snap.nodes
	if nodes == 0 {
		*snap = cur
		return
	}
	hits, misses := cur.hits-snap.hits, cur.misses-snap.misses
	ev := &trace.Event{
		Kind: trace.KindLevel, Relation: string(lr.rel.Pivot), Level: level,
		Nodes: nodes, Products: cur.products - snap.products,
		CacheHits: hits, CacheMisses: misses,
		CacheBytes: lr.cache.liveBytes(),
	}
	if hits+misses > 0 {
		ev.HitRate = float64(hits) / float64(hits+misses)
	}
	tr.Emit(ev)
	*snap = cur
}

// seedTargets creates candidate-partial-FD targets from the failed
// edges into node a (Figure 9 lines 34–37).
func (lr *latticeRun) seedTargets(a AttrSet, pa *partition.Partition, ls []AttrSet) {
	if lr.rel.Parent == nil || lr.opts.NoInterRelation {
		return
	}
	ts := time.Now()
	defer func() { lr.stats.InterTime += time.Since(ts) }()
	for _, al := range ls {
		r := (a &^ al).MaxBit()
		pal := lr.getPartition(al)
		if pal.Error() == pa.Error() {
			continue // satisfied edge, not a partial FD
		}
		if len(lr.out.outgoing) >= lr.opts.maxTargets() {
			targetDropped(lr.rel, lr.opts, lr.stats, "outgoing target cap reached")
			continue
		}
		pt := createTarget(lr.rel, al, r, pal, len(pa.Groups), lr.groupIDs(a), lr.ni, lr.opts, lr.stats)
		if pt != nil {
			lr.out.outgoing = append(lr.out.outgoing, pt)
		}
	}
}

// checkTargets tests every incoming target against the attribute set
// a (Figure 9 lines 18–33). gids == nil means a is a key of the
// relation. Satisfied targets yield inter-relation FDs or Keys;
// partially satisfied ones may propagate upward with a absorbed into
// their LHS.
func (lr *latticeRun) checkTargets(a AttrSet, gids []int32, nulls []bool) {
	ts := time.Now()
	defer func() { lr.stats.InterTime += time.Since(ts) }()
	for _, pt := range lr.incoming {
		// Superset suppression: a satisfying subset makes any
		// superset-based result non-minimal.
		skip := false
		for _, s := range pt.satisfied {
			if a.Contains(s) {
				skip = true
				break
			}
		}
		if skip {
			continue
		}
		lr.stats.TargetChecks++
		if pt.satisfiedBy(gids, nulls) {
			pt.satisfied = append(pt.satisfied, a)
			if pt.keyOnly {
				lr.out.interKeys = append(lr.out.interKeys, pt.keyAt(lr.rel, a, lr.depths))
			} else {
				lr.out.interFDs = append(lr.out.interFDs, pt.fdAt(lr.rel, a, lr.depths))
			}
			continue
		}
		if lr.opts.PropagatePartial && lr.rel.Parent != nil &&
			a.Size() <= lr.opts.maxPartialAttrs() &&
			len(lr.out.outgoing) < lr.opts.maxTargets() &&
			pt.remaining(gids, nulls) < len(pt.pairs) {
			// Progress was made: carry the rest upward with a in the
			// LHS (Figure 9 lines 26–29).
			if up := pt.convert(lr.rel, gids, nulls, a, lr.ni, lr.opts, lr.stats); up != nil {
				lr.out.outgoing = append(lr.out.outgoing, up)
			}
		}
	}
}

// candidateLHS implements Figure 8's candidateLHS (pruning rules 1
// and 2) and, for xfd mode, candidateLHS2 (rule 1 only — rule 2 must
// not suppress edges whose failures seed partition targets).
func (lr *latticeRun) candidateLHS(a AttrSet, xfd bool) []AttrSet {
	out := make([]AttrSet, 0, a.Size())
	for _, i := range a.Attrs() {
		al := a.Without(i)
		if lr.opts.DisableFDPruning {
			out = append(out, al)
			continue
		}
		skip := false
		for _, fd := range lr.fds {
			// Rule 1: X → A satisfied removes edge (XY, XYA).
			if fd.rhs == i && al.Contains(fd.lhs) {
				skip = true
				break
			}
			// Rule 2 (intra-only): X → A satisfied removes edge
			// (XYA, XYAB): an LHS containing both X and A is
			// non-minimal.
			if !xfd && al.Has(fd.rhs) && al.Without(fd.rhs).Contains(fd.lhs) {
				skip = true
				break
			}
		}
		if !skip {
			out = append(out, al)
		}
	}
	return out
}

// getPartition returns Π_A from the run-shared cache, computing it by
// stripped products of cached sub-partitions on demand.
func (lr *latticeRun) getPartition(a AttrSet) *partition.Partition {
	return lr.cache.partitionOf(lr.pc, a, lr.sc, lr.opts.NaivePartitions, lr.stats)
}

// Parallel level precompute kicks in only when a level has enough
// products over enough rows to amortize goroutine startup; below the
// thresholds the serial lazy path wins.
const (
	parallelLevelMinNodes = 4
	parallelLevelMinRows  = 256
)

// precomputeLevel computes the partitions of one lattice level's
// pending nodes in parallel, seeding the cache the serial traversal
// then hits. pending is the queue suffix starting at the level's
// first node. Only nodes the serial traversal would materialize are
// computed — a node with no candidate LHS is skipped before its
// partition is ever built — so the cache ends up with exactly the
// entries the serial run produces and discovery output (including the
// approximate pass, which scans the cache) is bit-identical.
func (lr *latticeRun) precomputeLevel(pending []AttrSet, xfd bool) {
	if !lr.opts.Parallel || lr.opts.NaivePartitions {
		return
	}
	size := pending[0].Size()
	end := 0
	for end < len(pending) && pending[end].Size() == size {
		end++
	}
	work := make([]AttrSet, 0, end)
	for _, a := range pending[:end] {
		if _, ok := lr.pc.parts[a]; ok {
			continue
		}
		if len(lr.candidateLHS(a, xfd)) == 0 && size > 1 {
			continue
		}
		work = append(work, a)
	}
	if len(work) < parallelLevelMinNodes || lr.rel.NRows() < parallelLevelMinRows {
		return
	}
	// Resolve each product's operands serially first (almost always
	// cache hits from the previous level); workers then run pure
	// products with no shared state.
	type job struct {
		a            AttrSet
		rest, single *partition.Partition
	}
	jobs := make([]job, 0, len(work))
	for _, a := range work {
		b := a.MaxBit()
		jobs = append(jobs, job{a, lr.getPartition(a.Without(b)), lr.getPartition(AttrSet(0).Add(b))})
	}
	results := make([]*partition.Partition, len(jobs))
	errs := make([]error, len(jobs))
	var next atomic.Int64
	// A worker panic must surface as this run's error, not a process
	// crash (same contract as subtree workers); workerGroup provides
	// the barrier.
	workers := lr.gov.productWorkers(len(jobs))
	if tr := lr.opts.Tracer; tr != nil {
		trace.Emit(tr, &trace.Event{Kind: trace.KindGovernor, Action: "worker_spawn",
			Workers: workers, Relation: string(lr.rel.Pivot),
			Detail: fmt.Sprintf("product workers for %d level-%d partitions", len(jobs), size)})
	}
	var grp workerGroup
	for w := 0; w < workers; w++ {
		grp.Go(fmt.Sprintf("parallel product worker for relation %s", lr.rel.Pivot), nil, func() {
			sc := partition.GetScratch(lr.rel.NRows())
			defer partition.PutScratch(sc)
			for {
				i := int(next.Add(1)) - 1
				if i >= len(jobs) {
					return
				}
				if err := lr.gov.cancelled(); err != nil {
					errs[i] = err
					return
				}
				results[i] = jobs[i].rest.Product(jobs[i].single, sc)
			}
		})
	}
	panicErr := grp.Wait()
	for i, p := range results {
		if errs[i] != nil {
			// First failure in deterministic job order wins.
			lr.err = errs[i]
			return
		}
		if p == nil {
			continue
		}
		lr.cache.install(lr.pc, jobs[i].a, p)
		lr.stats.PartitionsComputed++
		lr.stats.ParallelProducts++
	}
	if lr.err == nil && panicErr != nil {
		lr.err = panicErr
	}
}

// groupIDs returns (and caches) the row→group lookup for Π_A.
func (lr *latticeRun) groupIDs(a AttrSet) []int32 {
	return lr.pc.gidsOf(a, func() []int32 { return lr.getPartition(a).GroupIDs() })
}

// nullsFor returns (and caches) the per-row missing-value lookup for
// attribute set a: true where any attribute of a is null. Used for
// the vacuous satisfaction of degenerate target pairs.
func (lr *latticeRun) nullsFor(a AttrSet) []bool {
	return lr.pc.nullsOf(a, func() []bool {
		nl := make([]bool, lr.rel.NRows())
		for _, i := range a.Attrs() {
			col := lr.rel.Cols[i]
			for row, code := range col {
				if relation.IsNull(code) {
					nl[row] = true
				}
			}
		}
		return nl
	})
}

// supersetOfKey reports whether a contains a discovered key (pruning
// rule 3, Figure 8 line 18).
func (lr *latticeRun) supersetOfKey(a AttrSet) bool {
	if lr.opts.DisableKeyPruning {
		return false
	}
	for _, k := range lr.keys {
		if a.Contains(k) {
			return true
		}
	}
	return false
}

// checkWidth verifies the 64-attribute bitset limit.
func checkWidth(rel *relation.Relation) error {
	if rel.NAttrs() > 64 {
		return fmt.Errorf("core: relation %s has %d attributes; at most 64 are supported", rel.Pivot, rel.NAttrs())
	}
	return nil
}
