package core

import (
	"fmt"
	"testing"

	"discoverxfd/internal/datatree"
	"discoverxfd/internal/relation"
	"discoverxfd/internal/schema"
)

// deepSchema nests five set elements; the deepest class can need LHS
// attributes from four distinct levels, which exercises chained
// partial propagation.
var deepSchema = schema.MustParse(`
root: Rcd
  l1: SetOf Rcd
    k1: str
    l2: SetOf Rcd
      k2: str
      l3: SetOf Rcd
        k3: str
        l4: SetOf Rcd
          k4: str
          val: str
`)

// buildDeep constructs data where val = f(k1,k2,k3,k4) and every
// proper subset of the four keys is ambiguous.
func buildDeep(t *testing.T) *relation.Hierarchy {
	t.Helper()
	f := func(a, b, c, d int) string {
		return fmt.Sprintf("v%d", (a+2*b+3*c+4*d)%5)
	}
	root := &datatree.Node{Label: "root"}
	for a := 0; a < 2; a++ {
		n1 := root.AddChild("l1")
		n1.AddLeaf("k1", fmt.Sprintf("a%d", a))
		for b := 0; b < 2; b++ {
			n2 := n1.AddChild("l2")
			n2.AddLeaf("k2", fmt.Sprintf("b%d", b))
			for c := 0; c < 2; c++ {
				n3 := n2.AddChild("l3")
				n3.AddLeaf("k3", fmt.Sprintf("c%d", c))
				for d := 0; d < 2; d++ {
					// Two duplicates per leaf so the full LHS is not a
					// key (the FD must indicate redundancy).
					for dup := 0; dup < 2; dup++ {
						n4 := n3.AddChild("l4")
						n4.AddLeaf("k4", fmt.Sprintf("d%d", d))
						n4.AddLeaf("val", f(a, b, c, d))
					}
				}
			}
		}
	}
	tree := datatree.NewTree(root)
	h, err := relation.Build(tree, deepSchema, relation.Options{})
	if err != nil {
		t.Fatal(err)
	}
	return h
}

// TestFourLevelLHS requires an FD whose LHS spans four hierarchy
// levels — two chained partial propagations plus the final check.
func TestFourLevelLHS(t *testing.T) {
	h := buildDeep(t)
	class := schema.Path("/root/l1/l2/l3/l4")
	lhs := []schema.RelPath{"../../../k1", "../../k2", "../k3", "./k4"}

	ev, err := Evaluate(h, class, lhs, "./val")
	if err != nil {
		t.Fatal(err)
	}
	if !ev.Holds || ev.LHSIsKey {
		t.Fatalf("construction broken: %+v", ev)
	}
	for drop := 0; drop < 4; drop++ {
		sub := append([]schema.RelPath(nil), lhs...)
		sub = append(sub[:drop], sub[drop+1:]...)
		ev, err := Evaluate(h, class, sub, "./val")
		if err != nil {
			t.Fatal(err)
		}
		if ev.Holds {
			t.Fatalf("subset %v should be ambiguous", sub)
		}
	}

	res, err := Discover(h, Options{PropagatePartial: true})
	if err != nil {
		t.Fatal(err)
	}
	if !impliedFD(res, class, lhs, "./val") {
		var got []string
		for _, fd := range res.FDs {
			if fd.Class == class && fd.RHS == "./val" {
				got = append(got, fd.String())
			}
		}
		t.Fatalf("four-level FD not discovered; val FDs: %v", got)
	}
}
