package core

import (
	"context"
	"reflect"
	"strings"
	"testing"

	"discoverxfd/internal/relation"
)

// TestEngineWarmLayerReuse pins the engine's warm-layer contract: a
// second run over the same untouched hierarchy replays every
// essential relation from the subtree memo (no lattice traversal, far
// fewer partition misses) and produces identical constraints.
func TestEngineWarmLayerReuse(t *testing.T) {
	h := buildWarehouse(t, relation.Options{})
	eng := NewEngine(Options{PropagatePartial: true})

	cold, err := eng.Discover(context.Background(), h)
	if err != nil {
		t.Fatal(err)
	}
	warm, err := eng.Discover(context.Background(), h)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(fdStrings(cold), fdStrings(warm)) {
		t.Fatalf("warm run changed FDs:\ncold %v\nwarm %v", fdStrings(cold), fdStrings(warm))
	}
	if !reflect.DeepEqual(cold.Keys, warm.Keys) {
		t.Fatalf("warm run changed keys: %v vs %v", cold.Keys, warm.Keys)
	}
	if cold.Stats.RelationsReused != 0 {
		t.Errorf("cold run reused %d relations, want 0", cold.Stats.RelationsReused)
	}
	if warm.Stats.RelationsReused != cold.Stats.Relations {
		t.Errorf("warm run reused %d of %d relations", warm.Stats.RelationsReused, cold.Stats.Relations)
	}
	if warm.Stats.NodesVisited != 0 {
		t.Errorf("warm run visited %d lattice nodes, want 0 (full subtree reuse)", warm.Stats.NodesVisited)
	}
	if warm.Stats.PartitionCacheMisses >= cold.Stats.PartitionCacheMisses {
		t.Errorf("warm run should miss less: cold %d misses, warm %d",
			cold.Stats.PartitionCacheMisses, warm.Stats.PartitionCacheMisses)
	}
}

// TestEngineWarmEviction runs more hierarchies through one engine
// than the warm cap retains and checks the oldest entries are
// evicted while the most recent stay warm.
func TestEngineWarmEviction(t *testing.T) {
	eng := NewEngine(Options{})
	hs := make([]*relation.Hierarchy, engineWarmHierarchies+2)
	for i := range hs {
		hs[i] = buildWarehouse(t, relation.Options{})
		if _, err := eng.Discover(context.Background(), hs[i]); err != nil {
			t.Fatal(err)
		}
	}
	if n := len(eng.warm); n != engineWarmHierarchies {
		t.Fatalf("warm layer holds %d hierarchies, cap is %d", n, engineWarmHierarchies)
	}
	for i, h := range hs {
		warmParts, _ := eng.warmFor(h)
		warm := warmParts != nil
		wantWarm := i >= len(hs)-engineWarmHierarchies
		if warm != wantWarm {
			t.Errorf("hierarchy %d: warm=%v, want %v", i, warm, wantWarm)
		}
	}
}

// TestEngineNaiveStaysCold pins the differential-baseline guarantee:
// NaivePartitions runs never publish to (or seed from) the warm
// layer, so naive results stay bit-for-bit reproducible.
func TestEngineNaiveStaysCold(t *testing.T) {
	h := buildWarehouse(t, relation.Options{})
	eng := NewEngine(Options{NaivePartitions: true})
	first, err := eng.Discover(context.Background(), h)
	if err != nil {
		t.Fatal(err)
	}
	if w, _ := eng.warmFor(h); w != nil {
		t.Fatal("naive run published to the warm layer")
	}
	second, err := eng.Discover(context.Background(), h)
	if err != nil {
		t.Fatal(err)
	}
	if first.Stats.PartitionCacheHits != second.Stats.PartitionCacheHits ||
		first.Stats.PartitionCacheMisses != second.Stats.PartitionCacheMisses {
		t.Errorf("naive runs diverged: hits %d/%d misses %d/%d",
			first.Stats.PartitionCacheHits, second.Stats.PartitionCacheHits,
			first.Stats.PartitionCacheMisses, second.Stats.PartitionCacheMisses)
	}
}

// TestEngineIntraMatchesWrapper pins Engine.DiscoverIntra to the
// legacy DiscoverIntra wrapper.
func TestEngineIntraMatchesWrapper(t *testing.T) {
	h := buildWarehouse(t, relation.Options{})
	opts := Options{PropagatePartial: true}
	want, err := DiscoverIntra(h, opts)
	if err != nil {
		t.Fatal(err)
	}
	got, err := NewEngine(opts).DiscoverIntra(context.Background(), h)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(fdStrings(want), fdStrings(got)) {
		t.Fatalf("engine intra differs from wrapper:\n%v\n%v", fdStrings(want), fdStrings(got))
	}
	for _, fd := range got.FDs {
		if fd.Inter {
			t.Errorf("intra-only discovery reported inter-relation FD %s", fd)
		}
	}
}

// TestRunPlanRejectsBadIndex guards the Relation.Index invariant the
// per-run slices depend on: a hierarchy whose relations were not laid
// out by relation.Build fails plan with a clear error rather than
// corrupting depth tables.
func TestRunPlanRejectsBadIndex(t *testing.T) {
	h := buildWarehouse(t, relation.Options{})
	h.Relations[1].Index = 7
	defer func() { h.Relations[1].Index = 1 }()
	_, err := NewEngine(Options{}).Discover(context.Background(), h)
	if err == nil || !strings.Contains(err.Error(), "hierarchies must come from relation.Build") {
		t.Fatalf("expected index-invariant error, got %v", err)
	}
}
