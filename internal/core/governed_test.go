package core

import (
	"context"
	"errors"
	"strings"
	"testing"
	"time"

	"discoverxfd/internal/faultinject"
	"discoverxfd/internal/relation"
	"discoverxfd/internal/xmlgen"
)

func buildAuction(t *testing.T) *relation.Hierarchy {
	t.Helper()
	ds := xmlgen.Auction(xmlgen.DefaultAuction())
	h, err := relation.Build(ds.Tree, ds.Schema, relation.Options{})
	if err != nil {
		t.Fatal(err)
	}
	return h
}

// TestDeadlineReturnsPartialResult is the headline acceptance test: a
// discovery run whose deadline fires mid-traversal must return a
// partial Result with Stats.Truncated set — no error, no hang, no
// goroutine leak. The 16-attribute wide dataset takes on the order of
// a second to traverse exhaustively, so a 50ms deadline reliably
// fires mid-lattice.
func TestDeadlineReturnsPartialResult(t *testing.T) {
	ds := xmlgen.Wide(xmlgen.DefaultWide(16))
	h, err := relation.Build(ds.Tree, ds.Schema, relation.Options{})
	if err != nil {
		t.Fatal(err)
	}

	for _, parallel := range []bool{false, true} {
		name := "serial"
		if parallel {
			name = "parallel"
		}
		t.Run(name, func(t *testing.T) {
			defer faultinject.CheckGoroutines(t)()
			start := time.Now()
			res, err := Discover(h, Options{
				PropagatePartial: true,
				Parallel:         parallel,
				Deadline:         time.Now().Add(50 * time.Millisecond),
			})
			elapsed := time.Since(start)
			if err != nil {
				t.Fatalf("deadline must degrade gracefully, got error: %v", err)
			}
			if !res.Stats.Truncated {
				t.Fatalf("50ms deadline did not truncate a run that takes ~1s (finished in %v)", elapsed)
			}
			if res.Stats.TruncatedReason == "" {
				t.Error("Truncated set but TruncatedReason empty")
			}
			// Graceful means prompt: the run must stop soon after the
			// deadline, not finish the full traversal first.
			if elapsed > 2*time.Second {
				t.Errorf("truncated run still took %v", elapsed)
			}
			if res.Stats.NodesVisited == 0 {
				t.Error("partial result examined no lattice nodes at all")
			}
		})
	}
}

// TestExpiredDeadlineTruncatesDeterministically uses an
// already-expired deadline so truncation is guaranteed, not timing
// dependent.
func TestExpiredDeadlineTruncatesDeterministically(t *testing.T) {
	h := buildAuction(t)
	res, err := Discover(h, Options{
		PropagatePartial: true,
		Deadline:         time.Now().Add(-time.Second),
	})
	if err != nil {
		t.Fatalf("expired deadline must not error: %v", err)
	}
	if !res.Stats.Truncated {
		t.Fatal("expired deadline did not mark the result truncated")
	}
	if !strings.Contains(res.Stats.TruncatedReason, "deadline") {
		t.Errorf("TruncatedReason = %q, want mention of the deadline", res.Stats.TruncatedReason)
	}
}

// TestCancelledContextIsAnError distinguishes the two stop channels:
// budget exhaustion truncates, cancellation errors.
func TestCancelledContextIsAnError(t *testing.T) {
	h := buildAuction(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, parallel := range []bool{false, true} {
		res, err := DiscoverContext(ctx, h, Options{PropagatePartial: true, Parallel: parallel})
		if !errors.Is(err, context.Canceled) {
			t.Errorf("parallel=%v: err = %v, want context.Canceled", parallel, err)
		}
		if res != nil {
			t.Errorf("parallel=%v: cancelled discovery returned a Result", parallel)
		}
	}
}

// TestMaxLatticeLevelTruncates checks the lattice-level cap: results
// are the subset reachable at low levels, and the Stats say so.
func TestMaxLatticeLevelTruncates(t *testing.T) {
	h := buildAuction(t)
	full, err := Discover(h, Options{PropagatePartial: true})
	if err != nil {
		t.Fatal(err)
	}
	capped, err := Discover(h, Options{PropagatePartial: true, MaxLatticeLevel: 1})
	if err != nil {
		t.Fatal(err)
	}
	if !capped.Stats.Truncated {
		t.Fatal("lattice cap did not mark the result truncated")
	}
	if !strings.Contains(capped.Stats.TruncatedReason, "lattice") {
		t.Errorf("TruncatedReason = %q, want mention of the lattice cap", capped.Stats.TruncatedReason)
	}
	if capped.Stats.NodesVisited >= full.Stats.NodesVisited {
		t.Errorf("capped run visited %d lattice nodes, full run %d; cap had no effect",
			capped.Stats.NodesVisited, full.Stats.NodesVisited)
	}
	// Every single-attribute key found by the capped run must also be a
	// key of the full run: truncation loses answers, never invents them.
	fullKeys := map[string]bool{}
	for _, k := range full.Keys {
		fullKeys[k.String()] = true
	}
	for _, k := range capped.Keys {
		if !fullKeys[k.String()] {
			t.Errorf("capped run invented key %s", k)
		}
	}
}

// TestInjectedPanicSurfacesAsError checks panic containment: a panic
// in a (possibly parallel) worker becomes an error from Discover with
// the relation named, not a process crash, and leaks no goroutines.
func TestInjectedPanicSurfacesAsError(t *testing.T) {
	h := buildAuction(t)
	for _, parallel := range []bool{false, true} {
		name := "serial"
		if parallel {
			name = "parallel"
		}
		t.Run(name, func(t *testing.T) {
			defer faultinject.CheckGoroutines(t)()
			hook, fired := faultinject.PanicHook("bid")
			res, err := Discover(h, Options{
				PropagatePartial: true,
				Parallel:         parallel,
				RelationHook:     hook,
			})
			if err == nil {
				t.Fatal("injected panic did not surface as an error")
			}
			if !strings.Contains(err.Error(), "panic") || !strings.Contains(err.Error(), "/site/auction/bid") {
				t.Errorf("err = %q, want it to name the panic and the relation", err)
			}
			if res != nil {
				t.Error("panicked discovery returned a Result alongside the error")
			}
			if fired.Load() == 0 {
				t.Error("panic hook never fired")
			}
		})
	}
}

// TestUnfiredGovernorIsByteIdentical checks the no-fault determinism
// contract: running under a context that never fires and a generous
// deadline yields a byte-identical result to the plain run.
func TestUnfiredGovernorIsByteIdentical(t *testing.T) {
	h := buildAuction(t)
	plain, err := Discover(h, Options{PropagatePartial: true, ApproxError: 0.05})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	governed, err := DiscoverContext(ctx, h, Options{
		PropagatePartial: true,
		ApproxError:      0.05,
		Deadline:         time.Now().Add(time.Hour),
	})
	if err != nil {
		t.Fatal(err)
	}
	if governed.Stats.Truncated {
		t.Fatal("unfired governor marked the result truncated")
	}
	if got, want := render(governed), render(plain); got != want {
		t.Errorf("governed result differs from plain run\nplain:\n%s\ngoverned:\n%s", want, got)
	}
}
