package core

import (
	"strings"
	"testing"

	"discoverxfd/internal/schema"
)

func TestEvaluateConflicts(t *testing.T) {
	h := evalHierarchy(t, `
<w><g><gx>1</gx>
  <c><a>x</a><b>p</b></c>
  <c><a>x</a><b>q</b></c>
  <c><a>y</a><b>r</b></c>
  <c><a>y</a><b>r</b></c>
</g></w>`, evalSchema)
	groups, err := EvaluateConflicts(h, "/w/g/c", []schema.RelPath{"./a"}, "./b")
	if err != nil {
		t.Fatal(err)
	}
	if len(groups) != 1 || len(groups[0].Tuples) != 2 {
		t.Fatalf("conflicts: %v", groups)
	}
	// Agreeing groups are not conflicts; holds-case returns empty.
	groups, err = EvaluateConflicts(h, "/w/g/c", []schema.RelPath{"./a", "./b"}, "./a")
	if err != nil {
		t.Fatal(err)
	}
	if len(groups) != 0 {
		t.Fatalf("expected no conflicts: %v", groups)
	}
	// Errors propagate.
	if _, err := EvaluateConflicts(h, "/w/nope", []schema.RelPath{"./a"}, "./b"); err == nil ||
		!strings.Contains(err.Error(), "no tuple class") {
		t.Fatalf("unknown class: %v", err)
	}
}

func TestCompanionsCore(t *testing.T) {
	h := evalHierarchy(t, `
<w><g><gx>1</gx>
  <c><a>x</a><b>p</b></c>
  <c><a>x</a><b>p</b></c>
  <c><a>y</a><b>q</b></c>
  <c><b>z</b></c>
</g></w>`, evalSchema)
	comp, err := Companions(h, "/w/g/c", []schema.RelPath{"./a"}, "./b", 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(comp) != 1 || comp[0] != 1 {
		t.Fatalf("companions of tuple 0: %v", comp)
	}
	// A tuple with a missing LHS value is vacuous: no companions.
	comp, err = Companions(h, "/w/g/c", []schema.RelPath{"./a"}, "./b", 3)
	if err != nil {
		t.Fatal(err)
	}
	if comp != nil {
		t.Fatalf("vacuous tuple should have no companions: %v", comp)
	}
}

func TestRedundancyString(t *testing.T) {
	r := Redundancy{
		FD:              FD{Class: "/w/g/c", LHS: []schema.RelPath{"./a"}, RHS: "./b"},
		RedundantValues: 3,
		Groups:          2,
	}
	s := r.String()
	if !strings.Contains(s, "3 redundant value(s) in 2 group(s)") {
		t.Fatalf("Redundancy.String: %q", s)
	}
}

func TestDiscoverRelationDirect(t *testing.T) {
	h := evalHierarchy(t, `
<w><g><gx>1</gx>
  <c><a>x</a><b>p</b></c>
  <c><a>x</a><b>p</b></c>
  <c><a>y</a><b>q</b></c>
</g></w>`, evalSchema)
	rel := h.ByPivot("/w/g/c")
	fds, keys, stats, err := DiscoverRelation(rel, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Relations != 1 || stats.Tuples != 3 {
		t.Fatalf("stats: %+v", stats)
	}
	found := false
	for _, fd := range fds {
		if fd.RHS == "./b" && len(fd.LHS) == 1 && fd.LHS[0] == "./a" {
			found = true
		}
	}
	if !found {
		t.Fatalf("a -> b not found: %v (keys %v)", fds, keys)
	}
}

func TestOptionDefaults(t *testing.T) {
	var o Options
	if o.maxPartialAttrs() != 2 || o.maxTargetPairs() != 1<<16 || o.maxTargets() != 1<<16 {
		t.Fatal("defaults wrong")
	}
	o = Options{MaxPartialAttrs: 3, MaxTargetPairs: 10, MaxTargetsPerRelation: 20}
	if o.maxPartialAttrs() != 3 || o.maxTargetPairs() != 10 || o.maxTargets() != 20 {
		t.Fatal("overrides ignored")
	}
}

func TestConstraintStringForms(t *testing.T) {
	c := Constraint{FD: FD{Class: "/a/b", LHS: []schema.RelPath{"./x"}, RHS: "./y"}}
	if c.String() != "{./x} -> ./y w.r.t. C(/a/b)" {
		t.Fatalf("FD constraint string: %q", c.String())
	}
	c.IsKey = true
	if c.String() != "{./x} KEY of C(/a/b)" {
		t.Fatalf("key constraint string: %q", c.String())
	}
}
