package xmlgen

import (
	"testing"

	"discoverxfd/internal/core"
	"discoverxfd/internal/relation"
)

// TestGoldenDiscoveryCounts pins the exact discovery output sizes for
// every default dataset. Generators and discovery are deterministic,
// so any change here is a behaviour change that deserves review (an
// algorithmic fix, a generator tweak, or a regression).
func TestGoldenDiscoveryCounts(t *testing.T) {
	type golden struct {
		nodes, tuples, fds, interFDs, keys, redundant int
	}
	want := map[string]golden{
		"warehouse(states=4,stores=3,books=12,catalog=18)": {873, 403, 12, 6, 5, 922},
		"dblp(venues=6,articles=40,pool=120)":              {1696, 723, 17, 13, 4, 1466},
		"psd(entries=150,pool=60,sets=4)":                  {4106, 1809, 104, 25, 4, 12828},
		"auction(factor=1)":                                {1908, 411, 7, 5, 15, 114},
		"mondial(countries=8,pool=30)":                     {715, 194, 22, 16, 25, 630},
		"catalog(products=120,skus=40)":                    {1084, 362, 8, 0, 8, 572},
	}
	for _, ds := range datasets() {
		h, err := relation.Build(ds.Tree, ds.Schema, relation.Options{})
		if err != nil {
			t.Fatalf("%s: %v", ds.Name, err)
		}
		res, err := core.Discover(h, core.Options{PropagatePartial: true})
		if err != nil {
			t.Fatalf("%s: %v", ds.Name, err)
		}
		inter := 0
		for _, f := range res.FDs {
			if f.Inter {
				inter++
			}
		}
		red := 0
		for _, r := range res.Redundancies {
			red += r.RedundantValues
		}
		got := golden{ds.Tree.Size(), h.TotalTuples(), len(res.FDs), inter, len(res.Keys), red}
		if w, ok := want[ds.Name]; !ok {
			t.Errorf("%s: no golden entry; got %+v", ds.Name, got)
		} else if got != w {
			t.Errorf("%s: got %+v, want %+v", ds.Name, got, w)
		}
	}
}
