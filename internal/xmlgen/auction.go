package xmlgen

import (
	"fmt"

	"discoverxfd/internal/datatree"
	"discoverxfd/internal/schema"
)

// AuctionParams sizes the XMark-style auction benchmark generator.
// Factor plays the role of XMark's scale factor: all entity counts
// grow linearly in it.
type AuctionParams struct {
	// Factor scales the document; Factor 1 yields roughly 6 regions ×
	// 20 items, 100 people and 60 auctions (~3k nodes).
	Factor int
	// Seed makes the dataset deterministic.
	Seed int64
}

// DefaultAuction returns the parameters used by experiment E1.
func DefaultAuction() AuctionParams { return AuctionParams{Factor: 1, Seed: 4} }

// AuctionSchema declares the benchmark subset: regions with items,
// people, and open auctions with bidder sets.
var AuctionSchema = schema.MustParse(`
site: Rcd
  region: SetOf Rcd
    name: str
    item: SetOf Rcd
      id: str
      name: str
      category: str
      quantity: str
      seller: str
  person: SetOf Rcd
    id: str
    name: str
    email: str
    country: str
  auction: SetOf Rcd
    id: str
    itemref: str
    sellerref: str
    reserve: str
    bid: SetOf Rcd
      personref: str
      increase: str
`)

// Auction generates an auction site document. Ground-truth
// constraints:
//
//	KEY {./id}   of C_item, C_person and C_auction;
//	FD  {./name} -> ./category     w.r.t. C_item — items instantiate a
//	    fixed item-type catalog;
//	FD  {./itemref} -> ./sellerref w.r.t. C_auction — the seller comes
//	    from the referenced item;
//	FD  {../itemref, ./personref} -> ./increase w.r.t. C_bid — a
//	    person's increase on an item is fixed (inter-relation).
func Auction(p AuctionParams) Dataset {
	if p.Factor < 1 {
		p.Factor = 1
	}
	r := newRNG(p.Seed)

	regions := []string{"africa", "asia", "australia", "europe", "namerica", "samerica"}
	nItemsPerRegion := 20 * p.Factor
	nPeople := 100 * p.Factor
	nAuctions := 60 * p.Factor

	type itemType struct{ name, category string }
	types := make([]itemType, 30)
	for i := range types {
		types[i] = itemType{
			name:     titleCase(titleWords(r, 2)) + fmt.Sprintf(" %c", 'A'+i%26),
			category: fmt.Sprintf("category%d", 1+i%10),
		}
	}

	root := &datatree.Node{Label: "site"}
	var itemIDs []string
	sellerOfItem := make(map[string]string)
	itemSeq := 0
	var personIDs []string
	for i := 0; i < nPeople; i++ {
		personIDs = append(personIDs, fmt.Sprintf("person%d", i))
	}

	for _, rg := range regions {
		region := root.AddChild("region")
		region.AddLeaf("name", rg)
		for i := 0; i < nItemsPerRegion; i++ {
			itemSeq++
			id := fmt.Sprintf("item%d", itemSeq)
			t := pick(r, types)
			seller := pick(r, personIDs)
			item := region.AddChild("item")
			item.AddLeaf("id", id)
			item.AddLeaf("name", t.name)
			item.AddLeaf("category", t.category)
			item.AddLeaf("quantity", fmt.Sprintf("%d", 1+r.Intn(5)))
			item.AddLeaf("seller", seller)
			itemIDs = append(itemIDs, id)
			sellerOfItem[id] = seller
		}
	}

	for i := 0; i < nPeople; i++ {
		person := root.AddChild("person")
		name := personName(r)
		person.AddLeaf("id", personIDs[i])
		person.AddLeaf("name", name)
		person.AddLeaf("email", fmt.Sprintf("u%d@example.org", i))
		person.AddLeaf("country", pick(r, countries))
	}

	// increase per (item, person): the inter-relation ground truth.
	incOf := make(map[string]string)
	increase := func(item, person string) string {
		k := item + "\x00" + person
		if v, ok := incOf[k]; ok {
			return v
		}
		v := fmt.Sprintf("%d.00", 1+r.Intn(50))
		incOf[k] = v
		return v
	}

	for i := 0; i < nAuctions; i++ {
		itemID := pick(r, itemIDs)
		auction := root.AddChild("auction")
		auction.AddLeaf("id", fmt.Sprintf("auction%d", i))
		auction.AddLeaf("itemref", itemID)
		auction.AddLeaf("sellerref", sellerOfItem[itemID])
		auction.AddLeaf("reserve", fmt.Sprintf("%d.00", 10+r.Intn(500)))
		nBids := r.Intn(5)
		for b := 0; b < nBids; b++ {
			p := pick(r, personIDs)
			bid := auction.AddChild("bid")
			bid.AddLeaf("personref", p)
			bid.AddLeaf("increase", increase(itemID, p))
		}
	}
	tree := datatree.NewTree(root)

	item := schema.Path("/site/region/item")
	person := schema.Path("/site/person")
	auction := schema.Path("/site/auction")
	bid := schema.Path("/site/auction/bid")
	return Dataset{
		Name:   fmt.Sprintf("auction(factor=%d)", p.Factor),
		Tree:   tree,
		Schema: AuctionSchema,
		GroundTruth: []Constraint{
			{Class: item, LHS: []schema.RelPath{"./id"}, RHS: "./name", Key: true},
			{Class: person, LHS: []schema.RelPath{"./id"}, RHS: "./name", Key: true},
			{Class: auction, LHS: []schema.RelPath{"./id"}, RHS: "./itemref", Key: true},
			{Class: item, LHS: []schema.RelPath{"./name"}, RHS: "./category"},
			{Class: auction, LHS: []schema.RelPath{"./itemref"}, RHS: "./sellerref"},
			{Class: bid, LHS: []schema.RelPath{"../itemref", "./personref"}, RHS: "./increase"},
		},
	}
}
