package xmlgen

import (
	"fmt"

	"discoverxfd/internal/datatree"
	"discoverxfd/internal/schema"
)

// CatalogParams sizes the attribute-heavy product catalog generator.
// Unlike the other datasets it stores most data in XML *attributes*
// and mixed-content text, exercising the "@"-labeled leaf paths of
// the data model end to end.
type CatalogParams struct {
	// Products is the number of product elements.
	Products int
	// SKUPool is the number of distinct SKUs; products sample from it
	// (duplicate listings inject the redundancies).
	SKUPool int
	// Seed makes the dataset deterministic.
	Seed int64
}

// DefaultCatalog returns the parameters used in tests.
func DefaultCatalog() CatalogParams {
	return CatalogParams{Products: 120, SKUPool: 40, Seed: 8}
}

// CatalogSchema declares the attribute-heavy schema: @sku, @line and
// @currency are XML attributes, @text the mixed-content tier label.
var CatalogSchema = schema.MustParse(`
catalog: Rcd
  vendor: str
  product: SetOf Rcd
    @sku: str
    @line: str
    @text: str
    price: Rcd
      @currency: str
      amount: str
    tag: SetOf str
`)

// Catalog generates the product catalog. Ground-truth constraints:
//
//	FD {./@sku} -> ./@line           w.r.t. C_product — the SKU fixes
//	   the product line (duplicated listings make it redundant);
//	FD {./@sku} -> ./tag             w.r.t. C_product — and the tag SET;
//	FD {./@line} -> ./@text          w.r.t. C_product — the line fixes
//	   the mixed-content tier label;
//	FD {./@sku} -> ./price/@currency w.r.t. C_product.
func Catalog(p CatalogParams) Dataset {
	r := newRNG(p.Seed)
	type sku struct {
		id, line, currency string
		tags               []string
	}
	lines := []string{"alpha", "beta", "gamma"}
	tierOf := map[string]string{"alpha": "standard", "beta": "premium", "gamma": "clearance"}
	tagPool := []string{"new", "sale", "eco", "import", "bulk", "fragile", "digital", "oversize"}
	pool := make([]sku, p.SKUPool)
	for i := range pool {
		pool[i] = sku{
			id:       fmt.Sprintf("SKU-%04d", i+1),
			line:     pick(r, lines),
			currency: pick(r, []string{"USD", "EUR", "KRW"}),
			tags:     sample(r, tagPool, 1+r.Intn(3)),
		}
	}

	root := &datatree.Node{Label: "catalog"}
	root.AddLeaf("vendor", "Acme Trading")
	for i := 0; i < p.Products; i++ {
		sk := pick(r, pool)
		prod := root.AddChild("product")
		prod.AddLeaf("@sku", sk.id)
		prod.AddLeaf("@line", sk.line)
		prod.AddLeaf("@text", tierOf[sk.line])
		price := prod.AddChild("price")
		price.AddLeaf("@currency", sk.currency)
		price.AddLeaf("amount", fmt.Sprintf("%d.%02d", 1+r.Intn(500), r.Intn(100)))
		for _, tg := range shuffled(r, sk.tags) {
			prod.AddLeaf("tag", tg)
		}
	}
	tree := datatree.NewTree(root)

	product := schema.Path("/catalog/product")
	return Dataset{
		Name:   fmt.Sprintf("catalog(products=%d,skus=%d)", p.Products, p.SKUPool),
		Tree:   tree,
		Schema: CatalogSchema,
		GroundTruth: []Constraint{
			{Class: product, LHS: []schema.RelPath{"./@sku"}, RHS: "./@line"},
			{Class: product, LHS: []schema.RelPath{"./@sku"}, RHS: "./tag"},
			{Class: product, LHS: []schema.RelPath{"./@line"}, RHS: "./@text"},
			{Class: product, LHS: []schema.RelPath{"./@sku"}, RHS: "./price/@currency"},
		},
	}
}
