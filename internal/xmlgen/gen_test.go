package xmlgen

import (
	"testing"

	"discoverxfd/internal/core"
	"discoverxfd/internal/datatree"
	"discoverxfd/internal/relation"
)

func datasets() []Dataset {
	return []Dataset{
		Warehouse(DefaultWarehouse()),
		DBLP(DefaultDBLP()),
		PSD(DefaultPSD()),
		Auction(DefaultAuction()),
		Mondial(DefaultMondial()),
		Catalog(DefaultCatalog()),
	}
}

// TestGeneratedDocumentsConform checks every generator emits a
// document conforming to its declared schema and that schema
// inference agrees on set-ness.
func TestGeneratedDocumentsConform(t *testing.T) {
	for _, ds := range datasets() {
		if err := datatree.Conform(ds.Tree, ds.Schema); err != nil {
			t.Errorf("%s: %v", ds.Name, err)
		}
	}
}

// TestGeneratorsDeterministic checks that the same parameters produce
// byte-identical documents.
func TestGeneratorsDeterministic(t *testing.T) {
	a := Warehouse(DefaultWarehouse())
	b := Warehouse(DefaultWarehouse())
	if a.Tree.XMLString() != b.Tree.XMLString() {
		t.Errorf("warehouse generator is not deterministic")
	}
	c := Warehouse(WarehouseParams{States: 4, StoresPerState: 3, BooksPerStore: 12,
		CatalogSize: 18, Chains: 4, MissingPricePermille: 100, Seed: 99})
	if a.Tree.XMLString() == c.Tree.XMLString() {
		t.Errorf("different seeds should produce different documents")
	}
}

// TestGroundTruthHolds verifies every injected constraint directly
// against the data via the independent evaluator.
func TestGroundTruthHolds(t *testing.T) {
	for _, ds := range datasets() {
		h, err := relation.Build(ds.Tree, ds.Schema, relation.Options{})
		if err != nil {
			t.Fatalf("%s: build: %v", ds.Name, err)
		}
		for _, c := range ds.GroundTruth {
			ev, err := core.Evaluate(h, c.Class, c.LHS, c.RHS)
			if err != nil {
				t.Fatalf("%s: evaluate %s: %v", ds.Name, c, err)
			}
			if !ev.Holds {
				t.Errorf("%s: ground truth violated: %s (%d violations)", ds.Name, c, ev.Violations)
			}
			if c.Key && !ev.LHSIsKey {
				t.Errorf("%s: ground-truth key is not a key: %s", ds.Name, c)
			}
			if !c.Key && ev.LHSIsKey {
				t.Errorf("%s: ground-truth FD unexpectedly has a key LHS (no redundancy): %s", ds.Name, c)
			}
		}
	}
}

// TestDiscoveryFindsGroundTruth runs full DiscoverXFD on every
// dataset and checks that each injected FD is implied by a discovered
// FD (same class and RHS, LHS ⊆ the injected LHS) and each injected
// key by a discovered key.
func TestDiscoveryFindsGroundTruth(t *testing.T) {
	for _, ds := range datasets() {
		h, err := relation.Build(ds.Tree, ds.Schema, relation.Options{})
		if err != nil {
			t.Fatalf("%s: build: %v", ds.Name, err)
		}
		res, err := core.Discover(h, core.Options{PropagatePartial: true})
		if err != nil {
			t.Fatalf("%s: discover: %v", ds.Name, err)
		}
		for _, c := range ds.GroundTruth {
			if c.Key {
				if !impliedByKey(res, c) {
					t.Errorf("%s: injected key not implied by any discovered key: %s", ds.Name, c)
				}
				continue
			}
			if !impliedByFD(res, c) {
				t.Errorf("%s: injected FD not implied by any discovered FD: %s", ds.Name, c)
			}
		}
	}
}

func impliedByFD(res *core.Result, c Constraint) bool {
	want := make(map[string]bool, len(c.LHS))
	for _, p := range c.LHS {
		want[string(p)] = true
	}
	for _, fd := range res.FDs {
		if fd.Class != c.Class || fd.RHS != c.RHS {
			continue
		}
		ok := true
		for _, p := range fd.LHS {
			if !want[string(p)] {
				ok = false
				break
			}
		}
		if ok {
			return true
		}
	}
	return false
}

func impliedByKey(res *core.Result, c Constraint) bool {
	want := make(map[string]bool, len(c.LHS))
	for _, p := range c.LHS {
		want[string(p)] = true
	}
	for _, k := range res.Keys {
		if k.Class != c.Class {
			continue
		}
		ok := true
		for _, p := range k.LHS {
			if !want[string(p)] {
				ok = false
				break
			}
		}
		if ok {
			return true
		}
	}
	return false
}
