package xmlgen

import (
	"fmt"
	"strings"

	"discoverxfd/internal/datatree"
	"discoverxfd/internal/schema"
)

// WideParams sizes the synthetic wide-relation generator used by
// experiment E4 (schema-width sensitivity): a single set element
// whose record payload has Attrs leaf attributes. Lattice size — and
// therefore relational FD discovery cost — grows exponentially in
// Attrs, which is the paper's argument for why flat-representation
// discovery does not scale with schema complexity.
type WideParams struct {
	// Rows is the number of tuples.
	Rows int
	// Attrs is the number of leaf attributes per tuple (2..26).
	Attrs int
	// Domain is the number of distinct values per independent
	// attribute; smaller domains mean larger partition groups.
	Domain int
	// FDEvery injects a dependency a_{i} -> a_{i+1} for every i
	// divisible by FDEvery (0 disables injection, making attributes
	// independent).
	FDEvery int
	// NoisePermille corrupts each derived value with probability
	// n/1000, turning the injected dependencies into approximate FDs
	// (experiment E8). Corrupted values are drawn outside the normal
	// derived domain so every corruption is a real violation.
	NoisePermille int
	// Seed makes the dataset deterministic.
	Seed int64
}

// DefaultWide returns the parameters used by experiment E4 at width w.
func DefaultWide(w int) WideParams {
	return WideParams{Rows: 400, Attrs: w, Domain: 12, FDEvery: 3, Seed: 5}
}

// WideSchema builds the flat one-set-element schema with n leaf
// attributes named a1..an.
func WideSchema(n int) *schema.Schema {
	var b strings.Builder
	b.WriteString("table: Rcd\n  row: SetOf Rcd\n")
	for i := 1; i <= n; i++ {
		fmt.Fprintf(&b, "    a%d: str\n", i)
	}
	return schema.MustParse(b.String())
}

// Wide generates the synthetic wide relation. When FDEvery > 0, the
// injected dependencies {./a_i} -> ./a_{i+1} (for i ≡ 0 mod FDEvery)
// are reported as ground truth.
func Wide(p WideParams) Dataset {
	p = p.clamped()
	root := &datatree.Node{Label: "table"}
	fillWideRows(p, newRNG(p.Seed), root)
	return Dataset{
		Name:        fmt.Sprintf("wide(rows=%d,attrs=%d,domain=%d)", p.Rows, p.Attrs, p.Domain),
		Tree:        datatree.NewTree(root),
		Schema:      WideSchema(p.Attrs),
		GroundTruth: wideGroundTruth(p, "/table/row"),
	}
}

func (p WideParams) clamped() WideParams {
	if p.Attrs < 2 {
		p.Attrs = 2
	}
	if p.Attrs > 26 {
		p.Attrs = 26
	}
	if p.Domain < 2 {
		p.Domain = 2
	}
	return p
}

// wideDerived computes the derived-attribute mask: derived[i] = true
// means a_i is a function of a_{i-1}.
func wideDerived(p WideParams) []bool {
	derived := make([]bool, p.Attrs+1)
	if p.FDEvery > 0 {
		for i := p.FDEvery; i+1 <= p.Attrs; i += p.FDEvery {
			derived[i+1] = true
		}
	}
	return derived
}

// fillWideRows appends p.Rows wide row elements under parent.
func fillWideRows(p WideParams, r rng, parent *datatree.Node) {
	derived := wideDerived(p)
	fn := make([]map[string]string, p.Attrs+1)
	for i := range fn {
		fn[i] = make(map[string]string)
	}
	for t := 0; t < p.Rows; t++ {
		row := parent.AddChild("row")
		prev := ""
		for i := 1; i <= p.Attrs; i++ {
			var v string
			if derived[i] {
				var ok bool
				v, ok = fn[i][prev]
				if !ok {
					v = fmt.Sprintf("d%d_%d", i, len(fn[i])%p.Domain)
					fn[i][prev] = v
				}
				if p.NoisePermille > 0 && r.Intn(1000) < p.NoisePermille {
					v = fmt.Sprintf("noise%d_%d", i, t)
				}
			} else {
				v = fmt.Sprintf("v%d_%d", i, r.Intn(p.Domain))
			}
			row.AddLeaf(fmt.Sprintf("a%d", i), v)
			prev = v
		}
	}
}

// wideGroundTruth lists the injected dependencies of one wide table
// whose row class lives at rowPath.
func wideGroundTruth(p WideParams, rowPath schema.Path) []Constraint {
	derived := wideDerived(p)
	var gt []Constraint
	for i := 1; i < p.Attrs; i++ {
		if derived[i+1] {
			gt = append(gt, Constraint{
				Class: rowPath,
				LHS:   []schema.RelPath{schema.RelPath(fmt.Sprintf("./a%d", i))},
				RHS:   schema.RelPath(fmt.Sprintf("./a%d", i+1)),
			})
		}
	}
	return gt
}

// WideForestParams sizes WideForest: Tables unrelated sibling wide
// tables under one document root, each generated like Wide from the
// shared Table parameters (with per-table seeds, so the tables hold
// distinct data).
type WideForestParams struct {
	Tables int
	Table  WideParams
}

// WideForest generates a document of Tables unrelated wide set
// elements t1..tK, each with its own row class /forest/tk/row. The
// tables share no data, so their relations — and the discovery work
// over them — are independent: the hierarchical representation's
// additive-cost argument (experiment E3), and the corpus the E-update
// benchmark mutates one table of while the others stay warm.
func WideForest(p WideForestParams) Dataset {
	if p.Tables < 1 {
		p.Tables = 1
	}
	tp := p.Table.clamped()

	var b strings.Builder
	b.WriteString("forest: Rcd\n")
	for k := 1; k <= p.Tables; k++ {
		fmt.Fprintf(&b, "  t%d: Rcd\n    row: SetOf Rcd\n", k)
		for i := 1; i <= tp.Attrs; i++ {
			fmt.Fprintf(&b, "      a%d: str\n", i)
		}
	}

	root := &datatree.Node{Label: "forest"}
	var gt []Constraint
	for k := 1; k <= p.Tables; k++ {
		kp := tp
		kp.Seed = tp.Seed + int64(k)
		tbl := root.AddChild(fmt.Sprintf("t%d", k))
		fillWideRows(kp, newRNG(kp.Seed), tbl)
		gt = append(gt, wideGroundTruth(kp, schema.Path(fmt.Sprintf("/forest/t%d/row", k)))...)
	}
	return Dataset{
		Name:        fmt.Sprintf("wide-forest(tables=%d,rows=%d,attrs=%d,domain=%d)", p.Tables, tp.Rows, tp.Attrs, tp.Domain),
		Tree:        datatree.NewTree(root),
		Schema:      schema.MustParse(b.String()),
		GroundTruth: gt,
	}
}
