package xmlgen

import (
	"fmt"
	"strings"

	"discoverxfd/internal/datatree"
	"discoverxfd/internal/schema"
)

// WideParams sizes the synthetic wide-relation generator used by
// experiment E4 (schema-width sensitivity): a single set element
// whose record payload has Attrs leaf attributes. Lattice size — and
// therefore relational FD discovery cost — grows exponentially in
// Attrs, which is the paper's argument for why flat-representation
// discovery does not scale with schema complexity.
type WideParams struct {
	// Rows is the number of tuples.
	Rows int
	// Attrs is the number of leaf attributes per tuple (2..26).
	Attrs int
	// Domain is the number of distinct values per independent
	// attribute; smaller domains mean larger partition groups.
	Domain int
	// FDEvery injects a dependency a_{i} -> a_{i+1} for every i
	// divisible by FDEvery (0 disables injection, making attributes
	// independent).
	FDEvery int
	// NoisePermille corrupts each derived value with probability
	// n/1000, turning the injected dependencies into approximate FDs
	// (experiment E8). Corrupted values are drawn outside the normal
	// derived domain so every corruption is a real violation.
	NoisePermille int
	// Seed makes the dataset deterministic.
	Seed int64
}

// DefaultWide returns the parameters used by experiment E4 at width w.
func DefaultWide(w int) WideParams {
	return WideParams{Rows: 400, Attrs: w, Domain: 12, FDEvery: 3, Seed: 5}
}

// WideSchema builds the flat one-set-element schema with n leaf
// attributes named a1..an.
func WideSchema(n int) *schema.Schema {
	var b strings.Builder
	b.WriteString("table: Rcd\n  row: SetOf Rcd\n")
	for i := 1; i <= n; i++ {
		fmt.Fprintf(&b, "    a%d: str\n", i)
	}
	return schema.MustParse(b.String())
}

// Wide generates the synthetic wide relation. When FDEvery > 0, the
// injected dependencies {./a_i} -> ./a_{i+1} (for i ≡ 0 mod FDEvery)
// are reported as ground truth.
func Wide(p WideParams) Dataset {
	if p.Attrs < 2 {
		p.Attrs = 2
	}
	if p.Attrs > 26 {
		p.Attrs = 26
	}
	if p.Domain < 2 {
		p.Domain = 2
	}
	r := newRNG(p.Seed)

	// derived[i] = true means a_{i+1} is a function of a_i.
	derived := make([]bool, p.Attrs+1)
	if p.FDEvery > 0 {
		for i := p.FDEvery; i+1 <= p.Attrs; i += p.FDEvery {
			derived[i+1] = true
		}
	}
	fn := make([]map[string]string, p.Attrs+1)
	for i := range fn {
		fn[i] = make(map[string]string)
	}

	root := &datatree.Node{Label: "table"}
	for t := 0; t < p.Rows; t++ {
		row := root.AddChild("row")
		prev := ""
		for i := 1; i <= p.Attrs; i++ {
			var v string
			if derived[i] {
				var ok bool
				v, ok = fn[i][prev]
				if !ok {
					v = fmt.Sprintf("d%d_%d", i, len(fn[i])%p.Domain)
					fn[i][prev] = v
				}
				if p.NoisePermille > 0 && r.Intn(1000) < p.NoisePermille {
					v = fmt.Sprintf("noise%d_%d", i, t)
				}
			} else {
				v = fmt.Sprintf("v%d_%d", i, r.Intn(p.Domain))
			}
			row.AddLeaf(fmt.Sprintf("a%d", i), v)
			prev = v
		}
	}
	tree := datatree.NewTree(root)

	rowPath := schema.Path("/table/row")
	var gt []Constraint
	for i := 1; i < p.Attrs; i++ {
		if derived[i+1] {
			gt = append(gt, Constraint{
				Class: rowPath,
				LHS:   []schema.RelPath{schema.RelPath(fmt.Sprintf("./a%d", i))},
				RHS:   schema.RelPath(fmt.Sprintf("./a%d", i+1)),
			})
		}
	}
	return Dataset{
		Name:        fmt.Sprintf("wide(rows=%d,attrs=%d,domain=%d)", p.Rows, p.Attrs, p.Domain),
		Tree:        tree,
		Schema:      WideSchema(p.Attrs),
		GroundTruth: gt,
	}
}
