// Package xmlgen generates the deterministic synthetic datasets used
// by the experiment harness (DESIGN.md, "Substitutions"): the paper's
// warehouse running example, a DBLP-style bibliography, a PIR/PSD-style
// protein database (the real-life dataset family the paper's
// introduction names), and an XMark-style auction benchmark. Every
// generator takes a seed and size knobs, produces a data tree that
// conforms to a fixed declared schema, and reports the ground-truth
// constraints it injected, so tests can verify that discovery finds
// them.
package xmlgen

import (
	"fmt"
	"math/rand"

	"discoverxfd/internal/datatree"
	"discoverxfd/internal/schema"
)

// Dataset bundles a generated document with its schema and the
// constraints the generator enforced by construction.
type Dataset struct {
	// Name identifies the generator and its parameters, e.g.
	// "warehouse(states=4,stores=3,books=20)".
	Name string
	// Tree is the generated document.
	Tree *datatree.Tree
	// Schema is the declared schema the document conforms to.
	Schema *schema.Schema
	// GroundTruth lists constraints that hold by construction. Each
	// is expected to be satisfied on the data; redundancy-indicating
	// ones should surface (possibly with a smaller minimal LHS) in
	// discovery output.
	GroundTruth []Constraint
}

// Constraint is one injected ground-truth constraint in the FD
// notation of the paper.
type Constraint struct {
	Class schema.Path
	LHS   []schema.RelPath
	RHS   schema.RelPath
	// Key marks constraints injected as keys (unique LHS) rather than
	// redundancy-indicating FDs.
	Key bool
}

func (c Constraint) String() string {
	kind := "FD"
	if c.Key {
		kind = "KEY"
	}
	lhs := ""
	for i, r := range c.LHS {
		if i > 0 {
			lhs += ", "
		}
		lhs += string(r)
	}
	return fmt.Sprintf("%s {%s} -> %s w.r.t. C(%s)", kind, lhs, c.RHS, c.Class)
}

// rng wraps math/rand with the helpers generators need. All
// generators are deterministic for a fixed seed.
type rng struct{ *rand.Rand }

func newRNG(seed int64) rng {
	return rng{rand.New(rand.NewSource(seed))}
}

// pick returns a uniformly random element of xs.
func pick[T any](r rng, xs []T) T {
	return xs[r.Intn(len(xs))]
}

// sample returns k distinct elements of xs (k ≤ len(xs)), stable for
// the seed.
func sample[T any](r rng, xs []T, k int) []T {
	if k > len(xs) {
		k = len(xs)
	}
	idx := r.Perm(len(xs))[:k]
	out := make([]T, k)
	for i, j := range idx {
		out[i] = xs[j]
	}
	return out
}

// shuffled returns a shuffled copy of xs.
func shuffled[T any](r rng, xs []T) []T {
	out := make([]T, len(xs))
	copy(out, xs)
	r.Shuffle(len(out), func(i, j int) { out[i], out[j] = out[j], out[i] })
	return out
}

// Word pools for plausible-looking values.
var (
	firstNames = []string{
		"Ada", "Alan", "Barbara", "Claude", "Donald", "Edsger", "Frances",
		"Grace", "Hal", "Ivan", "Jim", "Kathleen", "Leslie", "Margaret",
		"Niklaus", "Ole", "Peter", "Radia", "Serafim", "Tony",
	}
	lastNames = []string{
		"Lovelace", "Turing", "Liskov", "Shannon", "Knuth", "Dijkstra",
		"Allen", "Hopper", "Abelson", "Sutherland", "Gray", "Booth",
		"Lamport", "Hamilton", "Wirth", "Dahl", "Naur", "Perlman",
		"Batini", "Hoare",
	}
	nouns = []string{
		"database", "index", "query", "schema", "transaction", "stream",
		"cache", "replica", "shard", "cursor", "trigger", "view",
		"partition", "lattice", "tuple", "relation", "tree", "path",
		"element", "document",
	}
	adjectives = []string{
		"efficient", "scalable", "adaptive", "robust", "incremental",
		"distributed", "parallel", "optimal", "approximate", "hierarchical",
		"semantic", "normalized", "redundant", "consistent", "temporal",
		"spatial", "versioned", "federated", "streaming", "declarative",
	}
	cities = []string{
		"Seattle", "Lexington", "Ann Arbor", "Seoul", "Toronto", "Dublin",
		"Madison", "Austin", "Boston", "Portland", "Chicago", "Denver",
	}
	countries = []string{
		"United States", "Korea", "Canada", "Ireland", "Germany", "Japan",
		"Brazil", "India", "Norway", "Kenya",
	}
)

// personName draws a deterministic full name.
func personName(r rng) string {
	return pick(r, firstNames) + " " + pick(r, lastNames)
}

// titleCase upper-cases the first letter of each space-separated
// word (a minimal replacement for the deprecated strings.Title).
func titleCase(s string) string {
	b := []byte(s)
	up := true
	for i, c := range b {
		if c == ' ' {
			up = true
			continue
		}
		if up && 'a' <= c && c <= 'z' {
			b[i] = c - 'a' + 'A'
		}
		up = false
	}
	return string(b)
}

// titleWords draws an n-word title.
func titleWords(r rng, n int) string {
	s := ""
	for i := 0; i < n; i++ {
		if i > 0 {
			s += " "
		}
		if i%2 == 0 {
			s += pick(r, adjectives)
		} else {
			s += pick(r, nouns)
		}
	}
	return s
}
