package xmlgen

import (
	"fmt"
	"strings"

	"discoverxfd/internal/datatree"
	"discoverxfd/internal/schema"
)

// PSDParams sizes the PIR/PSD-style protein database generator — the
// paper's introduction (footnote 1) names PIR as the kind of large,
// casually designed community resource whose redundancies motivate
// the system.
type PSDParams struct {
	// Entries is the number of protein entries.
	Entries int
	// ProteinPool is the number of distinct proteins; entries sample
	// from it (with fresh ids), injecting redundancy.
	ProteinPool int
	// UnrelatedSets (1..4) selects how many sibling set elements each
	// entry carries (keyword, reference, feature, accession). The
	// flat representation's tuple count grows multiplicatively in
	// this knob (experiment E3), while the hierarchical one grows
	// additively.
	UnrelatedSets int
	// MembersPerSet is the expected member count of each set element.
	MembersPerSet int
	// Seed makes the dataset deterministic.
	Seed int64
}

// DefaultPSD returns the parameters used by experiment E1.
func DefaultPSD() PSDParams {
	return PSDParams{Entries: 150, ProteinPool: 60, UnrelatedSets: 4, MembersPerSet: 2, Seed: 3}
}

// PSDSchema builds the schema carrying the first k unrelated set
// elements (k in 1..4).
func PSDSchema(k int) *schema.Schema {
	if k < 1 {
		k = 1
	}
	if k > 4 {
		k = 4
	}
	var b strings.Builder
	b.WriteString(`
proteinDatabase: Rcd
  entry: SetOf Rcd
    id: str
    protein: Rcd
      name: str
      classification: str
    organism: Rcd
      scientific: str
      common: str
`)
	sets := []string{
		"    keyword: SetOf str\n",
		"    reference: SetOf Rcd\n      title: str\n      year: str\n      author: SetOf str\n",
		"    feature: SetOf Rcd\n      type: str\n      location: str\n",
		"    accession: SetOf str\n",
	}
	for i := 0; i < k; i++ {
		b.WriteString(sets[i])
	}
	return schema.MustParse(b.String())
}

// PSD generates a protein database. Ground-truth constraints:
//
//	KEY {./id}                                    of C_entry;
//	FD  {./protein/name} -> ./protein/classification w.r.t. C_entry;
//	FD  {./organism/scientific} -> ./organism/common w.r.t. C_entry;
//	FD  {./protein/name} -> ./keyword             w.r.t. C_entry
//	    (set element on the RHS; present when UnrelatedSets ≥ 1);
//	FD  {./title} -> ./year  and  {./title} -> ./author
//	    w.r.t. C_reference (present when UnrelatedSets ≥ 2).
func PSD(p PSDParams) Dataset {
	if p.UnrelatedSets < 1 {
		p.UnrelatedSets = 1
	}
	if p.UnrelatedSets > 4 {
		p.UnrelatedSets = 4
	}
	if p.MembersPerSet < 1 {
		p.MembersPerSet = 1
	}
	r := newRNG(p.Seed)
	s := PSDSchema(p.UnrelatedSets)

	type protein struct {
		name, class      string
		organism, common string
		keywords         []string
		features         [][2]string
		accessions       []string
		refTitles        []int // indices into refPool
	}
	type refPaper struct {
		title, year string
		authors     []string
	}

	refPool := make([]refPaper, 40)
	for i := range refPool {
		refPool[i] = refPaper{
			title:   titleCase(titleWords(r, 3)) + fmt.Sprintf(" %d", i+1),
			year:    fmt.Sprintf("%d", 1980+r.Intn(25)),
			authors: sample(r, lastNames, 1+r.Intn(3)),
		}
	}
	organisms := [][2]string{
		{"Homo sapiens", "human"}, {"Mus musculus", "mouse"},
		{"Rattus norvegicus", "rat"}, {"Gallus gallus", "chicken"},
		{"Escherichia coli", "colibacillus"}, {"Saccharomyces cerevisiae", "yeast"},
	}
	classes := []string{"oxidoreductase", "transferase", "hydrolase", "lyase", "isomerase", "ligase"}
	kwPool := []string{"membrane", "signal", "kinase", "receptor", "transport",
		"binding", "repeat", "zinc", "glyco", "nuclear", "mito", "cyto"}
	featTypes := []string{"domain", "binding site", "active site", "modified site"}

	pool := make([]protein, p.ProteinPool)
	for i := range pool {
		org := pick(r, organisms)
		pool[i] = protein{
			name:     fmt.Sprintf("%s %s %d", titleCase(pick(r, adjectives)), "protein", i+1),
			class:    pick(r, classes),
			organism: org[0],
			common:   org[1],
			keywords: sample(r, kwPool, 1+r.Intn(p.MembersPerSet+1)),
		}
		for f := 0; f < 1+r.Intn(p.MembersPerSet+1); f++ {
			pool[i].features = append(pool[i].features,
				[2]string{pick(r, featTypes), fmt.Sprintf("%d-%d", 1+r.Intn(200), 201+r.Intn(300))})
		}
		for a := 0; a < 1+r.Intn(p.MembersPerSet); a++ {
			pool[i].accessions = append(pool[i].accessions, fmt.Sprintf("A%05d", r.Intn(99999)))
		}
		for rf := 0; rf < 1+r.Intn(p.MembersPerSet+1); rf++ {
			pool[i].refTitles = append(pool[i].refTitles, r.Intn(len(refPool)))
		}
	}

	root := &datatree.Node{Label: "proteinDatabase"}
	for e := 0; e < p.Entries; e++ {
		pr := pick(r, pool)
		entry := root.AddChild("entry")
		entry.AddLeaf("id", fmt.Sprintf("PSD%06d", e+1))
		prot := entry.AddChild("protein")
		prot.AddLeaf("name", pr.name)
		prot.AddLeaf("classification", pr.class)
		org := entry.AddChild("organism")
		org.AddLeaf("scientific", pr.organism)
		org.AddLeaf("common", pr.common)
		if p.UnrelatedSets >= 1 {
			for _, kw := range shuffled(r, pr.keywords) {
				entry.AddLeaf("keyword", kw)
			}
		}
		if p.UnrelatedSets >= 2 {
			for _, ri := range pr.refTitles {
				rp := refPool[ri]
				ref := entry.AddChild("reference")
				ref.AddLeaf("title", rp.title)
				ref.AddLeaf("year", rp.year)
				for _, a := range shuffled(r, rp.authors) {
					ref.AddLeaf("author", a)
				}
			}
		}
		if p.UnrelatedSets >= 3 {
			for _, f := range pr.features {
				feat := entry.AddChild("feature")
				feat.AddLeaf("type", f[0])
				feat.AddLeaf("location", f[1])
			}
		}
		if p.UnrelatedSets >= 4 {
			for _, acc := range pr.accessions {
				entry.AddLeaf("accession", acc)
			}
		}
	}
	tree := datatree.NewTree(root)

	entry := schema.Path("/proteinDatabase/entry")
	gt := []Constraint{
		{Class: entry, LHS: []schema.RelPath{"./id"}, RHS: "./protein/name", Key: true},
		{Class: entry, LHS: []schema.RelPath{"./protein/name"}, RHS: "./protein/classification"},
		{Class: entry, LHS: []schema.RelPath{"./organism/scientific"}, RHS: "./organism/common"},
		{Class: entry, LHS: []schema.RelPath{"./protein/name"}, RHS: "./keyword"},
	}
	if p.UnrelatedSets >= 2 {
		ref := schema.Path("/proteinDatabase/entry/reference")
		gt = append(gt,
			Constraint{Class: ref, LHS: []schema.RelPath{"./title"}, RHS: "./year"},
			Constraint{Class: ref, LHS: []schema.RelPath{"./title"}, RHS: "./author"},
		)
	}
	return Dataset{
		Name:        fmt.Sprintf("psd(entries=%d,pool=%d,sets=%d)", p.Entries, p.ProteinPool, p.UnrelatedSets),
		Tree:        tree,
		Schema:      s,
		GroundTruth: gt,
	}
}
