package xmlgen

import (
	"strings"
	"testing"

	"discoverxfd/internal/schema"
)

func TestConstraintString(t *testing.T) {
	c := Constraint{Class: "/a/b", LHS: []schema.RelPath{"./x", "./y"}, RHS: "./z"}
	if got := c.String(); got != "FD {./x, ./y} -> ./z w.r.t. C(/a/b)" {
		t.Fatalf("Constraint.String: %q", got)
	}
	c.Key = true
	if !strings.HasPrefix(c.String(), "KEY ") {
		t.Fatalf("key prefix missing: %q", c.String())
	}
}

func TestTitleCase(t *testing.T) {
	cases := map[string]string{
		"hello world": "Hello World",
		"a":           "A",
		"":            "",
		"Already Up":  "Already Up",
		"x  y":        "X  Y",
	}
	for in, want := range cases {
		if got := titleCase(in); got != want {
			t.Errorf("titleCase(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestHelpers(t *testing.T) {
	r := newRNG(1)
	xs := []int{1, 2, 3, 4, 5}
	if got := sample(r, xs, 10); len(got) != len(xs) {
		t.Fatalf("sample should cap at len: %v", got)
	}
	sh := shuffled(r, xs)
	if len(sh) != len(xs) {
		t.Fatalf("shuffled length: %v", sh)
	}
	sum := 0
	for _, v := range sh {
		sum += v
	}
	if sum != 15 {
		t.Fatalf("shuffled must permute, not mutate: %v", sh)
	}
	if v := pick(r, xs); v < 1 || v > 5 {
		t.Fatalf("pick out of range: %d", v)
	}
	if n := personName(r); !strings.Contains(n, " ") {
		t.Fatalf("personName: %q", n)
	}
	if w := titleWords(r, 3); len(strings.Fields(w)) != 3 {
		t.Fatalf("titleWords: %q", w)
	}
}

func TestWideParamClamps(t *testing.T) {
	ds := Wide(WideParams{Rows: 10, Attrs: 1, Domain: 1, Seed: 1})
	if got := len(ds.Tree.Root.Children[0].Children); got != 2 {
		t.Fatalf("Attrs should clamp to 2, got %d leaf children", got)
	}
	ds = Wide(WideParams{Rows: 3, Attrs: 30, Domain: 3, FDEvery: 2, Seed: 1})
	if len(ds.GroundTruth) == 0 {
		t.Fatal("FDEvery should inject ground truth")
	}
}

func TestPSDParamClamps(t *testing.T) {
	for _, k := range []int{-3, 0, 1, 4, 9} {
		ds := PSD(PSDParams{Entries: 5, ProteinPool: 3, UnrelatedSets: k, MembersPerSet: 0, Seed: 2})
		if ds.Tree == nil || ds.Schema == nil {
			t.Fatalf("PSD(%d) broken", k)
		}
	}
}

func TestAuctionFactorClamp(t *testing.T) {
	ds := Auction(AuctionParams{Factor: 0, Seed: 1})
	if ds.Tree.Size() == 0 {
		t.Fatal("factor clamp broken")
	}
}
