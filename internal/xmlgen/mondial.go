package xmlgen

import (
	"fmt"

	"discoverxfd/internal/datatree"
	"discoverxfd/internal/schema"
)

// MondialParams sizes the Mondial-style geography generator. Mondial
// is the classic deeply nested XML dataset (countries → provinces →
// cities); this variant also exercises the Choice model group
// (government: republic | monarchy), which the other generators do
// not.
type MondialParams struct {
	// Countries, ProvincesPerCountry, CitiesPerProvince size the
	// hierarchy.
	Countries, ProvincesPerCountry, CitiesPerProvince int
	// CityPool is the number of distinct city identities (name +
	// elevation); provinces sample from it, duplicating city names.
	CityPool int
	// Organizations adds international organizations with member
	// sets.
	Organizations int
	// Seed makes the dataset deterministic.
	Seed int64
}

// DefaultMondial returns the parameters used in tests.
func DefaultMondial() MondialParams {
	return MondialParams{
		Countries: 8, ProvincesPerCountry: 3, CitiesPerProvince: 6,
		CityPool: 30, Organizations: 4, Seed: 6,
	}
}

// MondialSchema declares the geography schema, including a Choice
// element.
var MondialSchema = schema.MustParse(`
mondial: Rcd
  country: SetOf Rcd
    name: str
    capital: str
    government: Choice
      republic: str
      monarchy: str
    province: SetOf Rcd
      name: str
      area: str
      city: SetOf Rcd
        name: str
        population: int
        elevation: str
  organization: SetOf Rcd
    abbrev: str
    name: str
    member: SetOf str
`)

// Mondial generates a geography document. Ground-truth constraints:
//
//	KEY {./name}                      of C_country;
//	KEY {./abbrev}                    of C_organization;
//	FD  {./name} -> ./elevation       w.r.t. C_city — city identities
//	    are drawn from a pool with a fixed elevation per name;
//	FD  {../../name, ./name} -> ./population w.r.t. C_city — the
//	    population is fixed per (country, city name), an
//	    inter-relation FD skipping the province level.
//
// Exactly one of government/republic and government/monarchy is
// present per country (the Choice model group), so FDs over those
// paths exercise strong-satisfaction nulls structurally.
func Mondial(p MondialParams) Dataset {
	r := newRNG(p.Seed)

	type cityID struct{ name, elevation string }
	pool := make([]cityID, p.CityPool)
	for i := range pool {
		pool[i] = cityID{
			name:      fmt.Sprintf("%s %s", titleCase(pick(r, adjectives)), titleCase(pick(r, nouns))),
			elevation: fmt.Sprintf("%dm", 5+r.Intn(2500)),
		}
	}
	popOf := make(map[string]string) // (country, city name) -> population
	population := func(country, city string) string {
		k := country + "\x00" + city
		if v, ok := popOf[k]; ok {
			return v
		}
		v := fmt.Sprintf("%d", 1000+r.Intn(5_000_000))
		popOf[k] = v
		return v
	}

	root := &datatree.Node{Label: "mondial"}
	var countryNames []string
	for c := 0; c < p.Countries; c++ {
		country := root.AddChild("country")
		cname := fmt.Sprintf("Country %c%d", 'A'+c%26, c)
		countryNames = append(countryNames, cname)
		country.AddLeaf("name", cname)
		country.AddLeaf("capital", pick(r, cities))
		gov := country.AddChild("government")
		if r.Intn(3) > 0 {
			gov.AddLeaf("republic", pick(r, []string{"president", "chancellor", "premier"}))
		} else {
			gov.AddLeaf("monarchy", pick(r, []string{"house of gold", "house of oak", "house of ivy"}))
		}
		for pr := 0; pr < p.ProvincesPerCountry; pr++ {
			province := country.AddChild("province")
			province.AddLeaf("name", fmt.Sprintf("%s Province %d", cname, pr+1))
			province.AddLeaf("area", fmt.Sprintf("%d", 100+r.Intn(9000)))
			for ci := 0; ci < p.CitiesPerProvince; ci++ {
				id := pick(r, pool)
				city := province.AddChild("city")
				city.AddLeaf("name", id.name)
				city.AddLeaf("population", population(cname, id.name))
				city.AddLeaf("elevation", id.elevation)
			}
		}
	}
	for o := 0; o < p.Organizations; o++ {
		org := root.AddChild("organization")
		org.AddLeaf("abbrev", fmt.Sprintf("ORG%d", o+1))
		org.AddLeaf("name", fmt.Sprintf("Organization of %s %s", titleCase(pick(r, adjectives)), titleCase(pick(r, nouns))))
		for _, m := range sample(r, countryNames, 2+r.Intn(len(countryNames)-1)) {
			org.AddLeaf("member", m)
		}
	}
	tree := datatree.NewTree(root)

	country := schema.Path("/mondial/country")
	city := schema.Path("/mondial/country/province/city")
	organization := schema.Path("/mondial/organization")
	return Dataset{
		Name:   fmt.Sprintf("mondial(countries=%d,pool=%d)", p.Countries, p.CityPool),
		Tree:   tree,
		Schema: MondialSchema,
		GroundTruth: []Constraint{
			{Class: country, LHS: []schema.RelPath{"./name"}, RHS: "./capital", Key: true},
			{Class: organization, LHS: []schema.RelPath{"./abbrev"}, RHS: "./name", Key: true},
			{Class: city, LHS: []schema.RelPath{"./name"}, RHS: "./elevation"},
			{Class: city, LHS: []schema.RelPath{"../../name", "./name"}, RHS: "./population"},
		},
	}
}
