package xmlgen

import (
	"fmt"
	"sort"
	"strings"

	"discoverxfd/internal/datatree"
	"discoverxfd/internal/schema"
)

// DBLPParams sizes the DBLP-style bibliography generator.
type DBLPParams struct {
	// Venues is the number of journals/conferences.
	Venues int
	// ArticlesPerVenue is the number of article entries per venue.
	ArticlesPerVenue int
	// PaperPool is the number of distinct papers; sampling with
	// replacement (each sample gets a fresh key) models the duplicate
	// bibliography entries that make FDs redundancy-indicating.
	PaperPool int
	// Seed makes the dataset deterministic.
	Seed int64
}

// DefaultDBLP returns the parameters used by experiment E1.
func DefaultDBLP() DBLPParams {
	return DBLPParams{Venues: 6, ArticlesPerVenue: 40, PaperPool: 120, Seed: 2}
}

// DBLPSchema declares the bibliography schema: venues containing
// article entries with author sets.
var DBLPSchema = schema.MustParse(`
dblp: Rcd
  venue: SetOf Rcd
    name: str
    publisher: str
    article: SetOf Rcd
      key: str
      title: str
      year: str
      volume: str
      author: SetOf str
`)

// DBLP generates a bibliography. Ground-truth constraints:
//
//	KEY {./key}                 of C_article — entry keys are unique;
//	FD  {./author, ./title} -> ./year   w.r.t. C_article — duplicate
//	    entries of one paper agree on the year (set element on LHS);
//	FD  {../name, ./year} -> ./volume   w.r.t. C_article — within a
//	    venue the year determines the volume (inter-relation).
func DBLP(p DBLPParams) Dataset {
	r := newRNG(p.Seed)

	type paper struct {
		title, year string
		authors     []string
	}
	pool := make([]paper, 0, p.PaperPool)
	seen := make(map[string]bool)
	for i := 0; i < p.PaperPool; i++ {
		var pp paper
		for {
			pp = paper{
				title: titleCase(titleWords(r, 3)),
				year:  fmt.Sprintf("%d", 1995+r.Intn(12)),
			}
			pp.authors = make([]string, 0, 1+r.Intn(3))
			for _, ln := range sample(r, lastNames, 1+r.Intn(3)) {
				pp.authors = append(pp.authors, pick(r, firstNames)+" "+ln)
			}
			sorted := append([]string(nil), pp.authors...)
			sort.Strings(sorted)
			k := strings.Join(sorted, "|") + "\x00" + pp.title
			if !seen[k] {
				seen[k] = true
				break
			}
		}
		pool = append(pool, pp)
	}

	volumeOf := make(map[string]string) // (venue, year) -> volume
	volume := func(venue, year string) string {
		k := venue + "\x00" + year
		if v, ok := volumeOf[k]; ok {
			return v
		}
		v := fmt.Sprintf("%d", 1+len(volumeOf)%60)
		volumeOf[k] = v
		return v
	}

	root := &datatree.Node{Label: "dblp"}
	keySeq := 0
	for vi := 0; vi < p.Venues; vi++ {
		venue := root.AddChild("venue")
		vname := fmt.Sprintf("Journal of %s %s", titleCase(pick(r, adjectives)), titleCase(pick(r, nouns)))
		venue.AddLeaf("name", vname)
		venue.AddLeaf("publisher", pick(r, []string{"ACM", "IEEE", "Springer", "Elsevier"}))
		for ai := 0; ai < p.ArticlesPerVenue; ai++ {
			pp := pick(r, pool)
			keySeq++
			art := venue.AddChild("article")
			art.AddLeaf("key", fmt.Sprintf("entry/%06d", keySeq))
			art.AddLeaf("title", pp.title)
			art.AddLeaf("year", pp.year)
			art.AddLeaf("volume", volume(vname, pp.year))
			for _, a := range shuffled(r, pp.authors) {
				art.AddLeaf("author", a)
			}
		}
	}
	tree := datatree.NewTree(root)

	article := schema.Path("/dblp/venue/article")
	return Dataset{
		Name:   fmt.Sprintf("dblp(venues=%d,articles=%d,pool=%d)", p.Venues, p.ArticlesPerVenue, p.PaperPool),
		Tree:   tree,
		Schema: DBLPSchema,
		GroundTruth: []Constraint{
			{Class: article, LHS: []schema.RelPath{"./key"}, RHS: "./title", Key: true},
			{Class: article, LHS: []schema.RelPath{"./author", "./title"}, RHS: "./year"},
			{Class: article, LHS: []schema.RelPath{"../name", "./year"}, RHS: "./volume"},
		},
	}
}
