package xmlgen

import (
	"fmt"
	"sort"
	"strings"

	"discoverxfd/internal/datatree"
	"discoverxfd/internal/schema"
)

// WarehouseParams sizes the warehouse generator (the paper's Figure 1
// example, scaled).
type WarehouseParams struct {
	// States, StoresPerState, BooksPerStore size the hierarchy.
	States, StoresPerState, BooksPerStore int
	// CatalogSize is the number of distinct books (ISBNs); stores
	// sample from the catalog, so a smaller catalog means more
	// redundancy.
	CatalogSize int
	// Chains is the number of distinct store names; prices are set
	// per (chain, ISBN), which injects the paper's Constraint 2.
	Chains int
	// MissingPricePermille drops the price element with probability
	// n/1000, exercising strong-satisfaction null handling.
	MissingPricePermille int
	// Seed makes the dataset deterministic.
	Seed int64
}

// DefaultWarehouse returns the parameters used by experiment E1.
func DefaultWarehouse() WarehouseParams {
	return WarehouseParams{
		States: 4, StoresPerState: 3, BooksPerStore: 12,
		CatalogSize: 18, Chains: 4, MissingPricePermille: 100, Seed: 1,
	}
}

// WarehouseSchema is the example schema of the paper's Figure 2.
var WarehouseSchema = schema.MustParse(`
warehouse: Rcd
  state: SetOf Rcd
    name: str
    store: SetOf Rcd
      contact: Rcd
        name: str
        address: str
      book: SetOf Rcd
        ISBN: str
        author: SetOf str
        title: str
        price: str
`)

// Warehouse generates a warehouse document. By construction it
// satisfies the paper's four example constraints:
//
//	FD 1: {./ISBN} -> ./title            w.r.t. C_book
//	FD 2: {../contact/name, ./ISBN} -> ./price w.r.t. C_book
//	FD 3: {./ISBN} -> ./author           w.r.t. C_book (a set element)
//	FD 4: {./author, ./title} -> ./ISBN  w.r.t. C_book (set on the LHS)
//
// Author order is shuffled per book instance, so FD 3 and FD 4 hold
// only under the unordered set semantics the paper argues for.
func Warehouse(p WarehouseParams) Dataset {
	r := newRNG(p.Seed)

	type catBook struct {
		isbn, title string
		authors     []string
	}
	catalog := make([]catBook, 0, p.CatalogSize)
	seenAT := make(map[string]bool) // (authors,title) -> taken, enforcing FD 4
	for i := 0; i < p.CatalogSize; i++ {
		b := catBook{isbn: fmt.Sprintf("978-%07d", i+1)}
		for {
			b.title = titleCase(titleWords(r, 2))
			na := 1 + r.Intn(3)
			b.authors = sample(r, lastNames, na)
			sorted := append([]string(nil), b.authors...)
			sort.Strings(sorted)
			key := strings.Join(sorted, "|") + "\x00" + b.title
			if !seenAT[key] {
				seenAT[key] = true
				break
			}
		}
		catalog = append(catalog, b)
	}

	chains := make([]string, p.Chains)
	for i := range chains {
		chains[i] = fmt.Sprintf("%s Books", titleCase(pick(r, adjectives)))
		for j := 0; j < i; j++ {
			if chains[j] == chains[i] {
				chains[i] = fmt.Sprintf("%s Books %d", titleCase(pick(r, adjectives)), i)
			}
		}
	}
	// price per (chain, ISBN): Constraint 2 by construction.
	priceOf := make(map[string]string)
	price := func(chain, isbn string) string {
		k := chain + "\x00" + isbn
		if v, ok := priceOf[k]; ok {
			return v
		}
		v := fmt.Sprintf("%d.%02d", 5+r.Intn(95), r.Intn(100))
		priceOf[k] = v
		return v
	}

	// Two passes: a price may only be omitted when its (chain, ISBN)
	// combination is globally unique — like book 80 in the paper's
	// Figure 1 — otherwise the missing RHS would violate FD 2 under
	// strong satisfaction (Definition 7 requires non-null RHS for
	// pairs that agree on the LHS).
	type pendingBook struct {
		node        *datatree.Node
		chain, isbn string
	}
	var pending []pendingBook
	comboCount := make(map[string]int)

	root := &datatree.Node{Label: "warehouse"}
	for si := 0; si < p.States; si++ {
		state := root.AddChild("state")
		state.AddLeaf("name", fmt.Sprintf("S%02d", si+1))
		for st := 0; st < p.StoresPerState; st++ {
			store := state.AddChild("store")
			chain := pick(r, chains)
			contact := store.AddChild("contact")
			contact.AddLeaf("name", chain)
			contact.AddLeaf("address", pick(r, cities))
			for bi := 0; bi < p.BooksPerStore; bi++ {
				cb := pick(r, catalog)
				book := store.AddChild("book")
				book.AddLeaf("ISBN", cb.isbn)
				for _, a := range shuffled(r, cb.authors) {
					book.AddLeaf("author", a)
				}
				book.AddLeaf("title", cb.title)
				pending = append(pending, pendingBook{node: book, chain: chain, isbn: cb.isbn})
				comboCount[chain+"\x00"+cb.isbn]++
			}
		}
	}
	for _, pb := range pending {
		unique := comboCount[pb.chain+"\x00"+pb.isbn] == 1
		if unique && r.Intn(1000) < p.MissingPricePermille {
			continue
		}
		pb.node.AddLeaf("price", price(pb.chain, pb.isbn))
	}
	tree := datatree.NewTree(root)

	book := schema.Path("/warehouse/state/store/book")
	return Dataset{
		Name:   fmt.Sprintf("warehouse(states=%d,stores=%d,books=%d,catalog=%d)", p.States, p.StoresPerState, p.BooksPerStore, p.CatalogSize),
		Tree:   tree,
		Schema: WarehouseSchema,
		GroundTruth: []Constraint{
			{Class: book, LHS: []schema.RelPath{"./ISBN"}, RHS: "./title"},
			{Class: book, LHS: []schema.RelPath{"./ISBN"}, RHS: "./author"},
			{Class: book, LHS: []schema.RelPath{"./author", "./title"}, RHS: "./ISBN"},
			{Class: book, LHS: []schema.RelPath{"../contact/name", "./ISBN"}, RHS: "./price"},
		},
	}
}
