package datatree

import (
	"fmt"
	"strings"
	"testing"
)

func benchDoc(books int) string {
	var b strings.Builder
	b.WriteString("<store>")
	for i := 0; i < books; i++ {
		fmt.Fprintf(&b, "<book><isbn>%d</isbn><author>A%d</author><author>B%d</author><title>T%d</title></book>",
			i, i%20, i%17, i%50)
	}
	b.WriteString("</store>")
	return b.String()
}

func BenchmarkParseXML(b *testing.B) {
	doc := benchDoc(1000)
	b.SetBytes(int64(len(doc)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ParseXMLString(doc); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkEncodeTree(b *testing.B) {
	tr, err := ParseXMLString(benchDoc(1000))
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var e Encoder
		e.Encode(tr.Root)
	}
}

func BenchmarkInferSchema(b *testing.B) {
	tr, err := ParseXMLString(benchDoc(1000))
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := InferSchema(tr); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkWriteXML(b *testing.B) {
	tr, err := ParseXMLString(benchDoc(1000))
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = tr.XMLString()
	}
}
