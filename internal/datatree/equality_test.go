package datatree

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNodeValueEqualIgnoresSiblingOrder(t *testing.T) {
	a := parse(t, `<b><isbn>1</isbn><author>X</author><author>Y</author></b>`)
	b := parse(t, `<b><author>Y</author><isbn>1</isbn><author>X</author></b>`)
	if !NodeValueEqual(a.Root, b.Root) {
		t.Fatal("sibling order must not affect node-value equality (Definition 3)")
	}
}

func TestNodeValueEqualMultisetSemantics(t *testing.T) {
	// {X, X, Y} vs {X, Y}: Definition 3 requires a one-to-one
	// matching over ALL children, so these differ.
	a := parse(t, `<b><author>X</author><author>X</author><author>Y</author></b>`)
	b := parse(t, `<b><author>X</author><author>Y</author></b>`)
	if NodeValueEqual(a.Root, b.Root) {
		t.Fatal("duplicate children must count (one-to-one correspondence)")
	}
	c := parse(t, `<b><author>X</author><author>Y</author><author>X</author></b>`)
	if !NodeValueEqual(a.Root, c.Root) {
		t.Fatal("equal multisets in different order must match")
	}
}

func TestNodeValueEqualValueAndLabel(t *testing.T) {
	a := parse(t, `<x>1</x>`)
	b := parse(t, `<x>2</x>`)
	c := parse(t, `<y>1</y>`)
	d := parse(t, `<x>1</x>`)
	if NodeValueEqual(a.Root, b.Root) || NodeValueEqual(a.Root, c.Root) {
		t.Fatal("different value or label must not be equal")
	}
	if !NodeValueEqual(a.Root, d.Root) {
		t.Fatal("identical leaves must be equal")
	}
	// Value "" with HasValue differs from no value.
	e := NewTree(&Node{Label: "x", HasValue: true})
	f := NewTree(&Node{Label: "x"})
	if NodeValueEqual(e.Root, f.Root) {
		t.Fatal("empty value and absent value must differ")
	}
}

func TestEncoderSharedAcrossTrees(t *testing.T) {
	var e Encoder
	a := parse(t, `<b><x>1</x></b>`)
	b := parse(t, `<b><x>1</x></b>`)
	if e.Encode(a.Root) != e.Encode(b.Root) {
		t.Fatal("identical subtrees in different trees must share codes")
	}
}

func TestMultisetVsListCode(t *testing.T) {
	var e Encoder
	a := parse(t, `<r><a>1</a><a>2</a></r>`)
	b := parse(t, `<r><a>2</a><a>1</a></r>`)
	am, bm := e.MultisetCode(a.Root.Children), e.MultisetCode(b.Root.Children)
	if am != bm {
		t.Fatal("multiset codes must ignore order")
	}
	al, bl := e.ListCode(a.Root.Children), e.ListCode(b.Root.Children)
	if al == bl {
		t.Fatal("list codes must respect order")
	}
	// Same order lists agree.
	c := parse(t, `<r><a>1</a><a>2</a></r>`)
	if e.ListCode(c.Root.Children) != al {
		t.Fatal("identical lists must share a code")
	}
	// Multiset and list namespaces must not collide.
	if e.MultisetCode(a.Root.Children) == e.ListCode(a.Root.Children) {
		t.Fatal("multiset and list codes of the same nodes should be distinct interned entries")
	}
}

func TestPathValueEquality(t *testing.T) {
	t1 := parse(t, `<s><b><a>X</a><a>Y</a></b></s>`)
	t2 := parse(t, `<s><b><a>Y</a><a>X</a></b></s>`)
	if !PathValueEqual(t1, "/s/b/a", t2, "/s/b/a") {
		t.Fatal("reordered author sets must be path-value equal (Definition 4)")
	}
	t3 := parse(t, `<s><b><a>X</a></b></s>`)
	if PathValueEqual(t1, "/s/b/a", t3, "/s/b/a") {
		t.Fatal("different cardinalities must not be path-value equal")
	}
}

// randomTree builds a small random tree from a seed.
func randomTree(r *rand.Rand, depth int) *Node {
	n := &Node{Label: string(rune('a' + r.Intn(3)))}
	if depth <= 0 || r.Intn(3) == 0 {
		n.Value = fmt.Sprintf("%d", r.Intn(4))
		n.HasValue = true
		return n
	}
	k := r.Intn(4)
	for i := 0; i < k; i++ {
		c := randomTree(r, depth-1)
		c.Parent = n
		n.Children = append(n.Children, c)
	}
	return n
}

// shuffleTree returns a deep copy with every child list shuffled.
func shuffleTree(r *rand.Rand, n *Node) *Node {
	cp := &Node{Label: n.Label, Value: n.Value, HasValue: n.HasValue}
	perm := r.Perm(len(n.Children))
	for _, i := range perm {
		c := shuffleTree(r, n.Children[i])
		c.Parent = cp
		cp.Children = append(cp.Children, c)
	}
	return cp
}

// TestEncodeShuffleInvariant property-checks that shuffling sibling
// order anywhere in a random tree never changes its canonical code,
// and that changing one leaf value always does.
func TestEncodeShuffleInvariant(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		root := randomTree(r, 3)
		shuf := shuffleTree(r, root)
		var e Encoder
		if e.Encode(root) != e.Encode(shuf) {
			return false
		}
		// Mutate one leaf (if any) and require a different code.
		var leaf *Node
		NewTree(shuf).Root.Walk(func(n *Node) bool {
			if n.HasValue && leaf == nil {
				leaf = n
			}
			return true
		})
		if leaf != nil {
			leaf.Value += "-mut"
			var e2 Encoder
			if e2.Encode(root) == e2.Encode(shuf) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
