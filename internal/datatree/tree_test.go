package datatree

import (
	"strings"
	"testing"
)

const bookXML = `
<store id="s1">
  <book><isbn>1</isbn><author>A</author><author>B</author></book>
  <book><isbn>2</isbn><author>B</author><author>A</author></book>
</store>`

func parse(t *testing.T, xml string) *Tree {
	t.Helper()
	tr, err := ParseXMLString(xml)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	return tr
}

func TestParseXMLStructure(t *testing.T) {
	tr := parse(t, bookXML)
	if tr.Root.Label != "store" {
		t.Fatalf("root label %q", tr.Root.Label)
	}
	// Attribute becomes a child node labeled "@id".
	id := tr.Root.Child("@id")
	if id == nil || id.Value != "s1" || !id.HasValue {
		t.Fatalf("@id child missing or wrong: %+v", id)
	}
	books := tr.Root.ChildrenLabeled("book")
	if len(books) != 2 {
		t.Fatalf("want 2 books, got %d", len(books))
	}
	if got := len(books[0].ChildrenLabeled("author")); got != 2 {
		t.Fatalf("want 2 authors, got %d", got)
	}
	if isbn := books[0].Child("isbn"); isbn == nil || isbn.Value != "1" {
		t.Fatalf("isbn wrong: %+v", isbn)
	}
}

func TestPreOrderKeys(t *testing.T) {
	tr := parse(t, bookXML)
	var keys []int
	tr.Root.Walk(func(n *Node) bool {
		keys = append(keys, n.Key)
		return true
	})
	for i, k := range keys {
		if k != i+1 {
			t.Fatalf("pre-order keys not sequential: %v", keys)
		}
	}
	if tr.Size() != len(keys) {
		t.Fatalf("Size()=%d, nodes=%d", tr.Size(), len(keys))
	}
}

func TestNodePath(t *testing.T) {
	tr := parse(t, bookXML)
	book := tr.Root.ChildrenLabeled("book")[1]
	if book.Path() != "/store/book" {
		t.Fatalf("Path = %s", book.Path())
	}
	author := book.ChildrenLabeled("author")[0]
	if author.Path() != "/store/book/author" {
		t.Fatalf("Path = %s", author.Path())
	}
}

func TestNodesAt(t *testing.T) {
	tr := parse(t, bookXML)
	if got := len(tr.NodesAt("/store/book/author")); got != 4 {
		t.Fatalf("NodesAt authors = %d, want 4", got)
	}
	if got := len(tr.NodesAt("/store/nothing")); got != 0 {
		t.Fatalf("NodesAt missing = %d, want 0", got)
	}
	if got := len(tr.NodesAt("/wrongroot")); got != 0 {
		t.Fatalf("NodesAt wrong root = %d, want 0", got)
	}
}

func TestNodeByKey(t *testing.T) {
	tr := parse(t, bookXML)
	for _, want := range []int{1, 3, 5, tr.Size()} {
		n := tr.NodeByKey(want)
		if n == nil || n.Key != want {
			t.Fatalf("NodeByKey(%d) = %+v", want, n)
		}
	}
	if tr.NodeByKey(999) != nil {
		t.Fatal("NodeByKey(999) should be nil")
	}
}

func TestXMLRoundTrip(t *testing.T) {
	tr := parse(t, bookXML)
	out := tr.XMLString()
	tr2, err := ParseXMLString(out)
	if err != nil {
		t.Fatalf("re-parse: %v", err)
	}
	if !NodeValueEqual(tr.Root, tr2.Root) {
		t.Fatalf("round trip changed the tree:\n%s\nvs\n%s", tr, tr2)
	}
}

func TestXMLEscaping(t *testing.T) {
	tr := NewTree(&Node{Label: "r"})
	tr.Root.AddLeaf("v", `<&>"quoted"`)
	tr.Root.AddLeaf("@a", `x<&>"y"`)
	tr.Renumber()
	out := tr.XMLString()
	tr2, err := ParseXMLString(out)
	if err != nil {
		t.Fatalf("re-parse escaped: %v\n%s", err, out)
	}
	if tr2.Root.Child("v").Value != `<&>"quoted"` {
		t.Fatalf("value escaping lost: %q", tr2.Root.Child("v").Value)
	}
	if tr2.Root.Child("@a").Value != `x<&>"y"` {
		t.Fatalf("attr escaping lost: %q", tr2.Root.Child("@a").Value)
	}
}

func TestMixedContent(t *testing.T) {
	tr := parse(t, `<p>hello <b>world</b></p>`)
	if txt := tr.Root.Child(TextLabel); txt == nil || txt.Value != "hello" {
		t.Fatalf("@text child missing: %v", tr)
	}
	// An element with only text becomes a leaf with a value.
	if b := tr.Root.Child("b"); b == nil || !b.HasValue || b.Value != "world" {
		t.Fatalf("text-only element should be a leaf: %+v", tr.Root.Child("b"))
	}
}

func TestParseXMLErrors(t *testing.T) {
	bad := []string{
		"",
		"<a><b></a>",
		"<a></a><b></b>",
		"not xml at all",
	}
	for _, x := range bad {
		if _, err := ParseXMLString(x); err == nil {
			t.Errorf("ParseXMLString(%q) should fail", x)
		}
	}
}

func TestSortChildrenDeterministic(t *testing.T) {
	tr := parse(t, `<r><b>2</b><a>1</a><b>3</b></r>`)
	tr.SortChildren()
	labels := make([]string, 0, 3)
	for _, c := range tr.Root.Children {
		labels = append(labels, c.Label)
	}
	if strings.Join(labels, "") != "abb" {
		t.Fatalf("SortChildren order: %v", labels)
	}
}

func TestStringRendering(t *testing.T) {
	tr := parse(t, `<r><x>1</x></r>`)
	s := tr.String()
	if !strings.Contains(s, "r[1]") || !strings.Contains(s, `x[2]="1"`) {
		t.Fatalf("debug rendering unexpected:\n%s", s)
	}
}

func TestRenumberAfterEdit(t *testing.T) {
	tr := parse(t, `<r><x>1</x></r>`)
	tr.Root.AddLeaf("y", "2")
	tr.Renumber()
	if tr.Size() != 3 {
		t.Fatalf("Size after edit = %d", tr.Size())
	}
	y := tr.Root.Child("y")
	if y.Key != 3 || y.Parent != tr.Root {
		t.Fatalf("Renumber did not fix key/parent: %+v", y)
	}
}
