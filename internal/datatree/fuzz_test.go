package datatree

import (
	"strings"
	"testing"
)

// FuzzParseXML asserts that arbitrary input never panics the parser,
// and that anything it accepts survives a serialize→parse round trip
// under node-value equality.
func FuzzParseXML(f *testing.F) {
	seeds := []string{
		"<a/>",
		"<a><b>1</b><b>2</b></a>",
		`<a x="1">t<b/>u</a>`,
		"<a><b></a>",
		"<?xml version=\"1.0\"?><r><x>&amp;</x></r>",
		"<a>" + strings.Repeat("<b>v</b>", 50) + "</a>",
		"not xml",
		"<a>\x00</a>",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, input string) {
		tr, err := ParseXMLString(input)
		if err != nil {
			return
		}
		out := tr.XMLString()
		tr2, err := ParseXMLString(out)
		if err != nil {
			t.Fatalf("accepted input failed to round trip: %v\ninput: %q\nout: %q", err, input, out)
		}
		if !NodeValueEqual(tr.Root, tr2.Root) {
			t.Fatalf("round trip changed the tree\ninput: %q\nfirst:\n%s\nsecond:\n%s", input, tr, tr2)
		}
	})
}

// FuzzInferConform asserts that a schema inferred from any parseable
// document accepts that document.
func FuzzInferConform(f *testing.F) {
	f.Add("<a><b>1</b><b>x</b><c><d/></c></a>")
	f.Add("<r><x>1.5</x><x>2</x></r>")
	f.Add("<p>text <b>bold</b></p>")
	f.Fuzz(func(t *testing.T, input string) {
		tr, err := ParseXMLString(input)
		if err != nil {
			return
		}
		s, err := InferSchema(tr)
		if err != nil {
			t.Fatalf("inference failed on parseable document: %v\n%q", err, input)
		}
		if err := Conform(tr, s); err != nil {
			t.Fatalf("document rejected by its inferred schema: %v\n%q", err, input)
		}
	})
}
