package datatree

import (
	"strings"
	"testing"
)

// TestAttrEscapeRoundTrip verifies that attribute values containing
// quotes, newlines, ampersands, and angle brackets survive
// WriteXML → ParseXML unchanged. Newlines are the delicate case: a
// literal newline inside an attribute is normalized to a space by XML
// attribute-value normalization, so escapeAttr must emit it as a
// character reference.
func TestAttrEscapeRoundTrip(t *testing.T) {
	values := []string{
		`plain`,
		`double " quote`,
		`single ' quote`,
		"line\nbreak",
		"tab\tand\rcarriage",
		`amp & amp`,
		`less < more > both`,
		`all "of' <them>&` + "\n\ttogether",
	}
	root := &Node{Label: "root"}
	for i, v := range values {
		child := &Node{Label: "item", Parent: root}
		child.AddLeaf("@val", v)
		child.AddLeaf("@idx", strings.Repeat("x", i+1))
		root.Children = append(root.Children, child)
	}
	tree := NewTree(root)

	var b strings.Builder
	if err := tree.WriteXML(&b); err != nil {
		t.Fatal(err)
	}
	back, err := ParseXMLString(b.String())
	if err != nil {
		t.Fatalf("re-parsing WriteXML output: %v\n%s", err, b.String())
	}
	items := back.Root.ChildrenLabeled("item")
	if len(items) != len(values) {
		t.Fatalf("round trip kept %d items, want %d", len(items), len(values))
	}
	for i, want := range values {
		got := items[i].Child("@val")
		if got == nil {
			t.Fatalf("item %d lost its @val attribute", i)
		}
		if got.Value != want {
			t.Errorf("item %d: round-tripped %q, want %q", i, got.Value, want)
		}
	}

	// Element text with the same hostile characters round-trips too.
	leafTree, err := ParseXMLString(`<r><v>seed</v></r>`)
	if err != nil {
		t.Fatal(err)
	}
	leafTree.Root.Child("v").Value = "a <b> & \"c\"\nd"
	back2, err := ParseXMLString(leafTree.XMLString())
	if err != nil {
		t.Fatal(err)
	}
	if got := back2.Root.Child("v").Value; got != "a <b> & \"c\"\nd" {
		t.Errorf("text round trip got %q", got)
	}
}
