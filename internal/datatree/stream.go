package datatree

import (
	"context"
	"encoding/xml"
	"fmt"
	"io"
	"strings"
)

// StreamRootChildren parses an XML document and delivers each direct
// child of the root element — including the root's attributes, which
// the data model represents as "@name" leaf children — as a completed
// subtree to fn, in document order, without retaining the whole tree.
// Each delivered node has correct Parent/Children links within its
// subtree but no pre-order key (the caller assigns identities).
// Memory stays proportional to the largest single child subtree.
//
// It returns the root element's label. A non-nil error from fn aborts
// the parse and is returned verbatim. DefaultLimits applies; use
// StreamRootChildrenContext for explicit limits or cancellation.
func StreamRootChildren(r io.Reader, fn func(child *Node) error) (string, error) {
	return StreamRootChildrenContext(context.Background(), r, DefaultLimits(), fn)
}

// StreamRootChildrenContext is StreamRootChildren with explicit
// resource limits and a context. MaxNodes bounds the cumulative node
// count over all delivered subtrees, not just the retained one;
// cancellation is checked periodically between decoder tokens.
func StreamRootChildrenContext(ctx context.Context, r io.Reader, lim ParseLimits, fn func(child *Node) error) (string, error) {
	dec := xml.NewDecoder(r)
	guard := &parseGuard{ctx: ctx, lim: lim}
	rootLabel := ""
	sawRoot := false
	var stack []*Node // depth-1 subtree under construction (stack[0] is the child)
	var texts []*strings.Builder
	depth := 0 // 0 = before/after root, 1 = inside root

	emit := func(n *Node) error { return fn(n) }

	for {
		tok, err := dec.Token()
		if err == io.EOF {
			break
		}
		if err != nil {
			return rootLabel, fmt.Errorf("datatree: XML parse error: %w", err)
		}
		if err := guard.tick(); err != nil {
			return rootLabel, err
		}
		switch tk := tok.(type) {
		case xml.StartElement:
			if !sawRoot {
				sawRoot = true
				rootLabel = tk.Name.Local
				depth = 1
				if err := guard.addNodes(1 + len(tk.Attr)); err != nil {
					return rootLabel, err
				}
				for _, a := range tk.Attr {
					if a.Name.Space == "xmlns" || a.Name.Local == "xmlns" {
						continue
					}
					leaf := &Node{Label: "@" + a.Name.Local, Value: a.Value, HasValue: true}
					if err := emit(leaf); err != nil {
						return rootLabel, err
					}
				}
				continue
			}
			if depth == 0 {
				return rootLabel, fmt.Errorf("datatree: multiple root elements (%q and %q)", rootLabel, tk.Name.Local)
			}
			// The root element is depth 1 and subtree nodes under
			// construction sit on the stack, so this element nests at
			// len(stack)+2.
			if err := guard.checkDepth(len(stack) + 2); err != nil {
				return rootLabel, err
			}
			n := &Node{Label: tk.Name.Local}
			for _, a := range tk.Attr {
				if a.Name.Space == "xmlns" || a.Name.Local == "xmlns" {
					continue
				}
				n.AddLeaf("@"+a.Name.Local, a.Value)
			}
			if err := guard.addNodes(1 + len(n.Children)); err != nil {
				return rootLabel, err
			}
			if len(stack) > 0 {
				p := stack[len(stack)-1]
				n.Parent = p
				p.Children = append(p.Children, n)
			}
			stack = append(stack, n)
			texts = append(texts, &strings.Builder{})
		case xml.EndElement:
			if len(stack) == 0 {
				// Closing the root element.
				depth = 0
				continue
			}
			n := stack[len(stack)-1]
			text := strings.TrimSpace(texts[len(texts)-1].String())
			stack = stack[:len(stack)-1]
			texts = texts[:len(texts)-1]
			if text != "" {
				if len(n.Children) == 0 {
					n.Value = text
					n.HasValue = true
				} else {
					n.AddLeaf(TextLabel, text)
					if err := guard.addNodes(1); err != nil {
						return rootLabel, err
					}
				}
			}
			if len(stack) == 0 {
				if err := emit(n); err != nil {
					return rootLabel, err
				}
			}
		case xml.CharData:
			if len(texts) > 0 {
				texts[len(texts)-1].Write(tk)
			}
			// Root-level character data is ignored, matching ParseXML's
			// treatment of mixed content at the root for documents whose
			// root has element children.
		}
	}
	if !sawRoot {
		return rootLabel, fmt.Errorf("datatree: document has no root element")
	}
	if len(stack) != 0 {
		return rootLabel, fmt.Errorf("datatree: unexpected EOF inside element %q", stack[len(stack)-1].Label)
	}
	return rootLabel, nil
}
