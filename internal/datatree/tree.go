// Package datatree implements the XML data model of Yu & Jagadish
// (VLDB 2006), Definition 2: a rooted labeled tree of data nodes,
// each carrying a label and a node key that uniquely identifies it,
// with value assignments on leaf nodes. Node keys are assigned in
// pre-order traversal, matching the paper's Figure 1.
//
// The package loads and stores trees as XML documents (attributes are
// represented as child nodes labeled "@name"; a single text chunk in
// mixed content is kept under "@text"), implements node-value
// equality (Definition 3) and path-value equality (Definition 4) via
// canonical unordered-subtree encodings, checks conformance of a tree
// to a schema, and infers a schema from data.
package datatree

import (
	"fmt"
	"sort"
	"strings"

	"discoverxfd/internal/schema"
)

// Node is one data node of a tree. Leaf nodes carry a value; complex
// nodes carry children. A node labeled "@x" represents an XML
// attribute x of its parent, and "@text" the text chunk of a
// mixed-content element.
type Node struct {
	Label    string
	Key      int // pre-order key, unique within the tree
	Parent   *Node
	Children []*Node

	// Value and HasValue hold the value assignment of a leaf node.
	Value    string
	HasValue bool
}

// Tree is a rooted labeled data tree.
type Tree struct {
	Root *Node
	size int
	// next is the next fresh node key Graft hands out (0 = not yet
	// computed). Grafted keys grow beyond the pre-order range, which
	// keeps every existing key stable under mutation — incremental
	// updates depend on that — while preserving the parent-before-
	// descendant key order NodeByKey's pruning relies on.
	next int
	// setHints records element paths the document source declared
	// repeatable independent of the observed occurrence counts — a
	// JSON array is a set element even when every instance happens to
	// hold one member, which bare repetition counting cannot see.
	// InferSchema unions these hints with the observed repetition.
	// XML carries no such declaration, so XML trees leave this nil.
	setHints map[schema.Path]bool
}

// HintSet marks the element path as declared-repeatable by the
// document source (see Tree.setHints). The root path cannot be a set
// element and is ignored.
func (t *Tree) HintSet(p schema.Path) {
	if t.Root != nil && p == schema.PathOf(t.Root.Label) {
		return
	}
	if t.setHints == nil {
		t.setHints = make(map[schema.Path]bool)
	}
	t.setHints[p] = true
}

// SetHinted reports whether the path carries a declared-repeatable
// hint.
func (t *Tree) SetHinted(p schema.Path) bool { return t.setHints[p] }

// SetHints returns the declared-repeatable paths in sorted order.
func (t *Tree) SetHints() []schema.Path {
	out := make([]schema.Path, 0, len(t.setHints))
	for p := range t.setHints {
		out = append(out, p)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// NewTree wraps a constructed root node into a tree and assigns
// pre-order keys starting at 1.
func NewTree(root *Node) *Tree {
	t := &Tree{Root: root}
	t.Renumber()
	return t
}

// Renumber reassigns pre-order node keys (starting at 1) and parent
// pointers, and recomputes the node count. Call after structural
// edits.
func (t *Tree) Renumber() {
	key := 0
	var rec func(n, parent *Node)
	rec = func(n, parent *Node) {
		key++
		n.Key = key
		n.Parent = parent
		for _, c := range n.Children {
			rec(c, n)
		}
	}
	if t.Root != nil {
		rec(t.Root, nil)
	}
	t.size = key
	t.next = key + 1
}

// Size returns the number of nodes in the tree.
func (t *Tree) Size() int { return t.size }

// AddChild appends a child node and returns it. Keys are not
// maintained incrementally; call Renumber when construction is done.
func (n *Node) AddChild(label string) *Node {
	c := &Node{Label: label, Parent: n}
	n.Children = append(n.Children, c)
	return c
}

// AddLeaf appends a leaf child with a value and returns it.
func (n *Node) AddLeaf(label, value string) *Node {
	c := n.AddChild(label)
	c.Value = value
	c.HasValue = true
	return c
}

// Graft appends a new child node under parent with a fresh key and
// returns it. Unlike AddChild+Renumber, grafting never renumbers
// existing nodes: the new key is taken past every key handed out so
// far, so keys stay stable under mutation (what the incremental
// update path needs) and a node's key still precedes its descendants'
// keys (what NodeByKey's pruning needs).
func (t *Tree) Graft(parent *Node, label string) *Node {
	if t.next == 0 {
		// A hand-assembled tree that never went through Renumber:
		// derive the fresh-key floor from the keys actually present.
		max := 0
		t.Root.Walk(func(n *Node) bool {
			if n.Key > max {
				max = n.Key
			}
			return true
		})
		t.next = max + 1
	}
	c := parent.AddChild(label)
	c.Key = t.next
	t.next++
	t.size++
	return c
}

// GraftLeaf is Graft with a value assignment.
func (t *Tree) GraftLeaf(parent *Node, label, value string) *Node {
	c := t.Graft(parent, label)
	c.Value = value
	c.HasValue = true
	return c
}

// Prune detaches the subtree rooted at n from its parent and adjusts
// the node count. Pruning the root is not supported.
func (t *Tree) Prune(n *Node) {
	p := n.Parent
	if p == nil {
		panic("datatree: cannot prune the root")
	}
	for i, c := range p.Children {
		if c == n {
			p.Children = append(p.Children[:i], p.Children[i+1:]...)
			break
		}
	}
	n.Parent = nil
	removed := 0
	n.Walk(func(*Node) bool { removed++; return true })
	t.size -= removed
}

// Path returns the absolute path of the node (/e1/…/ek).
func (n *Node) Path() schema.Path {
	var steps []string
	for m := n; m != nil; m = m.Parent {
		steps = append(steps, m.Label)
	}
	for i, j := 0, len(steps)-1; i < j; i, j = i+1, j-1 {
		steps[i], steps[j] = steps[j], steps[i]
	}
	return schema.PathOf(steps...)
}

// IsLeaf reports whether the node has no children.
func (n *Node) IsLeaf() bool { return len(n.Children) == 0 }

// Child returns the first child with the given label, or nil.
func (n *Node) Child(label string) *Node {
	for _, c := range n.Children {
		if c.Label == label {
			return c
		}
	}
	return nil
}

// ChildrenLabeled returns all children with the given label in
// document order.
func (n *Node) ChildrenLabeled(label string) []*Node {
	var out []*Node
	for _, c := range n.Children {
		if c.Label == label {
			out = append(out, c)
		}
	}
	return out
}

// Walk visits the subtree rooted at n in pre-order. If visit returns
// false the node's descendants are skipped.
func (n *Node) Walk(visit func(*Node) bool) {
	if n == nil || !visit(n) {
		return
	}
	for _, c := range n.Children {
		c.Walk(visit)
	}
}

// NodesAt returns all nodes of the tree whose path equals p, in
// pre-order. The path is interpreted structurally: each step must
// match a child label.
func (t *Tree) NodesAt(p schema.Path) []*Node {
	steps := p.Steps()
	if t.Root == nil || len(steps) == 0 || t.Root.Label != steps[0] {
		return nil
	}
	cur := []*Node{t.Root}
	for _, step := range steps[1:] {
		var next []*Node
		for _, n := range cur {
			next = append(next, n.ChildrenLabeled(step)...)
		}
		cur = next
		if len(cur) == 0 {
			return nil
		}
	}
	return cur
}

// NodeByKey returns the node with the given pre-order key, or nil.
func (t *Tree) NodeByKey(key int) *Node {
	var found *Node
	if t.Root == nil {
		return nil
	}
	t.Root.Walk(func(n *Node) bool {
		if found != nil {
			return false
		}
		if n.Key == key {
			found = n
			return false
		}
		// Pre-order keys are monotone; prune subtrees that start
		// beyond the target.
		return n.Key < key
	})
	return found
}

// String renders the tree in a compact indented debug form:
// label[key]=value per line.
func (t *Tree) String() string {
	var b strings.Builder
	var rec func(n *Node, depth int)
	rec = func(n *Node, depth int) {
		b.WriteString(strings.Repeat("  ", depth))
		fmt.Fprintf(&b, "%s[%d]", n.Label, n.Key)
		if n.HasValue {
			fmt.Fprintf(&b, "=%q", n.Value)
		}
		b.WriteByte('\n')
		for _, c := range n.Children {
			rec(c, depth+1)
		}
	}
	if t.Root != nil {
		rec(t.Root, 0)
	}
	return b.String()
}

// SortChildren recursively orders children by label (then by key) —
// useful for deterministic golden output; the data model itself is
// unordered.
func (t *Tree) SortChildren() {
	var rec func(n *Node)
	rec = func(n *Node) {
		sort.SliceStable(n.Children, func(i, j int) bool {
			if n.Children[i].Label != n.Children[j].Label {
				return n.Children[i].Label < n.Children[j].Label
			}
			return n.Children[i].Key < n.Children[j].Key
		})
		for _, c := range n.Children {
			rec(c)
		}
	}
	if t.Root != nil {
		rec(t.Root)
	}
}
