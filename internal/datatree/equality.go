package datatree

import (
	"sort"
	"strconv"
	"strings"
)

// Encoder assigns canonical integer codes to subtrees such that two
// nodes receive the same code if and only if they are node-value
// equal (Definition 3): same label, same value assignment, and a
// one-to-one correspondence between node-value-equal children. The
// correspondence requirement makes child comparison a multiset
// equality, which the encoder realizes by sorting child codes.
//
// Codes are interned, so equality checks after encoding are O(1) and
// encoding a whole tree is O(n log n) in the number of nodes. An
// Encoder may be shared across trees: codes are then comparable
// across those trees, which is what path-value equality
// (Definition 4) between documents needs.
//
// The zero value is ready to use. Encoders are not safe for
// concurrent use.
type Encoder struct {
	intern map[string]int
	cache  map[*Node]int
}

// Encode returns the canonical code of the subtree rooted at n.
func (e *Encoder) Encode(n *Node) int {
	if e.intern == nil {
		e.intern = make(map[string]int)
		e.cache = make(map[*Node]int)
	}
	if c, ok := e.cache[n]; ok {
		return c
	}
	childCodes := make([]int, len(n.Children))
	for i, c := range n.Children {
		childCodes[i] = e.Encode(c)
	}
	sort.Ints(childCodes)
	var b strings.Builder
	b.WriteString(n.Label)
	b.WriteByte(0)
	if n.HasValue {
		b.WriteByte('v')
		b.WriteString(n.Value)
	}
	b.WriteByte(0)
	for _, c := range childCodes {
		b.WriteString(strconv.Itoa(c))
		b.WriteByte(',')
	}
	key := b.String()
	code, ok := e.intern[key]
	if !ok {
		code = len(e.intern) + 1
		e.intern[key] = code
	}
	e.cache[n] = code
	return code
}

// NodeValueEqual reports whether two nodes are node-value equal per
// Definition 3: both subtrees are identical ignoring sibling order.
func (e *Encoder) NodeValueEqual(a, b *Node) bool {
	if a == nil || b == nil {
		return a == b
	}
	return e.Encode(a) == e.Encode(b)
}

// NodeValueEqual is a convenience wrapper using a fresh Encoder.
func NodeValueEqual(a, b *Node) bool {
	var e Encoder
	return e.NodeValueEqual(a, b)
}

// MultisetCode returns a canonical code for an unordered collection
// of subtrees: two collections receive the same code iff there is a
// one-to-one node-value-equal correspondence between them. This is
// the primitive behind set partitions (the paper's Section 4.4) and
// path-value equality.
func (e *Encoder) MultisetCode(nodes []*Node) int {
	codes := make([]int, len(nodes))
	for i, n := range nodes {
		codes[i] = e.Encode(n)
	}
	return e.MultisetOfCodes(codes)
}

// MultisetOfCodes interns an unordered collection of already-encoded
// subtree codes. The argument slice is sorted in place. Streaming
// builders use this form when the member subtrees are long gone and
// only their codes were retained.
func (e *Encoder) MultisetOfCodes(codes []int) int {
	if e.intern == nil {
		e.intern = make(map[string]int)
		e.cache = make(map[*Node]int)
	}
	sort.Ints(codes)
	return e.internCodes("ms", codes)
}

// Invalidate drops the cached codes of n and every ancestor of n.
// Call it after mutating a node (value change, child grafted or
// pruned): the subtree codes of the node and its ancestors are stale,
// while interned codes and the rest of the cache stay valid — an
// unchanged subtree re-encodes to its old code, which is what lets
// incremental updates detect that a column did not actually change.
func (e *Encoder) Invalidate(n *Node) {
	if e.cache == nil {
		return
	}
	for m := n; m != nil; m = m.Parent {
		delete(e.cache, m)
	}
}

// Forget drops the per-node memoization for the subtree rooted at n.
// Interned canonical codes stay valid; streaming builders call this
// after processing a subtree so the cache does not retain discarded
// nodes.
func (e *Encoder) Forget(n *Node) {
	if e.cache == nil {
		return
	}
	n.Walk(func(m *Node) bool {
		delete(e.cache, m)
		return true
	})
}

// ListCode returns a canonical code for an ordered list of subtrees:
// two lists receive the same code iff they have equal length and
// pairwise node-value-equal members in order. This is the ordered
// variant discussed in the paper's Section 4.5 remark on element
// order (ablation experiment E7).
func (e *Encoder) ListCode(nodes []*Node) int {
	if e.intern == nil {
		e.intern = make(map[string]int)
		e.cache = make(map[*Node]int)
	}
	codes := make([]int, len(nodes))
	for i, n := range nodes {
		codes[i] = e.Encode(n)
	}
	return e.internCodes("ls", codes)
}

func (e *Encoder) internCodes(tag string, codes []int) int {
	var b strings.Builder
	b.WriteString(tag)
	b.WriteByte(0)
	for _, c := range codes {
		b.WriteString(strconv.Itoa(c))
		b.WriteByte(',')
	}
	key := b.String()
	code, ok := e.intern[key]
	if !ok {
		code = len(e.intern) + 1
		e.intern[key] = code
	}
	return code
}

// PathValueEqual reports whether path p1 on tree t1 and path p2 on
// tree t2 are path-value equal per Definition 4: the nodes matched by
// p1 and the nodes matched by p2 admit a one-to-one node-value-equal
// correspondence (multiset equality of subtree codes). A shared
// encoder is used so codes are comparable across the two trees.
func PathValueEqual(t1 *Tree, p1 string, t2 *Tree, p2 string) bool {
	var e Encoder
	n1 := t1.NodesAt(pathOf(p1))
	n2 := t2.NodesAt(pathOf(p2))
	if len(n1) != len(n2) {
		return false
	}
	return e.MultisetCode(n1) == e.MultisetCode(n2)
}
