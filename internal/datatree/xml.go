package datatree

import (
	"context"
	"encoding/xml"
	"fmt"
	"io"
	"strings"
)

// TextLabel is the label under which a single text chunk of a
// mixed-content element is stored, per the paper's Section 2.1
// convention ("we store it under a distinct new @text").
const TextLabel = "@text"

// DefaultMaxDepth is the element-nesting bound applied by ParseXML
// and StreamRootChildren when no explicit limits are given. Real
// documents sit far below it; a deep-nesting bomb hits it after a few
// kilobytes of input instead of exhausting memory.
const DefaultMaxDepth = 10000

// ParseLimits bounds resource use while parsing an XML document.
// The zero value means "no limits"; DefaultLimits returns the bounds
// the convenience entry points (ParseXML, StreamRootChildren) apply.
type ParseLimits struct {
	// MaxDepth bounds element nesting depth (the root element is depth
	// 1). Exceeding it is a parse error. 0 or negative = unlimited.
	MaxDepth int
	// MaxNodes bounds the total number of data nodes built (elements,
	// attribute leaves, and @text leaves all count). Exceeding it is a
	// parse error. 0 or negative = unlimited.
	MaxNodes int
}

// DefaultLimits returns the limits used by ParseXML and
// StreamRootChildren: DefaultMaxDepth nesting, unlimited nodes.
func DefaultLimits() ParseLimits { return ParseLimits{MaxDepth: DefaultMaxDepth} }

// ctxCheckInterval is how many decoder tokens are processed between
// context-cancellation checks in the parsing loops.
const ctxCheckInterval = 1024

// parseGuard enforces ParseLimits and periodic context checks inside
// the token loops of ParseXML and StreamRootChildren.
type parseGuard struct {
	ctx    context.Context
	lim    ParseLimits
	nodes  int
	tokens int
}

func (g *parseGuard) tick() error {
	g.tokens++
	if g.tokens%ctxCheckInterval == 0 && g.ctx != nil {
		if err := g.ctx.Err(); err != nil {
			return fmt.Errorf("datatree: parse cancelled: %w", err)
		}
	}
	return nil
}

func (g *parseGuard) checkDepth(depth int) error {
	if g.lim.MaxDepth > 0 && depth > g.lim.MaxDepth {
		return fmt.Errorf("datatree: maximum element depth %d exceeded", g.lim.MaxDepth)
	}
	return nil
}

// addNodes counts n freshly built nodes against the budget.
func (g *parseGuard) addNodes(n int) error {
	g.nodes += n
	if g.lim.MaxNodes > 0 && g.nodes > g.lim.MaxNodes {
		return fmt.Errorf("datatree: maximum node count %d exceeded", g.lim.MaxNodes)
	}
	return nil
}

// ParseXML reads an XML document from r and builds the corresponding
// data tree. XML attributes become leaf children labeled "@name".
// For an element containing both child elements and character data,
// the concatenated text (whitespace-trimmed) is stored as a leaf
// child labeled @text if non-empty; an element with character data
// only becomes a leaf node carrying that value. Element order is
// preserved in the tree but carries no semantics in the data model.
// DefaultLimits applies; use ParseXMLContext for explicit limits or
// cancellation.
func ParseXML(r io.Reader) (*Tree, error) {
	return ParseXMLContext(context.Background(), r, DefaultLimits())
}

// ParseXMLContext is ParseXML with explicit resource limits and a
// context. Cancellation is checked periodically between decoder
// tokens; exceeding a limit or cancellation aborts the parse with a
// "datatree:" error.
func ParseXMLContext(ctx context.Context, r io.Reader, lim ParseLimits) (*Tree, error) {
	dec := xml.NewDecoder(r)
	guard := &parseGuard{ctx: ctx, lim: lim}
	var root *Node
	var stack []*Node
	var texts []*strings.Builder

	for {
		tok, err := dec.Token()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("datatree: XML parse error: %w", err)
		}
		if err := guard.tick(); err != nil {
			return nil, err
		}
		switch tk := tok.(type) {
		case xml.StartElement:
			if err := guard.checkDepth(len(stack) + 1); err != nil {
				return nil, err
			}
			n := &Node{Label: tk.Name.Local}
			for _, a := range tk.Attr {
				if a.Name.Space == "xmlns" || a.Name.Local == "xmlns" {
					continue
				}
				n.AddLeaf("@"+a.Name.Local, a.Value)
			}
			if err := guard.addNodes(1 + len(n.Children)); err != nil {
				return nil, err
			}
			if len(stack) == 0 {
				if root != nil {
					return nil, fmt.Errorf("datatree: multiple root elements (%q and %q)", root.Label, n.Label)
				}
				root = n
			} else {
				p := stack[len(stack)-1]
				n.Parent = p
				p.Children = append(p.Children, n)
			}
			stack = append(stack, n)
			texts = append(texts, &strings.Builder{})
		case xml.EndElement:
			if len(stack) == 0 {
				return nil, fmt.Errorf("datatree: unbalanced end element %q", tk.Name.Local)
			}
			n := stack[len(stack)-1]
			text := strings.TrimSpace(texts[len(texts)-1].String())
			stack = stack[:len(stack)-1]
			texts = texts[:len(texts)-1]
			if text != "" {
				if len(n.Children) == 0 {
					n.Value = text
					n.HasValue = true
				} else {
					n.AddLeaf(TextLabel, text)
					if err := guard.addNodes(1); err != nil {
						return nil, err
					}
				}
			}
		case xml.CharData:
			if len(texts) > 0 {
				texts[len(texts)-1].Write(tk)
			}
		}
	}
	if root == nil {
		return nil, fmt.Errorf("datatree: document has no root element")
	}
	if len(stack) != 0 {
		return nil, fmt.Errorf("datatree: unexpected EOF inside element %q", stack[len(stack)-1].Label)
	}
	return NewTree(root), nil
}

// ParseXMLString is ParseXML over a string.
func ParseXMLString(s string) (*Tree, error) {
	return ParseXML(strings.NewReader(s))
}

// WriteXML serializes the tree as an XML document. Children labeled
// "@name" are emitted as attributes of their parent; "@text" children
// are emitted as character data. Output is indented for readability.
func (t *Tree) WriteXML(w io.Writer) error {
	if t.Root == nil {
		return fmt.Errorf("datatree: empty tree")
	}
	bw := &errWriter{w: w}
	io.WriteString(bw, xml.Header)
	writeNode(bw, t.Root, 0)
	return bw.err
}

// XMLString returns the XML serialization of the tree.
func (t *Tree) XMLString() string {
	var b strings.Builder
	t.WriteXML(&b)
	return b.String()
}

type errWriter struct {
	w   io.Writer
	err error
}

func (e *errWriter) Write(p []byte) (int, error) {
	if e.err != nil {
		return 0, e.err
	}
	n, err := e.w.Write(p)
	e.err = err
	return n, err
}

func writeNode(w io.Writer, n *Node, depth int) {
	indent := strings.Repeat("  ", depth)
	fmt.Fprintf(w, "%s<%s", indent, n.Label)
	var elems []*Node
	var text *Node
	for _, c := range n.Children {
		switch {
		case c.Label == TextLabel:
			text = c
		case strings.HasPrefix(c.Label, "@"):
			fmt.Fprintf(w, " %s=\"%s\"", c.Label[1:], escapeAttr(c.Value))
		default:
			elems = append(elems, c)
		}
	}
	switch {
	case n.HasValue:
		fmt.Fprintf(w, ">%s</%s>\n", escapeText(n.Value), n.Label)
	case len(elems) == 0 && text == nil:
		fmt.Fprintf(w, "/>\n")
	default:
		fmt.Fprintf(w, ">")
		if text != nil {
			fmt.Fprintf(w, "%s", escapeText(text.Value))
		}
		fmt.Fprintf(w, "\n")
		for _, c := range elems {
			writeNode(w, c, depth+1)
		}
		fmt.Fprintf(w, "%s</%s>\n", indent, n.Label)
	}
}

func escapeText(s string) string {
	var b strings.Builder
	xml.EscapeText(&b, []byte(s))
	return b.String()
}

func escapeAttr(s string) string {
	// Attribute values are emitted inside double quotes, so the
	// escaping must cover `"` as well as `&` and `<`. xml.EscapeText
	// escapes all of those, plus `\t`/`\n`/`\r` as character
	// references — which is exactly what double-quoted attribute
	// values need for a lossless ParseXML round trip (a literal
	// newline inside an attribute would otherwise be normalized to a
	// space by the XML decoder).
	return escapeText(s)
}
