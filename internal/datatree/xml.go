package datatree

import (
	"encoding/xml"
	"fmt"
	"io"
	"strings"
)

// TextLabel is the label under which a single text chunk of a
// mixed-content element is stored, per the paper's Section 2.1
// convention ("we store it under a distinct new @text").
const TextLabel = "@text"

// ParseXML reads an XML document from r and builds the corresponding
// data tree. XML attributes become leaf children labeled "@name".
// For an element containing both child elements and character data,
// the concatenated text (whitespace-trimmed) is stored as a leaf
// child labeled @text if non-empty; an element with character data
// only becomes a leaf node carrying that value. Element order is
// preserved in the tree but carries no semantics in the data model.
func ParseXML(r io.Reader) (*Tree, error) {
	dec := xml.NewDecoder(r)
	var root *Node
	var stack []*Node
	var texts []*strings.Builder

	for {
		tok, err := dec.Token()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("datatree: XML parse error: %w", err)
		}
		switch tk := tok.(type) {
		case xml.StartElement:
			n := &Node{Label: tk.Name.Local}
			for _, a := range tk.Attr {
				if a.Name.Space == "xmlns" || a.Name.Local == "xmlns" {
					continue
				}
				n.AddLeaf("@"+a.Name.Local, a.Value)
			}
			if len(stack) == 0 {
				if root != nil {
					return nil, fmt.Errorf("datatree: multiple root elements (%q and %q)", root.Label, n.Label)
				}
				root = n
			} else {
				p := stack[len(stack)-1]
				n.Parent = p
				p.Children = append(p.Children, n)
			}
			stack = append(stack, n)
			texts = append(texts, &strings.Builder{})
		case xml.EndElement:
			if len(stack) == 0 {
				return nil, fmt.Errorf("datatree: unbalanced end element %q", tk.Name.Local)
			}
			n := stack[len(stack)-1]
			text := strings.TrimSpace(texts[len(texts)-1].String())
			stack = stack[:len(stack)-1]
			texts = texts[:len(texts)-1]
			if text != "" {
				if len(n.Children) == 0 {
					n.Value = text
					n.HasValue = true
				} else {
					n.AddLeaf(TextLabel, text)
				}
			}
		case xml.CharData:
			if len(texts) > 0 {
				texts[len(texts)-1].Write(tk)
			}
		}
	}
	if root == nil {
		return nil, fmt.Errorf("datatree: document has no root element")
	}
	if len(stack) != 0 {
		return nil, fmt.Errorf("datatree: unexpected EOF inside element %q", stack[len(stack)-1].Label)
	}
	return NewTree(root), nil
}

// ParseXMLString is ParseXML over a string.
func ParseXMLString(s string) (*Tree, error) {
	return ParseXML(strings.NewReader(s))
}

// WriteXML serializes the tree as an XML document. Children labeled
// "@name" are emitted as attributes of their parent; "@text" children
// are emitted as character data. Output is indented for readability.
func (t *Tree) WriteXML(w io.Writer) error {
	if t.Root == nil {
		return fmt.Errorf("datatree: empty tree")
	}
	bw := &errWriter{w: w}
	io.WriteString(bw, xml.Header)
	writeNode(bw, t.Root, 0)
	return bw.err
}

// XMLString returns the XML serialization of the tree.
func (t *Tree) XMLString() string {
	var b strings.Builder
	t.WriteXML(&b)
	return b.String()
}

type errWriter struct {
	w   io.Writer
	err error
}

func (e *errWriter) Write(p []byte) (int, error) {
	if e.err != nil {
		return 0, e.err
	}
	n, err := e.w.Write(p)
	e.err = err
	return n, err
}

func writeNode(w io.Writer, n *Node, depth int) {
	indent := strings.Repeat("  ", depth)
	fmt.Fprintf(w, "%s<%s", indent, n.Label)
	var elems []*Node
	var text *Node
	for _, c := range n.Children {
		switch {
		case c.Label == TextLabel:
			text = c
		case strings.HasPrefix(c.Label, "@"):
			fmt.Fprintf(w, " %s=\"%s\"", c.Label[1:], escapeAttr(c.Value))
		default:
			elems = append(elems, c)
		}
	}
	switch {
	case n.HasValue:
		fmt.Fprintf(w, ">%s</%s>\n", escapeText(n.Value), n.Label)
	case len(elems) == 0 && text == nil:
		fmt.Fprintf(w, "/>\n")
	default:
		fmt.Fprintf(w, ">")
		if text != nil {
			fmt.Fprintf(w, "%s", escapeText(text.Value))
		}
		fmt.Fprintf(w, "\n")
		for _, c := range elems {
			writeNode(w, c, depth+1)
		}
		fmt.Fprintf(w, "%s</%s>\n", indent, n.Label)
	}
}

func escapeText(s string) string {
	var b strings.Builder
	xml.EscapeText(&b, []byte(s))
	return b.String()
}

func escapeAttr(s string) string {
	// xml.EscapeText also escapes quotes, which is sufficient for
	// attribute values emitted with %q above; strip the quoting done
	// by EscapeText of newlines etc. is not needed — just reuse it.
	return escapeText(s)
}
