package datatree

import (
	"context"
	"fmt"
	"strings"
	"testing"
)

// nestingBomb returns a document of the given element depth, built
// iteratively so the test itself never recurses.
func nestingBomb(depth int) string {
	var b strings.Builder
	for i := 0; i < depth; i++ {
		fmt.Fprintf(&b, "<e%d>", i%7)
	}
	for i := depth - 1; i >= 0; i-- {
		fmt.Fprintf(&b, "</e%d>", i%7)
	}
	return b.String()
}

func TestParseXMLDeepNestingBombFailsFast(t *testing.T) {
	// 50k levels of nesting: well past DefaultMaxDepth, small enough
	// to generate instantly. The default entry point must reject it
	// instead of building a 50k-deep tree.
	doc := nestingBomb(50000)
	if _, err := ParseXML(strings.NewReader(doc)); err == nil {
		t.Fatal("ParseXML accepted a 50k-deep nesting bomb")
	} else if !strings.Contains(err.Error(), "datatree: maximum element depth") {
		t.Fatalf("unexpected error: %v", err)
	}
}

func TestParseXMLMaxDepth(t *testing.T) {
	doc := nestingBomb(10)
	if _, err := ParseXMLContext(context.Background(), strings.NewReader(doc), ParseLimits{MaxDepth: 9}); err == nil {
		t.Fatal("MaxDepth 9 accepted depth 10")
	}
	tree, err := ParseXMLContext(context.Background(), strings.NewReader(doc), ParseLimits{MaxDepth: 10})
	if err != nil {
		t.Fatalf("MaxDepth 10 rejected depth 10: %v", err)
	}
	if tree.Size() != 10 {
		t.Fatalf("tree size = %d, want 10", tree.Size())
	}
	// Zero limits mean unlimited.
	if _, err := ParseXMLContext(context.Background(), strings.NewReader(nestingBomb(20000)), ParseLimits{}); err != nil {
		t.Fatalf("unlimited parse failed: %v", err)
	}
}

// wideDoc returns a flat document with n leaf children (one attribute
// each), several megabytes of XML for large n.
func wideDoc(n int) string {
	var b strings.Builder
	b.WriteString("<root>")
	for i := 0; i < n; i++ {
		fmt.Fprintf(&b, `<item id="%d">value-%d-with-some-padding-to-grow-the-document</item>`, i, i)
	}
	b.WriteString("</root>")
	return b.String()
}

func TestParseXMLMaxNodes(t *testing.T) {
	// ~6 MB of XML; with a small node budget the parse must stop
	// early instead of materializing ~120k nodes.
	doc := wideDoc(60000)
	if len(doc) < 4<<20 {
		t.Fatalf("test document too small: %d bytes", len(doc))
	}
	_, err := ParseXMLContext(context.Background(), strings.NewReader(doc), ParseLimits{MaxNodes: 1000})
	if err == nil {
		t.Fatal("MaxNodes 1000 accepted a ~120k-node document")
	}
	if !strings.Contains(err.Error(), "datatree: maximum node count") {
		t.Fatalf("unexpected error: %v", err)
	}
	// The same document parses fine without a budget.
	tree, err := ParseXMLContext(context.Background(), strings.NewReader(doc), ParseLimits{})
	if err != nil {
		t.Fatalf("unbudgeted parse failed: %v", err)
	}
	if tree.Size() < 120000 {
		t.Fatalf("tree size = %d, want >= 120000", tree.Size())
	}
}

func TestParseXMLContextCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := ParseXMLContext(ctx, strings.NewReader(wideDoc(5000)), ParseLimits{})
	if err == nil {
		t.Fatal("cancelled parse succeeded")
	}
	if !strings.Contains(err.Error(), "cancelled") {
		t.Fatalf("unexpected error: %v", err)
	}
}

func TestStreamRootChildrenLimits(t *testing.T) {
	onChild := func(*Node) error { return nil }
	if _, err := StreamRootChildrenContext(context.Background(), strings.NewReader(nestingBomb(50)), ParseLimits{MaxDepth: 10}, onChild); err == nil {
		t.Fatal("stream MaxDepth 10 accepted depth 50")
	}
	if _, err := StreamRootChildrenContext(context.Background(), strings.NewReader(wideDoc(5000)), ParseLimits{MaxNodes: 100}, onChild); err == nil {
		t.Fatal("stream MaxNodes 100 accepted ~10k nodes")
	}
	// The default entry point rejects the bomb too.
	if _, err := StreamRootChildren(strings.NewReader(nestingBomb(DefaultMaxDepth+5)), onChild); err == nil {
		t.Fatal("StreamRootChildren accepted a bomb past DefaultMaxDepth")
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := StreamRootChildrenContext(ctx, strings.NewReader(wideDoc(5000)), ParseLimits{}, onChild); err == nil {
		t.Fatal("cancelled stream parse succeeded")
	}
}
