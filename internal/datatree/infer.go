package datatree

import (
	"fmt"
	"strconv"
	"strings"

	"discoverxfd/internal/schema"
)

// InferSchema derives a schema (Definition 1) from a data tree. The
// inference follows the conventions of the paper's data model:
//
//   - an element is a set element (SetOf) if any parent node in the
//     data has two or more children with its label, or if the document
//     source declared the path repeatable (Tree.HintSet — a JSON array
//     is a set element even when observed with one member everywhere);
//   - an element that ever has element children is a record (Choice
//     types are not inferable from a single document and are inferred
//     as Rcd — a Choice instance conforms to the corresponding Rcd
//     with missing elements);
//   - a leaf element's simple type is the most specific of int, float,
//     str that all its observed values parse as; elements observed
//     only without values default to str.
//
// The resulting schema is guaranteed to accept the tree it was
// inferred from (see Conform).
func InferSchema(t *Tree) (*schema.Schema, error) {
	if t == nil || t.Root == nil {
		return nil, fmt.Errorf("datatree: cannot infer schema from empty tree")
	}
	type info struct {
		set      bool
		complex_ bool
		sawInt   bool
		sawFloat bool
		sawStr   bool
		sawAny   bool
		children map[string]bool
		order    []string
	}
	infos := make(map[schema.Path]*info)
	get := func(p schema.Path) *info {
		in := infos[p]
		if in == nil {
			in = &info{children: make(map[string]bool)}
			infos[p] = in
		}
		return in
	}

	var rec func(n *Node, p schema.Path)
	rec = func(n *Node, p schema.Path) {
		in := get(p)
		counts := make(map[string]int)
		for _, c := range n.Children {
			counts[c.Label]++
			if !in.children[c.Label] {
				in.children[c.Label] = true
				in.order = append(in.order, c.Label)
			}
		}
		if len(n.Children) > 0 {
			in.complex_ = true
		}
		for label, cnt := range counts {
			if cnt > 1 {
				get(p.Child(label)).set = true
			}
		}
		if n.HasValue {
			in.sawAny = true
			v := strings.TrimSpace(n.Value)
			if _, err := strconv.ParseInt(v, 10, 64); err == nil {
				in.sawInt = true
			} else if _, err := strconv.ParseFloat(v, 64); err == nil {
				in.sawFloat = true
			} else {
				in.sawStr = true
			}
		}
		for _, c := range n.Children {
			rec(c, p.Child(c.Label))
		}
	}
	rootPath := schema.PathOf(t.Root.Label)
	rec(t.Root, rootPath)

	tree := t // build's local t shadows the parameter
	var build func(p schema.Path) *schema.Type
	build = func(p schema.Path) *schema.Type {
		in := infos[p]
		var t *schema.Type
		if in.complex_ {
			fields := make([]schema.Field, 0, len(in.order))
			for _, label := range in.order {
				fields = append(fields, schema.F(label, build(p.Child(label))))
			}
			t = schema.Rcd(fields...)
		} else {
			switch {
			case in.sawStr || !in.sawAny:
				t = schema.Simple(schema.String)
			case in.sawFloat:
				t = schema.Simple(schema.Float)
			case in.sawInt:
				t = schema.Simple(schema.Int)
			default:
				t = schema.Simple(schema.String)
			}
		}
		if in.set || tree.SetHinted(p) {
			t = schema.SetOf(t)
		}
		return t
	}
	return schema.New(t.Root.Label, build(rootPath))
}

// Conform checks that the tree conforms to the schema: every node's
// label is declared at its path, non-set elements occur at most once
// per parent, Choice elements have at most one alternative present,
// leaf values parse as their declared simple type, and complex nodes
// do not carry direct values. It returns the first violation found,
// or nil.
func Conform(t *Tree, s *schema.Schema) error {
	if t == nil || t.Root == nil {
		return fmt.Errorf("datatree: empty tree")
	}
	if t.Root.Label != s.Root {
		return fmt.Errorf("datatree: root label %q does not match schema root %q", t.Root.Label, s.Root)
	}
	var rec func(n *Node, el schema.Element) error
	rec = func(n *Node, el schema.Element) error {
		switch el.Payload.Kind {
		case schema.String, schema.Int, schema.Float:
			if len(n.Children) > 0 {
				return fmt.Errorf("datatree: node %s[%d] declared %s but has children",
					n.Path(), n.Key, el.Payload.Kind)
			}
			if !n.HasValue {
				// An empty element of simple type is a missing value;
				// tolerated (strong-satisfaction null).
				return nil
			}
			v := strings.TrimSpace(n.Value)
			switch el.Payload.Kind {
			case schema.Int:
				if _, err := strconv.ParseInt(v, 10, 64); err != nil {
					return fmt.Errorf("datatree: node %s[%d]: value %q is not an int", n.Path(), n.Key, n.Value)
				}
			case schema.Float:
				if _, err := strconv.ParseFloat(v, 64); err != nil {
					return fmt.Errorf("datatree: node %s[%d]: value %q is not a float", n.Path(), n.Key, n.Value)
				}
			}
			return nil
		case schema.Record, schema.Choice:
			if n.HasValue {
				return fmt.Errorf("datatree: complex node %s[%d] carries a direct value %q (mixed content must use %s)",
					n.Path(), n.Key, n.Value, TextLabel)
			}
			declared := make(map[string]schema.Field, len(el.Payload.Fields))
			for _, f := range el.Payload.Fields {
				declared[f.Label] = f
			}
			counts := make(map[string]int)
			present := 0
			for _, c := range n.Children {
				f, ok := declared[c.Label]
				if !ok {
					return fmt.Errorf("datatree: node %s[%d]: undeclared child %q", n.Path(), n.Key, c.Label)
				}
				counts[c.Label]++
				if counts[c.Label] == 1 {
					present++
				}
				if counts[c.Label] > 1 && f.Type.Kind != schema.Set {
					return fmt.Errorf("datatree: node %s[%d]: non-set child %q occurs %d times",
						n.Path(), n.Key, c.Label, counts[c.Label])
				}
				childEl := schema.Element{
					Path: el.Path.Child(c.Label), Label: c.Label, Type: f.Type,
				}
				childEl.Payload = f.Type
				if f.Type.Kind == schema.Set {
					childEl.Repeatable = true
					childEl.Payload = f.Type.Elem
				}
				if err := rec(c, childEl); err != nil {
					return err
				}
			}
			if el.Payload.Kind == schema.Choice && present > 1 {
				return fmt.Errorf("datatree: node %s[%d]: Choice element has %d alternatives present",
					n.Path(), n.Key, present)
			}
			return nil
		default:
			return fmt.Errorf("datatree: unknown schema kind at %s", el.Path)
		}
	}
	rootEl, err := s.Resolve(schema.PathOf(s.Root))
	if err != nil {
		return err
	}
	return rec(t.Root, rootEl)
}

func pathOf(p string) schema.Path { return schema.Path(p) }
