package datatree

import (
	"strings"
	"testing"
)

func TestStreamRootChildren(t *testing.T) {
	xml := `<root version="2"><a>1</a><b><c>x</c><c>y</c></b><a>2</a></root>`
	var got []string
	label, err := StreamRootChildren(strings.NewReader(xml), func(child *Node) error {
		switch {
		case child.HasValue:
			got = append(got, child.Label+"="+child.Value)
		default:
			got = append(got, child.Label+"/"+child.Children[0].Label)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if label != "root" {
		t.Fatalf("root label %q", label)
	}
	want := []string{"@version=2", "a=1", "b/c", "a=2"}
	if len(got) != len(want) {
		t.Fatalf("children: %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("children: %v, want %v", got, want)
		}
	}
}

func TestStreamRootChildrenSubtreesComplete(t *testing.T) {
	xml := `<r><g><x a="1">v</x><y>w<z>deep</z></y></g></r>`
	var g *Node
	if _, err := StreamRootChildren(strings.NewReader(xml), func(c *Node) error {
		g = c
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if g == nil || g.Label != "g" || len(g.Children) != 2 {
		t.Fatalf("subtree wrong: %+v", g)
	}
	x := g.Child("x")
	if x.Child("@a") == nil || x.Child(TextLabel) == nil {
		t.Fatalf("attribute/mixed handling wrong: %+v", x)
	}
	y := g.Child("y")
	if y.Child("z") == nil || y.Child("z").Value != "deep" || y.Child(TextLabel).Value != "w" {
		t.Fatalf("nested content wrong: %+v", y)
	}
	if y.Parent != g || y.Child("z").Parent != y {
		t.Fatal("parent links broken")
	}
}

func TestStreamRootChildrenErrors(t *testing.T) {
	for _, bad := range []string{"", "<a><b></a>", "<a></a><b/>", "junk"} {
		if _, err := StreamRootChildren(strings.NewReader(bad), func(*Node) error { return nil }); err == nil {
			t.Errorf("StreamRootChildren(%q) should fail", bad)
		}
	}
	// Callback errors abort and propagate.
	_, err := StreamRootChildren(strings.NewReader("<r><a/><b/></r>"), func(c *Node) error {
		if c.Label == "b" {
			return strings.NewReader("").UnreadByte() // any error will do
		}
		return nil
	})
	if err == nil {
		t.Fatal("callback error must propagate")
	}
}

// TestStreamMatchesParse checks that streaming delivers exactly the
// children the full parser would produce, per node-value equality.
func TestStreamMatchesParse(t *testing.T) {
	xml := `<store id="s"><book><isbn>1</isbn><author>B</author><author>A</author></book><note>n</note></store>`
	full, err := ParseXMLString(xml)
	if err != nil {
		t.Fatal(err)
	}
	var streamed []*Node
	if _, err := StreamRootChildren(strings.NewReader(xml), func(c *Node) error {
		streamed = append(streamed, c)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if len(streamed) != len(full.Root.Children) {
		t.Fatalf("child counts: %d vs %d", len(streamed), len(full.Root.Children))
	}
	var e Encoder
	for i := range streamed {
		if e.Encode(streamed[i]) != e.Encode(full.Root.Children[i]) {
			t.Fatalf("child %d differs:\n%v\nvs\n%v", i, streamed[i], full.Root.Children[i])
		}
	}
}

func TestEncoderForget(t *testing.T) {
	var e Encoder
	tr := parse(t, `<a><b>1</b></a>`)
	before := e.Encode(tr.Root)
	e.Forget(tr.Root)
	// Codes stay stable after forgetting (interning persists).
	if e.Encode(tr.Root) != before {
		t.Fatal("Forget must not change canonical codes")
	}
}

func TestMultisetOfCodes(t *testing.T) {
	var e Encoder
	a := e.MultisetOfCodes([]int{3, 1, 2})
	b := e.MultisetOfCodes([]int{2, 3, 1})
	c := e.MultisetOfCodes([]int{1, 2})
	if a != b || a == c {
		t.Fatalf("MultisetOfCodes: %d %d %d", a, b, c)
	}
}

func TestIsLeaf(t *testing.T) {
	tr := parse(t, `<a><b>1</b></a>`)
	if tr.Root.IsLeaf() || !tr.Root.Child("b").IsLeaf() {
		t.Fatal("IsLeaf wrong")
	}
}
