package datatree

import (
	"strings"
	"testing"

	"discoverxfd/internal/schema"
)

func TestInferSchemaSetness(t *testing.T) {
	tr := parse(t, `
<w>
  <s><b>1</b></s>
  <s><b>2</b><b>3</b></s>
  <only>x</only>
</w>`)
	s, err := InferSchema(tr)
	if err != nil {
		t.Fatalf("infer: %v", err)
	}
	if !s.MustResolve("/w/s").Repeatable {
		t.Error("s repeats under w and must be inferred as a set element")
	}
	if !s.MustResolve("/w/s/b").Repeatable {
		t.Error("b repeats under one s and must be a set element (global per path)")
	}
	if s.MustResolve("/w/only").Repeatable {
		t.Error("only never repeats and must not be a set element")
	}
}

func TestInferSchemaLeafTypes(t *testing.T) {
	tr := parse(t, `
<r>
  <row><i>42</i><f>3.5</f><mix>10</mix><s>hello</s></row>
  <row><i>-7</i><f>2</f><mix>1.5</mix><s>12x</s></row>
</r>`)
	s, err := InferSchema(tr)
	if err != nil {
		t.Fatalf("infer: %v", err)
	}
	want := map[schema.Path]schema.Kind{
		"/r/row/i":   schema.Int,
		"/r/row/f":   schema.Float,
		"/r/row/mix": schema.Float, // int and float values widen to float
		"/r/row/s":   schema.String,
	}
	for p, k := range want {
		if got := s.MustResolve(p).Payload.Kind; got != k {
			t.Errorf("%s inferred as %v, want %v", p, got, k)
		}
	}
}

func TestInferredSchemaAcceptsItsDocument(t *testing.T) {
	docs := []string{
		bookXML,
		`<a><b x="1">t</b><b x="2"><c>u</c><c>v</c></b></a>`,
		`<p>hello <b>world</b></p>`,
	}
	for _, d := range docs {
		tr := parse(t, d)
		s, err := InferSchema(tr)
		if err != nil {
			t.Fatalf("infer(%q): %v", d, err)
		}
		if err := Conform(tr, s); err != nil {
			t.Errorf("document does not conform to its inferred schema: %v\ndoc: %s", err, d)
		}
	}
}

func TestConformViolations(t *testing.T) {
	s := schema.MustParse(`
store: Rcd
  book: SetOf Rcd
    isbn: int
    title: str
`)
	cases := []struct {
		name, xml, wantSub string
	}{
		{"wrong root", `<shop/>`, "root label"},
		{"undeclared child", `<store><book><isbn>1</isbn><extra>x</extra></book></store>`, "undeclared child"},
		{"non-set repeated", `<store><book><isbn>1</isbn><isbn>2</isbn></book></store>`, "occurs 2 times"},
		{"bad int", `<store><book><isbn>abc</isbn></book></store>`, "not an int"},
		{"leaf with children", `<store><book><title><x>1</x></title></book></store>`, "has children"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			tr := parse(t, c.xml)
			err := Conform(tr, s)
			if err == nil {
				t.Fatalf("expected violation containing %q", c.wantSub)
			}
			if !strings.Contains(err.Error(), c.wantSub) {
				t.Fatalf("error %q does not contain %q", err, c.wantSub)
			}
		})
	}
	// Valid instances, including missing optional leaves and empty sets.
	good := []string{
		`<store><book><isbn>1</isbn><title>T</title></book></store>`,
		`<store><book><isbn>1</isbn></book><book><title>U</title></book></store>`,
		`<store/>`,
	}
	for _, x := range good {
		tr := parse(t, x)
		if err := Conform(tr, s); err != nil {
			t.Errorf("valid document rejected: %v\n%s", err, x)
		}
	}
}

func TestConformChoice(t *testing.T) {
	s := schema.MustParse(`
r: Rcd
  c: Choice
    a: str
    b: str
`)
	if err := Conform(parse(t, `<r><c><a>1</a></c></r>`), s); err != nil {
		t.Errorf("one alternative should conform: %v", err)
	}
	if err := Conform(parse(t, `<r><c><a>1</a><b>2</b></c></r>`), s); err == nil {
		t.Error("two alternatives of a Choice must be rejected")
	}
}
