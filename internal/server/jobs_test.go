package server

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"
	"time"
)

// pollJob polls the job's status document until pred accepts it.
func pollJob(t *testing.T, s *Server, id string, pred func(jobView) bool) jobView {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for {
		rec := do(s, "GET", "/v1/jobs/"+id, nil, nil)
		if rec.Code != http.StatusOK {
			t.Fatalf("job status = %d, body %s", rec.Code, rec.Body)
		}
		var v jobView
		if err := json.Unmarshal(rec.Body.Bytes(), &v); err != nil {
			t.Fatal(err)
		}
		if pred(v) {
			return v
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s stuck in state %q", id, v.State)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

func terminal(v jobView) bool {
	return v.State == stateDone || v.State == stateFailed || v.State == stateCancelled
}

// TestJobLifecycle pins the async path end to end: submit, status,
// progress polling with cursors, and a result byte-identical to the
// sync endpoint's.
func TestJobLifecycle(t *testing.T) {
	s := newTestServer(t, Config{})
	xml := libraryXML(10)

	rec := do(s, "POST", "/v1/jobs", nil, strings.NewReader(xml))
	if rec.Code != http.StatusAccepted {
		t.Fatalf("submit = %d, body %s", rec.Code, rec.Body)
	}
	var v jobView
	if err := json.Unmarshal(rec.Body.Bytes(), &v); err != nil {
		t.Fatal(err)
	}
	if loc := rec.Header().Get("Location"); loc != "/v1/jobs/"+v.ID {
		t.Errorf("Location = %q, want %q", loc, "/v1/jobs/"+v.ID)
	}
	if v.Links.Events == "" || v.Links.Result == "" {
		t.Errorf("status document missing links: %+v", v)
	}

	done := pollJob(t, s, v.ID, terminal)
	if done.State != stateDone {
		t.Fatalf("job finished %q (%s), want done", done.State, done.Error)
	}
	if done.Finished == "" {
		t.Error("finished job has no finish timestamp")
	}

	// The result endpoint serves the rendered bytes verbatim —
	// identical to what the sync endpoint answers for the same body.
	res := do(s, "GET", "/v1/jobs/"+v.ID+"/result", nil, nil)
	if res.Code != http.StatusOK {
		t.Fatalf("result = %d, body %s", res.Code, res.Body)
	}
	sync := do(s, "POST", "/v1/discover", nil, strings.NewReader(xml))
	if sync.Code != http.StatusOK {
		t.Fatalf("sync discover = %d", sync.Code)
	}
	if got, want := normalizeTimes(res.Body.Bytes()), normalizeTimes(sync.Body.Bytes()); !bytes.Equal(got, want) {
		t.Error("job result differs from the sync path for the same document")
	}

	// Progress polling: page through the feed by cursor until closed.
	var (
		cursor uint64
		kinds  []string
	)
	for {
		rec := do(s, "GET", "/v1/jobs/"+v.ID+"/events?cursor="+strconv.FormatUint(cursor, 10), nil, nil)
		if rec.Code != http.StatusOK {
			t.Fatalf("events = %d, body %s", rec.Code, rec.Body)
		}
		var page eventsPage
		if err := json.Unmarshal(rec.Body.Bytes(), &page); err != nil {
			t.Fatal(err)
		}
		if page.Dropped {
			t.Fatal("feed dropped events for a completed small run")
		}
		for _, raw := range page.Events {
			var ev struct {
				Kind string `json:"event"`
			}
			if err := json.Unmarshal(raw, &ev); err != nil {
				t.Fatal(err)
			}
			kinds = append(kinds, ev.Kind)
		}
		cursor = page.Next
		if page.Closed && len(page.Events) == 0 {
			break
		}
	}
	if len(kinds) == 0 || kinds[0] != "run_start" || kinds[len(kinds)-1] != "run_end" {
		t.Errorf("event feed not bracketed by run_start/run_end: %v", kinds)
	}
}

// TestJobSSE streams a finished job's progress as Server-Sent Events
// over a real connection: ids start at the cursor origin, events carry
// their trace kind, and the stream terminates with a done event.
func TestJobSSE(t *testing.T) {
	s := newTestServer(t, Config{})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	defer ts.Client().CloseIdleConnections()

	resp, err := ts.Client().Post(ts.URL+"/v1/jobs", "text/xml", strings.NewReader(libraryXML(8)))
	if err != nil {
		t.Fatal(err)
	}
	var v jobView
	if err := json.NewDecoder(resp.Body).Decode(&v); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()

	req, err := http.NewRequest("GET", ts.URL+"/v1/jobs/"+v.ID+"/events", nil)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Accept", "text/event-stream")
	stream, err := ts.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer stream.Body.Close()
	if ct := stream.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("Content-Type = %q", ct)
	}
	body, err := io.ReadAll(stream.Body) // the job finishes, so the stream ends
	if err != nil {
		t.Fatal(err)
	}
	text := string(body)
	if !strings.Contains(text, "event: run_start\nid: 0\n") {
		t.Errorf("stream does not begin at cursor 0 with run_start:\n%.300s", text)
	}
	if !strings.Contains(text, "event: run_end\n") {
		t.Error("stream missing run_end")
	}
	if !strings.HasSuffix(strings.TrimSpace(text), "event: done\ndata: {}") {
		t.Errorf("stream does not terminate with the done event:\n…%s", text[max(0, len(text)-120):])
	}
}

// TestJobCancel pins DELETE /v1/jobs/{id}: a queued job is aborted and
// lands in the cancelled state, and its result endpoint replays that.
func TestJobCancel(t *testing.T) {
	s := newTestServer(t, Config{MaxConcurrent: 1})
	release, err := s.adm.Acquire(context.Background(), "")
	if err != nil {
		t.Fatal(err)
	}
	defer release()

	rec := do(s, "POST", "/v1/jobs", nil, strings.NewReader(libraryXML(6)))
	if rec.Code != http.StatusAccepted {
		t.Fatalf("submit = %d", rec.Code)
	}
	var v jobView
	if err := json.Unmarshal(rec.Body.Bytes(), &v); err != nil {
		t.Fatal(err)
	}

	if rec := do(s, "DELETE", "/v1/jobs/"+v.ID, nil, nil); rec.Code != http.StatusAccepted {
		t.Fatalf("cancel = %d", rec.Code)
	}
	got := pollJob(t, s, v.ID, terminal)
	if got.State != stateCancelled {
		t.Fatalf("state = %q (%s), want cancelled", got.State, got.Error)
	}
	res := do(s, "GET", "/v1/jobs/"+v.ID+"/result", nil, nil)
	if res.Code != statusClientClosedRequest {
		t.Errorf("cancelled result = %d, want %d", res.Code, statusClientClosedRequest)
	}
}

// TestJobQueueDeadline pins a job whose wall-clock budget expires
// while it waits for admission: it fails with the 504 mapping instead
// of running over budget.
func TestJobQueueDeadline(t *testing.T) {
	s := newTestServer(t, Config{MaxConcurrent: 1})
	release, err := s.adm.Acquire(context.Background(), "")
	if err != nil {
		t.Fatal(err)
	}
	defer release()

	rec := do(s, "POST", "/v1/jobs?timeout=25ms", nil, strings.NewReader(libraryXML(6)))
	if rec.Code != http.StatusAccepted {
		t.Fatalf("submit = %d", rec.Code)
	}
	var v jobView
	if err := json.Unmarshal(rec.Body.Bytes(), &v); err != nil {
		t.Fatal(err)
	}
	got := pollJob(t, s, v.ID, terminal)
	if got.State != stateFailed {
		t.Fatalf("state = %q, want failed", got.State)
	}
	res := do(s, "GET", "/v1/jobs/"+v.ID+"/result", nil, nil)
	if res.Code != http.StatusGatewayTimeout {
		t.Errorf("result replay = %d, want 504 (body %s)", res.Code, res.Body)
	}
}

// TestJobRegistryBounded pins the registry cap: full of live jobs it
// sheds submissions with 429, and finished jobs are evicted to make
// room.
func TestJobRegistryBounded(t *testing.T) {
	s := newTestServer(t, Config{MaxConcurrent: 1, MaxJobs: 1})
	release, err := s.adm.Acquire(context.Background(), "")
	if err != nil {
		t.Fatal(err)
	}

	rec := do(s, "POST", "/v1/jobs", nil, strings.NewReader(libraryXML(6)))
	if rec.Code != http.StatusAccepted {
		t.Fatalf("first submit = %d", rec.Code)
	}
	var v jobView
	if err := json.Unmarshal(rec.Body.Bytes(), &v); err != nil {
		t.Fatal(err)
	}

	// The only slot holds a live (queued) job: the registry is full.
	rec = do(s, "POST", "/v1/jobs", nil, strings.NewReader(libraryXML(6)))
	if rec.Code != http.StatusTooManyRequests {
		t.Fatalf("submit into full registry = %d, want 429", rec.Code)
	}
	if rec.Header().Get("Retry-After") == "" {
		t.Error("registry-full rejection missing Retry-After")
	}

	release()
	if got := pollJob(t, s, v.ID, terminal); got.State != stateDone {
		t.Fatalf("first job finished %q, want done", got.State)
	}

	// Now terminal, the first job is evicted for a new submission.
	rec = do(s, "POST", "/v1/jobs", nil, strings.NewReader(libraryXML(6)))
	if rec.Code != http.StatusAccepted {
		t.Fatalf("submit after eviction = %d, want 202", rec.Code)
	}
	var v2 jobView
	if err := json.Unmarshal(rec.Body.Bytes(), &v2); err != nil {
		t.Fatal(err)
	}
	if got := pollJob(t, s, v2.ID, terminal); got.State != stateDone {
		t.Fatalf("second job finished %q, want done", got.State)
	}
	if rec := do(s, "GET", "/v1/jobs/"+v.ID, nil, nil); rec.Code != http.StatusNotFound {
		t.Errorf("evicted job status = %d, want 404", rec.Code)
	}
}

// TestJobUnknownID pins 404s for absent jobs across the job surface.
func TestJobUnknownID(t *testing.T) {
	s := newTestServer(t, Config{})
	for _, c := range []struct{ method, path string }{
		{"GET", "/v1/jobs/job-999"},
		{"GET", "/v1/jobs/job-999/result"},
		{"GET", "/v1/jobs/job-999/events"},
		{"DELETE", "/v1/jobs/job-999"},
	} {
		if rec := do(s, c.method, c.path, nil, nil); rec.Code != http.StatusNotFound {
			t.Errorf("%s %s = %d, want 404", c.method, c.path, rec.Code)
		}
	}
}

// TestJobDegradeTruncate pins graceful degradation on the async path:
// a job that outlives its budget fails by default but serves its
// partial result under ?degrade=truncate.
func TestJobDegradeTruncate(t *testing.T) {
	s := newTestServer(t, Config{Fault: sleepOnAdmit()})
	xml := libraryXML(10)
	hdr := map[string]string{"X-Test-Sleep": "80ms"}

	submit := func(target string) jobView {
		t.Helper()
		rec := do(s, "POST", target, hdr, strings.NewReader(xml))
		if rec.Code != http.StatusAccepted {
			t.Fatalf("submit = %d, body %s", rec.Code, rec.Body)
		}
		var v jobView
		if err := json.Unmarshal(rec.Body.Bytes(), &v); err != nil {
			t.Fatal(err)
		}
		return pollJob(t, s, v.ID, terminal)
	}

	if got := submit("/v1/jobs?timeout=20ms"); got.State != stateFailed ||
		!strings.Contains(got.Error, "deadline") {
		t.Errorf("over-budget job = %q (%s), want failed with a deadline error", got.State, got.Error)
	}

	got := submit("/v1/jobs?timeout=20ms&degrade=truncate")
	if got.State != stateDone || !got.Truncated {
		t.Fatalf("degraded job = %+v, want done and truncated", got)
	}
	rec := do(s, "GET", "/v1/jobs/"+got.ID+"/result", nil, nil)
	if rec.Code != http.StatusOK || rec.Header().Get("X-Truncated") != "true" {
		t.Fatalf("degraded result = %d (X-Truncated %q), want 200/true",
			rec.Code, rec.Header().Get("X-Truncated"))
	}
	var res struct {
		Stats struct {
			Truncated       bool   `json:"truncated"`
			TruncatedReason string `json:"truncatedReason"`
		} `json:"stats"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &res); err != nil {
		t.Fatalf("degraded result is not valid JSON: %v", err)
	}
	if !res.Stats.Truncated || !strings.Contains(res.Stats.TruncatedReason, "deadline") {
		t.Errorf("truncated=%v reason=%q, want a deadline truncation",
			res.Stats.Truncated, res.Stats.TruncatedReason)
	}
}
