package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"regexp"
	"strings"
	"sync"
	"testing"
	"time"

	"discoverxfd"
	"discoverxfd/internal/xmlgen"
)

// libraryXML renders a library with n shelves — a small corpus with
// enough repetition to carry FDs.
func libraryXML(n int) string {
	var b strings.Builder
	b.WriteString("<library>\n")
	for i := 0; i < n; i++ {
		fmt.Fprintf(&b, "<shelf><room>r%d</room>", i%10)
		fmt.Fprintf(&b, "<book><isbn>i%d</isbn><title>t%d</title><publisher>p%d</publisher></book>", i, i%20, i%5)
		fmt.Fprintf(&b, "<book><isbn>j%d</isbn><title>u%d</title><publisher>q%d</publisher></book>", i, i%20, i%5)
		b.WriteString("</shelf>\n")
	}
	b.WriteString("</library>")
	return b.String()
}

// newTestServer builds a Server whose lifecycle context dies with the
// test.
func newTestServer(t *testing.T, cfg Config) *Server {
	t.Helper()
	ctx, cancel := context.WithCancel(context.Background())
	t.Cleanup(cancel)
	return New(ctx, cfg)
}

// do runs one request through the server's handler in-process.
func do(s *Server, method, target string, hdr map[string]string, body io.Reader) *httptest.ResponseRecorder {
	req := httptest.NewRequest(method, target, body)
	for k, v := range hdr {
		req.Header.Set(k, v)
	}
	rec := httptest.NewRecorder()
	s.Handler().ServeHTTP(rec, req)
	return rec
}

// volatileTimes matches the three wall-clock Stats fields — the only
// non-deterministic bytes in a rendered Result.
var volatileTimes = regexp.MustCompile(`("(?:intraTime|interTime|wallTime)"\s*:\s*)"[^"]*"`)

// normalizeTimes rewrites the wall-clock Stats fields to their zeroed
// form so served bytes compare against a library run with zeroTimes.
func normalizeTimes(b []byte) []byte {
	return volatileTimes.ReplaceAll(b, []byte(`$1"0s"`))
}

// libraryJSON runs the library path over doc/schema and renders the
// result with zeroed times — the byte-exact expectation for a served
// response.
func libraryJSON(t *testing.T, doc *discoverxfd.Document, sch *discoverxfd.Schema, opts discoverxfd.Options) []byte {
	t.Helper()
	opts.Trace = nil
	res, err := discoverxfd.NewEngine(&opts).Discover(context.Background(), doc, sch)
	if err != nil {
		t.Fatal(err)
	}
	res.Stats.IntraTime, res.Stats.InterTime, res.Stats.WallTime = 0, 0, 0
	var buf bytes.Buffer
	if err := discoverxfd.WriteJSON(&buf, res); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func TestHealthEndpoints(t *testing.T) {
	s := newTestServer(t, Config{})
	if rec := do(s, "GET", "/healthz", nil, nil); rec.Code != http.StatusOK {
		t.Errorf("healthz = %d, want 200", rec.Code)
	}
	if rec := do(s, "GET", "/readyz", nil, nil); rec.Code != http.StatusOK {
		t.Errorf("readyz = %d, want 200", rec.Code)
	}
	rec := do(s, "GET", "/v1/stats", nil, nil)
	if rec.Code != http.StatusOK {
		t.Fatalf("stats = %d, want 200", rec.Code)
	}
	var snap StatsSnapshot
	if err := json.Unmarshal(rec.Body.Bytes(), &snap); err != nil {
		t.Fatalf("stats body: %v", err)
	}
}

// TestSyncDiscoverRawXML pins the sync path end to end: a raw XML body
// (schema inferred) is served 200 with exactly the bytes the library
// path renders.
func TestSyncDiscoverRawXML(t *testing.T) {
	s := newTestServer(t, Config{})
	xml := libraryXML(12)
	rec := do(s, "POST", "/v1/discover", nil, strings.NewReader(xml))
	if rec.Code != http.StatusOK {
		t.Fatalf("discover = %d, body %s", rec.Code, rec.Body)
	}
	if ct := rec.Header().Get("Content-Type"); ct != "application/json" {
		t.Errorf("Content-Type = %q", ct)
	}

	doc, err := discoverxfd.ParseDocument(xml)
	if err != nil {
		t.Fatal(err)
	}
	want := libraryJSON(t, doc, nil, discoverxfd.Options{})
	if got := normalizeTimes(rec.Body.Bytes()); !bytes.Equal(got, want) {
		t.Errorf("served result differs from library path\nserved: %s\nwant:   %s", got, want)
	}

	snap := s.Stats()
	if snap.Accepted != 1 || snap.Completed != 1 {
		t.Errorf("stats accepted=%d completed=%d, want 1/1", snap.Accepted, snap.Completed)
	}
}

// TestServedResultMatchesLibrary is the service-layer differential
// harness: over every golden corpus and option set, POSTing the
// serialized document (with its declared schema) must serve bytes
// identical to the library path, modulo the three wall-clock fields.
func TestServedResultMatchesLibrary(t *testing.T) {
	cases := []struct {
		slug string
		ds   xmlgen.Dataset
		opts discoverxfd.Options
	}{
		{"warehouse", xmlgen.Warehouse(xmlgen.DefaultWarehouse()), discoverxfd.Options{}},
		{"warehouse_approx", xmlgen.Warehouse(xmlgen.DefaultWarehouse()), discoverxfd.Options{ApproxError: 0.05}},
		{"warehouse_parallel", xmlgen.Warehouse(xmlgen.DefaultWarehouse()), discoverxfd.Options{Parallel: true}},
		{"warehouse_intra", xmlgen.Warehouse(xmlgen.DefaultWarehouse()), discoverxfd.Options{IntraOnly: true}},
		{"dblp", xmlgen.DBLP(xmlgen.DefaultDBLP()), discoverxfd.Options{}},
		{"auction", xmlgen.Auction(xmlgen.DefaultAuction()), discoverxfd.Options{}},
		{"mondial", xmlgen.Mondial(xmlgen.DefaultMondial()), discoverxfd.Options{}},
		{"mondial_nosets", xmlgen.Mondial(xmlgen.DefaultMondial()), discoverxfd.Options{NoSetElements: true}},
		{"catalog", xmlgen.Catalog(xmlgen.DefaultCatalog()), discoverxfd.Options{}},
		{"psd", xmlgen.PSD(xmlgen.DefaultPSD()), discoverxfd.Options{}},
	}
	for _, c := range cases {
		t.Run(c.slug, func(t *testing.T) {
			s := newTestServer(t, Config{Options: c.opts})

			var xml bytes.Buffer
			if err := c.ds.Tree.WriteXML(&xml); err != nil {
				t.Fatal(err)
			}
			body, err := json.Marshal(envelope{Document: xml.String(), Schema: c.ds.Schema.String()})
			if err != nil {
				t.Fatal(err)
			}
			rec := do(s, "POST", "/v1/discover",
				map[string]string{"Content-Type": "application/json"}, bytes.NewReader(body))
			if rec.Code != http.StatusOK {
				t.Fatalf("discover = %d, body %s", rec.Code, rec.Body)
			}

			// The library expectation parses the same serialized bytes the
			// server received, under the same declared schema.
			doc, err := discoverxfd.ParseDocument(xml.String())
			if err != nil {
				t.Fatal(err)
			}
			sch, err := discoverxfd.ParseSchema(c.ds.Schema.String())
			if err != nil {
				t.Fatal(err)
			}
			want := libraryJSON(t, doc, sch, c.opts)
			if got := normalizeTimes(rec.Body.Bytes()); !bytes.Equal(got, want) {
				t.Errorf("%s: served result differs from library path", c.ds.Name)
			}
		})
	}
}

// TestBadRequests pins the 4xx contract of the decode layer.
func TestBadRequests(t *testing.T) {
	s := newTestServer(t, Config{MaxBodyBytes: 4 << 10})
	xml := libraryXML(4)
	cases := []struct {
		name   string
		target string
		hdr    map[string]string
		body   string
		want   int
	}{
		{"bad degrade mode", "/v1/discover?degrade=explode", nil, xml, http.StatusBadRequest},
		{"bad timeout", "/v1/discover?timeout=soon", nil, xml, http.StatusBadRequest},
		{"negative timeout", "/v1/discover?timeout=-1s", nil, xml, http.StatusBadRequest},
		{"bad max_tuples", "/v1/discover?max_tuples=many", nil, xml, http.StatusBadRequest},
		{"negative max_tuples", "/v1/discover?max_tuples=-1", nil, xml, http.StatusBadRequest},
		{"negative max_lattice_level", "/v1/discover?max_lattice_level=-2", nil, xml, http.StatusBadRequest},
		{"malformed xml", "/v1/discover", nil, "<library><shelf></library>", http.StatusBadRequest},
		{"malformed envelope", "/v1/discover", map[string]string{"Content-Type": "application/json"},
			`{"document": "<a/>", "schema": 7}`, http.StatusBadRequest},
		{"unknown envelope field", "/v1/discover", map[string]string{"Content-Type": "application/json"},
			`{"document": "<a/>", "doc": 2}`, http.StatusBadRequest},
		{"empty envelope document", "/v1/discover", map[string]string{"Content-Type": "application/json"},
			`{"document": ""}`, http.StatusBadRequest},
		{"bad schema", "/v1/discover", map[string]string{"Content-Type": "application/json"},
			`{"document": "<a/>", "schema": "Rcd ((("}`, http.StatusBadRequest},
		{"bad envelope format", "/v1/discover", map[string]string{"Content-Type": "application/json"},
			`{"document": "<a/>", "format": "yaml"}`, http.StatusBadRequest},
		{"format document mismatch", "/v1/discover", map[string]string{"Content-Type": "application/json"},
			`{"document": "<a/>", "format": "json"}`, http.StatusBadRequest},
		{"malformed json document", "/v1/discover", map[string]string{"Content-Type": "application/json"},
			`{"library": {"shelf": [1,}}`, http.StatusBadRequest},
		{"json document bad label", "/v1/discover", map[string]string{"Content-Type": "application/json"},
			`{"library": {"a b": 1}}`, http.StatusBadRequest},
		{"oversized body", "/v1/discover", nil, libraryXML(200), http.StatusRequestEntityTooLarge},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			rec := do(s, "POST", c.target, c.hdr, strings.NewReader(c.body))
			if rec.Code != c.want {
				t.Errorf("status = %d, want %d (body %s)", rec.Code, c.want, rec.Body)
			}
		})
	}
}

// libraryJSONDoc is the JSON spelling of a small library corpus.
const libraryJSONDoc = `{"library": {"shelf": [
	{"room": "r1", "book": [
		{"isbn": "i1", "title": "t1", "publisher": "p1"},
		{"isbn": "j1", "title": "t1", "publisher": "p1"}]},
	{"room": "r2", "book": [
		{"isbn": "i2", "title": "t2", "publisher": "p1"},
		{"isbn": "j2", "title": "t2", "publisher": "p1"}]}
]}}`

// TestJSONDocumentNegotiation pins the JSON document paths: a raw
// JSON body and a format=json envelope both serve exactly the bytes
// the library path renders for LoadJSON + inferred schema, and a
// DefaultFormat=json server treats undeclared bodies as JSON.
func TestJSONDocumentNegotiation(t *testing.T) {
	doc, err := discoverxfd.LoadJSON(strings.NewReader(libraryJSONDoc))
	if err != nil {
		t.Fatal(err)
	}
	want := libraryJSON(t, doc, nil, discoverxfd.Options{})

	env, err := json.Marshal(envelope{Document: libraryJSONDoc, Format: "json"})
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name string
		cfg  Config
		hdr  map[string]string
		body string
	}{
		{"raw json body", Config{}, map[string]string{"Content-Type": "application/json"}, libraryJSONDoc},
		{"format json envelope", Config{}, map[string]string{"Content-Type": "application/json"}, string(env)},
		{"default format json", Config{DefaultFormat: "json"}, nil, libraryJSONDoc},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			s := newTestServer(t, c.cfg)
			rec := do(s, "POST", "/v1/discover", c.hdr, strings.NewReader(c.body))
			if rec.Code != http.StatusOK {
				t.Fatalf("discover = %d, body %s", rec.Code, rec.Body)
			}
			if got := normalizeTimes(rec.Body.Bytes()); !bytes.Equal(got, want) {
				t.Errorf("served result differs from library path\nserved: %s\nwant:   %s", got, want)
			}
		})
	}

	// A raw JSON document whose top level has a string-valued
	// "document" member is indistinguishable from an envelope and is
	// decoded as one — pin that edge so the precedence is deliberate.
	rec := do(newTestServer(t, Config{}), "POST", "/v1/discover",
		map[string]string{"Content-Type": "application/json"}, strings.NewReader(`{"document": "not xml"}`))
	if rec.Code != http.StatusBadRequest {
		t.Errorf("envelope-shaped document = %d, want 400 (envelope precedence)", rec.Code)
	}
}

// TestLimitsTightenOnly pins the limit-negotiation rule: a request may
// narrow the server's budget but never widen it — asking for more (or
// for unlimited) is clamped to the server's bound, and the capped run
// is served 200 with the truncation marked.
func TestLimitsTightenOnly(t *testing.T) {
	s := newTestServer(t, Config{Limits: discoverxfd.Limits{MaxTuples: 10}})
	xml := libraryXML(40)

	for _, target := range []string{
		"/v1/discover",                  // server bound applies untouched
		"/v1/discover?max_tuples=0",     // "unlimited" is clamped down
		"/v1/discover?max_tuples=99999", // larger is clamped down
	} {
		rec := do(s, "POST", target, nil, strings.NewReader(xml))
		if rec.Code != http.StatusOK {
			t.Fatalf("%s = %d, body %s", target, rec.Code, rec.Body)
		}
		if rec.Header().Get("X-Truncated") != "true" {
			t.Errorf("%s: X-Truncated missing — server cap did not hold", target)
		}
		var res struct {
			Stats struct {
				Truncated       bool   `json:"truncated"`
				TruncatedReason string `json:"truncatedReason"`
			} `json:"stats"`
		}
		if err := json.Unmarshal(rec.Body.Bytes(), &res); err != nil {
			t.Fatal(err)
		}
		if !res.Stats.Truncated || !strings.Contains(res.Stats.TruncatedReason, "tuple budget") {
			t.Errorf("%s: truncated=%v reason=%q, want a tuple-budget truncation",
				target, res.Stats.Truncated, res.Stats.TruncatedReason)
		}
	}

	// Tightening below the server bound is honored as-is.
	rec := do(s, "POST", "/v1/discover?max_tuples=5", nil, strings.NewReader(xml))
	if rec.Code != http.StatusOK {
		t.Fatalf("tightened request = %d", rec.Code)
	}
	if !strings.Contains(rec.Body.String(), "tuple budget of 5 exhausted") {
		t.Errorf("tightened cap not applied: %s", rec.Body)
	}
}

// sleepOnAdmit returns a fault hook that sleeps at the "admitted"
// point for the duration named by the X-Test-Sleep header — it burns
// the request's wall-clock budget after decode succeeds and before the
// run starts, making deadline-degradation deterministic.
func sleepOnAdmit() func(point string, h http.Header) {
	return func(point string, h http.Header) {
		if point != "admitted" {
			return
		}
		if v := h.Get("X-Test-Sleep"); v != "" {
			d, err := time.ParseDuration(v)
			if err == nil {
				time.Sleep(d)
			}
		}
	}
}

// TestDegradeTruncate pins graceful degradation: a run whose
// wall-clock budget is spent answers 504 by default, but
// ?degrade=truncate serves the partial Result as a 200 carrying
// Stats.Truncated — valid JSON, deadline reason, X-Truncated header.
func TestDegradeTruncate(t *testing.T) {
	s := newTestServer(t, Config{Fault: sleepOnAdmit()})
	xml := libraryXML(12)
	hdr := map[string]string{"X-Test-Sleep": "80ms"}

	rec := do(s, "POST", "/v1/discover?timeout=20ms", hdr, strings.NewReader(xml))
	if rec.Code != http.StatusGatewayTimeout {
		t.Fatalf("no-degrade deadline = %d, want 504 (body %s)", rec.Code, rec.Body)
	}
	if !strings.Contains(rec.Body.String(), "degrade=truncate") {
		t.Errorf("504 body does not point at the degraded mode: %s", rec.Body)
	}

	rec = do(s, "POST", "/v1/discover?timeout=20ms&degrade=truncate", hdr, strings.NewReader(xml))
	if rec.Code != http.StatusOK {
		t.Fatalf("degrade=truncate deadline = %d, want 200 (body %s)", rec.Code, rec.Body)
	}
	if rec.Header().Get("X-Truncated") != "true" {
		t.Error("degraded response missing X-Truncated header")
	}
	var res struct {
		Stats struct {
			Truncated       bool   `json:"truncated"`
			TruncatedReason string `json:"truncatedReason"`
		} `json:"stats"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &res); err != nil {
		t.Fatalf("degraded response is not valid JSON: %v\n%s", err, rec.Body)
	}
	if !res.Stats.Truncated || !strings.Contains(res.Stats.TruncatedReason, "deadline") {
		t.Errorf("truncated=%v reason=%q, want a deadline truncation",
			res.Stats.Truncated, res.Stats.TruncatedReason)
	}
	if s.Stats().DeadlineExceeded == 0 {
		t.Error("deadline counter did not move")
	}
}

// TestOverloadSheds pins admission control over HTTP: with every slot
// held and the queue full, new work is shed with 429 + Retry-After;
// a tenant at its quota is shed even though capacity remains.
func TestOverloadSheds(t *testing.T) {
	s := newTestServer(t, Config{MaxConcurrent: 1, QueueDepth: -1, TenantQuota: 1, RetryAfter: 7 * time.Second})
	xml := libraryXML(4)

	// Hold the only slot from the side so the HTTP layer is saturated.
	release, err := s.adm.Acquire(context.Background(), "hog")
	if err != nil {
		t.Fatal(err)
	}
	defer release()

	rec := do(s, "POST", "/v1/discover", nil, strings.NewReader(xml))
	if rec.Code != http.StatusTooManyRequests {
		t.Fatalf("overloaded discover = %d, want 429 (body %s)", rec.Code, rec.Body)
	}
	if ra := rec.Header().Get("Retry-After"); ra != "7" {
		t.Errorf("Retry-After = %q, want %q", ra, "7")
	}

	// Tenant quota: the hog tenant is rejected even before queueing.
	s2 := newTestServer(t, Config{MaxConcurrent: 4, QueueDepth: 4, TenantQuota: 1})
	release2, err := s2.adm.Acquire(context.Background(), "hog")
	if err != nil {
		t.Fatal(err)
	}
	defer release2()
	rec = do(s2, "POST", "/v1/discover", map[string]string{"X-Tenant": "hog"}, strings.NewReader(xml))
	if rec.Code != http.StatusTooManyRequests {
		t.Fatalf("over-quota tenant = %d, want 429", rec.Code)
	}
	if rec.Header().Get("Retry-After") == "" {
		t.Error("over-quota response missing Retry-After")
	}
	// A different tenant still gets through.
	rec = do(s2, "POST", "/v1/discover", map[string]string{"X-Tenant": "polite"}, strings.NewReader(xml))
	if rec.Code != http.StatusOK {
		t.Fatalf("other tenant = %d, want 200 (body %s)", rec.Code, rec.Body)
	}
	if s2.Stats().RejectedOverload != 1 {
		t.Errorf("rejectedOverload = %d, want 1", s2.Stats().RejectedOverload)
	}
}

// blockOnAdmit returns a fault hook that blocks at the "admitted"
// point until release is closed, signalling entry on started (once).
func blockOnAdmit(started, release chan struct{}) func(point string, h http.Header) {
	var once sync.Once
	return func(point string, h http.Header) {
		if point == "admitted" && h.Get("X-Test-Block") != "" {
			once.Do(func() { close(started) })
			<-release
		}
	}
}

// TestDrainCompletesInFlight pins the graceful half of shutdown: with
// a run in flight, Drain flips readiness to 503, sheds new work with
// 503 + Retry-After, lets the in-flight run finish and serve its 200,
// and then returns.
func TestDrainCompletesInFlight(t *testing.T) {
	started, release := make(chan struct{}), make(chan struct{})
	s := newTestServer(t, Config{MaxConcurrent: 2, Fault: blockOnAdmit(started, release)})
	xml := libraryXML(8)

	inflight := make(chan *httptest.ResponseRecorder, 1)
	go func() {
		inflight <- do(s, "POST", "/v1/discover", map[string]string{"X-Test-Block": "1"}, strings.NewReader(xml))
	}()
	<-started

	drained := make(chan error, 1)
	go func() { drained <- s.Drain(context.Background()) }()

	// Drain is asynchronous from this goroutine's perspective; poll the
	// readiness flip.
	for i := 0; ; i++ {
		if rec := do(s, "GET", "/readyz", nil, nil); rec.Code == http.StatusServiceUnavailable {
			break
		}
		if i > 1000 {
			t.Fatal("readyz never flipped to 503 after Drain")
		}
		time.Sleep(time.Millisecond)
	}
	if rec := do(s, "GET", "/healthz", nil, nil); rec.Code != http.StatusOK {
		t.Errorf("healthz during drain = %d, want 200 (liveness stays up)", rec.Code)
	}
	rec := do(s, "POST", "/v1/discover", nil, strings.NewReader(xml))
	if rec.Code != http.StatusServiceUnavailable {
		t.Errorf("discover during drain = %d, want 503", rec.Code)
	}
	if rec.Header().Get("Retry-After") == "" {
		t.Error("drain rejection missing Retry-After")
	}
	rec = do(s, "POST", "/v1/jobs", nil, strings.NewReader(xml))
	if rec.Code != http.StatusServiceUnavailable {
		t.Errorf("job submit during drain = %d, want 503", rec.Code)
	}

	close(release)
	if err := <-drained; err != nil {
		t.Fatalf("drain: %v", err)
	}
	if rec := <-inflight; rec.Code != http.StatusOK {
		t.Errorf("in-flight run during drain = %d, want 200 (body %s)", rec.Code, rec.Body)
	}
	if s.Stats().RejectedDraining < 2 {
		t.Errorf("rejectedDraining = %d, want >= 2", s.Stats().RejectedDraining)
	}
	// Drain is idempotent.
	if err := s.Drain(context.Background()); err != nil {
		t.Errorf("second drain: %v", err)
	}
}

// TestDrainCutShort pins the other half: when the grace period ends
// first, Drain aborts the stragglers through the lifecycle context and
// reports the cut, instead of hanging.
func TestDrainCutShort(t *testing.T) {
	started := make(chan struct{})
	var once sync.Once
	s := newTestServer(t, Config{Fault: func(point string, h http.Header) {
		if point == "admitted" && h.Get("X-Test-Slow-Job") != "" {
			once.Do(func() { close(started) })
			time.Sleep(200 * time.Millisecond)
		}
	}})
	xml := libraryXML(8)

	rec := do(s, "POST", "/v1/jobs", map[string]string{"X-Test-Slow-Job": "1"}, strings.NewReader(xml))
	if rec.Code != http.StatusAccepted {
		t.Fatalf("submit = %d, body %s", rec.Code, rec.Body)
	}
	var v jobView
	if err := json.Unmarshal(rec.Body.Bytes(), &v); err != nil {
		t.Fatal(err)
	}
	<-started

	dctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	err := s.Drain(dctx)
	if err == nil {
		t.Fatal("drain with expired grace returned nil, want the cut-short error")
	}
	if !strings.Contains(err.Error(), "cut short") {
		t.Errorf("drain error = %v", err)
	}
	// The straggler was aborted through the lifecycle context and
	// recorded as cancelled, not lost.
	rec = do(s, "GET", "/v1/jobs/"+v.ID, nil, nil)
	var after jobView
	if err := json.Unmarshal(rec.Body.Bytes(), &after); err != nil {
		t.Fatal(err)
	}
	if after.State != stateCancelled && after.State != stateFailed {
		t.Errorf("straggler state = %q, want cancelled or failed", after.State)
	}
}
