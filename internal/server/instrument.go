package server

// instrument.go is the server's observability middleware — the
// outermost layer of every route, so sheds (429/503) and contained
// panics are observed exactly like successes. Per request it:
//
//   - joins the caller's distributed trace: an inbound W3C traceparent
//     header is parsed (malformed ones are ignored per spec — a fresh
//     trace starts instead), a span id is minted for this request, and
//     the resulting traceparent plus X-Request-Id are set on the
//     response before the handler runs, so even an early shed carries
//     them;
//   - emits a request span (request_start/request_end) to the durable
//     trace backend, stamped with the trace_id/request_id pair; runs
//     admitted by the request reuse the same pair via requestTracer,
//     so one grep by trace_id yields the request and its run;
//   - labels the goroutine for profilers (xfd_trace, xfd_request) —
//     the run layer adds xfd_run/xfd_stage on top;
//   - records RED metrics (rate, errors, duration) per route × tenant
//     × status class and the response byte count;
//   - writes one structured access-log line, and a deeper slow-request
//     report with per-stage timings when the request outlives
//     Config.SlowRun.
//
// The library path is untouched: all of this lives on the serving
// side of the Options.Trace seam, and requests that never reach a run
// pay only header parsing and two header writes.

import (
	"context"
	"net/http"
	"runtime/pprof"
	"sort"
	"sync"
	"time"

	"discoverxfd/internal/trace"
)

// ctxKey keys the per-request instrumentation state in the request
// context.
type ctxKey struct{}

// instrRequest is the per-request observability state: the trace
// correlation ids, the stage recorder feeding the slow-request report,
// and the shed/decline reason writeError classifies for the access log
// and the shed counters.
type instrRequest struct {
	traceID   string
	requestID string

	mu     sync.Mutex
	reason string        // guarded by mu
	stages *stageTimings // nil unless SlowRun is configured
}

// setReason records why a request was declined (queue_full,
// tenant_quota, draining, deadline, …); first writer wins so the
// reason names the original classification.
func (in *instrRequest) setReason(reason string) {
	in.mu.Lock()
	if in.reason == "" {
		in.reason = reason
	}
	in.mu.Unlock()
}

func (in *instrRequest) getReason() string {
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.reason
}

// instrFrom returns the request's instrumentation state, or nil for a
// request that did not pass through the middleware (direct handler
// tests).
func instrFrom(ctx context.Context) *instrRequest {
	in, _ := ctx.Value(ctxKey{}).(*instrRequest)
	return in
}

// noteReason records a decline reason for the in-flight request, if it
// is instrumented. Free otherwise.
func noteReason(r *http.Request, reason string) {
	if in := instrFrom(r.Context()); in != nil {
		in.setReason(reason)
	}
}

// requestTracer returns the tracer runs admitted by this request hand
// to Options.Trace: the durable backend stamped with the request's
// correlation ids, plus the slow-run stage recorder when configured.
// Requests outside the middleware fall back to the bare backend.
func (s *Server) requestTracer(r *http.Request) trace.Tracer {
	in := instrFrom(r.Context())
	if in == nil {
		return s.cfg.Trace
	}
	var stages trace.Tracer
	if in.stages != nil {
		stages = in.stages
	}
	return trace.Multi(trace.WithIDs(s.cfg.Trace, in.traceID, in.requestID), stages)
}

// stageTimings is a Tracer that retains stage_end durations — the
// slow-request report's raw material. It keeps at most stageCap spans
// so a pathological request cannot grow it unboundedly.
type stageTimings struct {
	mu    sync.Mutex
	spans []stageSpan // guarded by mu
}

type stageSpan struct {
	run   string
	stage string
	ms    float64
}

const stageCap = 64

func (st *stageTimings) Emit(ev *trace.Event) {
	if ev.Kind != trace.KindStageEnd {
		return
	}
	st.mu.Lock()
	if len(st.spans) < stageCap {
		st.spans = append(st.spans, stageSpan{run: ev.Run, stage: ev.Stage, ms: ev.DurationMS})
	}
	st.mu.Unlock()
}

// report renders the retained spans as slog pairs ("run/stage" →
// duration), sorted for a deterministic log line.
func (st *stageTimings) report() []any {
	st.mu.Lock()
	spans := make([]stageSpan, len(st.spans))
	copy(spans, st.spans)
	st.mu.Unlock()
	sort.SliceStable(spans, func(i, j int) bool {
		if spans[i].run != spans[j].run {
			return spans[i].run < spans[j].run
		}
		return false // preserve emission order within a run
	})
	out := make([]any, 0, 2*len(spans))
	for _, sp := range spans {
		out = append(out, sp.run+"/"+sp.stage, time.Duration(sp.ms*float64(time.Millisecond)))
	}
	return out
}

// statusRecorder captures the response status and body size for the
// access log and metrics, forwarding Flush for the SSE route.
type statusRecorder struct {
	http.ResponseWriter
	status int
	bytes  int64
}

func (rec *statusRecorder) WriteHeader(code int) {
	if rec.status == 0 {
		rec.status = code
	}
	rec.ResponseWriter.WriteHeader(code)
}

func (rec *statusRecorder) Write(b []byte) (int, error) {
	if rec.status == 0 {
		rec.status = http.StatusOK
	}
	n, err := rec.ResponseWriter.Write(b)
	rec.bytes += int64(n)
	return n, err
}

func (rec *statusRecorder) Flush() {
	if f, ok := rec.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// statusClass buckets a status code for the RED counter ("2xx", …).
func statusClass(code int) string {
	switch {
	case code >= 500:
		return "5xx"
	case code >= 400:
		return "4xx"
	case code >= 300:
		return "3xx"
	default:
		return "2xx"
	}
}

// instrument wraps one route with the observability middleware; route
// is the metric/log label (the pattern path, so per-id URLs do not
// explode the label space).
func (s *Server) instrument(route string, h http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		flags := "01"
		var traceID string
		if tp, err := trace.ParseTraceparent(r.Header.Get("traceparent")); err == nil {
			traceID, flags = tp.TraceID, tp.Flags
		} else {
			traceID = trace.NewTraceID()
		}
		requestID := trace.NewSpanID()
		hdr := w.Header()
		hdr.Set("Traceparent", trace.Traceparent{TraceID: traceID, ParentID: requestID, Flags: flags}.String())
		hdr.Set("X-Request-Id", requestID)

		in := &instrRequest{traceID: traceID, requestID: requestID}
		if s.cfg.SlowRun > 0 {
			in.stages = &stageTimings{}
		}
		rec := &statusRecorder{ResponseWriter: w}
		r = r.WithContext(context.WithValue(r.Context(), ctxKey{}, in))

		spanTracer := trace.WithIDs(s.cfg.Trace, traceID, requestID)
		trace.Emit(spanTracer, &trace.Event{Kind: trace.KindRequestStart,
			Action: r.Method, Detail: route})

		pprof.Do(r.Context(), pprof.Labels("xfd_trace", traceID, "xfd_request", requestID),
			func(ctx context.Context) {
				h.ServeHTTP(rec, r.WithContext(ctx))
			})

		if rec.status == 0 { // handler wrote nothing: implicit 200
			rec.status = http.StatusOK
		}
		dur := time.Since(start)
		tenant := tenantOf(r)
		s.met.observeRequest(route, tenant, rec, dur)

		trace.Emit(spanTracer, &trace.Event{Kind: trace.KindRequestEnd,
			Action: r.Method, Detail: route, Status: rec.status,
			Bytes: rec.bytes, DurationMS: float64(dur) / float64(time.Millisecond)})

		attrs := []any{
			"method", r.Method,
			"route", route,
			"tenant", tenant,
			"status", rec.status,
			"bytes", rec.bytes,
			"duration", dur,
			"trace_id", traceID,
			"request_id", requestID,
		}
		if reason := in.getReason(); reason != "" {
			attrs = append(attrs, "reason", reason)
		}
		if tr := rec.Header().Get("X-Truncated"); tr != "" {
			attrs = append(attrs, "truncated", true)
		}
		s.cfg.Log.Info("request", attrs...)

		if s.cfg.SlowRun > 0 && dur >= s.cfg.SlowRun && in.stages != nil {
			slow := append(attrs, "slow_run_threshold", s.cfg.SlowRun)
			slow = append(slow, in.stages.report()...)
			s.cfg.Log.Warn("slow request", slow...)
		}
	})
}
