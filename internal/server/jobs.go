package server

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"net/http"
	"runtime/debug"
	"strconv"
	"sync"
	"time"

	"discoverxfd"
	"discoverxfd/internal/trace"
)

// Job states. A job is queued from submission until it wins an
// admission slot, running until its discovery finishes, and then done
// (result available), failed (error available), or cancelled.
const (
	stateQueued    = "queued"
	stateRunning   = "running"
	stateDone      = "done"
	stateFailed    = "failed"
	stateCancelled = "cancelled"
)

// job is one async discovery. The feed carries the run's trace events
// to SSE and polling observers; result holds the rendered response
// bytes — rendered once, served verbatim, so the async path is
// byte-identical to the sync one.
type job struct {
	id      string
	tenant  string
	created time.Time
	cancel  context.CancelFunc
	feed    *trace.Feed

	mu       sync.Mutex
	state    string    // guarded by mu
	result   []byte    // rendered WriteJSON output (state done); guarded by mu
	status   int       // HTTP status for result (state done/failed); guarded by mu
	errMsg   string    // state failed/cancelled; guarded by mu
	truncate bool      // Stats.Truncated of the finished run; guarded by mu
	finished time.Time // guarded by mu
}

// view is the job's status document (GET /v1/jobs/{id}).
type jobView struct {
	ID        string `json:"id"`
	State     string `json:"state"`
	Truncated bool   `json:"truncated,omitempty"`
	Error     string `json:"error,omitempty"`
	Created   string `json:"created"`
	Finished  string `json:"finished,omitempty"`
	Links     struct {
		Events string `json:"events"`
		Result string `json:"result"`
	} `json:"links"`
}

func (j *job) view() jobView {
	j.mu.Lock()
	defer j.mu.Unlock()
	v := jobView{
		ID:        j.id,
		State:     j.state,
		Truncated: j.truncate,
		Error:     j.errMsg,
		Created:   j.created.UTC().Format(time.RFC3339Nano),
	}
	if !j.finished.IsZero() {
		v.Finished = j.finished.UTC().Format(time.RFC3339Nano)
	}
	v.Links.Events = "/v1/jobs/" + j.id + "/events"
	v.Links.Result = "/v1/jobs/" + j.id + "/result"
	return v
}

func (j *job) setState(state string) {
	j.mu.Lock()
	j.state = state
	j.mu.Unlock()
}

// finish records the job's terminal state and closes its feed so
// observers drain and disconnect.
func (j *job) finish(state string, status int, result []byte, errMsg string, truncated bool) {
	j.mu.Lock()
	if j.state == stateDone || j.state == stateFailed || j.state == stateCancelled {
		j.mu.Unlock() // already terminal (e.g. cancel raced completion)
		return
	}
	j.state = state
	j.status = status
	j.result = result
	j.errMsg = errMsg
	j.truncate = truncated
	j.finished = time.Now()
	j.mu.Unlock()
	j.feed.Close()
}

// registry tracks jobs by id, evicting the oldest finished jobs
// beyond its cap, and owns the join point the drain path waits on.
type registry struct {
	mu    sync.Mutex
	byID  map[string]*job // guarded by mu
	order []string        // insertion order, for eviction; guarded by mu
	cap   int
	seq   int // guarded by mu
	//lint:governed drain join point for job goroutines: jobs outlive any single run, so they are joined per-server here rather than per-run by the engine's workerGroup; each spawn carries its own recover barrier.
	wg sync.WaitGroup
}

func newRegistry(cap int) *registry {
	return &registry{byID: make(map[string]*job), cap: cap}
}

// add registers a new job, evicting the oldest finished one if the
// registry is full. Returns nil if every slot holds a live job — the
// registry refuses to grow unboundedly, and refuses to forget live
// work.
func (r *registry) add(tenant string, feedCap int, cancel context.CancelFunc) *job {
	r.mu.Lock()
	defer r.mu.Unlock()
	if len(r.order) >= r.cap && !r.evictLocked() {
		return nil
	}
	r.seq++
	j := &job{
		id:      "job-" + strconv.Itoa(r.seq),
		tenant:  tenant,
		created: time.Now(),
		cancel:  cancel,
		feed:    trace.NewFeed(feedCap),
		state:   stateQueued,
	}
	r.byID[j.id] = j
	r.order = append(r.order, j.id)
	return j
}

// evictLocked drops the oldest terminal job; false if none is.
// Caller must hold r.mu.
func (r *registry) evictLocked() bool {
	for i, id := range r.order {
		j := r.byID[id]
		j.mu.Lock()
		terminal := j.state == stateDone || j.state == stateFailed || j.state == stateCancelled
		j.mu.Unlock()
		if terminal {
			delete(r.byID, id)
			r.order = append(r.order[:i], r.order[i+1:]...)
			return true
		}
	}
	return false
}

func (r *registry) get(id string) *job {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.byID[id]
}

func (r *registry) count() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.byID)
}

// wait joins every job goroutine (drain).
func (r *registry) wait() { r.wg.Wait() }

// handleSubmitJob is POST /v1/jobs: decode synchronously (the client
// learns about a bad request immediately), then run discovery on a
// job goroutine that queues for admission like any sync request.
// Responds 202 with the job's status document.
func (s *Server) handleSubmitJob(w http.ResponseWriter, r *http.Request) {
	req, err := s.decodeParams(r)
	if err != nil {
		s.writeError(w, r, err)
		return
	}
	// The job outlives the HTTP request: it runs under the server's
	// lifecycle context, bounded by the request's own timeout.
	ctx, cancel := context.WithCancel(s.base)
	if req.timeout > 0 {
		ctx, cancel = context.WithTimeout(s.base, req.timeout)
	}
	s.fault("decode", r)
	// The body is read under the *request* context (the upload needs
	// the connection) but parse CPU is bounded by the job ctx too;
	// use the request context here so a client disconnect mid-upload
	// fails the submission, not a zombie job.
	if err := s.decodeBody(r.Context(), w, r, req); err != nil {
		cancel()
		s.writeError(w, r, err)
		return
	}

	j := s.jobs.add(req.tenant, s.cfg.FeedCapacity, cancel)
	if j == nil {
		cancel()
		s.stats.rejectedOverload.Add(1)
		noteReason(r, "jobs_full")
		s.observeShed(req.tenant, "jobs_full")
		w.Header().Set("Retry-After", retryAfterValue(s.cfg.RetryAfter))
		writeJSONStatus(w, http.StatusTooManyRequests,
			map[string]string{"error": "job registry full; retry later"})
		return
	}
	req.opts.Trace = trace.Multi(s.requestTracer(r), j.feed)

	s.jobs.wg.Add(1)
	//lint:governed job goroutines are joined by registry.wait on the drain path, and runJob's recover barrier turns their panics into failed jobs.
	go s.runJob(ctx, cancel, j, req)

	w.Header().Set("Location", "/v1/jobs/"+j.id)
	writeJSONStatus(w, http.StatusAccepted, j.view())
}

// runJob executes one async discovery end to end: admission, run,
// render, terminal state. Its recover barrier is the async
// counterpart of the HTTP recovery middleware — a panicking job
// fails that job, never the process.
func (s *Server) runJob(ctx context.Context, cancel context.CancelFunc, j *job, req *request) {
	defer s.jobs.wg.Done()
	defer cancel()
	defer func() {
		if p := recover(); p != nil {
			s.stats.panics.Add(1)
			s.cfg.Log.Error("job panic", "job", j.id, "panic", fmt.Sprint(p))
			s.cfg.Log.Debug("job panic stack", "stack", string(debug.Stack()))
			j.finish(stateFailed, http.StatusInternalServerError, nil, "internal server error", false)
		}
	}()

	release, err := s.adm.Acquire(ctx, req.tenant)
	if err != nil {
		s.jobFailed(j, err)
		return
	}
	defer release()

	s.stats.accepted.Add(1)
	req.fire("admitted")
	j.setState(stateRunning)
	eng := discoverxfd.NewEngine(&req.opts)
	defer s.met.retire(eng) // one-shot engine: fold its counters on the way out
	res, err := eng.Discover(ctx, req.doc, req.schema)
	if err != nil {
		s.stats.failed.Add(1)
		s.jobFailed(j, err)
		return
	}
	s.finishRun(res)
	if status, ok := s.degradeStatus(res, req.degrade); !ok {
		j.finish(stateFailed, status, nil,
			"deadline exceeded: "+res.Stats.TruncatedReason, res.Stats.Truncated)
		return
	}
	var buf bytes.Buffer
	if err := discoverxfd.WriteJSON(&buf, res); err != nil {
		s.jobFailed(j, err)
		return
	}
	j.finish(stateDone, http.StatusOK, buf.Bytes(), "", res.Stats.Truncated)
}

// jobFailed records a job's error with the same status mapping the
// sync path uses; a run aborted by cancellation (DELETE, or the
// drain's grace period expiring) lands in the cancelled state.
func (s *Server) jobFailed(j *job, err error) {
	state := stateFailed
	if errors.Is(err, context.Canceled) {
		state = stateCancelled
	}
	j.finish(state, statusOf(err), nil, err.Error(), false)
}
