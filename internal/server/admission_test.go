package server

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"discoverxfd"
	"discoverxfd/internal/faultinject"
)

func mustAcquire(t *testing.T, a *admission, tenant string) func() {
	t.Helper()
	release, err := a.Acquire(context.Background(), tenant)
	if err != nil {
		t.Fatalf("acquire(%q): %v", tenant, err)
	}
	return release
}

// TestAdmissionBounds pins the three rejection modes and FIFO handoff.
func TestAdmissionBounds(t *testing.T) {
	a := newAdmission(1, 1, 0)
	r1 := mustAcquire(t, a, "a")

	// One waiter fits in the queue.
	got := make(chan error, 1)
	ready := make(chan struct{})
	//lint:governed test goroutine, joined via the got channel below.
	go func() {
		close(ready)
		release, err := a.Acquire(context.Background(), "b")
		if err == nil {
			defer release()
		}
		got <- err
	}()
	<-ready
	// Wait for the waiter to actually enqueue.
	for i := 0; ; i++ {
		if _, queued := a.Load(); queued == 1 {
			break
		}
		if i > 1000 {
			t.Fatal("waiter never queued")
		}
		time.Sleep(time.Millisecond)
	}

	// Queue full: the next request is shed synchronously.
	if _, err := a.Acquire(context.Background(), "c"); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("err = %v, want ErrQueueFull", err)
	}

	// Release hands the slot to the queued waiter.
	r1()
	if err := <-got; err != nil {
		t.Fatalf("queued waiter: %v", err)
	}
}

// TestAdmissionTenantQuota pins the per-tenant cap: a tenant at quota
// is shed even with capacity free, and its count is released with its
// slots.
func TestAdmissionTenantQuota(t *testing.T) {
	a := newAdmission(4, 4, 1)
	r1 := mustAcquire(t, a, "hog")
	if _, err := a.Acquire(context.Background(), "hog"); !errors.Is(err, ErrTenantOverQuota) {
		t.Fatalf("err = %v, want ErrTenantOverQuota", err)
	}
	r2 := mustAcquire(t, a, "polite") // capacity remains for others
	r1()
	r3 := mustAcquire(t, a, "hog") // quota freed with the slot
	r2()
	r3()
}

// TestAdmissionCancelWhileQueued pins cancellable waiting: a waiter
// that gives up leaves no residue (its tenant count and queue entry
// are reclaimed).
func TestAdmissionCancelWhileQueued(t *testing.T) {
	a := newAdmission(1, 4, 1)
	r1 := mustAcquire(t, a, "a")

	ctx, cancel := context.WithCancel(context.Background())
	got := make(chan error, 1)
	//lint:governed test goroutine, joined via the got channel below.
	go func() {
		_, err := a.Acquire(ctx, "b")
		got <- err
	}()
	for i := 0; ; i++ {
		if _, queued := a.Load(); queued == 1 {
			break
		}
		if i > 1000 {
			t.Fatal("waiter never queued")
		}
		time.Sleep(time.Millisecond)
	}
	cancel()
	if err := <-got; !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if _, queued := a.Load(); queued != 0 {
		t.Fatal("cancelled waiter left a queue entry")
	}
	// Tenant b's quota count was reclaimed with the ticket.
	a.mu.Lock()
	residue := a.tenants["b"]
	a.mu.Unlock()
	if residue != 0 {
		t.Errorf("cancelled waiter left tenant count %d", residue)
	}
	r1()
}

// TestAdmissionDrain pins the drain contract: queued waiters fail with
// ErrDraining, new arrivals fail fast, and Idle closes when the last
// running slot releases.
func TestAdmissionDrain(t *testing.T) {
	a := newAdmission(1, 4, 0)
	r1 := mustAcquire(t, a, "a")

	got := make(chan error, 1)
	//lint:governed test goroutine, joined via the got channel below.
	go func() {
		_, err := a.Acquire(context.Background(), "b")
		got <- err
	}()
	for i := 0; ; i++ {
		if _, queued := a.Load(); queued == 1 {
			break
		}
		if i > 1000 {
			t.Fatal("waiter never queued")
		}
		time.Sleep(time.Millisecond)
	}

	a.Drain()
	if err := <-got; !errors.Is(err, ErrDraining) {
		t.Fatalf("queued waiter err = %v, want ErrDraining", err)
	}
	if _, err := a.Acquire(context.Background(), "c"); !errors.Is(err, ErrDraining) {
		t.Fatalf("new acquire err = %v, want ErrDraining", err)
	}
	select {
	case <-a.Idle():
		t.Fatal("idle closed while a slot is still held")
	default:
	}
	r1()
	select {
	case <-a.Idle():
	case <-time.After(time.Second):
		t.Fatal("idle never closed after the last release")
	}
	a.Drain() // idempotent
}

// TestAdmissionConcurrent hammers the controller with -race: many
// goroutines acquiring, holding briefly, and releasing; the invariant
// running <= slots and queued <= depth must hold throughout, and
// everything must terminate with the controller empty.
func TestAdmissionConcurrent(t *testing.T) {
	defer faultinject.CheckGoroutines(t)()
	const slots, depth = 3, 5
	a := newAdmission(slots, depth, 2)
	var wg sync.WaitGroup
	for i := 0; i < 24; i++ {
		wg.Add(1)
		//lint:governed test goroutines, joined by the WaitGroup below.
		go func(i int) {
			defer wg.Done()
			tenant := string(rune('a' + i%6))
			for j := 0; j < 20; j++ {
				release, err := a.Acquire(context.Background(), tenant)
				if err != nil {
					continue // shed: fine under load
				}
				running, queued := a.Load()
				if running > slots || queued > depth {
					t.Errorf("bounds violated: running=%d queued=%d", running, queued)
				}
				release()
				release() // double release must be harmless
			}
		}(i)
	}
	wg.Wait()
	if running, queued := a.Load(); running != 0 || queued != 0 {
		t.Errorf("controller not empty after load: running=%d queued=%d", running, queued)
	}
}

// TestStatusOf pins the error → HTTP status mapping.
func TestStatusOf(t *testing.T) {
	cases := []struct {
		err  error
		want int
	}{
		{ErrQueueFull, 429},
		{ErrTenantOverQuota, 429},
		{ErrDraining, 503},
		{discoverxfd.ErrBadLimits, 400},
		{context.DeadlineExceeded, 504},
		{context.Canceled, statusClientClosedRequest},
		{badRequest("x"), 400},
		{&httpError{status: 413, msg: "big"}, 413},
		{errors.New("mystery"), 500},
	}
	for _, c := range cases {
		if got := statusOf(c.err); got != c.want {
			t.Errorf("statusOf(%v) = %d, want %d", c.err, got, c.want)
		}
	}
}
