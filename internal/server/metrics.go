package server

// metrics.go is the server's Prometheus surface (GET /metrics): RED
// metrics per route × tenant × status class recorded by the
// instrumentation middleware, admission and registry gauges read at
// scrape time, engine counters bridged from Engine.Metrics, and Go
// runtime stats. All of it renders through internal/telemetry's text
// exposition writer, which CI's smoke job re-validates with the
// package's own checker.
//
// Engine bridging: the server creates short-lived engines (one per
// sync request or job) and long-lived ones (one per resident
// document). Engine.Metrics is cumulative per engine, so the bridge
// keeps one folded total of every retired engine's final snapshot and
// adds the live snapshots of resident documents at scrape time —
// monotonic, because a document's counters only grow until deletion
// folds their final value into the retired total.

import (
	"net/http"
	"runtime"
	"sort"
	"sync"
	"time"

	"discoverxfd"
	"discoverxfd/internal/telemetry"
)

// serverMetrics owns the registry and the hot-path series handles.
type serverMetrics struct {
	reg *telemetry.Registry

	requests  *telemetry.CounterVec   // xfd_http_requests_total{route,tenant,code}
	duration  *telemetry.HistogramVec // xfd_http_request_duration_seconds{route}
	respBytes *telemetry.CounterVec   // xfd_http_response_bytes{route}
	shed      *telemetry.CounterVec   // xfd_requests_shed_total{reason,tenant}

	tenantRunning *telemetry.GaugeVec // xfd_tenant_running{tenant}, refreshed per scrape
	tenantQueued  *telemetry.GaugeVec // xfd_tenant_queued{tenant}

	mu          sync.Mutex
	retired     discoverxfd.Metrics // folded finals of discarded engines; guarded by mu
	mem         runtime.MemStats    // last scrape's runtime stats; guarded by mu
	seenTenants map[string]bool     // tenants ever shown in per-tenant gauges; guarded by mu
}

// newServerMetrics builds the registry for one Server. Gauges close
// over the server so every scrape reads live state.
func newServerMetrics(s *Server) *serverMetrics {
	r := telemetry.NewRegistry()
	m := &serverMetrics{
		reg:         r,
		seenTenants: make(map[string]bool),
	}
	m.requests = r.NewCounter("xfd_http_requests_total",
		"HTTP requests served, by route, tenant, and status class.",
		"route", "tenant", "code")
	m.duration = r.NewHistogram("xfd_http_request_duration_seconds",
		"HTTP request latency, by route.", telemetry.DurationBuckets, "route")
	m.respBytes = r.NewCounter("xfd_http_response_bytes",
		"Response body bytes written, by route.", "route")
	m.shed = r.NewCounter("xfd_requests_shed_total",
		"Requests shed by admission control or drain, by reason and tenant.",
		"reason", "tenant")

	r.NewGaugeFunc("xfd_queue_depth", "Requests waiting in the admission queue.",
		func() float64 { _, q := s.adm.Load(); return float64(q) })
	r.NewGaugeFunc("xfd_running_runs", "Admission slots currently held by running work.",
		func() float64 { rn, _ := s.adm.Load(); return float64(rn) })
	r.NewGaugeFunc("xfd_jobs_resident", "Jobs held by the job registry.",
		func() float64 { return float64(s.jobs.count()) })
	r.NewGaugeFunc("xfd_documents_resident", "Resident documents held by the store.",
		func() float64 { return float64(s.docs.count()) })
	r.NewGaugeFunc("xfd_draining", "1 while the server is draining, else 0.",
		func() float64 {
			if s.draining.Load() {
				return 1
			}
			return 0
		})
	m.tenantRunning = r.NewGauge("xfd_tenant_running",
		"Admission slots held per tenant.", "tenant")
	m.tenantQueued = r.NewGauge("xfd_tenant_queued",
		"Queued admissions per tenant.", "tenant")

	// Engine counters: folded retired engines + live resident documents.
	for _, c := range []struct {
		name, help string
		read       func(em *discoverxfd.Metrics) int64
	}{
		{"xfd_engine_runs_started_total", "Discovery runs entered.",
			func(em *discoverxfd.Metrics) int64 { return em.RunsStarted }},
		{"xfd_engine_runs_finished_total", "Discovery runs that produced a Result.",
			func(em *discoverxfd.Metrics) int64 { return em.RunsFinished }},
		{"xfd_engine_runs_truncated_total", "Finished runs whose Result was partial.",
			func(em *discoverxfd.Metrics) int64 { return em.RunsTruncated }},
		{"xfd_engine_runs_failed_total", "Discovery runs that returned an error.",
			func(em *discoverxfd.Metrics) int64 { return em.RunsFailed }},
		{"xfd_engine_warm_seeded_total", "Runs seeded from a warm partition layer.",
			func(em *discoverxfd.Metrics) int64 { return em.WarmSeeded }},
		{"xfd_engine_updates_applied_total", "Accepted document update batches.",
			func(em *discoverxfd.Metrics) int64 { return em.UpdatesApplied }},
		{"xfd_engine_update_ops_total", "Update operations inside accepted batches.",
			func(em *discoverxfd.Metrics) int64 { return em.UpdateOps }},
		{"xfd_engine_updates_failed_total", "Rejected document update batches.",
			func(em *discoverxfd.Metrics) int64 { return em.UpdatesFailed }},
		{"xfd_engine_partitions_patched_total", "Warm partitions spliced in place after updates.",
			func(em *discoverxfd.Metrics) int64 { return em.PartitionsPatched }},
		{"xfd_engine_partitions_kept_total", "Warm partitions shared untouched across updates.",
			func(em *discoverxfd.Metrics) int64 { return em.PartitionsKept }},
		{"xfd_engine_partitions_dropped_total", "Warm partitions discarded as stale after updates.",
			func(em *discoverxfd.Metrics) int64 { return em.PartitionsDropped }},
	} {
		read := c.read
		r.NewCounterFunc(c.name, c.help, func() float64 {
			em := s.engineTotals()
			return float64(read(&em))
		})
	}
	r.NewGaugeFunc("xfd_engine_cache_high_water_bytes",
		"Largest partition-cache peak any single run reached.",
		func() float64 { return float64(s.engineTotals().CacheHighWaterBytes) })

	// Go runtime, from the MemStats snapshot refresh() takes per scrape.
	r.NewGaugeFunc("go_goroutines", "Live goroutines.",
		func() float64 { return float64(runtime.NumGoroutine()) })
	r.NewGaugeFunc("go_heap_alloc_bytes", "Bytes of allocated heap objects.",
		func() float64 { return float64(m.memStats().HeapAlloc) })
	r.NewCounterFunc("go_gc_cycles_total", "Completed GC cycles.",
		func() float64 { return float64(m.memStats().NumGC) })
	r.NewCounterFunc("go_gc_pause_seconds_total", "Cumulative GC stop-the-world pause time.",
		func() float64 { return float64(m.memStats().PauseTotalNs) / float64(time.Second) })
	return m
}

// memStats returns the snapshot refresh() took for this scrape.
func (m *serverMetrics) memStats() runtime.MemStats {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.mem
}

// refresh updates scrape-time state that cannot be a plain gauge
// func: one MemStats read shared by the runtime series, and the
// per-tenant admission gauges (tenants that disappeared are pinned to
// zero so their series do not freeze at a stale value).
func (m *serverMetrics) refresh(s *Server) {
	var mem runtime.MemStats
	runtime.ReadMemStats(&mem)

	load := s.adm.PerTenant()
	m.mu.Lock()
	m.mem = mem
	for tenant := range load {
		m.seenTenants[tenant] = true
	}
	tenants := make([]string, 0, len(m.seenTenants))
	for tenant := range m.seenTenants {
		tenants = append(tenants, tenant)
	}
	m.mu.Unlock()
	sort.Strings(tenants)
	for _, tenant := range tenants {
		m.tenantRunning.With(tenant).Set(float64(load[tenant].Running))
		m.tenantQueued.With(tenant).Set(float64(load[tenant].Queued))
	}
}

// observeRequest folds one finished request into the RED series.
func (m *serverMetrics) observeRequest(route, tenant string, rec *statusRecorder, dur time.Duration) {
	m.requests.With(route, tenant, statusClass(rec.status)).Inc()
	m.duration.With(route).Observe(dur.Seconds())
	m.respBytes.With(route).Add(float64(rec.bytes))
}

// observeShed counts one shed/declined request in both the Prometheus
// counter and the per-tenant stats map.
func (s *Server) observeShed(tenant, reason string) {
	s.met.shed.With(reason, tenant).Inc()
	s.stats.shedTenant(tenant, reason)
}

// retire folds a discarded engine's final counters into the bridged
// totals. Call it exactly once per engine, when the engine goes out of
// service (after a one-shot run, or at document deletion).
func (m *serverMetrics) retire(eng *discoverxfd.Engine) {
	em := eng.Metrics()
	m.mu.Lock()
	addMetrics(&m.retired, &em)
	m.mu.Unlock()
}

// engineTotals sums the retired engines' folded counters with the live
// resident-document engines' current snapshots.
func (s *Server) engineTotals() discoverxfd.Metrics {
	s.met.mu.Lock()
	tot := s.met.retired
	s.met.mu.Unlock()
	for _, d := range s.docs.list() {
		em := d.eng.Metrics()
		addMetrics(&tot, &em)
	}
	return tot
}

// addMetrics folds src's counters into dst (high-water marks take the
// max; the Stats accumulator is not bridged).
func addMetrics(dst, src *discoverxfd.Metrics) {
	dst.RunsStarted += src.RunsStarted
	dst.RunsFinished += src.RunsFinished
	dst.RunsTruncated += src.RunsTruncated
	dst.RunsFailed += src.RunsFailed
	dst.WarmSeeded += src.WarmSeeded
	dst.Evaluations += src.Evaluations
	dst.UpdatesApplied += src.UpdatesApplied
	dst.UpdateOps += src.UpdateOps
	dst.UpdatesFailed += src.UpdatesFailed
	dst.PartitionsPatched += src.PartitionsPatched
	dst.PartitionsKept += src.PartitionsKept
	dst.PartitionsDropped += src.PartitionsDropped
	if src.CacheHighWaterBytes > dst.CacheHighWaterBytes {
		dst.CacheHighWaterBytes = src.CacheHighWaterBytes
	}
}

// handleMetrics is GET /metrics.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	s.met.refresh(s)
	s.met.reg.Handler().ServeHTTP(w, r)
}
