package server

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"time"

	"discoverxfd"
)

// request is one decoded discovery request: the parsed document and
// schema plus the per-request options derived from the server's base
// configuration and the request's own parameters.
type request struct {
	doc    *discoverxfd.Document
	schema *discoverxfd.Schema // nil = infer from the document
	opts   discoverxfd.Options
	// degrade is true for degrade=truncate: budget exhaustion returns
	// the partial Result with 200 instead of 504.
	degrade bool
	tenant  string
	timeout time.Duration
	// fault fires the server's named fault points for this request
	// (chaos builds only; nil otherwise). decodeParams binds it to a
	// copy of the request headers so async job goroutines can fire
	// points after the HTTP exchange has ended.
	fault func(point string)
}

// fire triggers the named per-request fault point; free when no fault
// hook is configured.
func (r *request) fire(point string) {
	if r.fault != nil {
		r.fault(point)
	}
}

// envelope is the JSON request body form: the document as a string
// plus an optional schema in the nested-relational text notation and
// an optional format naming how the document string should be parsed
// ("xml" or "json"; default xml, the historical envelope payload).
// Raw document bodies skip the envelope entirely.
type envelope struct {
	Document string `json:"document"`
	Schema   string `json:"schema,omitempty"`
	Format   string `json:"format,omitempty"`
}

// httpError is an error with a fixed HTTP status, produced by the
// decode layer where the classification is known at the error site.
type httpError struct {
	status int
	msg    string
}

func (e *httpError) Error() string { return e.msg }

func badRequest(format string, args ...any) *httpError {
	return &httpError{status: http.StatusBadRequest, msg: fmt.Sprintf(format, args...)}
}

// decodeParams derives a request's options from its query parameters
// and headers, before the body is touched: the degrade mode, the
// effective timeout, the limits (which may only tighten the server's
// base), and — on chaos builds — the engine-stage fault hook. The
// caller uses the returned timeout to build the request context that
// decodeBody and the run itself then honor.
func (s *Server) decodeParams(r *http.Request) (*request, error) {
	req := &request{
		opts:   s.cfg.Options,
		tenant: tenantOf(r),
	}
	req.opts.Trace = nil // per-request tracers are attached by the caller

	q := r.URL.Query()
	switch q.Get("degrade") {
	case "", "error":
	case "truncate":
		req.degrade = true
	default:
		return nil, badRequest("unknown degrade mode %q (use \"truncate\" or \"error\")", q.Get("degrade"))
	}

	var err error
	if req.timeout, err = timeoutParam(q.Get("timeout"), s.cfg.DefaultTimeout, s.cfg.MaxTimeout); err != nil {
		return nil, err
	}
	if req.opts.Limits, err = limitsParams(q, s.cfg.Limits); err != nil {
		return nil, err
	}
	if err := req.opts.Limits.Validate(); err != nil {
		return nil, &httpError{status: http.StatusBadRequest, msg: err.Error()}
	}

	// Fault injection (chaos builds only: the headers are inert unless
	// the server was constructed with a fault hook).
	if s.cfg.Fault != nil {
		hdr := r.Header.Clone()
		req.fault = func(point string) { s.cfg.Fault(point, hdr) }
		if substr := r.Header.Get("X-Fault-Relation"); substr != "" {
			req.opts.RelationHook = func(pivot discoverxfd.Path) {
				if strings.Contains(string(pivot), substr) {
					panic(fmt.Sprintf("server: injected fault at relation %s", pivot))
				}
			}
		}
	}
	return req, nil
}

// decodeBody reads and parses the document (and optional schema) into
// req. A body with Content-Type application/json is either an
// envelope — a top-level object whose "document" member is a string,
// parsed per its "format" member — or, failing that shape, a raw JSON
// document (schema inferred); any other content type is a raw
// document in the server's default format. Parsing runs under ctx —
// the request context bounded by the effective timeout — so a
// disconnected or out-of-budget client aborts the parse, and under
// http.MaxBytesReader, so an oversized body fails with 413. A
// deadline that fires during parse is an error even in
// degrade=truncate mode: no partial result exists yet.
func (s *Server) decodeBody(ctx context.Context, w http.ResponseWriter, r *http.Request, req *request) error {
	body := http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)
	ct := r.Header.Get("Content-Type")
	var err error
	if ct == "application/json" || strings.HasPrefix(ct, "application/json;") {
		data, rerr := io.ReadAll(body)
		if rerr != nil {
			return decodeErr("request body", rerr)
		}
		if !isEnvelope(data) {
			req.doc, err = discoverxfd.LoadJSONContext(ctx, bytes.NewReader(data), &req.opts)
			if err != nil {
				return decodeErr("document", err)
			}
			return nil
		}
		var env envelope
		dec := json.NewDecoder(bytes.NewReader(data))
		dec.DisallowUnknownFields()
		if err := dec.Decode(&env); err != nil {
			return decodeErr("request envelope", err)
		}
		if env.Document == "" {
			return badRequest("request envelope has no document")
		}
		if env.Schema != "" {
			sch, err := discoverxfd.ParseSchema(env.Schema)
			if err != nil {
				return decodeErr("schema", err)
			}
			req.schema = sch
		}
		req.doc, err = s.loadAs(ctx, env.Format, strings.NewReader(env.Document), &req.opts)
	} else {
		req.doc, err = s.loadAs(ctx, "", body, &req.opts)
	}
	if err != nil {
		return decodeErr("document", err)
	}
	return nil
}

// isEnvelope reports whether a JSON body has the envelope shape: a
// top-level object whose "document" member is a string. Everything
// else — including objects with a complex "document" member — is a
// raw JSON document.
func isEnvelope(data []byte) bool {
	var probe struct {
		Document json.RawMessage `json:"document"`
	}
	if json.Unmarshal(data, &probe) != nil {
		return false
	}
	d := bytes.TrimSpace(probe.Document)
	return len(d) > 0 && d[0] == '"'
}

// loadAs parses one document in the named format; "" falls back to
// the server's default.
func (s *Server) loadAs(ctx context.Context, format string, r io.Reader, opts *discoverxfd.Options) (*discoverxfd.Document, error) {
	if format == "" {
		format = s.cfg.DefaultFormat
	}
	switch format {
	case "xml":
		return discoverxfd.LoadDocumentContext(ctx, r, opts)
	case "json":
		return discoverxfd.LoadJSONContext(ctx, r, opts)
	default:
		return nil, badRequest("unknown document format %q (use \"xml\" or \"json\")", format)
	}
}

// decodeErr classifies a body/parse failure: client-caused problems
// are 400s (413 for an oversized body), everything else keeps its
// error for the generic mapping in writeError.
func decodeErr(what string, err error) error {
	var httpErr *httpError
	if errors.As(err, &httpErr) {
		return httpErr // already classified at the error site
	}
	var tooLarge *http.MaxBytesError
	if errors.As(err, &tooLarge) {
		return &httpError{status: http.StatusRequestEntityTooLarge,
			msg: fmt.Sprintf("%s exceeds the %d-byte body limit", what, tooLarge.Limit)}
	}
	if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
		return err
	}
	return &httpError{status: http.StatusBadRequest, msg: fmt.Sprintf("bad %s: %v", what, err)}
}

// tenantOf returns the request's tenant identity (the X-Tenant
// header; absent means the anonymous tenant, which shares one quota).
func tenantOf(r *http.Request) string { return r.Header.Get("X-Tenant") }

// timeoutParam resolves the per-request wall-clock budget: the
// ?timeout= duration if given, else the server default, never more
// than the server maximum.
func timeoutParam(v string, def, max time.Duration) (time.Duration, error) {
	d := def
	if v != "" {
		var err error
		if d, err = time.ParseDuration(v); err != nil {
			return 0, badRequest("bad timeout %q: %v", v, err)
		}
		if d <= 0 {
			return 0, badRequest("bad timeout %q: must be positive", v)
		}
	}
	if max > 0 && (d == 0 || d > max) {
		d = max
	}
	return d, nil
}

// limitsParams tightens the server's base limits with the request's
// query parameters. A request may only narrow the budget: when the
// server bounds a field, a larger (or unlimited) request value is
// clamped to the server's — limits are a protection, not a
// negotiation.
func limitsParams(q map[string][]string, base discoverxfd.Limits) (discoverxfd.Limits, error) {
	l := base
	for _, p := range []struct {
		name   string
		server int
		dst    *int
	}{
		{"max_tuples", base.MaxTuples, &l.MaxTuples},
		{"max_lattice_level", base.MaxLatticeLevel, &l.MaxLatticeLevel},
		{"max_nodes", base.MaxNodes, &l.MaxNodes},
		{"max_depth", base.MaxDepth, &l.MaxDepth},
	} {
		vs := q[p.name]
		if len(vs) == 0 {
			continue
		}
		n, err := strconv.Atoi(vs[0])
		if err != nil {
			return l, badRequest("bad %s %q: %v", p.name, vs[0], err)
		}
		if n < 0 {
			return l, badRequest("bad %s %d: must be non-negative", p.name, n)
		}
		// 0 asks for "unlimited", which only an unbounded server grants.
		if p.server > 0 && (n == 0 || n > p.server) {
			n = p.server
		}
		*p.dst = n
	}
	return l, nil
}
