package server

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"reflect"
	"strings"
	"testing"

	"discoverxfd"
)

// decodeDoc decodes a docInfo response body.
func decodeDoc(t *testing.T, body string) docInfo {
	t.Helper()
	var d docInfo
	if err := json.Unmarshal([]byte(body), &d); err != nil {
		t.Fatalf("decoding document info: %v\nbody: %s", err, body)
	}
	return d
}

// semantic decodes a Result JSON body and strips the stats block:
// warm (incremental) and cold runs legitimately differ in cache
// counters, everything else must match.
func semantic(t *testing.T, body []byte) map[string]any {
	t.Helper()
	var m map[string]any
	if err := json.Unmarshal(body, &m); err != nil {
		t.Fatalf("decoding result: %v", err)
	}
	delete(m, "stats")
	return m
}

// TestDocumentLifecycle drives the resident-document surface end to
// end: create, discover, PATCH updates (with the returned insert key
// addressing the new tuple), incremental re-discovery matching a
// library-level replay of the same script, and delete.
func TestDocumentLifecycle(t *testing.T) {
	s := newTestServer(t, Config{})
	xml := libraryXML(12)

	rec := do(s, "POST", "/v1/documents", nil, strings.NewReader(xml))
	if rec.Code != http.StatusCreated {
		t.Fatalf("create: %d %s", rec.Code, rec.Body)
	}
	info := decodeDoc(t, rec.Body.String())
	if info.ID == "" || !info.Updatable || info.Tuples == 0 {
		t.Fatalf("create returned %+v", info)
	}
	base := "/v1/documents/" + info.ID

	if rec = do(s, "POST", base+"/discover", nil, nil); rec.Code != http.StatusOK {
		t.Fatalf("warm-up discover: %d %s", rec.Code, rec.Body)
	}

	script := `[
		{"op": "insert", "class": "/library/shelf", "values": {"./room": "r99"}},
		{"op": "set", "class": "/library/shelf", "key": 2, "attr": "./room", "value": "r42"}
	]`
	rec = do(s, "PATCH", base, nil, strings.NewReader(script))
	if rec.Code != http.StatusOK {
		t.Fatalf("patch: %d %s", rec.Code, rec.Body)
	}
	var upd updateResult
	if err := json.Unmarshal(rec.Body.Bytes(), &upd); err != nil {
		t.Fatal(err)
	}
	if upd.Ops != 2 || len(upd.Keys) != 2 || len(upd.Relations) == 0 {
		t.Fatalf("patch result %+v", upd)
	}

	// The insert's returned key addresses the new tuple in a later
	// script.
	second := fmt.Sprintf(`[{"op": "delete", "class": "/library/shelf", "key": %d}]`, upd.Keys[0])
	if rec = do(s, "PATCH", base, nil, strings.NewReader(second)); rec.Code != http.StatusOK {
		t.Fatalf("second patch: %d %s", rec.Code, rec.Body)
	}

	rec = do(s, "POST", base+"/discover", nil, nil)
	if rec.Code != http.StatusOK {
		t.Fatalf("incremental discover: %d %s", rec.Code, rec.Body)
	}
	served := semantic(t, rec.Body.Bytes())

	// Replay the same scripts through the library against a fresh
	// build of the same document: the served incremental result must
	// match semantically.
	ctx := context.Background()
	var opts discoverxfd.Options
	eng := discoverxfd.NewEngine(&opts)
	doc, err := eng.LoadDocument(ctx, strings.NewReader(xml))
	if err != nil {
		t.Fatal(err)
	}
	h, err := eng.BuildHierarchy(ctx, doc, nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, sc := range []string{script, second} {
		ops, err := discoverxfd.ParseUpdates(strings.NewReader(sc))
		if err != nil {
			t.Fatal(err)
		}
		if _, err := eng.ApplyUpdate(h, ops); err != nil {
			t.Fatalf("replaying script: %v", err)
		}
	}
	res, err := eng.DiscoverHierarchy(ctx, h)
	if err != nil {
		t.Fatal(err)
	}
	var buf strings.Builder
	if err := discoverxfd.WriteJSON(&buf, res); err != nil {
		t.Fatal(err)
	}
	want := semantic(t, []byte(buf.String()))
	if !reflect.DeepEqual(served, want) {
		t.Fatalf("served incremental result differs from library replay\nserved: %v\nwant:   %v", served, want)
	}

	info = decodeDoc(t, do(s, "GET", base, nil, nil).Body.String())
	if info.Updates != 2 || info.UpdateOps != 3 || info.Runs != 2 {
		t.Fatalf("document counters %+v, want updates=2 ops=3 runs=2", info)
	}
	st := s.Stats()
	if st.DocUpdates != 2 || st.DocUpdateOps != 3 || st.Documents != 1 {
		t.Fatalf("server stats %+v", st)
	}

	if rec = do(s, "DELETE", base, nil, nil); rec.Code != http.StatusOK {
		t.Fatalf("delete: %d %s", rec.Code, rec.Body)
	}
	if rec = do(s, "GET", base, nil, nil); rec.Code != http.StatusNotFound {
		t.Fatalf("get after delete: %d", rec.Code)
	}
	if st := s.Stats(); st.Documents != 0 || st.DocumentsDeleted != 1 {
		t.Fatalf("stats after delete %+v", st)
	}
}

// TestDocumentUpdateErrors pins the PATCH error contract: 404 for
// unknown documents, 400 for malformed scripts, 422 for scripts the
// hierarchy rejects — and a rejected script leaves the document
// serving discoveries.
func TestDocumentUpdateErrors(t *testing.T) {
	s := newTestServer(t, Config{})
	rec := do(s, "POST", "/v1/documents", nil, strings.NewReader(libraryXML(4)))
	if rec.Code != http.StatusCreated {
		t.Fatalf("create: %d %s", rec.Code, rec.Body)
	}
	base := "/v1/documents/" + decodeDoc(t, rec.Body.String()).ID

	cases := []struct {
		name   string
		target string
		body   string
		want   int
	}{
		{"unknown document", "/v1/documents/doc-999999", `[{"op":"delete","class":"/library/shelf","key":1}]`, http.StatusNotFound},
		{"malformed script", base, `not json`, http.StatusBadRequest},
		{"empty script", base, `[]`, http.StatusBadRequest},
		{"unknown key", base, `[{"op":"delete","class":"/library/shelf","key":999999}]`, http.StatusUnprocessableEntity},
		{"unknown class", base, `[{"op":"delete","class":"/library/nope","key":1}]`, http.StatusUnprocessableEntity},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			rec := do(s, "PATCH", tc.target, nil, strings.NewReader(tc.body))
			if rec.Code != tc.want {
				t.Fatalf("%s: %d %s, want %d", tc.name, rec.Code, rec.Body, tc.want)
			}
		})
	}
	if st := s.Stats(); st.DocUpdatesReject != 2 {
		t.Fatalf("rejected counter %d, want 2", st.DocUpdatesReject)
	}
	if rec := do(s, "POST", base+"/discover", nil, nil); rec.Code != http.StatusOK {
		t.Fatalf("discover after rejections: %d %s", rec.Code, rec.Body)
	}
}

// TestDocumentStoreCap pins the bounded store: creation past
// MaxDocuments fails with 409 until a document is deleted.
func TestDocumentStoreCap(t *testing.T) {
	s := newTestServer(t, Config{MaxDocuments: 1})
	rec := do(s, "POST", "/v1/documents", nil, strings.NewReader(libraryXML(2)))
	if rec.Code != http.StatusCreated {
		t.Fatalf("create: %d %s", rec.Code, rec.Body)
	}
	id := decodeDoc(t, rec.Body.String()).ID
	if rec = do(s, "POST", "/v1/documents", nil, strings.NewReader(libraryXML(2))); rec.Code != http.StatusConflict {
		t.Fatalf("over-cap create: %d, want 409", rec.Code)
	}
	if rec = do(s, "DELETE", "/v1/documents/"+id, nil, nil); rec.Code != http.StatusOK {
		t.Fatalf("delete: %d", rec.Code)
	}
	if rec = do(s, "POST", "/v1/documents", nil, strings.NewReader(libraryXML(2))); rec.Code != http.StatusCreated {
		t.Fatalf("create after delete: %d %s", rec.Code, rec.Body)
	}
}

// TestDocumentDrainGate pins that mutating document endpoints close
// during drain while reads stay up.
func TestDocumentDrainGate(t *testing.T) {
	s := newTestServer(t, Config{})
	rec := do(s, "POST", "/v1/documents", nil, strings.NewReader(libraryXML(2)))
	if rec.Code != http.StatusCreated {
		t.Fatalf("create: %d", rec.Code)
	}
	base := "/v1/documents/" + decodeDoc(t, rec.Body.String()).ID
	if err := s.Drain(context.Background()); err != nil {
		t.Fatal(err)
	}
	if rec = do(s, "POST", "/v1/documents", nil, strings.NewReader(libraryXML(2))); rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("create during drain: %d, want 503", rec.Code)
	}
	if rec = do(s, "PATCH", base, nil, strings.NewReader(`[{"op":"delete","class":"/library/shelf","key":2}]`)); rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("patch during drain: %d, want 503", rec.Code)
	}
	if rec = do(s, "GET", base, nil, nil); rec.Code != http.StatusOK {
		t.Fatalf("get during drain: %d, want 200", rec.Code)
	}
}
