package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"discoverxfd"
	"discoverxfd/internal/faultinject"
	"discoverxfd/internal/trace"
)

// TestHandlerPanicContained injects panics into the HTTP handler layer
// from many concurrent clients: every poisoned request answers 500,
// the server keeps serving clean requests, no goroutine leaks.
func TestHandlerPanicContained(t *testing.T) {
	defer faultinject.CheckGoroutines(t)()
	hook, fired := faultinject.HeaderFaultHook()
	s := newTestServer(t, Config{MaxConcurrent: 4, QueueDepth: 64, Fault: hook})
	xml := libraryXML(6)

	const workers = 16
	var wg sync.WaitGroup
	errs := make(chan string, workers*4)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for _, point := range []string{"handler", "decode", "result"} {
				rec := do(s, "POST", "/v1/discover",
					map[string]string{faultinject.FaultHeader: point}, strings.NewReader(xml))
				if rec.Code != http.StatusInternalServerError {
					errs <- fmt.Sprintf("worker %d point %s: status %d, want 500", w, point, rec.Code)
				}
			}
			rec := do(s, "POST", "/v1/discover", nil, strings.NewReader(xml))
			if rec.Code != http.StatusOK {
				errs <- fmt.Sprintf("worker %d clean request: status %d, want 200", w, rec.Code)
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for e := range errs {
		t.Error(e)
	}
	if got := fired.Load(); got != workers*3 {
		t.Errorf("fault hook fired %d times, want %d", got, workers*3)
	}
	if got := s.Stats().PanicsContained; got != workers*3 {
		t.Errorf("panicsContained = %d, want %d", got, workers*3)
	}
	if rec := do(s, "GET", "/healthz", nil, nil); rec.Code != http.StatusOK {
		t.Errorf("healthz after panics = %d", rec.Code)
	}
}

// TestEngineStagePanicContained injects a panic into the middle of the
// discovery traversal (the RelationHook seam) from many concurrent
// clients: the run's panic barrier converts it to an error with the
// run span closed, the handler answers 500, the durable trace stays
// schema-valid with a run_end carrying the error, and clean runs
// interleaved with the poisoned ones stay byte-identical to the
// library path.
func TestEngineStagePanicContained(t *testing.T) {
	defer faultinject.CheckGoroutines(t)()
	hook, _ := faultinject.HeaderFaultHook() // non-nil Fault arms X-Fault-Relation
	var traceBuf bytes.Buffer
	var traceMu sync.Mutex
	s := newTestServer(t, Config{
		MaxConcurrent: 4,
		QueueDepth:    64,
		Fault:         hook,
		Trace:         lockedJSONL(&traceMu, &traceBuf),
	})
	xml := libraryXML(8)
	doc, err := discoverxfd.ParseDocument(xml)
	if err != nil {
		t.Fatal(err)
	}
	want := libraryJSON(t, doc, nil, discoverxfd.Options{})

	const workers = 12
	var wg sync.WaitGroup
	errs := make(chan string, workers*2)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rec := do(s, "POST", "/v1/discover",
				map[string]string{"X-Fault-Relation": "book"}, strings.NewReader(xml))
			if rec.Code != http.StatusInternalServerError {
				errs <- fmt.Sprintf("worker %d poisoned run: status %d, want 500", w, rec.Code)
			}
			if !strings.Contains(rec.Body.String(), "panic") {
				errs <- fmt.Sprintf("worker %d poisoned run: error does not name the panic: %s", w, rec.Body)
			}
			rec = do(s, "POST", "/v1/discover", nil, strings.NewReader(xml))
			if rec.Code != http.StatusOK {
				errs <- fmt.Sprintf("worker %d clean run: status %d, want 200", w, rec.Code)
			} else if !bytes.Equal(normalizeTimes(rec.Body.Bytes()), want) {
				errs <- fmt.Sprintf("worker %d clean run: result differs from library path", w)
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for e := range errs {
		t.Error(e)
	}

	// Every span in the durable trace is closed and schema-valid —
	// poisoned runs included (they end with run_end carrying an error).
	traceMu.Lock()
	raw := append([]byte(nil), traceBuf.Bytes()...)
	traceMu.Unlock()
	sum, err := trace.ValidateJSONL(bytes.NewReader(raw))
	if err != nil {
		t.Fatalf("trace validation: %v", err)
	}
	if sum.Runs != workers*2 {
		t.Errorf("trace has %d runs, want %d", sum.Runs, workers*2)
	}
	failedRuns := 0
	for _, line := range bytes.Split(bytes.TrimSpace(raw), []byte("\n")) {
		var ev struct {
			Kind string `json:"event"`
			Err  string `json:"error"`
		}
		if err := json.Unmarshal(line, &ev); err != nil {
			t.Fatal(err)
		}
		if ev.Kind == "run_end" && ev.Err != "" {
			failedRuns++
			if !strings.Contains(ev.Err, "panic") {
				t.Errorf("failed run_end error = %q, want the recovered panic", ev.Err)
			}
		}
	}
	if failedRuns != workers {
		t.Errorf("trace records %d failed runs, want %d", failedRuns, workers)
	}
	if s.Stats().Failed != workers {
		t.Errorf("failed counter = %d, want %d", s.Stats().Failed, workers)
	}
}

// lockedJSONL wraps a JSONL tracer over a shared buffer; the mutex
// also lets the test read the buffer safely afterwards.
func lockedJSONL(mu *sync.Mutex, buf *bytes.Buffer) trace.Tracer {
	return trace.NewJSONL(&lockedWriter{mu: mu, w: buf})
}

type lockedWriter struct {
	mu *sync.Mutex
	w  io.Writer
}

func (l *lockedWriter) Write(p []byte) (int, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.w.Write(p)
}

// TestChaosLoad is the load test of the robustness contract: 32
// concurrent clients over a real listener mix clean requests, JSON
// envelopes, trickled uploads, mid-body disconnects, oversized bodies,
// handler panics, engine-stage panics, and async jobs — under -race.
// Afterwards the server must still be healthy, drain cleanly, leak no
// goroutines, and hold a schema-valid durable trace (no dropped
// spans); every 200 carries bytes identical to the library path.
func TestChaosLoad(t *testing.T) {
	defer faultinject.CheckGoroutines(t)()
	hook, _ := faultinject.HeaderFaultHook()
	var traceBuf bytes.Buffer
	var traceMu sync.Mutex
	s := newTestServer(t, Config{
		MaxConcurrent: 4,
		QueueDepth:    8,
		MaxBodyBytes:  64 << 10,
		RetryAfter:    time.Second,
		MaxJobs:       128,
		Fault:         hook,
		Trace:         lockedJSONL(&traceMu, &traceBuf),
	})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	xml := libraryXML(10)
	doc, err := discoverxfd.ParseDocument(xml)
	if err != nil {
		t.Fatal(err)
	}
	want := libraryJSON(t, doc, nil, discoverxfd.Options{})
	bigXML := libraryXML(1000) // one valid document well past MaxBodyBytes
	okOrShed := func(code int) bool { return code == http.StatusOK || code == http.StatusTooManyRequests }

	const (
		clients = 32
		rounds  = 4
	)
	var wg sync.WaitGroup
	errs := make(chan string, clients*rounds)
	report := func(format string, args ...any) {
		select {
		case errs <- fmt.Sprintf(format, args...):
		default:
		}
	}
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			client := &http.Client{Timeout: 30 * time.Second}
			defer client.CloseIdleConnections()
			for r := 0; r < rounds; r++ {
				scenario := (c + r) % 8
				switch scenario {
				case 0: // clean raw XML
					resp, err := client.Post(ts.URL+"/v1/discover", "text/xml", strings.NewReader(xml))
					if err != nil {
						report("client %d clean: %v", c, err)
						continue
					}
					body, _ := io.ReadAll(resp.Body)
					resp.Body.Close()
					if !okOrShed(resp.StatusCode) {
						report("client %d clean: status %d", c, resp.StatusCode)
					} else if resp.StatusCode == http.StatusOK && !bytes.Equal(normalizeTimes(body), want) {
						report("client %d clean: served bytes differ from library path", c)
					}
				case 1: // JSON envelope
					env, _ := json.Marshal(envelope{Document: xml})
					resp, err := client.Post(ts.URL+"/v1/discover", "application/json", bytes.NewReader(env))
					if err != nil {
						report("client %d envelope: %v", c, err)
						continue
					}
					body, _ := io.ReadAll(resp.Body)
					resp.Body.Close()
					if !okOrShed(resp.StatusCode) {
						report("client %d envelope: status %d", c, resp.StatusCode)
					} else if resp.StatusCode == http.StatusOK && !bytes.Equal(normalizeTimes(body), want) {
						report("client %d envelope: served bytes differ from library path", c)
					}
				case 2: // trickled upload (slow reader, chunked encoding)
					slow := &faultinject.SlowReader{R: strings.NewReader(xml), Chunk: 1024, Delay: 200 * time.Microsecond}
					req, _ := http.NewRequest("POST", ts.URL+"/v1/discover", slow)
					resp, err := client.Do(req)
					if err != nil {
						report("client %d slow: %v", c, err)
						continue
					}
					io.Copy(io.Discard, resp.Body)
					resp.Body.Close()
					if !okOrShed(resp.StatusCode) {
						report("client %d slow: status %d", c, resp.StatusCode)
					}
				case 3: // mid-body disconnect: ctx cancelled partway through the upload
					body, ctx := faultinject.CancelAfterBytes(context.Background(),
						&faultinject.SlowReader{R: strings.NewReader(xml), Chunk: 256, Delay: 100 * time.Microsecond},
						int64(len(xml)/2))
					req, _ := http.NewRequestWithContext(ctx, "POST", ts.URL+"/v1/discover", body)
					resp, err := client.Do(req)
					if err == nil {
						// The race can let the request finish; either way the
						// server must survive it.
						io.Copy(io.Discard, resp.Body)
						resp.Body.Close()
					}
				case 4: // oversized body → 413 (or shed)
					resp, err := client.Post(ts.URL+"/v1/discover", "text/xml", strings.NewReader(bigXML))
					if err != nil {
						// The server may reset the connection once the cap is
						// exceeded; that is an acceptable refusal too.
						continue
					}
					io.Copy(io.Discard, resp.Body)
					resp.Body.Close()
					if resp.StatusCode != http.StatusRequestEntityTooLarge && !okOrShed(resp.StatusCode) {
						report("client %d oversized: status %d", c, resp.StatusCode)
					}
				case 5: // handler panic
					req, _ := http.NewRequest("POST", ts.URL+"/v1/discover", strings.NewReader(xml))
					req.Header.Set(faultinject.FaultHeader, "handler")
					resp, err := client.Do(req)
					if err != nil {
						report("client %d handler panic: %v", c, err)
						continue
					}
					io.Copy(io.Discard, resp.Body)
					resp.Body.Close()
					if resp.StatusCode != http.StatusInternalServerError {
						report("client %d handler panic: status %d, want 500", c, resp.StatusCode)
					}
				case 6: // engine-stage panic
					req, _ := http.NewRequest("POST", ts.URL+"/v1/discover", strings.NewReader(xml))
					req.Header.Set("X-Fault-Relation", "book")
					resp, err := client.Do(req)
					if err != nil {
						report("client %d engine panic: %v", c, err)
						continue
					}
					io.Copy(io.Discard, resp.Body)
					resp.Body.Close()
					if resp.StatusCode != http.StatusInternalServerError && !okOrShed(resp.StatusCode) {
						report("client %d engine panic: status %d, want 500", c, resp.StatusCode)
					}
				case 7: // async job, polled to completion
					resp, err := client.Post(ts.URL+"/v1/jobs", "text/xml", strings.NewReader(xml))
					if err != nil {
						report("client %d job: %v", c, err)
						continue
					}
					body, _ := io.ReadAll(resp.Body)
					resp.Body.Close()
					if resp.StatusCode != http.StatusAccepted {
						if resp.StatusCode != http.StatusTooManyRequests {
							report("client %d job submit: status %d", c, resp.StatusCode)
						}
						continue
					}
					var v jobView
					if err := json.Unmarshal(body, &v); err != nil {
						report("client %d job submit: %v", c, err)
						continue
					}
					deadline := time.Now().Add(20 * time.Second)
					for {
						sr, err := client.Get(ts.URL + "/v1/jobs/" + v.ID)
						if err != nil {
							report("client %d job poll: %v", c, err)
							break
						}
						var cur jobView
						err = json.NewDecoder(sr.Body).Decode(&cur)
						sr.Body.Close()
						if err != nil {
							report("client %d job poll: %v", c, err)
							break
						}
						if terminal(cur) {
							if cur.State != stateDone {
								report("client %d job: finished %q (%s)", c, cur.State, cur.Error)
							}
							break
						}
						if time.Now().After(deadline) {
							report("client %d job: stuck in %q", c, cur.State)
							break
						}
						time.Sleep(5 * time.Millisecond)
					}
				}
			}
		}(c)
	}
	wg.Wait()
	close(errs)
	for e := range errs {
		t.Error(e)
	}

	// The service survived: healthy, drains cleanly, trace is whole.
	if rec := do(s, "GET", "/healthz", nil, nil); rec.Code != http.StatusOK {
		t.Fatalf("healthz after chaos = %d", rec.Code)
	}
	dctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := s.Drain(dctx); err != nil {
		t.Fatalf("drain after chaos: %v", err)
	}

	traceMu.Lock()
	raw := append([]byte(nil), traceBuf.Bytes()...)
	traceMu.Unlock()
	if len(bytes.TrimSpace(raw)) == 0 {
		t.Fatal("chaos run produced no trace")
	}
	sum, err := trace.ValidateJSONL(bytes.NewReader(raw))
	if err != nil {
		t.Fatalf("trace validation after chaos: %v", err)
	}
	if sum.Runs == 0 || sum.Events == 0 {
		t.Fatalf("trace summary %+v, want runs and events", sum)
	}

	snap := s.Stats()
	if snap.Completed == 0 {
		t.Error("no run completed under chaos")
	}
	t.Logf("chaos: %d runs traced, stats %+v", sum.Runs, snap)

	ts.Close() // join the listener's conns before the goroutine check
}
