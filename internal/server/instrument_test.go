package server

import (
	"bytes"
	"context"
	"encoding/json"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"discoverxfd/internal/telemetry"
	"discoverxfd/internal/trace"
)

const testTraceparent = "00-0af7651916cd43dd8448eb211c80319c-b7ad6b7169203331-01"

// TestTraceparentPropagation pins the tentpole contract end to end: an
// inbound traceparent joins the caller's trace — the response echoes
// the trace id with a freshly minted span id (doubling as
// X-Request-Id), and every JSONL event of the request, the request
// span and the admitted run alike, carries the pair.
func TestTraceparentPropagation(t *testing.T) {
	var buf bytes.Buffer
	s := newTestServer(t, Config{Trace: trace.NewJSONL(&buf)})
	rec := do(s, "POST", "/v1/discover",
		map[string]string{"traceparent": testTraceparent}, strings.NewReader(libraryXML(6)))
	if rec.Code != http.StatusOK {
		t.Fatalf("discover = %d, body %s", rec.Code, rec.Body)
	}

	tp, err := trace.ParseTraceparent(rec.Header().Get("Traceparent"))
	if err != nil {
		t.Fatalf("response traceparent %q: %v", rec.Header().Get("Traceparent"), err)
	}
	if tp.TraceID != "0af7651916cd43dd8448eb211c80319c" {
		t.Errorf("trace id not propagated: %q", tp.TraceID)
	}
	if tp.ParentID == "b7ad6b7169203331" {
		t.Error("span id not re-minted for this hop")
	}
	if got := rec.Header().Get("X-Request-Id"); got != tp.ParentID {
		t.Errorf("X-Request-Id = %q, want the minted span id %q", got, tp.ParentID)
	}

	sum, err := trace.ValidateJSONL(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("emitted trace invalid: %v", err)
	}
	if sum.Requests != 1 || sum.Runs != 1 {
		t.Errorf("summary = %+v, want 1 request and 1 run", sum)
	}
	for _, line := range strings.Split(strings.TrimSpace(buf.String()), "\n") {
		var ev trace.Event
		if err := json.Unmarshal([]byte(line), &ev); err != nil {
			t.Fatal(err)
		}
		if ev.TraceID != tp.TraceID || ev.RequestID != tp.ParentID {
			t.Errorf("event %s carries ids %q/%q, want %q/%q",
				ev.Kind, ev.TraceID, ev.RequestID, tp.TraceID, tp.ParentID)
		}
	}
}

// TestTraceparentMintedWhenAbsent pins the no-header and bad-header
// paths: the server starts a fresh, well-formed trace.
func TestTraceparentMintedWhenAbsent(t *testing.T) {
	s := newTestServer(t, Config{})
	for name, hdr := range map[string]map[string]string{
		"absent":    nil,
		"malformed": {"traceparent": "ff-bogus"},
	} {
		rec := do(s, "GET", "/healthz", hdr, nil)
		tp, err := trace.ParseTraceparent(rec.Header().Get("Traceparent"))
		if err != nil {
			t.Errorf("%s: response traceparent %q: %v", name, rec.Header().Get("Traceparent"), err)
			continue
		}
		if rec.Header().Get("X-Request-Id") != tp.ParentID {
			t.Errorf("%s: X-Request-Id disagrees with traceparent", name)
		}
	}
}

// scrape fetches /metrics and lint-checks the exposition.
func scrape(t *testing.T, s *Server) string {
	t.Helper()
	rec := do(s, "GET", "/metrics", nil, nil)
	if rec.Code != http.StatusOK {
		t.Fatalf("metrics = %d", rec.Code)
	}
	if ct := rec.Header().Get("Content-Type"); !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		t.Errorf("Content-Type = %q", ct)
	}
	if _, err := telemetry.Lint(bytes.NewReader(rec.Body.Bytes())); err != nil {
		t.Errorf("exposition fails its own linter: %v", err)
	}
	return rec.Body.String()
}

// TestMetricsEndpoint pins the scrape surface: valid exposition
// carrying RED series for served routes, bridged engine counters, and
// runtime stats.
func TestMetricsEndpoint(t *testing.T) {
	s := newTestServer(t, Config{})
	if rec := do(s, "POST", "/v1/discover",
		map[string]string{"X-Tenant": "acme"}, strings.NewReader(libraryXML(6))); rec.Code != http.StatusOK {
		t.Fatalf("discover = %d, body %s", rec.Code, rec.Body)
	}
	got := scrape(t, s)
	for _, want := range []string{
		`xfd_http_requests_total{route="/v1/discover",tenant="acme",code="2xx"} 1`,
		`xfd_http_request_duration_seconds_bucket{route="/v1/discover",le="+Inf"} 1`,
		`xfd_engine_runs_started_total 1`,
		`xfd_engine_runs_finished_total 1`,
		"xfd_queue_depth 0",
		"xfd_draining 0",
		"go_goroutines ",
		"go_gc_cycles_total ",
	} {
		if !strings.Contains(got, want) {
			t.Errorf("scrape missing %q", want)
		}
	}
}

// TestShedObservability pins the 429 path's observability: the shed
// response still carries trace headers, and the shed shows up by
// reason and tenant in both /metrics and /v1/stats.
func TestShedObservability(t *testing.T) {
	entered, release := make(chan struct{}), make(chan struct{})
	s := newTestServer(t, Config{MaxConcurrent: 4, TenantQuota: 1, Fault: blockOnAdmit(entered, release)})
	xml := libraryXML(6)

	var wg sync.WaitGroup
	wg.Add(1)
	//lint:governed test goroutine, joined via wg below.
	go func() {
		defer wg.Done()
		do(s, "POST", "/v1/discover",
			map[string]string{"X-Tenant": "hog", "X-Test-Block": "1"}, strings.NewReader(xml))
	}()
	<-entered

	rec := do(s, "POST", "/v1/discover",
		map[string]string{"X-Tenant": "hog"}, strings.NewReader(xml))
	if rec.Code != http.StatusTooManyRequests {
		t.Fatalf("second request = %d, want 429", rec.Code)
	}
	if rec.Header().Get("Retry-After") == "" {
		t.Error("429 without Retry-After")
	}
	if _, err := trace.ParseTraceparent(rec.Header().Get("Traceparent")); err != nil {
		t.Errorf("429 traceparent: %v", err)
	}
	if rec.Header().Get("X-Request-Id") == "" {
		t.Error("429 without X-Request-Id")
	}

	got := scrape(t, s)
	for _, want := range []string{
		`xfd_requests_shed_total{reason="tenant_quota",tenant="hog"} 1`,
		`xfd_http_requests_total{route="/v1/discover",tenant="hog",code="4xx"} 1`,
		`xfd_tenant_running{tenant="hog"} 1`,
	} {
		if !strings.Contains(got, want) {
			t.Errorf("scrape missing %q", want)
		}
	}

	var snap StatsSnapshot
	if err := json.Unmarshal(do(s, "GET", "/v1/stats", nil, nil).Body.Bytes(), &snap); err != nil {
		t.Fatal(err)
	}
	ten, ok := snap.Tenants["hog"]
	if !ok {
		t.Fatalf("stats missing tenant hog: %+v", snap.Tenants)
	}
	if ten.Running != 1 || ten.Sheds["tenant_quota"] != 1 {
		t.Errorf("tenant hog = %+v, want running 1 and one tenant_quota shed", ten)
	}

	close(release)
	wg.Wait()
}

// TestDrainVisibleInStats pins drain observability: with a run still
// in flight, /v1/stats reports draining (and the in-flight load) and
// readyz flips to 503, while the drain itself is still waiting.
func TestDrainVisibleInStats(t *testing.T) {
	entered, release := make(chan struct{}), make(chan struct{})
	s := newTestServer(t, Config{MaxConcurrent: 2, Fault: blockOnAdmit(entered, release)})

	var wg sync.WaitGroup
	wg.Add(1)
	//lint:governed test goroutine, joined via wg below.
	go func() {
		defer wg.Done()
		do(s, "POST", "/v1/discover",
			map[string]string{"X-Tenant": "t1", "X-Test-Block": "1"}, strings.NewReader(libraryXML(6)))
	}()
	<-entered

	drainDone := make(chan error, 1)
	//lint:governed test goroutine, joined via drainDone below.
	go func() { drainDone <- s.Drain(context.Background()) }()

	// Drain flips the flag synchronously before waiting; poll for it to
	// avoid racing the goroutine's first instruction.
	deadline := time.Now().Add(5 * time.Second)
	for !s.draining.Load() {
		if time.Now().After(deadline) {
			t.Fatal("drain flag never set")
		}
		time.Sleep(time.Millisecond)
	}

	var snap StatsSnapshot
	if err := json.Unmarshal(do(s, "GET", "/v1/stats", nil, nil).Body.Bytes(), &snap); err != nil {
		t.Fatal(err)
	}
	if !snap.Draining {
		t.Error("stats does not report draining with a run in flight")
	}
	if snap.Running != 1 {
		t.Errorf("stats running = %d, want the in-flight run", snap.Running)
	}
	if rec := do(s, "GET", "/readyz", nil, nil); rec.Code != http.StatusServiceUnavailable {
		t.Errorf("readyz during drain = %d, want 503", rec.Code)
	}
	select {
	case <-drainDone:
		t.Fatal("drain finished with a run still blocked")
	default:
	}

	close(release)
	wg.Wait()
	if err := <-drainDone; err != nil {
		t.Fatalf("drain: %v", err)
	}

	// Post-drain sheds are observable too: reason draining.
	if rec := do(s, "POST", "/v1/discover", nil, strings.NewReader("<x/>")); rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("post-drain discover = %d, want 503", rec.Code)
	}
	if got := scrape(t, s); !strings.Contains(got, `xfd_requests_shed_total{reason="draining",tenant=""} 1`) {
		t.Error("scrape missing the draining shed counter")
	}
}

// TestAccessAndSlowRunLog pins the structured access log and the
// threshold-gated slow-request report with stage timings.
func TestAccessAndSlowRunLog(t *testing.T) {
	var logBuf bytes.Buffer
	var mu sync.Mutex
	lockedWriter := writerFunc(func(p []byte) (int, error) {
		mu.Lock()
		defer mu.Unlock()
		return logBuf.Write(p)
	})
	s := newTestServer(t, Config{
		Log:     slog.New(slog.NewTextHandler(lockedWriter, nil)),
		SlowRun: time.Nanosecond, // everything is slow
	})
	if rec := do(s, "POST", "/v1/discover", nil, strings.NewReader(libraryXML(6))); rec.Code != http.StatusOK {
		t.Fatalf("discover = %d", rec.Code)
	}
	mu.Lock()
	logged := logBuf.String()
	mu.Unlock()
	for _, want := range []string{
		"msg=request", "route=/v1/discover", "status=200", "trace_id=", "request_id=",
		`msg="slow request"`, "slow_run_threshold=", "/plan=", "/assemble=",
	} {
		if !strings.Contains(logged, want) {
			t.Errorf("log missing %q:\n%s", want, logged)
		}
	}
}

// TestNoSlowRecorderWhenDisabled pins the zero-cost default: without
// SlowRun the per-request state carries no stage recorder.
func TestNoSlowRecorderWhenDisabled(t *testing.T) {
	s := newTestServer(t, Config{})
	var saw *instrRequest
	probe := s.instrument("/probe", http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		saw = instrFrom(r.Context())
	}))
	probe.ServeHTTP(httptest.NewRecorder(), httptest.NewRequest("GET", "/probe", nil))
	if saw == nil {
		t.Fatal("middleware did not install instrumentation state")
	}
	if saw.stages != nil {
		t.Error("stage recorder allocated with SlowRun disabled")
	}
}

// TestServerPublishExpvarIdempotent is the duplicate-name regression
// for the server snapshot publisher.
func TestServerPublishExpvarIdempotent(t *testing.T) {
	a := newTestServer(t, Config{})
	b := newTestServer(t, Config{})
	a.PublishExpvar("server_test_stats")
	b.PublishExpvar("server_test_stats") // must not panic; latest wins
}

// writerFunc adapts a function to io.Writer.
type writerFunc func(p []byte) (int, error)

func (f writerFunc) Write(p []byte) (int, error) { return f(p) }
