// Package server is xfdd's HTTP layer: the discovery engine behind a
// long-lived, fault-tolerant service. It exposes synchronous
// discovery (POST /v1/discover), an async job API (POST /v1/jobs,
// GET /v1/jobs/{id}) with live progress streamed from the run's trace
// events, and the operational endpoints /healthz, /readyz, /v1/stats,
// and /debug/vars.
//
// The interesting part is not the routing but the robustness
// contract, built from the library's governance primitives:
//
//   - Admission control: a bounded queue with per-tenant concurrency
//     quotas (see admission). Saturation sheds load with
//     429 + Retry-After instead of buffering unboundedly.
//   - Backpressure and cancellation: every run executes under the
//     request context, so a client disconnect aborts its run through
//     the engine's governor; the per-request timeout composes with
//     Limits.Deadline (the run honors the earlier of the two).
//   - Graceful degradation: ?degrade=truncate turns budget
//     exhaustion into a 200 carrying the partial Result (with
//     Stats.Truncated set) instead of a 504 — the anytime-serving
//     mode. Drain completes in-flight runs, rejects new work with
//     503, and leaves the trace flushable before exit.
//   - Fault containment: a recovery middleware converts handler and
//     engine-stage panics into 500s with the run span closed; the
//     Config.Fault hook gives the chaos tests named fault points in
//     the server layer itself.
//
// See docs/INTERNALS.md §13 for the architecture and the
// admission/drain state machine.
package server

import (
	"context"
	"encoding/json"
	"errors"
	"expvar"
	"fmt"
	"log/slog"
	"net/http"
	"runtime"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"discoverxfd"
	"discoverxfd/internal/trace"
)

// Config configures a Server. The zero value serves with the
// defaults noted on each field.
type Config struct {
	// MaxConcurrent is the number of discovery runs executing at
	// once; further admitted requests wait in the queue. Default
	// GOMAXPROCS.
	MaxConcurrent int
	// QueueDepth is how many admitted requests may wait beyond the
	// running set before the server sheds load with 429. Default
	// 2×MaxConcurrent; negative means no queue at all (shed the moment
	// every slot is busy).
	QueueDepth int
	// TenantQuota caps one tenant's running+queued requests (tenants
	// are identified by the X-Tenant header). 0 means no per-tenant
	// cap.
	TenantQuota int
	// MaxBodyBytes caps the request body; larger uploads fail with
	// 413. Default 32 MiB.
	MaxBodyBytes int64
	// DefaultFormat is the document format assumed for request bodies
	// that do not declare one ("xml" or "json"; default "xml"). Bodies
	// with Content-Type application/json negotiate for themselves: an
	// envelope's "format" member names its embedded document's format,
	// and a bare JSON body is a JSON document.
	DefaultFormat string
	// DefaultTimeout is the per-request wall-clock budget applied
	// when the request names none (?timeout=). 0 means none.
	DefaultTimeout time.Duration
	// MaxTimeout caps the per-request budget a client may ask for;
	// larger or absent requests are clamped to it. 0 means uncapped.
	MaxTimeout time.Duration
	// RetryAfter is the Retry-After hint attached to 429 and 503
	// responses. Default 1s.
	RetryAfter time.Duration
	// MaxJobs bounds the job registry; the oldest finished jobs are
	// evicted beyond it. Default 64.
	MaxJobs int
	// MaxDocuments bounds the resident-document store (the
	// incremental-discovery surface: POST /v1/documents). Creation
	// beyond the cap fails with 409 until a document is deleted —
	// resident documents are client-owned state and never evicted
	// silently. Default 16.
	MaxDocuments int
	// FeedCapacity is the per-job progress ring (most recent events
	// retained for SSE/polling). Default 256.
	FeedCapacity int
	// Limits is the server-wide resource envelope. Per-request limit
	// parameters may tighten these but never exceed them.
	Limits discoverxfd.Limits
	// Options is the base discovery configuration (Parallel, MaxLHS,
	// approximate discovery, …). Its Trace and RelationHook fields
	// are ignored: tracing is wired per request from Trace below, and
	// the hook is a chaos-build concern (Fault).
	Options discoverxfd.Options
	// Trace, when non-nil, receives every run's trace events (the
	// durable backend — xfdd wires the -trace JSONL file here). Job
	// progress feeds are layered on top per run.
	Trace trace.Tracer
	// Log receives the server's operational log; nil discards it.
	Log *slog.Logger
	// SlowRun, when positive, is the latency threshold beyond which a
	// request earns a slow-request log line carrying its per-stage
	// timings (collected from the run's stage_end trace events). 0
	// disables the report and its stage recorder entirely.
	SlowRun time.Duration
	// Fault, when non-nil, is invoked at the server's named fault
	// points with the request headers — the chaos-test seam (see
	// faultinject.HeaderFaultHook and the fault-point table in
	// docs/INTERNALS.md §13). It also arms the X-Fault-Relation
	// header for engine-stage faults. Production servers leave it
	// nil, which disables all of it.
	Fault func(point string, h http.Header)
}

// withDefaults resolves the zero fields.
func (c Config) withDefaults() Config {
	if c.MaxConcurrent <= 0 {
		c.MaxConcurrent = runtime.GOMAXPROCS(0)
	}
	switch {
	case c.QueueDepth == 0:
		c.QueueDepth = 2 * c.MaxConcurrent
	case c.QueueDepth < 0:
		c.QueueDepth = 0
	}
	if c.MaxBodyBytes <= 0 {
		c.MaxBodyBytes = 32 << 20
	}
	if c.DefaultFormat == "" {
		c.DefaultFormat = "xml"
	}
	if c.RetryAfter <= 0 {
		c.RetryAfter = time.Second
	}
	if c.MaxJobs <= 0 {
		c.MaxJobs = 64
	}
	if c.MaxDocuments <= 0 {
		c.MaxDocuments = 16
	}
	if c.FeedCapacity <= 0 {
		c.FeedCapacity = 256
	}
	if c.Log == nil {
		c.Log = slog.New(discardHandler{})
	}
	return c
}

// Server is the xfdd HTTP service. Construct with New, mount Handler
// on an http.Server, and call Drain before exit. All methods are safe
// for concurrent use.
type Server struct {
	cfg   Config
	base  context.Context // lifecycle context for async jobs
	abort context.CancelFunc
	adm   *admission
	jobs  *registry
	docs  *docStore
	stats *counters
	met   *serverMetrics
	mux   *http.ServeMux

	draining  atomic.Bool
	drainOnce sync.Once
	drained   chan struct{} // closed once every in-flight run is done
}

// New constructs a Server. ctx is the server's lifecycle context:
// async jobs run under it (bounded by their own timeouts), so
// cancelling it aborts every job still running after Drain's grace
// period.
func New(ctx context.Context, cfg Config) *Server {
	cfg = cfg.withDefaults()
	base, abort := context.WithCancel(ctx)
	s := &Server{
		cfg:     cfg,
		base:    base,
		abort:   abort,
		adm:     newAdmission(cfg.MaxConcurrent, cfg.QueueDepth, cfg.TenantQuota),
		stats:   &counters{},
		drained: make(chan struct{}),
	}
	s.jobs = newRegistry(cfg.MaxJobs)
	s.docs = newDocStore(cfg.MaxDocuments)
	s.met = newServerMetrics(s)
	s.mux = s.routes()
	return s
}

// Handler returns the server's root handler.
func (s *Server) Handler() http.Handler { return s.mux }

// routes wires the endpoint table. Method+wildcard patterns need Go
// 1.22's ServeMux. Every route passes through the instrumentation
// middleware (outermost, so sheds and contained panics are observed
// too); the route label is the pattern path, keeping per-id URLs out
// of the metric label space.
func (s *Server) routes() *http.ServeMux {
	mux := http.NewServeMux()
	handle := func(pattern string, h http.Handler) {
		_, route, _ := strings.Cut(pattern, " ")
		mux.Handle(pattern, s.instrument(route, h))
	}
	handle("GET /healthz", http.HandlerFunc(s.handleHealthz))
	handle("GET /readyz", http.HandlerFunc(s.handleReadyz))
	handle("GET /v1/stats", http.HandlerFunc(s.handleStats))
	handle("GET /metrics", http.HandlerFunc(s.handleMetrics))
	handle("GET /debug/vars", expvar.Handler())
	handle("POST /v1/discover", s.guard(s.handleDiscover))
	handle("POST /v1/jobs", s.guard(s.handleSubmitJob))
	handle("GET /v1/jobs/{id}", s.recovered(s.handleJobStatus))
	handle("GET /v1/jobs/{id}/result", s.recovered(s.handleJobResult))
	handle("GET /v1/jobs/{id}/events", s.recovered(s.handleJobEvents))
	handle("DELETE /v1/jobs/{id}", s.recovered(s.handleJobCancel))
	handle("POST /v1/documents", s.guard(s.handleCreateDocument))
	handle("GET /v1/documents", s.recovered(s.handleListDocuments))
	handle("GET /v1/documents/{id}", s.recovered(s.handleGetDocument))
	handle("DELETE /v1/documents/{id}", s.recovered(s.handleDeleteDocument))
	handle("PATCH /v1/documents/{id}", s.guard(s.handleUpdateDocument))
	handle("POST /v1/documents/{id}/discover", s.guard(s.handleDiscoverDocument))
	return mux
}

// guard wraps a work-submitting handler: recovery first, then the
// drain gate (503 while shutting down — health endpoints and job
// reads stay up).
func (s *Server) guard(h http.HandlerFunc) http.Handler {
	return s.recovered(func(w http.ResponseWriter, r *http.Request) {
		if s.draining.Load() {
			s.stats.rejectedDraining.Add(1)
			s.writeError(w, r, ErrDraining)
			return
		}
		h(w, r)
	})
}

// recovered converts a handler panic into a 500 instead of killing
// the process: one poisoned request must not take down the service.
// Engine-stage panics inside a run never reach here — the run's own
// panic barrier converts them to errors with the run span closed —
// so this is the containment for the server layer itself.
func (s *Server) recovered(h http.HandlerFunc) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		defer func() {
			if p := recover(); p != nil {
				s.stats.panics.Add(1)
				s.cfg.Log.Error("handler panic", "path", r.URL.Path, "panic", fmt.Sprint(p))
				// Best effort: if the handler already wrote, this is a
				// no-op and the client sees a truncated response.
				writeJSONStatus(w, http.StatusInternalServerError,
					map[string]string{"error": "internal server error"})
			}
		}()
		s.fault("handler", r)
		h(w, r)
	})
}

// fault triggers the named server-layer fault point (chaos builds
// only; a nil hook makes this free).
func (s *Server) fault(point string, r *http.Request) {
	if s.cfg.Fault != nil {
		s.cfg.Fault(point, r.Header)
	}
}

// handleDiscover is POST /v1/discover: parse, admit, run, render —
// synchronously, under the request's composed deadline.
func (s *Server) handleDiscover(w http.ResponseWriter, r *http.Request) {
	req, err := s.decodeParams(r)
	if err != nil {
		s.writeError(w, r, err)
		return
	}
	ctx := r.Context()
	if req.timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, req.timeout)
		defer cancel()
	}
	s.fault("decode", r)
	if err := s.decodeBody(ctx, w, r, req); err != nil {
		s.writeError(w, r, err)
		return
	}

	release, err := s.adm.Acquire(ctx, req.tenant)
	if err != nil {
		s.writeError(w, r, err)
		return
	}
	defer release()

	s.stats.accepted.Add(1)
	req.fire("admitted")
	req.opts.Trace = s.requestTracer(r)
	eng := discoverxfd.NewEngine(&req.opts)
	defer s.met.retire(eng) // one-shot engine: fold its counters on the way out
	res, err := eng.Discover(ctx, req.doc, req.schema)
	if err != nil {
		s.stats.failed.Add(1)
		s.writeError(w, r, err)
		return
	}
	s.fault("result", r)
	s.finishRun(res)
	if status, ok := s.degradeStatus(res, req.degrade); !ok {
		writeJSONStatus(w, status, map[string]string{
			"error":  "deadline exceeded: " + res.Stats.TruncatedReason,
			"detail": "re-request with ?degrade=truncate to accept the partial result",
		})
		return
	}
	w.Header().Set("Content-Type", "application/json")
	if res.Stats.Truncated {
		w.Header().Set("X-Truncated", "true")
	}
	if err := discoverxfd.WriteJSON(w, res); err != nil {
		s.cfg.Log.Error("writing result", "err", err)
	}
}

// finishRun folds one completed run into the server counters.
func (s *Server) finishRun(res *discoverxfd.Result) {
	s.stats.completed.Add(1)
	if res.Stats.Truncated {
		s.stats.truncated.Add(1)
	}
	s.stats.tuples.Add(int64(res.Stats.Tuples))
	s.stats.latticeNodes.Add(int64(res.Stats.NodesVisited))
}

// degradeStatus decides how to serve a finished run: a Result
// truncated by the wall-clock deadline is only served when the client
// opted into degraded answers (?degrade=truncate); otherwise the
// deadline behaves like an error (504). Truncation caused by
// explicitly requested caps (max_tuples, max_lattice_level) is always
// served — bounded work was the request.
func (s *Server) degradeStatus(res *discoverxfd.Result, degrade bool) (status int, serve bool) {
	if res.Stats.Truncated && !degrade && strings.Contains(res.Stats.TruncatedReason, "deadline") {
		s.stats.deadline.Add(1)
		return http.StatusGatewayTimeout, false
	}
	return http.StatusOK, true
}

// handleHealthz reports liveness: the process is up.
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintln(w, "ok")
}

// handleReadyz reports readiness: 200 while accepting work, 503 once
// draining (load balancers stop routing here before the listener
// closes).
func (s *Server) handleReadyz(w http.ResponseWriter, r *http.Request) {
	if s.draining.Load() {
		w.Header().Set("Retry-After", retryAfterValue(s.cfg.RetryAfter))
		http.Error(w, "draining", http.StatusServiceUnavailable)
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintln(w, "ready")
}

// handleStats serves the server's counter snapshot.
func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	writeJSONStatus(w, http.StatusOK, s.Stats())
}

// Drain moves the server to the draining state and waits for
// in-flight work: new submissions get 503, queued-but-unstarted
// admissions are failed with 503, running syncs and jobs complete,
// and job goroutines are joined. If ctx fires first the remaining
// jobs are aborted through the lifecycle context and the error
// reports how many were cut short. Idempotent; the first caller wins.
func (s *Server) Drain(ctx context.Context) error {
	s.drainOnce.Do(func() {
		s.draining.Store(true)
		s.cfg.Log.Info("draining")
		s.adm.Drain()
		//lint:governed the drain joiner is awaited below via the drained channel; when ctx fires first, the work it joins is aborted and it unwinds promptly.
		go func() {
			s.jobs.wait()
			<-s.adm.Idle()
			close(s.drained)
		}()
	})
	select {
	case <-s.drained:
		return nil
	case <-ctx.Done():
		s.abort()   // cancel every straggler through the lifecycle ctx
		<-s.drained // runs unwind promptly once cancelled
		return fmt.Errorf("server: drain cut short (%w); in-flight runs were aborted", ctx.Err())
	}
}

// writeError maps an error onto its HTTP response. Typed decode
// errors carry their own status; admission and library sentinels get
// the robustness-contract statuses (429 with Retry-After for shed
// load, 503 for drain, 400 for usage errors, 504 for deadlines).
func (s *Server) writeError(w http.ResponseWriter, r *http.Request, err error) {
	status := statusOf(err)
	switch status {
	case http.StatusTooManyRequests:
		s.stats.rejectedOverload.Add(1)
		reason := "queue_full"
		if errors.Is(err, ErrTenantOverQuota) {
			reason = "tenant_quota"
		}
		noteReason(r, reason)
		s.observeShed(tenantOf(r), reason)
		w.Header().Set("Retry-After", retryAfterValue(s.cfg.RetryAfter))
	case http.StatusServiceUnavailable:
		noteReason(r, "draining")
		s.observeShed(tenantOf(r), "draining")
		w.Header().Set("Retry-After", retryAfterValue(s.cfg.RetryAfter))
	case http.StatusGatewayTimeout:
		s.stats.deadline.Add(1)
		noteReason(r, "deadline")
	}
	if status >= http.StatusInternalServerError {
		s.cfg.Log.Error("request failed", "path", r.URL.Path, "status", status, "err", err)
	}
	writeJSONStatus(w, status, map[string]string{"error": err.Error()})
}

// statusOf maps an error onto its HTTP status: typed decode errors
// carry their own, admission and library sentinels get the
// robustness-contract statuses (429 for shed load, 503 for drain,
// 400 for usage errors, 504 for deadlines, 499 — nginx's convention,
// the stdlib has none — for a client that went away).
func statusOf(err error) int {
	var he *httpError
	switch {
	case errors.As(err, &he):
		return he.status
	case errors.Is(err, ErrQueueFull), errors.Is(err, ErrTenantOverQuota):
		return http.StatusTooManyRequests
	case errors.Is(err, ErrDraining):
		return http.StatusServiceUnavailable
	case errors.Is(err, discoverxfd.ErrBadLimits):
		return http.StatusBadRequest
	case errors.Is(err, context.DeadlineExceeded):
		return http.StatusGatewayTimeout
	case errors.Is(err, context.Canceled):
		return statusClientClosedRequest
	default:
		return http.StatusInternalServerError
	}
}

// statusClientClosedRequest is nginx's convention for a request
// aborted by its client; no stdlib constant exists. The client never
// sees it — it exists for logs and job records.
const statusClientClosedRequest = 499

func retryAfterValue(d time.Duration) string {
	secs := int(d / time.Second)
	if secs < 1 {
		secs = 1
	}
	return strconv.Itoa(secs)
}

// writeJSONStatus writes v as a JSON response with the given status.
func writeJSONStatus(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

// discardHandler is a slog.Handler that drops everything (Config.Log
// nil default; slog.DiscardHandler arrives only in Go 1.24).
type discardHandler struct{}

func (discardHandler) Enabled(context.Context, slog.Level) bool  { return false }
func (discardHandler) Handle(context.Context, slog.Record) error { return nil }
func (discardHandler) WithAttrs([]slog.Attr) slog.Handler        { return discardHandler{} }
func (discardHandler) WithGroup(string) slog.Handler             { return discardHandler{} }
