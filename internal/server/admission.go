package server

import (
	"context"
	"errors"
	"sync"
)

// Admission sentinel errors. Enqueue returns them synchronously; the
// handler layer maps ErrQueueFull and ErrTenantOverQuota to
// 429 + Retry-After, and ErrDraining to 503.
var (
	// ErrQueueFull means every run slot is busy and the admission
	// queue is at capacity — the server is overloaded and sheds the
	// request rather than buffering unboundedly.
	ErrQueueFull = errors.New("server: admission queue full")
	// ErrTenantOverQuota means this tenant already has its full quota
	// of requests running or queued.
	ErrTenantOverQuota = errors.New("server: tenant concurrency quota exhausted")
	// ErrDraining means the server is shutting down and admits no new
	// work.
	ErrDraining = errors.New("server: draining, not accepting new work")
)

// admission is the server's bounded admission controller: at most
// `slots` discovery runs execute concurrently, at most `depth` more
// wait in FIFO order, and no tenant may hold more than `quota` of the
// running+queued total. Everything beyond those bounds is rejected
// immediately — the queue is the only buffering the server does, so
// overload turns into fast 429s instead of unbounded latency.
//
// Admission is two-phase so that waiting is cancellable: Acquire
// either grants a slot, enqueues a ticket and blocks on it (honoring
// ctx), or fails fast with a typed error. Release hands the slot to
// the head of the queue, preserving arrival order.
type admission struct {
	mu       sync.Mutex
	slots    int            // concurrent run capacity
	depth    int            // max queued beyond running
	quota    int            // per-tenant running+queued cap; 0 = uncapped
	running  int            // guarded by mu
	queue    []*ticket      // guarded by mu
	tenants  map[string]int // running+queued per tenant; guarded by mu
	draining bool           // guarded by mu
	idle     chan struct{}  // closed when draining and running hits 0
}

// ticket is one queued admission request. ready is closed exactly
// once — either by promote (granted=true) or by drain/cancel removal.
type ticket struct {
	tenant  string
	granted bool
	err     error
	ready   chan struct{}
}

func newAdmission(slots, depth, quota int) *admission {
	if slots < 1 {
		slots = 1
	}
	if depth < 0 {
		depth = 0
	}
	return &admission{
		slots:   slots,
		depth:   depth,
		quota:   quota,
		tenants: make(map[string]int),
		idle:    make(chan struct{}),
	}
}

// Acquire admits one run for the tenant, blocking in FIFO order while
// the server is saturated. It returns a release function to defer, or
// a typed error: ErrQueueFull / ErrTenantOverQuota (shed, retry
// later), ErrDraining (shutting down), or ctx.Err() if the caller
// gave up while queued.
func (a *admission) Acquire(ctx context.Context, tenant string) (release func(), err error) {
	a.mu.Lock()
	if a.draining {
		a.mu.Unlock()
		return nil, ErrDraining
	}
	if a.quota > 0 && a.tenants[tenant] >= a.quota {
		a.mu.Unlock()
		return nil, ErrTenantOverQuota
	}
	if a.running < a.slots && len(a.queue) == 0 {
		a.running++
		a.tenants[tenant]++
		a.mu.Unlock()
		return a.releaseFunc(tenant), nil
	}
	if len(a.queue) >= a.depth {
		a.mu.Unlock()
		return nil, ErrQueueFull
	}
	t := &ticket{tenant: tenant, ready: make(chan struct{})}
	a.queue = append(a.queue, t)
	a.tenants[tenant]++
	a.mu.Unlock()

	select {
	case <-t.ready:
		if t.err != nil {
			return nil, t.err
		}
		return a.releaseFunc(tenant), nil
	case <-ctx.Done():
		a.mu.Lock()
		for i, q := range a.queue {
			if q == t {
				a.queue = append(a.queue[:i], a.queue[i+1:]...)
				a.decTenant(tenant)
				a.mu.Unlock()
				return nil, ctx.Err()
			}
		}
		a.mu.Unlock()
		// Promoted (or drained) in the race with ctx: consume the
		// grant so the slot is not leaked, then report the
		// cancellation.
		<-t.ready
		if t.err != nil {
			return nil, t.err
		}
		a.releaseFunc(tenant)()
		return nil, ctx.Err()
	}
}

// releaseFunc returns the idempotent release for one granted slot.
func (a *admission) releaseFunc(tenant string) func() {
	var once sync.Once
	return func() {
		once.Do(func() {
			a.mu.Lock()
			a.running--
			a.decTenant(tenant)
			for len(a.queue) > 0 && a.running < a.slots {
				head := a.queue[0]
				a.queue = a.queue[1:]
				a.running++
				head.granted = true
				close(head.ready)
			}
			if a.draining && a.running == 0 {
				select {
				case <-a.idle:
				default:
					close(a.idle)
				}
			}
			a.mu.Unlock()
		})
	}
}

// decTenant drops one running-or-queued count for the tenant,
// forgetting tenants that reach zero. Caller must hold a.mu.
func (a *admission) decTenant(tenant string) {
	if a.tenants[tenant]--; a.tenants[tenant] <= 0 {
		delete(a.tenants, tenant)
	}
}

// Drain stops admitting: every future Acquire fails with ErrDraining,
// and every ticket still queued is failed the same way — queued work
// has not started, so a drain sheds it rather than racing the
// shutdown clock. Running work keeps its slots; Idle reports when the
// last one releases.
func (a *admission) Drain() {
	a.mu.Lock()
	if a.draining {
		a.mu.Unlock()
		return
	}
	a.draining = true
	for _, t := range a.queue {
		t.err = ErrDraining
		a.decTenant(t.tenant)
		close(t.ready)
	}
	a.queue = nil
	if a.running == 0 {
		close(a.idle)
	}
	a.mu.Unlock()
}

// Idle returns a channel closed once Drain has been called and the
// last running slot has been released.
func (a *admission) Idle() <-chan struct{} { return a.idle }

// Load reports the current running and queued counts (for readyz and
// the stats snapshot).
func (a *admission) Load() (running, queued int) {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.running, len(a.queue)
}

// tenantLoad is one tenant's share of the admission state.
type tenantLoad struct {
	Running int
	Queued  int
}

// PerTenant reports each live tenant's running and queued counts (for
// the stats snapshot and the per-tenant metrics gauges). The tenants
// map counts running+queued combined, so the split is derived by
// counting the queue.
func (a *admission) PerTenant() map[string]tenantLoad {
	a.mu.Lock()
	defer a.mu.Unlock()
	queued := make(map[string]int, len(a.tenants))
	for _, t := range a.queue {
		queued[t.tenant]++
	}
	out := make(map[string]tenantLoad, len(a.tenants))
	for tenant, n := range a.tenants {
		q := queued[tenant]
		out[tenant] = tenantLoad{Running: n - q, Queued: q}
	}
	return out
}
