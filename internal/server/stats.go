package server

import (
	"sort"
	"sync"
	"sync/atomic"

	"discoverxfd/internal/telemetry"
)

// counters is the server's cumulative operational state, updated
// atomically from request handlers and job goroutines.
type counters struct {
	accepted         atomic.Int64 // requests granted an admission slot
	completed        atomic.Int64 // runs that produced a Result
	failed           atomic.Int64 // runs that returned an error
	truncated        atomic.Int64 // Results carrying Stats.Truncated
	deadline         atomic.Int64 // requests that exhausted their wall-clock budget
	rejectedOverload atomic.Int64 // 429s: queue full or tenant over quota
	rejectedDraining atomic.Int64 // 503s: submissions during drain
	panics           atomic.Int64 // handler/job panics contained

	tuples       atomic.Int64 // summed Stats.Tuples of completed runs
	latticeNodes atomic.Int64 // summed Stats.NodesVisited of completed runs

	docsCreated        atomic.Int64 // resident documents built
	docsDeleted        atomic.Int64 // resident documents removed
	docUpdates         atomic.Int64 // accepted PATCH update batches
	docUpdateOps       atomic.Int64 // update operations inside them
	docUpdatesRejected atomic.Int64 // 422s: rejected update scripts

	shedMu sync.Mutex
	// sheds counts declined requests per tenant: reason → count, keyed
	// by tenant. Guarded by shedMu — sheds are already the slow path.
	sheds map[string]map[string]int64 // guarded by shedMu
}

// shedTenant counts one declined request against its tenant.
func (c *counters) shedTenant(tenant, reason string) {
	c.shedMu.Lock()
	if c.sheds == nil {
		c.sheds = make(map[string]map[string]int64)
	}
	byReason := c.sheds[tenant]
	if byReason == nil {
		byReason = make(map[string]int64)
		c.sheds[tenant] = byReason
	}
	byReason[reason]++
	c.shedMu.Unlock()
}

// shedSnapshot copies the per-tenant shed counts.
func (c *counters) shedSnapshot() map[string]map[string]int64 {
	c.shedMu.Lock()
	defer c.shedMu.Unlock()
	out := make(map[string]map[string]int64, len(c.sheds))
	for tenant, byReason := range c.sheds {
		m := make(map[string]int64, len(byReason))
		for reason, n := range byReason {
			m[reason] = n
		}
		out[tenant] = m
	}
	return out
}

// TenantStats is one tenant's view in the stats snapshot: its live
// admission load and its cumulative shed counts by reason.
type TenantStats struct {
	Running int              `json:"running"`
	Queued  int              `json:"queued"`
	Sheds   map[string]int64 `json:"sheds,omitempty"`
}

// StatsSnapshot is one observation of the server (GET /v1/stats, and
// the xfdd expvar). Gauges (Running, Queued, Jobs, Draining, and the
// per-tenant load inside Tenants) are read at snapshot time;
// everything else is cumulative.
type StatsSnapshot struct {
	Accepted         int64 `json:"accepted"`
	Completed        int64 `json:"completed"`
	Failed           int64 `json:"failed"`
	Truncated        int64 `json:"truncated"`
	DeadlineExceeded int64 `json:"deadlineExceeded"`
	RejectedOverload int64 `json:"rejectedOverload"`
	RejectedDraining int64 `json:"rejectedDraining"`
	PanicsContained  int64 `json:"panicsContained"`
	Tuples           int64 `json:"tuples"`
	LatticeNodes     int64 `json:"latticeNodes"`

	DocumentsCreated int64 `json:"documentsCreated"`
	DocumentsDeleted int64 `json:"documentsDeleted"`
	DocUpdates       int64 `json:"docUpdates"`
	DocUpdateOps     int64 `json:"docUpdateOps"`
	DocUpdatesReject int64 `json:"docUpdatesRejected"`

	Running   int  `json:"running"`
	Queued    int  `json:"queued"`
	Jobs      int  `json:"jobs"`
	Documents int  `json:"documents"`
	Draining  bool `json:"draining"`

	// Tenants maps each tenant with live admission load or recorded
	// sheds to its per-tenant view (encoding/json renders map keys
	// sorted, so the document is deterministic).
	Tenants map[string]TenantStats `json:"tenants,omitempty"`
}

// PublishExpvar publishes the live stats snapshot under name in the
// process's expvar registry (served at /debug/vars). Publication is
// idempotent: re-publishing under a name replaces the earlier
// publisher instead of panicking, so a process can build many Servers
// (tests, restarts behind one mux) without tripping expvar's
// duplicate-name panic.
func (s *Server) PublishExpvar(name string) {
	telemetry.PublishExpvar(name, func() any { return s.Stats() })
}

// Stats returns a consistent-enough snapshot of the server's counters
// and load gauges. Safe to call concurrently with traffic.
func (s *Server) Stats() StatsSnapshot {
	running, queued := s.adm.Load()
	snap := StatsSnapshot{
		Accepted:         s.stats.accepted.Load(),
		Completed:        s.stats.completed.Load(),
		Failed:           s.stats.failed.Load(),
		Truncated:        s.stats.truncated.Load(),
		DeadlineExceeded: s.stats.deadline.Load(),
		RejectedOverload: s.stats.rejectedOverload.Load(),
		RejectedDraining: s.stats.rejectedDraining.Load(),
		PanicsContained:  s.stats.panics.Load(),
		Tuples:           s.stats.tuples.Load(),
		LatticeNodes:     s.stats.latticeNodes.Load(),
		DocumentsCreated: s.stats.docsCreated.Load(),
		DocumentsDeleted: s.stats.docsDeleted.Load(),
		DocUpdates:       s.stats.docUpdates.Load(),
		DocUpdateOps:     s.stats.docUpdateOps.Load(),
		DocUpdatesReject: s.stats.docUpdatesRejected.Load(),
		Running:          running,
		Queued:           queued,
		Jobs:             s.jobs.count(),
		Documents:        s.docs.count(),
		Draining:         s.draining.Load(),
	}
	load := s.adm.PerTenant()
	sheds := s.stats.shedSnapshot()
	if len(load)+len(sheds) > 0 {
		snap.Tenants = make(map[string]TenantStats, len(load)+len(sheds))
		tenants := make(map[string]bool, len(load)+len(sheds))
		for tenant := range load {
			tenants[tenant] = true
		}
		for tenant := range sheds {
			tenants[tenant] = true
		}
		names := make([]string, 0, len(tenants))
		for tenant := range tenants {
			names = append(names, tenant)
		}
		sort.Strings(names)
		for _, tenant := range names {
			snap.Tenants[tenant] = TenantStats{
				Running: load[tenant].Running,
				Queued:  load[tenant].Queued,
				Sheds:   sheds[tenant],
			}
		}
	}
	return snap
}
