package server

import (
	"expvar"
	"sync/atomic"
)

// counters is the server's cumulative operational state, updated
// atomically from request handlers and job goroutines.
type counters struct {
	accepted         atomic.Int64 // requests granted an admission slot
	completed        atomic.Int64 // runs that produced a Result
	failed           atomic.Int64 // runs that returned an error
	truncated        atomic.Int64 // Results carrying Stats.Truncated
	deadline         atomic.Int64 // requests that exhausted their wall-clock budget
	rejectedOverload atomic.Int64 // 429s: queue full or tenant over quota
	rejectedDraining atomic.Int64 // 503s: submissions during drain
	panics           atomic.Int64 // handler/job panics contained

	tuples       atomic.Int64 // summed Stats.Tuples of completed runs
	latticeNodes atomic.Int64 // summed Stats.NodesVisited of completed runs

	docsCreated        atomic.Int64 // resident documents built
	docsDeleted        atomic.Int64 // resident documents removed
	docUpdates         atomic.Int64 // accepted PATCH update batches
	docUpdateOps       atomic.Int64 // update operations inside them
	docUpdatesRejected atomic.Int64 // 422s: rejected update scripts
}

// StatsSnapshot is one observation of the server (GET /v1/stats, and
// the xfdd expvar). Gauges (Running, Queued, Jobs, Draining) are
// read at snapshot time; everything else is cumulative.
type StatsSnapshot struct {
	Accepted         int64 `json:"accepted"`
	Completed        int64 `json:"completed"`
	Failed           int64 `json:"failed"`
	Truncated        int64 `json:"truncated"`
	DeadlineExceeded int64 `json:"deadlineExceeded"`
	RejectedOverload int64 `json:"rejectedOverload"`
	RejectedDraining int64 `json:"rejectedDraining"`
	PanicsContained  int64 `json:"panicsContained"`
	Tuples           int64 `json:"tuples"`
	LatticeNodes     int64 `json:"latticeNodes"`

	DocumentsCreated int64 `json:"documentsCreated"`
	DocumentsDeleted int64 `json:"documentsDeleted"`
	DocUpdates       int64 `json:"docUpdates"`
	DocUpdateOps     int64 `json:"docUpdateOps"`
	DocUpdatesReject int64 `json:"docUpdatesRejected"`

	Running   int  `json:"running"`
	Queued    int  `json:"queued"`
	Jobs      int  `json:"jobs"`
	Documents int  `json:"documents"`
	Draining  bool `json:"draining"`
}

// PublishExpvar publishes the live stats snapshot under name in the
// process's expvar registry (served at /debug/vars). Like
// expvar.Publish it panics on a duplicate name, so xfdd publishes its
// one server exactly once; tests exercising many Servers skip it.
func (s *Server) PublishExpvar(name string) {
	expvar.Publish(name, expvar.Func(func() any { return s.Stats() }))
}

// Stats returns a consistent-enough snapshot of the server's counters
// and load gauges. Safe to call concurrently with traffic.
func (s *Server) Stats() StatsSnapshot {
	running, queued := s.adm.Load()
	return StatsSnapshot{
		Accepted:         s.stats.accepted.Load(),
		Completed:        s.stats.completed.Load(),
		Failed:           s.stats.failed.Load(),
		Truncated:        s.stats.truncated.Load(),
		DeadlineExceeded: s.stats.deadline.Load(),
		RejectedOverload: s.stats.rejectedOverload.Load(),
		RejectedDraining: s.stats.rejectedDraining.Load(),
		PanicsContained:  s.stats.panics.Load(),
		Tuples:           s.stats.tuples.Load(),
		LatticeNodes:     s.stats.latticeNodes.Load(),
		DocumentsCreated: s.stats.docsCreated.Load(),
		DocumentsDeleted: s.stats.docsDeleted.Load(),
		DocUpdates:       s.stats.docUpdates.Load(),
		DocUpdateOps:     s.stats.docUpdateOps.Load(),
		DocUpdatesReject: s.stats.docUpdatesRejected.Load(),
		Running:          running,
		Queued:           queued,
		Jobs:             s.jobs.count(),
		Documents:        s.docs.count(),
		Draining:         s.draining.Load(),
	}
}
