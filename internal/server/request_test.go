package server

import (
	"net/url"
	"testing"
	"time"

	"discoverxfd"
)

// TestLimitsParamsTightenOnly pins the negotiation rule field by
// field: requests narrow budgets, never widen them.
func TestLimitsParamsTightenOnly(t *testing.T) {
	base := discoverxfd.Limits{MaxTuples: 100, MaxLatticeLevel: 3}
	cases := []struct {
		name  string
		query string
		want  discoverxfd.Limits
		bad   bool
	}{
		{"no params keep the base", "", base, false},
		{"tighten below the bound", "max_tuples=10", discoverxfd.Limits{MaxTuples: 10, MaxLatticeLevel: 3}, false},
		{"widen is clamped", "max_tuples=5000", base, false},
		{"zero (unlimited) is clamped", "max_tuples=0", base, false},
		{"unbounded server grants zero", "max_nodes=0", base, false},
		{"unbounded server grants any", "max_nodes=77",
			discoverxfd.Limits{MaxTuples: 100, MaxLatticeLevel: 3, MaxNodes: 77}, false},
		{"second field tightens too", "max_lattice_level=2",
			discoverxfd.Limits{MaxTuples: 100, MaxLatticeLevel: 2}, false},
		{"negative rejected", "max_depth=-1", base, true},
		{"non-numeric rejected", "max_tuples=lots", base, true},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			q, err := url.ParseQuery(c.query)
			if err != nil {
				t.Fatal(err)
			}
			got, err := limitsParams(q, base)
			if c.bad {
				if err == nil {
					t.Fatalf("limitsParams(%q) accepted, want error", c.query)
				}
				if statusOf(err) != 400 {
					t.Errorf("limitsParams(%q) error status = %d, want 400", c.query, statusOf(err))
				}
				return
			}
			if err != nil {
				t.Fatalf("limitsParams(%q): %v", c.query, err)
			}
			if got != c.want {
				t.Errorf("limitsParams(%q) = %+v, want %+v", c.query, got, c.want)
			}
		})
	}
}

// TestTimeoutParam pins the timeout resolution: request value, else
// default, never more than the maximum.
func TestTimeoutParam(t *testing.T) {
	cases := []struct {
		v        string
		def, max time.Duration
		want     time.Duration
		bad      bool
	}{
		{"", 30 * time.Second, 5 * time.Minute, 30 * time.Second, false},
		{"", 0, 5 * time.Minute, 5 * time.Minute, false}, // no default: capped
		{"", 0, 0, 0, false}, // fully unbounded
		{"2s", 30 * time.Second, 5 * time.Minute, 2 * time.Second, false},
		{"10m", 30 * time.Second, 5 * time.Minute, 5 * time.Minute, false}, // clamped
		{"10m", 0, 0, 10 * time.Minute, false},                             // uncapped server honors it
		{"0s", 0, 0, 0, true},
		{"-5s", 0, 0, 0, true},
		{"soon", 0, 0, 0, true},
	}
	for _, c := range cases {
		got, err := timeoutParam(c.v, c.def, c.max)
		if c.bad {
			if err == nil {
				t.Errorf("timeoutParam(%q) accepted, want error", c.v)
			}
			continue
		}
		if err != nil {
			t.Errorf("timeoutParam(%q): %v", c.v, err)
			continue
		}
		if got != c.want {
			t.Errorf("timeoutParam(%q, def %v, max %v) = %v, want %v", c.v, c.def, c.max, got, c.want)
		}
	}
}
